#!/usr/bin/env python3
"""Perf-envelope gate: compare bench/trace JSON artifacts against envelopes.

Each bench emits a BENCH_<name>.json artifact, and the traced round-sync run
emits a run-trace JSON. This script loads ci/perf_envelopes.json and checks
the artifacts against it: structural invariants are exact (zero steady-state
allocations, zero reduction mismatches, fingerprint matches), performance
floors are deliberately generous so that CI-runner noise does not flake the
gate — they exist to catch order-of-magnitude regressions (a lost fast path,
an accidental O(flows) reinstatement), not 10% drift.

Envelope schema (ci/perf_envelopes.json):

  {
    "<gate name>": {
      "artifact": "BENCH_foo.json",     # path relative to --dir
      "skip_if": {"metric": "...", "equals": ...},   # optional
      "checks": [
        {"metric": "a.b.c", "equals": X},         # exact (floats: rel 1e-9)
        {"metric": "a.b.c", "min": X},            # floor
        {"metric": "a.b.c", "max": X},            # ceiling
        {"metric": "a", "max_metric": "b"},       # cross-field: a <= b
        {"derive": "sync_fraction", "max": X},    # derived from a run trace
        {"derive": "mean_barrier_ns", "max": X},
        ...any check may carry "note": "why this bound"
      ]
    }
  }

Derived metrics (run-trace artifacts only):
  sync_fraction   synchronization_ns / (processing + synchronization +
                  messaging) from the trace summary
  mean_barrier_ns mean of rounds[].barrier_ns
  rounds          len(rounds)

Exit status: 0 if every check in every gate passes, 1 otherwise. A missing
artifact fails its gate unless the gate has "optional": true.
"""

import argparse
import json
import os
import sys
import time


def lookup(doc, dotted):
    """Resolve a dotted path ("summary.events") in nested dicts."""
    cur = doc
    for part in dotted.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def derive(doc, name):
    """Compute a derived metric from a run-trace document."""
    if name == "sync_fraction":
        s = doc.get("summary", {})
        total = (s.get("processing_ns", 0) + s.get("synchronization_ns", 0) +
                 s.get("messaging_ns", 0))
        return None if total == 0 else s.get("synchronization_ns", 0) / total
    if name == "mean_barrier_ns":
        rounds = doc.get("rounds", [])
        if not rounds:
            return None
        return sum(r.get("barrier_ns", 0) for r in rounds) / len(rounds)
    if name == "rounds":
        return len(doc.get("rounds", []))
    return None


def close(a, b):
    if isinstance(a, float) or isinstance(b, float):
        return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))
    return a == b


def run_check(doc, check):
    """Returns (ok, value, description)."""
    if "derive" in check:
        label = check["derive"]
        value = derive(doc, label)
    else:
        label = check["metric"]
        value = lookup(doc, label)
    if value is None:
        return False, None, f"{label}: metric missing from artifact"

    if "equals" in check:
        want = check["equals"]
        return close(value, want), value, f"{label} == {want!r}"
    if "max_metric" in check:
        bound = lookup(doc, check["max_metric"])
        if bound is None:
            return False, value, f"{check['max_metric']}: bound metric missing"
        return value <= bound, value, f"{label} <= {check['max_metric']} ({bound})"
    ok = True
    parts = []
    if "min" in check:
        ok = ok and value >= check["min"]
        parts.append(f">= {check['min']}")
    if "max" in check:
        ok = ok and value <= check["max"]
        parts.append(f"<= {check['max']}")
    return ok, value, f"{label} {' and '.join(parts) if parts else '(present)'}"


def run_gate(name, gate, base_dir):
    """Returns the list of failure descriptions for this gate.

    Never raises: a malformed gate definition, unreadable/invalid artifact
    JSON, or a type-confused comparison is recorded as a failure of *this*
    gate so every other gate still runs — one broken artifact must not mask
    regressions elsewhere in the same CI pass.
    """
    failures = []
    artifact = gate.get("artifact")
    if not isinstance(artifact, str):
        msg = "gate definition has no 'artifact' string"
        print(f"[gate] {name}: FAIL — {msg}")
        return [f"{name}: {msg}"]
    path = os.path.join(base_dir, artifact)
    if not os.path.exists(path):
        if gate.get("optional", False):
            print(f"[gate] {name}: SKIP (optional, {artifact} absent)")
            return []
        print(f"[gate] {name}: FAIL — artifact {artifact} not found")
        return [f"{name}: artifact {artifact} not found"]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"[gate] {name}: FAIL — artifact {artifact} unreadable: {e}")
        return [f"{name}: artifact {artifact} unreadable: {e}"]

    skip = gate.get("skip_if")
    if isinstance(skip, dict) and "metric" in skip:
        val = lookup(doc, skip["metric"])
        if val == skip.get("equals"):
            print(f"[gate] {name}: SKIP ({skip['metric']} == {val!r})")
            return []

    for check in gate.get("checks", []):
        try:
            ok, value, desc = run_check(doc, check)
        except (TypeError, KeyError, AttributeError) as e:
            ok, value = False, None
            desc = f"check {check!r} is malformed ({e})"
        status = "ok  " if ok else "FAIL"
        note = f"  # {check['note']}" if "note" in check and not ok else ""
        print(f"[gate] {name}: {status} {desc} (actual: {value!r}){note}")
        if not ok:
            failures.append(f"{name}: {desc} (actual: {value!r})")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--envelopes", default="ci/perf_envelopes.json",
                    help="envelope definition file")
    ap.add_argument("--dir", default=".",
                    help="directory holding the BENCH_/TRACE_ artifacts")
    args = ap.parse_args()

    try:
        with open(args.envelopes) as f:
            envelopes = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot load {args.envelopes}: {e}")
        return 1
    if not isinstance(envelopes, dict):
        print(f"perf gate: {args.envelopes} is not a JSON object of gates")
        return 1

    failures = []
    recap = []
    for name, gate in envelopes.items():
        if not isinstance(gate, dict):
            print(f"[gate] {name}: FAIL — gate definition is not an object")
            failures.append(f"{name}: gate definition is not an object")
            recap.append((name, "-", 0.0, 1))
            continue
        t0 = time.monotonic()
        gate_failures = run_gate(name, gate, args.dir)
        elapsed = time.monotonic() - t0
        failures.extend(gate_failures)
        artifact = gate.get("artifact")
        path = (os.path.join(args.dir, artifact)
                if isinstance(artifact, str) else "-")
        recap.append((name, path, elapsed, len(gate_failures)))

    # End-of-run recap: one line per gate with wall time and the artifact it
    # judged, so a scrolled-away FAIL line cannot hide the rest and slow
    # gates are visible at a glance.
    print("perf gate recap:")
    width = max(len(name) for name, _, _, _ in recap) if recap else 0
    for name, path, elapsed, nfail in recap:
        verdict = "ok" if nfail == 0 else f"{nfail} FAIL"
        print(f"  {name:<{width}}  {elapsed * 1000.0:8.1f} ms  "
              f"{verdict:<7}  {path}")
    if failures:
        print(f"perf gate: {len(failures)} check(s) FAILED")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print("perf gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
