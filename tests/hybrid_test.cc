// Hybrid (distributed) kernel: rank/lane sweeps, structure, and equivalence.
#include <gtest/gtest.h>

#include "src/kernel/hybrid.h"
#include "src/partition/fine_grained.h"
#include "tests/test_util.h"

namespace unison {
namespace {

class HybridSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(HybridSweepTest, MatchesSequentialForAnyRankLaneSplit) {
  const auto [ranks, lanes] = GetParam();
  KernelConfig seq;
  seq.type = KernelType::kSequential;
  const RunOutcome expected = RunFatTreeScenario(seq, PartitionMode::kSingle);

  KernelConfig k;
  k.type = KernelType::kHybrid;
  k.ranks = ranks;
  k.threads = lanes;
  const RunOutcome got = RunFatTreeScenario(k, PartitionMode::kAuto);
  EXPECT_EQ(got.events, expected.events);
  EXPECT_EQ(got.fingerprint, expected.fingerprint);
}

INSTANTIATE_TEST_SUITE_P(RankLane, HybridSweepTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(Hybrid, RanksPartitionEveryLpExactlyOnce) {
  TopoGraph graph;
  graph.num_nodes = 12;
  for (NodeId i = 0; i + 1 < 12; ++i) {
    graph.edges.push_back(TopoEdge{i, i + 1, Time::Microseconds(3), true});
  }
  KernelConfig kc;
  kc.type = KernelType::kHybrid;
  kc.ranks = 3;
  kc.threads = 2;
  HybridKernel kernel(kc);
  kernel.Setup(graph, FineGrainedPartition(graph));
  EXPECT_EQ(kernel.ranks(), 3u);
  const auto& rank_of_lp = kernel.rank_of_lp();
  EXPECT_EQ(rank_of_lp.size(), kernel.num_lps());
  std::vector<uint32_t> counts(3, 0);
  for (uint32_t r : rank_of_lp) {
    ASSERT_LT(r, 3u);
    ++counts[r];
  }
  // Contiguous node ranges: no rank is empty for a 12-node line.
  for (uint32_t c : counts) {
    EXPECT_GT(c, 0u);
  }
}

TEST(Hybrid, MoreRanksThanLpsStillRuns) {
  TopoGraph graph;
  graph.num_nodes = 2;
  graph.edges.push_back(TopoEdge{0, 1, Time::Microseconds(1), true});
  KernelConfig kc;
  kc.type = KernelType::kHybrid;
  kc.ranks = 6;  // More hosts than LPs: some ranks own nothing.
  kc.threads = 1;
  auto kernel = MakeKernel(kc);
  kernel->Setup(graph, FineGrainedPartition(graph));
  int ran = 0;
  kernel->ScheduleOnNode(0, Time::Microseconds(1), [&ran] { ++ran; });
  kernel->ScheduleOnNode(1, Time::Microseconds(2), [&ran] { ++ran; });
  kernel->Run(Time::Milliseconds(1));
  EXPECT_EQ(ran, 2);
}

TEST(Hybrid, LiveEventsVisibleFromGlobalEvent) {
  KernelConfig k;
  k.type = KernelType::kHybrid;
  k.ranks = 2;
  k.threads = 2;
  SimConfig cfg;
  cfg.kernel = k;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 100000, Time::Zero());
  uint64_t seen = 0;
  net.sim().ScheduleGlobal(Time::Milliseconds(1),
                           [&net, &seen] { seen = net.kernel().LiveEvents(); });
  net.Run(Time::Milliseconds(3));
  EXPECT_GT(seen, 0u);
  EXPECT_LE(seen, net.kernel().processed_events());
}

}  // namespace
}  // namespace unison
