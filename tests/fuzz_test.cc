// Randomized cross-kernel equivalence ("fuzz") tests.
//
// For each seeded random scenario — random connected topology, random link
// parameters, random mixed TCP/UDP workload — every kernel must produce the
// same event count and flow fingerprint as the sequential oracle. This is
// the strongest correctness net in the suite: any causality violation,
// mailbox race, or tie-break divergence shows up as a fingerprint mismatch.
#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/net/app.h"
#include "src/net/network.h"
#include "src/net/udp.h"

namespace unison {
namespace {

struct Scenario {
  uint64_t seed;
};

// Builds a random connected graph: a random spanning tree plus extra edges.
void BuildRandomScenario(Network& net, uint64_t seed) {
  Rng rng(seed, 0);
  const uint32_t n = 6 + static_cast<uint32_t>(rng.NextU64Below(10));
  net.AddNodes(n);
  auto random_delay = [&rng] {
    return Time::Microseconds(1 + static_cast<int64_t>(rng.NextU64Below(50)));
  };
  auto random_bps = [&rng] { return (1 + rng.NextU64Below(10)) * 100000000ULL; };
  for (NodeId v = 1; v < n; ++v) {
    const NodeId u = static_cast<NodeId>(rng.NextU64Below(v));
    net.AddLink(u, v, random_bps(), random_delay());
  }
  const uint32_t extra = static_cast<uint32_t>(rng.NextU64Below(n));
  for (uint32_t e = 0; e < extra; ++e) {
    const NodeId u = static_cast<NodeId>(rng.NextU64Below(n));
    const NodeId v = static_cast<NodeId>(rng.NextU64Below(n));
    if (u != v) {
      net.AddLink(u, v, random_bps(), random_delay());
    }
  }
  net.Finalize();

  const uint32_t tcp_flows = 2 + static_cast<uint32_t>(rng.NextU64Below(6));
  for (uint32_t f = 0; f < tcp_flows; ++f) {
    FlowSpec spec;
    spec.src = static_cast<NodeId>(rng.NextU64Below(n));
    do {
      spec.dst = static_cast<NodeId>(rng.NextU64Below(n));
    } while (spec.dst == spec.src);
    spec.bytes = 1000 + rng.NextU64Below(500000);
    spec.start = Time::Microseconds(static_cast<int64_t>(rng.NextU64Below(3000)));
    InstallFlow(net, spec);
  }
  const uint32_t udp_flows = static_cast<uint32_t>(rng.NextU64Below(3));
  for (uint32_t f = 0; f < udp_flows; ++f) {
    OnOffSpec spec;
    spec.src = static_cast<NodeId>(rng.NextU64Below(n));
    do {
      spec.dst = static_cast<NodeId>(rng.NextU64Below(n));
    } while (spec.dst == spec.src);
    spec.rate_bps = (1 + rng.NextU64Below(50)) * 1000000;
    spec.packet_bytes = 200 + static_cast<uint32_t>(rng.NextU64Below(1200));
    spec.on = Time::Microseconds(200 + static_cast<int64_t>(rng.NextU64Below(2000)));
    spec.off = Time::Microseconds(static_cast<int64_t>(rng.NextU64Below(1000)));
    spec.start = Time::Microseconds(static_cast<int64_t>(rng.NextU64Below(2000)));
    spec.stop = Time::Milliseconds(8);
    InstallOnOffFlow(net, spec);
  }
}

std::pair<uint64_t, uint64_t> RunScenario(uint64_t seed, KernelType type,
                                          uint32_t threads, uint32_t ranks = 2) {
  SimConfig cfg;
  cfg.kernel.type = type;
  cfg.kernel.threads = threads;
  cfg.kernel.ranks = ranks;
  cfg.seed = seed;
  cfg.tcp.min_rto = Time::Milliseconds(2);
  cfg.tcp.initial_rto = Time::Milliseconds(2);
  // Small queues provoke loss paths too.
  cfg.queue.capacity_bytes = 30 * 1500;
  Network net(cfg);
  BuildRandomScenario(net, seed);
  net.Run(Time::Milliseconds(10));
  return {net.kernel().processed_events(), net.flow_monitor().Fingerprint()};
}

class FuzzEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalence, AllKernelsMatchSequentialOracle) {
  const uint64_t seed = GetParam();
  const auto oracle = RunScenario(seed, KernelType::kSequential, 1);
  EXPECT_GT(oracle.first, 100u) << "scenario too small to be meaningful";
  EXPECT_EQ(RunScenario(seed, KernelType::kUnison, 2), oracle) << "unison x2";
  EXPECT_EQ(RunScenario(seed, KernelType::kUnison, 5), oracle) << "unison x5";
  EXPECT_EQ(RunScenario(seed, KernelType::kHybrid, 2, 3), oracle) << "hybrid 3x2";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Range<uint64_t>(1000, 1012));

class FuzzBaselines : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzBaselines, BaselineKernelsMatchOracleWithDeterministicTies) {
  // Baselines need a manual partition; use the automatic one as if the user
  // had supplied it (same node->LP map).
  const uint64_t seed = GetParam();
  const auto oracle = RunScenario(seed, KernelType::kSequential, 1);

  for (KernelType type : {KernelType::kBarrier, KernelType::kNullMessage}) {
    SimConfig cfg;
    cfg.kernel.type = type;
    cfg.seed = seed;
    cfg.tcp.min_rto = Time::Milliseconds(2);
    cfg.tcp.initial_rto = Time::Milliseconds(2);
    cfg.queue.capacity_bytes = 30 * 1500;
    cfg.partition = PartitionMode::kAuto;  // Fine partition works for them too.
    Network net(cfg);
    BuildRandomScenario(net, seed);
    net.Run(Time::Milliseconds(10));
    EXPECT_EQ(net.kernel().processed_events(), oracle.first)
        << "kernel " << static_cast<int>(type);
    EXPECT_EQ(net.flow_monitor().Fingerprint(), oracle.second)
        << "kernel " << static_cast<int>(type);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBaselines, ::testing::Range<uint64_t>(2000, 2006));

}  // namespace
}  // namespace unison
