// Log-bucket histogram: resolution, quantiles, merging.
#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/stats/histogram.h"

namespace unison {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) {
    h.Add(v);
  }
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 15u);
}

TEST(Histogram, QuantilesWithinRelativeResolution) {
  Histogram h;
  Rng rng(31, 0);
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    // Log-uniform over 6 decades.
    const uint64_t v = 1 + (1ULL << rng.NextU64Below(40)) +
                       rng.NextU64Below(1ULL << rng.NextU64Below(40));
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const uint64_t exact = values[static_cast<size_t>(q * (values.size() - 1))];
    const uint64_t approx = h.Quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.07)
        << "q=" << q;
  }
  double sum = 0;
  for (uint64_t v : values) {
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(h.Mean(), sum / values.size(), 1.0);
}

TEST(Histogram, MergeEqualsCombinedStream) {
  Histogram a;
  Histogram b;
  Histogram all;
  Rng rng(33, 0);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextU64Below(1000000);
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Quantile(q), all.Quantile(q));
  }
}

TEST(Histogram, HugeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Add(UINT64_MAX / 2);
  h.Add(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_GE(h.Quantile(1.0), UINT64_MAX / 4);
}

}  // namespace
}  // namespace unison
