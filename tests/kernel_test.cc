// Cross-kernel equivalence and kernel mechanics.
//
// The load-bearing property of the whole system: every kernel — sequential,
// barrier, null message, Unison, hybrid — must execute the same model to the
// same outcome, event for event, for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "src/kernel/nullmsg.h"
#include "src/kernel/unison.h"
#include "src/partition/fine_grained.h"
#include "src/partition/manual.h"
#include "tests/test_util.h"

namespace unison {
namespace {

RunOutcome Sequential() {
  KernelConfig k;
  k.type = KernelType::kSequential;
  return RunFatTreeScenario(k, PartitionMode::kSingle);
}

TEST(KernelEquivalence, SequentialIsDeterministic) {
  const RunOutcome a = Sequential();
  const RunOutcome b = Sequential();
  EXPECT_GT(a.events, 1000u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(KernelEquivalence, UnisonMatchesSequential) {
  const RunOutcome seq = Sequential();
  for (uint32_t threads : {1u, 2u, 4u}) {
    KernelConfig k;
    k.type = KernelType::kUnison;
    k.threads = threads;
    const RunOutcome par = RunFatTreeScenario(k, PartitionMode::kAuto);
    EXPECT_EQ(par.events, seq.events) << "threads=" << threads;
    EXPECT_EQ(par.fingerprint, seq.fingerprint) << "threads=" << threads;
    EXPECT_GT(par.lps, 4u);
  }
}

TEST(KernelEquivalence, BarrierMatchesSequential) {
  const RunOutcome seq = Sequential();
  KernelConfig k;
  k.type = KernelType::kBarrier;
  k.deterministic = true;
  const RunOutcome par = RunFatTreeScenario(k, PartitionMode::kManual);
  EXPECT_EQ(par.events, seq.events);
  EXPECT_EQ(par.fingerprint, seq.fingerprint);
  EXPECT_EQ(par.lps, 4u);  // One LP per pod.
}

TEST(KernelEquivalence, NullMessageMatchesSequential) {
  const RunOutcome seq = Sequential();
  KernelConfig k;
  k.type = KernelType::kNullMessage;
  k.deterministic = true;
  const RunOutcome par = RunFatTreeScenario(k, PartitionMode::kManual);
  EXPECT_EQ(par.events, seq.events);
  EXPECT_EQ(par.fingerprint, seq.fingerprint);
}

TEST(KernelEquivalence, HybridMatchesSequential) {
  const RunOutcome seq = Sequential();
  for (uint32_t ranks : {2u, 4u}) {
    KernelConfig k;
    k.type = KernelType::kHybrid;
    k.ranks = ranks;
    k.threads = 2;
    const RunOutcome par = RunFatTreeScenario(k, PartitionMode::kAuto);
    EXPECT_EQ(par.events, seq.events) << "ranks=" << ranks;
    EXPECT_EQ(par.fingerprint, seq.fingerprint) << "ranks=" << ranks;
  }
}

TEST(KernelEquivalence, UnisonSchedulingMetricsAgree) {
  const RunOutcome seq = Sequential();
  for (SchedulingMetric metric : {SchedulingMetric::kNone,
                                  SchedulingMetric::kByPendingEventCount,
                                  SchedulingMetric::kByLastRoundTime}) {
    KernelConfig k;
    k.type = KernelType::kUnison;
    k.threads = 3;
    k.metric = metric;
    const RunOutcome par = RunFatTreeScenario(k, PartitionMode::kAuto);
    EXPECT_EQ(par.fingerprint, seq.fingerprint)
        << "metric=" << static_cast<int>(metric);
  }
}

// --- Kernel mechanics on synthetic events ---

TEST(KernelMechanics, GlobalEventsInterleaveDeterministically) {
  // Two LPs ping-ponging; a global event in between must execute before
  // same-timestamp node events, once, on the public LP.
  TopoGraph graph;
  graph.num_nodes = 2;
  graph.edges.push_back(TopoEdge{0, 1, Time::Microseconds(1), true});

  auto run = [&graph](KernelType type, uint32_t threads) {
    KernelConfig kc;
    kc.type = type;
    kc.threads = threads;
    auto kernel = MakeKernel(kc);
    const Partition part = type == KernelType::kSequential
                               ? SingleLpPartition(graph)
                               : RangePartition(graph, 2);
    kernel->Setup(graph, part);
    std::vector<int> order;
    kernel->ScheduleOnNode(0, Time::Microseconds(5), [&order] { order.push_back(1); });
    kernel->ScheduleGlobal(Time::Microseconds(5), [&order] { order.push_back(2); });
    kernel->ScheduleOnNode(1, Time::Microseconds(6), [&order] { order.push_back(3); });
    kernel->Run(Time::Milliseconds(1));
    return order;
  };

  const std::vector<int> seq = run(KernelType::kSequential, 1);
  EXPECT_EQ(seq, (std::vector<int>{2, 1, 3}));
  EXPECT_EQ(run(KernelType::kUnison, 2), seq);
}

TEST(KernelMechanics, StopTimeExcludesBoundaryEvents) {
  TopoGraph graph;
  graph.num_nodes = 1;
  KernelConfig kc;
  kc.type = KernelType::kSequential;
  auto kernel = MakeKernel(kc);
  kernel->Setup(graph, SingleLpPartition(graph));
  int ran = 0;
  kernel->ScheduleOnNode(0, Time::Microseconds(9), [&ran] { ++ran; });
  kernel->ScheduleOnNode(0, Time::Microseconds(10), [&ran] { ++ran; });
  kernel->ScheduleOnNode(0, Time::Microseconds(11), [&ran] { ++ran; });
  kernel->Run(Time::Microseconds(10));
  EXPECT_EQ(ran, 1);  // Only the event strictly before the stop time.
}

TEST(KernelMechanics, RequestStopHaltsEarly) {
  TopoGraph graph;
  graph.num_nodes = 2;
  graph.edges.push_back(TopoEdge{0, 1, Time::Microseconds(1), true});
  KernelConfig kc;
  kc.type = KernelType::kUnison;
  kc.threads = 2;
  auto kernel = MakeKernel(kc);
  kernel->Setup(graph, FineGrainedPartition(graph));
  std::atomic<int> count{0};
  // Self-rescheduling chatter on both nodes.
  std::function<void()> tick0;
  Kernel* kp = kernel.get();
  for (int i = 0; i < 1000; ++i) {
    kernel->ScheduleOnNode(0, Time::Microseconds(1 + i), [&count] { ++count; });
    kernel->ScheduleOnNode(1, Time::Microseconds(1 + i), [&count] { ++count; });
  }
  kernel->ScheduleGlobal(Time::Microseconds(50), [kp] { kp->RequestStop(); });
  kernel->Run(Time::Milliseconds(10));
  EXPECT_LT(count.load(), 2000);
  EXPECT_GT(count.load(), 0);
}

TEST(KernelMechanics, UnisonSchedulePeriodOverride) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  k.sched_period = 4;
  const RunOutcome a = RunFatTreeScenario(k, PartitionMode::kAuto);
  KernelConfig seq;
  seq.type = KernelType::kSequential;
  const RunOutcome b = RunFatTreeScenario(seq, PartitionMode::kSingle);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(KernelMechanics, EmptySimulationTerminates) {
  TopoGraph graph;
  graph.num_nodes = 4;
  graph.edges.push_back(TopoEdge{0, 1, Time::Microseconds(1), true});
  graph.edges.push_back(TopoEdge{2, 3, Time::Microseconds(1), true});
  for (KernelType type : {KernelType::kSequential, KernelType::kUnison}) {
    KernelConfig kc;
    kc.type = type;
    kc.threads = 2;
    auto kernel = MakeKernel(kc);
    kernel->Setup(graph, type == KernelType::kSequential ? SingleLpPartition(graph)
                                                         : FineGrainedPartition(graph));
    kernel->Run(Time::Seconds(1.0));
    EXPECT_EQ(kernel->processed_events(), 0u);
  }
}

TEST(KernelMechanics, OverflowBoxDeliversToUnwiredLpUntilRewire) {
  // Four nodes, links only 0-1 and 2-3: the fine-grained partition cuts both
  // (median delay) and yields one LP per node, with no channel between LP0
  // and LP3. A cross-LP send between them must take the locked OverflowBox,
  // and a topology change wiring 0-3 must switch later sends to a real
  // outbox. The payloads capture a unique_ptr, so every hop — outbox push,
  // overflow push, inbox drain, FEL insert — handles move-only events.
  TopoGraph graph;
  graph.num_nodes = 4;
  graph.edges.push_back(TopoEdge{0, 1, Time::Microseconds(1), true});
  graph.edges.push_back(TopoEdge{2, 3, Time::Microseconds(1), true});

  KernelConfig kc;
  kc.type = KernelType::kUnison;
  kc.threads = 2;
  auto kernel = MakeKernel(kc);
  kernel->Setup(graph, FineGrainedPartition(graph));
  ASSERT_EQ(kernel->num_lps(), 4u);
  ASSERT_EQ(kernel->LpOfNode(3), 3u);
  ASSERT_EQ(kernel->lp(0)->FindOutbox(3), nullptr);

  Kernel* kp = kernel.get();
  std::atomic<int> delivered{0};
  auto send_to_node3 = [kp, &delivered](Time at, int value) {
    auto payload = std::make_unique<int>(value);
    kp->ScheduleOnNode(3, at, [&delivered, payload = std::move(payload)] {
      delivered += *payload;
    });
  };

  // Executes on LP0; no outbox to LP3 exists yet, so this send can only
  // arrive through LP3's overflow box.
  kernel->ScheduleOnNode(0, Time::Microseconds(1), [&send_to_node3] {
    send_to_node3(Time::Microseconds(3), 7);
  });

  // Mid-run topology change: link 0-3 appears and the kernel rewires.
  kernel->ScheduleGlobal(Time::Microseconds(5), [kp, &graph] {
    graph.edges.push_back(TopoEdge{0, 3, Time::Microseconds(1), true});
    kp->NotifyTopologyChanged();
  });

  // After the rewire the same route rides the wired outbox fast path.
  kernel->ScheduleOnNode(0, Time::Microseconds(6), [&send_to_node3] {
    send_to_node3(Time::Microseconds(8), 100);
  });

  kernel->Run(Time::Milliseconds(1));
  EXPECT_EQ(delivered.load(), 107);
  EXPECT_NE(kernel->lp(0)->FindOutbox(3), nullptr);
}

TEST(KernelMechanics, DisconnectedGraphRunsIndependently) {
  // Two components, no cut edges: lookahead is infinite and both LPs run to
  // the stop time without interaction.
  TopoGraph graph;
  graph.num_nodes = 2;  // No edges at all.
  KernelConfig kc;
  kc.type = KernelType::kUnison;
  kc.threads = 2;
  auto kernel = MakeKernel(kc);
  Partition part = FineGrainedPartition(graph);
  EXPECT_EQ(part.num_lps, 2u);
  EXPECT_TRUE(part.lookahead.IsMax());
  kernel->Setup(graph, part);
  std::atomic<int> ran{0};
  kernel->ScheduleOnNode(0, Time::Microseconds(1), [&ran] { ++ran; });
  kernel->ScheduleOnNode(1, Time::Microseconds(2), [&ran] { ++ran; });
  kernel->Run(Time::Seconds(1.0));
  EXPECT_EQ(ran.load(), 2);
}

}  // namespace
}  // namespace unison
