// Profiler plumbing: per-executor, per-round and per-LP records.
#include <gtest/gtest.h>

#include "src/stats/profiler.h"
#include "tests/test_util.h"

namespace unison {
namespace {

TEST(Profiler, AccumulatesExecutorPhases) {
  Profiler p;
  p.enabled = true;
  p.BeginRun(3);
  p.executor(0).processing_ns = 100;
  p.executor(1).synchronization_ns = 50;
  p.executor(2).messaging_ns = 25;
  EXPECT_EQ(p.TotalProcessingNs(), 100u);
  EXPECT_EQ(p.TotalSyncNs(), 50u);
  EXPECT_EQ(p.TotalMessagingNs(), 25u);
}

TEST(Profiler, RoundRecordsGrowPerRound) {
  Profiler p;
  p.enabled = true;
  p.per_round = true;
  p.BeginRun(2);
  p.BeginRound();
  p.AddRoundProcessing(0, 10);
  p.AddRoundSync(1, 20);
  p.BeginRound();
  p.AddRoundProcessing(1, 30);
  EXPECT_EQ(p.rounds(), 2u);
  EXPECT_EQ(p.round_processing_ns()[0][0], 10u);
  EXPECT_EQ(p.round_sync_ns()[0][1], 20u);
  EXPECT_EQ(p.round_processing_ns()[1][1], 30u);
}

TEST(Profiler, MergedLpRoundsSortedByRoundThenLp) {
  Profiler p;
  p.enabled = true;
  p.per_lp = true;
  p.BeginRun(2);
  p.AddLpRound(0, {2, 1, 5, 5, 500});
  p.AddLpRound(1, {1, 3, 2, 2, 200});
  p.AddLpRound(0, {1, 0, 1, 1, 100});
  const auto merged = p.MergedLpRounds();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].round, 1u);
  EXPECT_EQ(merged[0].lp, 0u);
  EXPECT_EQ(merged[1].round, 1u);
  EXPECT_EQ(merged[1].lp, 3u);
  EXPECT_EQ(merged[2].round, 2u);
}

TEST(Profiler, UnisonRunPopulatesAllPhases) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  SimConfig cfg;
  cfg.kernel = k;
  cfg.profile = true;
  cfg.profile_per_round = true;
  cfg.profile_per_lp = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 50000, Time::Zero());
  net.Run(Time::Milliseconds(5));

  Profiler& p = net.profiler();
  ASSERT_EQ(p.executors().size(), 2u);
  EXPECT_GT(p.TotalProcessingNs(), 0u);
  EXPECT_GT(p.TotalSyncNs(), 0u);
  EXPECT_GT(p.rounds(), 0u);
  EXPECT_EQ(p.rounds(), net.kernel().rounds());
  const auto merged = p.MergedLpRounds();
  EXPECT_FALSE(merged.empty());
  uint64_t trace_events = 0;
  for (const auto& c : merged) {
    trace_events += c.events;
  }
  // The per-LP trace accounts for every event executed in phase 1; global
  // events (none here) are the only exception.
  EXPECT_EQ(trace_events, net.kernel().processed_events());
}

TEST(Profiler, SequentialRunAccountsAllEventsToWorkerZero) {
  KernelConfig k;
  k.type = KernelType::kSequential;
  SimConfig cfg;
  cfg.kernel = k;
  cfg.profile = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 50000, Time::Zero());
  net.Run(Time::Milliseconds(5));
  EXPECT_EQ(net.profiler().executor(0).events, net.kernel().processed_events());
  EXPECT_GT(net.profiler().executor(0).processing_ns, 0u);
}

}  // namespace
}  // namespace unison
