// Profiler plumbing: per-executor, per-round and per-LP records.
#include <gtest/gtest.h>

#include "src/stats/profiler.h"
#include "tests/test_util.h"

namespace unison {
namespace {

TEST(Profiler, AccumulatesExecutorPhases) {
  Profiler p;
  p.enabled = true;
  p.BeginRun(3);
  p.executor(0).processing_ns = 100;
  p.executor(1).synchronization_ns = 50;
  p.executor(2).messaging_ns = 25;
  EXPECT_EQ(p.TotalProcessingNs(), 100u);
  EXPECT_EQ(p.TotalSyncNs(), 50u);
  EXPECT_EQ(p.TotalMessagingNs(), 25u);
}

TEST(Profiler, RoundRecordsGrowPerRound) {
  Profiler p;
  p.enabled = true;
  p.per_round = true;
  p.BeginRun(2);
  p.BeginRound();
  p.AddRoundProcessing(0, 0, 10);
  p.AddRoundSync(1, 0, 20);
  p.BeginRound();
  p.AddRoundProcessing(1, 1, 30);
  EXPECT_EQ(p.rounds(), 2u);
  ASSERT_EQ(p.round_processing_ns().size(), 2u);
  EXPECT_EQ(p.round_processing_ns()[0][0], 10u);
  EXPECT_EQ(p.round_sync_ns()[0][1], 20u);
  EXPECT_EQ(p.round_processing_ns()[1][1], 30u);
  // Executors that recorded nothing for a round read as zero in the
  // round-major view (rows are padded, not ragged).
  EXPECT_EQ(p.round_processing_ns()[1][0], 0u);
  EXPECT_EQ(p.round_sync_ns()[1][0], 0u);
}

TEST(Profiler, RoundWritesAccumulateIntoSameSlot) {
  // Executors add several deltas against the same (executor, round) key —
  // e.g. the three barrier waits of one Unison round — and the slot sums them.
  Profiler p;
  p.enabled = true;
  p.per_round = true;
  p.BeginRun(1);
  p.BeginRound();
  p.AddRoundSync(0, 0, 5);
  p.AddRoundSync(0, 0, 7);
  p.AddRoundProcessing(0, 0, 11);
  p.AddRoundProcessing(0, 0, 13);
  EXPECT_EQ(p.round_sync_ns()[0][0], 12u);
  EXPECT_EQ(p.round_processing_ns()[0][0], 24u);
}

TEST(Profiler, MergedLpRoundsSortedByRoundThenLp) {
  Profiler p;
  p.enabled = true;
  p.per_lp = true;
  p.BeginRun(2);
  p.AddLpRound(0, {2, 1, 5, 5, 500});
  p.AddLpRound(1, {1, 3, 2, 2, 200});
  p.AddLpRound(0, {1, 0, 1, 1, 100});
  const auto merged = p.MergedLpRounds();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].round, 1u);
  EXPECT_EQ(merged[0].lp, 0u);
  EXPECT_EQ(merged[1].round, 1u);
  EXPECT_EQ(merged[1].lp, 3u);
  EXPECT_EQ(merged[2].round, 2u);
}

TEST(Profiler, UnisonRunPopulatesAllPhases) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  SimConfig cfg;
  cfg.kernel = k;
  cfg.profile = true;
  cfg.profile_per_round = true;
  cfg.profile_per_lp = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 50000, Time::Zero());
  net.Run(Time::Milliseconds(5));

  Profiler& p = net.profiler();
  ASSERT_EQ(p.executors().size(), 2u);
  EXPECT_GT(p.TotalProcessingNs(), 0u);
  EXPECT_GT(p.TotalSyncNs(), 0u);
  EXPECT_GT(p.rounds(), 0u);
  EXPECT_EQ(p.rounds(), net.kernel().rounds());
  const auto merged = p.MergedLpRounds();
  EXPECT_FALSE(merged.empty());
  uint64_t trace_events = 0;
  for (const auto& c : merged) {
    trace_events += c.events;
  }
  // The per-LP trace accounts for every event executed in phase 1; global
  // events (none here) are the only exception.
  EXPECT_EQ(trace_events, net.kernel().processed_events());
}

// The accounting invariant behind Figs. 5b/9b: summing an executor's
// per-round P/S/M rows reproduces its end-of-run totals. PhaseAccountant
// routes each closed interval's exact delta into both the executor
// accumulator and the per-round matrix in the same call, so this holds with
// equality — by construction, for every kernel on the engine. A regression
// here means a phase's time stopped reaching the per-round matrix (the old
// worker-0 phase-2 undercount) or is counted twice.
void CheckRoundRowsSumToTotals(const Profiler& p, uint32_t executors) {
  const auto rp = p.round_processing_ns();
  const auto rs = p.round_sync_ns();
  const auto rm = p.round_messaging_ns();
  ASSERT_EQ(rp.size(), p.rounds());
  ASSERT_EQ(rs.size(), p.rounds());
  ASSERT_EQ(rm.size(), p.rounds());
  std::vector<uint64_t> p_sum(executors, 0);
  std::vector<uint64_t> s_sum(executors, 0);
  std::vector<uint64_t> m_sum(executors, 0);
  for (const auto& row : rp) {
    ASSERT_EQ(row.size(), executors);
    for (uint32_t w = 0; w < executors; ++w) {
      p_sum[w] += row[w];
    }
  }
  for (const auto& row : rs) {
    for (uint32_t w = 0; w < executors; ++w) {
      s_sum[w] += row[w];
    }
  }
  for (const auto& row : rm) {
    ASSERT_EQ(row.size(), executors);
    for (uint32_t w = 0; w < executors; ++w) {
      m_sum[w] += row[w];
    }
  }
  for (uint32_t w = 0; w < executors; ++w) {
    EXPECT_EQ(p_sum[w], p.executors()[w].processing_ns) << "executor " << w;
    EXPECT_EQ(s_sum[w], p.executors()[w].synchronization_ns) << "executor " << w;
    EXPECT_EQ(m_sum[w], p.executors()[w].messaging_ns) << "executor " << w;
  }
}

void RunAndCheckRoundRows(const KernelConfig& k, PartitionMode partition,
                          uint32_t executors) {
  SimConfig cfg;
  cfg.kernel = k;
  cfg.partition = partition;
  cfg.profile = true;
  cfg.profile_per_round = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  if (partition == PartitionMode::kManual) {
    net.SetManualPartition(4, FatTreePodPartition(topo, net.num_nodes()));
  }
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 50000, Time::Zero());
  net.Run(Time::Milliseconds(5));
  ASSERT_EQ(net.profiler().executors().size(), executors);
  CheckRoundRowsSumToTotals(net.profiler(), executors);
}

TEST(Profiler, UnisonRoundRowsSumToExecutorTotals) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  RunAndCheckRoundRows(k, PartitionMode::kAuto, 2);
}

TEST(Profiler, HybridRoundRowsSumToExecutorTotals) {
  KernelConfig k;
  k.type = KernelType::kHybrid;
  k.ranks = 2;
  k.threads = 2;  // 2 ranks x 2 lanes = 4 executors.
  RunAndCheckRoundRows(k, PartitionMode::kAuto, 4);
}

TEST(Profiler, BarrierRoundRowsSumToExecutorTotals) {
  KernelConfig k;
  k.type = KernelType::kBarrier;
  k.deterministic = true;
  RunAndCheckRoundRows(k, PartitionMode::kManual, 4);  // One rank per pod.
}

TEST(Profiler, NullMessageRoundRowsSumToExecutorTotals) {
  // "Rounds" are LP-local iterations for CMB, so row counts are ragged
  // across executors; the invariant still holds row-sum by row-sum.
  KernelConfig k;
  k.type = KernelType::kNullMessage;
  k.deterministic = true;
  RunAndCheckRoundRows(k, PartitionMode::kManual, 4);
}

TEST(Profiler, PhaseTimesBoundedByWallTime) {
  // Each executor's P + S + M is a set of disjoint wall-clock segments nested
  // inside Run(), so it can never exceed the run's wall time (small slack for
  // clock reads landing across the FinishRun timestamp).
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  SimConfig cfg;
  cfg.kernel = k;
  cfg.profile = true;
  cfg.profile_per_round = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 50000, Time::Zero());
  net.Run(Time::Milliseconds(5));

  const RunSummary& summary = net.kernel().run_summary();
  ASSERT_GT(summary.wall_ns, 0u);
  const uint64_t slack = summary.wall_ns / 20 + 1000000;  // 5% + 1ms
  for (const ExecutorPhaseStats& e : net.profiler().executors()) {
    EXPECT_LE(e.processing_ns + e.synchronization_ns + e.messaging_ns,
              summary.wall_ns + slack);
  }
}

TEST(Profiler, SequentialRunAccountsAllEventsToWorkerZero) {
  KernelConfig k;
  k.type = KernelType::kSequential;
  SimConfig cfg;
  cfg.kernel = k;
  cfg.profile = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 50000, Time::Zero());
  net.Run(Time::Milliseconds(5));
  EXPECT_EQ(net.profiler().executor(0).events, net.kernel().processed_events());
  EXPECT_GT(net.profiler().executor(0).processing_ns, 0u);
}

}  // namespace
}  // namespace unison
