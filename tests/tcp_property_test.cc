// TCP property tests: invariants that must hold across a parameter sweep of
// bandwidths, delays, queue sizes and flow sizes — including lossy regimes.
#include <gtest/gtest.h>

#include "src/net/app.h"
#include "src/net/network.h"

namespace unison {
namespace {

struct TcpCase {
  uint64_t bps;
  int64_t delay_us;
  uint32_t queue_pkts;
  uint64_t bytes;
};

class TcpSweep : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpSweep, DeliversAllBytesExactlyOnceWithinSaneTime) {
  const TcpCase c = GetParam();
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  cfg.queue.capacity_bytes = c.queue_pkts * 1500;
  cfg.tcp.min_rto = Time::Milliseconds(2);
  cfg.tcp.initial_rto = Time::Milliseconds(2);
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const NodeId m = net.AddNode();
  net.AddLink(a, m, c.bps * 4, Time::Microseconds(c.delay_us));
  net.AddLink(m, b, c.bps, Time::Microseconds(c.delay_us));  // Bottleneck.
  net.Finalize();
  InstallFlow(net, FlowSpec{a, b, c.bytes, Time::Zero(), {}});
  net.Run(Time::Seconds(30));

  const FlowRecord& f = net.flow_monitor().flow(0);
  ASSERT_TRUE(f.completed) << "bps=" << c.bps << " delay=" << c.delay_us
                           << " queue=" << c.queue_pkts << " bytes=" << c.bytes;
  // Exactly-once delivery: the receiver advanced its cumulative ack point by
  // precisely the flow size (no byte lost, none double-counted).
  EXPECT_EQ(f.rx_bytes, c.bytes);
  // FCT is lower-bounded by transmission + 2 propagation delays.
  const double floor_s = static_cast<double>(c.bytes) * 8 / static_cast<double>(c.bps) +
                         2e-6 * static_cast<double>(c.delay_us);
  EXPECT_GE(f.fct.ToSeconds(), floor_s * 0.95);
  // And upper-bounded by a generous multiple (loss recovery inflates it).
  EXPECT_LE(f.fct.ToSeconds(), floor_s * 50 + 1.0);
  // RTT samples must exceed twice the propagation delay.
  if (f.rtt_samples > 0) {
    EXPECT_GE(f.rtt_sum.ps() / static_cast<int64_t>(f.rtt_samples),
              2 * Time::Microseconds(c.delay_us).ps());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TcpSweep,
    ::testing::Values(TcpCase{1000000, 1000, 64, 50000},       // 1M, WAN-ish.
                      TcpCase{10000000, 100, 16, 200000},      // Small queue.
                      TcpCase{100000000, 10, 8, 1000000},      // Tiny queue, loss.
                      TcpCase{1000000000, 5, 64, 3000000},     // Fast DC link.
                      TcpCase{10000000000ULL, 3, 128, 500000}, // 10G short.
                      TcpCase{100000000, 5000, 256, 2000000},  // Long fat pipe.
                      TcpCase{1000000, 10, 4, 30000},          // Tiny everything.
                      TcpCase{400000000, 50, 32, 1440},        // Single segment+.
                      TcpCase{400000000, 50, 32, 1}));         // One byte.

TEST(TcpProperty, ManyParallelFlowsConserveBytes) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 3;
  cfg.queue.capacity_bytes = 20 * 1500;
  cfg.tcp.min_rto = Time::Milliseconds(2);
  cfg.tcp.initial_rto = Time::Milliseconds(2);
  Network net(cfg);
  // Star around one switch: heavy contention on every egress.
  const NodeId hub = net.AddNode();
  std::vector<NodeId> hosts;
  for (int i = 0; i < 10; ++i) {
    const NodeId h = net.AddNode();
    net.AddLink(h, hub, 200000000ULL, Time::Microseconds(20));
    hosts.push_back(h);
  }
  net.Finalize();
  Rng rng(123, 0);
  uint64_t total = 0;
  for (int f = 0; f < 40; ++f) {
    FlowSpec spec;
    spec.src = hosts[rng.NextU64Below(hosts.size())];
    do {
      spec.dst = hosts[rng.NextU64Below(hosts.size())];
    } while (spec.dst == spec.src);
    spec.bytes = 1 + rng.NextU64Below(300000);
    spec.start = Time::Microseconds(static_cast<int64_t>(rng.NextU64Below(5000)));
    total += spec.bytes;
    InstallFlow(net, spec);
  }
  net.Run(Time::Seconds(20));
  uint64_t delivered = 0;
  net.flow_monitor().ForEachFlow([&delivered](const FlowRecord& f) {
    EXPECT_TRUE(f.completed) << "flow " << f.id;
    EXPECT_EQ(f.rx_bytes, f.bytes) << "flow " << f.id;
    delivered += f.rx_bytes;
  });
  EXPECT_EQ(delivered, total);
}

TEST(TcpProperty, DctcpAlphaStaysInUnitRange) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  cfg.tcp.dctcp = true;
  cfg.tcp.min_rto = Time::Milliseconds(1);
  cfg.queue.kind = QueueConfig::Kind::kDctcp;
  cfg.queue.red_min_th = 20 * 1500;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const NodeId c = net.AddNode();
  net.AddLink(a, b, 1000000000ULL, Time::Microseconds(10));
  net.AddLink(b, c, 100000000ULL, Time::Microseconds(10));
  net.Finalize();
  InstallFlow(net, FlowSpec{a, c, 5000000, Time::Zero(), {}});
  net.Run(Time::Seconds(3));
  const FlowRecord& f = net.flow_monitor().flow(0);
  EXPECT_TRUE(f.completed);
  TcpSender* sender = net.node(a).FindSender(0);
  ASSERT_NE(sender, nullptr);
  EXPECT_GE(sender->dctcp_alpha(), 0.0);
  EXPECT_LE(sender->dctcp_alpha(), 1.0);
  EXPECT_GT(net.AggregateQueueStats().ecn_marked, 0u);
}

TEST(TcpProperty, ZeroByteFlowCompletesImmediately) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.AddLink(a, b, 1000000000ULL, Time::Microseconds(10));
  net.Finalize();
  InstallFlow(net, FlowSpec{a, b, 0, Time::Microseconds(5), {}});
  net.Run(Time::Seconds(1));
  // Nothing to send: the sender completes at start without emitting packets.
  const FlowRecord& f = net.flow_monitor().flow(0);
  EXPECT_TRUE(f.completed);
  EXPECT_TRUE(f.fct.IsZero());
  EXPECT_EQ(f.rx_bytes, 0u);
}

}  // namespace
}  // namespace unison
