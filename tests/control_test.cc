// The live tuning plane: TunableStore epoch semantics, each controller rule
// exercised on synthetic window segments, the claim-order drift replay, and
// the network-level closed loop (published tunables take effect at the next
// window without perturbing results).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/control/controller.h"
#include "src/control/drift_replay.h"
#include "src/control/tunables.h"
#include "src/net/network.h"
#include "tests/test_util.h"

namespace unison {
namespace {

// --- TunableStore ---

TEST(TunableStore, SeedDoesNotConsumeAnEpoch) {
  TunableStore store;
  Tunables t;
  t.sched_period = 7;
  t.parties = 3;
  store.Seed(t);
  EXPECT_EQ(store.epoch(), 0u);  // Epoch 0 == "tuning never acted".
  EXPECT_EQ(store.Get().sched_period, 7u);
  EXPECT_EQ(store.Get().parties, 3u);
}

TEST(TunableStore, PublishBumpsEpochAndRestoreSetsBoth) {
  TunableStore store;
  Tunables t;
  t.sched_period = 4;
  store.Publish(t);
  EXPECT_EQ(store.epoch(), 1u);
  t.sched_period = 2;
  store.Publish(t);
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_EQ(store.Get().sched_period, 2u);

  // Snapshot restore reinstalls captured values *and* the captured epoch.
  Tunables captured;
  captured.sched_period = 9;
  captured.max_window_ps = 123;
  store.Restore(captured, 5);
  EXPECT_EQ(store.epoch(), 5u);
  EXPECT_EQ(store.Get().sched_period, 9u);
  EXPECT_EQ(store.Get().max_window_ps, 123);
}

// --- Controller rules on synthetic segments ---

struct SegmentSpec {
  uint32_t rounds = 8;
  uint32_t executors = 2;   // Width of the per-round P rows.
  uint32_t parties = 2;     // Kernel knob value the window ran with.
  uint32_t sched_period = 8;
  uint64_t parked_per_round = 0;
  uint32_t resort_every = 0;  // 0 = no re-sort rounds at all.
  // Per-round processing imbalance ramps from imb_first at each re-sort to
  // imb_last just before the next (Imb = max * W / sum - 1).
  double imb_first = 0.0;
  double imb_last = 0.0;
  uint64_t p_ns = 500;  // Window totals; ratio p/(p+s) drives rule 3.
  uint64_t s_ns = 500;
  int64_t window_start_ps = 0;
  int64_t window_stop_ps = 1'000'000'000;  // 1 ms span.
};

// One executor gets the (1 + d) / W share of the round's processing time,
// the rest split the remainder evenly — an exact imbalance of d for W = 2.
std::vector<uint64_t> ImbalancedRow(uint32_t executors, double d) {
  const double total = 1e6 * executors;
  const double heavy = (1.0 + d) * total / executors;
  const double light = (total - heavy) / (executors - 1);
  std::vector<uint64_t> row(executors, static_cast<uint64_t>(light));
  row[0] = static_cast<uint64_t>(heavy);
  return row;
}

WindowTraceSegment MakeSegment(const SegmentSpec& spec) {
  WindowTraceSegment seg;
  seg.summary.kernel = "synthetic";
  seg.summary.executors = spec.executors;
  seg.summary.parties = spec.parties;
  seg.summary.sched_period = spec.sched_period;
  seg.summary.rounds = spec.rounds;
  seg.summary.processing_ns = spec.p_ns;
  seg.summary.synchronization_ns = spec.s_ns;
  seg.summary.window_start_ps = spec.window_start_ps;
  seg.summary.window_stop_ps = spec.window_stop_ps;
  for (uint32_t r = 0; r < spec.rounds; ++r) {
    RoundTraceRecord rec;
    rec.round = r;
    rec.parked = spec.parked_per_round;
    rec.resorted = spec.resort_every > 0 && r % spec.resort_every == 0;
    seg.records.push_back(rec);
    double imb = spec.imb_first;
    if (spec.resort_every >= 2) {
      const uint32_t pos = r % spec.resort_every;
      imb += (spec.imb_last - spec.imb_first) * pos / (spec.resort_every - 1);
    }
    seg.round_p.push_back(ImbalancedRow(spec.executors, imb));
  }
  return seg;
}

// A config whose thresholds are the defaults but with the round gate and the
// machine size pinned, so tests are host-independent. Patience 1 restores the
// act-on-first-window behaviour the single-segment rule tests exercise; the
// hysteresis tests below set their own patience.
ControllerConfig TestConfig() {
  ControllerConfig cfg;
  cfg.min_rounds = 1;
  cfg.cpu_limit = 64;
  cfg.rule_patience = 1;
  return cfg;
}

TEST(Controller, ResortDriftMeasuresPerStretchGrowth) {
  SegmentSpec spec;
  spec.rounds = 8;
  spec.resort_every = 4;
  spec.imb_first = 0.1;
  spec.imb_last = 0.4;
  const double drift = Controller::ResortDrift(MakeSegment(spec));
  EXPECT_NEAR(drift, 0.3, 1e-3);  // Both stretches grow 0.1 -> 0.4.
}

TEST(Controller, ResortShrinkHalvesThePeriod) {
  TunableStore store;
  Controller ctl(TestConfig(), &store);
  SegmentSpec spec;
  spec.sched_period = 8;
  spec.resort_every = 4;
  spec.imb_first = 0.0;
  spec.imb_last = 0.5;  // Drift 0.5 > drift_shrink 0.30.
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.Get().sched_period, 4u);
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_EQ(ctl.decisions()[0].rule, "resort-shrink");
}

TEST(Controller, ResortGrowDoublesThePeriod) {
  TunableStore store;
  Controller ctl(TestConfig(), &store);
  SegmentSpec spec;
  spec.sched_period = 8;
  spec.resort_every = 4;
  spec.imb_first = 0.2;
  spec.imb_last = 0.2;  // Drift 0 < drift_grow 0.05: re-sorting buys nothing.
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_EQ(store.Get().sched_period, 16u);
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_EQ(ctl.decisions()[0].rule, "resort-grow");
}

TEST(Controller, OversubscribedFitsPartiesToTheMachine) {
  TunableStore store;
  ControllerConfig cfg = TestConfig();
  cfg.cpu_limit = 4;
  Controller ctl(cfg, &store);
  SegmentSpec spec;
  spec.executors = 8;  // Twice the machine.
  spec.parties = 8;
  spec.parked_per_round = 10;  // > parks_per_round_high 4.0.
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_EQ(store.Get().parties, 4u);  // knob * cpu_limit / executors.
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_EQ(ctl.decisions()[0].rule, "oversubscribed");
}

TEST(Controller, AffinityFallbackAtThePartyFloor) {
  TunableStore store;
  Tunables seed;
  seed.affinity = AffinityPolicy::kCompact;
  store.Seed(seed);
  Controller ctl(TestConfig(), &store);
  SegmentSpec spec;
  spec.executors = 1;  // Already at the floor; parks persist anyway.
  spec.parties = 1;
  spec.parked_per_round = 10;
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_EQ(store.Get().affinity, AffinityPolicy::kNone);
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_EQ(ctl.decisions()[0].rule, "affinity-fallback");
}

TEST(Controller, WindowShrinkOnSyncBoundWindows) {
  TunableStore store;
  Controller ctl(TestConfig(), &store);
  SegmentSpec spec;
  spec.p_ns = 100;
  spec.s_ns = 900;  // P/(P+S) = 0.1 < ps_low 0.35.
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));
  // Unbounded horizon seeds from the observed window span (1 ms), then halves.
  EXPECT_EQ(store.Get().max_window_ps, 500'000'000);
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_EQ(ctl.decisions()[0].rule, "window-shrink");

  // Repeated shrink saturates at min_window_ps and stops publishing.
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_EQ(store.Get().max_window_ps, ctl.config().min_window_ps);
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec)));
}

TEST(Controller, WindowGrowRevertsToUnboundedPastTheCap) {
  TunableStore store;
  Tunables seed;
  seed.max_window_ps = 600'000'000'000;  // 0.6 s, one doubling past the cap.
  store.Seed(seed);
  Controller ctl(TestConfig(), &store);
  SegmentSpec spec;
  spec.p_ns = 900;
  spec.s_ns = 100;  // P/(P+S) = 0.9 > ps_high 0.70.
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_EQ(store.Get().max_window_ps, 0);
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_EQ(ctl.decisions()[0].rule, "window-grow");
}

// --- Hysteresis (rule_patience) ---

TEST(Controller, HysteresisDelaysRuleUntilPatienceWindows) {
  TunableStore store;
  ControllerConfig cfg = TestConfig();
  cfg.rule_patience = 2;
  Controller ctl(cfg, &store);
  SegmentSpec spec;
  spec.p_ns = 100;
  spec.s_ns = 900;  // Window-shrink signal every window.
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec)));  // Streak 1 of 2.
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec)));  // Streak 2: publish.
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_EQ(ctl.decisions()[0].rule, "window-shrink");
}

TEST(Controller, HysteresisStreakResetsOnAQuietWindow) {
  TunableStore store;
  ControllerConfig cfg = TestConfig();
  cfg.rule_patience = 2;
  Controller ctl(cfg, &store);
  SegmentSpec noisy;
  noisy.p_ns = 100;
  noisy.s_ns = 900;
  SegmentSpec quiet;  // Balanced P/S: no signal.
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(noisy)));
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(quiet)));  // Resets the streak.
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(noisy)));  // Restarts at 1.
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(noisy)));
  EXPECT_EQ(store.epoch(), 1u);
}

// --- Rebalance rule ---

TEST(Controller, MeanRoundImbalanceAveragesUsableRounds) {
  SegmentSpec spec;
  spec.imb_first = 0.3;  // Constant 0.3 per round (no ramp without re-sorts).
  EXPECT_NEAR(Controller::MeanRoundImbalance(MakeSegment(spec)), 0.3, 1e-3);
}

TEST(Controller, RebalancePublishesLptMovesAfterPatience) {
  TunableStore store;
  ControllerConfig cfg = TestConfig();
  cfg.rebalance_patience = 2;
  Controller ctl(cfg, &store);
  SegmentSpec spec;
  spec.resort_every = 4;
  spec.imb_first = 0.40;
  spec.imb_last = 0.55;  // Drift 0.15: rule 2's dead band; mean imb > 0.25.
  // Executor 0 carries 500 of 700 ns; LPT moves lp 1 over to executor 1.
  const std::vector<uint32_t> owner = {0, 0, 1, 1};
  const std::vector<uint64_t> cost = {400, 100, 100, 100};
  OwnershipView view;
  view.num_executors = 2;
  view.movable = true;
  view.owner_of_lp = &owner;
  view.lp_cost_ns = &cost;

  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec), view));  // Streak 1 of 2.
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec), view));   // Fires.
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.Get().rebalance_seq, 1u);
  ASSERT_EQ(store.Get().moves.size(), 1u);
  EXPECT_EQ(store.Get().moves[0].lp, 1u);
  EXPECT_EQ(store.Get().moves[0].to, 1u);
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_EQ(ctl.decisions()[0].rule, "rebalance");
  EXPECT_GT(ctl.decisions()[0].observed_imbalance, 0.25);
  // LPT makespan 400 over an ideal 350: predicted imbalance 1/7.
  EXPECT_NEAR(ctl.decisions()[0].predicted_imbalance, 400.0 * 2 / 700 - 1,
              1e-6);

  // Cooldown: the same signal cannot re-fire until it expires...
  for (uint32_t i = 0; i < cfg.rebalance_cooldown; ++i) {
    EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec), view));
  }
  // ...after which the streak rebuilds from zero and fires again.
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec), view));
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(spec), view));
  EXPECT_EQ(store.Get().rebalance_seq, 2u);
}

TEST(Controller, RebalanceStaysOffWithoutAnOwnershipView) {
  TunableStore store;
  ControllerConfig cfg = TestConfig();
  cfg.rebalance_patience = 1;
  Controller ctl(cfg, &store);
  SegmentSpec spec;
  spec.resort_every = 4;
  spec.imb_first = 0.40;
  spec.imb_last = 0.55;  // Strong imbalance — but no view, so no rule 4.
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_EQ(store.epoch(), 0u);
}

TEST(Controller, RebalanceSkipsBalancedWindows) {
  TunableStore store;
  ControllerConfig cfg = TestConfig();
  cfg.rebalance_patience = 1;
  Controller ctl(cfg, &store);
  SegmentSpec spec;
  spec.resort_every = 4;
  spec.imb_first = 0.10;
  spec.imb_last = 0.20;  // Mean ~0.15 < rebalance_imbalance_high 0.25.
  const std::vector<uint32_t> owner = {0, 1};
  const std::vector<uint64_t> cost = {100, 100};
  OwnershipView view;
  view.num_executors = 2;
  view.movable = true;
  view.owner_of_lp = &owner;
  view.lp_cost_ns = &cost;
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec), view));
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec), view));
  EXPECT_EQ(store.epoch(), 0u);
}

// --- Cost EWMA (rebalance input smoothing) ---

TEST(Controller, CostEwmaBlendsWindowCosts) {
  TunableStore store;
  ControllerConfig cfg = TestConfig();
  cfg.cost_ewma_alpha = 0.5;
  Controller ctl(cfg, &store);
  SegmentSpec spec;  // Quiet: no rule fires, but the estimator still updates.
  const std::vector<uint32_t> owner = {0, 1};
  std::vector<uint64_t> cost = {400, 100};
  OwnershipView view;
  view.num_executors = 2;
  view.movable = true;
  view.owner_of_lp = &owner;
  view.lp_cost_ns = &cost;

  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec), view));
  ASSERT_EQ(ctl.smoothed_costs().size(), 2u);
  EXPECT_DOUBLE_EQ(ctl.smoothed_costs()[0], 400.0);  // First window: assign.
  EXPECT_DOUBLE_EQ(ctl.smoothed_costs()[1], 100.0);

  cost = {100, 300};
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec), view));
  EXPECT_DOUBLE_EQ(ctl.smoothed_costs()[0], 250.0);  // 0.5*100 + 0.5*400.
  EXPECT_DOUBLE_EQ(ctl.smoothed_costs()[1], 200.0);
}

TEST(Controller, RebalanceConsumesSmoothedCostsNotRawSpikes) {
  TunableStore store;
  ControllerConfig cfg = TestConfig();
  cfg.rebalance_patience = 1;
  cfg.cost_ewma_alpha = 0.0;  // Fully history-weighted after the first window.
  Controller ctl(cfg, &store);
  SegmentSpec quiet;
  SegmentSpec hot;
  hot.resort_every = 4;
  hot.imb_first = 0.40;
  hot.imb_last = 0.55;  // Mean imbalance above the rebalance threshold.
  const std::vector<uint32_t> owner = {0, 0, 1, 1};
  std::vector<uint64_t> cost = {400, 100, 100, 100};
  OwnershipView view;
  view.num_executors = 2;
  view.movable = true;
  view.owner_of_lp = &owner;
  view.lp_cost_ns = &cost;

  // Establish history: lp 0 is the heavy one.
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(quiet), view));
  // A one-window spike claims lp 1 is heavy — but with alpha=0 the smoothed
  // estimate still says lp 0, so LPT keeps lp 0 in place and moves lp 1
  // (the raw costs alone would have moved lp 0 instead).
  cost = {100, 400, 100, 100};
  EXPECT_TRUE(ctl.OnWindowEnd(MakeSegment(hot), view));
  ASSERT_EQ(store.Get().moves.size(), 1u);
  EXPECT_EQ(store.Get().moves[0].lp, 1u);
  EXPECT_EQ(store.Get().moves[0].to, 1u);
}

// --- Spec-horizon rule (rule 5) ---

WindowTraceSegment SpecWindow(uint32_t spec_rounds, uint32_t spec_misses) {
  WindowTraceSegment seg = MakeSegment(SegmentSpec{});  // Otherwise quiet.
  seg.summary.spec_rounds = spec_rounds;
  seg.summary.spec_misses = spec_misses;
  return seg;
}

TEST(Controller, SpecNarrowHalvesHorizonOnMissWindows) {
  TunableStore store;
  Tunables seed;
  seed.spec_horizon_ps = 2'000'000;
  store.Seed(seed);
  Controller ctl(TestConfig(), &store);

  EXPECT_TRUE(ctl.OnWindowEnd(SpecWindow(3, 1)));
  EXPECT_EQ(store.Get().spec_horizon_ps, 1'000'000);
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_EQ(ctl.decisions()[0].rule, "spec-narrow");

  // Repeated misses saturate at the floor, then stop publishing.
  EXPECT_TRUE(ctl.OnWindowEnd(SpecWindow(3, 1)));
  EXPECT_TRUE(ctl.OnWindowEnd(SpecWindow(3, 1)));
  EXPECT_EQ(store.Get().spec_horizon_ps, ctl.config().spec_horizon_min_ps);
  EXPECT_FALSE(ctl.OnWindowEnd(SpecWindow(3, 1)));
}

TEST(Controller, SpecWidenDoublesHorizonOnCleanSpecWindows) {
  TunableStore store;
  Tunables seed;
  seed.spec_horizon_ps = 2'000'000;
  store.Seed(seed);
  ControllerConfig cfg = TestConfig();
  cfg.spec_horizon_max_ps = 4'000'000;
  Controller ctl(cfg, &store);

  EXPECT_TRUE(ctl.OnWindowEnd(SpecWindow(4, 0)));
  EXPECT_EQ(store.Get().spec_horizon_ps, 4'000'000);
  ASSERT_EQ(ctl.decisions().size(), 1u);
  EXPECT_EQ(ctl.decisions()[0].rule, "spec-widen");

  // At the cap the rule goes quiet; and a window that never speculated is no
  // signal in either direction.
  EXPECT_FALSE(ctl.OnWindowEnd(SpecWindow(4, 0)));
  EXPECT_FALSE(ctl.OnWindowEnd(SpecWindow(0, 0)));
  EXPECT_EQ(store.Get().spec_horizon_ps, 4'000'000);
}

TEST(Controller, SpecRuleStaysOffWithoutALiveHorizon) {
  TunableStore store;  // No seed: horizon 0 = speculation off this session.
  Controller ctl(TestConfig(), &store);
  EXPECT_FALSE(ctl.OnWindowEnd(SpecWindow(3, 2)));
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_TRUE(ctl.decisions().empty());
}

TEST(Controller, MinRoundsGateSkipsThinWindows) {
  TunableStore store;
  ControllerConfig cfg = TestConfig();
  cfg.min_rounds = 8;
  Controller ctl(cfg, &store);
  SegmentSpec spec;
  spec.rounds = 3;
  spec.parked_per_round = 100;  // Would otherwise certainly fire rule 1.
  spec.parties = 8;
  spec.executors = 8;
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_TRUE(ctl.decisions().empty());
}

TEST(Controller, QuietWindowPublishesNothing) {
  TunableStore store;
  Controller ctl(TestConfig(), &store);
  SegmentSpec spec;  // Balanced P/S, no parks, no re-sorts.
  EXPECT_FALSE(ctl.OnWindowEnd(MakeSegment(spec)));
  EXPECT_EQ(store.epoch(), 0u);
}

// --- Claim-order drift replay ---

TEST(DriftReplay, UniformCostsMakeStalenessFree) {
  const std::vector<std::vector<uint64_t>> costs(16,
                                                 std::vector<uint64_t>(8, 5));
  const auto curve = ReplayClaimOrderDrift(costs, 4, {1, 2, 4, 8});
  ASSERT_EQ(curve.size(), 4u);
  for (const DriftReplayPoint& pt : curve) {
    EXPECT_DOUBLE_EQ(pt.makespan_ratio, 1.0);
  }
  EXPECT_EQ(RecommendPeriod(curve, 0.05), 8u);
}

TEST(DriftReplay, RotatingHotspotPenalizesStaleOrders) {
  // One heavy LP whose position rotates each round: a never-re-sorted id
  // order schedules the heavy LP late and eats its cost on top of an already
  // loaded worker, while the every-round oracle leads with it.
  const uint32_t rounds = 24;
  const uint32_t lps = 6;
  std::vector<std::vector<uint64_t>> costs(rounds,
                                           std::vector<uint64_t>(lps, 1));
  for (uint32_t r = 0; r < rounds; ++r) {
    costs[r][r % lps] = 100;
  }
  const auto curve = ReplayClaimOrderDrift(costs, 2, {1, rounds});
  ASSERT_EQ(curve.size(), 2u);
  for (const DriftReplayPoint& pt : curve) {
    // The sorted-descending oracle is optimal here, so no order beats it.
    EXPECT_GE(pt.makespan_ratio, 1.0);
  }
  EXPECT_GT(curve[1].makespan_ratio, 1.0001);
}

TEST(DriftReplay, DeterministicAndZeroRoundsSkipped) {
  std::vector<std::vector<uint64_t>> costs(10, std::vector<uint64_t>(5, 0));
  uint64_t x = 1;
  for (auto& round : costs) {
    for (auto& c : round) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      c = x >> 60;  // Small pseudo-costs, some zero.
    }
  }
  costs[3].assign(5, 0);  // A whole round with nothing to schedule.
  const auto a = ReplayClaimOrderDrift(costs, 3, {1, 2, 4});
  const auto b = ReplayClaimOrderDrift(costs, 3, {1, 2, 4});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].staleness, b[i].staleness);
    EXPECT_DOUBLE_EQ(a[i].makespan_ratio, b[i].makespan_ratio);
  }

  const std::vector<std::vector<uint64_t>> empty(8,
                                                 std::vector<uint64_t>(4, 0));
  const auto flat = ReplayClaimOrderDrift(empty, 2, {1, 4});
  for (const DriftReplayPoint& pt : flat) {
    EXPECT_DOUBLE_EQ(pt.makespan_ratio, 1.0);  // Nothing counted.
  }
}

TEST(DriftReplay, RecommendPeriodPicksLargestWithinTolerance) {
  const std::vector<DriftReplayPoint> curve = {
      {1, 1.00}, {2, 1.02}, {4, 1.04}, {8, 1.50}};
  EXPECT_EQ(RecommendPeriod(curve, 0.05), 4u);
  EXPECT_EQ(RecommendPeriod(curve, 0.60), 8u);
  EXPECT_EQ(RecommendPeriod(curve, 0.001), 1u);
  // Baseline is the smallest staleness regardless of input order.
  const std::vector<DriftReplayPoint> shuffled = {
      {8, 1.50}, {1, 1.00}, {4, 1.04}};
  EXPECT_EQ(RecommendPeriod(shuffled, 0.05), 4u);
  EXPECT_EQ(RecommendPeriod({}, 0.05), 1u);
}

// --- Network-level closed loop ---

// A mid-session Publish takes effect at the next window: the kernel samples
// the store before releasing workers, shrinks its party count, and the
// session still lands bit-identical to an untouched run (thread-count
// invariance + window-slicing neutrality).
TEST(TuningPlane, PublishedTunablesTakeEffectNextWindow) {
  KernelConfig kcfg;
  kcfg.type = KernelType::kUnison;
  kcfg.threads = 4;

  FatTreeScenario s = BuildFatTreeScenarioStreaming(kcfg, PartitionMode::kAuto);
  s.net->Run(Time::Milliseconds(1));
  EXPECT_EQ(s.net->kernel().window_tuning().epoch, 0u);
  EXPECT_EQ(s.net->kernel().window_tuning().parties, 4u);

  Tunables t = s.net->tunable_store().Get();
  t.sched_period = 1;
  t.parties = 1;
  s.net->tunable_store().Publish(t);
  s.net->Run(Time::Milliseconds(2));
  EXPECT_EQ(s.net->kernel().window_tuning().epoch, 1u);
  EXPECT_EQ(s.net->kernel().window_tuning().parties, 1u);
  EXPECT_EQ(s.net->kernel().window_tuning().sched_period, 1u);
  EXPECT_EQ(s.net->kernel().run_summary().tuning_epoch, 1u);

  s.net->Run(Time::Milliseconds(5));
  const RunOutcome tuned = OutcomeOf(*s.net);
  const RunOutcome reference =
      RunFatTreeScenarioStreaming(kcfg, PartitionMode::kAuto);
  EXPECT_EQ(tuned.fingerprint, reference.fingerprint);
  EXPECT_EQ(tuned.events, reference.events);
}

// Party values above the config default are clamped (per-executor state is
// sized at Finalize), and 0 means "keep the default".
TEST(TuningPlane, PartiesClampToConfigDefault) {
  KernelConfig kcfg;
  kcfg.type = KernelType::kUnison;
  kcfg.threads = 2;

  FatTreeScenario s = BuildFatTreeScenarioStreaming(kcfg, PartitionMode::kAuto);
  Tunables t = s.net->tunable_store().Get();
  t.parties = 16;  // Above the config default of 2.
  s.net->tunable_store().Publish(t);
  s.net->Run(Time::Milliseconds(1));
  EXPECT_EQ(s.net->kernel().window_tuning().parties, 2u);

  t.parties = 0;  // Keep the default.
  s.net->tunable_store().Publish(t);
  s.net->Run(Time::Milliseconds(2));
  EXPECT_EQ(s.net->kernel().window_tuning().parties, 2u);
}

// kAuto end to end: an aggressive controller config guarantees at least one
// decision (window-shrink fires whenever any barrier time is observed), the
// run slices itself into more windows than the caller asked for, and the
// result is still bit-identical to the static run.
TEST(TuningPlane, AutoTuningIsResultsNeutral) {
  KernelConfig kcfg;
  kcfg.type = KernelType::kUnison;
  kcfg.threads = 2;

  const RunOutcome off = RunFatTreeScenario(kcfg, PartitionMode::kAuto);

  SimConfig cfg;
  cfg.kernel = kcfg;
  cfg.partition = PartitionMode::kAuto;
  cfg.tuning = TuningMode::kAuto;
  cfg.tuning_config.min_rounds = 1;
  cfg.tuning_config.ps_low = 1.0;  // Shrink on every window with sync time.
  cfg.tuning_config.min_window_ps = 500'000'000;  // Floor at 0.5 ms.

  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10'000'000'000ULL,
                                  Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());
  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.1;
  traffic.duration = Time::Milliseconds(5);
  GenerateTraffic(net, traffic);
  net.Run(Time::Milliseconds(5));

  ASSERT_NE(net.controller(), nullptr);
  EXPECT_FALSE(net.controller()->decisions().empty());
  EXPECT_GT(net.tunable_store().epoch(), 0u);
  // The controller bounded the horizon, so one Run() became several windows.
  EXPECT_GT(net.kernel().session_windows(), 1u);

  const RunOutcome tuned = OutcomeOf(net);
  EXPECT_EQ(tuned.fingerprint, off.fingerprint);
  EXPECT_EQ(tuned.events, off.events);
}

}  // namespace
}  // namespace unison
