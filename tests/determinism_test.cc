// Determinism (Fig. 11): with the tie-breaking rule, every kernel produces
// bit-identical outcomes across repeated runs and any thread count.
#include <gtest/gtest.h>

#include "src/stats/digest.h"
#include "tests/test_util.h"

namespace unison {
namespace {

RunOutcome RunScenario(KernelType type, uint32_t threads, bool deterministic, uint64_t seed = 1) {
  KernelConfig k;
  k.type = type;
  k.threads = threads;
  k.deterministic = deterministic;
  const PartitionMode mode =
      (type == KernelType::kBarrier || type == KernelType::kNullMessage)
          ? PartitionMode::kManual
          : (type == KernelType::kSequential ? PartitionMode::kSingle
                                             : PartitionMode::kAuto);
  return RunFatTreeScenario(k, mode, 4, 10, 5, seed);
}

class RepeatedRunTest
    : public ::testing::TestWithParam<std::tuple<KernelType, uint32_t>> {};

TEST_P(RepeatedRunTest, IdenticalEventCountAndResults) {
  const auto [type, threads] = GetParam();
  const RunOutcome first = RunScenario(type, threads, /*deterministic=*/true);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const RunOutcome again = RunScenario(type, threads, /*deterministic=*/true);
    EXPECT_EQ(again.events, first.events) << "epoch " << epoch;
    EXPECT_EQ(again.fingerprint, first.fingerprint) << "epoch " << epoch;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndThreads, RepeatedRunTest,
    ::testing::Values(std::tuple{KernelType::kSequential, 1u},
                      std::tuple{KernelType::kUnison, 1u},
                      std::tuple{KernelType::kUnison, 2u},
                      std::tuple{KernelType::kUnison, 4u},
                      std::tuple{KernelType::kBarrier, 1u},
                      std::tuple{KernelType::kNullMessage, 1u},
                      std::tuple{KernelType::kHybrid, 2u}));

TEST(Determinism, ThreadCountDoesNotChangeResults) {
  const RunOutcome one = RunScenario(KernelType::kUnison, 1, true);
  for (uint32_t threads : {2u, 3u, 5u, 8u}) {
    const RunOutcome many = RunScenario(KernelType::kUnison, threads, true);
    EXPECT_EQ(many.events, one.events) << threads << " threads";
    EXPECT_EQ(many.fingerprint, one.fingerprint) << threads << " threads";
  }
}

TEST(Determinism, SeedChangesResults) {
  const RunOutcome a = RunScenario(KernelType::kUnison, 2, true, /*seed=*/1);
  const RunOutcome b = RunScenario(KernelType::kUnison, 2, true, /*seed=*/2);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Determinism, PerSeedDigestsMatchSequentialAcrossThreadCounts) {
  // Fig. 11 property on the allocation-free event path: for every seed, the
  // parallel kernel's digest must be bit-identical to the sequential
  // kernel's at any thread count. Events now ride move-only inline-buffer
  // closures through mailboxes and the slab FEL, so this pins down that the
  // new transfer path reorders nothing.
  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunOutcome seq = RunScenario(KernelType::kSequential, 1, true, seed);
    for (const uint32_t threads : {1u, 2u, 4u}) {
      const RunOutcome par =
          RunScenario(KernelType::kUnison, threads, true, seed);
      EXPECT_EQ(par.events, seq.events)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(par.fingerprint, seq.fingerprint)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(Determinism, SimultaneousEventOrderIsPartitionIndependent) {
  // Regression: with the paper's literal LP-id tie-break, a heavier workload
  // (more simultaneous cross-LP events) produced slightly different results
  // under different partitions. The node-id key must keep all kernels
  // bit-identical even then.
  const RunOutcome seq = RunFatTreeScenario(
      KernelConfig{.type = KernelType::kSequential}, PartitionMode::kSingle, 4, 10,
      /*sim_ms=*/10);
  KernelConfig hybrid;
  hybrid.type = KernelType::kHybrid;
  hybrid.ranks = 3;
  hybrid.threads = 2;
  const RunOutcome hy =
      RunFatTreeScenario(hybrid, PartitionMode::kAuto, 4, 10, /*sim_ms=*/10);
  EXPECT_EQ(hy.events, seq.events);
  EXPECT_EQ(hy.fingerprint, seq.fingerprint);
  KernelConfig manual;
  manual.type = KernelType::kBarrier;
  const RunOutcome bar =
      RunFatTreeScenario(manual, PartitionMode::kManual, 4, 10, /*sim_ms=*/10);
  EXPECT_EQ(bar.fingerprint, seq.fingerprint);
}

TEST(Determinism, NondeterministicModeStillCompletesAllFlows) {
  // deterministic=false replicates stock ns-3 tie-breaking (insertion
  // order). The run remains causally correct — same flows complete — even
  // though simultaneous-event order (and hence exact statistics) may drift
  // between runs.
  const RunOutcome det = RunScenario(KernelType::kBarrier, 1, true);
  const RunOutcome nondet = RunScenario(KernelType::kBarrier, 1, false);
  EXPECT_EQ(det.summary.flows, nondet.summary.flows);
  EXPECT_EQ(det.summary.completed, nondet.summary.completed);
}

}  // namespace
}  // namespace unison
