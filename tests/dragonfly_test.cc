// Dragonfly topology: structure, partition behaviour on bimodal delays,
// end-to-end traffic under every kernel.
#include <gtest/gtest.h>

#include <map>

#include "src/net/app.h"
#include "src/net/network.h"
#include "src/topo/dragonfly.h"
#include "src/traffic/generator.h"

namespace unison {
namespace {

TEST(Dragonfly, StructureCounts) {
  SimConfig cfg;
  Network net(cfg);
  DragonflyTopo t = BuildDragonfly(net, 4, 3, 2, 10000000000ULL, Time::Nanoseconds(50),
                                   Time::Microseconds(5));
  EXPECT_EQ(t.routers.size(), 12u);
  EXPECT_EQ(t.hosts.size(), 24u);
  // Links: 24 host links + 4 groups * C(3,2)=3 mesh + C(4,2)=6 global.
  EXPECT_EQ(net.links().size(), 24u + 12u + 6u);
  std::map<NodeId, int> deg;
  for (const auto& l : net.links()) {
    ++deg[l.a];
    ++deg[l.b];
  }
  for (NodeId h : t.hosts) {
    EXPECT_EQ(deg[h], 1);
  }
}

TEST(Dragonfly, MedianRuleCutsExactlyGlobalLinks) {
  // 24 host + 12 mesh links at 50ns vs 6 global at 5us: median is 50ns, so
  // only the global links (delay >= median AND > 0... all are >= median) —
  // with a 50ns median every link qualifies for the cut. Use zero-delay
  // local links to pin the expectation: only global links are cut, giving
  // one LP per group.
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  Network net(cfg);
  DragonflyTopo t =
      BuildDragonfly(net, 4, 3, 2, 10000000000ULL, Time::Zero(), Time::Microseconds(5));
  net.Finalize();
  const Partition& p = net.partition();
  EXPECT_EQ(p.num_lps, 4u);  // One LP per group.
  EXPECT_EQ(p.lookahead, Time::Microseconds(5));
  for (uint32_t g = 0; g < 4; ++g) {
    const LpId lp = p.lp_of_node[t.RouterAt(g, 0)];
    for (uint32_t r = 1; r < 3; ++r) {
      EXPECT_EQ(p.lp_of_node[t.RouterAt(g, r)], lp);
    }
  }
}

TEST(Dragonfly, AllPairsRoutable) {
  SimConfig cfg;
  Network net(cfg);
  DragonflyTopo t = BuildDragonfly(net, 4, 3, 2, 10000000000ULL, Time::Nanoseconds(50),
                                   Time::Microseconds(5));
  net.Finalize();
  for (NodeId d : t.hosts) {
    if (d != t.hosts[0]) {
      EXPECT_GE(net.routing().EcmpWidth(t.hosts[0], d), 1u);
    }
  }
}

TEST(Dragonfly, KernelsAgreeUnderAdversarialGroupTraffic) {
  auto run = [](KernelType kernel) {
    SimConfig cfg;
    cfg.kernel.type = kernel;
    cfg.kernel.threads = 3;
    cfg.seed = 44;
    Network net(cfg);
    DragonflyTopo t = BuildDragonfly(net, 4, 3, 2, 10000000000ULL, Time::Nanoseconds(50),
                                     Time::Microseconds(5));
    net.Finalize();
    // Adversarial: every host in group 0 blasts group 2 (one global link).
    for (uint32_t h = 0; h < 6; ++h) {
      InstallFlow(net, FlowSpec{t.hosts[h], t.hosts[12 + h], 200000,
                                Time::Microseconds(h), {}});
    }
    net.Run(Time::Milliseconds(20));
    return std::pair{net.kernel().processed_events(), net.flow_monitor().Fingerprint()};
  };
  const auto seq = run(KernelType::kSequential);
  EXPECT_EQ(run(KernelType::kUnison), seq);
  EXPECT_EQ(run(KernelType::kHybrid), seq);
  EXPECT_GT(seq.first, 1000u);
}

}  // namespace
}  // namespace unison
