// Shared helpers for the test suite: canned scenarios that run the same
// model under different kernels and report comparable outcomes.
#ifndef UNISON_TESTS_TEST_UTIL_H_
#define UNISON_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>

#include "src/kernel/engine/executor_pool.h"
#include "src/net/app.h"
#include "src/net/network.h"
#include "src/stats/digest.h"
#include "src/topo/fat_tree.h"
#include "src/traffic/flow_source.h"
#include "src/traffic/generator.h"

namespace unison {

struct RunOutcome {
  uint64_t events = 0;
  uint64_t fingerprint = 0;
  FlowSummary summary;
  uint64_t rounds = 0;
  uint32_t lps = 0;
};

// Builds a k=4 fat-tree with permutation + random traffic and runs it for
// `sim_ms` milliseconds of simulated time under the given kernel config.
inline RunOutcome RunFatTreeScenario(const KernelConfig& kcfg, PartitionMode partition,
                                     uint32_t k = 4, uint64_t gbps = 10, int sim_ms = 5,
                                     uint64_t seed = 1, double load = 0.1) {
  SimConfig cfg;
  cfg.kernel = kcfg;
  cfg.partition = partition;
  cfg.seed = seed;
  Network net(cfg);
  FatTreeTopo topo =
      BuildFatTree(net, k, gbps * 1000000000ULL, Time::Microseconds(3));
  if (partition == PartitionMode::kManual) {
    auto lp = FatTreePodPartition(topo, net.num_nodes());
    net.SetManualPartition(k, std::move(lp));
  }
  net.Finalize();

  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());
  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = load;
  traffic.duration = Time::Milliseconds(sim_ms);
  GenerateTraffic(net, traffic);

  net.Run(Time::Milliseconds(sim_ms));

  RunOutcome out;
  out.events = net.kernel().processed_events();
  out.fingerprint = net.flow_monitor().Fingerprint();
  out.summary = net.flow_monitor().Summarize();
  out.rounds = net.kernel().rounds();
  out.lps = net.kernel().num_lps();
  return out;
}

// The same scenario advanced as a windowed session: `windows` consecutive
// Run() calls covering [0, sim_ms) in equal slices. Per the session
// invariant, the outcome must be bit-identical to RunFatTreeScenario with the
// same parameters for any window count. When `spawned_delta` is non-null it
// receives the number of OS threads spawned process-wide *between* the first
// and last window — zero when the pool parks its workers as promised.
inline RunOutcome RunFatTreeScenarioWindowed(
    const KernelConfig& kcfg, PartitionMode partition, uint32_t windows,
    uint32_t k = 4, uint64_t gbps = 10, int sim_ms = 5, uint64_t seed = 1,
    uint64_t* spawned_delta = nullptr) {
  SimConfig cfg;
  cfg.kernel = kcfg;
  cfg.partition = partition;
  cfg.seed = seed;
  Network net(cfg);
  FatTreeTopo topo =
      BuildFatTree(net, k, gbps * 1000000000ULL, Time::Microseconds(3));
  if (partition == PartitionMode::kManual) {
    auto lp = FatTreePodPartition(topo, net.num_nodes());
    net.SetManualPartition(k, std::move(lp));
  }
  net.Finalize();

  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());
  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.1;
  traffic.duration = Time::Milliseconds(sim_ms);
  GenerateTraffic(net, traffic);

  const int64_t total_ps = Time::Milliseconds(sim_ms).ps();
  uint64_t spawned_before = 0;
  for (uint32_t w = 1; w <= windows; ++w) {
    if (w == 2 && spawned_delta != nullptr) {
      spawned_before = ExecutorPool::TotalThreadsSpawned();
    }
    const Time stop = w == windows
                          ? Time::Milliseconds(sim_ms)
                          : Time::Picoseconds(total_ps * w / windows);
    net.Run(stop);
  }
  if (spawned_delta != nullptr) {
    *spawned_delta = windows > 1
                         ? ExecutorPool::TotalThreadsSpawned() - spawned_before
                         : 0;
  }

  RunOutcome out;
  out.events = net.kernel().session_events();
  out.fingerprint = net.flow_monitor().Fingerprint();
  out.summary = net.flow_monitor().Summarize();
  out.rounds = net.kernel().session_rounds();
  out.lps = net.kernel().num_lps();
  return out;
}

// RunFatTreeScenarioWindowed with full SimConfig control: the tuning-plane
// tests need to set TuningMode/ControllerConfig (and compare against the
// plain helpers, which leave tuning off). `windows` counts the *caller's*
// Run() slices; under kAuto the controller may sub-slice further. When
// `digest` is non-null it receives the end-of-run RunDigest.
inline RunOutcome RunFatTreeScenarioConfigured(SimConfig cfg, uint32_t windows,
                                               uint32_t k = 4,
                                               uint64_t gbps = 10,
                                               int sim_ms = 5,
                                               RunDigest* digest = nullptr) {
  Network net(cfg);
  FatTreeTopo topo =
      BuildFatTree(net, k, gbps * 1000000000ULL, Time::Microseconds(3));
  if (cfg.partition == PartitionMode::kManual) {
    auto lp = FatTreePodPartition(topo, net.num_nodes());
    net.SetManualPartition(k, std::move(lp));
  }
  net.Finalize();

  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());
  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.1;
  traffic.duration = Time::Milliseconds(sim_ms);
  GenerateTraffic(net, traffic);

  const int64_t total_ps = Time::Milliseconds(sim_ms).ps();
  for (uint32_t w = 1; w <= windows; ++w) {
    const Time stop = w == windows
                          ? Time::Milliseconds(sim_ms)
                          : Time::Picoseconds(total_ps * w / windows);
    net.Run(stop);
  }
  if (digest != nullptr) {
    *digest = DigestOf(net);
  }

  RunOutcome out;
  out.events = net.kernel().session_events();
  out.fingerprint = net.flow_monitor().Fingerprint();
  out.summary = net.flow_monitor().Summarize();
  out.rounds = net.kernel().session_rounds();
  out.lps = net.kernel().num_lps();
  return out;
}

// A built-but-not-yet-run fat-tree scenario: permutation flows installed up
// front plus streaming per-host FlowSources. The snapshot/fork tests advance
// the network window by window, so they need the live Network rather than a
// finished RunOutcome.
struct FatTreeScenario {
  std::unique_ptr<Network> net;
  FatTreeTopo topo;
  StreamingTraffic stream;
};

inline FatTreeScenario BuildFatTreeScenarioStreaming(
    const KernelConfig& kcfg, PartitionMode partition, uint32_t k = 4,
    uint64_t gbps = 10, int sim_ms = 5, uint64_t seed = 1, double load = 0.1) {
  SimConfig cfg;
  cfg.kernel = kcfg;
  cfg.partition = partition;
  cfg.seed = seed;
  FatTreeScenario s;
  s.net = std::make_unique<Network>(cfg);
  s.topo = BuildFatTree(*s.net, k, gbps * 1000000000ULL, Time::Microseconds(3));
  if (partition == PartitionMode::kManual) {
    auto lp = FatTreePodPartition(s.topo, s.net->num_nodes());
    s.net->SetManualPartition(k, std::move(lp));
  }
  s.net->Finalize();

  GeneratePermutation(*s.net, s.topo.hosts, 200 * 1024, Time::Zero());
  TrafficSpec traffic;
  traffic.hosts = s.topo.hosts;
  traffic.bisection_bps = s.topo.bisection_bps;
  traffic.load = load;
  traffic.duration = Time::Milliseconds(sim_ms);
  s.stream = InstallFlowSources(*s.net, traffic);
  return s;
}

inline RunOutcome OutcomeOf(Network& net) {
  RunOutcome out;
  out.events = net.kernel().session_events();
  out.fingerprint = net.flow_monitor().Fingerprint();
  out.summary = net.flow_monitor().Summarize();
  out.rounds = net.kernel().session_rounds();
  out.lps = net.kernel().num_lps();
  return out;
}

// The same scenario with the Poisson load installed as streaming per-host
// FlowSources (one pending arrival each) instead of materialized flows, run
// in `windows` consecutive Run() slices (1 = monolithic). Per the streaming
// invariant, the outcome is bit-identical to RunFatTreeScenario /
// RunFatTreeScenarioWindowed with the same parameters. When `streamed_flows`
// is non-null it receives the number of flows the sources installed at run
// time.
inline RunOutcome RunFatTreeScenarioStreaming(
    const KernelConfig& kcfg, PartitionMode partition, uint32_t windows = 1,
    uint32_t k = 4, uint64_t gbps = 10, int sim_ms = 5, uint64_t seed = 1,
    double load = 0.1, uint64_t* streamed_flows = nullptr) {
  FatTreeScenario s =
      BuildFatTreeScenarioStreaming(kcfg, partition, k, gbps, sim_ms, seed, load);

  const int64_t total_ps = Time::Milliseconds(sim_ms).ps();
  for (uint32_t w = 1; w <= windows; ++w) {
    const Time stop = w == windows
                          ? Time::Milliseconds(sim_ms)
                          : Time::Picoseconds(total_ps * w / windows);
    s.net->Run(stop);
  }
  if (streamed_flows != nullptr) {
    *streamed_flows = s.stream.set->installed_flows();
  }
  return OutcomeOf(*s.net);
}

}  // namespace unison

#endif  // UNISON_TESTS_TEST_UTIL_H_
