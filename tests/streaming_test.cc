// The streaming traffic path: per-host FlowSources that lazily schedule one
// pending arrival each must be observationally identical to materializing
// the whole TrafficSpec at setup — bit-identical FlowMonitor fingerprints
// for every kernel, thread count and window split — while keeping the FEL
// footprint at O(hosts). Plus the FlowMonitor shard machinery: per-executor
// registration, window-boundary merging (associative), and summaries that
// match an unsharded monitor.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/executor_id.h"
#include "src/stats/flow_monitor.h"
#include "src/traffic/flow_source.h"
#include "tests/test_util.h"

namespace unison {
namespace {

struct KernelCase {
  const char* name;
  KernelConfig config;
  PartitionMode partition;
};

std::vector<KernelCase> AllKernels() {
  std::vector<KernelCase> cases;
  {
    KernelConfig k;
    k.type = KernelType::kSequential;
    cases.push_back({"sequential", k, PartitionMode::kSingle});
  }
  {
    KernelConfig k;
    k.type = KernelType::kBarrier;
    k.deterministic = true;
    cases.push_back({"barrier", k, PartitionMode::kManual});
  }
  {
    KernelConfig k;
    k.type = KernelType::kNullMessage;
    k.deterministic = true;
    cases.push_back({"nullmsg", k, PartitionMode::kManual});
  }
  {
    KernelConfig k;
    k.type = KernelType::kUnison;
    k.threads = 2;
    cases.push_back({"unison", k, PartitionMode::kAuto});
  }
  {
    KernelConfig k;
    k.type = KernelType::kHybrid;
    k.ranks = 2;
    k.threads = 2;
    cases.push_back({"hybrid", k, PartitionMode::kAuto});
  }
  return cases;
}

class StreamingEquivalence
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

// The tentpole invariant of the streaming path: driving the same TrafficSpec
// through FlowSources — monolithically or split into windows — produces the
// same flows with the same outcomes as materializing it up front. Event
// counts legitimately differ (the arrival chain itself is events), so the
// comparison is the flow fingerprint and the summary.
TEST_P(StreamingEquivalence, MatchesMaterialized) {
  const int kernel_index = std::get<0>(GetParam());
  const uint32_t windows = std::get<1>(GetParam());
  const KernelCase kc = AllKernels()[kernel_index];
  SCOPED_TRACE(std::string(kc.name) + " x " + std::to_string(windows));

  // Load 1.0 keeps the arrival rate high enough that every host streams real
  // flows inside the 5ms window (at the suite's default 0.1 the fixed seed
  // draws no arrival before 5ms and the comparison would be vacuous).
  const RunOutcome materialized =
      RunFatTreeScenario(kc.config, kc.partition, 4, 10, 5, 1, 1.0);
  uint64_t streamed_flows = 0;
  const RunOutcome streaming = RunFatTreeScenarioStreaming(
      kc.config, kc.partition, windows, 4, 10, 5, 1, 1.0, &streamed_flows);

  EXPECT_EQ(streaming.fingerprint, materialized.fingerprint);
  EXPECT_EQ(streaming.summary.flows, materialized.summary.flows);
  EXPECT_EQ(streaming.summary.completed, materialized.summary.completed);
  EXPECT_EQ(streaming.summary.total_rx_bytes, materialized.summary.total_rx_bytes);
  EXPECT_EQ(streaming.summary.total_retransmits,
            materialized.summary.total_retransmits);
  // Every Poisson flow was installed at run time (the permutation prefill
  // accounts for the difference against the monitor total).
  EXPECT_GT(streamed_flows, 0u);
  EXPECT_EQ(streamed_flows + 16, streaming.summary.flows);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllSplits, StreamingEquivalence,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1u, 2u, 5u)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint32_t>>& info) {
      return std::string(AllKernels()[std::get<0>(info.param)].name) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// Registration lands in a different shard per thread count, yet the
// fingerprint is thread-count-invariant (it hashes stable flow identity, not
// shard-encoded ids).
TEST(StreamingEquivalence, ThreadCountInvariant) {
  KernelConfig seq;
  seq.type = KernelType::kSequential;
  const RunOutcome base =
      RunFatTreeScenarioStreaming(seq, PartitionMode::kSingle, 1, 4, 10, 5, 1, 1.0);
  for (uint32_t threads : {1u, 2u, 4u}) {
    KernelConfig k;
    k.type = KernelType::kUnison;
    k.threads = threads;
    SCOPED_TRACE("unison threads=" + std::to_string(threads));
    const RunOutcome out =
        RunFatTreeScenarioStreaming(k, PartitionMode::kAuto, 1, 4, 10, 5, 1, 1.0);
    EXPECT_EQ(out.fingerprint, base.fingerprint);
    EXPECT_EQ(out.summary.completed, base.summary.completed);
  }
}

// The point of the streaming path: pending arrivals in the FELs stay at
// O(hosts) — exactly one per source — no matter how long the arrival window
// is, where materialization pre-loads every flow of the window.
TEST(StreamingFootprint, PendingArrivalsAreOneFEntryPerSource) {
  for (const int duration_ms : {10, 100}) {
    SimConfig cfg;
    cfg.kernel.type = KernelType::kSequential;
    Network net(cfg);
    FatTreeTopo topo =
        BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
    net.Finalize();
    TrafficSpec spec;
    spec.hosts = topo.hosts;
    spec.bisection_bps = topo.bisection_bps;
    spec.load = 0.3;
    spec.duration = Time::Milliseconds(duration_ms);
    const StreamingTraffic stream = InstallFlowSources(net, spec);

    uint64_t pending = net.kernel().public_lp()->fel().Size();
    for (uint32_t i = 0; i < net.kernel().num_lps(); ++i) {
      pending += net.kernel().lp(i)->fel().Size();
    }
    SCOPED_TRACE("duration_ms=" + std::to_string(duration_ms));
    // A source counts only if its first arrival lands inside the window, so
    // sources <= hosts; each live source contributes exactly one FEL entry.
    EXPECT_GT(stream.sources, 0u);
    EXPECT_LE(stream.sources, topo.hosts.size());
    EXPECT_EQ(pending, stream.sources);       // One pending arrival per host.
    EXPECT_EQ(net.flow_monitor().size(), 0u); // No flow materialized yet.
  }
}

// Injection paths: repeated injections of the same spec must draw fresh
// arrivals (the old rng-stream footgun), and the streaming injection must
// match the materialized one batch for batch.
TEST(StreamingInjection, RepeatedInjectionDrawsFreshFlows) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  TrafficSpec spec;
  spec.hosts = topo.hosts;
  spec.bisection_bps = topo.bisection_bps;
  spec.load = 1.5;  // High enough that both batches draw flows inside 5ms.
  spec.duration = Time::Milliseconds(5);

  const GeneratedTraffic first = InjectTraffic(net, spec);
  const GeneratedTraffic second = InjectTraffic(net, spec);
  ASSERT_GT(first.flow_ids.size(), 0u);
  ASSERT_GT(second.flow_ids.size(), 0u);

  // Identical streams would replay identical draws; both batches are anchored
  // at the same session time, so their start offsets compare directly.
  std::vector<int64_t> starts_a;
  std::vector<int64_t> starts_b;
  for (uint32_t id : first.flow_ids) {
    starts_a.push_back(net.flow_monitor().flow(id).start.ps());
  }
  for (uint32_t id : second.flow_ids) {
    starts_b.push_back(net.flow_monitor().flow(id).start.ps());
  }
  EXPECT_NE(starts_a, starts_b);
}

TEST(StreamingInjection, StreamingInjectionMatchesMaterializedInjection) {
  auto run = [](bool streaming) {
    SimConfig cfg;
    cfg.kernel.type = KernelType::kUnison;
    cfg.kernel.threads = 2;
    Network net(cfg);
    FatTreeTopo topo =
        BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
    net.Finalize();
    TrafficSpec spec;
    spec.hosts = topo.hosts;
    spec.bisection_bps = topo.bisection_bps;
    spec.load = 1.5;
    spec.duration = Time::Milliseconds(2);
    // Two injections per window boundary, same spec: each must draw a fresh
    // stream, identically in both modes.
    net.Run(Time::Milliseconds(1));
    if (streaming) {
      InjectFlowSources(net, spec);
      InjectFlowSources(net, spec);
    } else {
      InjectTraffic(net, spec);
      InjectTraffic(net, spec);
    }
    net.Run(Time::Milliseconds(6));
    return net.flow_monitor().Fingerprint();
  };
  EXPECT_EQ(run(true), run(false));
}

// --- FlowMonitor shard mechanics (no network; executor ids set directly) ---

class ShardGuard {
 public:
  ~ShardGuard() { SetCurrentExecutorId(kNoExecutor); }
};

TEST(FlowMonitorShards, RegistrationRoundTripsAcrossShards) {
  ShardGuard guard;
  FlowMonitor m;
  m.ConfigureShards(4);  // Shard 0 + executors 0..2.
  std::vector<uint32_t> ids;
  for (int ex : {kNoExecutor, 0, 1, 2}) {
    SetCurrentExecutorId(ex);
    ids.push_back(m.Register(10 + static_cast<NodeId>(ex), 20, 1000, Time::Zero()));
  }
  SetCurrentExecutorId(kNoExecutor);
  EXPECT_EQ(m.size(), 4u);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(m.shard_flows(s), 1u) << "shard " << s;
  }
  // Ids decode back to the right record through flow().
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(m.flow(ids[i]).id, ids[i]);
    EXPECT_EQ(m.flow(ids[i]).src, 10 + static_cast<NodeId>(i) - 1);
  }
  size_t visited = 0;
  m.ForEachFlow([&visited](const FlowRecord&) { ++visited; });
  EXPECT_EQ(visited, 4u);
}

// Scripted hook sequence used by the merge/summary tests; `executors` > 0
// spreads the calls across that many executor contexts, 0 keeps everything
// in shard 0 (the unsharded reference).
void ApplyScriptedOps(FlowMonitor& m, int executors, int flows) {
  std::vector<uint32_t> ids;
  for (int i = 0; i < flows; ++i) {
    SetCurrentExecutorId(executors > 0 ? i % executors : kNoExecutor);
    ids.push_back(m.Register(static_cast<NodeId>(i), static_cast<NodeId>(i + 100),
                             1000 + static_cast<uint64_t>(i),
                             Time::Milliseconds(i)));
  }
  for (int i = 0; i < flows; ++i) {
    // Receiver-side hooks deliberately run on a *different* executor than the
    // one that registered the flow, as they do in a real run.
    SetCurrentExecutorId(executors > 0 ? (i + 1) % executors : kNoExecutor);
    m.AddRxBytes(ids[static_cast<size_t>(i)], 500 + static_cast<uint64_t>(i),
                 Time::Milliseconds(10 + i));
    m.AddRtt(ids[static_cast<size_t>(i)], Time::Microseconds(100 + i));
    if (i % 3 == 0) {
      m.AddRetransmit(ids[static_cast<size_t>(i)]);
    }
    if (i % 2 == 0) {
      m.Complete(ids[static_cast<size_t>(i)], Time::Milliseconds(20 + 2 * i));
    }
  }
  SetCurrentExecutorId(kNoExecutor);
}

TEST(FlowMonitorShards, MergeIsAssociative) {
  ShardGuard guard;
  // A merges after every batch, B once at the end: same merged view.
  FlowMonitor a;
  a.ConfigureShards(4);
  ApplyScriptedOps(a, 3, 9);
  a.MergeWindow();
  ApplyScriptedOps(a, 3, 7);
  a.MergeWindow();

  FlowMonitor b;
  b.ConfigureShards(4);
  ApplyScriptedOps(b, 3, 9);
  ApplyScriptedOps(b, 3, 7);
  b.MergeWindow();

  EXPECT_TRUE(a.merged() == b.merged());
  EXPECT_EQ(a.windows_merged(), 2u);
  EXPECT_EQ(b.windows_merged(), 1u);
  // And nothing is left un-merged in either monitor.
  for (uint32_t s = 0; s < a.num_shards(); ++s) {
    EXPECT_TRUE(a.shard_delta(s) == FlowCounters{}) << "shard " << s;
  }
}

TEST(FlowMonitorShards, MergedCountersMatchRecordScan) {
  ShardGuard guard;
  FlowMonitor m;
  m.ConfigureShards(5);
  ApplyScriptedOps(m, 4, 13);
  m.MergeWindow();

  FlowCounters scan;
  m.ForEachFlow([&scan](const FlowRecord& rec) {
    ++scan.flows;
    scan.rx_bytes += rec.rx_bytes;
    scan.retransmits += rec.retransmits;
    if (rec.completed) {
      ++scan.completed;
      scan.fct_ps_sum += rec.fct.ps();
    }
  });
  EXPECT_TRUE(m.merged() == scan);
}

TEST(FlowMonitorShards, SummaryAndFingerprintMatchUnshardedMonitor) {
  ShardGuard guard;
  FlowMonitor sharded;
  sharded.ConfigureShards(4);
  ApplyScriptedOps(sharded, 3, 12);

  FlowMonitor plain;  // Default single shard; all ops from shard 0.
  ApplyScriptedOps(plain, 0, 12);

  EXPECT_EQ(sharded.Fingerprint(), plain.Fingerprint());

  const FlowSummary s = sharded.Summarize();
  const FlowSummary p = plain.Summarize();
  EXPECT_EQ(s.flows, p.flows);
  EXPECT_EQ(s.completed, p.completed);
  EXPECT_EQ(s.total_rx_bytes, p.total_rx_bytes);
  EXPECT_EQ(s.total_retransmits, p.total_retransmits);
  // Same multiset of per-flow values; only the summation order differs.
  EXPECT_NEAR(s.mean_fct_ms, p.mean_fct_ms, 1e-9);
  EXPECT_NEAR(s.mean_rtt_ms, p.mean_rtt_ms, 1e-9);
  EXPECT_NEAR(s.mean_throughput_mbps, p.mean_throughput_mbps, 1e-9);
  EXPECT_EQ(s.p99_fct_ms, p.p99_fct_ms);  // Selection picks the same element.
}

// Regression for the percentile edge cases: registered-but-uncompleted flows
// must leave every FCT-derived field at its zero default (no selection on an
// empty vector), and a single completion is its own p99 and mean.
TEST(FlowMonitorShards, SummaryPercentilesWithZeroAndOneCompletion) {
  FlowMonitor monitor;  // Default single shard; ops land in shard 0.
  const uint32_t flow = monitor.Register(0, 1, 1000, Time::Zero());
  monitor.Register(2, 3, 2000, Time::Zero());

  const FlowSummary none = monitor.Summarize();
  EXPECT_EQ(none.flows, 2u);
  EXPECT_EQ(none.completed, 0u);
  EXPECT_EQ(none.mean_fct_ms, 0.0);
  EXPECT_EQ(none.p99_fct_ms, 0.0);
  EXPECT_EQ(none.mean_throughput_mbps, 0.0);

  monitor.AddRxBytes(flow, 1000, Time::Microseconds(40));
  monitor.Complete(flow, Time::Microseconds(40));
  const FlowSummary one = monitor.Summarize();
  EXPECT_EQ(one.completed, 1u);
  EXPECT_DOUBLE_EQ(one.p99_fct_ms, Time::Microseconds(40).ToMilliseconds());
  EXPECT_DOUBLE_EQ(one.mean_fct_ms, one.p99_fct_ms);
}

}  // namespace
}  // namespace unison
