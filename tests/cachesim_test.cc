// Cache simulator: LRU mechanics and the fine-grained-partition effect.
#include <gtest/gtest.h>

#include "src/cachesim/cache_sim.h"
#include "tests/test_util.h"

namespace unison {
namespace {

CacheConfig SmallCache() {
  CacheConfig cfg;
  cfg.size_bytes = 8192;  // 128 lines.
  cfg.line_bytes = 64;
  cfg.ways = 4;
  cfg.node_state_bytes = 512;
  return cfg;
}

TEST(CacheSim, RepeatedAccessHits) {
  CacheSim c(SmallCache());
  c.Access(0x1000);
  EXPECT_EQ(c.misses(), 1u);
  for (int i = 0; i < 100; ++i) {
    c.Access(0x1000);
  }
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.accesses(), 101u);
}

TEST(CacheSim, WorkingSetLargerThanCacheThrashes) {
  CacheSim c(SmallCache());
  // 1024 distinct lines cycled twice through a 128-line cache: ~every access
  // misses.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t line = 0; line < 1024; ++line) {
      c.Access(line * 64);
    }
  }
  EXPECT_GT(c.MissRatio(), 0.95);
}

TEST(CacheSim, LruEvictsOldestWithinSet) {
  CacheConfig cfg = SmallCache();
  cfg.ways = 2;
  CacheSim c(cfg);
  const uint32_t sets = static_cast<uint32_t>(cfg.size_bytes / 64 / 2);
  // Three tags mapping to set 0.
  const uint64_t a = 0;
  const uint64_t b = static_cast<uint64_t>(sets) * 64;
  const uint64_t d = 2ull * sets * 64;
  c.Access(a);
  c.Access(b);
  c.Access(a);  // a is now MRU.
  c.Access(d);  // Evicts b.
  EXPECT_EQ(c.misses(), 3u);
  c.Access(a);  // Still resident.
  EXPECT_EQ(c.misses(), 3u);
  c.Access(b);  // Was evicted: miss.
  EXPECT_EQ(c.misses(), 4u);
}

TEST(CacheSim, GroupedNodeOrderBeatsInterleaved) {
  // The §4.1 cache-affinity argument in miniature: the same multiset of
  // events, grouped per node vs. interleaved across 64 nodes.
  CacheConfig cfg = SmallCache();
  cfg.node_state_bytes = 1024;  // 16 lines per node; 64 nodes >> cache.
  CacheSim grouped(cfg);
  for (uint32_t node = 0; node < 64; ++node) {
    for (int e = 0; e < 50; ++e) {
      grouped.OnEvent(node);
    }
  }
  CacheSim interleaved(cfg);
  for (int e = 0; e < 50; ++e) {
    for (uint32_t node = 0; node < 64; ++node) {
      interleaved.OnEvent(node);
    }
  }
  EXPECT_LT(grouped.misses() * 5, interleaved.misses());
}

TEST(CacheSim, TraceHookCountsSimulationEvents) {
  CacheConfig cfg;
  CacheSim sim(cfg);
  sim.Install();
  KernelConfig k;
  k.type = KernelType::kSequential;
  const RunOutcome o = RunFatTreeScenario(k, PartitionMode::kSingle);
  CacheSim::Uninstall();
  EXPECT_GT(o.events, 0u);
  EXPECT_GT(sim.accesses(), o.events);  // Several lines per event.
}

TEST(CacheSim, FinerPartitionReducesMisses) {
  // Run the same scenario with one LP vs. fine-grained LPs (both single
  // threaded); the fine-grained execution order must miss less.
  auto run = [](PartitionMode mode) {
    CacheConfig cfg;
    cfg.size_bytes = 64 * 1024;  // Small enough that 36 nodes don't all fit.
    cfg.node_state_bytes = 4096;
    CacheSim sim(cfg);
    sim.Install();
    KernelConfig k;
    k.type = mode == PartitionMode::kSingle ? KernelType::kSequential
                                            : KernelType::kUnison;
    k.threads = 1;
    RunFatTreeScenario(k, mode);
    CacheSim::Uninstall();
    return sim;
  };
  const CacheSim coarse = run(PartitionMode::kSingle);
  const CacheSim fine = run(PartitionMode::kAuto);
  EXPECT_EQ(coarse.accesses(), fine.accesses());  // Same events either way.
  EXPECT_LT(fine.misses(), coarse.misses());
}

}  // namespace
}  // namespace unison
