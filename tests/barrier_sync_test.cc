// CombiningBarrier: the fused tree barrier the round kernels synchronize on.
//
// The load-bearing claims: the tree reduction is bit-identical to the flat
// AtomicTimeMin CAS fold regardless of arrival order; a generation's reduced
// values are stable for every party until it arrives for the next generation,
// even under heavy phase skew; stop votes OR through; and the adaptive spin
// budget stays inside its documented bounds. The skew-stress test runs under
// TSan in CI, which is where barrier bugs actually die.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "src/sched/barrier_sync.h"
#include "src/sched/combining_barrier.h"

namespace unison {
namespace {

// Deterministic per-(generation, party) contribution so every party can
// recompute the expected reduction without shared state.
int64_t ContribMin(uint32_t gen, uint32_t party) {
  uint64_t x = (static_cast<uint64_t>(gen) << 20) ^ (party * 2654435761u);
  x ^= x >> 15;
  x *= 0x9E3779B97F4A7C15ull;
  x ^= x >> 32;
  return static_cast<int64_t>(x % 1000003);
}

uint64_t ContribCount(uint32_t gen, uint32_t party) {
  return (gen + party) % 17;
}

TEST(CombiningBarrier, SinglePartyCompletesImmediately) {
  CombiningBarrier b(1);
  for (uint32_t gen = 0; gen < 100; ++gen) {
    b.Arrive(0, 42 + gen, gen, gen % 2 ? CombiningBarrier::kStopFlag : 0);
    EXPECT_EQ(b.reduced_min(), 42 + gen);
    EXPECT_EQ(b.reduced_count(), gen);
    EXPECT_EQ(b.reduced_flags(), gen % 2 ? CombiningBarrier::kStopFlag : 0u);
  }
}

// The tree combine must equal the flat CAS fold on the same inputs — this is
// what lets the kernels swap AtomicTimeMin out without a determinism caveat.
TEST(CombiningBarrier, MinMatchesAtomicTimeMinOnRandomInputs) {
  std::mt19937_64 rng(20260807);
  for (uint32_t parties : {1u, 2u, 3u, 4u, 5u, 8u, 13u, 16u, 64u}) {
    CombiningBarrier tree(parties);
    std::vector<int64_t> inputs(parties);
    for (int round = 0; round < 20; ++round) {
      AtomicTimeMin flat;
      flat.Reset();
      for (auto& v : inputs) {
        v = static_cast<int64_t>(rng() % (1ull << 62));
      }
      std::vector<std::thread> threads;
      for (uint32_t p = 1; p < parties; ++p) {
        threads.emplace_back([&, p] {
          flat.Update(inputs[p]);
          tree.Arrive(p, inputs[p], 1, 0);
        });
      }
      flat.Update(inputs[0]);
      tree.Arrive(0, inputs[0], 1, 0);
      const int64_t tree_min = tree.reduced_min();
      const uint64_t tree_count = tree.reduced_count();
      for (auto& t : threads) {
        t.join();
      }
      EXPECT_EQ(tree_min, flat.Get());
      EXPECT_EQ(tree_count, parties);
    }
  }
}

TEST(CombiningBarrier, StopVotesOrAcrossParties) {
  constexpr uint32_t kParties = 6;
  CombiningBarrier b(kParties);
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  // Generation g: party (g % kParties) votes stop; everyone must see it.
  auto body = [&](uint32_t p) {
    for (uint32_t gen = 0; gen < 200; ++gen) {
      const uint32_t flags =
          gen % kParties == p ? CombiningBarrier::kStopFlag : 0;
      b.Arrive(p, INT64_MAX, 0, flags);
      if ((b.reduced_flags() & CombiningBarrier::kStopFlag) == 0) {
        wrong.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  for (uint32_t p = 1; p < kParties; ++p) {
    threads.emplace_back(body, p);
  }
  body(0);
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(wrong.load(), 0);
}

// Randomized phase skew: parties sleep random microseconds between arrivals
// for thousands of generations, so arrivals interleave in every order and
// waiters both spin and park. Each party validates the full reduced triple
// after every crossing — reads happen in the window where the result must be
// stable (before that party's next arrival). EXPECT from worker threads is
// not TSan-clean, so mismatches count into an atomic checked at the end.
TEST(CombiningBarrier, RandomizedPhaseSkewStress) {
  constexpr uint32_t kParties = 8;
  constexpr uint32_t kGenerations = 1500;
  CombiningBarrier b(kParties);
  std::atomic<uint64_t> mismatches{0};

  auto expected_min = [](uint32_t gen) {
    int64_t m = INT64_MAX;
    for (uint32_t p = 0; p < kParties; ++p) {
      m = std::min(m, ContribMin(gen, p));
    }
    return m;
  };
  auto expected_count = [](uint32_t gen) {
    uint64_t c = 0;
    for (uint32_t p = 0; p < kParties; ++p) {
      c += ContribCount(gen, p);
    }
    return c;
  };

  auto body = [&](uint32_t p) {
    std::mt19937 rng(p * 7919 + 13);
    for (uint32_t gen = 0; gen < kGenerations; ++gen) {
      if (rng() % 8 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(rng() % 200));
      }
      b.Arrive(p, ContribMin(gen, p), ContribCount(gen, p),
               gen % 97 == 0 ? CombiningBarrier::kStopFlag : 0);
      const bool ok = b.reduced_min() == expected_min(gen) &&
                      b.reduced_count() == expected_count(gen) &&
                      b.reduced_flags() ==
                          (gen % 97 == 0 ? CombiningBarrier::kStopFlag : 0u);
      if (!ok) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  for (uint32_t p = 1; p < kParties; ++p) {
    threads.emplace_back(body, p);
  }
  body(0);
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0u);
  // The sleeps guarantee some crossings outlived the spin budget; the park
  // counter must have moved, and the adapted budget must respect its bounds.
  EXPECT_GE(b.spin_budget(), CombiningBarrier::kMinSpin);
  EXPECT_LE(b.spin_budget(), CombiningBarrier::kMaxSpin);
}

TEST(CombiningBarrier, SpinBudgetStaysBoundedUnderForcedParking) {
  constexpr uint32_t kParties = 4;
  CombiningBarrier b(kParties);
  // Straggler pattern: party 0 arrives ~1ms late every generation, forcing
  // the others past any spin budget into the futex. The adaptive budget must
  // walk down toward kMinSpin and never leave [kMinSpin, kMaxSpin].
  std::vector<std::thread> threads;
  for (uint32_t p = 1; p < kParties; ++p) {
    threads.emplace_back([&, p] {
      for (uint32_t gen = 0; gen < 30; ++gen) {
        b.Arrive(p);
        EXPECT_GE(b.spin_budget(), CombiningBarrier::kMinSpin);
        EXPECT_LE(b.spin_budget(), CombiningBarrier::kMaxSpin);
      }
    });
  }
  for (uint32_t gen = 0; gen < 30; ++gen) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    b.Arrive(0);
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_GT(b.parks(), 0u);
  EXPECT_EQ(b.spin_budget(), CombiningBarrier::kMinSpin);
}

}  // namespace
}  // namespace unison
