// Cross-cutting integration details: digests, progress reports, device
// state changes mid-flight, statistics plumbing.
#include <gtest/gtest.h>

#include <sstream>

#include "src/net/app.h"
#include "src/net/network.h"
#include "src/stats/digest.h"
#include "src/topo/fat_tree.h"
#include "src/traffic/generator.h"

namespace unison {
namespace {

TEST(Misc, TimeStreamsAsPicoseconds) {
  std::ostringstream os;
  os << Time::Nanoseconds(2);
  EXPECT_EQ(os.str(), "2000ps");
}

TEST(Misc, RunDigestComparesEventCountAndFingerprint) {
  RunDigest a{100, 0xabc, 1.0, 2.0};
  RunDigest b{100, 0xabc, 9.0, 9.0};  // Derived metrics don't participate.
  RunDigest c{101, 0xabc, 1.0, 2.0};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Misc, ProgressReportFiresAtConfiguredInterval) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 2;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 200000, Time::Zero());
  std::vector<std::pair<Time, uint64_t>> reports;
  net.EnableProgressReport(Time::Milliseconds(1), [&reports](Time now, uint64_t events) {
    reports.emplace_back(now, events);
  });
  net.Run(Time::Milliseconds(5));
  // Reports at 1,2,3,4ms (5ms is >= stop).
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].first, Time::Milliseconds(1));
  EXPECT_EQ(reports[3].first, Time::Milliseconds(4));
  // Event counts are monotone and end below the final total.
  for (size_t i = 1; i < reports.size(); ++i) {
    EXPECT_GE(reports[i].second, reports[i - 1].second);
  }
  EXPECT_GT(reports[0].second, 0u);
  EXPECT_LE(reports.back().second, net.kernel().processed_events());
}

TEST(Misc, ProgressReportDoesNotPerturbResults) {
  auto run = [](bool report) {
    SimConfig cfg;
    cfg.kernel.type = KernelType::kUnison;
    cfg.kernel.threads = 2;
    Network net(cfg);
    FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
    net.Finalize();
    GeneratePermutation(net, topo.hosts, 200000, Time::Zero());
    if (report) {
      net.EnableProgressReport(Time::Milliseconds(1), [](Time, uint64_t) {});
    }
    net.Run(Time::Milliseconds(5));
    return net.flow_monitor().Fingerprint();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Misc, LinkDownMidTransferStallsThenRecovers) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  cfg.tcp.min_rto = Time::Milliseconds(2);
  cfg.tcp.initial_rto = Time::Milliseconds(2);
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const uint32_t link = net.AddLink(a, b, 10000000ULL, Time::Microseconds(100));
  net.Finalize();
  InstallFlow(net, FlowSpec{a, b, 500000, Time::Zero(), {}});
  Network* netp = &net;
  net.sim().ScheduleGlobal(Time::Milliseconds(20),
                           [netp, link] { netp->SetLinkUp(link, false); });
  net.sim().ScheduleGlobal(Time::Milliseconds(120),
                           [netp, link] { netp->SetLinkUp(link, true); });
  net.Run(Time::Seconds(10));
  const FlowRecord& f = net.flow_monitor().flow(0);
  EXPECT_TRUE(f.completed);
  EXPECT_EQ(f.rx_bytes, 500000u);
  EXPECT_GT(f.retransmits, 0u);               // The outage forced RTOs.
  EXPECT_GT(f.fct, Time::Milliseconds(120));  // Could not finish before re-up.
}

TEST(Misc, DeviceStatsCountTransmissions) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.AddLink(a, b, 1000000000ULL, Time::Microseconds(10));
  net.Finalize();
  InstallFlow(net, FlowSpec{a, b, 10 * kMss, Time::Zero(), {}});
  net.Run(Time::Seconds(1));
  const DeviceStats& tx = net.node(a).device(0)->stats();
  EXPECT_EQ(tx.tx_packets, 10u);  // Ten full segments, no loss.
  EXPECT_EQ(tx.tx_bytes, 10u * (kMss + kHeaderBytes));
  const DeviceStats& ack = net.node(b).device(0)->stats();
  EXPECT_EQ(ack.tx_packets, 10u);  // One ack per segment.
  EXPECT_EQ(net.node(b).stats().delivered, 10u);
}

TEST(Misc, NoRouteCountsAndDoesNotCrash) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.AddNode();  // c: isolated.
  net.AddLink(a, b, 1000000000ULL, Time::Microseconds(10));
  net.Finalize();
  InstallFlow(net, FlowSpec{a, 2, 10000, Time::Zero(), {}});  // To the island.
  net.Run(Time::Milliseconds(50));
  EXPECT_FALSE(net.flow_monitor().flow(0).completed);
  EXPECT_GT(net.node(a).stats().no_route, 0u);
}

TEST(Misc, FlowSummaryPercentiles) {
  FlowMonitor fm;
  for (int i = 0; i < 100; ++i) {
    const uint32_t id = fm.Register(0, 1, 1000, Time::Zero());
    fm.Complete(id, Time::Milliseconds(i + 1));
  }
  const FlowSummary s = fm.Summarize();
  EXPECT_EQ(s.completed, 100u);
  EXPECT_NEAR(s.mean_fct_ms, 50.5, 1e-9);
  EXPECT_NEAR(s.p99_fct_ms, 99.0, 1.0);
}

TEST(Misc, GeneratorRedirectTargetsTailClusterOnly) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  TrafficSpec spec;
  spec.hosts = topo.hosts;
  spec.bisection_bps = topo.bisection_bps;
  spec.load = 0.3;
  spec.duration = Time::Milliseconds(20);
  spec.redirect_prob = 1.0;
  spec.redirect_begin = 12;  // Last pod's hosts.
  GenerateTraffic(net, spec);
  net.flow_monitor().ForEachFlow([&](const FlowRecord& f) {
    bool in_tail = false;
    for (uint32_t i = 12; i < 16; ++i) {
      in_tail |= f.dst == topo.hosts[i];
    }
    EXPECT_TRUE(in_tail) << "flow " << f.id << " dst " << f.dst;
  });
}

}  // namespace
}  // namespace unison
