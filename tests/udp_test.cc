// UDP On-Off application: pacing, loss accounting, kernel independence.
#include <gtest/gtest.h>

#include "src/net/udp.h"
#include "src/net/network.h"

namespace unison {
namespace {

SimConfig Cfg(KernelType kernel = KernelType::kSequential) {
  SimConfig cfg;
  cfg.kernel.type = kernel;
  cfg.kernel.threads = 2;
  return cfg;
}

TEST(Udp, CbrDeliversAtConfiguredRate) {
  SimConfig cfg = Cfg();
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.AddLink(a, b, 100000000ULL, Time::Microseconds(100));
  net.Finalize();
  OnOffSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.rate_bps = 10000000;  // 10Mbps over a 100Mbps link: no loss.
  spec.packet_bytes = 1000;
  spec.on = Time::Milliseconds(100);
  spec.off = Time::Zero();  // Pure CBR.
  spec.start = Time::Zero();
  spec.stop = Time::Milliseconds(100);
  const uint32_t flow = InstallOnOffFlow(net, spec);
  net.Run(Time::Milliseconds(200));

  const FlowRecord& f = net.flow_monitor().flow(flow);
  // 10Mbps of wire bits for 100ms = 125000 wire bytes ~= 117 packets of
  // 1060B wire size; payload received ~= 117 * 1000.
  EXPECT_NEAR(static_cast<double>(f.rx_bytes), 117000.0, 2000.0);
}

TEST(Udp, OnOffDutyCycleHalvesThroughput) {
  auto run = [](Time on, Time off) {
    SimConfig cfg = Cfg();
    Network net(cfg);
    const NodeId a = net.AddNode();
    const NodeId b = net.AddNode();
    net.AddLink(a, b, 100000000ULL, Time::Microseconds(10));
    net.Finalize();
    OnOffSpec spec;
    spec.src = a;
    spec.dst = b;
    spec.rate_bps = 20000000;
    spec.packet_bytes = 500;
    spec.on = on;
    spec.off = off;
    spec.start = Time::Zero();
    spec.stop = Time::Milliseconds(100);
    const uint32_t flow = InstallOnOffFlow(net, spec);
    net.Run(Time::Milliseconds(150));
    return net.flow_monitor().flow(flow).rx_bytes;
  };
  const uint64_t cbr = run(Time::Milliseconds(10), Time::Zero());
  const uint64_t half = run(Time::Milliseconds(10), Time::Milliseconds(10));
  EXPECT_NEAR(static_cast<double>(half) / static_cast<double>(cbr), 0.5, 0.07);
}

TEST(Udp, OverloadDropsAtBottleneck) {
  SimConfig cfg = Cfg();
  cfg.queue.capacity_bytes = 10 * 1060;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const NodeId c = net.AddNode();
  net.AddLink(a, b, 100000000ULL, Time::Microseconds(10));
  net.AddLink(b, c, 10000000ULL, Time::Microseconds(10));  // 10x slower.
  net.Finalize();
  OnOffSpec spec;
  spec.src = a;
  spec.dst = c;
  spec.rate_bps = 50000000;  // 5x the bottleneck.
  spec.packet_bytes = 1000;
  spec.on = Time::Milliseconds(50);
  spec.off = Time::Zero();
  spec.start = Time::Zero();
  spec.stop = Time::Milliseconds(50);
  const uint32_t flow = InstallOnOffFlow(net, spec);
  net.Run(Time::Milliseconds(100));

  const FlowRecord& f = net.flow_monitor().flow(flow);
  EXPECT_GT(net.AggregateQueueStats().dropped, 0u);
  // Received roughly the bottleneck's share: 10Mbps for 50ms ~ 59 packets.
  const double expected = 10e6 * 0.05 / 8 / 1060 * 1000;
  EXPECT_NEAR(static_cast<double>(f.rx_bytes), expected, expected * 0.25);
}

TEST(Udp, KernelsAgreeOnDatagramTraffic) {
  auto run = [](KernelType kernel) {
    SimConfig cfg = Cfg(kernel);
    Network net(cfg);
    const NodeId a = net.AddNode();
    const NodeId b = net.AddNode();
    const NodeId c = net.AddNode();
    net.AddLink(a, b, 100000000ULL, Time::Microseconds(50));
    net.AddLink(b, c, 100000000ULL, Time::Microseconds(50));
    net.Finalize();
    for (int i = 0; i < 3; ++i) {
      OnOffSpec spec;
      spec.src = i % 2 == 0 ? a : c;
      spec.dst = i % 2 == 0 ? c : a;
      spec.rate_bps = 5000000 * (i + 1);
      spec.packet_bytes = 400 + 100 * i;
      spec.on = Time::Milliseconds(3);
      spec.off = Time::Milliseconds(2);
      spec.start = Time::Microseconds(100 * i);
      spec.stop = Time::Milliseconds(40);
      InstallOnOffFlow(net, spec);
    }
    net.Run(Time::Milliseconds(50));
    return std::pair{net.kernel().processed_events(), net.flow_monitor().Fingerprint()};
  };
  const auto seq = run(KernelType::kSequential);
  EXPECT_EQ(run(KernelType::kUnison), seq);
  EXPECT_EQ(run(KernelType::kHybrid), seq);
}

}  // namespace
}  // namespace unison
