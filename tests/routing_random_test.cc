// Routing property tests on random graphs: ECMP next hops must lie on
// shortest paths (verified against an independent BFS), and forwarding a
// packet hop by hop must reach the destination in exactly dist hops.
#include <gtest/gtest.h>

#include <queue>

#include "src/core/rng.h"
#include "src/net/network.h"

namespace unison {
namespace {

struct RandomGraph {
  std::unique_ptr<Network> net;
  std::vector<std::vector<NodeId>> adj;
};

RandomGraph MakeRandomGraph(uint64_t seed) {
  RandomGraph g;
  SimConfig cfg;
  g.net = std::make_unique<Network>(cfg);
  Rng rng(seed, 0);
  const uint32_t n = 8 + static_cast<uint32_t>(rng.NextU64Below(24));
  g.net->AddNodes(n);
  g.adj.resize(n);
  auto add = [&g](NodeId u, NodeId v) {
    g.net->AddLink(u, v, 1000000000ULL, Time::Microseconds(10));
    g.adj[u].push_back(v);
    g.adj[v].push_back(u);
  };
  for (NodeId v = 1; v < n; ++v) {
    add(static_cast<NodeId>(rng.NextU64Below(v)), v);
  }
  for (uint32_t e = 0; e < n; ++e) {
    const NodeId u = static_cast<NodeId>(rng.NextU64Below(n));
    const NodeId v = static_cast<NodeId>(rng.NextU64Below(n));
    if (u != v) {
      add(u, v);
    }
  }
  g.net->Finalize();
  return g;
}

std::vector<uint32_t> BfsDist(const RandomGraph& g, NodeId src) {
  std::vector<uint32_t> dist(g.adj.size(), UINT32_MAX);
  dist[src] = 0;
  std::queue<NodeId> q;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : g.adj[u]) {
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

class RandomRoutingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomRoutingTest, EveryNextHopLiesOnAShortestPath) {
  RandomGraph g = MakeRandomGraph(GetParam());
  const uint32_t n = g.net->num_nodes();
  for (NodeId dst = 0; dst < n; ++dst) {
    const std::vector<uint32_t> dist = BfsDist(g, dst);
    for (NodeId u = 0; u < n; ++u) {
      if (u == dst) {
        continue;
      }
      ASSERT_NE(dist[u], UINT32_MAX);
      // Probe several flow hashes: every returned port must step closer.
      for (uint32_t h = 0; h < 8; ++h) {
        const int port = g.net->routing().Port(u, dst, h * 2654435761u);
        ASSERT_GE(port, 0);
        const NodeId next = g.net->node(u).device(port)->peer();
        EXPECT_EQ(dist[next], dist[u] - 1)
            << u << "->" << dst << " via " << next;
      }
    }
  }
}

TEST_P(RandomRoutingTest, HopByHopWalkTerminatesInDistSteps) {
  RandomGraph g = MakeRandomGraph(GetParam() + 500);
  const uint32_t n = g.net->num_nodes();
  Rng rng(GetParam(), 77);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId src = static_cast<NodeId>(rng.NextU64Below(n));
    const NodeId dst = static_cast<NodeId>(rng.NextU64Below(n));
    if (src == dst) {
      continue;
    }
    const uint32_t flow_hash = static_cast<uint32_t>(rng.NextU64());
    const std::vector<uint32_t> dist = BfsDist(g, dst);
    NodeId at = src;
    uint32_t hops = 0;
    while (at != dst) {
      const int port = g.net->routing().Port(at, dst, flow_hash);
      ASSERT_GE(port, 0);
      at = g.net->node(at).device(port)->peer();
      ASSERT_LE(++hops, dist[src]) << "walk exceeded the shortest distance";
    }
    EXPECT_EQ(hops, dist[src]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoutingTest, ::testing::Range<uint64_t>(10, 22));

}  // namespace
}  // namespace unison
