// Fine-grained partition (Algorithm 1) and the manual baselines.
#include <gtest/gtest.h>

#include <set>

#include "src/net/network.h"
#include "src/partition/fine_grained.h"
#include "src/partition/manual.h"
#include "src/topo/bcube.h"
#include "src/topo/fat_tree.h"
#include "src/topo/torus.h"
#include "src/topo/wan.h"

namespace unison {
namespace {

TopoGraph Line(int n, Time delay) {
  TopoGraph g;
  g.num_nodes = n;
  for (int i = 0; i + 1 < n; ++i) {
    g.edges.push_back(TopoEdge{static_cast<NodeId>(i), static_cast<NodeId>(i + 1), delay, true});
  }
  return g;
}

TEST(MedianDelay, LowerMedianOfLinkDelays) {
  TopoGraph g;
  g.num_nodes = 5;
  g.edges = {
      TopoEdge{0, 1, Time::Microseconds(1), true},
      TopoEdge{1, 2, Time::Microseconds(5), true},
      TopoEdge{2, 3, Time::Microseconds(3), true},
      TopoEdge{3, 4, Time::Microseconds(9), true},
  };
  // Sorted: 1, 3, 5, 9 -> lower median is 3.
  EXPECT_EQ(MedianDelay(g), Time::Microseconds(3));
}

TEST(FineGrained, UniformDelaysCutEverything) {
  const TopoGraph g = Line(10, Time::Microseconds(3));
  const Partition p = FineGrainedPartition(g);
  EXPECT_EQ(p.num_lps, 10u);  // Median == every delay -> all links cut.
  EXPECT_EQ(p.lookahead, Time::Microseconds(3));
  EXPECT_TRUE(ValidatePartition(g, p));
  EXPECT_EQ(p.cut_edges.size(), 9u);
}

TEST(FineGrained, ShortLinksMergeNodes) {
  TopoGraph g;
  g.num_nodes = 4;
  g.edges = {
      TopoEdge{0, 1, Time::Nanoseconds(10), true},   // Below median: keep.
      TopoEdge{1, 2, Time::Microseconds(3), true},   // Cut.
      TopoEdge{2, 3, Time::Microseconds(3), true},   // Cut.
  };
  const Partition p = FineGrainedPartition(g);
  EXPECT_EQ(p.num_lps, 3u);
  EXPECT_EQ(p.lp_of_node[0], p.lp_of_node[1]);
  EXPECT_NE(p.lp_of_node[1], p.lp_of_node[2]);
  EXPECT_EQ(p.lookahead, Time::Microseconds(3));
}

TEST(FineGrained, ZeroDelayLinksNeverCut) {
  // Majority of links have zero delay: the median is zero, but cutting them
  // would collapse the lookahead, so they must merge instead.
  TopoGraph g;
  g.num_nodes = 4;
  g.edges = {
      TopoEdge{0, 1, Time::Zero(), true},
      TopoEdge{1, 2, Time::Zero(), true},
      TopoEdge{2, 3, Time::Microseconds(1), true},
  };
  const Partition p = FineGrainedPartition(g);
  EXPECT_EQ(p.num_lps, 2u);
  EXPECT_EQ(p.lookahead, Time::Microseconds(1));
  EXPECT_TRUE(ValidatePartition(g, p));
}

TEST(FineGrained, StatefulLinksNeverCut) {
  TopoGraph g;
  g.num_nodes = 3;
  g.edges = {
      TopoEdge{0, 1, Time::Microseconds(3), false},  // Stateful: keep.
      TopoEdge{1, 2, Time::Microseconds(3), true},
  };
  const Partition p = FineGrainedPartition(g);
  EXPECT_EQ(p.num_lps, 2u);
  EXPECT_EQ(p.lp_of_node[0], p.lp_of_node[1]);
}

TEST(FineGrained, LookaheadIsMinimumCutDelay) {
  TopoGraph g;
  g.num_nodes = 3;
  g.edges = {
      TopoEdge{0, 1, Time::Microseconds(3), true},
      TopoEdge{1, 2, Time::Microseconds(7), true},
  };
  const Partition p = FineGrainedPartition(g);
  EXPECT_EQ(p.num_lps, 3u);
  EXPECT_EQ(p.lookahead, Time::Microseconds(3));
  // Per-LP lookahead: LP of node 2 only touches the 7us edge.
  EXPECT_EQ(p.lp_lookahead[p.lp_of_node[2]], Time::Microseconds(7));
}

class TopologyPartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(TopologyPartitionTest, AutoPartitionIsValidAndFine) {
  SimConfig cfg;
  Network net(cfg);
  switch (GetParam()) {
    case 0:
      BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
      break;
    case 1:
      BuildTorus2D(net, 6, 6, 10000000000ULL, Time::Microseconds(30));
      break;
    case 2:
      BuildBCube(net, 4, 2, 10000000000ULL, Time::Microseconds(3));
      break;
    case 3:
      BuildWan(net, WanName::kGeant, 1000000000ULL, Time::Microseconds(100));
      break;
    case 4:
      BuildWan(net, WanName::kChinaNet, 1000000000ULL, Time::Microseconds(100));
      break;
  }
  TopoGraph g;
  g.num_nodes = net.num_nodes();
  for (const auto& l : net.links()) {
    g.edges.push_back(TopoEdge{l.a, l.b, l.delay, true});
  }
  const Partition p = FineGrainedPartition(g);
  EXPECT_TRUE(ValidatePartition(g, p));
  // Fine granularity: strictly more LPs than a typical manual partition.
  EXPECT_GT(p.num_lps, 4u);
  EXPECT_FALSE(p.lookahead.IsZero());
  // At least half of the links cut (the median rule), unless zero-delay
  // links forced merges (none of these topologies has zero-delay links).
  EXPECT_GE(p.cut_edges.size() * 2, g.edges.size());
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyPartitionTest, ::testing::Range(0, 5));

TEST(ManualPartition, RangePartitionCoversAllLps) {
  const TopoGraph g = Line(10, Time::Microseconds(1));
  const Partition p = RangePartition(g, 3);
  EXPECT_EQ(p.num_lps, 3u);
  std::set<LpId> used(p.lp_of_node.begin(), p.lp_of_node.end());
  EXPECT_EQ(used.size(), 3u);
  EXPECT_TRUE(ValidatePartition(g, p));
}

TEST(ManualPartition, SingleLpHasNoCutEdges) {
  const TopoGraph g = Line(5, Time::Microseconds(1));
  const Partition p = SingleLpPartition(g);
  EXPECT_EQ(p.num_lps, 1u);
  EXPECT_TRUE(p.cut_edges.empty());
  EXPECT_TRUE(p.lookahead.IsMax());
}

TEST(ManualPartition, FatTreePodPartitionIsValid) {
  SimConfig cfg;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  TopoGraph g;
  g.num_nodes = net.num_nodes();
  for (const auto& l : net.links()) {
    g.edges.push_back(TopoEdge{l.a, l.b, l.delay, true});
  }
  const Partition p = ManualPartition(g, 4, FatTreePodPartition(topo, net.num_nodes()));
  EXPECT_EQ(p.num_lps, 4u);
  EXPECT_TRUE(ValidatePartition(g, p));
  EXPECT_EQ(p.lookahead, Time::Microseconds(3));
}

TEST(FinalizePartition, RecomputesLookaheadAfterDelayChange) {
  TopoGraph g = Line(3, Time::Microseconds(3));
  Partition p = FineGrainedPartition(g);
  ASSERT_EQ(p.num_lps, 3u);
  g.edges[0].delay = Time::Microseconds(1);
  FinalizePartition(g, &p);
  EXPECT_EQ(p.lookahead, Time::Microseconds(1));
}

TEST(ValidatePartition, DetectsSplitLp) {
  // Nodes 0 and 2 in one LP but not connected within it: invalid.
  const TopoGraph g = Line(3, Time::Microseconds(1));
  Partition p;
  p.num_lps = 2;
  p.lp_of_node = {0, 1, 0};
  FinalizePartition(g, &p);
  EXPECT_FALSE(ValidatePartition(g, p));
}

}  // namespace
}  // namespace unison
