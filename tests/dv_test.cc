// Distance-vector routing: convergence, failure reaction, data delivery.
#include <gtest/gtest.h>

#include "src/net/app.h"
#include "src/net/network.h"
#include "src/net/routing.h"

namespace unison {
namespace {

// Square with a diagonal:  0 - 1
//                          |   |
//                          3 - 2   plus 0-2.
struct SquareNet {
  SimConfig cfg;
  std::unique_ptr<Network> net;
  uint32_t l01, l12, l23, l30, l02;

  explicit SquareNet(KernelType kernel = KernelType::kSequential) {
    cfg.kernel.type = kernel;
    cfg.kernel.threads = 2;
    net = std::make_unique<Network>(cfg);
    for (int i = 0; i < 4; ++i) {
      net->AddNode();
    }
    const uint64_t bps = 1000000000ULL;
    const Time d = Time::Milliseconds(1);
    l01 = net->AddLink(0, 1, bps, d);
    l12 = net->AddLink(1, 2, bps, d);
    l23 = net->AddLink(2, 3, bps, d);
    l30 = net->AddLink(3, 0, bps, d);
    l02 = net->AddLink(0, 2, bps, d);
    net->EnableDistanceVector(Time::Milliseconds(50));
    net->Finalize();
  }
};

TEST(DistanceVector, ConvergesToShortestPaths) {
  SquareNet s;
  s.net->Run(Time::Milliseconds(400));
  // Expected hop counts in the square-with-diagonal: every pair is adjacent
  // except (1, 3), which is two hops.
  const uint32_t expected[4][4] = {
      {0, 1, 1, 1},
      {1, 0, 1, 2},
      {1, 1, 0, 1},
      {1, 2, 1, 0},
  };
  for (NodeId n = 0; n < 4; ++n) {
    const DvState* dv = s.net->node(n).dv();
    ASSERT_NE(dv, nullptr);
    for (NodeId d = 0; d < 4; ++d) {
      EXPECT_EQ(dv->dist[d], expected[n][d]) << n << "->" << d;
    }
  }
}

TEST(DistanceVector, DataFlowsOnceConverged) {
  SquareNet s;
  // Give the protocol 200ms to converge, then start a flow 1 -> 3.
  InstallFlow(*s.net, FlowSpec{1, 3, 200000, Time::Milliseconds(200), {}});
  s.net->Run(Time::Seconds(3));
  const FlowRecord& f = s.net->flow_monitor().flow(0);
  EXPECT_TRUE(f.completed);
  EXPECT_EQ(f.rx_bytes, 200000u);
}

TEST(DistanceVector, ReroutesAroundLinkFailure) {
  SquareNet s;
  // Fail the diagonal 0-2 mid-run via a global event; 0 must re-learn a
  // 2-hop route to 2 and traffic started afterwards must still arrive.
  Network* net = s.net.get();
  const uint32_t diag = s.l02;
  net->sim().ScheduleGlobal(Time::Milliseconds(300),
                            [net, diag] { net->SetLinkUp(diag, false); });
  InstallFlow(*net, FlowSpec{0, 2, 150000, Time::Milliseconds(600), {}});
  net->Run(Time::Seconds(3));
  EXPECT_EQ(net->node(0).dv()->dist[2], 2u);
  const FlowRecord& f = net->flow_monitor().flow(0);
  EXPECT_TRUE(f.completed);
  EXPECT_EQ(f.rx_bytes, 150000u);
}

TEST(DistanceVector, WorksUnderUnisonKernel) {
  // The same protocol, unmodified, under the parallel kernel — the
  // user-transparency claim applied to a dynamic routing model.
  SquareNet seq(KernelType::kSequential);
  SquareNet par(KernelType::kUnison);
  InstallFlow(*seq.net, FlowSpec{1, 3, 100000, Time::Milliseconds(200), {}});
  InstallFlow(*par.net, FlowSpec{1, 3, 100000, Time::Milliseconds(200), {}});
  seq.net->Run(Time::Seconds(2));
  par.net->Run(Time::Seconds(2));
  EXPECT_EQ(seq.net->kernel().processed_events(), par.net->kernel().processed_events());
  EXPECT_EQ(seq.net->flow_monitor().Fingerprint(), par.net->flow_monitor().Fingerprint());
}

TEST(DistanceVector, CountsProtocolOverhead) {
  SquareNet s;
  s.net->Run(Time::Milliseconds(400));
  EXPECT_GT(s.net->dv_routing()->total_updates(), 4u * 4u);
}

}  // namespace
}  // namespace unison
