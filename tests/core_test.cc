// Core primitives: time, RNG, event ordering, the future event list.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include <memory>
#include <utility>

#include "src/core/event.h"
#include "src/core/fel.h"
#include "src/core/inline_function.h"
#include "src/core/rng.h"
#include "src/core/time.h"

namespace unison {
namespace {

TEST(Time, UnitsAndArithmetic) {
  EXPECT_EQ(Time::Nanoseconds(1).ps(), 1000);
  EXPECT_EQ(Time::Microseconds(3).ps(), 3000000);
  EXPECT_EQ(Time::Milliseconds(1).ps(), 1000000000);
  EXPECT_EQ(Time::Seconds(0.5).ps(), 500000000000LL);
  EXPECT_EQ((Time::Microseconds(2) + Time::Nanoseconds(5)).ps(), 2005000);
  EXPECT_LT(Time::Microseconds(1), Time::Microseconds(2));
  EXPECT_TRUE(Time::Max().IsMax());
  EXPECT_TRUE(Time().IsZero());
}

TEST(Time, SerializationDelayRoundsUp) {
  // 1500 bytes at 100Gbps = 120ns exactly.
  EXPECT_EQ(SerializationDelay(1500, 100000000000ULL).ps(), 120000);
  // 1 byte at 100Gbps = 80ps.
  EXPECT_EQ(SerializationDelay(1, 100000000000ULL).ps(), 80);
  // Rounds up: 1 byte at 3bps = 8/3 s.
  EXPECT_EQ(SerializationDelay(1, 3).ps(), 2666666666667LL);
}

TEST(Rng, DeterministicPerSeedAndStream) {
  Rng a(42, 7);
  Rng b(42, 7);
  Rng c(42, 8);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = a.NextU64();
    EXPECT_EQ(x, b.NextU64());
    differs |= x != c.NextU64();
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformBounds) {
  Rng rng(1, 0);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_LT(rng.NextU64Below(17), 17u);
  }
  EXPECT_EQ(rng.NextU64Below(1), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(3, 0);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, UniformBelowIsUnbiased) {
  Rng rng(9, 0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextU64Below(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);
  }
}

// --- InlineFunction: the event callback storage ---

// Counts construction/destruction/move traffic of a captured payload.
struct LifeTracker {
  int* ctors;
  int* dtors;
  int* moves;
  LifeTracker(int* c, int* d, int* m) : ctors(c), dtors(d), moves(m) { ++*ctors; }
  LifeTracker(LifeTracker&& other) noexcept
      : ctors(other.ctors), dtors(other.dtors), moves(other.moves) {
    ++*ctors;
    ++*moves;
  }
  LifeTracker(const LifeTracker& other)
      : ctors(other.ctors), dtors(other.dtors), moves(other.moves) {
    ++*ctors;
  }
  ~LifeTracker() { ++*dtors; }
};

TEST(InlineFunction, InvokesAndReportsEngagement) {
  InlineFunction<64> empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  int hits = 0;
  InlineFunction<64> fn = [&hits] { ++hits; };
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, MoveTransfersOwnershipAndEmptiesSource) {
  int hits = 0;
  InlineFunction<64> a = [&hits] { ++hits; };
  InlineFunction<64> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineFunction<64> c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, HoldsMoveOnlyCallables) {
  // std::function rejects move-only captures; InlineFunction must not.
  auto p = std::make_unique<int>(41);
  int got = 0;
  InlineFunction<64> fn = [p = std::move(p), &got] { got = *p + 1; };
  InlineFunction<64> moved = std::move(fn);
  moved();
  EXPECT_EQ(got, 42);
}

TEST(InlineFunction, DestroysPayloadExactlyOnce) {
  int ctors = 0;
  int dtors = 0;
  int moves = 0;
  {
    InlineFunction<64> a = [t = LifeTracker(&ctors, &dtors, &moves)] {
      (void)t;
    };
    InlineFunction<64> b = std::move(a);       // Relocates the payload.
    InlineFunction<64> c;
    c = std::move(b);                          // And again via assignment.
    c();
  }
  EXPECT_EQ(ctors, dtors);  // Every constructed payload destroyed...
  EXPECT_GT(dtors, 0);      // ...and the payload existed at all.
}

TEST(InlineFunction, OversizeCaptureFallsBackToHeapAndCounts) {
  struct Big {
    unsigned char blob[200];
  };
  static_assert(!InlineFunction<64>::FitsInline<Big>());
  InlineFunctionStats::ResetAllocFallbacks();

  int ctors = 0;
  int dtors = 0;
  int moves = 0;
  {
    Big big{};
    big.blob[0] = 9;
    InlineFunction<64> fn =
        [big, t = LifeTracker(&ctors, &dtors, &moves), &ctors] {
          ctors += big.blob[0];  // Arbitrary observable effect.
        };
    EXPECT_EQ(InlineFunctionStats::alloc_fallbacks(), 1u);
    // Heap-boxed payload: moves shuffle the box pointer, not the payload.
    const int moves_before = moves;
    InlineFunction<64> other = std::move(fn);
    EXPECT_EQ(moves, moves_before);
    const int base = ctors;
    other();
    EXPECT_EQ(ctors, base + 9);
  }
  EXPECT_EQ(ctors - 9, dtors);  // (ctors was bumped by the call effect.)
  InlineFunctionStats::ResetAllocFallbacks();
}

TEST(InlineFunction, SmallCapturesNeverTouchTheFallbackCounter) {
  InlineFunctionStats::ResetAllocFallbacks();
  uint64_t sum = 0;
  for (int i = 0; i < 1000; ++i) {
    EventFn fn = [&sum, i] { sum += static_cast<uint64_t>(i); };
    fn();
  }
  EXPECT_EQ(sum, 999u * 1000u / 2u);
  EXPECT_EQ(InlineFunctionStats::alloc_fallbacks(), 0u);
}

TEST(EventKey, TotalOrderFollowsTieBreakRule) {
  // Primary: timestamp; then sender clock, sender LP, sequence (§5.2).
  const EventKey base{Time::Microseconds(5), Time::Microseconds(2), 3, 10};
  EventKey later = base;
  later.ts = Time::Microseconds(6);
  EXPECT_LT(base, later);

  EventKey earlier_sender = base;
  earlier_sender.sender_ts = Time::Microseconds(1);
  EXPECT_LT(earlier_sender, base);

  EventKey smaller_node = base;
  smaller_node.sender_node = 2;
  EXPECT_LT(smaller_node, base);

  EventKey smaller_seq = base;
  smaller_seq.seq = 9;
  EXPECT_LT(smaller_seq, base);

  EXPECT_EQ(base, base);
}

TEST(FutureEventList, PopsInKeyOrder) {
  FutureEventList fel;
  Rng rng(11, 0);
  std::vector<EventKey> keys;
  for (int i = 0; i < 2000; ++i) {
    EventKey k{Time::Picoseconds(static_cast<int64_t>(rng.NextU64Below(50))),
               Time::Picoseconds(static_cast<int64_t>(rng.NextU64Below(10))),
               static_cast<LpId>(rng.NextU64Below(4)), static_cast<uint64_t>(i)};
    keys.push_back(k);
    fel.Push(Event{k, kNoNode, [] {}});
  }
  std::sort(keys.begin(), keys.end());
  for (const EventKey& expected : keys) {
    ASSERT_FALSE(fel.Empty());
    EXPECT_EQ(fel.PeekKey(), expected);
    fel.Pop();
  }
  EXPECT_TRUE(fel.Empty());
  EXPECT_TRUE(fel.NextTimestamp().IsMax());
}

TEST(FutureEventList, CountBeforeMatchesLinearScan) {
  FutureEventList fel;
  Rng rng(13, 0);
  int below = 0;
  const Time bound = Time::Picoseconds(500);
  for (int i = 0; i < 1000; ++i) {
    const Time ts = Time::Picoseconds(static_cast<int64_t>(rng.NextU64Below(1000)));
    if (ts < bound) {
      ++below;
    }
    fel.Push(Event{EventKey{ts, Time::Zero(), 0, static_cast<uint64_t>(i)}, kNoNode, [] {}});
  }
  EXPECT_EQ(fel.CountBefore(bound), static_cast<size_t>(below));
}

TEST(FutureEventList, CountBeforeSaturatesAtCap) {
  FutureEventList fel;
  for (int i = 0; i < 100; ++i) {
    fel.Push(Event{EventKey{Time::Picoseconds(i), Time::Zero(), 0,
                            static_cast<uint64_t>(i)},
                   kNoNode, [] {}});
  }
  const Time bound = Time::Picoseconds(80);
  EXPECT_EQ(fel.CountBefore(bound), 80u);
  EXPECT_EQ(fel.CountBefore(bound, 10), 10u);
  EXPECT_EQ(fel.CountBefore(bound, 0), 0u);
  EXPECT_EQ(fel.CountBefore(Time::Picoseconds(1000), 100), 100u);
}

TEST(FutureEventList, PushAllMatchesIndividualPushes) {
  // Both batch regimes: small batches (per-element sift-up) and a batch
  // larger than the existing heap (Floyd rebuild).
  for (const size_t batch : {7u, 500u}) {
    FutureEventList via_push;
    FutureEventList via_bulk;
    Rng rng(31, 0);
    uint64_t seq = 0;
    std::vector<Event> inbox;
    for (int round = 0; round < 4; ++round) {
      inbox.clear();
      for (size_t i = 0; i < batch; ++i) {
        const EventKey k{Time::Picoseconds(static_cast<int64_t>(rng.NextU64Below(300))),
                         Time::Zero(), static_cast<NodeId>(seq % 5), seq};
        ++seq;
        via_push.Push(Event{k, kNoNode, [] {}});
        inbox.push_back(Event{k, kNoNode, [] {}});
      }
      via_bulk.PushAll(inbox);
      EXPECT_TRUE(inbox.empty());  // Drained, ready for reuse.
    }
    ASSERT_EQ(via_bulk.Size(), via_push.Size());
    while (!via_push.Empty()) {
      EXPECT_EQ(via_bulk.Pop().key, via_push.Pop().key);
    }
  }
}

TEST(FutureEventList, PushAllRunsPendingCallbacks) {
  FutureEventList fel;
  int sum = 0;
  std::vector<Event> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(Event{EventKey{Time::Picoseconds(i), Time::Zero(), 0,
                                   static_cast<uint64_t>(i)},
                          kNoNode, [&sum, i] { sum += i; }});
  }
  fel.PushAll(batch);
  while (!fel.Empty()) {
    fel.Pop().fn();
  }
  EXPECT_EQ(sum, 49 * 50 / 2);
}

TEST(FutureEventList, CallbackMovesNotCopies) {
  // Pop must hand back the stored callback; verify identity via captured
  // state.
  FutureEventList fel;
  int hits = 0;
  for (int i = 0; i < 10; ++i) {
    fel.Push(Event{EventKey{Time::Picoseconds(i), Time::Zero(), 0, static_cast<uint64_t>(i)},
                   kNoNode, [&hits] { ++hits; }});
  }
  while (!fel.Empty()) {
    fel.Pop().fn();
  }
  EXPECT_EQ(hits, 10);
}

}  // namespace
}  // namespace unison
