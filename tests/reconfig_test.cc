// Dynamic topologies (§4.2): global events change links mid-run; the kernel
// recomputes lookahead and routing; results stay kernel-independent.
#include <gtest/gtest.h>

#include "src/net/app.h"
#include "src/net/network.h"
#include "src/topo/fat_tree.h"
#include "src/traffic/generator.h"

namespace unison {
namespace {

struct Outcome {
  uint64_t events;
  uint64_t fingerprint;
  uint64_t completed;
};

Outcome RunFlapping(KernelType type, uint32_t threads, Time interval) {
  SimConfig cfg;
  cfg.kernel.type = type;
  cfg.kernel.threads = threads;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 1000000000ULL, Time::Microseconds(30));
  net.Finalize();

  // Identify the links touching core switch 0.
  std::vector<uint32_t> core_links;
  for (uint32_t i = 0; i < net.links().size(); ++i) {
    const auto& l = net.links()[i];
    if (l.a == topo.core_switches[0] || l.b == topo.core_switches[0]) {
      core_links.push_back(i);
    }
  }
  EXPECT_FALSE(core_links.empty());

  // Periodic flap via self-rescheduling global events. The function lives on
  // this stack frame (which outlives Run); events capture a plain pointer so
  // there is no shared_ptr self-cycle.
  Network* netp = &net;
  std::function<void(bool)> flap;
  flap = [netp, core_links, interval, &flap](bool up) {
    for (uint32_t l : core_links) {
      netp->SetLinkUp(l, up);
    }
    netp->sim().ScheduleGlobal(netp->sim().Now() + interval,
                               [&flap, up] { flap(!up); });
  };
  net.sim().ScheduleGlobal(interval, [&flap] { flap(false); });

  GeneratePermutation(net, topo.hosts, 100000, Time::Zero());
  net.Run(Time::Milliseconds(50));

  return Outcome{net.kernel().processed_events(), net.flow_monitor().Fingerprint(),
                 net.flow_monitor().Summarize().completed};
}

TEST(Reconfig, FlowsSurviveLinkFlapping) {
  const Outcome o = RunFlapping(KernelType::kSequential, 1, Time::Milliseconds(5));
  EXPECT_GT(o.events, 0u);
  EXPECT_GT(o.completed, 0u);
}

TEST(Reconfig, UnisonMatchesSequentialUnderDynamics) {
  const Outcome seq = RunFlapping(KernelType::kSequential, 1, Time::Milliseconds(5));
  const Outcome par = RunFlapping(KernelType::kUnison, 3, Time::Milliseconds(5));
  EXPECT_EQ(par.events, seq.events);
  EXPECT_EQ(par.fingerprint, seq.fingerprint);
}

TEST(Reconfig, DelayChangeUpdatesLookahead) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 2;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const NodeId c = net.AddNode();
  const uint32_t ab = net.AddLink(a, b, 1000000000ULL, Time::Microseconds(10));
  net.AddLink(b, c, 1000000000ULL, Time::Microseconds(10));
  net.Finalize();
  ASSERT_EQ(net.partition().lookahead, Time::Microseconds(10));

  Network* netp = &net;
  net.sim().ScheduleGlobal(Time::Milliseconds(1), [netp, ab] {
    netp->SetLinkDelay(ab, Time::Microseconds(50));
  });
  // Keep some traffic moving through the change.
  InstallFlow(net, FlowSpec{a, c, 500000, Time::Zero(), {}});
  net.Run(Time::Milliseconds(30));
  EXPECT_EQ(net.partition().lookahead, Time::Microseconds(10));  // min(50, 10).
  EXPECT_TRUE(net.flow_monitor().flow(0).completed);
}

TEST(Reconfig, DelayIncreaseOnAllCutLinksRaisesLookahead) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 2;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const uint32_t ab = net.AddLink(a, b, 1000000000ULL, Time::Microseconds(10));
  net.Finalize();
  Network* netp = &net;
  net.sim().ScheduleGlobal(Time::Milliseconds(1), [netp, ab] {
    netp->SetLinkDelay(ab, Time::Microseconds(80));
  });
  InstallFlow(net, FlowSpec{a, b, 100000, Time::Zero(), {}});
  net.Run(Time::Milliseconds(30));
  EXPECT_EQ(net.partition().lookahead, Time::Microseconds(80));
}

}  // namespace
}  // namespace unison
