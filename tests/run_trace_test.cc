// Run-trace observability layer: RunSummary emission across kernels,
// per-round records, exporters, and trace-level determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/stats/trace.h"
#include "tests/test_util.h"

namespace unison {
namespace {

struct TracedRun {
  RunSummary summary;
  std::vector<RoundTraceRecord> records;
  std::string json;
  std::string csv;
  uint64_t kernel_rounds = 0;
  uint64_t kernel_events = 0;
};

// RunFatTreeScenario with tracing on, returning the trace artifacts.
TracedRun RunTraced(const KernelConfig& kcfg, PartitionMode partition,
                    bool profile_per_round = false, uint64_t seed = 1) {
  SimConfig cfg;
  cfg.kernel = kcfg;
  cfg.partition = partition;
  cfg.seed = seed;
  cfg.trace = true;
  if (profile_per_round) {
    cfg.profile = true;
    cfg.profile_per_round = true;
  }
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  if (partition == PartitionMode::kManual) {
    net.SetManualPartition(4, FatTreePodPartition(topo, net.num_nodes()));
  }
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());
  net.Run(Time::Milliseconds(5));

  TracedRun out;
  out.summary = net.kernel().run_summary();
  out.records = net.run_trace().records();
  out.json = net.run_trace().ToJson();
  out.csv = net.run_trace().ToCsv();
  out.kernel_rounds = net.kernel().rounds();
  out.kernel_events = net.kernel().processed_events();
  return out;
}

void ExpectSummaryFilled(const TracedRun& run, const char* kernel,
                         uint32_t executors) {
  EXPECT_EQ(run.summary.kernel, kernel);
  EXPECT_EQ(run.summary.executors, executors);
  EXPECT_GT(run.summary.lps, 0u);
  EXPECT_EQ(run.summary.events, run.kernel_events);
  EXPECT_EQ(run.summary.rounds, run.kernel_rounds);
  EXPECT_GT(run.summary.events, 0u);
  EXPECT_GT(run.summary.wall_ns, 0u);
}

TEST(RunTraceKernels, SequentialEmitsSummary) {
  KernelConfig k;
  k.type = KernelType::kSequential;
  const TracedRun run = RunTraced(k, PartitionMode::kSingle);
  ExpectSummaryFilled(run, "sequential", 1);
  // No synchronization rounds: summary only, no per-round records.
  EXPECT_TRUE(run.records.empty());
}

TEST(RunTraceKernels, BarrierEmitsSummaryAndRounds) {
  KernelConfig k;
  k.type = KernelType::kBarrier;
  k.deterministic = true;
  const TracedRun run = RunTraced(k, PartitionMode::kManual);
  ExpectSummaryFilled(run, "barrier", 4);  // One rank per pod.
  ASSERT_EQ(run.records.size(), run.kernel_rounds);
  for (size_t i = 0; i < run.records.size(); ++i) {
    EXPECT_EQ(run.records[i].round, i);
    EXPECT_GT(run.records[i].window_ps, 0);
    EXPECT_LE(run.records[i].window_ps, run.records[i].lbts_ps);
  }
  // Ranks publish their event counters at every round barrier, so
  // events_before is a live cumulative count, not the hardcoded 0 of the
  // pre-engine kernel.
  for (size_t i = 1; i < run.records.size(); ++i) {
    EXPECT_GE(run.records[i].events_before, run.records[i - 1].events_before);
  }
  EXPECT_GT(run.records.back().events_before, 0u);
  EXPECT_LE(run.records.back().events_before, run.summary.events);
}

TEST(RunTraceKernels, NullMessageEmitsSummary) {
  KernelConfig k;
  k.type = KernelType::kNullMessage;
  k.deterministic = true;
  const TracedRun run = RunTraced(k, PartitionMode::kManual);
  ExpectSummaryFilled(run, "nullmsg", 4);
  // CMB has no shared rounds; the trace degenerates to the summary.
  EXPECT_TRUE(run.records.empty());
}

TEST(RunTraceKernels, UnisonEmitsSummaryAndRounds) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  const TracedRun run = RunTraced(k, PartitionMode::kAuto);
  ExpectSummaryFilled(run, "unison", 2);
  ASSERT_EQ(run.records.size(), run.kernel_rounds);
  // The default metric re-sorts every period_ rounds starting at round 0,
  // so the first record carries a claim order covering every LP.
  ASSERT_FALSE(run.records.empty());
  EXPECT_TRUE(run.records[0].resorted);
  EXPECT_EQ(run.records[0].claim_order.size(), run.summary.lps);
  // Window monotonicity: LBTS never moves backwards.
  for (size_t i = 1; i < run.records.size(); ++i) {
    EXPECT_GE(run.records[i].lbts_ps, run.records[i - 1].lbts_ps);
  }
  // events_before is cumulative and consistent with the final total.
  for (size_t i = 1; i < run.records.size(); ++i) {
    EXPECT_GE(run.records[i].events_before, run.records[i - 1].events_before);
  }
  EXPECT_LE(run.records.back().events_before, run.summary.events);
}

TEST(RunTraceKernels, HybridEmitsSummaryAndRounds) {
  KernelConfig k;
  k.type = KernelType::kHybrid;
  k.ranks = 2;
  k.threads = 2;
  const TracedRun run = RunTraced(k, PartitionMode::kAuto);
  ExpectSummaryFilled(run, "hybrid", 4);
  ASSERT_EQ(run.records.size(), run.kernel_rounds);
  ASSERT_FALSE(run.records.empty());
  EXPECT_TRUE(run.records[0].resorted);
  EXPECT_EQ(run.records[0].claim_order.size(), run.summary.lps);
}

// Structure checks on the hand-rolled exporters. (CI additionally validates
// the JSON with a real parser via `python3 -m json.tool`.)
TEST(RunTraceExport, JsonIsBalancedAndCarriesSections) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  const TracedRun run = RunTraced(k, PartitionMode::kAuto, /*profile_per_round=*/true);

  const std::string& json = run.json;
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  int depth = 0;
  int array_depth = 0;
  for (char c : json) {
    depth += c == '{' ? 1 : c == '}' ? -1 : 0;
    array_depth += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(depth, 0);
    ASSERT_GE(array_depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(array_depth, 0);
  EXPECT_NE(json.find("\"summary\":"), std::string::npos);
  EXPECT_NE(json.find("\"kernel\":\"unison\""), std::string::npos);
  EXPECT_NE(json.find("\"per_executor\":["), std::string::npos);
  EXPECT_NE(json.find("\"rounds\":["), std::string::npos);
  // Round records carry the combining-barrier wait/park telemetry.
  EXPECT_NE(json.find("\"barrier_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"parked\":"), std::string::npos);
  // per_round profiling was on, so round records embed P/S/M vectors.
  EXPECT_NE(json.find("\"p_ns\":["), std::string::npos);
  EXPECT_NE(json.find("\"s_ns\":["), std::string::npos);
  EXPECT_NE(json.find("\"m_ns\":["), std::string::npos);
  // Session keys: window count, session aggregate, archived segments.
  EXPECT_NE(json.find("\"windows\":1"), std::string::npos);
  EXPECT_NE(json.find("\"cumulative\":{"), std::string::npos);
  EXPECT_NE(json.find("\"segments\":["), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\""), std::string::npos);
}

TEST(RunTraceExport, CsvHasHeaderAndOneLinePerRound) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  const TracedRun run = RunTraced(k, PartitionMode::kAuto);

  size_t lines = 0;
  for (char c : run.csv) {
    lines += c == '\n' ? 1 : 0;
  }
  ASSERT_GT(lines, 1u);
  EXPECT_EQ(lines, 1 + run.records.size());
  EXPECT_EQ(run.csv.rfind("window,round,lbts_ps,window_ps,events_before,"
                          "resorted,p_total_ns,s_total_ns,m_total_ns,"
                          "barrier_ns,parked,tuning_epoch,migrations,"
                          "spec_rounds,spec_hits,spec_misses,rollback_ns\n",
                          0),
            0u);
  // Single-window session: every row belongs to window 0.
  for (size_t pos = run.csv.find('\n'); pos + 1 < run.csv.size();
       pos = run.csv.find('\n', pos + 1)) {
    EXPECT_EQ(run.csv[pos + 1], '0');
    EXPECT_EQ(run.csv[pos + 2], ',');
  }
}

TEST(RunTraceExport, WriteFilesRoundTrip) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  SimConfig cfg;
  cfg.kernel = k;
  cfg.seed = 1;
  cfg.trace = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 50000, Time::Zero());
  net.Run(Time::Milliseconds(2));

  const std::string path = ::testing::TempDir() + "unison_run_trace_test.json";
  ASSERT_TRUE(net.run_trace().WriteJsonFile(path));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, net.run_trace().ToJson());
}

// Determinism at the trace level: two identical runs claim LPs in the same
// order every round. ByPendingEventCount makes the cost vector itself
// deterministic (event counts, not timings), so with the id tie-break the
// whole claim-order history must match exactly.
TEST(RunTraceDeterminism, IdenticalRunsProduceIdenticalClaimOrders) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  k.metric = SchedulingMetric::kByPendingEventCount;
  k.deterministic = true;
  const TracedRun a = RunTraced(k, PartitionMode::kAuto);
  const TracedRun b = RunTraced(k, PartitionMode::kAuto);

  ASSERT_EQ(a.records.size(), b.records.size());
  ASSERT_FALSE(a.records.empty());
  size_t resorted = 0;
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].round, b.records[i].round);
    EXPECT_EQ(a.records[i].lbts_ps, b.records[i].lbts_ps);
    EXPECT_EQ(a.records[i].window_ps, b.records[i].window_ps);
    EXPECT_EQ(a.records[i].events_before, b.records[i].events_before);
    EXPECT_EQ(a.records[i].resorted, b.records[i].resorted);
    EXPECT_EQ(a.records[i].claim_order, b.records[i].claim_order) << "round " << i;
    resorted += a.records[i].resorted ? 1 : 0;
  }
  EXPECT_GT(resorted, 1u);  // The comparison actually exercised re-sorts.
  EXPECT_EQ(a.summary.events, b.summary.events);
  EXPECT_EQ(a.summary.rounds, b.summary.rounds);
}

TEST(RunTraceConfig, ClaimOrderRecordingCanBeDisabled) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  SimConfig cfg;
  cfg.kernel = k;
  cfg.seed = 1;
  cfg.trace = true;
  cfg.trace_claim_order = false;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 50000, Time::Zero());
  net.Run(Time::Milliseconds(2));

  const auto& records = net.run_trace().records();
  ASSERT_FALSE(records.empty());
  size_t resorted = 0;
  for (const auto& r : records) {
    EXPECT_TRUE(r.claim_order.empty());
    resorted += r.resorted ? 1 : 0;
  }
  EXPECT_GT(resorted, 0u);  // The resorted flag still records scheduler activity.
}

}  // namespace
}  // namespace unison
