// Movable LP ownership (PR 9): PartitionMap semantics, the results-neutrality
// of window-boundary migration (forced move sets at every boundary leave
// fingerprints and digests bit-identical, for every kernel), rebalance under
// auto tuning, and ownership surviving snapshot/fork.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "src/net/session.h"
#include "src/partition/partition_map.h"
#include "src/stats/digest.h"
#include "tests/test_util.h"

namespace unison {
namespace {

// --- PartitionMap unit tests ---

TEST(PartitionMap, ResetStridedAssignsRoundRobinAtEpochZero) {
  PartitionMap map;
  map.ResetStrided(6, 2);
  EXPECT_EQ(map.num_lps(), 6u);
  EXPECT_EQ(map.num_executors(), 2u);
  EXPECT_EQ(map.epoch(), 0u);  // Reset never consumes an epoch.
  EXPECT_EQ(map.owners(), (std::vector<uint32_t>{0, 1, 0, 1, 0, 1}));
  EXPECT_EQ(map.owned(0), (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(map.owned(1), (std::vector<uint32_t>{1, 3, 5}));
}

TEST(PartitionMap, ApplyStagedFoldsTargetsAndBumpsEpochOnce) {
  PartitionMap map;
  map.ResetStrided(4, 2);  // Owners {0, 1, 0, 1}.
  map.Stage({{0, 1}, {1, 1}, {2, 5}, {0, 0}});
  // lp 0: staged twice, later move wins (stays on 0 — a no-op).
  // lp 1: target equals the current owner — a no-op.
  // lp 2: 5 folds modulo 2 to executor 1 — the only real change.
  EXPECT_TRUE(map.has_staged());
  EXPECT_EQ(map.ApplyStaged(), 1u);
  EXPECT_EQ(map.epoch(), 1u);  // One batch, one epoch — not one per move.
  EXPECT_EQ(map.owners(), (std::vector<uint32_t>{0, 1, 1, 1}));
  EXPECT_EQ(map.owned(0), (std::vector<uint32_t>{0}));
  EXPECT_EQ(map.owned(1), (std::vector<uint32_t>{1, 2, 3}));
  // Nothing staged: apply is a no-op and the epoch holds.
  EXPECT_FALSE(map.has_staged());
  EXPECT_EQ(map.ApplyStaged(), 0u);
  EXPECT_EQ(map.epoch(), 1u);
}

TEST(PartitionMap, StagedMovesBeyondTheLpRangeAreIgnored) {
  PartitionMap map;
  map.ResetStrided(2, 2);
  map.Stage({{9, 0}});
  EXPECT_EQ(map.ApplyStaged(), 0u);
  EXPECT_EQ(map.epoch(), 0u);
}

TEST(PartitionMap, MigrateLpIsTheImmediateSingleMovePath) {
  PartitionMap map;
  map.ResetStrided(3, 3);  // Owners {0, 1, 2}.
  EXPECT_TRUE(map.MigrateLp(0, 2));
  EXPECT_EQ(map.owner(0), 2u);
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_FALSE(map.MigrateLp(0, 2));  // Already there: no epoch burned.
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_EQ(map.owned(0), (std::vector<uint32_t>{}));
  EXPECT_EQ(map.owned(2), (std::vector<uint32_t>{0, 2}));
}

TEST(PartitionMap, RestoreReinstallsOwnersAndEpoch) {
  PartitionMap map;
  map.ResetStrided(4, 2);
  map.Restore({1, 1, 0, 3}, 7);  // 3 folds modulo 2 to executor 1.
  EXPECT_EQ(map.epoch(), 7u);
  EXPECT_EQ(map.owners(), (std::vector<uint32_t>{1, 1, 0, 1}));
  EXPECT_EQ(map.owned(0), (std::vector<uint32_t>{2}));
  EXPECT_EQ(map.owned(1), (std::vector<uint32_t>{0, 1, 3}));
}

// --- Forced-migration determinism matrix ---

struct KernelCase {
  const char* name;
  KernelConfig config;
  PartitionMode partition;
};

std::vector<KernelCase> AllKernels() {
  std::vector<KernelCase> cases;
  {
    KernelConfig k;
    k.type = KernelType::kSequential;
    cases.push_back({"sequential", k, PartitionMode::kSingle});
  }
  {
    KernelConfig k;
    k.type = KernelType::kBarrier;
    k.deterministic = true;
    cases.push_back({"barrier", k, PartitionMode::kManual});
  }
  {
    KernelConfig k;
    k.type = KernelType::kNullMessage;
    k.deterministic = true;
    cases.push_back({"nullmsg", k, PartitionMode::kManual});
  }
  {
    KernelConfig k;
    k.type = KernelType::kUnison;
    k.threads = 2;
    cases.push_back({"unison", k, PartitionMode::kAuto});
  }
  {
    KernelConfig k;
    k.type = KernelType::kHybrid;
    k.ranks = 2;
    k.threads = 2;
    cases.push_back({"hybrid", k, PartitionMode::kAuto});
  }
  return cases;
}

class MigrationTransparency
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

// The tentpole invariant: staging a random LP move set at *every* window
// boundary changes nothing — same fingerprint, same digest, same event and
// flow counts as the never-migrated monolithic run. Which executor runs an
// LP is unobservable in the results.
TEST_P(MigrationTransparency, ForcedMovesAreResultsNeutral) {
  const int kernel_index = std::get<0>(GetParam());
  const uint32_t windows = std::get<1>(GetParam());
  const KernelCase kc = AllKernels()[kernel_index];
  SCOPED_TRACE(std::string(kc.name) + " x " + std::to_string(windows));

  FatTreeScenario base = BuildFatTreeScenarioStreaming(kc.config, kc.partition);
  base.net->Run(Time::Milliseconds(5));
  const RunOutcome want = OutcomeOf(*base.net);
  const RunDigest want_digest = DigestOf(*base.net);
  EXPECT_EQ(base.net->kernel().partition_map().epoch(), 0u);

  FatTreeScenario mig = BuildFatTreeScenarioStreaming(kc.config, kc.partition);
  // Seeded per case: deterministic move sets, including out-of-domain
  // targets that must fold modulo the kernel's executor domain.
  std::mt19937_64 rng(0x9e3779b9ULL * (kernel_index + 1) + windows);
  const int64_t total_ps = Time::Milliseconds(5).ps();
  for (uint32_t w = 1; w <= windows; ++w) {
    Kernel& kernel = mig.net->kernel();
    const uint32_t domain = kernel.partition_map().num_executors();
    std::vector<LpMove> moves;
    for (uint32_t lp = 0; lp < kernel.num_lps(); ++lp) {
      if (rng() % 2 == 0) {
        moves.push_back({lp, static_cast<uint32_t>(rng() % (domain + 2))});
      }
    }
    kernel.StageMigrations(moves);
    const Time stop = w == windows
                          ? Time::Milliseconds(5)
                          : Time::Picoseconds(total_ps * w / windows);
    mig.net->Run(stop);
  }
  const RunOutcome got = OutcomeOf(*mig.net);
  const RunDigest got_digest = DigestOf(*mig.net);

  EXPECT_EQ(got.fingerprint, want.fingerprint);
  EXPECT_EQ(got.events, want.events);
  if (kc.config.type != KernelType::kNullMessage) {
    // Rounds are ownership-independent for the windowed kernels. The
    // null-message kernel's sweep count legitimately varies with executor
    // grouping — a performance effect, not a result.
    EXPECT_EQ(got.rounds, want.rounds);
  }
  EXPECT_EQ(got.summary.completed, want.summary.completed);
  EXPECT_TRUE(got_digest == want_digest);
  if (kc.config.type != KernelType::kSequential) {
    // The schedule above must have actually moved LPs, not vacuously passed.
    EXPECT_GT(mig.net->kernel().partition_map().epoch(), 0u);
  } else {
    // Sequential folds every target into its single executor: no-ops only.
    EXPECT_EQ(mig.net->kernel().partition_map().epoch(), 0u);
  }
}

std::string MigrationCaseName(
    const ::testing::TestParamInfo<std::tuple<int, uint32_t>>& info) {
  static const char* const names[5] = {"sequential", "barrier", "nullmsg",
                                       "unison", "hybrid"};
  return std::string(names[std::get<0>(info.param)]) + "_w" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllSplits, MigrationTransparency,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1u, 2u, 5u)),
    MigrationCaseName);

// --- Rebalance under auto tuning ---

// An aggressive rebalance configuration (patience 1, near-zero imbalance
// threshold, small first windows) over a parallel kernel: whether or not the
// rule fires on this machine's timings, the outcome must match the static
// run bit-for-bit — the controller can only move work, never change results.
TEST(RebalanceTuning, AutoRebalanceIsResultsNeutral) {
  KernelConfig k;
  k.type = KernelType::kHybrid;
  k.ranks = 2;
  k.threads = 2;
  const RunOutcome want = RunFatTreeScenario(k, PartitionMode::kAuto);

  SimConfig cfg;
  cfg.kernel = k;
  cfg.partition = PartitionMode::kAuto;
  cfg.seed = 1;
  cfg.tuning = TuningMode::kAuto;
  cfg.tuning_config.min_rounds = 1;
  cfg.tuning_config.rule_patience = 1;
  cfg.tuning_config.rebalance_patience = 1;
  cfg.tuning_config.rebalance_imbalance_high = 0.01;
  cfg.tuning_config.rebalance_cooldown = 1;
  cfg.tuning_config.initial_window_ps = 500'000'000;  // 0.5 ms slices.
  const RunOutcome got = RunFatTreeScenarioConfigured(cfg, 1);

  EXPECT_EQ(got.fingerprint, want.fingerprint);
  EXPECT_EQ(got.events, want.events);
  EXPECT_EQ(got.summary.completed, want.summary.completed);
}

// --- Snapshot / fork ownership roundtrip ---

// The realized ownership map is session state (USNP v3): a fork resumes with
// the parent's learned placement and the same map epoch, and both timelines
// still land on the never-migrated monolithic outcome.
TEST(RebalanceSnapshot, OwnershipSurvivesForkAndStaysNeutral) {
  KernelConfig k;
  k.type = KernelType::kBarrier;
  k.deterministic = true;
  const RunOutcome mono =
      RunFatTreeScenarioStreaming(k, PartitionMode::kManual, 1);

  FatTreeScenario parent =
      BuildFatTreeScenarioStreaming(k, PartitionMode::kManual);
  parent.net->Run(Time::Milliseconds(1));
  parent.net->kernel().StageMigrations({{0, 3}, {1, 2}});
  parent.net->Run(Time::Milliseconds(2));
  const PartitionMap& pmap = parent.net->kernel().partition_map();
  EXPECT_EQ(pmap.epoch(), 1u);
  EXPECT_EQ(pmap.owner(0), 3u);
  EXPECT_EQ(pmap.owner(1), 2u);
  const std::vector<uint32_t> parent_owners = pmap.owners();

  Session session(parent.net.get());
  const SessionSnapshot snap = session.Snapshot();
  std::unique_ptr<Network> fork = session.Fork(snap);
  EXPECT_EQ(fork->kernel().partition_map().owners(), parent_owners);
  EXPECT_EQ(fork->kernel().partition_map().epoch(), 1u);

  fork->Run(Time::Milliseconds(5));
  EXPECT_EQ(fork->flow_monitor().Fingerprint(), mono.fingerprint);
  EXPECT_EQ(fork->kernel().session_events(), mono.events);

  parent.net->Run(Time::Milliseconds(5));
  EXPECT_EQ(parent.net->flow_monitor().Fingerprint(), mono.fingerprint);
  EXPECT_EQ(parent.net->kernel().session_events(), mono.events);
}

}  // namespace
}  // namespace unison
