// The shared round-execution engine: ExecutorPool, PhaseAccountant, and the
// cross-kernel reuse guarantees they exist to provide.
//
// The load-bearing claims: a pool's OS threads are spawned once at Setup and
// reused by every subsequent Run() on the same kernel instance; back-to-back
// runs stay bit-deterministic; and every nanosecond the accountant times
// lands in exactly one P/S/M bucket, with per-round rows summing to the
// executor totals by construction.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <set>

#include "src/kernel/engine/cpu_topology.h"
#include "src/kernel/engine/executor_pool.h"
#include "src/kernel/engine/phase_accountant.h"
#include "src/kernel/engine/spec_checkpoint.h"
#include "src/kernel/kernel.h"
#include "src/partition/manual.h"
#include "tests/test_util.h"

namespace unison {
namespace {

// --- ExecutorPool ---

TEST(ExecutorPool, RunsEveryWorkerEachEpoch) {
  ExecutorPool pool;
  pool.Ensure(4);
  std::vector<std::atomic<int>> hits(4);
  for (int epoch = 0; epoch < 50; ++epoch) {
    pool.Run([&hits](uint32_t id) { hits[id].fetch_add(1); });
  }
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 50);
  }
}

TEST(ExecutorPool, CallerIsWorkerZero) {
  ExecutorPool pool;
  pool.Ensure(3);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Run([&](uint32_t id) {
    if (id == 0) {
      seen = std::this_thread::get_id();
    }
  });
  EXPECT_EQ(seen, caller);
}

TEST(ExecutorPool, SpawnsOnceAndReusesThreadsAcrossRuns) {
  ExecutorPool pool;
  pool.Ensure(4);
  EXPECT_EQ(pool.parties(), 4u);
  EXPECT_EQ(pool.threads_spawned(), 3u);  // Caller is worker 0.
  for (int i = 0; i < 10; ++i) {
    pool.Run([](uint32_t) {});
  }
  EXPECT_EQ(pool.threads_spawned(), 3u);
  pool.Ensure(4);  // Same size: no-op, running threads kept.
  EXPECT_EQ(pool.threads_spawned(), 3u);
  pool.Ensure(2);  // Shrink: excess threads park in place, none retired.
  EXPECT_EQ(pool.parties(), 2u);
  EXPECT_EQ(pool.threads_spawned(), 3u);
  pool.Run([](uint32_t) {});
  EXPECT_EQ(pool.threads_spawned(), 3u);
  pool.Ensure(4);  // Grow back within the high-water mark: no new spawns.
  EXPECT_EQ(pool.parties(), 4u);
  EXPECT_EQ(pool.threads_spawned(), 3u);
  pool.Ensure(6);  // Beyond the high-water mark: only the delta spawns.
  EXPECT_EQ(pool.threads_spawned(), 5u);
  pool.Run([](uint32_t) {});
  EXPECT_EQ(pool.threads_spawned(), 5u);
}

TEST(ExecutorPool, ShrinkParksExcessWorkersAndGrowReenlistsThem) {
  ExecutorPool pool;
  pool.Ensure(4);
  std::vector<std::atomic<int>> hits(6);
  pool.Run([&hits](uint32_t id) { hits[id].fetch_add(1); });
  pool.Ensure(2);
  // Parked workers (ids 2, 3) must not execute the body — and must not be
  // counted toward epoch completion either, or Run would hang.
  for (int i = 0; i < 20; ++i) {
    pool.Run([&hits](uint32_t id) { hits[id].fetch_add(1); });
  }
  EXPECT_EQ(hits[0].load(), 21);
  EXPECT_EQ(hits[1].load(), 21);
  EXPECT_EQ(hits[2].load(), 1);
  EXPECT_EQ(hits[3].load(), 1);
  // Alternating sizes never churns OS threads once the high-water set exists.
  const uint64_t spawned = pool.threads_spawned();
  for (int i = 0; i < 5; ++i) {
    pool.Ensure(6);
    pool.Run([&hits](uint32_t id) { hits[id].fetch_add(1); });
    pool.Ensure(2);
    pool.Run([&hits](uint32_t id) { hits[id].fetch_add(1); });
  }
  EXPECT_EQ(pool.threads_spawned(), 5u);
  EXPECT_GE(pool.threads_spawned(), spawned);
  EXPECT_EQ(hits[0].load(), 31);
  EXPECT_EQ(hits[5].load(), 5);  // Only alive in the 6-party epochs.
}

TEST(ExecutorPool, SinglePartyRunsInline) {
  ExecutorPool pool;
  pool.Ensure(1);
  EXPECT_EQ(pool.threads_spawned(), 0u);
  int ran = 0;
  pool.Run([&ran](uint32_t id) {
    EXPECT_EQ(id, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(ExecutorPool, ApplyPlacementSpawnsNothingAndKeepsWorkersAlive) {
  ExecutorPool pool;
  pool.Ensure(3);
  const uint64_t spawned = pool.threads_spawned();
  std::vector<std::atomic<int>> hits(3);
  const auto tick = [&hits](uint32_t id) { hits[id].fetch_add(1); };

  // Changing placement mid-session re-pins the existing workers lazily; it
  // never respawns them, and every worker still executes every epoch.
  pool.ApplyPlacement(AffinityPolicy::kCompact);
  pool.Run(tick);
  pool.ApplyPlacement(AffinityPolicy::kCompact);  // Same policy: no-op.
  pool.Run(tick);
  pool.ApplyPlacement(AffinityPolicy::kScatter);
  pool.Run(tick);
  pool.ApplyPlacement(AffinityPolicy::kNone);
  pool.Run(tick);
  EXPECT_EQ(pool.threads_spawned(), spawned);
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 4);
  }
}

TEST(ExecutorPool, PlacementRoundTripRestoresCallerAffinity) {
  // kCompact pins the caller (worker 0) to one core; kNone must widen it
  // back to the full pre-pin mask, which the pool captured before pinning.
  const size_t before = CpuTopology::Detect().cpus.size();
  ExecutorPool pool;
  pool.Ensure(2);
  pool.ApplyPlacement(AffinityPolicy::kCompact);
  pool.ApplyPlacement(AffinityPolicy::kNone);
  pool.Run([](uint32_t) {});  // Let workers observe the placement epoch too.
  EXPECT_EQ(CpuTopology::Detect().cpus.size(), before);
}

TEST(ExecutorPool, ApplyPlacementBeforeAnyPinIsANoOp) {
  ExecutorPool pool;
  pool.Ensure(2);
  // kNone with nothing ever pinned must not touch the caller's mask.
  const size_t before = CpuTopology::Detect().cpus.size();
  pool.ApplyPlacement(AffinityPolicy::kNone);
  EXPECT_EQ(CpuTopology::Detect().cpus.size(), before);
}

// --- CpuTopology ---

TEST(CpuTopology, PlacementOrderIsAPermutationOfAllowedCpus) {
  const CpuTopology topo = CpuTopology::Detect();
  ASSERT_FALSE(topo.cpus.empty());  // Detect never returns empty.
  std::set<uint32_t> allowed;
  for (const auto& cpu : topo.cpus) {
    allowed.insert(cpu.id);
  }
  EXPECT_TRUE(topo.PlacementOrder(AffinityPolicy::kNone).empty());
  for (auto policy : {AffinityPolicy::kCompact, AffinityPolicy::kScatter}) {
    const std::vector<uint32_t> order = topo.PlacementOrder(policy);
    EXPECT_EQ(std::set<uint32_t>(order.begin(), order.end()), allowed);
    EXPECT_EQ(order.size(), allowed.size());  // Each CPU exactly once.
  }
}

TEST(CpuTopology, PolicyNamesRoundTrip) {
  for (auto policy : {AffinityPolicy::kNone, AffinityPolicy::kCompact,
                      AffinityPolicy::kScatter}) {
    AffinityPolicy parsed = AffinityPolicy::kNone;
    ASSERT_TRUE(AffinityPolicyFromName(AffinityPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  AffinityPolicy parsed = AffinityPolicy::kScatter;
  EXPECT_FALSE(AffinityPolicyFromName("numa", &parsed));
  EXPECT_EQ(parsed, AffinityPolicy::kScatter);  // Untouched on failure.
}

// --- PhaseAccountant ---

TEST(PhaseAccountant, EveryIntervalLandsInExactlyOneBucket) {
  Profiler prof;
  prof.enabled = true;
  prof.per_round = true;
  prof.BeginRun(1);
  uint64_t s0 = 0, p0 = 0, m1 = 0;
  {
    PhaseAccountant acct(0, true, &prof);
    EXPECT_TRUE(acct.timing());
    acct.BeginRound(0);
    acct.OpenInterval();
    s0 = acct.CloseSync();
    p0 = acct.CloseProcessing();
    acct.BeginRound(1);
    m1 = acct.CloseMessaging();
    acct.set_events(42);
  }  // Destructor flushes the totals.

  const ExecutorPhaseStats& e = prof.executors()[0];
  EXPECT_EQ(e.events, 42u);
  // Totals are exactly the closed intervals — nothing double-counted,
  // nothing dropped.
  EXPECT_EQ(e.synchronization_ns, s0);
  EXPECT_EQ(e.processing_ns, p0);
  EXPECT_EQ(e.messaging_ns, m1);
  // Per-round rows carry the same deltas, keyed by BeginRound.
  const auto rs = prof.round_sync_ns();
  const auto rp = prof.round_processing_ns();
  const auto rm = prof.round_messaging_ns();
  ASSERT_EQ(prof.rounds(), 2u);
  EXPECT_EQ(rs[0][0], s0);
  EXPECT_EQ(rp[0][0], p0);
  EXPECT_EQ(rm[0][0], 0u);
  EXPECT_EQ(rs[1][0], 0u);
  EXPECT_EQ(rm[1][0], m1);
}

TEST(PhaseAccountant, OpenIntervalDiscardsUnattributedTime) {
  Profiler prof;
  prof.enabled = true;
  prof.per_round = true;
  prof.BeginRun(1);
  {
    PhaseAccountant acct(0, true, &prof);
    acct.BeginRound(0);
    acct.OpenInterval();
    acct.CloseSync();
    // Time passing here must vanish: the next close measures from the
    // re-opened cursor, not from the last close.
    acct.OpenInterval();
    const uint64_t p = acct.CloseProcessing();
    EXPECT_EQ(prof.executors()[0].processing_ns, 0u);  // Not yet flushed.
    acct.Flush();
    EXPECT_EQ(prof.executors()[0].processing_ns, p);
  }
}

TEST(PhaseAccountant, DisabledTimingIsFreeOfSideEffects) {
  Profiler prof;
  prof.enabled = true;
  prof.per_round = true;
  prof.BeginRun(1);
  {
    PhaseAccountant acct(0, /*timing=*/false, &prof);
    acct.BeginRound(0);
    acct.OpenInterval();
    EXPECT_EQ(acct.CloseSync(), 0u);
    EXPECT_EQ(acct.CloseProcessing(), 0u);
    EXPECT_EQ(acct.CloseMessaging(), 0u);
    acct.set_events(7);
  }
  const ExecutorPhaseStats& e = prof.executors()[0];
  EXPECT_EQ(e.processing_ns, 0u);
  EXPECT_EQ(e.synchronization_ns, 0u);
  EXPECT_EQ(e.messaging_ns, 0u);
  EXPECT_EQ(e.events, 7u);  // Event counts are not gated on timing.
  EXPECT_EQ(prof.rounds(), 0u);
}

// --- Back-to-back Run() on one kernel instance ---

// Two nodes ping-ponging across the cut edge; each node's log is written
// only by the LP that owns it, so logs are race-free and comparable across
// kernel instances.
struct PingPong {
  Kernel* kernel;
  std::array<std::vector<int64_t>, 2> log;

  void Hop(NodeId node, int64_t t_us, int64_t until_us) {
    kernel->ScheduleOnNode(node, Time::Microseconds(t_us),
                           [this, node, t_us, until_us] {
                             log[node].push_back(t_us);
                             if (t_us + 2 <= until_us) {
                               Hop(1 - node, t_us + 2, until_us);
                             }
                           });
  }
};

struct TwoRunOutcome {
  std::array<std::vector<int64_t>, 2> log;
  uint64_t spawned_setup = 0;  // Threads spawned by Setup (pool creation).
  uint64_t spawned_run2 = 0;   // Threads spawned by the second Run: must be 0.
  uint64_t events = 0;         // Total across both runs.
  RunResult first;             // Window results reported by each Run().
  RunResult second;
  uint64_t session_events = 0;  // Kernel's session accumulator after run 2.
  uint32_t session_windows = 0;
};

TwoRunOutcome RunTwice(KernelType type, uint32_t threads, uint32_t ranks = 2) {
  TopoGraph graph;
  graph.num_nodes = 2;
  graph.edges.push_back(TopoEdge{0, 1, Time::Microseconds(1), true});
  KernelConfig kc;
  kc.type = type;
  kc.threads = threads;
  kc.ranks = ranks;
  auto kernel = MakeKernel(kc);

  const uint64_t before_setup = ExecutorPool::TotalThreadsSpawned();
  kernel->Setup(graph, RangePartition(graph, 2));
  TwoRunOutcome out;
  out.spawned_setup = ExecutorPool::TotalThreadsSpawned() - before_setup;

  PingPong pp{kernel.get(), {}};
  // The chain spans both runs: events past the first stop stay pending and
  // the second Run() picks them up (simulated time never rewinds).
  pp.Hop(0, 1, 299);
  out.first = kernel->Run(Time::Microseconds(100));
  out.events = kernel->processed_events();

  // New work injected between runs, at an absolute time in run 2's window.
  kernel->ScheduleOnNode(0, Time::Microseconds(200), [&pp] {
    pp.log[0].push_back(-200);
  });
  const uint64_t before_run2 = ExecutorPool::TotalThreadsSpawned();
  out.second = kernel->Run(Time::Microseconds(300));
  out.spawned_run2 = ExecutorPool::TotalThreadsSpawned() - before_run2;
  out.events += kernel->processed_events();
  out.session_events = kernel->session_events();
  out.session_windows = kernel->session_windows();
  out.log = std::move(pp.log);
  return out;
}

class EngineReuseTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(EngineReuseTest, SecondRunReusesPoolThreadsAndStaysDeterministic) {
  const KernelType type = GetParam();
  const TwoRunOutcome a = RunTwice(type, /*threads=*/3);
  const TwoRunOutcome b = RunTwice(type, /*threads=*/3);

  // The ping-pong actually crossed the cut in both runs.
  EXPECT_GT(a.events, 100u);
  ASSERT_FALSE(a.log[0].empty());
  ASSERT_FALSE(a.log[1].empty());
  EXPECT_GT(a.log[1].back(), 100);  // Run 2 continued the chain.

  // Setup spawned the pool; the second Run() spawned nothing.
  EXPECT_GT(a.spawned_setup, 0u);
  EXPECT_EQ(a.spawned_run2, 0u);
  EXPECT_EQ(b.spawned_run2, 0u);

  // Window classification: run 1 hit its stop time with the chain still
  // pending (a window boundary), run 2 drained the chain (exhaustion).
  EXPECT_EQ(a.first.reason, RunReason::kWindowReached);
  EXPECT_EQ(a.first.end, Time::Microseconds(100));
  EXPECT_EQ(a.second.reason, RunReason::kExhausted);
  EXPECT_EQ(a.session_windows, 2u);
  EXPECT_EQ(a.session_events, a.first.events + a.second.events);
  EXPECT_EQ(a.events, a.session_events);

  // Bit-determinism across instances, both runs included.
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.log[0], b.log[0]);
  EXPECT_EQ(a.log[1], b.log[1]);
}

// --- SpecCheckpoint ---

TEST(SpecCheckpoint, CaptureRestoreCountersAndDeclines) {
  SpecCheckpoint ck;
  EXPECT_FALSE(ck.installed());
  EXPECT_FALSE(ck.Capture());  // No hooks: refuse, never speculate.
  EXPECT_FALSE(ck.valid());

  std::vector<uint8_t> restored;
  bool refuse = false;
  ck.InstallHooks(
      [&refuse](std::vector<uint8_t>* out) {
        if (refuse) {
          return false;
        }
        out->assign(1000, 0xAB);
        return true;
      },
      [&restored](const std::vector<uint8_t>& buf) { restored = buf; });
  EXPECT_TRUE(ck.installed());
  ASSERT_TRUE(ck.Capture());
  EXPECT_TRUE(ck.valid());
  EXPECT_EQ(ck.captures(), 1u);
  EXPECT_EQ(ck.buffer_size(), 1000u);
  const size_t cap = ck.buffer_capacity();
  EXPECT_GE(cap, 1000u);

  ck.Restore();
  EXPECT_EQ(ck.restores(), 1u);
  ASSERT_EQ(restored.size(), 1000u);
  EXPECT_EQ(restored[0], 0xAB);
  EXPECT_TRUE(ck.valid());  // A restore keeps the checkpoint.

  // A declined capture invalidates the prior checkpoint, and Restore
  // without a valid checkpoint is a no-op.
  refuse = true;
  EXPECT_FALSE(ck.Capture());
  EXPECT_FALSE(ck.valid());
  restored.clear();
  ck.Restore();
  EXPECT_EQ(ck.restores(), 1u);
  EXPECT_TRUE(restored.empty());

  // The pooled buffer keeps its capacity across captures: a smaller window
  // re-serializes into already-owned storage.
  refuse = false;
  ASSERT_TRUE(ck.Capture());
  EXPECT_EQ(ck.captures(), 2u);
  EXPECT_EQ(ck.buffer_capacity(), cap);
}

// A live speculative session: one checkpoint per eligible window, rollbacks
// on forced misses, the pooled buffer settling at its high-water mark, and —
// the engine's core reuse promise — zero OS threads spawned across
// speculative windows and their conservative re-runs.
TEST(SpecCheckpoint, SpeculativeWindowsReuseBufferAndSpawnNoThreads) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 2;
  cfg.speculation = SpeculationMode::kAuto;
  // Horizon far past the 3 us lookahead: busy windows overshoot and roll
  // back, so Restore runs on top of Capture.
  cfg.tuning_config.spec_horizon_initial_ps = Time::Milliseconds(10).ps();
  Network net(cfg);
  FatTreeTopo topo =
      BuildFatTree(net, 4, 10'000'000'000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());

  const uint32_t windows = 5;
  uint64_t spawned_before = 0;
  size_t cap_mid = 0;
  for (uint32_t w = 1; w <= windows; ++w) {
    if (w == 2) {
      spawned_before = ExecutorPool::TotalThreadsSpawned();
    }
    net.Run(Time::Milliseconds(w));
    if (w == 3) {
      cap_mid = net.kernel().spec_checkpoint().buffer_capacity();
    }
  }
  EXPECT_EQ(ExecutorPool::TotalThreadsSpawned() - spawned_before, 0u);

  const SpecCheckpoint& ck = net.kernel().spec_checkpoint();
  EXPECT_EQ(ck.captures(), windows);  // Every boundary captured exactly once.
  EXPECT_GE(ck.restores(), 1u);       // The overshooting window rolled back.
  // The permutation drains inside window 1, so the buffer's high-water mark
  // is set early and later captures reuse it — no regrowth.
  EXPECT_EQ(ck.buffer_capacity(), cap_mid);
  EXPECT_LE(ck.buffer_size(), ck.buffer_capacity());
}

INSTANTIATE_TEST_SUITE_P(AllParallelKernels, EngineReuseTest,
                         ::testing::Values(KernelType::kBarrier,
                                           KernelType::kNullMessage,
                                           KernelType::kUnison,
                                           KernelType::kHybrid),
                         [](const ::testing::TestParamInfo<KernelType>& info) {
                           switch (info.param) {
                             case KernelType::kBarrier: return "Barrier";
                             case KernelType::kNullMessage: return "NullMessage";
                             case KernelType::kUnison: return "Unison";
                             case KernelType::kHybrid: return "Hybrid";
                             default: return "Sequential";
                           }
                         });

}  // namespace
}  // namespace unison
