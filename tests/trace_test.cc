// Workload trace I/O: parse, validate, round-trip, replay equivalence.
#include <gtest/gtest.h>

#include <sstream>

#include "src/net/network.h"
#include "src/traffic/generator.h"
#include "src/traffic/trace.h"
#include "src/topo/fat_tree.h"

namespace unison {
namespace {

std::unique_ptr<Network> SmallNet(KernelType kernel = KernelType::kSequential) {
  SimConfig cfg;
  cfg.kernel.type = kernel;
  cfg.kernel.threads = 2;
  auto net = std::make_unique<Network>(cfg);
  net->AddNodes(4);
  net->AddLink(0, 1, 1000000000ULL, Time::Microseconds(10));
  net->AddLink(1, 2, 1000000000ULL, Time::Microseconds(10));
  net->AddLink(2, 3, 1000000000ULL, Time::Microseconds(10));
  net->Finalize();
  return net;
}

TEST(Trace, ParsesFlowsSkippingCommentsAndBlanks) {
  auto net = SmallNet();
  std::istringstream csv(
      "# a workload\n"
      "\n"
      "0,3,10000,0\n"
      "  1,2,500,0.001\n"
      "3,0,2500,0.0005\n");
  const TraceParseResult r = InstallFlowsFromCsv(*net, csv);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.lines_parsed, 3u);
  EXPECT_EQ(r.lines_skipped, 2u);
  ASSERT_EQ(r.flow_ids.size(), 3u);
  const FlowRecord& f1 = net->flow_monitor().flow(r.flow_ids[1]);
  EXPECT_EQ(f1.src, 1u);
  EXPECT_EQ(f1.dst, 2u);
  EXPECT_EQ(f1.bytes, 500u);
  EXPECT_EQ(f1.start, Time::Seconds(0.001));
}

TEST(Trace, RejectsMalformedInput) {
  for (const char* bad : {"0;3;100;0\n", "0,3,100\n", "0,9,100,0\n", "2,2,100,0\n",
                          "0,3,100,-1\n", "x,3,100,0\n"}) {
    auto net = SmallNet();
    std::istringstream csv(bad);
    const TraceParseResult r = InstallFlowsFromCsv(*net, csv);
    EXPECT_FALSE(r.error.empty()) << "input: " << bad;
  }
}

TEST(Trace, RoundTripsGeneratedWorkload) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  TrafficSpec spec;
  spec.hosts = topo.hosts;
  spec.bisection_bps = topo.bisection_bps;
  spec.load = 0.2;
  spec.duration = Time::Milliseconds(10);
  GenerateTraffic(net, spec);
  std::ostringstream out;
  WriteFlowsCsv(net, out);

  // Replay the exported trace into a fresh network of identical shape.
  SimConfig cfg2;
  cfg2.kernel.type = KernelType::kSequential;
  Network net2(cfg2);
  BuildFatTree(net2, 4, 10000000000ULL, Time::Microseconds(3));
  net2.Finalize();
  std::istringstream in(out.str());
  const TraceParseResult r = InstallFlowsFromCsv(net2, in);
  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(net2.flow_monitor().size(), net.flow_monitor().size());
  for (uint32_t i = 0; i < net.flow_monitor().size(); ++i) {
    const FlowRecord& a = net.flow_monitor().flow(i);
    const FlowRecord& b = net2.flow_monitor().flow(i);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.bytes, b.bytes);
    // Start times round-trip through decimal seconds: microsecond-accurate.
    EXPECT_LT(std::abs((a.start - b.start).ps()), Time::Microseconds(1).ps());
  }
}

TEST(Trace, ReplayedTraceRunsIdenticallyUnderAnyKernel) {
  const char* kTrace =
      "0,3,40000,0\n"
      "3,0,25000,0.0002\n"
      "1,3,10000,0.0001\n"
      "2,0,60000,0\n";
  uint64_t fingerprints[2];
  int i = 0;
  for (KernelType kernel : {KernelType::kSequential, KernelType::kUnison}) {
    auto net = SmallNet(kernel);
    std::istringstream csv(kTrace);
    ASSERT_TRUE(InstallFlowsFromCsv(*net, csv).error.empty());
    net->Run(Time::Seconds(1));
    EXPECT_EQ(net->flow_monitor().Summarize().completed, 4u);
    fingerprints[i++] = net->flow_monitor().Fingerprint();
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

}  // namespace
}  // namespace unison
