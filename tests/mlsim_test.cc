// Data-driven surrogates: the cost/accuracy models used by the Fig. 8a and
// Table 2 comparisons.
#include <gtest/gtest.h>

#include "src/mlsim/surrogates.h"

namespace unison {
namespace {

TEST(DeepQueueNetSurrogate, InferenceScalesWithPacketsAndDevices) {
  DqnConfig cfg;
  cfg.per_packet_inference_us = 100;
  cfg.setup_s = 10;
  cfg.devices = 1;
  DeepQueueNetSurrogate one(cfg);
  cfg.devices = 2;
  DeepQueueNetSurrogate two(cfg);

  EXPECT_DOUBLE_EQ(one.InferenceSeconds(0), 10.0);
  EXPECT_DOUBLE_EQ(one.InferenceSeconds(1000000), 10.0 + 100.0);
  EXPECT_DOUBLE_EQ(two.InferenceSeconds(1000000), 10.0 + 50.0);
  EXPECT_GT(one.TrainingSeconds(1), 3600.0);
}

FlowRecord MakeFlow(uint32_t id, uint64_t bytes, double fct_ms, double rtt_ms) {
  FlowRecord f;
  f.id = id;
  f.bytes = bytes;
  f.completed = true;
  f.fct = Time::Seconds(fct_ms / 1e3);
  f.rtt_samples = 1;
  f.rtt_sum = Time::Seconds(rtt_ms / 1e3);
  f.rx_bytes = bytes;
  return f;
}

TEST(MimicNetSurrogate, PredictsTrainedConditionsWell) {
  // Training: small flows finish in 1ms, big flows in 100ms.
  std::vector<FlowRecord> train;
  for (uint32_t i = 0; i < 50; ++i) {
    train.push_back(MakeFlow(i, 10000, 1.0, 0.5));
    train.push_back(MakeFlow(100 + i, 1000000, 100.0, 0.5));
  }
  MimicNetSurrogate mimic;
  mimic.Train(train);
  ASSERT_TRUE(mimic.trained());

  // Target drawn from the same mix: prediction should land near the truth.
  std::vector<FlowRecord> target;
  for (uint32_t i = 0; i < 40; ++i) {
    target.push_back(MakeFlow(i, 10000, 0, 0));
    target.push_back(MakeFlow(50 + i, 1000000, 0, 0));
  }
  Rng rng(77, 0);
  const MimicPrediction p = mimic.Predict(target, rng);
  EXPECT_NEAR(p.mean_fct_ms, (1.0 + 100.0) / 2, 5.0);
  EXPECT_NEAR(p.mean_rtt_ms, 0.5, 0.01);
}

TEST(MimicNetSurrogate, MissesUntrainedCongestion) {
  // Trained on an uncongested cluster (fast FCTs); the target actually
  // suffers incast (true FCT 10x). The mimic still predicts training-like
  // FCTs — the systematic under-prediction Table 2 shows for 4 clusters.
  std::vector<FlowRecord> train;
  for (uint32_t i = 0; i < 100; ++i) {
    train.push_back(MakeFlow(i, 50000, 2.0, 0.4));
  }
  MimicNetSurrogate mimic;
  mimic.Train(train);

  std::vector<FlowRecord> target;
  for (uint32_t i = 0; i < 100; ++i) {
    target.push_back(MakeFlow(i, 50000, 20.0, 4.0));  // True values (unused).
  }
  Rng rng(78, 0);
  const MimicPrediction p = mimic.Predict(target, rng);
  EXPECT_NEAR(p.mean_fct_ms, 2.0, 0.5);  // Predicts the trained world.
  const double true_fct = 20.0;
  EXPECT_GT(std::abs(p.mean_fct_ms - true_fct) / true_fct, 0.5);  // >50% error.
}

TEST(MimicNetSurrogate, FallsBackToNearestBucket) {
  std::vector<FlowRecord> train;
  for (uint32_t i = 0; i < 10; ++i) {
    train.push_back(MakeFlow(i, 1 << 14, 3.0, 1.0));
  }
  MimicNetSurrogate mimic;
  mimic.Train(train);
  // Target sizes far outside the trained bucket still get a prediction.
  std::vector<FlowRecord> target = {MakeFlow(0, 1 << 4, 0, 0),
                                    MakeFlow(1, 1 << 26, 0, 0)};
  Rng rng(79, 0);
  const MimicPrediction p = mimic.Predict(target, rng);
  EXPECT_NEAR(p.mean_fct_ms, 3.0, 1e-9);
}

}  // namespace
}  // namespace unison
