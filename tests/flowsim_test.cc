// Flow-level (max-min fluid) simulator: fairness properties and agreement
// with packet-level DES on workloads where the fluid assumptions hold.
#include <gtest/gtest.h>

#include "src/flowsim/flow_level.h"
#include "src/net/app.h"
#include "src/net/network.h"

namespace unison {
namespace {

TEST(MaxMin, SingleBottleneckSharedEqually) {
  // Three flows over one link of 9: each gets 3.
  const std::vector<std::vector<uint32_t>> paths = {{0}, {0}, {0}};
  const auto rates = FlowLevelSimulator::MaxMinRates(paths, {9.0});
  EXPECT_DOUBLE_EQ(rates[0], 3.0);
  EXPECT_DOUBLE_EQ(rates[1], 3.0);
  EXPECT_DOUBLE_EQ(rates[2], 3.0);
}

TEST(MaxMin, ClassicTwoLinkExample) {
  // Links: A (cap 10), B (cap 4). Flow 0 uses A+B, flow 1 uses A, flow 2
  // uses B. Max-min: B's fair share 2 fixes flows 0 and 2 at 2; flow 1 then
  // gets the rest of A: 8.
  const std::vector<std::vector<uint32_t>> paths = {{0, 1}, {0}, {1}};
  const auto rates = FlowLevelSimulator::MaxMinRates(paths, {10.0, 4.0});
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
  EXPECT_DOUBLE_EQ(rates[2], 2.0);
}

TEST(MaxMin, NoLinkOversubscribed) {
  Rng rng(41, 0);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t links = 3 + rng.NextU64Below(5);
    std::vector<double> cap(links);
    for (auto& c : cap) {
      c = 1.0 + static_cast<double>(rng.NextU64Below(100));
    }
    std::vector<std::vector<uint32_t>> paths(4 + rng.NextU64Below(8));
    for (auto& p : paths) {
      const size_t hops = 1 + rng.NextU64Below(links);
      for (size_t h = 0; h < hops; ++h) {
        p.push_back(static_cast<uint32_t>(rng.NextU64Below(links)));
      }
    }
    const auto rates = FlowLevelSimulator::MaxMinRates(paths, cap);
    std::vector<double> used(links, 0);
    for (size_t f = 0; f < paths.size(); ++f) {
      EXPECT_GT(rates[f], 0.0);
      for (uint32_t l : paths[f]) {
        used[l] += rates[f];
      }
    }
    for (size_t l = 0; l < links; ++l) {
      EXPECT_LE(used[l], cap[l] * (1 + 1e-9)) << "link " << l;
    }
  }
}

TEST(FlowLevel, MatchesAnalyticSingleLink) {
  SimConfig cfg;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.AddLink(a, b, 100000000ULL, Time::Microseconds(10));
  net.Finalize();
  FlowLevelSimulator fluid(net);
  // Two simultaneous 1MB flows on a 100Mb link: each at 50Mb until both end
  // at 2 * 8e6/1e8... they share: each 1MB at 50Mbps -> 0.16s.
  std::vector<FluidFlow> flows = {{a, b, 1000000, Time::Zero()},
                                  {a, b, 1000000, Time::Zero()}};
  const auto res = fluid.Run(flows, Time::Seconds(10));
  ASSERT_TRUE(res[0].completed);
  ASSERT_TRUE(res[1].completed);
  EXPECT_NEAR(res[0].fct.ToSeconds(), 0.16, 1e-6);
  EXPECT_NEAR(res[1].fct.ToSeconds(), 0.16, 1e-6);
}

TEST(FlowLevel, StaggeredArrivalSpeedsUpSurvivor) {
  SimConfig cfg;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.AddLink(a, b, 100000000ULL, Time::Microseconds(10));
  net.Finalize();
  FlowLevelSimulator fluid(net);
  // Each flow is 80Mb on a 100Mb link; flow 1 arrives at t=0.04.
  std::vector<FluidFlow> flows = {{a, b, 10000000, Time::Zero()},
                                  {a, b, 10000000, Time::Seconds(0.04)}};
  const auto res = fluid.Run(flows, Time::Seconds(10));
  // Flow 0: 4Mb alone, then 76Mb at 50Mbps -> FCT 0.04 + 1.52 = 1.56s.
  EXPECT_NEAR(res[0].fct.ToSeconds(), 1.56, 1e-6);
  // Flow 1: 76Mb shared (1.52s), final 4Mb alone at 100Mb (0.04s) -> 1.56s.
  EXPECT_NEAR(res[1].fct.ToSeconds(), 1.56, 1e-6);
  // The late arrival still finishes later in absolute time.
  EXPECT_LT(flows[0].start + res[0].fct, flows[1].start + res[1].fct);
}

TEST(FlowLevel, HorizonLeavesSlowFlowsIncomplete) {
  SimConfig cfg;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.AddLink(a, b, 1000000ULL, Time::Microseconds(10));
  net.Finalize();
  FlowLevelSimulator fluid(net);
  std::vector<FluidFlow> flows = {{a, b, 10000000, Time::Zero()}};  // 80s needed.
  const auto res = fluid.Run(flows, Time::Seconds(1));
  EXPECT_FALSE(res[0].completed);
}

TEST(FlowLevel, TracksPacketLevelForLongFlows) {
  // Long flows on a shared bottleneck: the fluid estimate should land within
  // ~25% of full packet-level DES when the transport sustains utilization
  // (DCTCP; NewReno's loss recovery would blur it much further — that gap is
  // exactly why the paper's community keeps packet-level DES as ground
  // truth).
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  cfg.tcp.min_rto = Time::Milliseconds(2);
  cfg.tcp.initial_rto = Time::Milliseconds(2);
  cfg.tcp.dctcp = true;
  cfg.queue.kind = QueueConfig::Kind::kDctcp;
  cfg.queue.red_min_th = 65 * 1500;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const NodeId m = net.AddNode();
  net.AddLink(a, m, 1000000000ULL, Time::Microseconds(20));
  net.AddLink(b, m, 1000000000ULL, Time::Microseconds(20));
  const NodeId d = net.AddNode();
  net.AddLink(m, d, 1000000000ULL, Time::Microseconds(20));
  net.Finalize();

  std::vector<FluidFlow> flows = {{a, d, 20000000, Time::Zero()},
                                  {b, d, 20000000, Time::Zero()}};
  FlowLevelSimulator fluid(net);
  const auto est = fluid.Run(flows, Time::Seconds(10));

  for (const FluidFlow& f : flows) {
    InstallFlow(net, FlowSpec{f.src, f.dst, f.bytes, f.start, {}});
  }
  net.Run(Time::Seconds(10));

  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowRecord& real = net.flow_monitor().flow(static_cast<uint32_t>(i));
    ASSERT_TRUE(real.completed);
    ASSERT_TRUE(est[i].completed);
    EXPECT_NEAR(est[i].fct.ToSeconds() / real.fct.ToSeconds(), 1.0, 0.25) << i;
  }
}

}  // namespace
}  // namespace unison
