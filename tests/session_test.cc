// Windowed sessions: Finalize() yields a warm session on which Run(stop) is
// called repeatedly. The load-bearing invariant — K windowed runs are
// bit-identical to one monolithic run to the same stop time, for every
// kernel — plus the zero-respawn guarantee, RunResult/RunReason semantics,
// session accumulators, per-window trace segments, incremental traffic
// injection, and KernelConfig validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "src/kernel/engine/executor_pool.h"
#include "tests/test_util.h"

namespace unison {
namespace {

struct KernelCase {
  const char* name;
  KernelConfig config;
  PartitionMode partition;
};

std::vector<KernelCase> AllKernels() {
  std::vector<KernelCase> cases;
  {
    KernelConfig k;
    k.type = KernelType::kSequential;
    cases.push_back({"sequential", k, PartitionMode::kSingle});
  }
  {
    KernelConfig k;
    k.type = KernelType::kBarrier;
    k.deterministic = true;
    cases.push_back({"barrier", k, PartitionMode::kManual});
  }
  {
    KernelConfig k;
    k.type = KernelType::kNullMessage;
    k.deterministic = true;
    cases.push_back({"nullmsg", k, PartitionMode::kManual});
  }
  {
    KernelConfig k;
    k.type = KernelType::kUnison;
    k.threads = 2;
    cases.push_back({"unison", k, PartitionMode::kAuto});
  }
  {
    KernelConfig k;
    k.type = KernelType::kHybrid;
    k.ranks = 2;
    k.threads = 2;
    cases.push_back({"hybrid", k, PartitionMode::kAuto});
  }
  return cases;
}

class SessionWindowEquivalence
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

// The tentpole invariant: splitting one run into K windows changes nothing —
// same flow-monitor fingerprint, same flow summary, same total event count.
TEST_P(SessionWindowEquivalence, WindowedMatchesMonolithic) {
  const int kernel_index = std::get<0>(GetParam());
  const uint32_t windows = std::get<1>(GetParam());
  const KernelCase kc = AllKernels()[kernel_index];
  SCOPED_TRACE(std::string(kc.name) + " x " + std::to_string(windows));

  const RunOutcome mono = RunFatTreeScenario(kc.config, kc.partition);
  uint64_t spawned_between = 0;
  const RunOutcome windowed = RunFatTreeScenarioWindowed(
      kc.config, kc.partition, windows, 4, 10, 5, 1, &spawned_between);

  EXPECT_EQ(windowed.fingerprint, mono.fingerprint);
  EXPECT_EQ(windowed.events, mono.events);
  EXPECT_EQ(windowed.summary.completed, mono.summary.completed);
  EXPECT_EQ(windowed.lps, mono.lps);
  // Satellite: the pool's threads park between windows — zero respawns after
  // the first window, for every kernel.
  EXPECT_EQ(spawned_between, 0u);
}

std::string SessionCaseName(
    const ::testing::TestParamInfo<std::tuple<int, uint32_t>>& info) {
  static const char* const names[5] = {"sequential", "barrier", "nullmsg",
                                       "unison", "hybrid"};
  return std::string(names[std::get<0>(info.param)]) + "_w" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllSplits, SessionWindowEquivalence,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1u, 2u, 5u)),
    SessionCaseName);

// RunResult semantics: a window that stops with work pending reports
// kWindowReached; once the workload drains, kExhausted; session accumulators
// sum the per-window results.
TEST(SessionResult, ReasonsAndAccumulators) {
  for (const KernelCase& kc : AllKernels()) {
    SCOPED_TRACE(kc.name);
    SimConfig cfg;
    cfg.kernel = kc.config;
    cfg.partition = kc.partition;
    Network net(cfg);
    FatTreeTopo topo =
        BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
    if (kc.partition == PartitionMode::kManual) {
      net.SetManualPartition(4, FatTreePodPartition(topo, net.num_nodes()));
    }
    net.Finalize();
    GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());

    const RunResult first = net.Run(Time::Microseconds(100));
    EXPECT_EQ(first.reason, RunReason::kWindowReached);
    EXPECT_EQ(first.end, Time::Microseconds(100));
    EXPECT_GT(first.events, 0u);
    EXPECT_EQ(net.session_time(), Time::Microseconds(100));
    EXPECT_EQ(net.kernel().session_windows(), 1u);
    EXPECT_EQ(net.kernel().session_events(), first.events);

    const RunResult second = net.Run(Time::Milliseconds(1));
    EXPECT_NE(second.reason, RunReason::kStopRequested);
    EXPECT_GT(second.events, 0u);
    EXPECT_EQ(net.session_time(), Time::Milliseconds(1));
    EXPECT_EQ(net.kernel().session_windows(), 2u);
    EXPECT_EQ(net.kernel().session_events(), first.events + second.events);
    EXPECT_EQ(net.kernel().session_rounds(), first.rounds + second.rounds);

    // Genuine exhaustion — a horizon outliving every flow and timer — is
    // asserted on the sequential kernel only: retransmission-timer tails
    // stretch for simulated seconds, cheap to drain event-by-event but a
    // round-per-timestamp grind for the barrier-phase kernels. (engine_test
    // covers kExhausted for every parallel kernel on a small scenario.)
    if (kc.config.type == KernelType::kSequential) {
      const RunResult last = net.Run(Time::Seconds(60));
      EXPECT_EQ(last.reason, RunReason::kExhausted);
      EXPECT_EQ(net.kernel().session_windows(), 3u);
      EXPECT_EQ(net.kernel().session_events(),
                first.events + second.events + last.events);
    }
  }
}

// A stop request ends one window without poisoning the session: the next
// Run() continues, and the final state matches an uninterrupted session.
TEST(SessionResult, StopRequestEndsWindowNotSession) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  SimConfig cfg;
  cfg.kernel = k;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());
  net.sim().ScheduleGlobal(Time::Microseconds(50), [&net] { net.sim().Stop(); });

  const RunResult stopped = net.Run(Time::Milliseconds(5));
  EXPECT_EQ(stopped.reason, RunReason::kStopRequested);
  // The aborted window does not advance the session clock.
  EXPECT_EQ(net.session_time(), Time::Zero());

  const RunResult resumed = net.Run(Time::Milliseconds(5));
  EXPECT_NE(resumed.reason, RunReason::kStopRequested);
  EXPECT_EQ(net.session_time(), Time::Milliseconds(5));
  EXPECT_GT(resumed.events, 0u);
  EXPECT_EQ(net.kernel().session_windows(), 2u);
}

// Trace segments: one archived segment per window, cumulative sums, and the
// CSV covering every window.
TEST(SessionTrace, SegmentsPerWindowAndCumulative) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  SimConfig cfg;
  cfg.kernel = k;
  cfg.trace = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());

  // Boundaries inside the active phase of the workload, so both windows
  // execute rounds.
  const RunResult w0 = net.Run(Time::Microseconds(100));
  const RunResult w1 = net.Run(Time::Microseconds(200));

  const RunTrace& trace = net.run_trace();
  ASSERT_EQ(trace.segments().size(), 2u);
  EXPECT_EQ(trace.segments()[0].summary.window_index, 0u);
  EXPECT_EQ(trace.segments()[0].summary.events, w0.events);
  EXPECT_EQ(trace.segments()[0].summary.window_stop_ps,
            Time::Microseconds(100).ps());
  EXPECT_EQ(trace.segments()[1].summary.window_index, 1u);
  EXPECT_EQ(trace.segments()[1].summary.events, w1.events);
  EXPECT_EQ(trace.segments()[1].summary.window_start_ps,
            Time::Microseconds(100).ps());
  EXPECT_EQ(trace.segments()[0].summary.reason, "window");
  EXPECT_FALSE(trace.segments()[0].records.empty());
  EXPECT_FALSE(trace.segments()[1].records.empty());

  const RunSummary total = trace.Cumulative();
  EXPECT_EQ(total.events, w0.events + w1.events);
  EXPECT_EQ(total.rounds, w0.rounds + w1.rounds);
  EXPECT_EQ(total.window_start_ps, 0);
  EXPECT_EQ(total.window_stop_ps, Time::Microseconds(200).ps());

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"windows\":2"), std::string::npos);
  EXPECT_NE(json.find("\"segments\":[{"), std::string::npos);

  // The CSV carries rows for both windows.
  const std::string csv = trace.ToCsv();
  EXPECT_NE(csv.find("\n0,"), std::string::npos);
  EXPECT_NE(csv.find("\n1,"), std::string::npos);

  // A fresh Setup starts a fresh session: segments reset.
  net.kernel().Setup(net.graph(), net.partition());
  EXPECT_TRUE(net.run_trace().segments().empty());
  EXPECT_EQ(net.kernel().session_windows(), 0u);
}

// Incremental injection: flows added between windows re-anchor at the
// session time, and the result matches a monolithic run whose extra flows
// were installed up front at the same absolute time.
TEST(SessionInjection, MidSessionTrafficMatchesUpFrontInstall) {
  auto config = [] {
    SimConfig cfg;
    cfg.kernel.type = KernelType::kUnison;
    cfg.kernel.threads = 2;
    cfg.seed = 3;
    return cfg;
  };
  auto build = [](Network& net) {
    FatTreeTopo topo =
        BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
    net.Finalize();
    GeneratePermutation(net, topo.hosts, 100 * 1024, Time::Zero());
    return topo;
  };
  auto burst = [](const FatTreeTopo& topo) {
    TrafficSpec spec;
    spec.hosts = topo.hosts;
    spec.bisection_bps = topo.bisection_bps;
    spec.load = 0.5;  // Dense enough that the 3ms window surely draws flows.
    spec.duration = Time::Milliseconds(3);
    spec.rng_stream = 700;
    return spec;
  };

  SimConfig cfg = config();
  Network windowed(cfg);
  const FatTreeTopo wt = build(windowed);
  windowed.Run(Time::Milliseconds(2));
  const GeneratedTraffic injected = InjectTraffic(windowed, burst(wt));
  ASSERT_FALSE(injected.flow_ids.empty());
  windowed.Run(Time::Milliseconds(8));

  Network mono(config());
  const FatTreeTopo mt = build(mono);
  TrafficSpec up_front = burst(mt);
  up_front.start = Time::Milliseconds(2);  // Same absolute arrival window.
  const GeneratedTraffic installed = GenerateTraffic(mono, up_front);
  ASSERT_EQ(installed.flow_ids.size(), injected.flow_ids.size());
  ASSERT_EQ(installed.total_bytes, injected.total_bytes);
  mono.Run(Time::Milliseconds(8));

  EXPECT_EQ(windowed.flow_monitor().Fingerprint(),
            mono.flow_monitor().Fingerprint());
  EXPECT_EQ(windowed.kernel().session_events(),
            mono.kernel().session_events());
}

// Satellite: KernelConfig::Validate rejects nonsense with a clear message.
TEST(KernelConfigValidate, RejectsBadConfigs) {
  KernelConfig ok;
  ok.type = KernelType::kUnison;
  ok.threads = 4;
  EXPECT_TRUE(ok.Validate().empty());

  KernelConfig zero_threads = ok;
  zero_threads.threads = 0;
  EXPECT_NE(zero_threads.Validate().find("threads"), std::string::npos);

  KernelConfig bad_ranks;
  bad_ranks.type = KernelType::kHybrid;
  bad_ranks.ranks = 0;
  EXPECT_NE(bad_ranks.Validate().find("ranks"), std::string::npos);

  KernelConfig huge_period = ok;
  huge_period.sched_period = KernelConfig::kMaxSchedPeriod + 1;
  EXPECT_NE(huge_period.Validate().find("sched_period"), std::string::npos);

  // The boundary value is accepted.
  KernelConfig max_period = ok;
  max_period.sched_period = KernelConfig::kMaxSchedPeriod;
  EXPECT_TRUE(max_period.Validate().empty());
}

}  // namespace
}  // namespace unison
