// Windowed sessions: Finalize() yields a warm session on which Run(stop) is
// called repeatedly. The load-bearing invariant — K windowed runs are
// bit-identical to one monolithic run to the same stop time, for every
// kernel — plus the zero-respawn guarantee, RunResult/RunReason semantics,
// session accumulators, per-window trace segments, incremental traffic
// injection, and KernelConfig validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "src/kernel/engine/executor_pool.h"
#include "src/net/session.h"
#include "tests/test_util.h"

namespace unison {
namespace {

struct KernelCase {
  const char* name;
  KernelConfig config;
  PartitionMode partition;
};

std::vector<KernelCase> AllKernels() {
  std::vector<KernelCase> cases;
  {
    KernelConfig k;
    k.type = KernelType::kSequential;
    cases.push_back({"sequential", k, PartitionMode::kSingle});
  }
  {
    KernelConfig k;
    k.type = KernelType::kBarrier;
    k.deterministic = true;
    cases.push_back({"barrier", k, PartitionMode::kManual});
  }
  {
    KernelConfig k;
    k.type = KernelType::kNullMessage;
    k.deterministic = true;
    cases.push_back({"nullmsg", k, PartitionMode::kManual});
  }
  {
    KernelConfig k;
    k.type = KernelType::kUnison;
    k.threads = 2;
    cases.push_back({"unison", k, PartitionMode::kAuto});
  }
  {
    KernelConfig k;
    k.type = KernelType::kHybrid;
    k.ranks = 2;
    k.threads = 2;
    cases.push_back({"hybrid", k, PartitionMode::kAuto});
  }
  return cases;
}

class SessionWindowEquivalence
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

// The tentpole invariant: splitting one run into K windows changes nothing —
// same flow-monitor fingerprint, same flow summary, same total event count.
TEST_P(SessionWindowEquivalence, WindowedMatchesMonolithic) {
  const int kernel_index = std::get<0>(GetParam());
  const uint32_t windows = std::get<1>(GetParam());
  const KernelCase kc = AllKernels()[kernel_index];
  SCOPED_TRACE(std::string(kc.name) + " x " + std::to_string(windows));

  const RunOutcome mono = RunFatTreeScenario(kc.config, kc.partition);
  uint64_t spawned_between = 0;
  const RunOutcome windowed = RunFatTreeScenarioWindowed(
      kc.config, kc.partition, windows, 4, 10, 5, 1, &spawned_between);

  EXPECT_EQ(windowed.fingerprint, mono.fingerprint);
  EXPECT_EQ(windowed.events, mono.events);
  EXPECT_EQ(windowed.summary.completed, mono.summary.completed);
  EXPECT_EQ(windowed.lps, mono.lps);
  // Satellite: the pool's threads park between windows — zero respawns after
  // the first window, for every kernel.
  EXPECT_EQ(spawned_between, 0u);
}

std::string SessionCaseName(
    const ::testing::TestParamInfo<std::tuple<int, uint32_t>>& info) {
  static const char* const names[5] = {"sequential", "barrier", "nullmsg",
                                       "unison", "hybrid"};
  return std::string(names[std::get<0>(info.param)]) + "_w" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllSplits, SessionWindowEquivalence,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1u, 2u, 5u)),
    SessionCaseName);

// RunResult semantics: a window that stops with work pending reports
// kWindowReached; once the workload drains, kExhausted; session accumulators
// sum the per-window results.
TEST(SessionResult, ReasonsAndAccumulators) {
  for (const KernelCase& kc : AllKernels()) {
    SCOPED_TRACE(kc.name);
    SimConfig cfg;
    cfg.kernel = kc.config;
    cfg.partition = kc.partition;
    Network net(cfg);
    FatTreeTopo topo =
        BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
    if (kc.partition == PartitionMode::kManual) {
      net.SetManualPartition(4, FatTreePodPartition(topo, net.num_nodes()));
    }
    net.Finalize();
    GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());

    const RunResult first = net.Run(Time::Microseconds(100));
    EXPECT_EQ(first.reason, RunReason::kWindowReached);
    EXPECT_EQ(first.end, Time::Microseconds(100));
    EXPECT_GT(first.events, 0u);
    EXPECT_EQ(net.session_time(), Time::Microseconds(100));
    EXPECT_EQ(net.kernel().session_windows(), 1u);
    EXPECT_EQ(net.kernel().session_events(), first.events);

    const RunResult second = net.Run(Time::Milliseconds(1));
    EXPECT_NE(second.reason, RunReason::kStopRequested);
    EXPECT_GT(second.events, 0u);
    EXPECT_EQ(net.session_time(), Time::Milliseconds(1));
    EXPECT_EQ(net.kernel().session_windows(), 2u);
    EXPECT_EQ(net.kernel().session_events(), first.events + second.events);
    EXPECT_EQ(net.kernel().session_rounds(), first.rounds + second.rounds);

    // Genuine exhaustion — a horizon outliving every flow and timer — is
    // asserted on the sequential kernel only: retransmission-timer tails
    // stretch for simulated seconds, cheap to drain event-by-event but a
    // round-per-timestamp grind for the barrier-phase kernels. (engine_test
    // covers kExhausted for every parallel kernel on a small scenario.)
    if (kc.config.type == KernelType::kSequential) {
      const RunResult last = net.Run(Time::Seconds(60));
      EXPECT_EQ(last.reason, RunReason::kExhausted);
      EXPECT_EQ(net.kernel().session_windows(), 3u);
      EXPECT_EQ(net.kernel().session_events(),
                first.events + second.events + last.events);
    }
  }
}

// A stop request ends one window without poisoning the session: the next
// Run() continues, and the final state matches an uninterrupted session.
TEST(SessionResult, StopRequestEndsWindowNotSession) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  SimConfig cfg;
  cfg.kernel = k;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());
  net.sim().ScheduleGlobal(Time::Microseconds(50), [&net] { net.sim().Stop(); });

  const RunResult stopped = net.Run(Time::Milliseconds(5));
  EXPECT_EQ(stopped.reason, RunReason::kStopRequested);
  // The aborted window does not advance the session clock.
  EXPECT_EQ(net.session_time(), Time::Zero());

  const RunResult resumed = net.Run(Time::Milliseconds(5));
  EXPECT_NE(resumed.reason, RunReason::kStopRequested);
  EXPECT_EQ(net.session_time(), Time::Milliseconds(5));
  EXPECT_GT(resumed.events, 0u);
  EXPECT_EQ(net.kernel().session_windows(), 2u);
}

// Trace segments: one archived segment per window, cumulative sums, and the
// CSV covering every window.
TEST(SessionTrace, SegmentsPerWindowAndCumulative) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  SimConfig cfg;
  cfg.kernel = k;
  cfg.trace = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());

  // Boundaries inside the active phase of the workload, so both windows
  // execute rounds.
  const RunResult w0 = net.Run(Time::Microseconds(100));
  const RunResult w1 = net.Run(Time::Microseconds(200));

  const RunTrace& trace = net.run_trace();
  ASSERT_EQ(trace.segments().size(), 2u);
  EXPECT_EQ(trace.segments()[0].summary.window_index, 0u);
  EXPECT_EQ(trace.segments()[0].summary.events, w0.events);
  EXPECT_EQ(trace.segments()[0].summary.window_stop_ps,
            Time::Microseconds(100).ps());
  EXPECT_EQ(trace.segments()[1].summary.window_index, 1u);
  EXPECT_EQ(trace.segments()[1].summary.events, w1.events);
  EXPECT_EQ(trace.segments()[1].summary.window_start_ps,
            Time::Microseconds(100).ps());
  EXPECT_EQ(trace.segments()[0].summary.reason, "window");
  EXPECT_FALSE(trace.segments()[0].records.empty());
  EXPECT_FALSE(trace.segments()[1].records.empty());

  const RunSummary total = trace.Cumulative();
  EXPECT_EQ(total.events, w0.events + w1.events);
  EXPECT_EQ(total.rounds, w0.rounds + w1.rounds);
  EXPECT_EQ(total.window_start_ps, 0);
  EXPECT_EQ(total.window_stop_ps, Time::Microseconds(200).ps());

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"windows\":2"), std::string::npos);
  EXPECT_NE(json.find("\"segments\":[{"), std::string::npos);

  // The CSV carries rows for both windows.
  const std::string csv = trace.ToCsv();
  EXPECT_NE(csv.find("\n0,"), std::string::npos);
  EXPECT_NE(csv.find("\n1,"), std::string::npos);

  // A fresh Setup starts a fresh session: segments reset.
  net.kernel().Setup(net.graph(), net.partition());
  EXPECT_TRUE(net.run_trace().segments().empty());
  EXPECT_EQ(net.kernel().session_windows(), 0u);
}

// Incremental injection: flows added between windows re-anchor at the
// session time, and the result matches a monolithic run whose extra flows
// were installed up front at the same absolute time.
TEST(SessionInjection, MidSessionTrafficMatchesUpFrontInstall) {
  auto config = [] {
    SimConfig cfg;
    cfg.kernel.type = KernelType::kUnison;
    cfg.kernel.threads = 2;
    cfg.seed = 3;
    return cfg;
  };
  auto build = [](Network& net) {
    FatTreeTopo topo =
        BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
    net.Finalize();
    GeneratePermutation(net, topo.hosts, 100 * 1024, Time::Zero());
    return topo;
  };
  auto burst = [](const FatTreeTopo& topo) {
    TrafficSpec spec;
    spec.hosts = topo.hosts;
    spec.bisection_bps = topo.bisection_bps;
    spec.load = 0.5;  // Dense enough that the 3ms window surely draws flows.
    spec.duration = Time::Milliseconds(3);
    spec.rng_stream = 700;
    return spec;
  };

  SimConfig cfg = config();
  Network windowed(cfg);
  const FatTreeTopo wt = build(windowed);
  windowed.Run(Time::Milliseconds(2));
  const GeneratedTraffic injected = InjectTraffic(windowed, burst(wt));
  ASSERT_FALSE(injected.flow_ids.empty());
  windowed.Run(Time::Milliseconds(8));

  Network mono(config());
  const FatTreeTopo mt = build(mono);
  TrafficSpec up_front = burst(mt);
  up_front.start = Time::Milliseconds(2);  // Same absolute arrival window.
  const GeneratedTraffic installed = GenerateTraffic(mono, up_front);
  ASSERT_EQ(installed.flow_ids.size(), injected.flow_ids.size());
  ASSERT_EQ(installed.total_bytes, injected.total_bytes);
  mono.Run(Time::Milliseconds(8));

  EXPECT_EQ(windowed.flow_monitor().Fingerprint(),
            mono.flow_monitor().Fingerprint());
  EXPECT_EQ(windowed.kernel().session_events(),
            mono.kernel().session_events());
}

// --- Snapshot/Fork ---

class ForkTransparency
    : public ::testing::TestWithParam<std::tuple<int, uint32_t, int>> {};

// The fork-transparency contract: Snapshot after k warm windows + Fork + Run
// to T is bit-identical to one monolithic run to T — FlowMonitor
// fingerprint, completion counts, and the session event accumulator — for
// every kernel and fork count. Forks borrow the parent's warm pool, so the
// whole sweep spawns zero new OS threads; and the snapshot itself is
// execution-neutral, so the parent still converges to the same state.
TEST_P(ForkTransparency, ForkedRunMatchesMonolithic) {
  const int kernel_index = std::get<0>(GetParam());
  const uint32_t snap_ms = std::get<1>(GetParam());
  const int forks = std::get<2>(GetParam());
  const KernelCase kc = AllKernels()[kernel_index];
  SCOPED_TRACE(std::string(kc.name) + " snap@" + std::to_string(snap_ms) +
               "ms x" + std::to_string(forks));

  const RunOutcome mono =
      RunFatTreeScenarioStreaming(kc.config, kc.partition, 1);

  FatTreeScenario parent =
      BuildFatTreeScenarioStreaming(kc.config, kc.partition);
  for (uint32_t w = 1; w <= snap_ms; ++w) {
    parent.net->Run(Time::Milliseconds(w));
  }
  Session session(parent.net.get());
  const SessionSnapshot snap = session.Snapshot();
  EXPECT_GT(snap.size_bytes(), 0u);

  const uint64_t spawned_before = ExecutorPool::TotalThreadsSpawned();
  for (int f = 0; f < forks; ++f) {
    std::unique_ptr<Network> branch = session.Fork(snap);
    branch->Run(Time::Milliseconds(5));
    EXPECT_EQ(branch->flow_monitor().Fingerprint(), mono.fingerprint);
    EXPECT_EQ(branch->kernel().session_events(), mono.events);
    EXPECT_EQ(branch->flow_monitor().Summarize().completed,
              mono.summary.completed);
    EXPECT_EQ(branch->kernel().num_lps(), mono.lps);
    // Lineage: every branch RunSummary names the snapshot it grew from.
    const std::string& lineage = branch->kernel().run_summary().forked_from;
    EXPECT_EQ(lineage.rfind("snap-", 0), 0u) << lineage;
    EXPECT_NE(lineage.find("@w" + std::to_string(snap_ms)), std::string::npos)
        << lineage;
  }
  EXPECT_EQ(ExecutorPool::TotalThreadsSpawned() - spawned_before, 0u);

  parent.net->Run(Time::Milliseconds(5));
  EXPECT_EQ(parent.net->flow_monitor().Fingerprint(), mono.fingerprint);
  EXPECT_EQ(parent.net->kernel().session_events(), mono.events);
  EXPECT_TRUE(parent.net->kernel().run_summary().forked_from.empty());
}

std::string ForkCaseName(
    const ::testing::TestParamInfo<std::tuple<int, uint32_t, int>>& info) {
  static const char* const names[5] = {"sequential", "barrier", "nullmsg",
                                       "unison", "hybrid"};
  return std::string(names[std::get<0>(info.param)]) + "_snap" +
         std::to_string(std::get<1>(info.param)) + "ms_x" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ForkTransparency,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(1u, 2u),
                                            ::testing::Values(1, 3)),
                         ForkCaseName);

// SaveTo/LoadFrom is the long-simulation resume format: the roundtrip is
// byte-exact, and a cold Restore in lieu of a warm Fork still satisfies the
// transparency contract.
TEST(SessionSnapshotIo, SaveLoadRoundtripAndColdRestore) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  const RunOutcome mono = RunFatTreeScenarioStreaming(k, PartitionMode::kAuto, 1);

  FatTreeScenario parent = BuildFatTreeScenarioStreaming(k, PartitionMode::kAuto);
  parent.net->Run(Time::Milliseconds(2));
  Session session(parent.net.get());
  const SessionSnapshot snap = session.Snapshot();

  const std::string path = ::testing::TempDir() + "unison_fork_test.usnp";
  snap.SaveTo(path);
  const SessionSnapshot loaded = SessionSnapshot::LoadFrom(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.bytes(), snap.bytes());
  EXPECT_EQ(loaded.Digest(), snap.Digest());

  std::unique_ptr<Network> resumed = Session::Restore(loaded);
  resumed->Run(Time::Milliseconds(5));
  EXPECT_EQ(resumed->flow_monitor().Fingerprint(), mono.fingerprint);
  EXPECT_EQ(resumed->kernel().session_events(), mono.events);
}

// Satellite: the injection-stream counter is session state. Sibling forks
// that inject the same spec draw the same derived rng stream — identical to
// each other and to the parent performing the same injection after the
// snapshot (transparency extends through the injection path).
TEST(SessionFork, SiblingForksDrawIdenticalInjections) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  FatTreeScenario parent = BuildFatTreeScenarioStreaming(k, PartitionMode::kAuto);

  auto burst = [&parent](uint64_t stream) {
    TrafficSpec spec;
    spec.hosts = parent.topo.hosts;
    spec.bisection_bps = parent.topo.bisection_bps;
    spec.load = 0.3;
    spec.duration = Time::Milliseconds(2);
    spec.rng_stream = stream;
    return spec;
  };

  parent.net->Run(Time::Milliseconds(1));
  const GeneratedTraffic first = InjectTraffic(*parent.net, burst(700));
  ASSERT_FALSE(first.flow_ids.empty());
  parent.net->Run(Time::Milliseconds(2));
  ASSERT_EQ(parent.net->injection_epoch(), 1u);

  Session session(parent.net.get());
  const SessionSnapshot snap = session.Snapshot();

  auto branch = [&session, &burst, &snap](bool inject) {
    std::unique_ptr<Network> fork = session.Fork(snap);
    EXPECT_EQ(fork->injection_epoch(), 1u);
    if (inject) {
      const GeneratedTraffic injected = InjectTraffic(*fork, burst(900));
      EXPECT_FALSE(injected.flow_ids.empty());
    }
    fork->Run(Time::Milliseconds(5));
    return fork->flow_monitor().Fingerprint();
  };
  const uint64_t sibling_a = branch(true);
  const uint64_t sibling_b = branch(true);
  const uint64_t no_inject = branch(false);
  EXPECT_EQ(sibling_a, sibling_b);
  EXPECT_NE(sibling_a, no_inject);

  InjectTraffic(*parent.net, burst(900));
  parent.net->Run(Time::Milliseconds(5));
  EXPECT_EQ(parent.net->flow_monitor().Fingerprint(), sibling_a);
}

// Divergence knobs: FailLink and ForkOptions::mutate_queue steer a branch
// away from the baseline, and equally-configured branches stay bit-identical
// to each other — the what-if sweep is deterministic per scenario.
// (Null-message is excluded: runtime global events like the link-down are
// outside that baseline's protocol, which session_test documents elsewhere.)
TEST(SessionFork, FailLinkAndQueueMutationDivergeDeterministically) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  // Load 0.5: enough post-snapshot traffic that every core link matters and
  // shallow queues actually drop.
  FatTreeScenario parent = BuildFatTreeScenarioStreaming(
      k, PartitionMode::kAuto, 4, 10, 5, 1, 0.5);
  parent.net->Run(Time::Milliseconds(2));
  Session session(parent.net.get());
  const SessionSnapshot snap = session.Snapshot();

  auto run_to_end = [](std::unique_ptr<Network> net) {
    net->Run(Time::Milliseconds(5));
    return net->flow_monitor().Fingerprint();
  };

  const uint64_t baseline = run_to_end(session.Fork(snap));

  const uint32_t victim = static_cast<uint32_t>(parent.net->links().size()) - 1;
  auto failed_branch = [&] {
    std::unique_ptr<Network> fork = session.Fork(snap);
    fork->FailLink(victim, Time::Microseconds(2200));
    return run_to_end(std::move(fork));
  };
  const uint64_t failed_a = failed_branch();
  const uint64_t failed_b = failed_branch();
  EXPECT_EQ(failed_a, failed_b);
  EXPECT_NE(failed_a, baseline);

  ForkOptions shallow;
  shallow.mutate_queue = [](QueueConfig& q) { q.capacity_bytes = 3000; };
  auto shallow_branch = [&] { return run_to_end(session.Fork(snap, shallow)); };
  const uint64_t shallow_a = shallow_branch();
  const uint64_t shallow_b = shallow_branch();
  EXPECT_EQ(shallow_a, shallow_b);
  EXPECT_NE(shallow_a, baseline);
}

// --- Live tuning plane ---

class ControllerTransparency : public ::testing::TestWithParam<int> {};

// The controller-transparency matrix: every kernel, tuning off vs an
// aggressive kAuto controller (react after a single round; treat every
// window with observable sync time as shrink-worthy), produces bit-identical
// fingerprints and digests. The controller only ever changes *how fast* the
// session runs — party counts, re-sort cadence, window slicing — all of
// which are results-neutral by the session invariants this file pins.
TEST_P(ControllerTransparency, TunedRunMatchesStaticRun) {
  const KernelCase kc = AllKernels()[GetParam()];
  SCOPED_TRACE(kc.name);

  SimConfig off;
  off.kernel = kc.config;
  off.partition = kc.partition;
  RunDigest off_digest;
  const RunOutcome off_out =
      RunFatTreeScenarioConfigured(off, 1, 4, 10, 5, &off_digest);

  SimConfig tuned = off;
  tuned.tuning = TuningMode::kAuto;
  tuned.tuning_config.min_rounds = 1;
  tuned.tuning_config.ps_low = 1.0;
  tuned.tuning_config.min_window_ps = 500'000'000;  // Floor at 0.5 ms.
  RunDigest tuned_digest;
  const RunOutcome tuned_out =
      RunFatTreeScenarioConfigured(tuned, 1, 4, 10, 5, &tuned_digest);

  EXPECT_EQ(tuned_out.fingerprint, off_out.fingerprint);
  EXPECT_EQ(tuned_out.events, off_out.events);
  EXPECT_EQ(tuned_out.summary.completed, off_out.summary.completed);
  EXPECT_EQ(tuned_out.lps, off_out.lps);
  EXPECT_TRUE(tuned_digest == off_digest);
}

std::string ControllerCaseName(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[5] = {"sequential", "barrier", "nullmsg",
                                       "unison", "hybrid"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ControllerTransparency,
                         ::testing::Range(0, 5), ControllerCaseName);

// Satellite: a snapshot no longer freezes the knobs. The tunable epoch and
// values ride in the USNP buffer, a fork resumes with the parent's learned
// settings, and parent and fork can then tune independently — while both
// still land bit-identical to the untouched run.
TEST(SessionFork, TuningStateSurvivesForkAndDivergesIndependently) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  const RunOutcome mono = RunFatTreeScenarioStreaming(k, PartitionMode::kAuto);

  FatTreeScenario parent = BuildFatTreeScenarioStreaming(k, PartitionMode::kAuto);
  parent.net->Run(Time::Milliseconds(1));

  // "Learn" something before the snapshot: one published epoch.
  Tunables learned = parent.net->tunable_store().Get();
  learned.sched_period = 3;
  parent.net->tunable_store().Publish(learned);

  Session session(parent.net.get());
  const SessionSnapshot snap = session.Snapshot();

  std::unique_ptr<Network> fork = session.Fork(snap);
  // The fork resumes with the parent's learned settings, not config defaults.
  EXPECT_EQ(fork->tunable_store().epoch(), 1u);
  EXPECT_EQ(fork->tunable_store().Get().sched_period, 3u);

  // Post-fork the two stores diverge independently.
  Tunables parent_next = parent.net->tunable_store().Get();
  parent_next.sched_period = 7;
  parent.net->tunable_store().Publish(parent_next);
  Tunables fork_next = fork->tunable_store().Get();
  fork_next.sched_period = 2;
  fork->tunable_store().Publish(fork_next);
  EXPECT_EQ(parent.net->tunable_store().Get().sched_period, 7u);
  EXPECT_EQ(fork->tunable_store().Get().sched_period, 2u);

  fork->Run(Time::Milliseconds(5));
  EXPECT_EQ(fork->kernel().window_tuning().epoch, 2u);
  EXPECT_EQ(fork->kernel().window_tuning().sched_period, 2u);
  EXPECT_EQ(fork->flow_monitor().Fingerprint(), mono.fingerprint);
  EXPECT_EQ(fork->kernel().session_events(), mono.events);

  parent.net->Run(Time::Milliseconds(5));
  EXPECT_EQ(parent.net->kernel().window_tuning().sched_period, 7u);
  EXPECT_EQ(parent.net->flow_monitor().Fingerprint(), mono.fingerprint);
  EXPECT_EQ(parent.net->kernel().session_events(), mono.events);
}

// --- Speculative window execution ---

// The kernels that opt into speculation (indices into AllKernels()): the
// round-engine kernels barrier, unison, hybrid. Sequential has no window to
// speculate past; null-message has no barrier round to extend.
constexpr int kSpecKernels[3] = {1, 3, 4};

class SpeculationTransparency
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

// The speculation-transparency matrix: every opt-in kernel, every window
// split, speculation=off vs =auto, produces bit-identical FlowMonitor
// fingerprints and full-state digests. Speculation only ever changes *when*
// events execute relative to the wall clock — a miss rolls the window back
// to the boundary checkpoint and re-runs conservatively, a hit commits
// rounds whose event order the npub cap and deterministic tie-breaking
// already pinned.
TEST_P(SpeculationTransparency, SpeculativeRunMatchesConservative) {
  const KernelCase kc = AllKernels()[kSpecKernels[std::get<0>(GetParam())]];
  const uint32_t windows = std::get<1>(GetParam());
  SCOPED_TRACE(std::string(kc.name) + " x " + std::to_string(windows));

  SimConfig off;
  off.kernel = kc.config;
  off.partition = kc.partition;
  RunDigest off_digest;
  const RunOutcome off_out =
      RunFatTreeScenarioConfigured(off, windows, 4, 10, 5, &off_digest);

  SimConfig spec = off;
  spec.speculation = SpeculationMode::kAuto;
  RunDigest spec_digest;
  const RunOutcome spec_out =
      RunFatTreeScenarioConfigured(spec, windows, 4, 10, 5, &spec_digest);

  EXPECT_EQ(spec_out.fingerprint, off_out.fingerprint);
  EXPECT_EQ(spec_out.events, off_out.events);
  EXPECT_EQ(spec_out.summary.completed, off_out.summary.completed);
  EXPECT_EQ(spec_out.lps, off_out.lps);
  EXPECT_TRUE(spec_digest == off_digest);
}

std::string SpecCaseName(
    const ::testing::TestParamInfo<std::tuple<int, uint32_t>>& info) {
  static const char* const names[3] = {"barrier", "unison", "hybrid"};
  return std::string(names[std::get<0>(info.param)]) + "_w" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    OptInKernels, SpeculationTransparency,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Values(1u, 2u, 5u)),
    SpecCaseName);

// Forced rollback: a horizon dwarfing the 3 us fat-tree lookahead drives the
// optimistic rounds far past the safe bound, so cross-LP arrivals land below
// already-advanced clocks — the window must detect the miss, restore the
// boundary checkpoint, re-run conservatively, and still land bit-identical
// to speculation=off.
TEST(SpeculationRollback, ForcedMissRollsBackAndStaysBitIdentical) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  SimConfig off;
  off.kernel = k;
  RunDigest off_digest;
  const RunOutcome off_out =
      RunFatTreeScenarioConfigured(off, 2, 4, 10, 5, &off_digest);

  SimConfig spec = off;
  spec.speculation = SpeculationMode::kAuto;
  spec.trace = true;
  spec.tuning_config.spec_horizon_initial_ps = Time::Milliseconds(10).ps();

  Network net(spec);
  FatTreeTopo topo =
      BuildFatTree(net, 4, 10'000'000'000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());
  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.1;
  traffic.duration = Time::Milliseconds(5);
  GenerateTraffic(net, traffic);
  net.Run(Time::Picoseconds(Time::Milliseconds(5).ps() / 2));
  net.Run(Time::Milliseconds(5));

  // The windows speculated, missed at least once, and the rollback restored
  // the boundary checkpoint (all surfaced in the per-window trace and the
  // kernel's checkpoint counters).
  const RunSummary total = net.run_trace().Cumulative();
  EXPECT_GE(total.spec_rounds, 1u);
  EXPECT_GE(total.spec_misses, 1u);
  EXPECT_GE(net.kernel().spec_checkpoint().captures(), 1u);
  EXPECT_GE(net.kernel().spec_checkpoint().restores(), 1u);

  RunDigest spec_digest = DigestOf(net);
  EXPECT_EQ(net.flow_monitor().Fingerprint(), off_out.fingerprint);
  EXPECT_EQ(net.kernel().session_events(), off_out.events);
  EXPECT_TRUE(spec_digest == off_digest);
}

// --- Automatic resume checkpoints ---

// Satellite: auto_checkpoint_every periodically saves the session to the
// configured path mid-run; killing the process and resuming from the file
// (LoadFrom + Session::Restore) converges to the same end state as the
// uninterrupted run — and the periodic saves never perturb the parent.
TEST(SessionAutoCheckpoint, PeriodicSnapshotResumesBitIdentical) {
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 2;
  const RunOutcome mono = RunFatTreeScenarioStreaming(k, PartitionMode::kAuto, 1);

  const std::string path = ::testing::TempDir() + "unison_auto_ckpt_test.usnp";
  SimConfig cfg;
  cfg.kernel = k;
  cfg.kernel.auto_checkpoint_every = 1;  // Save at every window boundary.
  cfg.auto_checkpoint_path = path;
  cfg.seed = 1;
  Network net(cfg);
  FatTreeTopo topo =
      BuildFatTree(net, 4, 10'000'000'000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 200 * 1024, Time::Zero());
  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.1;
  traffic.duration = Time::Milliseconds(5);
  InstallFlowSources(net, traffic);

  net.Run(Time::Milliseconds(1));
  net.Run(Time::Milliseconds(2));

  // "Crash" here: the latest auto-save holds the 2 ms boundary.
  const SessionSnapshot snap = SessionSnapshot::LoadFrom(path);
  std::remove(path.c_str());
  EXPECT_GT(snap.size_bytes(), 0u);
  std::unique_ptr<Network> resumed = Session::Restore(snap);
  resumed->Run(Time::Milliseconds(5));
  EXPECT_EQ(resumed->flow_monitor().Fingerprint(), mono.fingerprint);
  EXPECT_EQ(resumed->kernel().session_events(), mono.events);

  // The parent was never perturbed by its own periodic saves.
  net.Run(Time::Milliseconds(5));
  std::remove(path.c_str());  // Runs 3..5 saved again; clean up.
  EXPECT_EQ(net.flow_monitor().Fingerprint(), mono.fingerprint);
  EXPECT_EQ(net.kernel().session_events(), mono.events);
}

// Satellite: reading the session clock before Finalize is a configuration
// error with a diagnostic, not a null-kernel dereference.
TEST(SessionStateDeathTest, SessionTimeBeforeFinalizeIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimConfig cfg;
  Network net(cfg);
  EXPECT_DEATH((void)net.session_time(), "session_time");
}

// Satellite: KernelConfig::Validate rejects nonsense with a clear message.
TEST(KernelConfigValidate, RejectsBadConfigs) {
  KernelConfig ok;
  ok.type = KernelType::kUnison;
  ok.threads = 4;
  EXPECT_TRUE(ok.Validate().empty());

  KernelConfig zero_threads = ok;
  zero_threads.threads = 0;
  EXPECT_NE(zero_threads.Validate().find("threads"), std::string::npos);

  KernelConfig bad_ranks;
  bad_ranks.type = KernelType::kHybrid;
  bad_ranks.ranks = 0;
  EXPECT_NE(bad_ranks.Validate().find("ranks"), std::string::npos);

  KernelConfig huge_period = ok;
  huge_period.sched_period = KernelConfig::kMaxSchedPeriod + 1;
  EXPECT_NE(huge_period.Validate().find("sched_period"), std::string::npos);

  // The boundary value is accepted.
  KernelConfig max_period = ok;
  max_period.sched_period = KernelConfig::kMaxSchedPeriod;
  EXPECT_TRUE(max_period.Validate().empty());
}

}  // namespace
}  // namespace unison
