// Calendar queue: ordering equivalence with the binary-heap FEL.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/calendar_queue.h"
#include "src/core/fel.h"
#include "src/core/rng.h"

namespace unison {
namespace {

Event E(int64_t ts, uint64_t seq = 0) {
  return Event{EventKey{Time::Picoseconds(ts), Time::Zero(), 0, seq}, kNoNode, [] {}};
}

TEST(CalendarQueue, PopsInTimestampOrder) {
  CalendarQueue q;
  Rng rng(21, 0);
  std::vector<int64_t> ts;
  for (int i = 0; i < 5000; ++i) {
    const int64_t t = static_cast<int64_t>(rng.NextU64Below(1000000));
    ts.push_back(t);
    q.Push(E(t, static_cast<uint64_t>(i)));
  }
  std::sort(ts.begin(), ts.end());
  for (int64_t expected : ts) {
    ASSERT_FALSE(q.Empty());
    EXPECT_EQ(q.NextTimestamp().ps(), expected);
    EXPECT_EQ(q.Pop().key.ts.ps(), expected);
  }
  EXPECT_TRUE(q.Empty());
  EXPECT_TRUE(q.NextTimestamp().IsMax());
}

TEST(CalendarQueue, AgreesWithBinaryHeapUnderMixedWorkload) {
  // DES-like usage: interleaved pushes (mostly ahead of now) and pops.
  CalendarQueue cal;
  FutureEventList heap;
  Rng rng(22, 0);
  int64_t now = 0;
  uint64_t seq = 0;
  for (int step = 0; step < 20000; ++step) {
    const bool push = cal.Empty() || rng.NextU64Below(100) < 55;
    if (push) {
      const int64_t t = now + static_cast<int64_t>(rng.NextU64Below(50000));
      cal.Push(E(t, seq));
      heap.Push(E(t, seq));
      ++seq;
    } else {
      ASSERT_EQ(cal.NextTimestamp(), heap.NextTimestamp());
      const Event a = cal.Pop();
      const Event b = heap.Pop();
      ASSERT_EQ(a.key, b.key);
      now = a.key.ts.ps();
    }
  }
  while (!heap.Empty()) {
    ASSERT_FALSE(cal.Empty());
    ASSERT_EQ(cal.Pop().key, heap.Pop().key);
  }
  EXPECT_TRUE(cal.Empty());
}

TEST(CalendarQueue, TieBreaksByFullKey) {
  CalendarQueue q;
  // Same timestamp, different secondary fields.
  const EventKey ka{Time::Picoseconds(10), Time::Picoseconds(5), 2, 7};
  const EventKey kb{Time::Picoseconds(10), Time::Picoseconds(3), 9, 1};
  const EventKey kc{Time::Picoseconds(10), Time::Picoseconds(3), 4, 2};
  q.Push(Event{ka, kNoNode, [] {}});
  q.Push(Event{kb, kNoNode, [] {}});
  q.Push(Event{kc, kNoNode, [] {}});
  EXPECT_EQ(q.Pop().key, kc);  // Smallest sender_ts, then lp.
  EXPECT_EQ(q.Pop().key, kb);
  EXPECT_EQ(q.Pop().key, ka);
}

TEST(CalendarQueue, HandlesClusteredThenSparseTimestamps) {
  CalendarQueue q;
  // Dense cluster triggers resizes with a tiny day width...
  for (int i = 0; i < 1000; ++i) {
    q.Push(E(i));
  }
  // ...then a far-future event exercises the sparse fallback.
  q.Push(E(1000000000000LL));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(q.Pop().key.ts.ps(), i);
  }
  EXPECT_EQ(q.Pop().key.ts.ps(), 1000000000000LL);
  EXPECT_TRUE(q.Empty());
}

TEST(CalendarQueue, RewindsOnOutOfOrderPush) {
  CalendarQueue q;
  q.Push(E(1000000));
  EXPECT_EQ(q.Pop().key.ts.ps(), 1000000);  // Advances the day pointer.
  q.Push(E(5));                             // Behind the pointer.
  q.Push(E(2000000));
  EXPECT_EQ(q.Pop().key.ts.ps(), 5);
  EXPECT_EQ(q.Pop().key.ts.ps(), 2000000);
}

}  // namespace
}  // namespace unison
