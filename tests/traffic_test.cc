// Traffic generation: CDF sampling and workload construction.
#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/topo/fat_tree.h"
#include "src/traffic/cdf.h"
#include "src/traffic/generator.h"

namespace unison {
namespace {

TEST(Cdf, SampleStaysWithinSupport) {
  Rng rng(5, 0);
  const EmpiricalCdf& ws = EmpiricalCdf::WebSearch();
  for (int i = 0; i < 10000; ++i) {
    const uint64_t s = ws.Sample(rng);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 20000000u);
  }
}

TEST(Cdf, EmpiricalMeanMatchesAnalyticMean) {
  for (const EmpiricalCdf* cdf : {&EmpiricalCdf::WebSearch(), &EmpiricalCdf::Grpc()}) {
    Rng rng(6, 0);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(cdf->Sample(rng));
    }
    const double sample_mean = sum / n;
    EXPECT_NEAR(sample_mean / cdf->MeanBytes(), 1.0, 0.05);
  }
}

TEST(Cdf, WebSearchIsHeavyTailed) {
  // Most flows are small, most bytes are in big flows.
  Rng rng(7, 0);
  const EmpiricalCdf& ws = EmpiricalCdf::WebSearch();
  int small = 0;
  double small_bytes = 0;
  double total_bytes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double s = static_cast<double>(ws.Sample(rng));
    total_bytes += s;
    if (s < 100e3) {
      ++small;
      small_bytes += s;
    }
  }
  EXPECT_GT(small, n / 2);                        // >50% of flows are small.
  EXPECT_LT(small_bytes, total_bytes * 0.25);     // <25% of the bytes.
}

TEST(Cdf, UniformIsCachedAndStable) {
  const EmpiricalCdf& a = EmpiricalCdf::Uniform(100, 200);
  const EmpiricalCdf& b = EmpiricalCdf::Uniform(500, 900);
  const EmpiricalCdf& a2 = EmpiricalCdf::Uniform(100, 200);
  EXPECT_EQ(&a, &a2);
  Rng rng(8, 0);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t s = a.Sample(rng);
    EXPECT_GE(s, 100u);
    EXPECT_LE(s, 200u);
    const uint64_t t = b.Sample(rng);
    EXPECT_GE(t, 500u);
    EXPECT_LE(t, 900u);
  }
}

struct GeneratorFixture {
  SimConfig cfg;
  explicit GeneratorFixture(double incast = 0.0, uint64_t seed = 1) {
    cfg.kernel.type = KernelType::kSequential;
    cfg.seed = seed;
  }
};

TEST(Generator, LoadApproximatesTarget) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  TrafficSpec spec;
  spec.hosts = topo.hosts;
  spec.bisection_bps = topo.bisection_bps;
  spec.load = 0.3;
  spec.duration = Time::Milliseconds(100);
  const GeneratedTraffic traffic = GenerateTraffic(net, spec);
  const double offered_bits = static_cast<double>(traffic.total_bytes) * 8;
  const double target_bits =
      0.3 * static_cast<double>(topo.bisection_bps) * 0.1;  // Over 100ms.
  EXPECT_NEAR(offered_bits / target_bits, 1.0, 0.35);
  EXPECT_GT(traffic.flow_ids.size(), 10u);
}

TEST(Generator, DeterministicForSameSeed) {
  auto gen = [](uint64_t seed) {
    SimConfig cfg;
    cfg.kernel.type = KernelType::kSequential;
    cfg.seed = seed;
    Network net(cfg);
    FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
    net.Finalize();
    TrafficSpec spec;
    spec.hosts = topo.hosts;
    spec.bisection_bps = topo.bisection_bps;
    spec.load = 0.2;
    spec.duration = Time::Milliseconds(20);
    GenerateTraffic(net, spec);
    uint64_t h = 0;
    net.flow_monitor().ForEachFlow([&h](const FlowRecord& f) {
      h = h * 1000003 + f.src * 131 + f.dst * 31 + f.bytes + f.start.ps() % 100000;
    });
    return h;
  };
  EXPECT_EQ(gen(42), gen(42));
  EXPECT_NE(gen(42), gen(43));
}

TEST(Generator, IncastRatioDirectsFlowsAtVictim) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  TrafficSpec spec;
  spec.hosts = topo.hosts;
  spec.bisection_bps = topo.bisection_bps;
  spec.load = 0.3;
  spec.duration = Time::Milliseconds(50);
  spec.incast_ratio = 1.0;
  spec.victim_index = 3;
  GenerateTraffic(net, spec);
  // Ratio 1.0: every flow not sourced by the victim itself targets the
  // victim (the victim's own flows keep their uniform destinations).
  const NodeId victim = topo.hosts[3];
  uint64_t at_victim = 0;
  uint64_t total = 0;
  net.flow_monitor().ForEachFlow([&](const FlowRecord& f) {
    if (f.src == victim) {
      return;
    }
    ++total;
    if (f.dst == victim) {
      ++at_victim;
    }
  });
  ASSERT_GT(total, 0u);
  EXPECT_EQ(at_victim, total);
}

TEST(Generator, PermutationPairsEveryHostOnce) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  const GeneratedTraffic traffic =
      GeneratePermutation(net, topo.hosts, 10000, Time::Zero());
  EXPECT_EQ(traffic.flow_ids.size(), topo.hosts.size());
  std::vector<int> as_src(net.num_nodes(), 0);
  std::vector<int> as_dst(net.num_nodes(), 0);
  net.flow_monitor().ForEachFlow([&](const FlowRecord& f) {
    ++as_src[f.src];
    ++as_dst[f.dst];
  });
  for (NodeId h : topo.hosts) {
    EXPECT_EQ(as_src[h], 1);
    EXPECT_EQ(as_dst[h], 1);
  }
}

}  // namespace
}  // namespace unison
