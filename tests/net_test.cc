// Network substrate: links, queues, TCP, routing.
#include <gtest/gtest.h>

#include <memory>

#include "src/net/app.h"
#include "src/net/network.h"
#include "src/net/queue.h"
#include "src/topo/fat_tree.h"

namespace unison {
namespace {

SimConfig SeqConfig() {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  return cfg;
}

TEST(Link, SinglePacketLatencyIsSerializationPlusPropagation) {
  // Two nodes, 1Gbps, 100us link; one 1000-byte "flow" = one data segment.
  SimConfig cfg = SeqConfig();
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.AddLink(a, b, 1000000000ULL, Time::Microseconds(100));
  net.Finalize();
  InstallFlow(net, FlowSpec{a, b, 1000, Time::Zero(), {}});
  net.Run(Time::Seconds(1));

  const FlowRecord& f = net.flow_monitor().flow(0);
  EXPECT_TRUE(f.completed);
  // FCT = data serialization + prop + ack serialization + prop.
  const Time data_ser = SerializationDelay(1000 + kHeaderBytes, 1000000000ULL);
  const Time ack_ser = SerializationDelay(kAckBytes, 1000000000ULL);
  const Time expect = data_ser + ack_ser + Time::Microseconds(200);
  EXPECT_EQ(f.fct, expect);
  EXPECT_EQ(f.rx_bytes, 1000u);
}

TEST(Link, BackToBackPacketsSerializeFifo) {
  // A large flow must complete in ~bytes/bandwidth once the window opens.
  // The queue is sized above the flow so slow start never overflows it and
  // the transfer is loss-free (loss behaviour is covered separately).
  SimConfig cfg = SeqConfig();
  cfg.queue.capacity_bytes = 20 * 1000 * 1000;
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.AddLink(a, b, 10000000000ULL, Time::Microseconds(10));
  net.Finalize();
  const uint64_t bytes = 10 * 1000 * 1000;
  InstallFlow(net, FlowSpec{a, b, bytes, Time::Zero(), {}});
  net.Run(Time::Seconds(2));

  const FlowRecord& f = net.flow_monitor().flow(0);
  ASSERT_TRUE(f.completed);
  const double ideal_s = static_cast<double>(bytes) * 8 / 10e9;
  EXPECT_GT(f.fct.ToSeconds(), ideal_s);          // Can't beat line rate.
  EXPECT_LT(f.fct.ToSeconds(), ideal_s * 1.3);    // But close to it.
  EXPECT_EQ(f.retransmits, 0u);
}

TEST(Queue, DropTailDropsWhenFull) {
  DropTailQueue q(3000);
  Packet p;
  p.size_bytes = 1400;
  EXPECT_TRUE(q.Enqueue(p, Time::Zero()));
  EXPECT_TRUE(q.Enqueue(p, Time::Zero()));
  EXPECT_FALSE(q.Enqueue(p, Time::Zero()));  // 4200 > 3000.
  EXPECT_EQ(q.stats().dropped, 1u);
  Packet out;
  EXPECT_TRUE(q.Dequeue(&out, Time::Microseconds(5)));
  EXPECT_TRUE(q.Dequeue(&out, Time::Microseconds(9)));
  EXPECT_FALSE(q.Dequeue(&out, Time::Zero()));
  EXPECT_EQ(q.stats().dequeued, 2u);
  EXPECT_EQ(q.stats().total_delay, Time::Microseconds(14));
}

TEST(Queue, DctcpMarksAboveThreshold) {
  auto q = RedQueue::MakeDctcp(/*k_bytes=*/3000, /*capacity_bytes=*/100000);
  Packet p;
  p.size_bytes = 1400;
  p.ecn_capable = true;
  EXPECT_TRUE(q->Enqueue(p, Time::Zero()));  // 1400 < 3000: no mark.
  EXPECT_TRUE(q->Enqueue(p, Time::Zero()));  // 2800 < 3000: no mark.
  EXPECT_EQ(q->stats().ecn_marked, 0u);
  EXPECT_TRUE(q->Enqueue(p, Time::Zero()));  // 4200 > 3000: mark.
  EXPECT_EQ(q->stats().ecn_marked, 1u);
  Packet out;
  ASSERT_TRUE(q->Dequeue(&out, Time::Zero()));
  EXPECT_FALSE(out.ecn_ce);
  ASSERT_TRUE(q->Dequeue(&out, Time::Zero()));
  EXPECT_FALSE(out.ecn_ce);
  ASSERT_TRUE(q->Dequeue(&out, Time::Zero()));
  EXPECT_TRUE(out.ecn_ce);
}

TEST(Queue, RedDropsNonEcnTraffic) {
  RedConfig cfg;
  cfg.capacity_bytes = 1000000;
  cfg.min_th = 1000;
  cfg.max_th = 2000;
  cfg.max_p = 1.0;
  cfg.weight = 1.0;
  cfg.ecn = true;
  RedQueue q(cfg);
  Packet p;
  p.size_bytes = 1400;
  p.ecn_capable = false;
  EXPECT_TRUE(q.Enqueue(p, Time::Zero()));
  // Average now 1400 > min_th; with max_p=1 everything above max_th drops;
  // keep pushing until a drop is observed.
  int drops = 0;
  for (int i = 0; i < 10; ++i) {
    if (!q.Enqueue(p, Time::Zero())) {
      ++drops;
    }
  }
  EXPECT_GT(drops, 0);
  EXPECT_EQ(q.stats().ecn_marked, 0u);
}

TEST(Tcp, TransfersExactlyAllBytes) {
  SimConfig cfg = SeqConfig();
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const NodeId c = net.AddNode();
  net.AddLink(a, b, 1000000000ULL, Time::Microseconds(50));
  net.AddLink(b, c, 1000000000ULL, Time::Microseconds(50));
  net.Finalize();
  const uint64_t bytes = 777777;  // Not a multiple of the MSS.
  InstallFlow(net, FlowSpec{a, c, bytes, Time::Zero(), {}});
  net.Run(Time::Seconds(5));
  const FlowRecord& f = net.flow_monitor().flow(0);
  EXPECT_TRUE(f.completed);
  EXPECT_EQ(f.rx_bytes, bytes);
}

TEST(Tcp, RecoversFromLossViaFastRetransmit) {
  // Tiny bottleneck queue forces drops; the flow must still finish, with
  // retransmissions recorded.
  SimConfig cfg = SeqConfig();
  cfg.queue.capacity_bytes = 5 * 1500;  // ~5 packets.
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const NodeId c = net.AddNode();
  net.AddLink(a, b, 10000000000ULL, Time::Microseconds(10));
  net.AddLink(b, c, 100000000ULL, Time::Microseconds(10));  // 100x slower.
  net.Finalize();
  const uint64_t bytes = 2 * 1000 * 1000;
  InstallFlow(net, FlowSpec{a, c, bytes, Time::Zero(), {}});
  net.Run(Time::Seconds(10));
  const FlowRecord& f = net.flow_monitor().flow(0);
  EXPECT_TRUE(f.completed);
  EXPECT_EQ(f.rx_bytes, bytes);
  EXPECT_GT(f.retransmits, 0u);
  EXPECT_GT(net.AggregateQueueStats().dropped, 0u);
}

TEST(Tcp, RttSamplesTrackPathDelay) {
  SimConfig cfg = SeqConfig();
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  net.AddLink(a, b, 10000000000ULL, Time::Microseconds(500));
  net.Finalize();
  InstallFlow(net, FlowSpec{a, b, 100000, Time::Zero(), {}});
  net.Run(Time::Seconds(1));
  const FlowRecord& f = net.flow_monitor().flow(0);
  ASSERT_GT(f.rtt_samples, 0u);
  const double mean_rtt_us =
      f.rtt_sum.ToMicroseconds() / static_cast<double>(f.rtt_samples);
  EXPECT_GT(mean_rtt_us, 1000.0);  // At least 2x propagation.
  EXPECT_LT(mean_rtt_us, 1500.0);  // Little queueing on an idle path.
}

TEST(Tcp, DctcpKeepsQueuesShorterThanNewReno) {
  // Paper-style comparison: DCTCP with a step-marking queue vs. NewReno
  // with a deep drop-tail buffer (the bufferbloat it is known for).
  auto run = [](bool dctcp) {
    SimConfig cfg = SeqConfig();
    cfg.tcp.dctcp = dctcp;
    cfg.tcp.min_rto = Time::Milliseconds(1);
    cfg.queue.kind = dctcp ? QueueConfig::Kind::kDctcp : QueueConfig::Kind::kDropTail;
    cfg.queue.red_min_th = 30 * 1500;
    cfg.queue.capacity_bytes = 1000 * 1500;
    Network net(cfg);
    const NodeId a = net.AddNode();
    const NodeId b = net.AddNode();
    const NodeId c = net.AddNode();
    const NodeId d = net.AddNode();
    net.AddLink(a, c, 10000000000ULL, Time::Microseconds(10));
    net.AddLink(b, c, 10000000000ULL, Time::Microseconds(10));
    net.AddLink(c, d, 1000000000ULL, Time::Microseconds(10));  // Bottleneck.
    net.Finalize();
    InstallFlow(net, FlowSpec{a, d, 4000000, Time::Zero(), {}});
    InstallFlow(net, FlowSpec{b, d, 4000000, Time::Zero(), {}});
    net.Run(Time::Seconds(2));
    return net.AggregateQueueStats();
  };
  const auto with_dctcp = run(true);
  const auto with_newreno = run(false);
  EXPECT_GT(with_dctcp.ecn_marked, 0u);
  EXPECT_EQ(with_newreno.ecn_marked, 0u);
  // DCTCP's whole point: far lower mean queueing delay at the bottleneck.
  EXPECT_LT(with_dctcp.mean_delay_us(), with_newreno.mean_delay_us() * 0.7);
}

TEST(Routing, EcmpSpreadsFlowsAcrossCores) {
  SimConfig cfg = SeqConfig();
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  // From a host in pod 0 to a host in pod 1 there are 4 core paths; the agg
  // layer must expose ECMP width 2 at the edge and 2 at the agg.
  const NodeId src = topo.hosts[0];
  const NodeId dst = topo.hosts[4];
  const NodeId edge0 = topo.edge_switches[0];
  EXPECT_EQ(net.routing().EcmpWidth(edge0, dst), 2u);
  EXPECT_GE(net.routing().EcmpWidth(src, dst), 1u);
}

TEST(Routing, AllPairsReachableOnFatTree) {
  SimConfig cfg = SeqConfig();
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  for (NodeId s : topo.hosts) {
    for (NodeId d : topo.hosts) {
      if (s != d) {
        EXPECT_GE(net.routing().EcmpWidth(s, d), 1u) << s << "->" << d;
      }
    }
  }
}

TEST(Routing, LinkDownRemovesPathsAfterRecompute) {
  SimConfig cfg = SeqConfig();
  Network net(cfg);
  const NodeId a = net.AddNode();
  const NodeId b = net.AddNode();
  const uint32_t link = net.AddLink(a, b, 1000000000ULL, Time::Microseconds(10));
  net.Finalize();
  EXPECT_EQ(net.routing().EcmpWidth(a, b), 1u);
  net.SetLinkUp(link, false);
  EXPECT_EQ(net.routing().EcmpWidth(a, b), 0u);
  net.SetLinkUp(link, true);
  EXPECT_EQ(net.routing().EcmpWidth(a, b), 1u);
}

}  // namespace
}  // namespace unison
