// LBTS window boundary semantics: the subtlest invariants of conservative
// synchronization, pinned with hand-built event programs.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/partition/fine_grained.h"
#include "src/partition/manual.h"

namespace unison {
namespace {

TopoGraph TwoNodes(Time delay) {
  TopoGraph g;
  g.num_nodes = 2;
  g.edges.push_back(TopoEdge{0, 1, delay, true});
  return g;
}

std::unique_ptr<Kernel> MakeParallel(const TopoGraph& g, KernelType type,
                                     uint32_t threads = 2) {
  KernelConfig kc;
  kc.type = type;
  kc.threads = threads;
  auto k = MakeKernel(kc);
  k->Setup(g, FineGrainedPartition(g));
  return k;
}

TEST(Window, CrossLpEventAtExactLookaheadIsCausal) {
  // Node 0 at t sends to node 1 arriving at exactly t + lookahead — the
  // boundary case of the LBTS proof. The receiver must see it before
  // executing any of its own events at the same timestamp... per the key
  // order: arrival (sender_ts = t) precedes a local event scheduled from
  // setup only if its key is smaller; here we pin the causal outcome: the
  // arrival is processed, exactly once, at the right time.
  const TopoGraph g = TwoNodes(Time::Microseconds(10));
  for (KernelType type : {KernelType::kSequential, KernelType::kUnison,
                          KernelType::kNullMessage, KernelType::kBarrier}) {
    auto k = type == KernelType::kSequential
                 ? [&g] {
                     KernelConfig kc;
                     kc.type = KernelType::kSequential;
                     auto s = MakeKernel(kc);
                     s->Setup(g, SingleLpPartition(g));
                     return s;
                   }()
                 : MakeParallel(g, type);
    std::vector<int64_t> arrivals;
    Kernel* kp = k.get();
    // A chain: 0 fires at 5us, schedules onto 1 at +10us (the lookahead),
    // which schedules back onto 0 at +10us, etc.
    std::function<void(int)> hop = [&, kp](int depth) {
      arrivals.push_back(kp->Now().ps());
      if (depth < 5) {
        const NodeId self = depth % 2 == 0 ? 1 : 0;
        kp->ScheduleOnNode(self, kp->Now() + Time::Microseconds(10),
                           [&hop, depth] { hop(depth + 1); });
      }
    };
    k->ScheduleOnNode(0, Time::Microseconds(5), [&hop] { hop(0); });
    k->Run(Time::Milliseconds(1));
    ASSERT_EQ(arrivals.size(), 6u) << "kernel " << static_cast<int>(type);
    for (size_t i = 0; i < arrivals.size(); ++i) {
      EXPECT_EQ(arrivals[i], Time::Microseconds(5 + 10 * static_cast<int64_t>(i)).ps())
          << "kernel " << static_cast<int>(type);
    }
  }
}

TEST(Window, EventExactlyAtStopTimeNeverRuns) {
  const TopoGraph g = TwoNodes(Time::Microseconds(10));
  for (KernelType type : {KernelType::kUnison, KernelType::kHybrid}) {
    auto k = MakeParallel(g, type);
    std::atomic<int> ran{0};
    k->ScheduleOnNode(0, Time::Microseconds(99), [&ran] { ++ran; });
    k->ScheduleOnNode(1, Time::Microseconds(100), [&ran] { ++ran; });  // == stop.
    k->ScheduleOnNode(0, Time::Microseconds(101), [&ran] { ++ran; });
    k->Run(Time::Microseconds(100));
    EXPECT_EQ(ran.load(), 1) << "kernel " << static_cast<int>(type);
  }
}

TEST(Window, GlobalEventInterruptsRoundAtItsTimestamp) {
  // A global event at T must observe every node event below T as already
  // executed and no node event at/after T (Eq. 2: LBTS caps at N_pub).
  const TopoGraph g = TwoNodes(Time::Microseconds(10));
  auto k = MakeParallel(g, KernelType::kUnison);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  for (int i = 0; i < 50; ++i) {
    k->ScheduleOnNode(i % 2, Time::Microseconds(1 + i), [&before] { ++before; });
    k->ScheduleOnNode(i % 2, Time::Microseconds(60 + i), [&after] { ++after; });
  }
  int seen_before = -1;
  int seen_after = -1;
  k->ScheduleGlobal(Time::Microseconds(55), [&] {
    seen_before = before.load();
    seen_after = after.load();
  });
  k->Run(Time::Milliseconds(1));
  EXPECT_EQ(seen_before, 50);
  EXPECT_EQ(seen_after, 0);
  EXPECT_EQ(after.load(), 50);
}

TEST(Window, ChainedGlobalEventsAtSameTimestampRunInOneRound) {
  const TopoGraph g = TwoNodes(Time::Microseconds(10));
  auto k = MakeParallel(g, KernelType::kUnison);
  std::vector<int> order;
  Kernel* kp = k.get();
  k->ScheduleGlobal(Time::Microseconds(7), [&order, kp] {
    order.push_back(1);
    // Same-timestamp chained global: must run in the same round (Eq. 2).
    kp->ScheduleGlobal(kp->Now(), [&order] { order.push_back(2); });
  });
  k->ScheduleOnNode(0, Time::Microseconds(7), [&order] { order.push_back(3); });
  k->Run(Time::Milliseconds(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Window, ZeroWorkLpsDoNotStallTermination) {
  // 64 LPs, events only on two of them: rounds must still converge quickly
  // and terminate (empty LPs contribute Time::Max to the reduction).
  TopoGraph g;
  g.num_nodes = 64;
  for (NodeId i = 0; i + 1 < 64; ++i) {
    g.edges.push_back(TopoEdge{i, i + 1, Time::Microseconds(3), true});
  }
  auto k = MakeParallel(g, KernelType::kUnison, 4);
  std::atomic<int> ran{0};
  k->ScheduleOnNode(0, Time::Microseconds(1), [&ran] { ++ran; });
  k->ScheduleOnNode(63, Time::Microseconds(2), [&ran] { ++ran; });
  k->Run(Time::Seconds(1));
  EXPECT_EQ(ran.load(), 2);
  EXPECT_LT(k->rounds(), 10u);
}

}  // namespace
}  // namespace unison
