// Load-adaptive scheduling machinery: LPT bounds and the barrier primitives.
// The executor pool that replaced the worker team lives in engine_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/core/rng.h"
#include "src/sched/barrier_sync.h"
#include "src/sched/lpt.h"

namespace unison {
namespace {

TEST(Lpt, SortIsDescendingAndStable) {
  const std::vector<uint64_t> cost = {5, 9, 5, 1, 9};
  const auto order = SortByCostDescending(cost);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 4, 0, 2, 3}));
}

TEST(Lpt, TiedCostsBreakByAscendingId) {
  // The order must be a pure function of the cost vector: ties resolve to
  // ascending id regardless of how the input happens to be arranged, so
  // repeated runs with identical costs claim LPs in the same order.
  const std::vector<uint64_t> cost = {5, 7, 5, 7};
  EXPECT_EQ(SortByCostDescending(cost), (std::vector<uint32_t>{1, 3, 0, 2}));

  const std::vector<uint64_t> uniform = {3, 3, 3, 3, 3};
  EXPECT_EQ(SortByCostDescending(uniform), (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Lpt, MakespanSmallCases) {
  // Jobs {5,4,3,3,3} on 2 machines: LPT gives {5,3,3}=11 vs {4,3}=7 -> wait,
  // greedy: 5->A, 4->B, 3->B(7), 3->A(8), 3->B(10) => makespan 10.
  const std::vector<uint64_t> cost = {5, 4, 3, 3, 3};
  EXPECT_EQ(ListScheduleMakespan(cost, SortByCostDescending(cost), 2), 10u);
  EXPECT_EQ(OptimalMakespan(cost, 2), 9u);  // {5,4} vs {3,3,3}.
}

TEST(Lpt, SingleWorkerIsSum) {
  const std::vector<uint64_t> cost = {3, 1, 4, 1, 5};
  EXPECT_EQ(ListScheduleMakespan(cost, SortByCostDescending(cost), 1), 14u);
}

TEST(Lpt, AssignmentCoversEveryJob) {
  const std::vector<uint64_t> cost = {8, 7, 6, 5, 4, 3, 2, 1};
  std::vector<uint32_t> assignment;
  const uint64_t makespan =
      ListScheduleMakespan(cost, SortByCostDescending(cost), 3, &assignment);
  ASSERT_EQ(assignment.size(), cost.size());
  std::vector<uint64_t> load(3, 0);
  for (size_t i = 0; i < cost.size(); ++i) {
    ASSERT_LT(assignment[i], 3u);
    load[assignment[i]] += cost[i];
  }
  EXPECT_EQ(*std::max_element(load.begin(), load.end()), makespan);
}

// Graham's bound: LPT makespan <= (4/3 - 1/(3m)) * OPT.
class LptBoundTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LptBoundTest, WithinGrahamBound) {
  const auto [workers, instance] = GetParam();
  Rng rng(1000 + instance, workers);
  std::vector<uint64_t> cost(6 + rng.NextU64Below(5));
  for (auto& c : cost) {
    c = 1 + rng.NextU64Below(50);
  }
  const uint64_t lpt = ListScheduleMakespan(cost, SortByCostDescending(cost), workers);
  const uint64_t opt = OptimalMakespan(cost, workers);
  EXPECT_GE(lpt, opt);
  const double bound = (4.0 / 3.0 - 1.0 / (3.0 * workers));
  EXPECT_LE(static_cast<double>(lpt), bound * static_cast<double>(opt) + 1e-9)
      << "jobs=" << cost.size() << " workers=" << workers;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LptBoundTest,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Range(0, 25)));

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  SpinBarrier b(1);
  for (int i = 0; i < 1000; ++i) {
    b.Arrive();
  }
}

TEST(SpinBarrier, RoundTripsStayAligned) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.Arrive();
        // Between barriers, the counter must be an exact multiple.
        if (counter.load() < (r + 1) * kThreads) {
          failed = true;
        }
        barrier.Arrive();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kRounds);
}

TEST(AtomicTimeMin, ReducesConcurrently) {
  AtomicTimeMin m;
  m.Reset();
  EXPECT_EQ(m.Get(), INT64_MAX);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m, t] {
      for (int i = 1000; i >= 0; --i) {
        m.Update(static_cast<int64_t>(t) * 10000 + i);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(m.Get(), 0);
}

}  // namespace
}  // namespace unison
