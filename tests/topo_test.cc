// Topology builders: structural invariants.
#include <gtest/gtest.h>

#include <map>

#include "src/net/network.h"
#include "src/topo/bcube.h"
#include "src/topo/fat_tree.h"
#include "src/topo/spine_leaf.h"
#include "src/topo/torus.h"
#include "src/topo/wan.h"

namespace unison {
namespace {

std::map<NodeId, int> DegreeMap(const Network& net) {
  std::map<NodeId, int> deg;
  for (const auto& l : net.links()) {
    ++deg[l.a];
    ++deg[l.b];
  }
  return deg;
}

TEST(FatTree, K4Counts) {
  SimConfig cfg;
  Network net(cfg);
  FatTreeTopo t = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  EXPECT_EQ(t.hosts.size(), 16u);
  EXPECT_EQ(t.edge_switches.size(), 8u);
  EXPECT_EQ(t.agg_switches.size(), 8u);
  EXPECT_EQ(t.core_switches.size(), 4u);
  EXPECT_EQ(net.num_nodes(), 36u);
  // Links: 16 host + 16 edge-agg + 16 agg-core.
  EXPECT_EQ(net.links().size(), 48u);
  auto deg = DegreeMap(net);
  for (NodeId h : t.hosts) {
    EXPECT_EQ(deg[h], 1);
  }
  for (NodeId e : t.edge_switches) {
    EXPECT_EQ(deg[e], 4);
  }
  for (NodeId a : t.agg_switches) {
    EXPECT_EQ(deg[a], 4);
  }
  for (NodeId c : t.core_switches) {
    EXPECT_EQ(deg[c], 4);
  }
  EXPECT_EQ(t.PodOfHost(0), 0u);
  EXPECT_EQ(t.PodOfHost(15), 3u);
}

TEST(FatTree, K8Counts) {
  SimConfig cfg;
  Network net(cfg);
  FatTreeTopo t = BuildFatTree(net, 8, 10000000000ULL, Time::Microseconds(3));
  EXPECT_EQ(t.hosts.size(), 128u);
  EXPECT_EQ(t.core_switches.size(), 16u);
  EXPECT_EQ(net.num_nodes(), 208u);
}

TEST(ClusterFatTree, PaperFootnoteShapes) {
  // "Fat-tree 16": 4 clusters x 4 hosts.
  SimConfig cfg;
  Network net(cfg);
  ClusterFatTreeTopo t =
      BuildClusterFatTree(net, 4, /*racks=*/2, /*hosts_per_rack=*/2,
                          /*aggs=*/2, /*cores=*/4, 100000000ULL, Time::Microseconds(500));
  EXPECT_EQ(t.hosts.size(), 16u);
  EXPECT_EQ(t.tor_switches.size(), 8u);
  EXPECT_EQ(t.agg_switches.size(), 8u);
  EXPECT_EQ(t.core_switches.size(), 4u);
  EXPECT_EQ(t.ClusterOfHost(5), 1u);
  // Every host can reach every other (checked via routing).
  net.Finalize();
  for (NodeId d : t.hosts) {
    if (d != t.hosts[0]) {
      EXPECT_GE(net.routing().EcmpWidth(t.hosts[0], d), 1u);
    }
  }
}

TEST(BCube, Bcube1N4Structure) {
  SimConfig cfg;
  Network net(cfg);
  BCubeTopo t = BuildBCube(net, 4, 2, 10000000000ULL, Time::Microseconds(3));
  EXPECT_EQ(t.hosts.size(), 16u);   // 4^2.
  ASSERT_EQ(t.switches.size(), 2u);
  EXPECT_EQ(t.switches[0].size(), 4u);
  EXPECT_EQ(t.switches[1].size(), 4u);
  auto deg = DegreeMap(net);
  for (NodeId h : t.hosts) {
    EXPECT_EQ(deg[h], 2);  // One port per level.
  }
  for (const auto& level : t.switches) {
    for (NodeId s : level) {
      EXPECT_EQ(deg[s], 4);  // n ports.
    }
  }
  net.Finalize();
  // Server-centric: any two hosts reachable.
  for (NodeId d : t.hosts) {
    if (d != t.hosts[0]) {
      EXPECT_GE(net.routing().EcmpWidth(t.hosts[0], d), 1u);
    }
  }
}

TEST(Torus, DegreesAndWraparound) {
  SimConfig cfg;
  Network net(cfg);
  TorusTopo t = BuildTorus2D(net, 6, 6, 10000000000ULL, Time::Microseconds(30));
  EXPECT_EQ(t.nodes.size(), 36u);
  EXPECT_EQ(net.links().size(), 72u);  // 2 per node.
  auto deg = DegreeMap(net);
  for (NodeId n : t.nodes) {
    EXPECT_EQ(deg[n], 4);
  }
  // Paper's id convention: node (i, j) has id i + rows * j.
  EXPECT_EQ(t.At(2, 3), t.nodes[2 + 6 * 3]);
  net.Finalize();
  // Wraparound shortens paths: (0,0) to (5,0) is one hop.
  EXPECT_GE(net.routing().EcmpWidth(t.At(0, 0), t.At(5, 0)), 1u);
}

TEST(SpineLeaf, FullBipartiteCore) {
  SimConfig cfg;
  Network net(cfg);
  SpineLeafTopo t = BuildSpineLeaf(net, 4, 8, 16, 10000000000ULL, Time::Microseconds(1));
  EXPECT_EQ(t.spines.size(), 4u);
  EXPECT_EQ(t.leaves.size(), 8u);
  EXPECT_EQ(t.hosts.size(), 128u);
  auto deg = DegreeMap(net);
  for (NodeId s : t.spines) {
    EXPECT_EQ(deg[s], 8);
  }
  for (NodeId l : t.leaves) {
    EXPECT_EQ(deg[l], 4 + 16);
  }
  net.Finalize();
  // Host under leaf 0 to host under leaf 7: 4 spine choices at the leaf.
  EXPECT_EQ(net.routing().EcmpWidth(t.leaves[0], t.hosts[127]), 4u);
}

class WanTest : public ::testing::TestWithParam<WanName> {};

TEST_P(WanTest, ConnectedWithHostsAttached) {
  SimConfig cfg;
  Network net(cfg);
  WanTopo t = BuildWan(net, GetParam(), 1000000000ULL, Time::Microseconds(100));
  EXPECT_EQ(t.routers.size(), t.hosts.size());
  EXPECT_GT(t.backbone_links, t.routers.size());  // More links than a tree.
  net.Finalize();
  for (NodeId d : t.hosts) {
    if (d != t.hosts[0]) {
      EXPECT_GE(net.routing().EcmpWidth(t.hosts[0], d), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backbones, WanTest,
                         ::testing::Values(WanName::kGeant, WanName::kChinaNet));

}  // namespace
}  // namespace unison
