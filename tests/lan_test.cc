// Stateful LAN segments: the partitioner must keep them whole (§7), and
// traffic across them must be kernel-independent.
#include <gtest/gtest.h>

#include "src/net/app.h"
#include "src/net/network.h"
#include "src/partition/fine_grained.h"
#include "src/topo/lan.h"

namespace unison {
namespace {

TEST(Lan, SegmentStaysInOneLp) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  Network net(cfg);
  net.AddNodes(4);
  AddLan(net, {0, 1, 2, 3}, 1000000000ULL, Time::Microseconds(5));
  net.Finalize();
  const Partition& p = net.partition();
  // Hub + 4 members all share one LP despite the 5us delays.
  const LpId lp = p.lp_of_node[0];
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    EXPECT_EQ(p.lp_of_node[n], lp);
  }
  EXPECT_EQ(p.num_lps, 1u);
}

TEST(Lan, MixedSegmentAndPointToPointPartitions) {
  // Two LANs joined by a long point-to-point trunk: the trunk is cut, each
  // LAN is one LP.
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 2;
  Network net(cfg);
  net.AddNodes(4);
  LanSegment west = AddLan(net, {0, 1}, 1000000000ULL, Time::Microseconds(5));
  LanSegment east = AddLan(net, {2, 3}, 1000000000ULL, Time::Microseconds(5));
  net.AddLink(west.hub, east.hub, 1000000000ULL, Time::Microseconds(50));
  net.Finalize();
  const Partition& p = net.partition();
  EXPECT_EQ(p.num_lps, 2u);
  EXPECT_EQ(p.lp_of_node[0], p.lp_of_node[1]);
  EXPECT_EQ(p.lp_of_node[2], p.lp_of_node[3]);
  EXPECT_NE(p.lp_of_node[0], p.lp_of_node[2]);
  EXPECT_EQ(p.lookahead, Time::Microseconds(50));
}

TEST(Lan, TcpAcrossSegmentsMatchesSequential) {
  auto run = [](KernelType kernel) {
    SimConfig cfg;
    cfg.kernel.type = kernel;
    cfg.kernel.threads = 2;
    Network net(cfg);
    net.AddNodes(4);
    LanSegment west = AddLan(net, {0, 1}, 1000000000ULL, Time::Microseconds(5));
    LanSegment east = AddLan(net, {2, 3}, 1000000000ULL, Time::Microseconds(5));
    net.AddLink(west.hub, east.hub, 100000000ULL, Time::Microseconds(50));
    net.Finalize();
    InstallFlow(net, FlowSpec{0, 3, 300000, Time::Zero(), {}});
    InstallFlow(net, FlowSpec{2, 1, 200000, Time::Microseconds(10), {}});
    net.Run(Time::Seconds(1));
    EXPECT_TRUE(net.flow_monitor().flow(0).completed);
    EXPECT_TRUE(net.flow_monitor().flow(1).completed);
    return std::pair{net.kernel().processed_events(), net.flow_monitor().Fingerprint()};
  };
  const auto seq = run(KernelType::kSequential);
  EXPECT_EQ(run(KernelType::kUnison), seq);
  EXPECT_EQ(run(KernelType::kNullMessage), seq);
}

TEST(Lan, AllStatefulModelFallsBackToSequentialBehaviour) {
  // A model with only stateful links yields a single LP — Unison runs it
  // correctly (just without parallelism), the §7 applicability limit.
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 4;
  Network net(cfg);
  net.AddNodes(6);
  AddLan(net, {0, 1, 2, 3, 4, 5}, 1000000000ULL, Time::Microseconds(5));
  net.Finalize();
  EXPECT_EQ(net.kernel().num_lps(), 1u);
  InstallFlow(net, FlowSpec{0, 5, 100000, Time::Zero(), {}});
  net.Run(Time::Seconds(1));
  EXPECT_TRUE(net.flow_monitor().flow(0).completed);
}

}  // namespace
}  // namespace unison
