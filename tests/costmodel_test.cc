// Parallel cost model: schedule replays over measured per-(round, LP) costs.
#include <gtest/gtest.h>

#include "src/costmodel/cost_model.h"
#include "tests/test_util.h"

namespace unison {
namespace {

// Hand-built trace: 3 rounds, 4 LPs, one LP persistently hot (skew).
std::vector<LpRoundCost> SkewedTrace() {
  std::vector<LpRoundCost> t;
  for (uint32_t r = 0; r < 3; ++r) {
    t.push_back({r, 0, 10, 10, 900});  // Hot LP.
    t.push_back({r, 1, 1, 1, 100});
    t.push_back({r, 2, 1, 1, 100});
    t.push_back({r, 3, 1, 1, 100});
  }
  return t;
}

TEST(CostModel, SequentialIsSumOfCosts) {
  ParallelCostModel m(SkewedTrace(), 4);
  EXPECT_EQ(m.rounds(), 3u);
  EXPECT_EQ(m.SequentialNs(), 3u * 1200u);
}

TEST(CostModel, BarrierMakespanIsMaxRankPerRound) {
  ParallelCostModel m(SkewedTrace(), 4);
  // Static map: LP i -> rank i (4 ranks).
  const ModelResult r = m.Barrier({0, 1, 2, 3}, 4, /*sync_overhead_ns=*/0);
  EXPECT_EQ(r.makespan_ns, 3u * 900u);  // Hot rank dominates every round.
  EXPECT_EQ(r.processing_ns, 3u * 1200u);
  // The cold ranks spend 800 of each 900ns round waiting.
  EXPECT_EQ(r.executor_s_ns[1], 3u * 800u);
  EXPECT_GT(r.SyncRatio(), 0.5);
}

TEST(CostModel, UnisonCannotSplitOneHotLpButBalancesRest) {
  ParallelCostModel m(SkewedTrace(), 4);
  const ModelResult r =
      m.Unison(4, SchedulingMetric::kByPendingEventCount, 1, /*overhead=*/0);
  // The 900ns LP lower-bounds each round; others overlap it.
  EXPECT_EQ(r.makespan_ns, 3u * 900u);
  // Now make the hot work divisible: 9 LPs of 100 each + 3 cold LPs.
  std::vector<LpRoundCost> fine;
  for (uint32_t r2 = 0; r2 < 3; ++r2) {
    for (uint32_t lp = 0; lp < 12; ++lp) {
      fine.push_back({r2, lp, 1, 1, 100});
    }
  }
  ParallelCostModel mf(fine, 12);
  const ModelResult rf =
      mf.Unison(4, SchedulingMetric::kByPendingEventCount, 1, 0);
  EXPECT_EQ(rf.makespan_ns, 3u * 300u);  // Perfect balance: 12*100/4.
  EXPECT_LT(rf.SyncRatio(), 0.01);
}

TEST(CostModel, NullMessageNeighborGating) {
  // Chain 0-1-2-3: LP 0 hot. Neighbour gating makes everyone wait for the
  // hot LP's previous round.
  std::vector<std::vector<uint32_t>> nbrs = {{1}, {0, 2}, {1, 3}, {2}};
  ParallelCostModel m(SkewedTrace(), 4);
  const ModelResult r = m.NullMessage(nbrs, 0);
  // Round 0 finishes at 900 for LP0, 100 for others. Round 1: LP1 gated by
  // LP0's 900. LP3 is 2 hops away: gated only in round 2.
  EXPECT_EQ(r.makespan_ns, 3u * 900u);
  EXPECT_GT(r.executor_s_ns[1], r.executor_s_ns[3]);
}

TEST(CostModel, LastRoundMetricExploitsTemporalLocality) {
  // Costs stable across rounds: ByLastRoundTime should match the ideal
  // schedule from round 1 on; slowdown close to 1.
  std::vector<LpRoundCost> t;
  for (uint32_t r = 0; r < 50; ++r) {
    for (uint32_t lp = 0; lp < 8; ++lp) {
      t.push_back({r, lp, 1, 1, 100 + lp * 130});
    }
  }
  ParallelCostModel m(t, 8);
  const ModelResult adaptive = m.Unison(4, SchedulingMetric::kByLastRoundTime, 1, 0);
  const ModelResult none = m.Unison(4, SchedulingMetric::kNone, 1, 0);
  const double a_adaptive = ParallelCostModel::SlowdownFactor(adaptive);
  const double a_none = ParallelCostModel::SlowdownFactor(none);
  EXPECT_LE(a_adaptive, a_none + 1e-9);
  EXPECT_LT(a_adaptive, 1.05);
}

TEST(CostModel, IntegratesWithInstrumentedRun) {
  // End to end: instrumented Unison run produces a trace the model accepts,
  // and the modeled 1-worker makespan equals the sequential cost.
  KernelConfig k;
  k.type = KernelType::kUnison;
  k.threads = 1;
  SimConfig cfg;
  cfg.kernel = k;
  cfg.profile = true;
  cfg.profile_per_lp = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 100000, Time::Zero());
  net.Run(Time::Milliseconds(5));

  const auto trace = net.profiler().MergedLpRounds();
  ASSERT_FALSE(trace.empty());
  ParallelCostModel m(trace, net.kernel().num_lps());
  EXPECT_GT(m.rounds(), 0u);
  const ModelResult one = m.Unison(1, SchedulingMetric::kByLastRoundTime,
                                   /*period=*/4, 0);
  EXPECT_EQ(one.makespan_ns, m.SequentialNs());
  const ModelResult four = m.Unison(4, SchedulingMetric::kByLastRoundTime, 4, 0);
  EXPECT_LT(four.makespan_ns, one.makespan_ns);
}

}  // namespace
}  // namespace unison
