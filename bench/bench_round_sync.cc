// Round-synchronization microbenchmark: flat barrier + CAS min-reduction vs
// the combining-tree barrier with the fused reduction, across party counts
// and placement policies.
//
// Each generation models one kernel round boundary. The flat protocol is what
// the round kernels shipped with before the tree: every party CASes its
// partial minimum into one AtomicTimeMin line, crosses a SpinBarrier so the
// coordinator can read the reduced value, then crosses it again so the
// coordinator's Reset() cannot race the next generation's updates — two full
// crossings plus a contended CAS line per round. The tree protocol is a
// single CombiningBarrier::Arrive carrying {min, count, flags}; the release
// broadcast publishes the reduced values, so there is no second crossing and
// no global CAS line at all.
//
// Every generation's reduced minimum is checked against a serially computed
// reference on both paths; a mismatch fails the bench (exit 1). Timings are
// reported honestly for whatever machine this runs on — on hosts with fewer
// cores than parties (this repo's reference container has one core) every
// crossing parks in the futex and the numbers measure the scheduler more
// than the barrier, so the pass criterion is correctness, not speedup; the
// cores field in the JSON tells consumers which regime produced the numbers.
//
// With --trace=PATH, additionally runs a small traced Unison simulation
// (k=4 fat-tree, 4 workers) and writes its run trace to PATH so CI can
// validate the barrier_ns/parked fields end to end with a real JSON parser.
//
// Emits BENCH_round_sync.json.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/engine/cpu_topology.h"
#include "src/sched/barrier_sync.h"
#include "src/sched/combining_barrier.h"

using namespace unison;
using namespace unison::bench;

namespace {

// Deterministic per-(generation, party) contribution; mixes well so the
// minimum lands on a different party every generation.
int64_t Contrib(uint32_t gen, uint32_t party) {
  uint64_t x = (static_cast<uint64_t>(gen) << 20) ^ (party * 2654435761u);
  x ^= x >> 15;
  x *= 0x9E3779B97F4A7C15ull;
  x ^= x >> 32;
  return static_cast<int64_t>(x % 1000000007);
}

std::vector<int64_t> ExpectedMins(uint32_t parties, uint32_t gens) {
  std::vector<int64_t> expected(gens);
  for (uint32_t gen = 0; gen < gens; ++gen) {
    int64_t m = INT64_MAX;
    for (uint32_t p = 0; p < parties; ++p) {
      m = std::min(m, Contrib(gen, p));
    }
    expected[gen] = m;
  }
  return expected;
}

struct SyncResult {
  double ns_per_gen = 0;
  uint64_t mismatches = 0;
  uint64_t parks = 0;        // Tree only.
  uint32_t spin_budget = 0;  // Tree only.
};

// Spawns parties-1 helper threads (party 0 is the caller, as in the kernels),
// optionally pinning party p to pin_order[p % size]. Times the caller's loop.
template <typename Body>
SyncResult RunParties(uint32_t parties, uint32_t gens,
                      const std::vector<uint32_t>& pin_order, const Body& body) {
  std::vector<std::thread> threads;
  std::vector<uint64_t> mismatches(parties, 0);
  for (uint32_t p = 1; p < parties; ++p) {
    threads.emplace_back([&, p] {
      if (!pin_order.empty()) {
        PinCurrentThreadToCpu(pin_order[p % pin_order.size()]);
      }
      mismatches[p] = body(p);
    });
  }
  if (!pin_order.empty()) {
    PinCurrentThreadToCpu(pin_order[0]);
  }
  const uint64_t t0 = Profiler::NowNs();
  mismatches[0] = body(0);
  const uint64_t dt = Profiler::NowNs() - t0;
  for (auto& t : threads) {
    t.join();
  }
  SyncResult out;
  out.ns_per_gen = static_cast<double>(dt) / static_cast<double>(gens);
  for (uint64_t m : mismatches) {
    out.mismatches += m;
  }
  return out;
}

SyncResult RunFlat(uint32_t parties, uint32_t gens,
                   const std::vector<uint32_t>& pin_order) {
  const std::vector<int64_t> expected = ExpectedMins(parties, gens);
  SpinBarrier barrier(parties);
  AtomicTimeMin min;
  min.Reset();
  return RunParties(parties, gens, pin_order, [&](uint32_t p) -> uint64_t {
    uint64_t bad = 0;
    for (uint32_t gen = 0; gen < gens; ++gen) {
      min.Update(Contrib(gen, p));
      barrier.Arrive();  // Crossing 1: all updates are in.
      if (p == 0) {
        bad += min.Get() != expected[gen] ? 1 : 0;
        min.Reset();
      }
      barrier.Arrive();  // Crossing 2: Reset cannot race gen+1's updates.
    }
    return bad;
  });
}

SyncResult RunTree(uint32_t parties, uint32_t gens,
                   const std::vector<uint32_t>& pin_order) {
  const std::vector<int64_t> expected = ExpectedMins(parties, gens);
  CombiningBarrier barrier(parties);
  SyncResult out =
      RunParties(parties, gens, pin_order, [&](uint32_t p) -> uint64_t {
        uint64_t bad = 0;
        for (uint32_t gen = 0; gen < gens; ++gen) {
          barrier.Arrive(p, Contrib(gen, p), 1, 0);
          // Every party may read the reduced values, not just the
          // coordinator — they stay valid until this party's next arrival.
          bad += barrier.reduced_min() != expected[gen] ? 1 : 0;
          bad += barrier.reduced_count() != parties ? 1 : 0;
        }
        return bad;
      });
  out.parks = barrier.parks();
  out.spin_budget = barrier.spin_budget();
  return out;
}

void RunTracedSimulation(const std::string& path) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 4;
  cfg.seed = 1;
  cfg.trace = true;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  GeneratePermutation(net, topo.hosts, 50000, Time::Zero());
  net.Run(Time::Milliseconds(1));
  if (net.run_trace().WriteJsonFile(path) &&
      net.run_trace().WriteCsvFile(path + ".csv")) {
    std::printf("[trace] wrote %s (+.csv)\n", path.c_str());
  } else {
    std::fprintf(stderr, "[trace] FAILED to write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "--quick");
  const std::string gens_arg =
      GetOpt(argc, argv, "--gens", quick ? "2000" : "20000");
  const uint32_t gens = static_cast<uint32_t>(std::stoul(gens_arg));
  const std::string trace_path = GetOpt(argc, argv, "--trace", "");

  const CpuTopology topo = CpuTopology::Detect();
  const size_t cores = topo.cpus.size();
  std::printf("Round synchronization: flat SpinBarrier+AtomicTimeMin (2 "
              "crossings + CAS line) vs\ncombining tree (1 fused crossing), "
              "%u generations per config, %zu cores visible\n\n",
              gens, cores);

  const std::vector<uint32_t> party_counts = {1, 2, 4, 8, 16};
  struct Row {
    uint32_t parties;
    SyncResult flat;
    SyncResult tree;
  };
  std::vector<Row> rows;
  uint64_t mismatches = 0;
  Table t({"parties", "flat ns/gen", "tree ns/gen", "flat/tree", "tree parks",
           "spin budget"});
  for (const uint32_t parties : party_counts) {
    Row row{parties, RunFlat(parties, gens, {}), RunTree(parties, gens, {})};
    mismatches += row.flat.mismatches + row.tree.mismatches;
    rows.push_back(row);
    t.Row({Fmt("%u", parties), Fmt("%.0f", row.flat.ns_per_gen),
           Fmt("%.0f", row.tree.ns_per_gen),
           Fmt("%.2fx", row.tree.ns_per_gen == 0
                            ? 0.0
                            : row.flat.ns_per_gen / row.tree.ns_per_gen),
           Fmt("%llu", static_cast<unsigned long long>(row.tree.parks)),
           Fmt("%u", row.tree.spin_budget)});
  }
  t.Print();

  // Placement policies, tree barrier at the largest swept party count. With
  // one visible core every policy degenerates to the same pin, so the rows
  // measure scheduler noise, not placement — the JSON says so explicitly
  // (affinity_degenerate) instead of letting consumers read three identical
  // policies as a null result. Multi-core hosts get the real comparison.
  const uint32_t aff_parties = party_counts.back();
  const bool affinity_degenerate = cores < 2;
  std::printf("\nPlacement policies (tree, %u parties)%s:\n\n", aff_parties,
              affinity_degenerate
                  ? " — DEGENERATE: one visible core, every policy is the same pin"
                  : "");
  struct AffRow {
    const char* name;
    SyncResult res;
  };
  std::vector<AffRow> aff_rows;
  Table ta({"policy", "ns/gen", "parks"});
  for (const AffinityPolicy policy :
       {AffinityPolicy::kNone, AffinityPolicy::kCompact,
        AffinityPolicy::kScatter}) {
    const SyncResult res =
        RunTree(aff_parties, gens, topo.PlacementOrder(policy));
    mismatches += res.mismatches;
    aff_rows.push_back(AffRow{AffinityPolicyName(policy), res});
    ta.Row({AffinityPolicyName(policy), Fmt("%.0f", res.ns_per_gen),
            Fmt("%llu", static_cast<unsigned long long>(res.parks))});
  }
  ta.Print();

  const bool pass = mismatches == 0;
  std::printf("\n%s: %llu reduction mismatches across all configs "
              "(expected 0)\n",
              pass ? "PASS" : "FAIL",
              static_cast<unsigned long long>(mismatches));
  if (cores < 8) {
    std::printf("note: %zu-core host — parties exceed cores, so ns/gen "
                "measures futex scheduling, not barrier structure; treat "
                "ratios as indicative only\n",
                cores);
  }

  FILE* out = std::fopen("BENCH_round_sync.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"workload\": \"round boundary: barrier + min-reduction\",\n"
                 "  \"generations\": %u,\n"
                 "  \"host_cores\": %zu,\n"
                 "  \"sweep\": [",
                 gens, cores);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(out,
                   "%s\n    {\"parties\": %u, \"flat_ns_per_gen\": %.1f, "
                   "\"tree_ns_per_gen\": %.1f, \"tree_parks\": %llu, "
                   "\"tree_spin_budget\": %u}",
                   i == 0 ? "" : ",", r.parties, r.flat.ns_per_gen,
                   r.tree.ns_per_gen,
                   static_cast<unsigned long long>(r.tree.parks),
                   r.tree.spin_budget);
    }
    std::fprintf(out,
                 "\n  ],\n"
                 "  \"affinity\": [");
    for (size_t i = 0; i < aff_rows.size(); ++i) {
      std::fprintf(out,
                   "%s\n    {\"policy\": \"%s\", \"ns_per_gen\": %.1f, "
                   "\"parks\": %llu}",
                   i == 0 ? "" : ",", aff_rows[i].name,
                   aff_rows[i].res.ns_per_gen,
                   static_cast<unsigned long long>(aff_rows[i].res.parks));
    }
    std::fprintf(out,
                 "\n  ],\n"
                 "  \"affinity_degenerate\": %s,\n"
                 "  \"mismatches\": %llu,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 affinity_degenerate ? "true" : "false",
                 static_cast<unsigned long long>(mismatches),
                 pass ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_round_sync.json\n");
  }

  if (!trace_path.empty()) {
    RunTracedSimulation(trace_path);
  }
  return pass ? 0 : 1;
}
