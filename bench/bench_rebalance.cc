// Controller-driven LP migration on a skewed fat-tree: static hybrid
// partition vs the live tuning plane (tuning=auto) with the rebalance rule.
//
// The workload concentrates most of the load inside pod 0 (a "hot rack"
// pattern), while the hybrid kernel's setup partition slices LPs across
// ranks by node range — so one rank starts out carrying the hot pod and the
// per-round imbalance stays high no matter how the claim order is re-sorted.
// That is exactly the gap PR 9 closes: the controller's rebalance rule
// watches mean per-round imbalance, computes an LPT move set from the per-LP
// window costs, and publishes it through the tunable epoch; the kernel
// relocates the LP→rank binding at the next window boundary.
//
// The pass criteria are the refactor's contract, not raw speed:
// bit-identical FlowMonitor fingerprints and event counts (migration must
// never change results), at least one published rebalance decision, and at
// least one applied migration batch (ownership epoch > 0). Wall times are
// reported honestly for whatever host runs this; the speedup is CI-gated
// with a generous floor because a 1-core runner serializes the ranks anyway.
//
// Emits BENCH_rebalance.json.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "bench/bench_util.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct RebalanceRun {
  uint64_t wall_ns = 0;
  uint64_t fingerprint = 0;
  uint64_t events = 0;
  uint32_t windows = 0;
  uint64_t migration_batches = 0;  // Ownership-map epoch at end of run.
  size_t decisions = 0;
  size_t rebalance_decisions = 0;
  double observed_imbalance = 0.0;   // From the first rebalance decision.
  double predicted_imbalance = 0.0;
  std::string rules;
};

// k=4 fat-tree with the load concentrated in pod 0: every pod-0 host
// exchanges heavy flows with its podmates, the rest of the tree only sees a
// light uniform background. The hybrid setup partition slices node ranges,
// so the hot pod lands on one rank.
std::function<void(Network&)> SkewedBuilder(Time duration) {
  return [duration](Network& net) {
    FatTreeTopo topo =
        BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
    net.Finalize();
    const size_t pod_hosts = topo.hosts.size() / 4;  // (k/2)^2 of k^3/4.
    const std::vector<NodeId> hot(topo.hosts.begin(),
                                  topo.hosts.begin() + pod_hosts);
    // Heavy permutation rings inside pod 0 keep its LPs busy for the whole
    // horizon (3 x 2 MB per host over 10 Gbps access links is ~5 ms of
    // sustained transfers); the rest of the tree carries one light spray.
    for (uint32_t stride = 1; stride < pod_hosts; ++stride) {
      GeneratePermutation(net, hot, 2 * 1024 * 1024, Time::Zero(), stride);
    }
    GeneratePermutation(net, topo.hosts, 100 * 1024, Time::Zero());
    // Light Poisson background so late windows still have arrivals.
    TrafficSpec background;
    background.hosts = topo.hosts;
    background.bisection_bps = topo.bisection_bps;
    background.load = 0.1;
    background.duration = duration;
    GenerateTraffic(net, background);
  };
}

RebalanceRun RunOnce(SimConfig cfg, Time duration) {
  Network net(cfg);
  SkewedBuilder(duration)(net);
  const uint64_t t0 = Profiler::NowNs();
  net.Run(duration);
  RebalanceRun out;
  out.wall_ns = Profiler::NowNs() - t0;
  out.fingerprint = net.flow_monitor().Fingerprint();
  out.events = net.kernel().session_events();
  out.windows = net.kernel().session_windows();
  out.migration_batches = net.kernel().partition_map().epoch();
  if (net.controller() != nullptr) {
    out.decisions = net.controller()->decisions().size();
    for (const Controller::Decision& d : net.controller()->decisions()) {
      if (!out.rules.empty()) {
        out.rules += ';';
      }
      out.rules += d.rule;
      // A window's decision names every rule that fired, comma-joined.
      if (d.rule.find("rebalance") != std::string::npos) {
        if (out.rebalance_decisions == 0) {
          out.observed_imbalance = d.observed_imbalance;
          out.predicted_imbalance = d.predicted_imbalance;
        }
        ++out.rebalance_decisions;
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "--quick");
  const Time duration = Time::Milliseconds(quick ? 2 : 5);

  SimConfig base;
  ApplyDcnTcp(&base);
  base.kernel.type = KernelType::kHybrid;
  base.kernel.ranks = 2;
  base.kernel.threads = 2;

  std::printf("rebalance: k=4 fat-tree, hot pod 0, hybrid 2x2, %s\n",
              quick ? "quick" : "full");

  const RebalanceRun st = RunOnce(base, duration);

  SimConfig tuned = base;
  tuned.tuning = TuningMode::kAuto;
  tuned.tuning_config.min_rounds = 1;
  tuned.tuning_config.ps_low = 1.0;  // Always keep the observation cadence up.
  tuned.tuning_config.initial_window_ps = 500'000'000;  // 0.5 ms slices.
  tuned.tuning_config.min_window_ps = 250'000'000;
  // A hot pod is persistent, not noisy: trip the rule early and let it
  // re-fire if the first move set was not enough.
  tuned.tuning_config.rebalance_imbalance_high = 0.02;
  tuned.tuning_config.rebalance_patience = 2;
  tuned.tuning_config.rebalance_cooldown = 2;
  const RebalanceRun tu = RunOnce(tuned, duration);

  const double speedup = tu.wall_ns == 0
                             ? 0.0
                             : static_cast<double>(st.wall_ns) /
                                   static_cast<double>(tu.wall_ns);
  const bool fingerprint_match =
      tu.fingerprint == st.fingerprint && tu.events == st.events;

  Table table({"run", "wall ms", "windows", "migrations", "decisions"});
  table.Row({"static", Fmt("%.1f", st.wall_ns * 1e-6), Fmt("%u", st.windows),
             Fmt("%llu", static_cast<unsigned long long>(st.migration_batches)),
             "0"});
  table.Row({"rebalanced", Fmt("%.1f", tu.wall_ns * 1e-6), Fmt("%u", tu.windows),
             Fmt("%llu", static_cast<unsigned long long>(tu.migration_batches)),
             Fmt("%zu", tu.decisions)});
  table.Print();
  std::printf(
      "  speedup %.2fx, fingerprints %s, rebalances %zu "
      "(imbalance %.3f -> predicted %.3f), rules: %s\n",
      speedup, fingerprint_match ? "match" : "DIVERGE", tu.rebalance_decisions,
      tu.observed_imbalance, tu.predicted_imbalance,
      tu.rules.empty() ? "(none)" : tu.rules.c_str());

  const bool pass = fingerprint_match && tu.rebalance_decisions >= 1 &&
                    tu.migration_batches >= 1;

  FILE* out = std::fopen("BENCH_rebalance.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n  \"bench\": \"rebalance\",\n  \"quick\": %s,\n"
        "  \"static_wall_ns\": %llu,\n  \"tuned_wall_ns\": %llu,\n"
        "  \"speedup\": %.4f,\n  \"fingerprint_match\": %s,\n"
        "  \"decisions\": %zu,\n  \"rebalance_decisions\": %zu,\n"
        "  \"migration_batches\": %llu,\n"
        "  \"observed_imbalance\": %.4f,\n  \"predicted_imbalance\": %.4f,\n"
        "  \"rules\": \"%s\",\n"
        "  \"windows_static\": %u,\n  \"windows_tuned\": %u,\n"
        "  \"events\": %llu,\n  \"pass\": %s\n}\n",
        quick ? "true" : "false",
        static_cast<unsigned long long>(st.wall_ns),
        static_cast<unsigned long long>(tu.wall_ns), speedup,
        fingerprint_match ? "true" : "false", tu.decisions,
        tu.rebalance_decisions,
        static_cast<unsigned long long>(tu.migration_batches),
        tu.observed_imbalance, tu.predicted_imbalance, tu.rules.c_str(),
        st.windows, tu.windows,
        static_cast<unsigned long long>(tu.events), pass ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_rebalance.json\n");
  }
  return pass ? 0 : 1;
}
