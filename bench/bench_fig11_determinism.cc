// Figure 11: determinism. A k=4 fat-tree simulated 10 times ("epochs") per
// kernel; the paper shows the stock PDES kernels' event counts and measured
// delays fluctuate between runs while Unison's are exactly constant, and
// Unison's results are also identical for any thread count.
//
// The baselines here run with deterministic=false, which reproduces stock
// ns-3 tie-breaking (simultaneous events in cross-LP arrival order). These
// are real multi-threaded runs, not models: the indeterminism IS the race.
#include <set>

#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct Epoch {
  uint64_t events = 0;
  uint64_t fingerprint = 0;
  double mean_fct_ms = 0;
};

// When windows > 1, the 3 ms horizon is reached via that many consecutive
// Run() calls on one warm session instead of a single monolithic Run().
Epoch RunEpoch(KernelType type, uint32_t threads, bool deterministic,
               int windows = 1) {
  SimConfig cfg;
  cfg.kernel.type = type;
  cfg.kernel.threads = threads;
  cfg.kernel.deterministic = deterministic;
  cfg.seed = 77;
  ApplyDcnTcp(&cfg);
  cfg.partition = type == KernelType::kBarrier || type == KernelType::kNullMessage
                      ? PartitionMode::kManual
                      : PartitionMode::kAuto;
  if (type == KernelType::kSequential) {
    cfg.partition = PartitionMode::kSingle;
  }
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  if (cfg.partition == PartitionMode::kManual) {
    net.SetManualPartition(4, FatTreePodPartition(topo, net.num_nodes()));
  }
  net.Finalize();
  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.4;
  traffic.duration = Time::Milliseconds(3);
  traffic.incast_ratio = 0.2;
  GenerateTraffic(net, traffic);
  const int64_t horizon_us = 3000;
  for (int w = 1; w <= windows; ++w) {
    net.Run(Time::Microseconds(horizon_us * w / windows));
  }
  return Epoch{net.kernel().session_events(), net.flow_monitor().Fingerprint(),
               net.flow_monitor().Summarize().mean_fct_ms};
}

}  // namespace

int main(int argc, char** argv) {
  const int epochs = HasFlag(argc, argv, "--full") ? 10 : 5;
  std::printf("Figure 11 — determinism across %d epochs (k=4 fat-tree, real runs)\n\n",
              epochs);

  struct Config {
    const char* name;
    KernelType type;
    uint32_t threads;
    bool deterministic;
  };
  const Config configs[] = {
      {"barrier (stock ties)", KernelType::kBarrier, 4, false},
      {"nullmsg (stock ties)", KernelType::kNullMessage, 4, false},
      {"Unison (tie-break)", KernelType::kUnison, 4, true},
  };

  Table t({"kernel", "distinct event counts", "distinct results", "mean FCT spread (ms)"});
  for (const Config& c : configs) {
    std::set<uint64_t> counts;
    std::set<uint64_t> prints;
    double fct_min = 1e300;
    double fct_max = -1e300;
    for (int e = 0; e < epochs; ++e) {
      const Epoch ep = RunEpoch(c.type, c.threads, c.deterministic);
      counts.insert(ep.events);
      prints.insert(ep.fingerprint);
      fct_min = std::min(fct_min, ep.mean_fct_ms);
      fct_max = std::max(fct_max, ep.mean_fct_ms);
    }
    t.Row({c.name, Fmt("%zu/%d", counts.size(), epochs),
           Fmt("%zu/%d", prints.size(), epochs), Fmt("%.6f", fct_max - fct_min)});
  }
  t.Print();

  std::printf("\nUnison across thread counts (must be 1 distinct result):\n\n");
  Table t2({"threads", "events", "fingerprint"});
  std::set<uint64_t> cross_thread;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    const Epoch ep = RunEpoch(KernelType::kUnison, threads, true);
    cross_thread.insert(ep.fingerprint);
    t2.Row({Fmt("%u", threads), Fmt("%lu", (unsigned long)ep.events),
            Fmt("%016lx", (unsigned long)ep.fingerprint)});
  }
  t2.Print();
  std::printf("\ndistinct results across thread counts: %zu (expected 1)\n",
              cross_thread.size());

  std::printf("\nUnison across session windows (must be 1 distinct result):\n\n");
  Table t3({"windows", "events", "fingerprint"});
  std::set<uint64_t> cross_window;
  for (int windows : {1, 2, 3, 6}) {
    const Epoch ep = RunEpoch(KernelType::kUnison, 4, true, windows);
    cross_window.insert(ep.fingerprint);
    t3.Row({Fmt("%d", windows), Fmt("%lu", (unsigned long)ep.events),
            Fmt("%016lx", (unsigned long)ep.fingerprint)});
  }
  t3.Print();
  std::printf("\ndistinct results across window splits: %zu (expected 1)\n",
              cross_window.size());
  std::printf("\nShape check: Unison rows are constant; the stock-tie baselines may\n"
              "fluctuate from run to run (arrival-order races). On a single-core\n"
              "host races are rarer than on the paper's testbed but the mechanism\n"
              "is identical; deterministic=true fixes the baselines too, because\n"
              "the tie-breaking rule lives in this library's core.\n");
  return 0;
}
