// Figure 11: determinism. A k=4 fat-tree simulated 10 times ("epochs") per
// kernel; the paper shows the stock PDES kernels' event counts and measured
// delays fluctuate between runs while Unison's are exactly constant, and
// Unison's results are also identical for any thread count.
//
// The baselines here run with deterministic=false, which reproduces stock
// ns-3 tie-breaking (simultaneous events in cross-LP arrival order). These
// are real multi-threaded runs, not models: the indeterminism IS the race.
#include <set>

#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct Epoch {
  uint64_t events = 0;
  uint64_t fingerprint = 0;
  double mean_fct_ms = 0;
  uint64_t run_loop_ns = 0;  // Wall time of the Run() calls alone (warm net).
};

// When windows > 1, the 3 ms horizon is reached via that many consecutive
// Run() calls on one warm session instead of a single monolithic Run().
Epoch RunEpoch(KernelType type, uint32_t threads, bool deterministic,
               int windows = 1) {
  SimConfig cfg;
  cfg.kernel.type = type;
  cfg.kernel.threads = threads;
  cfg.kernel.deterministic = deterministic;
  cfg.seed = 77;
  ApplyDcnTcp(&cfg);
  cfg.partition = type == KernelType::kBarrier || type == KernelType::kNullMessage
                      ? PartitionMode::kManual
                      : PartitionMode::kAuto;
  if (type == KernelType::kSequential) {
    cfg.partition = PartitionMode::kSingle;
  }
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  if (cfg.partition == PartitionMode::kManual) {
    net.SetManualPartition(4, FatTreePodPartition(topo, net.num_nodes()));
  }
  net.Finalize();
  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.4;
  traffic.duration = Time::Milliseconds(3);
  traffic.incast_ratio = 0.2;
  GenerateTraffic(net, traffic);
  const int64_t horizon_us = 3000;
  const uint64_t t0 = Profiler::NowNs();
  for (int w = 1; w <= windows; ++w) {
    net.Run(Time::Microseconds(horizon_us * w / windows));
  }
  const uint64_t run_loop_ns = Profiler::NowNs() - t0;
  return Epoch{net.kernel().session_events(), net.flow_monitor().Fingerprint(),
               net.flow_monitor().Summarize().mean_fct_ms, run_loop_ns};
}

}  // namespace

int main(int argc, char** argv) {
  const int epochs = HasFlag(argc, argv, "--full") ? 10 : 5;
  std::printf("Figure 11 — determinism across %d epochs (k=4 fat-tree, real runs)\n\n",
              epochs);

  struct Config {
    const char* name;
    KernelType type;
    uint32_t threads;
    bool deterministic;
  };
  const Config configs[] = {
      {"barrier (stock ties)", KernelType::kBarrier, 4, false},
      {"nullmsg (stock ties)", KernelType::kNullMessage, 4, false},
      {"Unison (tie-break)", KernelType::kUnison, 4, true},
  };

  Table t({"kernel", "distinct event counts", "distinct results", "mean FCT spread (ms)"});
  for (const Config& c : configs) {
    std::set<uint64_t> counts;
    std::set<uint64_t> prints;
    double fct_min = 1e300;
    double fct_max = -1e300;
    for (int e = 0; e < epochs; ++e) {
      const Epoch ep = RunEpoch(c.type, c.threads, c.deterministic);
      counts.insert(ep.events);
      prints.insert(ep.fingerprint);
      fct_min = std::min(fct_min, ep.mean_fct_ms);
      fct_max = std::max(fct_max, ep.mean_fct_ms);
    }
    t.Row({c.name, Fmt("%zu/%d", counts.size(), epochs),
           Fmt("%zu/%d", prints.size(), epochs), Fmt("%.6f", fct_max - fct_min)});
  }
  t.Print();

  std::printf("\nUnison across thread counts (must be 1 distinct result):\n\n");
  Table t2({"threads", "events", "fingerprint"});
  std::set<uint64_t> cross_thread;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    const Epoch ep = RunEpoch(KernelType::kUnison, threads, true);
    cross_thread.insert(ep.fingerprint);
    t2.Row({Fmt("%u", threads), Fmt("%lu", (unsigned long)ep.events),
            Fmt("%016lx", (unsigned long)ep.fingerprint)});
  }
  t2.Print();
  std::printf("\ndistinct results across thread counts: %zu (expected 1)\n",
              cross_thread.size());

  std::printf("\nUnison across session windows (must be 1 distinct result):\n\n");
  Table t3({"windows", "events", "fingerprint"});
  std::set<uint64_t> cross_window;
  for (int windows : {1, 2, 3, 6}) {
    const Epoch ep = RunEpoch(KernelType::kUnison, 4, true, windows);
    cross_window.insert(ep.fingerprint);
    t3.Row({Fmt("%d", windows), Fmt("%lu", (unsigned long)ep.events),
            Fmt("%016lx", (unsigned long)ep.fingerprint)});
  }
  t3.Print();
  std::printf("\ndistinct results across window splits: %zu (expected 1)\n",
              cross_window.size());

  // Warm-restart cost: splitting one horizon into w windows adds w-1 extra
  // session boundaries, each of which re-enters the executor pool (parking
  // and unparking every worker at the pool's futex). The per-window overhead
  // column isolates that boundary cost: (wall_w - wall_1) / (w - 1), over
  // the Run() loop alone — topology build and traffic generation excluded.
  std::printf("\nWarm-restart overhead per window boundary (Unison, 4 threads):\n\n");
  const int window_counts[] = {1, 2, 5, 20};
  double run_loop_ms[4] = {0, 0, 0, 0};
  double overhead_ms[4] = {0, 0, 0, 0};
  Table t4({"windows", "run loop (ms)", "per-window overhead (ms)"});
  for (int i = 0; i < 4; ++i) {
    const int w = window_counts[i];
    // Best of 3: boundary cost is microseconds, scheduler noise is not.
    uint64_t best_ns = ~0ull;
    for (int rep = 0; rep < 3; ++rep) {
      best_ns = std::min(best_ns, RunEpoch(KernelType::kUnison, 4, true, w).run_loop_ns);
    }
    run_loop_ms[i] = static_cast<double>(best_ns) * 1e-6;
    overhead_ms[i] = w == 1 ? 0.0 : (run_loop_ms[i] - run_loop_ms[0]) / (w - 1);
    t4.Row({Fmt("%d", w), Fmt("%.3f", run_loop_ms[i]),
            w == 1 ? std::string("-") : Fmt("%.4f", overhead_ms[i])});
  }
  t4.Print();

  FILE* out = std::fopen("BENCH_fig11_determinism.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"distinct_results_across_threads\": %zu,\n"
                 "  \"distinct_results_across_windows\": %zu,\n"
                 "  \"warm_restart\": {\n"
                 "    \"kernel\": \"unison\",\n"
                 "    \"threads\": 4,\n"
                 "    \"windows\": [%d, %d, %d, %d],\n"
                 "    \"run_loop_ms\": [%.3f, %.3f, %.3f, %.3f],\n"
                 "    \"per_window_overhead_ms\": [%.4f, %.4f, %.4f, %.4f]\n"
                 "  }\n"
                 "}\n",
                 cross_thread.size(), cross_window.size(), window_counts[0],
                 window_counts[1], window_counts[2], window_counts[3],
                 run_loop_ms[0], run_loop_ms[1], run_loop_ms[2], run_loop_ms[3],
                 overhead_ms[0], overhead_ms[1], overhead_ms[2], overhead_ms[3]);
    std::fclose(out);
    std::printf("\nwrote BENCH_fig11_determinism.json\n");
  }
  std::printf("\nShape check: Unison rows are constant; the stock-tie baselines may\n"
              "fluctuate from run to run (arrival-order races). On a single-core\n"
              "host races are rarer than on the paper's testbed but the mechanism\n"
              "is identical; deterministic=true fixes the baselines too, because\n"
              "the tie-breaking rule lives in this library's core.\n");
  return 0;
}
