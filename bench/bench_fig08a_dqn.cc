// Figure 8a: Unison vs existing PDES vs the data-driven DeepQueueNet across
// growing fat-trees (fat-tree 16 / 64 / 128, 100Mbps / 500us links, packet
// budgets per the paper).
//
// DeepQueueNet is represented by its surrogate cost model (per-packet DNN
// inference over parallel devices — the paper's own explanation of its
// runtime; see DESIGN.md §2). Simulator times come from traces/models as in
// the other benches.
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct FabricSpec {
  const char* name;
  uint32_t clusters;
  uint32_t hosts_per_rack;  // racks_per_cluster fixed at 2.
  uint64_t packets_budget;  // Injected packets (paper: 0.32M/1.28M/2.56M).
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  // Scaled-down packet budgets by default (absolute DQN inference cost is
  // linear in packets either way).
  const double scale = full ? 1.0 : 0.1;
  const std::vector<FabricSpec> fabrics = {
      {"fat-tree 16", 4, 2, static_cast<uint64_t>(320000 * scale)},
      {"fat-tree 64", 8, 4, static_cast<uint64_t>(1280000 * scale)},
      {"fat-tree 128", 16, 4, static_cast<uint64_t>(2560000 * scale)},
  };

  std::printf("Figure 8a — Unison vs PDES vs DeepQueueNet (100Mbps, 500us links)\n");
  std::printf("times in seconds; DQN = surrogate inference cost on 2 devices\n\n");

  DqnConfig dqn_cfg;
  DeepQueueNetSurrogate dqn(dqn_cfg);

  Table t({"topology", "packets", "sequential", "barrier", "nullmsg", "DQN",
           "Unison(16 thr)"});
  for (const FabricSpec& fabric : fabrics) {
    // Simulate long enough to carry the packet budget at 100Mbps.
    const uint32_t hosts = fabric.clusters * 2 * fabric.hosts_per_rack;
    const double bytes_total = static_cast<double>(fabric.packets_budget) * 1460.0;
    const double agg_bps = 0.6 * 100e6 * hosts;  // Offered by all hosts.
    const Time sim = Time::Seconds(bytes_total * 8 / agg_bps);

    auto build = [&fabric, sim](Network& net) {
      ClusterFatTreeTopo topo = BuildClusterFatTree(
          net, fabric.clusters, 2, fabric.hosts_per_rack, 2,
          std::max(2u, fabric.clusters / 2), 100000000ULL, Time::Microseconds(500));
      net.Finalize();
      TrafficSpec traffic;
      traffic.hosts = topo.hosts;
      traffic.bisection_bps =
          static_cast<uint64_t>(topo.hosts.size()) * 100000000ULL / 2;
      traffic.load = 0.6;
      traffic.duration = sim;
      GenerateTraffic(net, traffic);
    };
    auto build_manual = [&fabric, sim](Network& net) {
      ClusterFatTreeTopo topo = BuildClusterFatTree(
          net, fabric.clusters, 2, fabric.hosts_per_rack, 2,
          std::max(2u, fabric.clusters / 2), 100000000ULL, Time::Microseconds(500));
      // The paper's manual scheme yields at most 8 LPs even for fat-tree 128
      // (clusters folded pairwise); reproduce that cap.
      const uint32_t lps = std::min(fabric.clusters, 8u);
      std::vector<LpId> assignment = ClusterFatTreePartition(topo, net.num_nodes());
      for (LpId& lp : assignment) {
        lp %= lps;
      }
      net.SetManualPartition(lps, std::move(assignment));
      net.Finalize();
      TrafficSpec traffic;
      traffic.hosts = topo.hosts;
      traffic.bisection_bps =
          static_cast<uint64_t>(topo.hosts.size()) * 100000000ULL / 2;
      traffic.load = 0.6;
      traffic.duration = sim;
      GenerateTraffic(net, traffic);
    };

    SimConfig cfg;
    cfg.seed = 5;

    uint64_t events = 0;
    SimConfig seq = cfg;
    const double seq_s = SequentialWallSeconds(seq, build, sim, &events);

    SimConfig manual = cfg;
    manual.partition = PartitionMode::kManual;
    const TraceResult coarse = InstrumentedRun(manual, build_manual, sim);
    ParallelCostModel coarse_model(coarse.trace, coarse.num_lps);
    const double barrier_s =
        static_cast<double>(coarse_model
                                .Barrier(IdentityRanks(coarse.num_lps), coarse.num_lps,
                                         kBarrierSyncOverheadNs)
                                .makespan_ns) *
        1e-9;
    const double nullmsg_s =
        static_cast<double>(
            coarse_model.NullMessage(coarse.lp_neighbors, kNullMsgOverheadNs).makespan_ns) *
        1e-9;

    const TraceResult fine = InstrumentedRun(cfg, build, sim);
    ParallelCostModel fine_model(fine.trace, fine.num_lps);
    const double unison_s =
        static_cast<double>(fine_model
                                .Unison(16, SchedulingMetric::kByLastRoundTime, 0,
                                        kUnisonRoundOverheadNs)
                                .makespan_ns) *
        1e-9;

    // Packets actually carried (data events approximate the injected count).
    const uint64_t packets = fabric.packets_budget;
    const double dqn_s = dqn.InferenceSeconds(packets);

    t.Row({fabric.name, Fmt("%.2fM", static_cast<double>(packets) / 1e6),
           Fmt("%.2f", seq_s), Fmt("%.2f", barrier_s), Fmt("%.2f", nullmsg_s),
           Fmt("%.2f", dqn_s), Fmt("%.2f", unison_s)});
  }
  t.Print();
  std::printf("\nShape check: simulator time grows with the fabric while Unison's\n"
              "stays nearly flat; DQN pays a large fixed setup plus per-packet\n"
              "inference. At paper scale (hours-long sequential runs) the\n"
              "sequential curve crosses above DQN's — extrapolate the growth\n"
              "rates here; this container cannot afford hour-long baselines.\n"
              "(DQN additionally needs %.0f hours of training per device model.)\n",
              dqn_cfg.training_hours_per_device_model);
  return 0;
}
