// Figure 10: Unison's generality across topologies and traffic patterns.
//
//   --part=torus   (a) 2D torus, simulation time vs #cores for barrier /
//                  null message / Unison.
//   --part=bcube   (b) BCube under web-search and gRPC (+incast) traffic:
//                  speedups of the baselines vs Unison at 8 and 16 cores.
//   --part=wan     (c) GEANT and ChinaNet with distance-vector routing and
//                  web-search load: sequential vs Unison (8 threads).
//   --part=reconf  (d) reconfigurable DCN: simulation time vs topology
//                  change interval, sequential vs Unison.
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

void PartTorus(bool full) {
  const uint32_t dim = full ? 24 : 12;
  const Time sim = full ? Time::Milliseconds(20) : Time::Milliseconds(10);
  std::printf("\n(a) %ux%u torus, 10Gbps / 30us links, 30%% bisection load\n\n", dim, dim);

  auto build = [dim, sim](bool manual, uint32_t lps) {
    return [dim, sim, manual, lps](Network& net) {
      TorusTopo topo = BuildTorus2D(net, dim, dim, 10000000000ULL, Time::Microseconds(30));
      if (manual) {
        // The paper's scheme: contiguous node-id ranges.
        std::vector<LpId> lp(net.num_nodes());
        const uint32_t per = (net.num_nodes() + lps - 1) / lps;
        for (NodeId n = 0; n < net.num_nodes(); ++n) {
          lp[n] = std::min(n / per, lps - 1);
        }
        net.SetManualPartition(lps, std::move(lp));
      }
      net.Finalize();
      TrafficSpec traffic;
      traffic.hosts = topo.nodes;
      traffic.bisection_bps = topo.bisection_bps;
      traffic.load = 0.3;
      traffic.duration = sim;
      GenerateTraffic(net, traffic);
    };
  };

  SimConfig cfg;
  cfg.seed = 31;
  ApplyDcnTcp(&cfg);
  uint64_t events = 0;
  const double seq_s = SequentialWallSeconds(cfg, build(false, 0), sim, &events);

  SimConfig fine_cfg = cfg;
  const TraceResult fine = InstrumentedRun(fine_cfg, build(false, 0), sim);
  ParallelCostModel fine_model(fine.trace, fine.num_lps);

  Table t({"#cores", "barrier", "nullmsg", "Unison", "Unison vs best PDES"});
  const std::vector<uint32_t> cores = full ? std::vector<uint32_t>{12, 24, 48}
                                           : std::vector<uint32_t>{4, 8, 16};
  for (uint32_t c : cores) {
    SimConfig mcfg = cfg;
    mcfg.partition = PartitionMode::kManual;
    const TraceResult coarse = InstrumentedRun(mcfg, build(true, c), sim);
    ParallelCostModel cm(coarse.trace, coarse.num_lps);
    const double barrier_s =
        static_cast<double>(
            cm.Barrier(IdentityRanks(coarse.num_lps), coarse.num_lps, kBarrierSyncOverheadNs)
                .makespan_ns) *
        1e-9;
    const double nullmsg_s =
        static_cast<double>(
            cm.NullMessage(coarse.lp_neighbors, kNullMsgOverheadNs).makespan_ns) *
        1e-9;
    const double unison_s =
        static_cast<double>(fine_model
                                .Unison(c, SchedulingMetric::kByLastRoundTime, 0,
                                        kUnisonRoundOverheadNs)
                                .makespan_ns) *
        1e-9;
    t.Row({Fmt("%u", c), Fmt("%.3f", barrier_s), Fmt("%.3f", nullmsg_s),
           Fmt("%.3f", unison_s),
           Fmt("%.1fx", std::min(barrier_s, nullmsg_s) / unison_s)});
  }
  t.Print();
  std::printf("\n(sequential wall: %.3f s, %lu events)\n", seq_s,
              static_cast<unsigned long>(events));
  std::printf("Shape check: Unison leads the PDES baselines by several x at\n"
              "every core count.\n");
}

void PartBCube(bool full) {
  const uint32_t n = full ? 8 : 4;
  const uint32_t levels = 2;
  const Time sim = full ? Time::Milliseconds(10) : Time::Milliseconds(5);
  std::printf("\n(b) BCube(%u,%u), 10Gbps / 3us, web-search & gRPC + incast, 30%% load\n\n",
              n, levels - 1);

  struct Workload {
    const char* name;
    const EmpiricalCdf* cdf;
  };
  const Workload workloads[] = {{"web-search", &EmpiricalCdf::WebSearch()},
                                {"gRPC", &EmpiricalCdf::Grpc()}};

  Table t({"traffic", "seq wall", "barrier(8)", "nullmsg(8)", "Unison(8)", "Unison(16)"});
  for (const Workload& w : workloads) {
    auto build = [n, sim, &w](bool manual) {
      return [n, sim, &w, manual](Network& net) {
        BCubeTopo topo = BuildBCube(net, n, 2, 10000000000ULL, Time::Microseconds(3));
        if (manual) {
          net.SetManualPartition(static_cast<uint32_t>(topo.switches[0].size()),
                                 BCubePartition(topo, net.num_nodes()));
        }
        net.Finalize();
        TrafficSpec traffic;
        traffic.hosts = topo.hosts;
        traffic.bisection_bps = topo.bisection_bps;
        traffic.load = 0.3;
        traffic.duration = sim;
        traffic.sizes = w.cdf;
        traffic.incast_ratio = 0.1;
        GenerateTraffic(net, traffic);
      };
    };

    SimConfig cfg;
    cfg.seed = 33;
    ApplyDcnTcp(&cfg);
    const double seq_s = SequentialWallSeconds(cfg, build(false), sim);

    SimConfig mcfg = cfg;
    mcfg.partition = PartitionMode::kManual;
    const TraceResult coarse = InstrumentedRun(mcfg, build(true), sim);
    ParallelCostModel cm(coarse.trace, coarse.num_lps);
    const double barrier_s =
        static_cast<double>(
            cm.Barrier(IdentityRanks(coarse.num_lps), coarse.num_lps, kBarrierSyncOverheadNs)
                .makespan_ns) *
        1e-9;
    const double nullmsg_s =
        static_cast<double>(
            cm.NullMessage(coarse.lp_neighbors, kNullMsgOverheadNs).makespan_ns) *
        1e-9;

    const TraceResult fine = InstrumentedRun(cfg, build(false), sim);
    ParallelCostModel fm(fine.trace, fine.num_lps);
    const double u8 = static_cast<double>(
                          fm.Unison(8, SchedulingMetric::kByLastRoundTime, 0,
                                    kUnisonRoundOverheadNs)
                              .makespan_ns) *
                      1e-9;
    const double u16 = static_cast<double>(
                           fm.Unison(16, SchedulingMetric::kByLastRoundTime, 0,
                                     kUnisonRoundOverheadNs)
                               .makespan_ns) *
                       1e-9;
    t.Row({w.name, Fmt("%.3f", seq_s), Fmt("%.1fx", seq_s / barrier_s),
           Fmt("%.1fx", seq_s / nullmsg_s), Fmt("%.1fx", seq_s / u8),
           Fmt("%.1fx", seq_s / u16)});
  }
  t.Print();
  std::printf("\nShape check: Unison posts the highest speedup for both traffic\n"
              "patterns; 16 threads beat 8 (flexibility beyond the 8 BCube0 LPs).\n");
}

void PartWan(bool full) {
  const Time sim = full ? Time::Seconds(2.0) : Time::Seconds(0.5);
  std::printf("\n(c) WAN backbones, RIP-style routing, 50%% web-search load\n\n");
  Table t({"network", "seq wall", "Unison(8, modeled)", "speedup"});
  for (WanName which : {WanName::kGeant, WanName::kChinaNet}) {
    auto build = [which, sim](Network& net) {
      WanTopo wan = BuildWan(net, which, 1000000000ULL, Time::Microseconds(100));
      net.EnableDistanceVector(Time::Milliseconds(100));
      net.Finalize();
      TrafficSpec traffic;
      traffic.hosts = wan.hosts;
      traffic.bisection_bps = wan.bisection_bps;
      traffic.load = 0.5;
      traffic.duration = sim;
      GenerateTraffic(net, traffic);
    };
    SimConfig cfg;
    cfg.seed = 35;
    cfg.tcp.min_rto = Time::Milliseconds(200);
    cfg.tcp.initial_rto = Time::Milliseconds(200);
    const double seq_s = SequentialWallSeconds(cfg, build, sim);
    const TraceResult fine = InstrumentedRun(cfg, build, sim);
    ParallelCostModel fm(fine.trace, fine.num_lps);
    const double u8 = static_cast<double>(
                          fm.Unison(8, SchedulingMetric::kByLastRoundTime, 0,
                                    kUnisonRoundOverheadNs)
                              .makespan_ns) *
                      1e-9;
    t.Row({which == WanName::kGeant ? "GEANT" : "ChinaNet", Fmt("%.3f", seq_s),
           Fmt("%.3f", u8), Fmt("%.1fx", seq_s / u8)});
  }
  t.Print();
  std::printf("\nShape check: super-linear (>8x) speedup is possible thanks to the\n"
              "cache boost; no manual partition exists for these irregular graphs.\n");
}

void PartReconf(bool full) {
  const Time sim = full ? Time::Milliseconds(100) : Time::Milliseconds(30);
  std::printf("\n(d) reconfigurable DCN (k=4 fat-tree, core layer swapped in/out)\n\n");
  Table t({"change interval", "sequential wall", "Unison(4, modeled)"});
  for (int64_t interval_ms : {1, 2, 5, 10}) {
    auto build = [sim, interval_ms](Network& net) {
      FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
      net.Finalize();
      std::vector<uint32_t> toggled;
      for (uint32_t i = 0; i < net.links().size(); ++i) {
        const auto& l = net.links()[i];
        for (size_t c = 1; c < topo.core_switches.size(); ++c) {
          if (l.a == topo.core_switches[c] || l.b == topo.core_switches[c]) {
            toggled.push_back(i);
          }
        }
      }
      // Owned by a heap box the network keeps alive via the first event's
      // capture chain; the bench's builder frame dies before Run, so a
      // stack reference would dangle. A non-self-referencing shared_ptr
      // chain (each event holds the box once) has no cycle.
      Network* netp = &net;
      const Time interval = Time::Milliseconds(interval_ms);
      struct Flipper {
        Network* net;
        std::vector<uint32_t> links;
        Time interval;
        void Fire(std::shared_ptr<Flipper> self, bool up) {
          for (uint32_t l : links) {
            net->SetLinkUp(l, up);
          }
          net->sim().ScheduleGlobal(net->sim().Now() + interval,
                                    [self, up] { self->Fire(self, !up); });
        }
      };
      auto flipper = std::make_shared<Flipper>(Flipper{netp, toggled, interval});
      net.sim().ScheduleGlobal(interval,
                               [flipper] { flipper->Fire(flipper, false); });

      TrafficSpec traffic;
      traffic.hosts = topo.hosts;
      traffic.bisection_bps = topo.bisection_bps;
      traffic.load = 0.3;
      traffic.duration = sim;
      GenerateTraffic(net, traffic);
    };
    SimConfig cfg;
    cfg.seed = 37;
    ApplyDcnTcp(&cfg);
    const double seq_s = SequentialWallSeconds(cfg, build, sim);
    const TraceResult fine = InstrumentedRun(cfg, build, sim);
    ParallelCostModel fm(fine.trace, fine.num_lps);
    const double u4 = static_cast<double>(
                          fm.Unison(4, SchedulingMetric::kByLastRoundTime, 0,
                                    kUnisonRoundOverheadNs)
                              .makespan_ns) *
                      1e-9;
    t.Row({Fmt("%ldms", interval_ms), Fmt("%.3f s", seq_s), Fmt("%.3f s", u4)});
  }
  t.Print();
  std::printf("\nShape check: both rows grow only mildly as reconfiguration gets\n"
              "more frequent — dynamic topology support costs Unison little.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  const std::string part = GetOpt(argc, argv, "--part", "all");
  std::printf("Figure 10 — generality across topologies and traffic patterns\n");
  if (part == "torus" || part == "all") {
    PartTorus(full);
  }
  if (part == "bcube" || part == "all") {
    PartBCube(full);
  }
  if (part == "wan" || part == "all") {
    PartWan(full);
  }
  if (part == "reconf" || part == "all") {
    PartReconf(full);
  }
  return 0;
}
