// Event hot-path microbenchmark: schedule + dispatch throughput on the
// packet-closure workload, std::function baseline vs the InlineFunction
// event representation (plus the bulk-drain receive path).
//
// The workload models what every link transmission does: construct an event
// whose closure captures a ~100-byte Packet by value, push it into a FEL,
// later pop it and invoke the closure. With std::function the capture
// exceeds the 16-byte SBO, so every event pays a malloc/free pair plus a
// cache miss chasing the heap pointer at dispatch. The InlineFunction event
// stores the capture inline and the FEL sifts with hole-based moves, so the
// same workload runs allocation-free.
//
// Emits BENCH_event_hotpath.json with both throughputs, the speedup, the
// inline-buffer fallback rate (must be 0 for packet closures), and the
// steady-state heap allocation counts (must be 0: the whole point of the
// inline representation and the drain-into-scratch receive path is that the
// warm hot path never touches the allocator).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/fel.h"
#include "src/core/inline_function.h"
#include "src/kernel/lp.h"
#include "src/net/packet.h"

// Counting operator new replacements: every heap allocation in the process
// bumps the counter, so a delta of zero around a measured region proves the
// region is allocation-free — closures, FEL growth, scratch buffers, all of
// it. Deletes are not counted; steady state is defined by allocations alone.
namespace {
std::atomic<uint64_t> g_heap_allocs{0};

inline void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align = static_cast<std::size_t>(al);
  void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace unison;
using namespace unison::bench;

namespace {

uint64_t HeapAllocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

// Allocations inside the most recent RunScheduleDispatch timed loop.
uint64_t g_timed_allocs = 0;

// Defeats dead-code elimination of the dispatched closures.
volatile uint64_t g_sink = 0;

// The seed's event representation: callback behind std::function.
struct BaselineEvent {
  EventKey key;
  NodeId node = kNoNode;
  std::function<void()> fn;
};

// The seed's FEL: swap-chain binary heap, per-event pushes. Templated so the
// baseline measurement runs the exact pre-optimization algorithm on the
// baseline event type.
template <typename Ev>
class SwapHeap {
 public:
  void Push(Ev ev) {
    heap_.push_back(std::move(ev));
    size_t i = heap_.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!(heap_[i].key < heap_[parent].key)) {
        break;
      }
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  Ev Pop() {
    Ev top = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    const size_t n = heap_.size();
    size_t i = 0;
    for (;;) {
      size_t smallest = i;
      const size_t l = 2 * i + 1;
      const size_t r = 2 * i + 2;
      if (l < n && heap_[l].key < heap_[smallest].key) {
        smallest = l;
      }
      if (r < n && heap_[r].key < heap_[smallest].key) {
        smallest = r;
      }
      if (smallest == i) {
        return top;
      }
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  bool Empty() const { return heap_.empty(); }

 private:
  std::vector<Ev> heap_;
};

Packet MakePacket(uint64_t i) {
  Packet pkt;
  pkt.kind = PacketKind::kTcpData;
  pkt.flow_id = static_cast<uint32_t>(i);
  pkt.src = static_cast<NodeId>(i & 0xff);
  pkt.dst = static_cast<NodeId>((i >> 8) & 0xff);
  pkt.size_bytes = kMss + kHeaderBytes;
  pkt.seq = i * kMss;
  pkt.payload = kMss;
  pkt.ts = Time::Nanoseconds(static_cast<int64_t>(i));
  return pkt;
}

EventKey MakeKey(uint64_t ts_ps, uint64_t seq) {
  return EventKey{Time::Picoseconds(static_cast<int64_t>(ts_ps)), Time::Zero(),
                  static_cast<NodeId>(seq & 0x3f), seq};
}

// Steady-state schedule/dispatch loop: keep `depth` events in flight; each
// iteration pops the earliest event, dispatches its packet closure, and
// schedules a replacement one delta later — the FEL access pattern of a
// saturated link. Returns events per second.
template <typename Heap, typename MakeEv>
double RunScheduleDispatch(size_t depth, uint64_t ops, const MakeEv& make_event) {
  Heap heap;
  uint64_t seq = 0;
  for (size_t i = 0; i < depth; ++i) {
    heap.Push(make_event(MakeKey(1000 + 7 * seq, seq), seq));
    ++seq;
  }
  {
    // One untimed cycle reaches the true steady state before the allocation
    // snapshot: the FEL's slot free list grows on the very first Pop.
    auto ev = heap.Pop();
    ev.fn();
    heap.Push(make_event(MakeKey(1000 + 7 * seq, seq), seq));
    ++seq;
  }
  const uint64_t allocs0 = HeapAllocs();
  const uint64_t t0 = Profiler::NowNs();
  for (uint64_t i = 0; i < ops; ++i) {
    auto ev = heap.Pop();
    ev.fn();
    heap.Push(make_event(MakeKey(1000 + 7 * seq, seq), seq));
    ++seq;
  }
  const uint64_t dt = Profiler::NowNs() - t0;
  g_timed_allocs = HeapAllocs() - allocs0;
  while (!heap.Empty()) {
    heap.Pop();
  }
  return dt == 0 ? 0.0 : static_cast<double>(ops) * 1e9 / static_cast<double>(dt);
}

BaselineEvent MakeBaselineEvent(const EventKey& key, uint64_t i) {
  Packet pkt = MakePacket(i);
  return BaselineEvent{key, pkt.dst,
                       [pkt = std::move(pkt)]() mutable { g_sink += pkt.seq; }};
}

Event MakeInlineEvent(const EventKey& key, uint64_t i) {
  Packet pkt = MakePacket(i);
  const NodeId node = pkt.dst;
  return Event{key, node, [pkt = std::move(pkt)]() mutable { g_sink += pkt.seq; }};
}

// Receive-phase drain: `batch` events arrive in a mailbox vector and move
// into a FEL holding `depth` events. Per-event pushes vs bulk PushAll.
double RunDrain(size_t depth, size_t batch, uint64_t reps, bool bulk) {
  FutureEventList fel;
  uint64_t seq = 0;
  uint64_t total_ns = 0;
  std::vector<Event> inbox;
  for (uint64_t r = 0; r < reps; ++r) {
    fel.Clear();
    for (size_t i = 0; i < depth; ++i) {
      fel.Push(MakeInlineEvent(MakeKey(1000 + 7 * seq, seq), seq));
      ++seq;
    }
    inbox.clear();
    for (size_t i = 0; i < batch; ++i) {
      inbox.push_back(MakeInlineEvent(MakeKey(500 + 3 * seq, seq), seq));
      ++seq;
    }
    const uint64_t t0 = Profiler::NowNs();
    if (bulk) {
      fel.PushAll(inbox);
    } else {
      for (Event& ev : inbox) {
        fel.Push(std::move(ev));
      }
      inbox.clear();
    }
    total_ns += Profiler::NowNs() - t0;
  }
  return total_ns == 0
             ? 0.0
             : static_cast<double>(batch * reps) * 1e9 / static_cast<double>(total_ns);
}

// Overflow slow path at steady state: Push a batch into the LP's OverflowBox,
// DrainInto the LP's reusable scratch, bulk-push into the FEL, dispatch.
// After warm cycles every buffer (box, scratch, FEL) sits at its high-water
// capacity, so the measured cycles must not allocate at all.
uint64_t OverflowDrainSteadyStateAllocs(size_t batch, int warm_cycles,
                                        int measured_cycles) {
  Lp lp(0, /*deterministic=*/true);
  uint64_t seq = 0;
  auto cycle = [&] {
    for (size_t i = 0; i < batch; ++i) {
      lp.overflow().Push(MakeInlineEvent(MakeKey(1000 + 7 * seq, seq), seq));
      ++seq;
    }
    lp.DrainInboxes();
    lp.ProcessUntil(Time::Picoseconds(INT64_MAX));
  };
  for (int i = 0; i < warm_cycles; ++i) {
    cycle();
  }
  const uint64_t allocs0 = HeapAllocs();
  for (int i = 0; i < measured_cycles; ++i) {
    cycle();
  }
  return HeapAllocs() - allocs0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string ops_arg =
      GetOpt(argc, argv, "--ops",
             HasFlag(argc, argv, "--quick") ? "200000" : "1000000");
  uint64_t ops = 0;
  try {
    size_t used = 0;
    ops = std::stoull(ops_arg, &used);
    if (used != ops_arg.size() || ops == 0) {
      throw std::invalid_argument(ops_arg);
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "error: --ops requires a positive integer, got '%s'\n",
                 ops_arg.c_str());
    return 2;
  }
  const std::vector<size_t> depths = {256, 4096};

  std::printf("Event hot path: schedule+dispatch throughput, packet-closure "
              "workload (%llu ops/config)\n\n",
              static_cast<unsigned long long>(ops));

  Table table({"fel depth", "std::function Mev/s", "inline Mev/s", "speedup",
               "fallbacks", "allocs"});
  double worst_speedup = 1e30;
  double baseline_mops = 0;
  double inline_mops = 0;
  uint64_t packet_fallbacks = 0;
  uint64_t steady_state_allocs = 0;
  for (const size_t depth : depths) {
    // Warm up both paths once so allocator and cache state are comparable.
    RunScheduleDispatch<SwapHeap<BaselineEvent>>(depth, ops / 10, MakeBaselineEvent);
    const double base =
        RunScheduleDispatch<SwapHeap<BaselineEvent>>(depth, ops, MakeBaselineEvent);

    RunScheduleDispatch<FutureEventList>(depth, ops / 10, MakeInlineEvent);
    InlineFunctionStats::ResetAllocFallbacks();
    const double inl =
        RunScheduleDispatch<FutureEventList>(depth, ops, MakeInlineEvent);
    const uint64_t fallbacks = InlineFunctionStats::alloc_fallbacks();
    // The inline timed loop pops and re-pushes at a fixed depth: the FEL is
    // at its high-water capacity and every closure fits the inline buffer,
    // so the loop must be allocation-free.
    const uint64_t allocs = g_timed_allocs;
    steady_state_allocs += allocs;

    const double speedup = base == 0 ? 0 : inl / base;
    worst_speedup = std::min(worst_speedup, speedup);
    if (depth == depths.front()) {
      baseline_mops = base * 1e-6;
      inline_mops = inl * 1e-6;
      packet_fallbacks = fallbacks;
    }
    table.Row({Fmt("%zu", depth), Fmt("%.2f", base * 1e-6), Fmt("%.2f", inl * 1e-6),
               Fmt("%.2fx", speedup), Fmt("%llu", static_cast<unsigned long long>(fallbacks)),
               Fmt("%llu", static_cast<unsigned long long>(allocs))});
  }
  table.Print();

  // Oversized captures must still work, via the counted heap fallback.
  InlineFunctionStats::ResetAllocFallbacks();
  {
    struct Big {
      unsigned char blob[256] = {1};
    } big;
    EventFn oversized = [big]() { g_sink += big.blob[0]; };
    oversized();
  }
  const uint64_t oversize_fallbacks = InlineFunctionStats::alloc_fallbacks();

  const size_t drain_batch = 512;
  const uint64_t drain_reps = std::max<uint64_t>(1, ops / (drain_batch * 8));
  const double drain_per_event = RunDrain(2048, drain_batch, drain_reps, false);
  const double drain_bulk = RunDrain(2048, drain_batch, drain_reps, true);
  std::printf("\nReceive-phase drain (%zu-event batches into a 2048-event FEL):\n",
              drain_batch);
  Table drain({"path", "Mev/s"});
  drain.Row({"per-event Push", Fmt("%.2f", drain_per_event * 1e-6)});
  drain.Row({"bulk PushAll", Fmt("%.2f", drain_bulk * 1e-6)});
  drain.Print();

  const uint64_t overflow_allocs =
      OverflowDrainSteadyStateAllocs(/*batch=*/256, /*warm_cycles=*/4,
                                     /*measured_cycles=*/32);
  std::printf("\noverflow Push -> DrainInto -> PushAll steady-state allocations: "
              "%llu (expected 0)\n",
              static_cast<unsigned long long>(overflow_allocs));

  std::printf("oversize-capture fallbacks counted: %llu (expected 1)\n",
              static_cast<unsigned long long>(oversize_fallbacks));
  const bool pass = worst_speedup >= 1.2 && packet_fallbacks == 0 &&
                    steady_state_allocs == 0 && overflow_allocs == 0;
  std::printf("%s: worst speedup %.2fx (target >= 1.20x), packet fallback rate "
              "%llu, steady-state allocs %llu\n",
              pass ? "PASS" : "FAIL", worst_speedup,
              static_cast<unsigned long long>(packet_fallbacks),
              static_cast<unsigned long long>(steady_state_allocs + overflow_allocs));

  FILE* out = std::fopen("BENCH_event_hotpath.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"workload\": \"packet-closure schedule+dispatch\",\n"
                 "  \"ops_per_config\": %llu,\n"
                 "  \"baseline_std_function_mops\": %.3f,\n"
                 "  \"inline_function_mops\": %.3f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"worst_speedup\": %.3f,\n"
                 "  \"packet_closure_fallbacks\": %llu,\n"
                 "  \"packet_closure_fallback_rate\": %.6f,\n"
                 "  \"oversize_capture_fallbacks\": %llu,\n"
                 "  \"steady_state_allocs\": %llu,\n"
                 "  \"overflow_drain_allocs\": %llu,\n"
                 "  \"drain_per_event_mops\": %.3f,\n"
                 "  \"drain_bulk_mops\": %.3f,\n"
                 "  \"event_inline_bytes\": %zu,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 static_cast<unsigned long long>(ops), baseline_mops, inline_mops,
                 baseline_mops == 0 ? 0.0 : inline_mops / baseline_mops, worst_speedup,
                 static_cast<unsigned long long>(packet_fallbacks),
                 static_cast<double>(packet_fallbacks) / static_cast<double>(ops),
                 static_cast<unsigned long long>(oversize_fallbacks),
                 static_cast<unsigned long long>(steady_state_allocs),
                 static_cast<unsigned long long>(overflow_allocs),
                 drain_per_event * 1e-6, drain_bulk * 1e-6, kEventFnInlineBytes,
                 pass ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_event_hotpath.json\n");
  }
  return pass ? 0 : 1;
}
