// Claim-order drift replay (ROADMAP item): how much does a stale LPT claim
// order cost, as a function of the re-sort period?
//
// An instrumented single-worker Unison run on the recurring fat-tree scenario
// records the true per-(round, LP) costs. ReplayClaimOrderDrift then replays
// that matrix through LPT list scheduling twice per staleness k — the
// clairvoyant oracle re-sorts every round on the true costs, the kernel
// policy re-sorts every k rounds on the *previous* round's costs — and
// reports the mean makespan inflation. The resulting payoff curve is where
// ControllerConfig's drift_shrink/drift_grow defaults come from, and
// RecommendPeriod's pick is compared against the paper's static
// ceil(log2 n) (§4.3).
//
// The replay is a pure function of the recorded costs, so the curve is
// deterministic for a fixed scenario regardless of host load — the bench
// verifies that by replaying twice.
//
// Emits BENCH_claim_drift.json.
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/control/drift_replay.h"

using namespace unison;
using namespace unison::bench;

int main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "--quick");
  SetTraceFromArgs(argc, argv);

  FatTreeScenario sc;
  sc.k = quick ? 4 : 8;
  sc.load = 0.3;
  sc.duration = Time::Milliseconds(quick ? 2 : 5);
  SimConfig cfg;
  ApplyDcnTcp(&cfg);

  std::printf("claim-order drift replay: k=%u fat-tree, %s\n", sc.k,
              quick ? "quick" : "full");
  const TraceResult rec = InstrumentedRun(cfg, FatTreeBuilder(sc), sc.duration);
  std::printf("  recorded %llu rounds x %u LPs (%llu events)\n",
              static_cast<unsigned long long>(rec.rounds), rec.num_lps,
              static_cast<unsigned long long>(rec.events));

  // Cost matrix [round][lp] from the recorded per-round event counts (event
  // counts, not cpu_ns: they are bit-deterministic across runs and hosts).
  std::vector<std::vector<uint64_t>> costs(
      rec.rounds, std::vector<uint64_t>(rec.num_lps, 0));
  for (const LpRoundCost& c : rec.trace) {
    if (c.round < costs.size() && c.lp < rec.num_lps) {
      costs[c.round][c.lp] += c.events;
    }
  }

  const uint32_t workers = 4;  // Modelled claim consumers.
  std::vector<uint32_t> stalenesses = {1, 2, 4, 8, 16, 32, 64};
  const auto curve = ReplayClaimOrderDrift(costs, workers, stalenesses);
  const auto replayed = ReplayClaimOrderDrift(costs, workers, stalenesses);
  bool deterministic = curve.size() == replayed.size();
  for (size_t i = 0; deterministic && i < curve.size(); ++i) {
    deterministic = curve[i].staleness == replayed[i].staleness &&
                    curve[i].makespan_ratio == replayed[i].makespan_ratio;
  }

  const double tolerance = 0.05;
  const uint32_t recommended = RecommendPeriod(curve, tolerance);
  const uint32_t log2_default = std::bit_width(
      std::max(2u, rec.num_lps) - 1);  // The paper's ceil(log2 n).

  Table table({"staleness k", "makespan ratio", "inflation %"});
  for (const DriftReplayPoint& pt : curve) {
    table.Row({Fmt("%u", pt.staleness), Fmt("%.4f", pt.makespan_ratio),
               Fmt("%.2f", (pt.makespan_ratio - 1.0) * 100.0)});
  }
  table.Print();
  std::printf("  recommended period (tol %.0f%%): %u   ceil(log2 n): %u\n",
              tolerance * 100.0, recommended, log2_default);

  // The oracle is the freshest possible order, so the curve's baseline must
  // sit at ~1.0 and the replay must be a pure function of the recording.
  const bool pass = deterministic && !curve.empty() &&
                    curve[0].makespan_ratio >= 0.99 && recommended >= 1;

  FILE* out = std::fopen("BENCH_claim_drift.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n  \"bench\": \"claim_drift\",\n  \"quick\": %s,\n"
                 "  \"rounds\": %llu,\n  \"lps\": %u,\n  \"workers\": %u,\n",
                 quick ? "true" : "false",
                 static_cast<unsigned long long>(rec.rounds), rec.num_lps,
                 workers);
    std::fprintf(out, "  \"curve\": [");
    for (size_t i = 0; i < curve.size(); ++i) {
      std::fprintf(out, "%s{\"staleness\": %u, \"ratio\": %.6f}",
                   i == 0 ? "" : ", ", curve[i].staleness,
                   curve[i].makespan_ratio);
    }
    std::fprintf(out, "],\n");
    std::fprintf(out,
                 "  \"tolerance\": %.3f,\n  \"recommended_period\": %u,\n"
                 "  \"log2_default\": %u,\n  \"deterministic\": %s,\n"
                 "  \"baseline_ratio\": %.6f,\n  \"pass\": %s\n}\n",
                 tolerance, recommended, log2_default,
                 deterministic ? "true" : "false",
                 curve.empty() ? 0.0 : curve[0].makespan_ratio,
                 pass ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_claim_drift.json\n");
  }
  return pass ? 0 : 1;
}
