// Figure 13 (appendix): processing time per LP (barrier baseline) and per
// thread (Unison) in consecutive 100-round buckets — the heatmap showing
// that per-LP load is skewed but temporally stable, and that Unison's
// scheduler flattens it across threads.
//
// Rendered as text matrices of seconds per bucket.
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

void PrintMatrix(const char* title, const std::vector<std::vector<double>>& rows,
                 const char* row_label) {
  std::printf("%s\n\n", title);
  std::vector<std::string> header = {std::string(row_label)};
  for (size_t b = 0; b < rows[0].size(); ++b) {
    header.push_back(Fmt("b%zu", b));
  }
  Table t(header);
  for (size_t r = 0; r < rows.size(); ++r) {
    std::vector<std::string> cells = {Fmt("%zu", r)};
    for (double v : rows[r]) {
      cells.push_back(Fmt("%.3f", v));
    }
    t.Row(cells);
  }
  t.Print();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  FatTreeScenario sc;
  sc.k = full ? 8 : 4;
  sc.load = 0.5;
  sc.incast_ratio = 0.3;  // Skew so per-LP imbalance is visible.
  sc.duration = full ? Time::Milliseconds(10) : Time::Milliseconds(4);
  const uint32_t buckets = 8;

  std::printf("Figure 13 — per-LP vs per-thread processing time heatmap\n"
              "(k=%u fat-tree, %u round-buckets; seconds per bucket)\n\n",
              sc.k, buckets);

  // (a) Barrier baseline: per-pod LP processing per bucket.
  FatTreeScenario manual = sc;
  manual.manual = true;
  SimConfig cfg;
  cfg.seed = 61;
  ApplyDcnTcp(&cfg);
  cfg.partition = PartitionMode::kManual;
  const TraceResult coarse = InstrumentedRun(cfg, FatTreeBuilder(manual), sc.duration);
  ParallelCostModel cm(coarse.trace, coarse.num_lps);
  {
    const auto& costs = cm.round_costs();
    const uint32_t rounds = cm.rounds();
    const uint32_t per = std::max(1u, rounds / buckets);
    std::vector<std::vector<double>> matrix(coarse.num_lps,
                                            std::vector<double>(buckets, 0));
    for (uint32_t r = 0; r < rounds; ++r) {
      const uint32_t b = std::min(buckets - 1, r / per);
      for (uint32_t lp = 0; lp < coarse.num_lps; ++lp) {
        matrix[lp][b] += static_cast<double>(costs[r][lp]) * 1e-9;
      }
    }
    PrintMatrix("(a) barrier synchronization: P per LP (pods) per bucket", matrix, "LP");
    std::printf("\nShape check: rows differ a lot (spatial skew) but each row is\n"
                "smooth across buckets (temporal locality, §4.3).\n\n");
  }

  // (b) Unison: per-thread P per bucket from the modeled LPT assignment.
  SimConfig fcfg;
  fcfg.seed = 61;
  ApplyDcnTcp(&fcfg);
  const TraceResult fine = InstrumentedRun(fcfg, FatTreeBuilder(sc), sc.duration);
  ParallelCostModel fm(fine.trace, fine.num_lps);
  const uint32_t threads = sc.k;
  {
    // Re-run the schedule per round to attribute costs to threads.
    const auto& costs = fm.round_costs();
    const auto& events = fm.round_events();
    (void)events;
    const uint32_t rounds = fm.rounds();
    const uint32_t per = std::max(1u, rounds / buckets);
    std::vector<std::vector<double>> matrix(threads, std::vector<double>(buckets, 0));
    std::vector<uint64_t> estimate(fine.num_lps, 0);
    std::vector<uint32_t> order(fine.num_lps);
    for (uint32_t i = 0; i < fine.num_lps; ++i) {
      order[i] = i;
    }
    std::vector<uint32_t> assignment;
    for (uint32_t r = 0; r < rounds; ++r) {
      if (r > 0) {
        estimate = costs[r - 1];
        order = SortByCostDescending(estimate);
      }
      ListScheduleMakespan(costs[r], order, threads, &assignment);
      const uint32_t b = std::min(buckets - 1, r / per);
      for (uint32_t lp = 0; lp < fine.num_lps; ++lp) {
        matrix[assignment[lp]][b] += static_cast<double>(costs[r][lp]) * 1e-9;
      }
    }
    PrintMatrix("(b) Unison: P per thread per bucket (load-adaptive schedule)", matrix,
                "thr");
    std::printf("\nShape check: rows are nearly equal — the scheduler balanced the\n"
                "skew of (a) across threads, and totals are lower (cache boost).\n");
  }
  return 0;
}
