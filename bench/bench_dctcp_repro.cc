// §6.2's DCTCP reproduction: "We further adapt and run the existing DCTCP
// evaluation with Unison, which achieves 2.5x speedup with 4 threads ...
// successfully reproduced the simulation results including per-flow
// throughput, Jain index and average queue delay."
//
// The classic DCTCP result: N long-lived flows share one bottleneck; DCTCP
// with a step-marking queue achieves the same aggregate throughput and
// fairness as NewReno while keeping the queue an order of magnitude shorter.
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct DctcpResult {
  double agg_throughput_mbps = 0;
  double jain = 0;
  double queue_delay_us = 0;
  double drops = 0;
  double marks = 0;
};

DctcpResult RunDctcp(bool dctcp, KernelType kernel, uint32_t threads, Time sim) {
  SimConfig cfg;
  cfg.kernel.type = kernel;
  cfg.kernel.threads = threads;
  cfg.seed = 91;
  cfg.tcp.dctcp = dctcp;
  cfg.tcp.min_rto = Time::Milliseconds(1);
  cfg.tcp.initial_rto = Time::Milliseconds(1);
  if (dctcp) {
    cfg.queue.kind = QueueConfig::Kind::kDctcp;
    cfg.queue.red_min_th = 65 * 1500;  // K = 65 packets (DCTCP's 10G value).
    cfg.queue.capacity_bytes = 500 * 1500;
  } else {
    cfg.queue.kind = QueueConfig::Kind::kDropTail;
    cfg.queue.capacity_bytes = 500 * 1500;
  }

  Network net(cfg);
  // The DCTCP testbed shape: N senders into one switch, one 10G bottleneck.
  constexpr int kSenders = 8;
  const NodeId sw = net.AddNode();
  const NodeId sink = net.AddNode();
  net.AddLink(sw, sink, 10000000000ULL, Time::Microseconds(25));
  std::vector<NodeId> senders;
  for (int i = 0; i < kSenders; ++i) {
    const NodeId h = net.AddNode();
    net.AddLink(h, sw, 10000000000ULL, Time::Microseconds(25));
    senders.push_back(h);
  }
  net.Finalize();
  // Long-lived flows: big enough to run for the whole window.
  for (int i = 0; i < kSenders; ++i) {
    InstallFlow(net, FlowSpec{senders[i], sink, 1ULL << 31,
                              Time::Microseconds(10 * i), {}});
  }
  net.Run(sim);

  DctcpResult out;
  double sum = 0;
  double sum_sq = 0;
  net.flow_monitor().ForEachFlow([&](const FlowRecord& f) {
    const double mbps =
        static_cast<double>(f.rx_bytes) * 8 / sim.ToSeconds() / 1e6;
    sum += mbps;
    sum_sq += mbps * mbps;
  });
  out.agg_throughput_mbps = sum;
  out.jain = sum * sum / (kSenders * sum_sq);
  const auto q = net.AggregateQueueStats();
  out.queue_delay_us = q.mean_delay_us();
  out.drops = static_cast<double>(q.dropped);
  out.marks = static_cast<double>(q.ecn_marked);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  const Time sim = full ? Time::Milliseconds(200) : Time::Milliseconds(50);

  std::printf("DCTCP reproduction (§6.2) — 8 long flows over one 10G bottleneck,\n"
              "%.0fms simulated\n\n", sim.ToMilliseconds());

  Table t({"stack", "agg throughput (Mbps)", "Jain index", "queue delay (us)",
           "drops", "ECN marks"});
  const DctcpResult reno = RunDctcp(false, KernelType::kUnison, 4, sim);
  const DctcpResult dctcp = RunDctcp(true, KernelType::kUnison, 4, sim);
  t.Row({"NewReno+DropTail", Fmt("%.0f", reno.agg_throughput_mbps),
         Fmt("%.3f", reno.jain), Fmt("%.1f", reno.queue_delay_us),
         Fmt("%.0f", reno.drops), Fmt("%.0f", reno.marks)});
  t.Row({"DCTCP", Fmt("%.0f", dctcp.agg_throughput_mbps), Fmt("%.3f", dctcp.jain),
         Fmt("%.1f", dctcp.queue_delay_us), Fmt("%.0f", dctcp.drops),
         Fmt("%.0f", dctcp.marks)});
  t.Print();

  // The speedup claim: the adapted model under Unison with 4 threads vs the
  // sequential kernel, via the instrumented cost model.
  SimConfig icfg;
  icfg.seed = 91;
  icfg.tcp.dctcp = true;
  icfg.tcp.min_rto = Time::Milliseconds(1);
  icfg.tcp.initial_rto = Time::Milliseconds(1);
  icfg.queue.kind = QueueConfig::Kind::kDctcp;
  icfg.queue.red_min_th = 65 * 1500;
  icfg.queue.capacity_bytes = 500 * 1500;
  auto build = [](Network& net) {
    const NodeId sw = net.AddNode();
    const NodeId sink = net.AddNode();
    net.AddLink(sw, sink, 10000000000ULL, Time::Microseconds(25));
    std::vector<NodeId> senders;
    for (int i = 0; i < 8; ++i) {
      const NodeId h = net.AddNode();
      net.AddLink(h, sw, 10000000000ULL, Time::Microseconds(25));
      senders.push_back(h);
    }
    net.Finalize();
    for (int i = 0; i < 8; ++i) {
      InstallFlow(net, FlowSpec{senders[i], sink, 1ULL << 31,
                                Time::Microseconds(10 * i), {}});
    }
  };
  uint64_t events = 0;
  const double seq_s = SequentialWallSeconds(icfg, build, sim, &events);
  const TraceResult trace = InstrumentedRun(icfg, build, sim);
  ParallelCostModel model(trace.trace, trace.num_lps);
  const double u4 = static_cast<double>(model
                                            .Unison(4, SchedulingMetric::kByLastRoundTime,
                                                    0, kUnisonRoundOverheadNs)
                                            .makespan_ns) *
                    1e-9;
  std::printf("\nUnison speedup on this model with 4 threads: %.1fx "
              "(paper: 2.5x; %lu events)\n", seq_s / u4, (unsigned long)events);

  std::printf("\nShape check: both stacks fill the 10G pipe with Jain ~1.0; DCTCP's\n"
              "queueing delay is several times lower, trading drops for marks —\n"
              "the DCTCP paper's headline, reproduced through the Unison kernel.\n");
  return 0;
}
