// Ablation: flow-level (fluid, max-min fair) estimation vs packet-level DES
// — the "mathematical modeling" estimator class of the paper's related work
// (§8). Quantifies both sides of the trade: the fluid model is orders of
// magnitude faster but, treating the network as a black box, it misses
// slow start, queueing delay and retransmissions — worst on short flows.
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  const Time sim = full ? Time::Milliseconds(50) : Time::Milliseconds(20);

  SimConfig cfg;
  cfg.seed = 97;
  cfg.kernel.type = KernelType::kSequential;
  cfg.tcp.dctcp = true;  // High-utilization transport: fluid's best case.
  cfg.tcp.min_rto = Time::Milliseconds(1);
  cfg.tcp.initial_rto = Time::Milliseconds(1);
  cfg.queue.kind = QueueConfig::Kind::kDctcp;
  cfg.queue.red_min_th = 65 * 1500;

  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, 4, 10000000000ULL, Time::Microseconds(3));
  net.Finalize();
  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.4;
  traffic.duration = sim;
  GenerateTraffic(net, traffic);

  // Fluid pass over the exact same flows and paths.
  std::vector<FluidFlow> flows;
  net.flow_monitor().ForEachFlow([&flows](const FlowRecord& f) {
    flows.push_back(FluidFlow{f.src, f.dst, f.bytes, f.start});
  });
  FlowLevelSimulator fluid(net);
  const uint64_t f0 = Profiler::NowNs();
  const auto est = fluid.Run(flows, sim + Time::Seconds(1));
  const double fluid_s = static_cast<double>(Profiler::NowNs() - f0) * 1e-9;

  // Packet-level ground truth.
  const uint64_t p0 = Profiler::NowNs();
  net.Run(sim + Time::Seconds(1));
  const double packet_s = static_cast<double>(Profiler::NowNs() - p0) * 1e-9;

  // Per-size-class FCT error of the fluid estimate.
  struct Bucket {
    const char* name;
    uint64_t lo, hi;
    double err_sum = 0;
    uint64_t n = 0;
  };
  Bucket buckets[] = {{"short (<100KB)", 0, 100000, 0, 0},
                      {"medium (100KB-1MB)", 100000, 1000000, 0, 0},
                      {"long (>1MB)", 1000000, UINT64_MAX, 0, 0}};
  uint64_t both = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    const FlowRecord& real = net.flow_monitor().flow(static_cast<uint32_t>(i));
    if (!real.completed || !est[i].completed || real.fct.ps() == 0) {
      continue;
    }
    ++both;
    for (Bucket& b : buckets) {
      if (flows[i].bytes >= b.lo && flows[i].bytes < b.hi) {
        b.err_sum +=
            std::abs(est[i].fct.ToSeconds() - real.fct.ToSeconds()) / real.fct.ToSeconds();
        ++b.n;
      }
    }
  }

  std::printf("Ablation — flow-level (max-min fluid) vs packet-level DES\n"
              "(k=4 fat-tree, DCTCP, %zu flows; %lu compared)\n\n",
              flows.size(), (unsigned long)both);
  Table t({"flow class", "flows", "mean |FCT error|"});
  for (const Bucket& b : buckets) {
    t.Row({b.name, Fmt("%lu", (unsigned long)b.n),
           b.n == 0 ? "-" : Fmt("%.0f%%", 100 * b.err_sum / static_cast<double>(b.n))});
  }
  t.Print();
  std::printf("\nruntime: fluid %.4fs vs packet-level %.3fs (%.0fx faster)\n", fluid_s,
              packet_s, packet_s / std::max(1e-9, fluid_s));
  std::printf("\nShape check: the fluid model is dramatically faster but its error\n"
              "concentrates on short flows (no slow start, no queueing) — why\n"
              "packet-level DES remains the ground truth the paper accelerates.\n");
  return 0;
}
