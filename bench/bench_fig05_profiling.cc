// Figure 5: why existing PDES is slow — the P/S/M decomposition of the
// barrier-synchronization (B) and null-message (N) baselines on a k=8
// fat-tree with the symmetric pod partition.
//
//   --part=a  P and S versus incast traffic ratio (Obs. 1: S dominates as
//             skew grows, >70% at ratio 1).
//   --part=b  Per-round S/T of the barrier algorithm under balanced traffic
//             (Obs. 2: transient imbalance keeps S/T high).
//   --part=c  S/T versus link delay (Obs. 3: low latency -> high S).
//   --part=d  S/T versus link bandwidth at fixed load (Obs. 3).
//
// Default runs every part on a scaled-down k=4 tree; --full uses k=8.
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct Decomposition {
  double p_s = 0;  // Mean per-executor processing seconds.
  double s_s = 0;  // Mean per-executor synchronization seconds.
  double total_s = 0;
  double SRatio() const { return total_s == 0 ? 0 : s_s / total_s; }
};

Decomposition Decompose(const ModelResult& r) {
  Decomposition d;
  const size_t n = r.executor_p_ns.size();
  for (size_t i = 0; i < n; ++i) {
    d.p_s += static_cast<double>(r.executor_p_ns[i]) * 1e-9;
    d.s_s += static_cast<double>(r.executor_s_ns[i]) * 1e-9;
  }
  d.p_s /= static_cast<double>(n);
  d.s_s /= static_cast<double>(n);
  d.total_s = static_cast<double>(r.makespan_ns) * 1e-9;
  return d;
}

struct BaselineModels {
  Decomposition barrier;
  Decomposition nullmsg;
  ModelResult barrier_raw;
  ParallelCostModel model{{}, 0};
};

BaselineModels RunBaselines(const FatTreeScenario& sc) {
  FatTreeScenario manual = sc;
  manual.manual = true;
  SimConfig cfg;
  cfg.seed = 17;
  ApplyDcnTcp(&cfg);
  cfg.partition = PartitionMode::kManual;
  const TraceResult trace = InstrumentedRun(cfg, FatTreeBuilder(manual), sc.duration);
  BaselineModels out;
  out.model = ParallelCostModel(trace.trace, trace.num_lps);
  out.barrier_raw = out.model.Barrier(IdentityRanks(trace.num_lps), trace.num_lps,
                                      kBarrierSyncOverheadNs);
  out.barrier = Decompose(out.barrier_raw);
  out.nullmsg = Decompose(out.model.NullMessage(trace.lp_neighbors, kNullMsgOverheadNs));
  return out;
}

void PartA(const FatTreeScenario& base) {
  std::printf("\n(a) P, S versus incast traffic ratio (per-LP means, seconds)\n\n");
  Table t({"incast ratio", "P_B", "S_B", "S_B/T", "P_N", "S_N", "S_N/T"});
  for (double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    FatTreeScenario sc = base;
    sc.incast_ratio = ratio;
    const BaselineModels m = RunBaselines(sc);
    t.Row({Fmt("%.2f", ratio), Fmt("%.4f", m.barrier.p_s), Fmt("%.4f", m.barrier.s_s),
           Fmt("%.0f%%", 100 * m.barrier.SRatio()), Fmt("%.4f", m.nullmsg.p_s),
           Fmt("%.4f", m.nullmsg.s_s), Fmt("%.0f%%", 100 * m.nullmsg.SRatio())});
  }
  t.Print();
  std::printf("\nShape check: S grows with skew and dominates (>70%%) at ratio 1.\n");
}

void PartB(const FatTreeScenario& base) {
  std::printf("\n(b) per-round S/T of barrier sync under balanced traffic\n\n");
  const BaselineModels m = RunBaselines(base);
  const auto& costs = m.model.round_costs();
  Table t({"round bucket", "mean S/T", "max S/T"});
  const uint32_t rounds = std::min<uint32_t>(1000, m.model.rounds());
  const uint32_t bucket = std::max(1u, rounds / 10);
  for (uint32_t b = 0; b * bucket < rounds; ++b) {
    double sum = 0;
    double mx = 0;
    uint32_t n = 0;
    for (uint32_t r = b * bucket; r < std::min(rounds, (b + 1) * bucket); ++r) {
      uint64_t total = 0;
      uint64_t span = 0;
      for (uint64_t c : costs[r]) {
        total += c;
        span = std::max(span, c);
      }
      if (span == 0) {
        continue;
      }
      // Mean S/T across ranks for this round.
      const double mean_p = static_cast<double>(total) / costs[r].size();
      const double st = 1.0 - mean_p / static_cast<double>(span);
      sum += st;
      mx = std::max(mx, st);
      ++n;
    }
    if (n > 0) {
      t.Row({Fmt("%u-%u", b * bucket, (b + 1) * bucket - 1), Fmt("%.2f", sum / n),
             Fmt("%.2f", mx)});
    }
  }
  t.Print();
  std::printf("\nShape check: S/T stays substantial (>~20%%) in every bucket even\n"
              "though the macro traffic is balanced (transient imbalance).\n");
}

void PartC(const FatTreeScenario& base) {
  std::printf("\n(c) S/T versus link delay (10Gbps links)\n\n");
  Table t({"link delay", "S_B/T", "S_N/T"});
  for (int64_t us : {3, 30, 300, 3000}) {
    FatTreeScenario sc = base;
    sc.bps = 10000000000ULL;
    sc.delay = Time::Microseconds(us);
    const BaselineModels m = RunBaselines(sc);
    t.Row({Fmt("%ldus", us), Fmt("%.2f", m.barrier.SRatio()),
           Fmt("%.2f", m.nullmsg.SRatio())});
  }
  t.Print();
  std::printf("\nShape check: S/T falls as propagation delay (window size) grows.\n");
}

void PartD(const FatTreeScenario& base) {
  std::printf("\n(d) S/T versus link bandwidth (30us links, fixed offered load)\n\n");
  Table t({"bandwidth", "S_B/T", "S_N/T"});
  for (uint64_t gbps : {2, 4, 6, 8, 10}) {
    FatTreeScenario sc = base;
    sc.bps = gbps * 1000000000ULL;
    sc.delay = Time::Microseconds(30);
    // Fixed absolute offered traffic: scale the load fraction inversely
    // with bandwidth (the paper keeps per-host traffic constant).
    sc.load = base.load * 10.0 / static_cast<double>(gbps);
    const BaselineModels m = RunBaselines(sc);
    t.Row({Fmt("%luG", (unsigned long)gbps), Fmt("%.2f", m.barrier.SRatio()),
           Fmt("%.2f", m.nullmsg.SRatio())});
  }
  t.Print();
  std::printf("\nShape check: S/T rises with bandwidth at fixed offered traffic.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  const std::string part = GetOpt(argc, argv, "--part", "all");
  SetTraceFromArgs(argc, argv);

  FatTreeScenario base;
  base.k = full ? 8 : 4;
  base.load = 0.5;
  base.duration = full ? Time::Milliseconds(10) : Time::Milliseconds(3);

  std::printf("Figure 5 — time decomposition of existing PDES (k=%u fat-tree,\n"
              "pod partition, modeled from instrumented traces)\n", base.k);

  if (part == "a" || part == "all") {
    PartA(base);
  }
  if (part == "b" || part == "all") {
    PartB(base);
  }
  if (part == "c" || part == "all") {
    PartC(base);
  }
  if (part == "d" || part == "all") {
    PartD(base);
  }
  return 0;
}
