// Closed-loop self-tuning on an oversubscribed host: static KernelConfig
// defaults vs the live tuning plane (tuning=auto), same scenario, same
// results.
//
// The static run drives a Unison kernel with several times more worker
// threads than the machine has cores — the configuration PARSIR (PAPERS.md)
// warns about, where every reduction barrier parks in the futex behind
// descheduled peers. The tuned run starts from the identical config with
// TuningMode::kAuto: the controller watches parked/round at each window
// boundary and fits the party count to the actual machine, while the
// window-horizon rule keeps the observation cadence up.
//
// The pass criteria are the refactor's contract, not raw speed: bit-identical
// FlowMonitor fingerprints (tuning must never change results), at least one
// published decision, and a final party count that fits the machine. Wall
// times are reported honestly for whatever host runs this; the speedup is
// CI-gated with a generous floor because barrier overhead is only a fraction
// of a small scenario's runtime.
//
// Emits BENCH_self_tuning.json.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/kernel/engine/cpu_topology.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct TunedRun {
  uint64_t wall_ns = 0;
  uint64_t fingerprint = 0;
  uint64_t events = 0;
  uint32_t windows = 0;
  uint32_t final_parties = 0;
  uint64_t final_epoch = 0;
  size_t decisions = 0;
  std::string rules;
};

TunedRun RunOnce(SimConfig cfg, const FatTreeScenario& sc) {
  Network net(cfg);
  FatTreeBuilder(sc)(net);
  const uint64_t t0 = Profiler::NowNs();
  net.Run(sc.duration);
  TunedRun out;
  out.wall_ns = Profiler::NowNs() - t0;
  out.fingerprint = net.flow_monitor().Fingerprint();
  out.events = net.kernel().session_events();
  out.windows = net.kernel().session_windows();
  out.final_parties = net.kernel().window_tuning().parties;
  out.final_epoch = net.kernel().window_tuning().epoch;
  if (net.controller() != nullptr) {
    out.decisions = net.controller()->decisions().size();
    for (const Controller::Decision& d : net.controller()->decisions()) {
      if (!out.rules.empty()) {
        out.rules += ';';
      }
      out.rules += d.rule;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "--quick");

  const uint32_t cpus = std::max<uint32_t>(
      1, static_cast<uint32_t>(CpuTopology::Detect().cpus.size()));
  // 4x the machine, capped so many-core hosts don't spawn hundreds of
  // workers; at least 4 so the 1-core reference container is oversubscribed.
  const uint32_t threads = std::max(4u, std::min(32u, 4 * cpus));

  FatTreeScenario sc;
  sc.k = 4;
  sc.load = 0.3;
  sc.duration = Time::Milliseconds(quick ? 2 : 5);

  SimConfig base;
  ApplyDcnTcp(&base);
  base.kernel.type = KernelType::kUnison;
  base.kernel.threads = threads;

  std::printf("self-tuning: k=%u fat-tree, %u threads on %u cpu(s), %s\n",
              sc.k, threads, cpus, quick ? "quick" : "full");

  const TunedRun st = RunOnce(base, sc);

  SimConfig tuned = base;
  tuned.tuning = TuningMode::kAuto;
  tuned.tuning_config.min_rounds = 1;
  tuned.tuning_config.parks_per_round_high = 0.25;
  tuned.tuning_config.ps_low = 1.0;  // Always keep the observation cadence up.
  tuned.tuning_config.initial_window_ps = 500'000'000;  // 0.5 ms slices.
  tuned.tuning_config.min_window_ps = 250'000'000;
  const TunedRun tu = RunOnce(tuned, sc);

  const double speedup = tu.wall_ns == 0
                             ? 0.0
                             : static_cast<double>(st.wall_ns) /
                                   static_cast<double>(tu.wall_ns);
  const bool fingerprint_match =
      tu.fingerprint == st.fingerprint && tu.events == st.events;

  Table table({"run", "wall ms", "windows", "parties", "epoch", "decisions"});
  table.Row({"static", Fmt("%.1f", st.wall_ns * 1e-6), Fmt("%u", st.windows),
             Fmt("%u", st.final_parties), Fmt("%llu",
             static_cast<unsigned long long>(st.final_epoch)), "0"});
  table.Row({"tuned", Fmt("%.1f", tu.wall_ns * 1e-6), Fmt("%u", tu.windows),
             Fmt("%u", tu.final_parties), Fmt("%llu",
             static_cast<unsigned long long>(tu.final_epoch)),
             Fmt("%zu", tu.decisions)});
  table.Print();
  std::printf("  speedup %.2fx, fingerprints %s, rules: %s\n", speedup,
              fingerprint_match ? "match" : "DIVERGE",
              tu.rules.empty() ? "(none)" : tu.rules.c_str());

  const bool pass = fingerprint_match && tu.decisions >= 1 &&
                    tu.final_parties <= threads && tu.windows > st.windows;

  FILE* out = std::fopen("BENCH_self_tuning.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n  \"bench\": \"self_tuning\",\n  \"quick\": %s,\n"
        "  \"cpus\": %u,\n  \"threads\": %u,\n"
        "  \"static_wall_ns\": %llu,\n  \"tuned_wall_ns\": %llu,\n"
        "  \"speedup\": %.4f,\n  \"fingerprint_match\": %s,\n"
        "  \"decisions\": %zu,\n  \"rules\": \"%s\",\n"
        "  \"windows_static\": %u,\n  \"windows_tuned\": %u,\n"
        "  \"final_parties\": %u,\n  \"final_epoch\": %llu,\n"
        "  \"events\": %llu,\n  \"pass\": %s\n}\n",
        quick ? "true" : "false", cpus, threads,
        static_cast<unsigned long long>(st.wall_ns),
        static_cast<unsigned long long>(tu.wall_ns), speedup,
        fingerprint_match ? "true" : "false", tu.decisions, tu.rules.c_str(),
        st.windows, tu.windows, tu.final_parties,
        static_cast<unsigned long long>(tu.final_epoch),
        static_cast<unsigned long long>(tu.events), pass ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_self_tuning.json\n");
  }
  return pass ? 0 : 1;
}
