// Warm-prefix fork sweep bench: the economics of Session::Snapshot/Fork for
// what-if scenario sweeps, plus the transparency anchor that makes the
// numbers trustworthy.
//
// A sweep of N branches that differ only after t_snap pays the [0, t_snap)
// warm-up once when forked from a snapshot, versus N times when each branch
// is run cold from scratch. This bench runs both ways on the same workload
// (k=4 fat tree, permutation start-up burst + streaming Poisson load) and
// reports sweep speedup, per-fork restore latency, and snapshot size.
//
// Correctness anchor: every forked branch must finish with the exact
// FlowMonitor fingerprint and session event count of a cold run to the same
// horizon — fork transparency, the contract session_test enforces across all
// five kernels; here it gates the perf claim on the kernel being measured.
//
// Emits BENCH_fork_sweep.json.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/session.h"
#include "src/traffic/flow_source.h"
#include "src/traffic/generator.h"
#include "src/topo/fat_tree.h"

using namespace unison;
using namespace unison::bench;

namespace {

constexpr uint32_t kFatTreeK = 4;
constexpr uint64_t kLinkBps = 10000000000ULL;
constexpr double kLoad = 0.5;
constexpr int kHorizonMs = 5;  // Every branch runs to this simulated time.
constexpr int kSnapMs = 3;     // Shared warm prefix.

std::unique_ptr<Network> BuildWorkload() {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kSequential;
  cfg.seed = 1;
  auto net = std::make_unique<Network>(cfg);
  FatTreeTopo topo = BuildFatTree(*net, kFatTreeK, kLinkBps, Time::Microseconds(3));
  net->Finalize();
  GeneratePermutation(*net, topo.hosts, 200 * 1024, Time::Zero());
  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = kLoad;
  traffic.duration = Time::Milliseconds(kHorizonMs);
  InstallFlowSources(*net, traffic);
  return net;
}

struct BranchResult {
  uint64_t fingerprint = 0;
  uint64_t events = 0;
};

BranchResult Finish(Network& net) {
  net.Run(Time::Milliseconds(kHorizonMs));
  BranchResult out;
  out.fingerprint = net.flow_monitor().Fingerprint();
  out.events = net.kernel().session_events();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "--quick");
  const int branches = quick ? 2 : 4;

  std::printf("Fork sweep: %d branches sharing a %dms warm prefix of a %dms "
              "horizon vs %d cold runs (k=%u fat tree, load %.1f)\n\n",
              branches, kSnapMs, kHorizonMs, branches, kFatTreeK, kLoad);

  // Cold baseline: every branch pays the full horizon from scratch.
  uint64_t cold_ns = 0;
  BranchResult cold;
  for (int b = 0; b < branches; ++b) {
    const uint64_t t0 = Profiler::NowNs();
    std::unique_ptr<Network> net = BuildWorkload();
    cold = Finish(*net);
    cold_ns += Profiler::NowNs() - t0;
  }

  // Warm sweep: one prefix run + snapshot, then fork per branch.
  const uint64_t warm_t0 = Profiler::NowNs();
  std::unique_ptr<Network> parent = BuildWorkload();
  parent->Run(Time::Milliseconds(kSnapMs));
  Session session(parent.get());
  const uint64_t snap_t0 = Profiler::NowNs();
  const SessionSnapshot snap = session.Snapshot();
  const uint64_t snapshot_ns = Profiler::NowNs() - snap_t0;

  bool fingerprints_match = true;
  uint64_t fork_restore_ns_sum = 0;
  for (int b = 0; b < branches; ++b) {
    const uint64_t f0 = Profiler::NowNs();
    std::unique_ptr<Network> branch = session.Fork(snap);
    fork_restore_ns_sum += Profiler::NowNs() - f0;
    const BranchResult r = Finish(*branch);
    fingerprints_match = fingerprints_match && r.fingerprint == cold.fingerprint &&
                         r.events == cold.events;
  }
  const uint64_t warm_ns = Profiler::NowNs() - warm_t0;
  const uint64_t fork_latency_ns =
      fork_restore_ns_sum / static_cast<uint64_t>(branches);
  const double speedup =
      warm_ns == 0 ? 0.0 : static_cast<double>(cold_ns) / static_cast<double>(warm_ns);

  Table table({"mode", "total ms", "per branch ms"});
  table.Row({"cold x" + std::to_string(branches), Fmt("%.2f", cold_ns * 1e-6),
             Fmt("%.2f", cold_ns * 1e-6 / branches)});
  table.Row({"warm sweep", Fmt("%.2f", warm_ns * 1e-6),
             Fmt("%.2f", warm_ns * 1e-6 / branches)});
  table.Print();

  std::printf("\nsnapshot: %zu bytes, captured in %.2f ms; fork restore mean "
              "%.2f ms; fingerprints %s\n",
              snap.size_bytes(), snapshot_ns * 1e-6, fork_latency_ns * 1e-6,
              fingerprints_match ? "match" : "MISMATCH");

  const bool pass = fingerprints_match && snap.size_bytes() > 0 && speedup > 1.0;
  std::printf("%s: sweep speedup %.2fx (shared prefix %d/%d of the horizon)\n",
              pass ? "PASS" : "FAIL", speedup, kSnapMs, kHorizonMs);

  FILE* out = std::fopen("BENCH_fork_sweep.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"workload\": \"fork sweep vs cold scenario sweep\",\n"
                 "  \"fat_tree_k\": %u,\n"
                 "  \"load\": %.2f,\n"
                 "  \"quick\": %s,\n"
                 "  \"branches\": %d,\n"
                 "  \"horizon_ms\": %d,\n"
                 "  \"snapshot_at_ms\": %d,\n"
                 "  \"cold_ns\": %llu,\n"
                 "  \"warm_ns\": %llu,\n"
                 "  \"snapshot_ns\": %llu,\n"
                 "  \"fork_latency_ns\": %llu,\n"
                 "  \"snapshot_bytes\": %zu,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"fingerprints_match\": %s,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 kFatTreeK, kLoad, quick ? "true" : "false", branches,
                 kHorizonMs, kSnapMs, static_cast<unsigned long long>(cold_ns),
                 static_cast<unsigned long long>(warm_ns),
                 static_cast<unsigned long long>(snapshot_ns),
                 static_cast<unsigned long long>(fork_latency_ns),
                 snap.size_bytes(), speedup,
                 fingerprints_match ? "true" : "false", pass ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_fork_sweep.json\n");
  }
  return pass ? 0 : 1;
}
