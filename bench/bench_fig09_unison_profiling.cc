// Figure 9: the same P/S/M decomposition as Figure 5, for Unison.
//
//   --part=a  P, S versus incast ratio: Unison's S stays under ~2% and its P
//             is lower than the baselines' (cache boost).
//   --part=b  Per-round S/T under balanced traffic: near zero every round.
//
// Modeled from instrumented traces over the fine-grained partition, with the
// real load-adaptive scheduler policy (ByLastRoundTime).
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct UnisonModelRun {
  ModelResult result;
  ParallelCostModel model{{}, 0};
  uint32_t workers = 0;
};

UnisonModelRun RunUnisonModel(const FatTreeScenario& sc, uint32_t workers) {
  SimConfig cfg;
  cfg.seed = 17;
  ApplyDcnTcp(&cfg);
  cfg.partition = PartitionMode::kAuto;
  const TraceResult trace = InstrumentedRun(cfg, FatTreeBuilder(sc), sc.duration);
  UnisonModelRun out;
  out.model = ParallelCostModel(trace.trace, trace.num_lps);
  out.result = out.model.Unison(workers, SchedulingMetric::kByLastRoundTime, 0,
                                kUnisonRoundOverheadNs);
  out.workers = workers;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  const std::string part = GetOpt(argc, argv, "--part", "all");
  SetTraceFromArgs(argc, argv);

  FatTreeScenario base;
  base.k = full ? 8 : 4;
  base.load = 0.5;
  base.duration = full ? Time::Milliseconds(10) : Time::Milliseconds(3);
  const uint32_t workers = base.k;

  std::printf("Figure 9 — Unison eliminates the synchronization time (k=%u\n"
              "fat-tree, fine-grained partition, %u workers)\n", base.k, workers);

  if (part == "a" || part == "all") {
    std::printf("\n(a) P, S versus incast ratio (per-worker means, seconds)\n\n");
    Table t({"incast ratio", "P_U", "S_U", "S_U/T"});
    for (double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      FatTreeScenario sc = base;
      sc.incast_ratio = ratio;
      const UnisonModelRun m = RunUnisonModel(sc, workers);
      double p = 0;
      double s = 0;
      for (size_t i = 0; i < m.result.executor_p_ns.size(); ++i) {
        p += static_cast<double>(m.result.executor_p_ns[i]) * 1e-9;
        s += static_cast<double>(m.result.executor_s_ns[i]) * 1e-9;
      }
      p /= workers;
      s /= workers;
      const double total = static_cast<double>(m.result.makespan_ns) * 1e-9;
      t.Row({Fmt("%.2f", ratio), Fmt("%.4f", p), Fmt("%.4f", s),
             Fmt("%.1f%%", total == 0 ? 0 : 100 * s / total)});
    }
    t.Print();
    std::printf("\nShape check: S_U stays a small fraction of T at every skew\n"
                "(compare Fig. 5a where S_B reaches >70%%). Residual S at full\n"
                "incast is the indivisible victim-node LP, which no scheduler\n"
                "can split further.\n");
  }

  if (part == "b" || part == "all") {
    std::printf("\n(b) per-round S/T under balanced traffic\n\n");
    const UnisonModelRun m = RunUnisonModel(base, workers);
    Table t({"round bucket", "mean S/T", "max S/T"});
    const auto& spans = m.result.round_makespan_ns;
    const auto& costs = m.model.round_costs();
    const uint32_t rounds = std::min<uint32_t>(1000, m.model.rounds());
    const uint32_t bucket = std::max(1u, rounds / 10);
    for (uint32_t b = 0; b * bucket < rounds; ++b) {
      double sum = 0;
      double mx = 0;
      uint32_t n = 0;
      for (uint32_t r = b * bucket; r < std::min(rounds, (b + 1) * bucket); ++r) {
        uint64_t total = 0;
        for (uint64_t c : costs[r]) {
          total += c;
        }
        if (spans[r] == 0) {
          continue;
        }
        const double mean_p = static_cast<double>(total) / workers;
        const double st = 1.0 - mean_p / static_cast<double>(spans[r]);
        sum += st;
        mx = std::max(mx, st);
        ++n;
      }
      if (n > 0) {
        t.Row({Fmt("%u-%u", b * bucket, (b + 1) * bucket - 1), Fmt("%.2f", sum / n),
               Fmt("%.2f", mx)});
      }
    }
    t.Print();
    std::printf("\nShape check: per-round S/T an order of magnitude below the\n"
                "barrier baseline's Fig. 5b values.\n");
  }
  return 0;
}
