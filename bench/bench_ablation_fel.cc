// Ablation: future-event-list micro costs. The FEL is the hottest structure
// in any DES kernel; this measures push/pop throughput under the
// deterministic 4-field ordering key, random vs. mostly-ordered workloads,
// and the CountBefore scan used by the ByPendingEventCount metric.
#include <benchmark/benchmark.h>

#include "src/core/calendar_queue.h"
#include "src/core/fel.h"
#include "src/core/rng.h"

namespace unison {
namespace {

Event MakeEvent(Rng& rng, int64_t ts_range) {
  return Event{EventKey{Time::Picoseconds(static_cast<int64_t>(rng.NextU64Below(ts_range))),
                        Time::Picoseconds(static_cast<int64_t>(rng.NextU64Below(1000))),
                        static_cast<LpId>(rng.NextU64Below(64)), rng.NextU64()},
               static_cast<NodeId>(rng.NextU64Below(1024)), [] {}};
}

void BM_FelPushPopRandom(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1, 0);
  for (auto _ : state) {
    FutureEventList fel;
    for (size_t i = 0; i < n; ++i) {
      fel.Push(MakeEvent(rng, 1000000));
    }
    while (!fel.Empty()) {
      benchmark::DoNotOptimize(fel.Pop());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n * 2));
}
BENCHMARK(BM_FelPushPopRandom)->Arg(1024)->Arg(16384);

void BM_FelSteadyState(benchmark::State& state) {
  // Hold ~n events, alternate push/pop — the regime of a busy LP.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2, 0);
  FutureEventList fel;
  int64_t clock = 0;
  for (size_t i = 0; i < n; ++i) {
    fel.Push(MakeEvent(rng, 1000000));
  }
  for (auto _ : state) {
    Event ev = fel.Pop();
    clock = ev.key.ts.ps();
    ev.key.ts = Time::Picoseconds(clock + static_cast<int64_t>(rng.NextU64Below(10000)));
    fel.Push(std::move(ev));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FelSteadyState)->Arg(256)->Arg(4096);

void BM_CalendarSteadyState(benchmark::State& state) {
  // Same steady-state workload on the calendar queue, for comparison: it
  // wins for large single-FEL populations, loses on the small per-LP FELs
  // fine-grained partition produces.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2, 0);
  CalendarQueue fel;
  int64_t clock = 0;
  for (size_t i = 0; i < n; ++i) {
    fel.Push(MakeEvent(rng, 1000000));
  }
  for (auto _ : state) {
    Event ev = fel.Pop();
    clock = ev.key.ts.ps();
    ev.key.ts = Time::Picoseconds(clock + static_cast<int64_t>(rng.NextU64Below(10000)));
    fel.Push(std::move(ev));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CalendarSteadyState)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FelSteadyStateLarge(benchmark::State& state) {
  // Heap counterpart at the large size for the head-to-head.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2, 0);
  FutureEventList fel;
  for (size_t i = 0; i < n; ++i) {
    fel.Push(MakeEvent(rng, 1000000));
  }
  int64_t clock = 0;
  for (auto _ : state) {
    Event ev = fel.Pop();
    clock = ev.key.ts.ps();
    ev.key.ts = Time::Picoseconds(clock + static_cast<int64_t>(rng.NextU64Below(10000)));
    fel.Push(std::move(ev));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FelSteadyStateLarge)->Arg(65536);

void BM_FelCountBefore(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3, 0);
  FutureEventList fel;
  for (size_t i = 0; i < n; ++i) {
    fel.Push(MakeEvent(rng, 1000000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fel.CountBefore(Time::Picoseconds(500000)));
  }
}
BENCHMARK(BM_FelCountBefore)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace unison

BENCHMARK_MAIN();
