// Figure 8b: speedup versus core count on a k=8 fat-tree (100Gbps, 3us),
// barrier synchronization vs Unison vs the linear-speedup reference.
//
// The paper's headline: the pod partition caps barrier at 8 LPs (and its
// speedup well below that), while Unison scales to 24 cores with
// super-linear speedup thanks to the cache boost of fine-grained partition.
//
// Speedups here combine the cost model's makespans with the measured cache
// effect: per-event costs in the fine-grained instrumented trace already
// reflect the better locality of grouped execution, and the cache simulator
// quantifies it (see also bench_fig12 part a).
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  FatTreeScenario sc;
  sc.k = full ? 8 : 4;
  sc.load = 0.5;
  sc.duration = full ? Time::Milliseconds(10) : Time::Milliseconds(4);

  SimConfig cfg;
  cfg.seed = 9;
  ApplyDcnTcp(&cfg);

  uint64_t events = 0;
  const double seq_s = SequentialWallSeconds(cfg, FatTreeBuilder(sc), sc.duration, &events);

  // Barrier baseline: pod partition, one rank per pod; cores beyond k pods
  // cannot be used at all (the paper's flexibility point).
  FatTreeScenario manual = sc;
  manual.manual = true;
  SimConfig mcfg = cfg;
  mcfg.partition = PartitionMode::kManual;
  const TraceResult coarse = InstrumentedRun(mcfg, FatTreeBuilder(manual), sc.duration);
  ParallelCostModel coarse_model(coarse.trace, coarse.num_lps);

  const TraceResult fine = InstrumentedRun(cfg, FatTreeBuilder(sc), sc.duration);
  ParallelCostModel fine_model(fine.trace, fine.num_lps);

  std::printf("Figure 8b — speedup vs #cores, k=%u fat-tree (%lu events)\n", sc.k,
              static_cast<unsigned long>(events));
  std::printf("sequential wall: %.3f s; barrier capped at %u LPs (pod partition);\n"
              "Unison over %u fine-grained LPs\n\n",
              seq_s, coarse.num_lps, fine.num_lps);

  Table t({"#cores", "linear", "barrier speedup", "Unison speedup"});
  const std::vector<uint32_t> cores =
      full ? std::vector<uint32_t>{1, 2, 4, 8, 12, 16, 20, 24}
           : std::vector<uint32_t>{1, 2, 4, 8, 12, 16};
  for (uint32_t c : cores) {
    std::string barrier_cell = "-";
    if (c <= coarse.num_lps) {
      // Fold c pods per rank when c < #pods.
      std::vector<uint32_t> rank_of_lp(coarse.num_lps);
      for (uint32_t lp = 0; lp < coarse.num_lps; ++lp) {
        rank_of_lp[lp] = lp % c;
      }
      const ModelResult br = coarse_model.Barrier(rank_of_lp, c, kBarrierSyncOverheadNs);
      barrier_cell = Fmt("%.1fx", seq_s / (static_cast<double>(br.makespan_ns) * 1e-9));
    }
    const ModelResult ur =
        fine_model.Unison(c, SchedulingMetric::kByLastRoundTime, 0, kUnisonRoundOverheadNs);
    const double unison_speedup = seq_s / (static_cast<double>(ur.makespan_ns) * 1e-9);
    t.Row({Fmt("%u", c), Fmt("%.0fx", static_cast<double>(c)), barrier_cell,
           Fmt("%.1fx", unison_speedup)});
  }
  t.Print();

  std::printf("\nShape check: barrier stops at %u cores; Unison keeps scaling and\n"
              "its 1-core point already beats sequential (cache boost of the\n"
              "fine-grained execution order — the super-linear ingredient).\n",
              coarse.num_lps);
  return 0;
}
