// Figure 1: simulating cluster fat-trees under incast traffic with
// sequential DES, the null-message and barrier-synchronization PDES
// baselines, and Unison. All parallel algorithms get one core per cluster.
//
// Paper shape: both PDES baselines improve little over sequential under the
// fully skewed incast (their static partitions leave every core waiting for
// the victim cluster), while Unison is ~10x faster than them.
//
// Scaled-down defaults for this container; pass --full for paper-leaning
// sizes. Parallel times are modeled from instrumented traces (DESIGN.md §2).
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct Scenario {
  uint32_t clusters;
  uint32_t hosts_per_rack;
  uint64_t bps;
  Time sim;
};

std::function<void(Network&)> Builder(const Scenario& sc, bool manual) {
  return [sc, manual](Network& net) {
    ClusterFatTreeTopo topo = BuildClusterFatTree(
        net, sc.clusters, /*racks_per_cluster=*/2, sc.hosts_per_rack,
        /*aggs_per_cluster=*/2, /*cores=*/sc.clusters, sc.bps, Time::Microseconds(3));
    if (manual) {
      net.SetManualPartition(sc.clusters,
                             ClusterFatTreePartition(topo, net.num_nodes()));
    }
    net.Finalize();
    TrafficSpec traffic;
    traffic.hosts = topo.hosts;
    traffic.bisection_bps = topo.bisection_bps;
    traffic.load = 0.5;
    traffic.duration = sc.sim;
    traffic.incast_ratio = 1.0;  // Fully skewed: everyone hits one victim.
    traffic.victim_index = 0;
    GenerateTraffic(net, traffic);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  std::vector<Scenario> scenarios;
  if (full) {
    for (uint32_t c : {8u, 12u, 16u}) {
      scenarios.push_back({c, 8, 100000000000ULL, Time::Milliseconds(20)});
    }
  } else {
    for (uint32_t c : {4u, 6u, 8u}) {
      scenarios.push_back({c, 8, 100000000000ULL, Time::Milliseconds(5)});
    }
  }

  std::printf("Figure 1 — fat-tree scaling under incast (cores = #clusters)\n");
  std::printf("modeled parallel wall time from instrumented traces; seconds\n\n");
  Table table({"#clusters", "events", "sequential", "nullmsg", "barrier", "Unison",
               "Unison vs best PDES"});

  for (const Scenario& sc : scenarios) {
    SimConfig base;
    base.seed = 42;
    base.partition = PartitionMode::kManual;
    SimConfig seq = base;
    seq.partition = PartitionMode::kSingle;

    uint64_t events = 0;
    const double seq_s = SequentialWallSeconds(seq, Builder(sc, false), sc.sim, &events);

    const TraceResult coarse = InstrumentedRun(base, Builder(sc, true), sc.sim);
    ParallelCostModel coarse_model(coarse.trace, coarse.num_lps);
    const ModelResult barrier = coarse_model.Barrier(
        IdentityRanks(coarse.num_lps), coarse.num_lps, kBarrierSyncOverheadNs);
    const ModelResult nullmsg =
        coarse_model.NullMessage(coarse.lp_neighbors, kNullMsgOverheadNs);

    SimConfig fine = base;
    fine.partition = PartitionMode::kAuto;
    const TraceResult fg = InstrumentedRun(fine, Builder(sc, false), sc.sim);
    ParallelCostModel fine_model(fg.trace, fg.num_lps);
    const ModelResult unison = fine_model.Unison(
        sc.clusters, SchedulingMetric::kByLastRoundTime, 0, kUnisonRoundOverheadNs);

    const double barrier_s = static_cast<double>(barrier.makespan_ns) * 1e-9;
    const double nullmsg_s = static_cast<double>(nullmsg.makespan_ns) * 1e-9;
    const double unison_s = static_cast<double>(unison.makespan_ns) * 1e-9;
    const double best_pdes = std::min(barrier_s, nullmsg_s);

    table.Row({Fmt("%u", sc.clusters), Fmt("%lu", (unsigned long)events),
               Fmt("%.3f", seq_s), Fmt("%.3f", nullmsg_s), Fmt("%.3f", barrier_s),
               Fmt("%.3f", unison_s), Fmt("%.1fx", best_pdes / unison_s)});
  }
  table.Print();
  std::printf("\nExpected shape: barrier/nullmsg barely beat sequential under full\n"
              "incast (the victim cluster serializes every window); Unison's\n"
              "fine-grained LPs + load-adaptive scheduling give a ~10x gap.\n");
  return 0;
}
