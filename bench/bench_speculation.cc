// Speculative window execution on a low-lookahead multi-site WAN:
// conservative Eq. 2 windows vs optimistic rounds past the LBTS bound with
// checkpoint rollback (speculation=auto), plus a horizon sweep reporting the
// miss rate.
//
// The scenario is built to be synchronization-bound: S sites, each a small
// star of hosts behind a router, joined by a short-delay inter-site ring.
// The manual partition puts one site per LP, so the Eq. 2 lookahead is the
// 100 ns inter-site delay while nearly all traffic stays inside a site —
// conservative rounds crawl forward 100 ns at a time, and almost
// every round's cross-LP mailboxes are empty. The speculative kernel instead
// covers a whole 50 us window from one boundary checkpoint, commits when no
// inbound arrival lands below an already-advanced clock, and rolls back on
// the sparse windows where an inter-site burst does land.
//
// Pass criteria are the contract, not raw speed: bit-identical FlowMonitor
// fingerprints and event counts vs speculation=off for every horizon, at
// least one observed miss + rollback (the inter-site bursts force them), and
// wall clock no worse than conservative (the CI floor 0.9 absorbs runner
// noise).
//
// Emits BENCH_speculation.json.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace unison;
using namespace unison::bench;

namespace {

constexpr uint32_t kSites = 4;
constexpr uint32_t kHostsPerSite = 8;
constexpr uint64_t kLinkBps = 10'000'000'000ULL;

struct Wan {
  std::vector<NodeId> routers;
  std::vector<std::vector<NodeId>> site_hosts;
};

// One LP per site; the only cut edges are the 100 ns inter-site ring links,
// so the partition lookahead — and with it every conservative round — is a
// mere 100 ns while intra-site events stretch far past it.
Wan BuildWan(Network& net) {
  Wan wan;
  wan.site_hosts.resize(kSites);
  std::vector<LpId> lp_of_node;
  for (uint32_t s = 0; s < kSites; ++s) {
    const NodeId router = net.AddNode();
    lp_of_node.push_back(s);
    wan.routers.push_back(router);
    for (uint32_t h = 0; h < kHostsPerSite; ++h) {
      const NodeId host = net.AddNode();
      lp_of_node.push_back(s);
      net.AddLink(host, router, kLinkBps, Time::Microseconds(1));
      wan.site_hosts[s].push_back(host);
    }
  }
  for (uint32_t s = 0; s < kSites; ++s) {
    net.AddLink(wan.routers[s], wan.routers[(s + 1) % kSites], kLinkBps,
                Time::Nanoseconds(100));
  }
  net.SetManualPartition(kSites, std::move(lp_of_node));
  net.Finalize();
  return wan;
}

// Intra-site rings bursting every 250 us keep each LP busy all horizon;
// an inter-site hop every 1 ms is the sparse cross-LP traffic that forces
// a speculative window to miss and roll back.
void InstallTraffic(Network& net, const Wan& wan, Time duration) {
  const int64_t burst_ps = Time::Microseconds(250).ps();
  const int64_t cross_ps = Time::Milliseconds(1).ps();
  FlowSpec flow;
  // Starts are staggered per host so event timestamps spread across the
  // whole burst instead of clustering — a conservative run then needs a
  // fresh 100 ns round for nearly every distinct timestamp.
  const int64_t stagger_ps = Time::Nanoseconds(5'700).ps();
  for (int64_t t = 0; t < duration.ps(); t += burst_ps) {
    for (uint32_t s = 0; s < kSites; ++s) {
      const std::vector<NodeId>& hosts = wan.site_hosts[s];
      for (uint32_t h = 0; h < kHostsPerSite; ++h) {
        flow.src = hosts[h];
        flow.dst = hosts[(h + 1) % kHostsPerSite];
        flow.bytes = 64 * 1024;
        flow.start =
            Time::Picoseconds(t + (s * kHostsPerSite + h) * stagger_ps);
        InstallFlow(net, flow);
      }
    }
  }
  for (int64_t t = cross_ps / 2; t < duration.ps(); t += cross_ps) {
    for (uint32_t s = 0; s < kSites; ++s) {
      flow.src = wan.site_hosts[s][0];
      flow.dst = wan.site_hosts[(s + 1) % kSites][0];
      flow.bytes = 16 * 1024;
      flow.start = Time::Picoseconds(t);
      InstallFlow(net, flow);
    }
  }
}

struct SpecRun {
  uint64_t wall_ns = 0;
  uint64_t fingerprint = 0;
  uint64_t events = 0;
  uint64_t rounds = 0;
  uint32_t windows = 0;
  uint32_t spec_rounds = 0;
  uint32_t spec_hits = 0;
  uint32_t spec_misses = 0;
  uint64_t rollback_ns = 0;
  uint64_t captures = 0;
  uint64_t restores = 0;
};

// Runs the scenario sliced into fixed 50 us session windows (one checkpoint
// and at most one rollback per window). horizon_ps == 0 is the conservative
// baseline; both paths pay identical boundary overhead, so the measured gap
// is the synchronization rounds alone.
SpecRun RunOnce(int64_t horizon_ps, Time duration) {
  SimConfig cfg;
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 2;
  cfg.partition = PartitionMode::kManual;
  if (horizon_ps > 0) {
    cfg.speculation = SpeculationMode::kAuto;
    cfg.tuning_config.spec_horizon_initial_ps = horizon_ps;
  }
  Network net(cfg);
  const Wan wan = BuildWan(net);
  InstallTraffic(net, wan, duration);

  const int64_t slice_ps = Time::Microseconds(50).ps();
  SpecRun out;
  const uint64_t t0 = Profiler::NowNs();
  for (int64_t t = slice_ps; t < duration.ps() + slice_ps; t += slice_ps) {
    net.Run(Time::Picoseconds(std::min(t, duration.ps())));
    const RunSummary& sum = net.kernel().run_summary();
    out.spec_rounds += sum.spec_rounds;
    out.spec_hits += sum.spec_hits;
    out.spec_misses += sum.spec_misses;
    out.rollback_ns += sum.rollback_ns;
  }
  out.wall_ns = Profiler::NowNs() - t0;
  out.fingerprint = net.flow_monitor().Fingerprint();
  out.events = net.kernel().session_events();
  out.rounds = net.kernel().session_rounds();
  out.windows = net.kernel().session_windows();
  out.captures = net.kernel().spec_checkpoint().captures();
  out.restores = net.kernel().spec_checkpoint().restores();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "--quick");
  const Time duration = Time::Milliseconds(quick ? 2 : 5);

  std::printf(
      "speculation: %u-site WAN ring, 100 ns lookahead, unison 2t, %s\n",
      kSites, quick ? "quick" : "full");

  const SpecRun cons = RunOnce(0, duration);

  // Horizon sweep: the default 50 us covers a whole session window in one
  // optimistic stretch; the short and long horizons bracket it.
  const std::vector<int64_t> horizons = {
      Time::Microseconds(10).ps(),
      Time::Microseconds(50).ps(),
      Time::Microseconds(200).ps(),
  };
  std::vector<SpecRun> runs;
  for (int64_t h : horizons) {
    runs.push_back(RunOnce(h, duration));
  }
  const SpecRun& spec = runs[1];  // The 50 us default is what CI gates.

  bool fingerprint_match = true;
  Table table({"horizon us", "wall ms", "rounds", "spec rounds", "hits",
               "misses", "rollback ms", "match"});
  table.Row({"conservative", Fmt("%.1f", cons.wall_ns * 1e-6),
             Fmt("%llu", static_cast<unsigned long long>(cons.rounds)), "0",
             "0", "0", "0.0", "-"});
  for (size_t i = 0; i < runs.size(); ++i) {
    const SpecRun& r = runs[i];
    const bool match =
        r.fingerprint == cons.fingerprint && r.events == cons.events;
    fingerprint_match = fingerprint_match && match;
    table.Row({Fmt("%lld", static_cast<long long>(horizons[i] / 1'000'000)),
               Fmt("%.1f", r.wall_ns * 1e-6),
               Fmt("%llu", static_cast<unsigned long long>(r.rounds)),
               Fmt("%u", r.spec_rounds), Fmt("%u", r.spec_hits),
               Fmt("%u", r.spec_misses), Fmt("%.1f", r.rollback_ns * 1e-6),
               match ? "yes" : "DIVERGE"});
  }
  table.Print();

  const double speedup =
      spec.wall_ns == 0 ? 0.0
                        : static_cast<double>(cons.wall_ns) /
                              static_cast<double>(spec.wall_ns);
  const double miss_rate =
      spec.spec_misses + spec.spec_hits == 0
          ? 0.0
          : static_cast<double>(spec.spec_misses) /
                static_cast<double>(spec.windows);
  std::printf(
      "  speedup %.2fx (rounds %llu -> %llu), fingerprints %s, "
      "miss rate %.2f/window, checkpoints %llu captured / %llu restored\n",
      speedup, static_cast<unsigned long long>(cons.rounds),
      static_cast<unsigned long long>(spec.rounds),
      fingerprint_match ? "match" : "DIVERGE", miss_rate,
      static_cast<unsigned long long>(spec.captures),
      static_cast<unsigned long long>(spec.restores));

  const bool pass = fingerprint_match && spec.spec_misses >= 1 &&
                    spec.spec_hits >= 1 && spec.restores >= 1;

  FILE* out = std::fopen("BENCH_speculation.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n  \"bench\": \"speculation\",\n  \"quick\": %s,\n"
        "  \"conservative_wall_ns\": %llu,\n  \"speculative_wall_ns\": %llu,\n"
        "  \"speedup\": %.4f,\n  \"fingerprint_match\": %s,\n"
        "  \"conservative_rounds\": %llu,\n  \"speculative_rounds\": %llu,\n"
        "  \"windows\": %u,\n  \"spec_rounds\": %u,\n  \"spec_hits\": %u,\n"
        "  \"spec_misses\": %u,\n  \"miss_rate_per_window\": %.4f,\n"
        "  \"rollback_ns\": %llu,\n  \"captures\": %llu,\n"
        "  \"restores\": %llu,\n  \"events\": %llu,\n  \"pass\": %s\n}\n",
        quick ? "true" : "false",
        static_cast<unsigned long long>(cons.wall_ns),
        static_cast<unsigned long long>(spec.wall_ns), speedup,
        fingerprint_match ? "true" : "false",
        static_cast<unsigned long long>(cons.rounds),
        static_cast<unsigned long long>(spec.rounds), spec.windows,
        spec.spec_rounds, spec.spec_hits, spec.spec_misses, miss_rate,
        static_cast<unsigned long long>(spec.rollback_ns),
        static_cast<unsigned long long>(spec.captures),
        static_cast<unsigned long long>(spec.restores),
        static_cast<unsigned long long>(spec.events), pass ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_speculation.json\n");
  }
  return pass ? 0 : 1;
}
