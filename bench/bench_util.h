// Shared harness pieces for the per-figure/table benches.
//
// Every bench prints the rows/series of its paper counterpart as an aligned
// text table. Parallel wall times come from the virtual-time cost model fed
// by an instrumented single-worker run (see DESIGN.md §2 — this host has one
// CPU core); real-thread runs are used wherever the claim is about
// correctness or determinism rather than speed.
#ifndef UNISON_BENCH_BENCH_UTIL_H_
#define UNISON_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/unison.h"

namespace unison {
namespace bench {

// Per-round synchronization overheads used by the cost model, calibrated to
// the implementation classes the paper profiles: an MPI barrier/allreduce
// across ranks costs tens of microseconds, null-message churn a few, and
// Unison's atomic in-process barrier about one.
inline constexpr uint64_t kBarrierSyncOverheadNs = 5000;
inline constexpr uint64_t kNullMsgOverheadNs = 2000;
inline constexpr uint64_t kUnisonRoundOverheadNs = 1000;

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

inline std::string GetOpt(int argc, char** argv, const char* key,
                          const std::string& fallback) {
  const size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return fallback;
}

// Run-trace export knob shared by the benches: when set (from --trace=PATH),
// every InstrumentedRun enables the kernel run trace and dumps it as JSON —
// the machine-readable sibling of the BENCH_*.json artifacts. Benches with
// several instrumented passes get one file per pass instead of each pass
// clobbering the last: the first pass writes exactly PATH (what CI and
// scripts consume), pass N > 0 writes PATH.pass<N>.json, and every JSON file
// gets a .csv sibling of the same stem.
inline std::string g_trace_path;  // Empty = tracing off.
inline uint32_t g_trace_pass = 0;  // Instrumented passes completed so far.

inline void SetTraceFromArgs(int argc, char** argv) {
  g_trace_path = GetOpt(argc, argv, "--trace", "");
  g_trace_pass = 0;
}

// Path for the next instrumented pass's JSON trace, advancing the counter.
inline std::string NextTracePassPath() {
  const uint32_t pass = g_trace_pass++;
  if (pass == 0) {
    return g_trace_path;
  }
  return g_trace_path + ".pass" + std::to_string(pass) + ".json";
}

inline std::string Fmt(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

// Aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

  void Row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> width;
    for (const auto& row : rows_) {
      if (width.size() < row.size()) {
        width.resize(row.size(), 0);
      }
      for (size_t i = 0; i < row.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    }
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::string line = "  ";
      for (size_t i = 0; i < rows_[r].size(); ++i) {
        std::string cell = rows_[r][i];
        cell.resize(width[i], ' ');
        line += cell;
        line += "  ";
      }
      std::printf("%s\n", line.c_str());
      if (r == 0) {
        std::string rule = "  ";
        for (size_t i = 0; i < width.size(); ++i) {
          rule += std::string(width[i], '-') + "  ";
        }
        std::printf("%s\n", rule.c_str());
      }
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Builds a network with `build`, runs it instrumented (Unison kernel, one
// worker, per-LP profiling) and returns the per-(round, LP) cost trace plus
// the structure the models need.
struct TraceResult {
  std::vector<LpRoundCost> trace;
  uint32_t num_lps = 0;
  uint64_t events = 0;
  uint64_t rounds = 0;
  double wall_seconds = 0;  // Wall time of the instrumented pass itself.
  std::vector<std::vector<uint32_t>> lp_neighbors;  // From cut edges.
};

inline TraceResult InstrumentedRun(SimConfig cfg,
                                   const std::function<void(Network&)>& build,
                                   Time stop) {
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 1;
  cfg.profile = true;
  cfg.profile_per_lp = true;
  cfg.trace = !g_trace_path.empty();
  Network net(cfg);
  build(net);
  net.Finalize();
  const uint64_t t0 = Profiler::NowNs();
  net.Run(stop);
  if (cfg.trace) {
    const std::string path = NextTracePassPath();
    if (net.run_trace().WriteJsonFile(path) &&
        net.run_trace().WriteCsvFile(path + ".csv")) {
      std::printf("[trace] wrote %s (+.csv)\n", path.c_str());
    } else {
      std::fprintf(stderr, "[trace] FAILED to write %s\n", path.c_str());
    }
  }
  TraceResult out;
  out.wall_seconds = static_cast<double>(Profiler::NowNs() - t0) * 1e-9;
  out.trace = net.profiler().MergedLpRounds();
  out.num_lps = net.kernel().num_lps();
  out.events = net.kernel().processed_events();
  out.rounds = net.kernel().rounds();
  out.lp_neighbors.assign(out.num_lps, {});
  for (const CutEdge& e : net.partition().cut_edges) {
    out.lp_neighbors[e.a].push_back(e.b);
    out.lp_neighbors[e.b].push_back(e.a);
  }
  return out;
}

// Wall-clock sequential DES reference.
inline double SequentialWallSeconds(SimConfig cfg,
                                    const std::function<void(Network&)>& build,
                                    Time stop, uint64_t* events = nullptr) {
  cfg.kernel.type = KernelType::kSequential;
  cfg.kernel.threads = 1;
  Network net(cfg);
  build(net);
  net.Finalize();
  const uint64_t t0 = Profiler::NowNs();
  net.Run(stop);
  const double s = static_cast<double>(Profiler::NowNs() - t0) * 1e-9;
  if (events != nullptr) {
    *events = net.kernel().processed_events();
  }
  return s;
}

// The recurring §3.2/§6 scenario: a k-ary fat-tree with web-search traffic
// and an incast knob. Applies the paper's symmetric pod partition when
// `manual` is set (for the baselines).
struct FatTreeScenario {
  uint32_t k = 8;
  uint64_t bps = 100000000000ULL;
  Time delay = Time::Microseconds(3);
  double load = 0.5;
  double incast_ratio = 0.0;
  Time duration = Time::Milliseconds(5);
  bool manual = false;
};

// DCN-appropriate TCP timers: 1ms minimum RTO keeps incast senders retrying
// (the stock 200ms WAN RTO would idle the whole simulation after one loss
// episode, which no DCN study uses).
inline void ApplyDcnTcp(SimConfig* cfg) {
  cfg->tcp.min_rto = Time::Milliseconds(1);
  cfg->tcp.initial_rto = Time::Milliseconds(1);
}

inline std::function<void(Network&)> FatTreeBuilder(const FatTreeScenario& sc) {
  return [sc](Network& net) {
    FatTreeTopo topo = BuildFatTree(net, sc.k, sc.bps, sc.delay);
    if (sc.manual) {
      net.SetManualPartition(sc.k, FatTreePodPartition(topo, net.num_nodes()));
    }
    net.Finalize();
    TrafficSpec traffic;
    traffic.hosts = topo.hosts;
    traffic.bisection_bps = topo.bisection_bps;
    traffic.load = sc.load;
    traffic.duration = sc.duration;
    traffic.incast_ratio = sc.incast_ratio;
    traffic.victim_index = 0;
    GenerateTraffic(net, traffic);
  };
}

// Identity rank map for models where each LP is its own rank.
inline std::vector<uint32_t> IdentityRanks(uint32_t n) {
  std::vector<uint32_t> r(n);
  for (uint32_t i = 0; i < n; ++i) {
    r[i] = i;
  }
  return r;
}

}  // namespace bench
}  // namespace unison

#endif  // UNISON_BENCH_BENCH_UTIL_H_
