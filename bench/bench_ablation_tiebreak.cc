// Ablation: what does determinism cost? The tie-breaking rule (§5.2) adds
// three fields to every event-ordering comparison. This runs the same
// workload with deterministic and stock (insertion-order) tie-breaking under
// the sequential kernel and reports wall time and event throughput — the
// overhead the paper accepts to make results reproducible.
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  FatTreeScenario sc;
  sc.k = full ? 8 : 4;
  sc.load = 0.5;
  sc.duration = full ? Time::Milliseconds(10) : Time::Milliseconds(5);

  std::printf("Ablation — cost of the deterministic tie-breaking rule\n"
              "(k=%u fat-tree, sequential kernel, best of 3 runs)\n\n", sc.k);

  Table t({"tie-breaking", "wall (s)", "events", "Mevents/s"});
  for (bool deterministic : {true, false}) {
    double best = 1e300;
    uint64_t events = 0;
    for (int rep = 0; rep < 3; ++rep) {
      SimConfig cfg;
      cfg.seed = 71;
      ApplyDcnTcp(&cfg);
      cfg.kernel.type = KernelType::kSequential;
      cfg.kernel.deterministic = deterministic;
      cfg.partition = PartitionMode::kSingle;
      const double s = SequentialWallSeconds(cfg, FatTreeBuilder(sc), sc.duration, &events);
      best = std::min(best, s);
    }
    t.Row({deterministic ? "deterministic (4-field key)" : "stock (insertion order)",
           Fmt("%.3f", best), Fmt("%lu", (unsigned long)events),
           Fmt("%.2f", static_cast<double>(events) / best / 1e6)});
  }
  t.Print();
  std::printf("\nShape check: the deterministic key costs a few percent at most —\n"
              "the price of bit-reproducible parallel simulation.\n");
  return 0;
}
