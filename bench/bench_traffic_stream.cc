// Streaming traffic path bench: setup cost and FEL footprint of lazy
// per-source arrivals vs materialize-everything installation, plus the
// correctness anchors that make the comparison meaningful.
//
// Sweeps the arrival-window duration at fixed load. Materialized setup
// draws and schedules every flow of the window up front, so its setup time
// and pending-event footprint grow linearly with the window; the streaming
// path keeps exactly one pending arrival per source, so both stay O(hosts)
// no matter how long the window is — that is the claim this bench measures
// (>= 10x the flows at an unchanged event-set size on the full sweep).
//
// Correctness anchors: a sequential run of the same spec through both paths
// must produce bit-identical FlowMonitor fingerprints, and a 16-executor
// Unison run of the streaming path — where flows register concurrently into
// per-executor shards — must match the sequential fingerprint too.
//
// Emits BENCH_traffic_stream.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernel/lp.h"
#include "src/traffic/flow_source.h"

using namespace unison;
using namespace unison::bench;

namespace {

constexpr uint32_t kFatTreeK = 4;
constexpr uint64_t kLinkBps = 10000000000ULL;
constexpr double kLoad = 1.0;
constexpr int kRunMs = 4;  // Window length for the fingerprint runs.

struct SetupRow {
  int duration_ms = 0;
  uint64_t hosts = 0;
  uint64_t mat_setup_ns = 0;
  uint64_t mat_pending = 0;
  uint64_t mat_flows = 0;
  uint64_t stream_setup_ns = 0;
  uint64_t stream_pending = 0;
  uint32_t stream_sources = 0;
};

TrafficSpec MakeSpec(const FatTreeTopo& topo, int duration_ms) {
  TrafficSpec spec;
  spec.hosts = topo.hosts;
  spec.bisection_bps = topo.bisection_bps;
  spec.load = kLoad;
  spec.duration = Time::Milliseconds(duration_ms);
  return spec;
}

uint64_t PendingEvents(Network& net) {
  uint64_t n = net.kernel().public_lp()->fel().Size();
  for (uint32_t i = 0; i < net.kernel().num_lps(); ++i) {
    n += net.kernel().lp(i)->fel().Size();
  }
  return n;
}

// Measures one duration point: fresh network per mode so FEL state is
// exactly what the installation produced.
SetupRow MeasureSetup(int duration_ms) {
  SetupRow row;
  row.duration_ms = duration_ms;
  {
    SimConfig cfg;
    cfg.kernel.type = KernelType::kSequential;
    Network net(cfg);
    FatTreeTopo topo = BuildFatTree(net, kFatTreeK, kLinkBps, Time::Microseconds(3));
    net.Finalize();
    const TrafficSpec spec = MakeSpec(topo, duration_ms);
    const uint64_t t0 = Profiler::NowNs();
    GenerateTraffic(net, spec);
    row.mat_setup_ns = Profiler::NowNs() - t0;
    row.mat_pending = PendingEvents(net);
    row.mat_flows = net.flow_monitor().size();
  }
  {
    SimConfig cfg;
    cfg.kernel.type = KernelType::kSequential;
    Network net(cfg);
    FatTreeTopo topo = BuildFatTree(net, kFatTreeK, kLinkBps, Time::Microseconds(3));
    net.Finalize();
    const TrafficSpec spec = MakeSpec(topo, duration_ms);
    row.hosts = topo.hosts.size();
    const uint64_t t0 = Profiler::NowNs();
    const StreamingTraffic stream = InstallFlowSources(net, spec);
    row.stream_setup_ns = Profiler::NowNs() - t0;
    row.stream_pending = PendingEvents(net);
    row.stream_sources = stream.sources;
  }
  return row;
}

struct RunResultRow {
  uint64_t fingerprint = 0;
  uint64_t flows = 0;
  uint64_t completed = 0;
  uint32_t shards_used = 0;
};

RunResultRow RunOnce(const KernelConfig& kcfg, bool streaming) {
  SimConfig cfg;
  cfg.kernel = kcfg;
  Network net(cfg);
  FatTreeTopo topo = BuildFatTree(net, kFatTreeK, kLinkBps, Time::Microseconds(3));
  net.Finalize();
  const TrafficSpec spec = MakeSpec(topo, kRunMs);
  if (streaming) {
    InstallFlowSources(net, spec);
  } else {
    GenerateTraffic(net, spec);
  }
  net.Run(Time::Milliseconds(kRunMs));
  RunResultRow out;
  out.fingerprint = net.flow_monitor().Fingerprint();
  out.flows = net.flow_monitor().size();
  const FlowSummary s = net.flow_monitor().Summarize();
  out.completed = s.completed;
  for (uint32_t sh = 0; sh < net.flow_monitor().num_shards(); ++sh) {
    if (net.flow_monitor().shard_flows(sh) > 0) {
      ++out.shards_used;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = HasFlag(argc, argv, "--quick");
  const std::vector<int> durations =
      quick ? std::vector<int>{4, 40} : std::vector<int>{4, 40, 400};
  // Quick mode sweeps a 10x window spread instead of 100x; scale the flow
  // floor accordingly (arrival counts are stochastic around the ratio).
  const double flow_ratio_floor = quick ? 5.0 : 10.0;

  std::printf("Streaming traffic path: setup cost and FEL footprint vs arrival "
              "window (k=%u fat tree, load %.1f)\n\n",
              kFatTreeK, kLoad);

  std::vector<SetupRow> rows;
  Table table({"window ms", "mat setup us", "mat pending", "mat flows",
               "stream setup us", "stream pending", "sources"});
  for (const int d : durations) {
    rows.push_back(MeasureSetup(d));
    const SetupRow& r = rows.back();
    table.Row({Fmt("%d", r.duration_ms), Fmt("%.1f", r.mat_setup_ns * 1e-3),
               Fmt("%llu", static_cast<unsigned long long>(r.mat_pending)),
               Fmt("%llu", static_cast<unsigned long long>(r.mat_flows)),
               Fmt("%.1f", r.stream_setup_ns * 1e-3),
               Fmt("%llu", static_cast<unsigned long long>(r.stream_pending)),
               Fmt("%u", r.stream_sources)});
  }
  table.Print();

  uint64_t stream_pending_max = 0;
  uint64_t flows_min = UINT64_MAX, flows_max = 0;
  for (const SetupRow& r : rows) {
    stream_pending_max = std::max(stream_pending_max, r.stream_pending);
    flows_min = std::min(flows_min, r.mat_flows);
    flows_max = std::max(flows_max, r.mat_flows);
  }
  const uint64_t hosts = rows.back().hosts;
  // The footprint claim: at the longest window, the materialized path holds
  // one pending event per flow where the streaming path holds at most one
  // per host.
  const double footprint_ratio =
      rows.back().stream_pending == 0
          ? 0.0
          : static_cast<double>(rows.back().mat_pending) /
                static_cast<double>(rows.back().stream_pending);
  const double flow_ratio =
      flows_min == 0 ? 0.0 : static_cast<double>(flows_max) / static_cast<double>(flows_min);
  const double setup_ratio =
      rows.back().stream_setup_ns == 0
          ? 0.0
          : static_cast<double>(rows.back().mat_setup_ns) /
                static_cast<double>(rows.back().stream_setup_ns);

  // Correctness anchors at the shortest window: sequential materialized vs
  // sequential streaming (bit-identical), and 16-executor Unison streaming
  // (flows register concurrently into per-executor shards; the fingerprint
  // is shard-layout-independent). This host may have fewer cores than
  // executors — correctness, not speed, is the claim.
  KernelConfig seq;
  seq.type = KernelType::kSequential;
  const RunResultRow mat_run = RunOnce(seq, /*streaming=*/false);
  const RunResultRow stream_run = RunOnce(seq, /*streaming=*/true);
  KernelConfig unison16;
  unison16.type = KernelType::kUnison;
  unison16.threads = 16;
  const RunResultRow sharded_run = RunOnce(unison16, /*streaming=*/true);

  const bool fingerprint_match = stream_run.fingerprint == mat_run.fingerprint &&
                                 stream_run.flows == mat_run.flows;
  const bool sharded_match = sharded_run.fingerprint == mat_run.fingerprint &&
                             sharded_run.flows == mat_run.flows;

  std::printf("\nFingerprint anchors (%dms window, %llu flows, %llu completed):\n",
              kRunMs, static_cast<unsigned long long>(mat_run.flows),
              static_cast<unsigned long long>(mat_run.completed));
  std::printf("  sequential streaming == materialized: %s\n",
              fingerprint_match ? "yes" : "NO");
  std::printf("  16-executor streaming == materialized: %s (%u shards populated)\n",
              sharded_match ? "yes" : "NO", sharded_run.shards_used);

  const bool pass = stream_pending_max > 0 && stream_pending_max <= hosts &&
                    flow_ratio >= flow_ratio_floor &&
                    footprint_ratio >= flow_ratio_floor && fingerprint_match &&
                    sharded_match;
  std::printf("\n%s: stream pending max %llu (bound: %llu hosts), flow ratio "
              "%.1fx and footprint ratio %.1fx (target >= %.0fx), setup ratio "
              "%.1fx at the longest window\n",
              pass ? "PASS" : "FAIL",
              static_cast<unsigned long long>(stream_pending_max),
              static_cast<unsigned long long>(hosts), flow_ratio,
              footprint_ratio, flow_ratio_floor, setup_ratio);

  FILE* out = std::fopen("BENCH_traffic_stream.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"workload\": \"streaming vs materialized traffic installation\",\n"
                 "  \"fat_tree_k\": %u,\n"
                 "  \"load\": %.2f,\n"
                 "  \"quick\": %s,\n"
                 "  \"rows\": [\n",
                 kFatTreeK, kLoad, quick ? "true" : "false");
    for (size_t i = 0; i < rows.size(); ++i) {
      const SetupRow& r = rows[i];
      std::fprintf(out,
                   "    {\"duration_ms\": %d, \"mat_setup_ns\": %llu, "
                   "\"mat_pending\": %llu, \"mat_flows\": %llu, "
                   "\"stream_setup_ns\": %llu, \"stream_pending\": %llu, "
                   "\"stream_sources\": %u}%s\n",
                   r.duration_ms, static_cast<unsigned long long>(r.mat_setup_ns),
                   static_cast<unsigned long long>(r.mat_pending),
                   static_cast<unsigned long long>(r.mat_flows),
                   static_cast<unsigned long long>(r.stream_setup_ns),
                   static_cast<unsigned long long>(r.stream_pending),
                   r.stream_sources, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"hosts\": %llu,\n"
                 "  \"stream_pending_max\": %llu,\n"
                 "  \"footprint_ratio\": %.2f,\n"
                 "  \"flow_ratio\": %.2f,\n"
                 "  \"setup_ratio_longest_window\": %.2f,\n"
                 "  \"fingerprint_match\": %s,\n"
                 "  \"sharded_16exec_fingerprint_match\": %s,\n"
                 "  \"sharded_16exec_shards_used\": %u,\n"
                 "  \"run_flows\": %llu,\n"
                 "  \"run_completed\": %llu,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 static_cast<unsigned long long>(hosts),
                 static_cast<unsigned long long>(stream_pending_max),
                 footprint_ratio, flow_ratio, setup_ratio,
                 fingerprint_match ? "true" : "false",
                 sharded_match ? "true" : "false", sharded_run.shards_used,
                 static_cast<unsigned long long>(mat_run.flows),
                 static_cast<unsigned long long>(mat_run.completed),
                 pass ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_traffic_stream.json\n");
  }
  return pass ? 0 : 1;
}
