// Figure 12: micro benchmarks of fine-grained partition and load-adaptive
// scheduling.
//
//   --part=a  cache misses and simulation time vs partition granularity
//             (12x12 torus, 1 thread, manual LP counts; cache misses from
//             the cache simulator — see DESIGN.md §2).
//   --part=b  cache misses under different partition schemes around a
//             bottleneck link (auto / avoid-bottleneck / coarse).
//   --part=c  scheduler slowdown factor alpha for the three metrics.
//   --part=d  simulation time vs scheduling period.
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct GranularityResult {
  uint64_t misses = 0;
  double wall_s = 0;
  uint64_t events = 0;
};

GranularityResult RunTorusWithLps(uint32_t lps, Time sim) {
  SimConfig cfg;
  cfg.seed = 51;
  ApplyDcnTcp(&cfg);
  cfg.kernel.type = KernelType::kUnison;
  cfg.kernel.threads = 1;
  cfg.partition = lps == 0 ? PartitionMode::kAuto : PartitionMode::kManual;

  CacheConfig cache_cfg;
  cache_cfg.size_bytes = 512 * 1024;
  cache_cfg.node_state_bytes = 4096;
  CacheSim cache(cache_cfg);

  Network net(cfg);
  TorusTopo topo = BuildTorus2D(net, 12, 12, 10000000000ULL, Time::Microseconds(30));
  if (lps > 0) {
    std::vector<LpId> lp(net.num_nodes());
    const uint32_t per = (net.num_nodes() + lps - 1) / lps;
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      lp[n] = std::min(n / per, lps - 1);
    }
    net.SetManualPartition(lps, std::move(lp));
  }
  net.Finalize();
  TrafficSpec traffic;
  traffic.hosts = topo.nodes;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.3;
  traffic.duration = sim;
  GenerateTraffic(net, traffic);

  cache.Install();
  const uint64_t t0 = Profiler::NowNs();
  net.Run(sim);
  const uint64_t t1 = Profiler::NowNs();
  CacheSim::Uninstall();

  return GranularityResult{cache.misses(), static_cast<double>(t1 - t0) * 1e-9,
                           net.kernel().processed_events()};
}

void PartA(bool full) {
  const Time sim = full ? Time::Milliseconds(20) : Time::Milliseconds(8);
  std::printf("\n(a) partition granularity on a 12x12 torus, 1 thread\n\n");
  Table t({"#LP", "modeled cache misses", "wall time (s)", "events"});
  for (uint32_t lps : {1u, 4u, 16u, 48u, 144u}) {
    const GranularityResult r = RunTorusWithLps(lps, sim);
    t.Row({Fmt("%u", lps), Fmt("%lu", (unsigned long)r.misses), Fmt("%.3f", r.wall_s),
           Fmt("%lu", (unsigned long)r.events)});
  }
  t.Print();
  std::printf("\nShape check: misses fall monotonically as the partition gets\n"
              "finer (per-LP windows group each node's events); wall time follows.\n");
}

void PartB(bool full) {
  const Time sim = full ? Time::Milliseconds(20) : Time::Milliseconds(8);
  std::printf("\n(b) partition schemes around a bottleneck (DCTCP-style dumbbell\n"
              "of clusters, 4 modeled threads)\n\n");

  // Two sender clusters, two receiver clusters, one bottleneck link chain.
  auto build = [sim](Network& net, int scheme) {
    // scheme 0 = auto, 1 = avoid cutting the bottleneck, 2 = coarse.
    const uint64_t bps = 10000000000ULL;
    const Time d = Time::Microseconds(3);
    std::vector<NodeId> left_hosts;
    std::vector<NodeId> right_hosts;
    const NodeId lsw = net.AddNode();
    const NodeId rsw = net.AddNode();
    for (int i = 0; i < 8; ++i) {
      const NodeId h = net.AddNode();
      net.AddLink(h, lsw, bps, d);
      left_hosts.push_back(h);
    }
    for (int i = 0; i < 8; ++i) {
      const NodeId h = net.AddNode();
      net.AddLink(h, rsw, bps, d);
      right_hosts.push_back(h);
    }
    net.AddLink(lsw, rsw, bps, d);  // The bottleneck carrying everything.
    if (scheme == 1) {
      // Fine everywhere except the two switches share one LP.
      std::vector<LpId> lp(net.num_nodes());
      lp[lsw] = 0;
      lp[rsw] = 0;
      for (uint32_t i = 0; i < 8; ++i) {
        lp[left_hosts[i]] = 1 + i;
        lp[right_hosts[i]] = 9 + i;
      }
      net.SetManualPartition(17, std::move(lp));
    } else if (scheme == 2) {
      // Coarse: left half vs right half.
      std::vector<LpId> lp(net.num_nodes(), 0);
      lp[rsw] = 1;
      for (NodeId h : right_hosts) {
        lp[h] = 1;
      }
      net.SetManualPartition(2, std::move(lp));
    }
    net.Finalize();
    GeneratePermutation(net, left_hosts, 500000, Time::Zero());
    // Cross traffic over the bottleneck.
    for (int i = 0; i < 8; ++i) {
      InstallFlow(net, FlowSpec{left_hosts[i], right_hosts[i],
                                2000000, Time::Zero(), {}});
    }
    (void)sim;
  };

  Table t({"scheme", "#LP", "modeled cache misses", "Unison(4) modeled (s)"});
  const char* names[] = {"auto (fine)", "keep bottleneck pair", "coarse halves"};
  for (int scheme = 0; scheme < 3; ++scheme) {
    SimConfig cfg;
    cfg.seed = 53;
    ApplyDcnTcp(&cfg);
    cfg.kernel.type = KernelType::kUnison;
    cfg.kernel.threads = 1;
    cfg.partition = scheme == 0 ? PartitionMode::kAuto : PartitionMode::kManual;
    cfg.profile = true;
    cfg.profile_per_lp = true;

    CacheConfig cache_cfg;
    cache_cfg.size_bytes = 256 * 1024;
    cache_cfg.node_state_bytes = 4096;
    CacheSim cache(cache_cfg);

    Network net(cfg);
    build(net, scheme);
    cache.Install();
    net.Run(sim);
    CacheSim::Uninstall();

    ParallelCostModel model(net.profiler().MergedLpRounds(), net.kernel().num_lps());
    const double modeled =
        static_cast<double>(model
                                .Unison(4, SchedulingMetric::kByLastRoundTime, 0,
                                        kUnisonRoundOverheadNs)
                                .makespan_ns) *
        1e-9;
    t.Row({names[scheme], Fmt("%u", net.kernel().num_lps()),
           Fmt("%lu", (unsigned long)cache.misses()), Fmt("%.3f", modeled)});
  }
  t.Print();
  std::printf("\nShape check: the coarse scheme is slowest (imbalance); the fine\n"
              "scheme wins on parallel time despite cutting the hot link.\n");
}

void PartC(bool full) {
  FatTreeScenario sc;
  sc.k = full ? 8 : 4;
  sc.load = 0.5;
  sc.duration = full ? Time::Milliseconds(10) : Time::Milliseconds(4);
  std::printf("\n(c) slowdown factor alpha by scheduling metric (k=%u fat-tree)\n\n", sc.k);

  SimConfig cfg;
  cfg.seed = 55;
  ApplyDcnTcp(&cfg);
  const TraceResult trace = InstrumentedRun(cfg, FatTreeBuilder(sc), sc.duration);
  ParallelCostModel model(trace.trace, trace.num_lps);

  Table t({"#threads", "by pending events", "by processing time", "none"});
  for (uint32_t threads : {4u, 8u, 12u, 16u}) {
    auto alpha = [&model, threads](SchedulingMetric m) {
      return ParallelCostModel::SlowdownFactor(
          model.Unison(threads, m, 1, kUnisonRoundOverheadNs));
    };
    t.Row({Fmt("%u", threads),
           Fmt("%.3f", alpha(SchedulingMetric::kByPendingEventCount)),
           Fmt("%.3f", alpha(SchedulingMetric::kByLastRoundTime)),
           Fmt("%.3f", alpha(SchedulingMetric::kNone))});
  }
  t.Print();
  std::printf("\nShape check: both adaptive metrics sit within ~1%% of the ideal\n"
              "schedule and of each other (the paper's Fig. 12c shows the same\n"
              "near-tie, with ByLastRoundTime ahead by a hair on their testbed);\n"
              "no scheduling is clearly worst at every thread count.\n");
}

void PartD(bool full) {
  FatTreeScenario sc;
  sc.k = full ? 8 : 4;
  sc.load = 0.5;
  sc.duration = full ? Time::Milliseconds(10) : Time::Milliseconds(4);
  std::printf("\n(d) scheduling period (k=%u fat-tree, 8 modeled threads)\n\n", sc.k);

  SimConfig cfg;
  cfg.seed = 57;
  ApplyDcnTcp(&cfg);
  const TraceResult trace = InstrumentedRun(cfg, FatTreeBuilder(sc), sc.duration);
  ParallelCostModel model(trace.trace, trace.num_lps);

  // Sort cost per re-sort, measured live on this machine for the actual LP
  // count (the overhead the period amortizes).
  std::vector<uint64_t> costs(trace.num_lps);
  Rng rng(1, 2);
  for (auto& c : costs) {
    c = rng.NextU64Below(1000000);
  }
  const uint64_t t0 = Profiler::NowNs();
  constexpr int kSortReps = 200;
  for (int i = 0; i < kSortReps; ++i) {
    (void)SortByCostDescending(costs);
  }
  const uint64_t sort_ns = (Profiler::NowNs() - t0) / kSortReps;

  Table t({"period", "modeled time (s)", "of which sort overhead (ms)"});
  for (uint32_t period : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const ModelResult r =
        model.Unison(8, SchedulingMetric::kByLastRoundTime, period, kUnisonRoundOverheadNs);
    const uint64_t resorts = (model.rounds() + period - 1) / period;
    const double total = static_cast<double>(r.makespan_ns + resorts * sort_ns) * 1e-9;
    t.Row({Fmt("%u", period), Fmt("%.4f", total),
           Fmt("%.3f", static_cast<double>(resorts * sort_ns) * 1e-6)});
  }
  t.Print();
  std::printf("\nShape check: a U-shape — short periods pay sorting, long periods\n"
              "pay stale estimates; the default ceil(log2(#LP)) sits near the\n"
              "bottom.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  const std::string part = GetOpt(argc, argv, "--part", "all");
  std::printf("Figure 12 — fine-grained partition & load-adaptive scheduling micro\n"
              "benchmarks\n");
  if (part == "a" || part == "all") {
    PartA(full);
  }
  if (part == "b" || part == "all") {
    PartB(full);
  }
  if (part == "c" || part == "all") {
    PartC(full);
  }
  if (part == "d" || part == "all") {
    PartD(full);
  }
  return 0;
}
