// Table 2: accuracy of Unison vs sequential DES, and of the MimicNet
// surrogate vs full-fidelity simulation, on 2-cluster and 4-cluster
// fat-trees (TCP NewReno + RED, 100Mbps / 500us links, web-search traffic at
// 70% of bisection bandwidth, with 10% of flows redirected into the
// right-most cluster — the paper's §6.2 setup).
//
// Expected shape: Unison matches sequential within a few percent on every
// metric (only simultaneous-event tie-breaking differs); MimicNet is good on
// the 2-cluster fabric it was trained on and degrades for 4 clusters where
// the redirected (incast-like) traffic does not scale proportionally.
#include <set>

#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct Metrics {
  double fct_ms = 0;
  double rtt_ms = 0;
  double thr_mbps = 0;
};

Metrics FromSummary(const FlowSummary& s) {
  return Metrics{s.mean_fct_ms, s.mean_rtt_ms, s.mean_throughput_mbps};
}

struct FabricResult {
  Metrics metrics;
  std::vector<FlowRecord> flows;
};

FabricResult RunFabric(uint32_t clusters, KernelType kernel, uint64_t seed, Time sim) {
  SimConfig cfg;
  cfg.kernel.type = kernel;
  cfg.kernel.threads = 4;
  cfg.seed = seed;
  cfg.queue.kind = QueueConfig::Kind::kRed;
  cfg.queue.capacity_bytes = 100 * 1500;
  cfg.queue.red_min_th = 5 * 1500;
  cfg.queue.red_max_th = 15 * 1500;
  cfg.tcp.ecn = false;  // Plain NewReno over RED-with-drop.
  cfg.tcp.min_rto = Time::Milliseconds(200);
  cfg.tcp.initial_rto = Time::Milliseconds(200);

  Network net(cfg);
  ClusterFatTreeTopo topo = BuildClusterFatTree(net, clusters, /*racks=*/2,
                                                /*hosts_per_rack=*/2, /*aggs=*/2,
                                                /*cores=*/2, 100000000ULL,
                                                Time::Microseconds(500));
  net.Finalize();

  TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.7;
  traffic.duration = sim;
  // 10% of flows redirected into the right-most cluster.
  traffic.redirect_prob = 0.1;
  traffic.redirect_begin = (clusters - 1) * topo.hosts_per_cluster;
  GenerateTraffic(net, traffic);
  net.Run(sim + Time::Seconds(0.5));  // Drain tail flows.

  FabricResult out;
  out.metrics = FromSummary(net.flow_monitor().Summarize());
  out.flows = net.flow_monitor().CollectFlows();
  return out;
}

std::string Err(double a, double b) {
  return b == 0 ? "-" : Fmt("%.1f%%", 100.0 * std::abs(a - b) / b);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  const Time sim = full ? Time::Seconds(5.0) : Time::Seconds(1.0);
  const uint64_t train_seed = 100;  // "Training seed 0" of the paper.
  const uint64_t eval_seed = 109;   // "Evaluation seed 9".

  std::printf("Table 2 — accuracy on 2- and 4-cluster fat-trees (means; FCT/RTT in\n"
              "ms, throughput in Mbps; %0.1fs simulated)\n\n", sim.ToSeconds());

  // Train the MimicNet surrogate: full-fidelity 2-cluster run (training
  // seed), flows sourced in cluster 0 only.
  const FabricResult train = RunFabric(2, KernelType::kSequential, train_seed, sim);
  // Node ids are deterministic: rebuild the topology shape to identify the
  // hosts of cluster 0.
  std::vector<FlowRecord> cluster0_flows;
  {
    SimConfig probe_cfg;
    Network probe(probe_cfg);
    ClusterFatTreeTopo topo =
        BuildClusterFatTree(probe, 2, 2, 2, 2, 2, 100000000ULL, Time::Microseconds(500));
    std::set<NodeId> cluster0(topo.hosts.begin(),
                              topo.hosts.begin() + topo.hosts_per_cluster);
    for (const FlowRecord& f : train.flows) {
      if (cluster0.count(f.src) > 0) {
        cluster0_flows.push_back(f);
      }
    }
  }
  MimicNetSurrogate mimic;
  mimic.Train(cluster0_flows);

  for (uint32_t clusters : {2u, 4u}) {
    const FabricResult seq = RunFabric(clusters, KernelType::kSequential, eval_seed, sim);
    const FabricResult uni = RunFabric(clusters, KernelType::kUnison, eval_seed, sim);
    Rng rng(eval_seed, 999);
    const MimicPrediction mp = mimic.Predict(seq.flows, rng);

    std::printf("%u-cluster fabric:\n", clusters);
    Table t({"simulator", "FCT", "RTT", "Thr."});
    t.Row({"full fidelity (baseline)", Fmt("%.2f", seq.metrics.fct_ms),
           Fmt("%.2f", seq.metrics.rtt_ms), Fmt("%.2f", seq.metrics.thr_mbps)});
    t.Row({"MimicNet surrogate", Fmt("%.2f", mp.mean_fct_ms), Fmt("%.2f", mp.mean_rtt_ms),
           Fmt("%.2f", mp.mean_throughput_mbps)});
    t.Row({"  rel. error", Err(mp.mean_fct_ms, seq.metrics.fct_ms),
           Err(mp.mean_rtt_ms, seq.metrics.rtt_ms),
           Err(mp.mean_throughput_mbps, seq.metrics.thr_mbps)});
    t.Row({"Unison (4 threads)", Fmt("%.2f", uni.metrics.fct_ms),
           Fmt("%.2f", uni.metrics.rtt_ms), Fmt("%.2f", uni.metrics.thr_mbps)});
    t.Row({"  rel. error", Err(uni.metrics.fct_ms, seq.metrics.fct_ms),
           Err(uni.metrics.rtt_ms, seq.metrics.rtt_ms),
           Err(uni.metrics.thr_mbps, seq.metrics.thr_mbps)});
    t.Print();
    std::printf("\n");
  }

  std::printf("Shape check: Unison tracks the sequential baseline within a few\n"
              "percent for both fabrics (identical tie-break rule -> here the\n"
              "results are in fact bit-identical); the MimicNet surrogate is\n"
              "reasonable at 2 clusters and visibly off at 4, where redirected\n"
              "traffic creates congestion its trained cluster never saw.\n");
  return 0;
}
