// Ablation: setup-time costs that gate "zero configuration" in practice —
// the fine-grained partition (Algorithm 1) and the global ECMP route
// computation, across topology sizes.
#include <benchmark/benchmark.h>

#include "src/unison.h"

namespace unison {
namespace {

TopoGraph FatTreeGraph(uint32_t k) {
  SimConfig cfg;
  Network net(cfg);
  BuildFatTree(net, k, 10000000000ULL, Time::Microseconds(3));
  TopoGraph g;
  g.num_nodes = net.num_nodes();
  for (const auto& l : net.links()) {
    g.edges.push_back(TopoEdge{l.a, l.b, l.delay, true});
  }
  return g;
}

void BM_FineGrainedPartition(benchmark::State& state) {
  const TopoGraph g = FatTreeGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FineGrainedPartition(g));
  }
  state.SetLabel(std::to_string(g.num_nodes) + " nodes");
}
BENCHMARK(BM_FineGrainedPartition)->Arg(4)->Arg(8)->Arg(16);

void BM_EcmpRouteCompute(benchmark::State& state) {
  SimConfig cfg;
  Network net(cfg);
  BuildFatTree(net, static_cast<uint32_t>(state.range(0)), 10000000000ULL,
               Time::Microseconds(3));
  GlobalRouting routing;
  for (auto _ : state) {
    routing.Compute(net);
  }
  state.SetLabel(std::to_string(net.num_nodes()) + " nodes");
}
BENCHMARK(BM_EcmpRouteCompute)->Arg(4)->Arg(8);

void BM_LptSchedule(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(5, 0);
  std::vector<uint64_t> costs(n);
  for (auto& c : costs) {
    c = rng.NextU64Below(1000000);
  }
  for (auto _ : state) {
    const auto order = SortByCostDescending(costs);
    benchmark::DoNotOptimize(ListScheduleMakespan(costs, order, 16));
  }
  state.SetLabel(std::to_string(n) + " LPs");
}
BENCHMARK(BM_LptSchedule)->Arg(64)->Arg(1024)->Arg(65536);

}  // namespace
}  // namespace unison

BENCHMARK_MAIN();
