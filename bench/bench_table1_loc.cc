// Table 1: configuration work to adapt sequential DES models to PDES.
//
// The paper counts lines of model code added/removed when porting four ns-3
// models to MPI-based PDES. We reproduce the measurement against this
// repository's own baselines: for each topology we count the concrete
// configuration obligations the manual workflow imposes —
//   * partition rules: the distinct node-group -> LP assignment statements a
//     user must write (each loop in our Manual*Partition helpers is one
//     rule, as it would be one code block in a model file);
//   * per-LP result collection: with MPI-style PDES each rank only sees its
//     own flows, so results must be gathered and merged per LP (+1 merge);
//   * core/LP budgeting: choosing the LP count for the hardware.
// Unison needs none of these (automatic partition, shared-memory
// statistics): its column is identically zero — the user-transparency claim.
#include "bench/bench_util.h"
#include "src/unison.h"

using namespace unison;
using namespace unison::bench;

namespace {

struct ModelPort {
  const char* model;
  uint32_t partition_rules;  // Assignment statements in the manual partition.
  uint32_t lps;              // Per-LP collection scripts needed.
};

}  // namespace

int main(int, char**) {
  std::printf("Table 1 — configuration burden of adapting DES models to PDES\n\n");

  // Build each topology and derive the burden from the *actual* manual
  // partition helpers this repo ships for the baselines.
  std::vector<ModelPort> ports;
  {
    SimConfig cfg;
    Network net(cfg);
    FatTreeTopo t = BuildFatTree(net, 8, 1000000000ULL, Time::Microseconds(3));
    (void)FatTreePodPartition(t, net.num_nodes());
    // Hosts, edge, agg, core assignment rules.
    ports.push_back({"Fat-tree", 4, t.k});
  }
  {
    SimConfig cfg;
    Network net(cfg);
    BCubeTopo t = BuildBCube(net, 8, 2, 1000000000ULL, Time::Microseconds(3));
    (void)BCubePartition(t, net.num_nodes());
    // Hosts, level-0 switches, one rule per higher level.
    ports.push_back({"BCube", 2 + t.levels - 1, static_cast<uint32_t>(t.switches[0].size())});
  }
  {
    SimConfig cfg;
    Network net(cfg);
    BuildSpineLeaf(net, 4, 8, 16, 1000000000ULL, Time::Microseconds(3));
    // Hosts+leaves per LP, spines distributed: 3 rules; 8 LPs.
    ports.push_back({"Spine-leaf", 3, 8});
  }
  {
    SimConfig cfg;
    Network net(cfg);
    BuildTorus2D(net, 12, 12, 1000000000ULL, Time::Microseconds(30));
    // Contiguous-range rule + remainder handling; LP count = cores.
    ports.push_back({"2D-torus", 2, 12});
  }

  Table t({"model", "partition rules", "per-LP result collection", "core budgeting",
           "total manual steps", "Unison"});
  for (const ModelPort& p : ports) {
    const uint32_t total = p.partition_rules + p.lps + 1 + 1;
    t.Row({p.model, Fmt("%u", p.partition_rules), Fmt("%u gather + 1 merge", p.lps),
           "1", Fmt("%u", total), "0"});
  }
  t.Print();

  std::printf("\nThe paper's Table 1 reports the same asymmetry as model-code LOC\n"
              "(33-44 lines added per model for MPI PDES, zero for Unison). Here\n"
              "the burden is counted in concrete configuration obligations of\n"
              "this repository's own manual-partition workflow; by construction\n"
              "the Unison column is zero: the same model runs parallel with only\n"
              "SimConfig{.kernel = kUnison, .threads = N}.\n");
  return 0;
}
