
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cachesim/cache_sim.cc" "src/CMakeFiles/unison.dir/cachesim/cache_sim.cc.o" "gcc" "src/CMakeFiles/unison.dir/cachesim/cache_sim.cc.o.d"
  "/root/repo/src/core/calendar_queue.cc" "src/CMakeFiles/unison.dir/core/calendar_queue.cc.o" "gcc" "src/CMakeFiles/unison.dir/core/calendar_queue.cc.o.d"
  "/root/repo/src/core/fel.cc" "src/CMakeFiles/unison.dir/core/fel.cc.o" "gcc" "src/CMakeFiles/unison.dir/core/fel.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/CMakeFiles/unison.dir/core/rng.cc.o" "gcc" "src/CMakeFiles/unison.dir/core/rng.cc.o.d"
  "/root/repo/src/costmodel/cost_model.cc" "src/CMakeFiles/unison.dir/costmodel/cost_model.cc.o" "gcc" "src/CMakeFiles/unison.dir/costmodel/cost_model.cc.o.d"
  "/root/repo/src/flowsim/flow_level.cc" "src/CMakeFiles/unison.dir/flowsim/flow_level.cc.o" "gcc" "src/CMakeFiles/unison.dir/flowsim/flow_level.cc.o.d"
  "/root/repo/src/kernel/barrier.cc" "src/CMakeFiles/unison.dir/kernel/barrier.cc.o" "gcc" "src/CMakeFiles/unison.dir/kernel/barrier.cc.o.d"
  "/root/repo/src/kernel/factory.cc" "src/CMakeFiles/unison.dir/kernel/factory.cc.o" "gcc" "src/CMakeFiles/unison.dir/kernel/factory.cc.o.d"
  "/root/repo/src/kernel/hybrid.cc" "src/CMakeFiles/unison.dir/kernel/hybrid.cc.o" "gcc" "src/CMakeFiles/unison.dir/kernel/hybrid.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/unison.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/unison.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/lp.cc" "src/CMakeFiles/unison.dir/kernel/lp.cc.o" "gcc" "src/CMakeFiles/unison.dir/kernel/lp.cc.o.d"
  "/root/repo/src/kernel/nullmsg.cc" "src/CMakeFiles/unison.dir/kernel/nullmsg.cc.o" "gcc" "src/CMakeFiles/unison.dir/kernel/nullmsg.cc.o.d"
  "/root/repo/src/kernel/sequential.cc" "src/CMakeFiles/unison.dir/kernel/sequential.cc.o" "gcc" "src/CMakeFiles/unison.dir/kernel/sequential.cc.o.d"
  "/root/repo/src/kernel/unison.cc" "src/CMakeFiles/unison.dir/kernel/unison.cc.o" "gcc" "src/CMakeFiles/unison.dir/kernel/unison.cc.o.d"
  "/root/repo/src/mlsim/surrogates.cc" "src/CMakeFiles/unison.dir/mlsim/surrogates.cc.o" "gcc" "src/CMakeFiles/unison.dir/mlsim/surrogates.cc.o.d"
  "/root/repo/src/net/app.cc" "src/CMakeFiles/unison.dir/net/app.cc.o" "gcc" "src/CMakeFiles/unison.dir/net/app.cc.o.d"
  "/root/repo/src/net/link.cc" "src/CMakeFiles/unison.dir/net/link.cc.o" "gcc" "src/CMakeFiles/unison.dir/net/link.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/unison.dir/net/network.cc.o" "gcc" "src/CMakeFiles/unison.dir/net/network.cc.o.d"
  "/root/repo/src/net/node.cc" "src/CMakeFiles/unison.dir/net/node.cc.o" "gcc" "src/CMakeFiles/unison.dir/net/node.cc.o.d"
  "/root/repo/src/net/queue.cc" "src/CMakeFiles/unison.dir/net/queue.cc.o" "gcc" "src/CMakeFiles/unison.dir/net/queue.cc.o.d"
  "/root/repo/src/net/routing.cc" "src/CMakeFiles/unison.dir/net/routing.cc.o" "gcc" "src/CMakeFiles/unison.dir/net/routing.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/CMakeFiles/unison.dir/net/tcp.cc.o" "gcc" "src/CMakeFiles/unison.dir/net/tcp.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/CMakeFiles/unison.dir/net/udp.cc.o" "gcc" "src/CMakeFiles/unison.dir/net/udp.cc.o.d"
  "/root/repo/src/partition/fine_grained.cc" "src/CMakeFiles/unison.dir/partition/fine_grained.cc.o" "gcc" "src/CMakeFiles/unison.dir/partition/fine_grained.cc.o.d"
  "/root/repo/src/partition/graph.cc" "src/CMakeFiles/unison.dir/partition/graph.cc.o" "gcc" "src/CMakeFiles/unison.dir/partition/graph.cc.o.d"
  "/root/repo/src/partition/manual.cc" "src/CMakeFiles/unison.dir/partition/manual.cc.o" "gcc" "src/CMakeFiles/unison.dir/partition/manual.cc.o.d"
  "/root/repo/src/sched/lpt.cc" "src/CMakeFiles/unison.dir/sched/lpt.cc.o" "gcc" "src/CMakeFiles/unison.dir/sched/lpt.cc.o.d"
  "/root/repo/src/sched/metrics.cc" "src/CMakeFiles/unison.dir/sched/metrics.cc.o" "gcc" "src/CMakeFiles/unison.dir/sched/metrics.cc.o.d"
  "/root/repo/src/sched/thread_pool.cc" "src/CMakeFiles/unison.dir/sched/thread_pool.cc.o" "gcc" "src/CMakeFiles/unison.dir/sched/thread_pool.cc.o.d"
  "/root/repo/src/stats/digest.cc" "src/CMakeFiles/unison.dir/stats/digest.cc.o" "gcc" "src/CMakeFiles/unison.dir/stats/digest.cc.o.d"
  "/root/repo/src/stats/flow_monitor.cc" "src/CMakeFiles/unison.dir/stats/flow_monitor.cc.o" "gcc" "src/CMakeFiles/unison.dir/stats/flow_monitor.cc.o.d"
  "/root/repo/src/stats/profiler.cc" "src/CMakeFiles/unison.dir/stats/profiler.cc.o" "gcc" "src/CMakeFiles/unison.dir/stats/profiler.cc.o.d"
  "/root/repo/src/topo/bcube.cc" "src/CMakeFiles/unison.dir/topo/bcube.cc.o" "gcc" "src/CMakeFiles/unison.dir/topo/bcube.cc.o.d"
  "/root/repo/src/topo/dragonfly.cc" "src/CMakeFiles/unison.dir/topo/dragonfly.cc.o" "gcc" "src/CMakeFiles/unison.dir/topo/dragonfly.cc.o.d"
  "/root/repo/src/topo/fat_tree.cc" "src/CMakeFiles/unison.dir/topo/fat_tree.cc.o" "gcc" "src/CMakeFiles/unison.dir/topo/fat_tree.cc.o.d"
  "/root/repo/src/topo/lan.cc" "src/CMakeFiles/unison.dir/topo/lan.cc.o" "gcc" "src/CMakeFiles/unison.dir/topo/lan.cc.o.d"
  "/root/repo/src/topo/spine_leaf.cc" "src/CMakeFiles/unison.dir/topo/spine_leaf.cc.o" "gcc" "src/CMakeFiles/unison.dir/topo/spine_leaf.cc.o.d"
  "/root/repo/src/topo/torus.cc" "src/CMakeFiles/unison.dir/topo/torus.cc.o" "gcc" "src/CMakeFiles/unison.dir/topo/torus.cc.o.d"
  "/root/repo/src/topo/wan.cc" "src/CMakeFiles/unison.dir/topo/wan.cc.o" "gcc" "src/CMakeFiles/unison.dir/topo/wan.cc.o.d"
  "/root/repo/src/traffic/cdf.cc" "src/CMakeFiles/unison.dir/traffic/cdf.cc.o" "gcc" "src/CMakeFiles/unison.dir/traffic/cdf.cc.o.d"
  "/root/repo/src/traffic/generator.cc" "src/CMakeFiles/unison.dir/traffic/generator.cc.o" "gcc" "src/CMakeFiles/unison.dir/traffic/generator.cc.o.d"
  "/root/repo/src/traffic/trace.cc" "src/CMakeFiles/unison.dir/traffic/trace.cc.o" "gcc" "src/CMakeFiles/unison.dir/traffic/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
