file(REMOVE_RECURSE
  "libunison.a"
)
