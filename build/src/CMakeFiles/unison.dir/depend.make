# Empty dependencies file for unison.
# This may be replaced when dependencies are built.
