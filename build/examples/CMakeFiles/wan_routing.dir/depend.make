# Empty dependencies file for wan_routing.
# This may be replaced when dependencies are built.
