file(REMOVE_RECURSE
  "CMakeFiles/wan_routing.dir/wan_routing.cpp.o"
  "CMakeFiles/wan_routing.dir/wan_routing.cpp.o.d"
  "wan_routing"
  "wan_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
