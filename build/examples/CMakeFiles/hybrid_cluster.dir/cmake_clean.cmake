file(REMOVE_RECURSE
  "CMakeFiles/hybrid_cluster.dir/hybrid_cluster.cpp.o"
  "CMakeFiles/hybrid_cluster.dir/hybrid_cluster.cpp.o.d"
  "hybrid_cluster"
  "hybrid_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
