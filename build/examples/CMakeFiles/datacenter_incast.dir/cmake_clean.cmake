file(REMOVE_RECURSE
  "CMakeFiles/datacenter_incast.dir/datacenter_incast.cpp.o"
  "CMakeFiles/datacenter_incast.dir/datacenter_incast.cpp.o.d"
  "datacenter_incast"
  "datacenter_incast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
