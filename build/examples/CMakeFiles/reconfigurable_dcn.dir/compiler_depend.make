# Empty compiler generated dependencies file for reconfigurable_dcn.
# This may be replaced when dependencies are built.
