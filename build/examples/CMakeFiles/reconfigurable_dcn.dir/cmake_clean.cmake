file(REMOVE_RECURSE
  "CMakeFiles/reconfigurable_dcn.dir/reconfigurable_dcn.cpp.o"
  "CMakeFiles/reconfigurable_dcn.dir/reconfigurable_dcn.cpp.o.d"
  "reconfigurable_dcn"
  "reconfigurable_dcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfigurable_dcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
