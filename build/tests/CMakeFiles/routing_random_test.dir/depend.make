# Empty dependencies file for routing_random_test.
# This may be replaced when dependencies are built.
