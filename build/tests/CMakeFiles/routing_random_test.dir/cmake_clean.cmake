file(REMOVE_RECURSE
  "CMakeFiles/routing_random_test.dir/routing_random_test.cc.o"
  "CMakeFiles/routing_random_test.dir/routing_random_test.cc.o.d"
  "routing_random_test"
  "routing_random_test.pdb"
  "routing_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
