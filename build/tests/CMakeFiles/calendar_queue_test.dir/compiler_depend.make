# Empty compiler generated dependencies file for calendar_queue_test.
# This may be replaced when dependencies are built.
