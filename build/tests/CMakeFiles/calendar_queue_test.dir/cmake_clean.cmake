file(REMOVE_RECURSE
  "CMakeFiles/calendar_queue_test.dir/calendar_queue_test.cc.o"
  "CMakeFiles/calendar_queue_test.dir/calendar_queue_test.cc.o.d"
  "calendar_queue_test"
  "calendar_queue_test.pdb"
  "calendar_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calendar_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
