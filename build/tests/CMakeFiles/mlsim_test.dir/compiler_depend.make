# Empty compiler generated dependencies file for mlsim_test.
# This may be replaced when dependencies are built.
