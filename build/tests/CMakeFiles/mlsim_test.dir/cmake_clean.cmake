file(REMOVE_RECURSE
  "CMakeFiles/mlsim_test.dir/mlsim_test.cc.o"
  "CMakeFiles/mlsim_test.dir/mlsim_test.cc.o.d"
  "mlsim_test"
  "mlsim_test.pdb"
  "mlsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
