# Empty dependencies file for dragonfly_test.
# This may be replaced when dependencies are built.
