file(REMOVE_RECURSE
  "CMakeFiles/dragonfly_test.dir/dragonfly_test.cc.o"
  "CMakeFiles/dragonfly_test.dir/dragonfly_test.cc.o.d"
  "dragonfly_test"
  "dragonfly_test.pdb"
  "dragonfly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dragonfly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
