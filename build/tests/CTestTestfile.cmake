# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/dv_test[1]_include.cmake")
include("/root/repo/build/tests/reconfig_test[1]_include.cmake")
include("/root/repo/build/tests/costmodel_test[1]_include.cmake")
include("/root/repo/build/tests/cachesim_test[1]_include.cmake")
include("/root/repo/build/tests/mlsim_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/udp_test[1]_include.cmake")
include("/root/repo/build/tests/lan_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_property_test[1]_include.cmake")
include("/root/repo/build/tests/calendar_queue_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/routing_random_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/flowsim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/dragonfly_test[1]_include.cmake")
include("/root/repo/build/tests/window_test[1]_include.cmake")
