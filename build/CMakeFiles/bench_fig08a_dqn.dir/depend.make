# Empty dependencies file for bench_fig08a_dqn.
# This may be replaced when dependencies are built.
