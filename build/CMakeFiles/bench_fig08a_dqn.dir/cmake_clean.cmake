file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08a_dqn.dir/bench/bench_fig08a_dqn.cc.o"
  "CMakeFiles/bench_fig08a_dqn.dir/bench/bench_fig08a_dqn.cc.o.d"
  "bench/bench_fig08a_dqn"
  "bench/bench_fig08a_dqn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08a_dqn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
