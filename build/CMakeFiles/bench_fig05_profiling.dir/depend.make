# Empty dependencies file for bench_fig05_profiling.
# This may be replaced when dependencies are built.
