file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_profiling.dir/bench/bench_fig05_profiling.cc.o"
  "CMakeFiles/bench_fig05_profiling.dir/bench/bench_fig05_profiling.cc.o.d"
  "bench/bench_fig05_profiling"
  "bench/bench_fig05_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
