file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08b_speedup.dir/bench/bench_fig08b_speedup.cc.o"
  "CMakeFiles/bench_fig08b_speedup.dir/bench/bench_fig08b_speedup.cc.o.d"
  "bench/bench_fig08b_speedup"
  "bench/bench_fig08b_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08b_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
