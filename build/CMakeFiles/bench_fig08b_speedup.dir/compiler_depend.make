# Empty compiler generated dependencies file for bench_fig08b_speedup.
# This may be replaced when dependencies are built.
