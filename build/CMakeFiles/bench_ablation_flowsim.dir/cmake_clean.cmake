file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flowsim.dir/bench/bench_ablation_flowsim.cc.o"
  "CMakeFiles/bench_ablation_flowsim.dir/bench/bench_ablation_flowsim.cc.o.d"
  "bench/bench_ablation_flowsim"
  "bench/bench_ablation_flowsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flowsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
