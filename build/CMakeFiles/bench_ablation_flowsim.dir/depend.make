# Empty dependencies file for bench_ablation_flowsim.
# This may be replaced when dependencies are built.
