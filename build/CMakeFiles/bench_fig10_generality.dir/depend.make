# Empty dependencies file for bench_fig10_generality.
# This may be replaced when dependencies are built.
