file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_generality.dir/bench/bench_fig10_generality.cc.o"
  "CMakeFiles/bench_fig10_generality.dir/bench/bench_fig10_generality.cc.o.d"
  "bench/bench_fig10_generality"
  "bench/bench_fig10_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
