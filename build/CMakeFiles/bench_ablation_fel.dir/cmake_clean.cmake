file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fel.dir/bench/bench_ablation_fel.cc.o"
  "CMakeFiles/bench_ablation_fel.dir/bench/bench_ablation_fel.cc.o.d"
  "bench/bench_ablation_fel"
  "bench/bench_ablation_fel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
