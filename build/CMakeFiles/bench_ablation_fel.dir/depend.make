# Empty dependencies file for bench_ablation_fel.
# This may be replaced when dependencies are built.
