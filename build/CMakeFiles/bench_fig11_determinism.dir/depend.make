# Empty dependencies file for bench_fig11_determinism.
# This may be replaced when dependencies are built.
