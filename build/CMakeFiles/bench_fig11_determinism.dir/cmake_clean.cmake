file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_determinism.dir/bench/bench_fig11_determinism.cc.o"
  "CMakeFiles/bench_fig11_determinism.dir/bench/bench_fig11_determinism.cc.o.d"
  "bench/bench_fig11_determinism"
  "bench/bench_fig11_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
