# Empty dependencies file for bench_dctcp_repro.
# This may be replaced when dependencies are built.
