file(REMOVE_RECURSE
  "CMakeFiles/bench_dctcp_repro.dir/bench/bench_dctcp_repro.cc.o"
  "CMakeFiles/bench_dctcp_repro.dir/bench/bench_dctcp_repro.cc.o.d"
  "bench/bench_dctcp_repro"
  "bench/bench_dctcp_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dctcp_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
