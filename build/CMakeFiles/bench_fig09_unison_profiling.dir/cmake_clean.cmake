file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_unison_profiling.dir/bench/bench_fig09_unison_profiling.cc.o"
  "CMakeFiles/bench_fig09_unison_profiling.dir/bench/bench_fig09_unison_profiling.cc.o.d"
  "bench/bench_fig09_unison_profiling"
  "bench/bench_fig09_unison_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_unison_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
