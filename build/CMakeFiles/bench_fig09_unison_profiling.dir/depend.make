# Empty dependencies file for bench_fig09_unison_profiling.
# This may be replaced when dependencies are built.
