// Reconfigurable data center (§6.1, Fig. 10d): a k=4 fat-tree whose core
// layer is periodically swapped for an "optical circuit" configuration by
// global events — the TDTCP-style scenario. Dynamic topology is what the
// public LP exists for: the event runs once, rewires links, recomputes
// routing and lookahead, and every LP observes the change at the same
// simulated instant.
//
//   $ ./examples/reconfigurable_dcn
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "src/unison.h"

int main() {
  unison::SimConfig cfg;
  cfg.kernel.type = unison::KernelType::kUnison;
  cfg.kernel.threads = 4;
  cfg.seed = 11;

  unison::Network net(cfg);
  unison::FatTreeTopo topo =
      unison::BuildFatTree(net, 4, 10'000'000'000ULL, unison::Time::Microseconds(3));
  net.Finalize();

  // Links touching core switches 1..3: the "electrical" half we toggle.
  // Core 0 stays up, standing in for the always-on optical circuit.
  std::vector<uint32_t> toggled;
  for (uint32_t i = 0; i < net.links().size(); ++i) {
    const auto& l = net.links()[i];
    for (size_t c = 1; c < topo.core_switches.size(); ++c) {
      if (l.a == topo.core_switches[c] || l.b == topo.core_switches[c]) {
        toggled.push_back(i);
      }
    }
  }

  const unison::Time interval = unison::Time::Milliseconds(2);
  unison::Network* netp = &net;
  int reconfigs = 0;
  // The flip closure lives on this frame (outliving Run); events capture a
  // reference, avoiding a shared_ptr self-cycle.
  std::function<void(bool)> flip;
  flip = [netp, toggled, interval, &flip, &reconfigs](bool up) {
    for (uint32_t l : toggled) {
      netp->SetLinkUp(l, up);
    }
    ++reconfigs;
    netp->sim().ScheduleGlobal(netp->sim().Now() + interval,
                               [&flip, up] { flip(!up); });
  };
  net.sim().ScheduleGlobal(interval, [&flip] { flip(false); });

  unison::TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.25;
  traffic.duration = unison::Time::Milliseconds(40);
  unison::GenerateTraffic(net, traffic);

  net.Run(unison::Time::Milliseconds(60));

  const unison::FlowSummary s = net.flow_monitor().Summarize();
  std::printf("reconfigurable DCN: %d topology reconfigurations in 60ms simulated\n",
              reconfigs);
  std::printf("flows %lu, completed %lu, mean FCT %.3f ms\n",
              static_cast<unsigned long>(s.flows),
              static_cast<unsigned long>(s.completed), s.mean_fct_ms);
  std::printf("events processed: %lu across %lu rounds, %u LPs\n",
              static_cast<unsigned long>(net.kernel().processed_events()),
              static_cast<unsigned long>(net.kernel().rounds()),
              net.kernel().num_lps());
  std::printf("\nTCP rides through every reconfiguration: flows retransmit across\n"
              "the outage and finish once paths return.\n");
  return 0;
}
