// Wide-area simulation with dynamic routing: the GEANT backbone runs a
// RIP-like distance-vector protocol as real simulated control traffic, a
// backbone link fails mid-run, and the protocol reconverges while TCP flows
// keep completing. This is the §6.1 wide-area scenario — impossible to set
// up for static-partition PDES without hand-crafted LP maps, and exactly one
// SimConfig field here.
//
//   $ ./examples/wan_routing
#include <cstdio>

#include "src/unison.h"

int main() {
  unison::SimConfig cfg;
  cfg.kernel.type = unison::KernelType::kUnison;
  cfg.kernel.threads = 4;
  cfg.seed = 3;
  cfg.tcp.min_rto = unison::Time::Milliseconds(200);  // WAN timescales.
  cfg.tcp.initial_rto = unison::Time::Milliseconds(200);

  unison::Network net(cfg);
  unison::WanTopo wan = unison::BuildWan(net, unison::WanName::kGeant,
                                         1'000'000'000ULL, unison::Time::Microseconds(100));
  net.EnableDistanceVector(unison::Time::Milliseconds(100));
  net.Finalize();

  std::printf("GEANT backbone: %zu routers, %u links, distance-vector routing\n",
              wan.routers.size(), wan.backbone_links);

  // Web-search traffic between European PoP hosts.
  unison::TrafficSpec traffic;
  traffic.hosts = wan.hosts;
  traffic.bisection_bps = wan.bisection_bps;
  traffic.load = 0.2;
  traffic.duration = unison::Time::Seconds(2.0);
  unison::GenerateTraffic(net, traffic);
  // Hold flow starts until the first advertisement wave converges.
  // (Flows scheduled before convergence would simply be unroutable and the
  // sender's RTO would retry, which also works but muddies the statistics.)

  // Fail the Amsterdam-London link at t=1s via a global event; the protocol
  // must reroute (e.g. via Brussels/Paris).
  unison::Network* netp = &net;
  net.sim().ScheduleGlobal(unison::Time::Seconds(1.0), [netp] {
    std::printf("  t=1s: backbone link 0 (Amsterdam-London) fails\n");
    netp->SetLinkUp(0, false);
  });

  net.Run(unison::Time::Seconds(2.5));

  const unison::FlowSummary s = net.flow_monitor().Summarize();
  std::printf("\nflows %lu, completed %lu (%.1f%%)\n",
              static_cast<unsigned long>(s.flows),
              static_cast<unsigned long>(s.completed),
              100.0 * static_cast<double>(s.completed) / static_cast<double>(s.flows));
  std::printf("mean FCT %.2f ms, mean RTT %.2f ms, mean per-flow throughput %.2f Mbps\n",
              s.mean_fct_ms, s.mean_rtt_ms, s.mean_throughput_mbps);
  std::printf("routing updates sent: %lu control packets\n",
              static_cast<unsigned long>(net.dv_routing()->total_updates()));

  // Show the reconverged route length from Amsterdam to London.
  const unison::DvState* ams = net.node(wan.routers[0]).dv();
  std::printf("Amsterdam -> London hop count after failure: %u (was 1)\n",
              ams->dist[wan.routers[1]]);
  return 0;
}
