// Trace demo: run the same fat-tree workload under Unison with the two
// load-adaptive scheduling metrics (§4.3) and diff their run traces.
//
// Shows what the observability layer makes visible without touching bench
// code: how often each policy re-sorts, how the claimed LP orders diverge,
// and what that does to the P/S composition. Writes both traces next to the
// binary as TRACE_demo_by_pending.json and TRACE_demo_by_lastround.json.
//
//   $ ./examples/trace_demo
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/unison.h"

namespace {

struct DemoRun {
  unison::RunSummary summary;
  std::vector<unison::RoundTraceRecord> records;
  uint64_t resorts = 0;
};

DemoRun RunOnce(unison::SchedulingMetric metric, const std::string& trace_path) {
  unison::SimConfig cfg;
  cfg.kernel.type = unison::KernelType::kUnison;
  cfg.kernel.threads = 2;
  cfg.kernel.metric = metric;
  cfg.seed = 7;
  cfg.trace = true;

  unison::Network net(cfg);
  unison::FatTreeTopo topo =
      unison::BuildFatTree(net, 4, 10'000'000'000ULL, unison::Time::Microseconds(3));
  net.Finalize();

  unison::TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.2;
  traffic.duration = unison::Time::Milliseconds(3);
  unison::GenerateTraffic(net, traffic);

  net.Run(unison::Time::Milliseconds(3));

  DemoRun out;
  out.summary = net.kernel().run_summary();
  out.records = net.run_trace().records();
  for (const auto& r : out.records) {
    out.resorts += r.resorted ? 1 : 0;
  }
  if (!net.run_trace().WriteJsonFile(trace_path)) {
    std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
  }
  return out;
}

void PrintSummary(const char* name, const DemoRun& run) {
  const unison::RunSummary& s = run.summary;
  const double total =
      static_cast<double>(s.processing_ns + s.synchronization_ns + s.messaging_ns);
  std::printf("  %-14s rounds %6lu  resorts %4lu  events %8lu  P %5.1f%%  S %5.1f%%  M %5.1f%%\n",
              name, static_cast<unsigned long>(s.rounds),
              static_cast<unsigned long>(run.resorts),
              static_cast<unsigned long>(s.events),
              total == 0 ? 0 : 100.0 * static_cast<double>(s.processing_ns) / total,
              total == 0 ? 0 : 100.0 * static_cast<double>(s.synchronization_ns) / total,
              total == 0 ? 0 : 100.0 * static_cast<double>(s.messaging_ns) / total);
}

}  // namespace

int main() {
  std::printf("Tracing the same workload under both scheduling metrics...\n\n");

  const DemoRun pending = RunOnce(unison::SchedulingMetric::kByPendingEventCount,
                                  "TRACE_demo_by_pending.json");
  const DemoRun lastround = RunOnce(unison::SchedulingMetric::kByLastRoundTime,
                                    "TRACE_demo_by_lastround.json");

  PrintSummary("by-pending", pending);
  PrintSummary("by-lastround", lastround);

  // Diff the claimed LP orders round by round. Records exist for every round;
  // claim orders only on re-sort rounds (the order is unchanged in between).
  const size_t rounds = std::min(pending.records.size(), lastround.records.size());
  size_t compared = 0;
  size_t diverged = 0;
  size_t first_divergence = rounds;
  for (size_t i = 0; i < rounds; ++i) {
    const auto& a = pending.records[i].claim_order;
    const auto& b = lastround.records[i].claim_order;
    if (a.empty() || b.empty()) {
      continue;
    }
    ++compared;
    if (a != b) {
      ++diverged;
      if (first_divergence == rounds) {
        first_divergence = i;
      }
    }
  }
  std::printf("\nClaim-order diff: %zu re-sort rounds compared, %zu diverged\n",
              compared, diverged);
  if (first_divergence < rounds) {
    const auto& a = pending.records[first_divergence].claim_order;
    const auto& b = lastround.records[first_divergence].claim_order;
    std::printf("First divergence at round %zu:\n  by-pending  :", first_divergence);
    for (size_t i = 0; i < std::min<size_t>(8, a.size()); ++i) {
      std::printf(" %u", a[i]);
    }
    std::printf(" ...\n  by-lastround:");
    for (size_t i = 0; i < std::min<size_t>(8, b.size()); ++i) {
      std::printf(" %u", b[i]);
    }
    std::printf(" ...\n");
  }
  std::printf("\nWrote TRACE_demo_by_pending.json and TRACE_demo_by_lastround.json\n");
  return 0;
}
