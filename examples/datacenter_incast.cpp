// Data-center incast: many senders converge on one victim host — the
// workload that exposes the synchronization weakness of static-partition
// PDES (§3.2, Observation 1) and the classic use case for DCTCP.
//
// The example runs the same incast storm twice, with TCP NewReno over
// drop-tail queues and with DCTCP over step-marking queues, and reports
// flow completion times, queueing delay, drops and ECN marks.
//
//   $ ./examples/datacenter_incast
#include <cstdio>

#include "src/unison.h"

namespace {

struct IncastResult {
  unison::FlowSummary flows;
  unison::Network::QueueTotals queues;
};

IncastResult RunIncast(bool dctcp) {
  unison::SimConfig cfg;
  cfg.kernel.type = unison::KernelType::kUnison;
  cfg.kernel.threads = 4;
  cfg.seed = 21;
  cfg.tcp.dctcp = dctcp;
  cfg.tcp.min_rto = unison::Time::Milliseconds(1);
  if (dctcp) {
    cfg.queue.kind = unison::QueueConfig::Kind::kDctcp;
    cfg.queue.red_min_th = 30 * 1500;  // K = 30 packets.
  }

  unison::Network net(cfg);
  unison::FatTreeTopo topo =
      unison::BuildFatTree(net, 4, 10'000'000'000ULL, unison::Time::Microseconds(3));
  net.Finalize();

  // 12 senders, one victim, 256KB each, all at t=0 — plus light background.
  const unison::NodeId victim = topo.hosts[0];
  for (int i = 1; i <= 12; ++i) {
    unison::InstallFlow(net, unison::FlowSpec{.src = topo.hosts[i],
                                              .dst = victim,
                                              .bytes = 256 * 1024,
                                              .start = unison::Time::Zero()});
  }
  unison::TrafficSpec bg;
  bg.hosts = topo.hosts;
  bg.bisection_bps = topo.bisection_bps;
  bg.load = 0.05;
  bg.duration = unison::Time::Milliseconds(20);
  bg.rng_stream = 500;
  unison::GenerateTraffic(net, bg);

  net.Run(unison::Time::Milliseconds(50));
  return IncastResult{net.flow_monitor().Summarize(), net.AggregateQueueStats()};
}

void Print(const char* name, const IncastResult& r) {
  std::printf("  %-8s  completed %3lu/%3lu  mean FCT %7.3f ms  p99 %7.3f ms  "
              "queue delay %7.1f us  drops %5lu  marks %5lu\n",
              name, static_cast<unsigned long>(r.flows.completed),
              static_cast<unsigned long>(r.flows.flows), r.flows.mean_fct_ms,
              r.flows.p99_fct_ms, r.queues.mean_delay_us(),
              static_cast<unsigned long>(r.queues.dropped),
              static_cast<unsigned long>(r.queues.ecn_marked));
}

}  // namespace

int main() {
  std::printf("12-to-1 incast on a k=4 fat-tree (10Gbps, 3us links), Unison x4 threads\n\n");
  const IncastResult newreno = RunIncast(false);
  const IncastResult dctcp = RunIncast(true);
  Print("NewReno", newreno);
  Print("DCTCP", dctcp);
  std::printf("\nDCTCP trades ECN marks for queue depth: its mean queueing delay\n"
              "should be a fraction of NewReno's under the same storm.\n");
  return 0;
}
