// Distributed (hybrid) simulation: §5.2's design for scaling past one host.
// The fabric is coarsely divided across simulated "hosts" (ranks); each rank
// runs fine-grained Unison internally and the ranks synchronize through a
// global all-reduce on the window bound. Model code is unchanged — only the
// SimConfig grows a rank count.
//
//   $ ./examples/hybrid_cluster
#include <cstdio>

#include "src/unison.h"

namespace {

unison::RunDigest RunWith(unison::KernelType type, uint32_t ranks, uint32_t lanes) {
  unison::SimConfig cfg;
  cfg.kernel.type = type;
  cfg.kernel.ranks = ranks;
  cfg.kernel.threads = lanes;
  cfg.seed = 13;
  unison::Network net(cfg);
  unison::FatTreeTopo topo =
      unison::BuildFatTree(net, 4, 10'000'000'000ULL, unison::Time::Microseconds(3));
  net.Finalize();
  unison::TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.3;
  traffic.duration = unison::Time::Milliseconds(10);
  unison::GenerateTraffic(net, traffic);
  net.Run(unison::Time::Milliseconds(10));
  return unison::DigestOf(net);
}

}  // namespace

int main() {
  std::printf("Hybrid distributed simulation of a k=4 fat-tree\n\n");
  const unison::RunDigest seq = RunWith(unison::KernelType::kSequential, 1, 1);
  std::printf("  sequential             : %9lu events, fingerprint %016lx\n",
              static_cast<unsigned long>(seq.event_count),
              static_cast<unsigned long>(seq.flow_fingerprint));
  for (uint32_t ranks : {2u, 4u}) {
    const unison::RunDigest hy = RunWith(unison::KernelType::kHybrid, ranks, 2);
    std::printf("  hybrid %u hosts x 2 thr : %9lu events, fingerprint %016lx  %s\n",
                ranks, static_cast<unsigned long>(hy.event_count),
                static_cast<unsigned long>(hy.flow_fingerprint),
                hy == seq ? "== sequential" : "MISMATCH!");
  }
  std::printf("\nEach simulated host runs its own fine-grained partition and\n"
              "load-adaptive scheduler; inter-host packets ride the same mailbox\n"
              "fabric, and the deterministic tie-break keeps results identical\n"
              "to the single-host kernels.\n");
  return 0;
}
