// Windowed sessions: Finalize() produces a warm session whose Run(stop) can
// be called repeatedly — the executor threads stay parked in between, model
// and event state carries across window boundaries, and K windowed runs are
// bit-identical to one monolithic run to the same stop time.
//
// This demo advances the same fat-tree workload in four 2.5ms windows,
// injecting extra traffic into the live session between windows 2 and 3,
// then replays the whole thing as one monolithic run (with the same
// injection installed up front) and checks the digests match.
//
//   $ ./examples/session_windows
#include <cstdio>

#include "src/unison.h"

namespace {

constexpr uint32_t kWindows = 4;
constexpr int kTotalMs = 10;

// Builds the shared scenario; returns the topology for traffic setup.
unison::FatTreeTopo Build(unison::Network& net) {
  unison::FatTreeTopo topo = unison::BuildFatTree(
      net, 4, 10'000'000'000ULL, unison::Time::Microseconds(3));
  net.Finalize();
  unison::TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.2;
  traffic.duration = unison::Time::Milliseconds(kTotalMs);
  unison::GenerateTraffic(net, traffic);
  return topo;
}

unison::TrafficSpec Burst(const unison::FatTreeTopo& topo) {
  unison::TrafficSpec burst;
  burst.hosts = topo.hosts;
  burst.bisection_bps = topo.bisection_bps;
  burst.load = 0.1;
  burst.duration = unison::Time::Milliseconds(kTotalMs / 2);
  burst.rng_stream = 500;  // Distinct stream: don't repeat the base draws.
  return burst;
}

unison::SimConfig Config() {
  unison::SimConfig cfg;
  cfg.kernel.type = unison::KernelType::kUnison;
  cfg.kernel.threads = 4;
  cfg.seed = 7;
  return cfg;
}

}  // namespace

int main() {
  std::printf("Advancing one session in %u windows...\n\n", kWindows);

  unison::SimConfig cfg = Config();
  unison::Network net(cfg);
  const unison::FatTreeTopo topo = Build(net);

  for (uint32_t w = 1; w <= kWindows; ++w) {
    const unison::Time stop =
        unison::Time::Milliseconds(kTotalMs * w / kWindows);
    const unison::RunResult r = net.Run(stop);
    std::printf("  window %u: ran to %.1f ms, %8llu events, %6llu rounds (%s)\n",
                w, r.end.ToSeconds() * 1e3,
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.rounds),
                unison::RunReasonName(r.reason));
    if (w == kWindows / 2) {
      // Mid-session injection: the burst's arrival window is re-anchored at
      // the session's current time (5ms here).
      const unison::GeneratedTraffic extra =
          unison::InjectTraffic(net, Burst(topo));
      std::printf("  -- injected %zu burst flows into the live session --\n",
                  extra.flow_ids.size());
    }
  }
  const unison::RunDigest windowed = unison::DigestOf(net);
  std::printf("\n  windowed  : %10lu events, mean FCT %.3f ms, fingerprint %016lx\n",
              static_cast<unsigned long>(windowed.event_count),
              windowed.mean_fct_ms,
              static_cast<unsigned long>(windowed.flow_fingerprint));

  // Monolithic replay: same model, same injection (anchored at the same
  // 5ms mark), one Run call.
  unison::Network mono(Config());
  const unison::FatTreeTopo mono_topo = Build(mono);
  unison::TrafficSpec burst = Burst(mono_topo);
  burst.start = unison::Time::Milliseconds(kTotalMs / 2);
  unison::GenerateTraffic(mono, burst);
  mono.Run(unison::Time::Milliseconds(kTotalMs));
  const unison::RunDigest monolithic = unison::DigestOf(mono);
  std::printf("  monolithic: %10lu events, mean FCT %.3f ms, fingerprint %016lx\n",
              static_cast<unsigned long>(monolithic.event_count),
              monolithic.mean_fct_ms,
              static_cast<unsigned long>(monolithic.flow_fingerprint));

  if (windowed == monolithic) {
    std::printf("\nBit-identical: pausing at window boundaries, reading stats,\n"
                "and injecting new load never perturbs the simulation.\n");
    return 0;
  }
  std::printf("\nERROR: windowed and monolithic runs disagreed!\n");
  return 1;
}
