// Quickstart: build a fat-tree, launch flows, run the same unmodified model
// under the sequential kernel and under Unison, and confirm both produce
// identical results — the user-transparency property in action.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/unison.h"

namespace {

unison::RunDigest RunOnce(unison::KernelType kernel, uint32_t threads) {
  unison::SimConfig cfg;
  cfg.kernel.type = kernel;
  cfg.kernel.threads = threads;
  cfg.seed = 7;

  unison::Network net(cfg);

  // A k=4 fat-tree: 16 hosts, 20 switches, 10Gbps links, 3us delay.
  unison::FatTreeTopo topo =
      unison::BuildFatTree(net, 4, 10'000'000'000ULL, unison::Time::Microseconds(3));
  net.Finalize();

  // One explicit flow...
  unison::InstallFlow(net, unison::FlowSpec{.src = topo.hosts[0],
                                            .dst = topo.hosts[15],
                                            .bytes = 1 << 20,
                                            .start = unison::Time::Zero()});
  // ...plus web-search background traffic at 20% of bisection bandwidth.
  unison::TrafficSpec traffic;
  traffic.hosts = topo.hosts;
  traffic.bisection_bps = topo.bisection_bps;
  traffic.load = 0.2;
  traffic.duration = unison::Time::Milliseconds(10);
  unison::GenerateTraffic(net, traffic);

  net.Run(unison::Time::Milliseconds(10));
  return unison::DigestOf(net);
}

}  // namespace

int main() {
  std::printf("Running the same model under two kernels...\n\n");

  const unison::RunDigest seq = RunOnce(unison::KernelType::kSequential, 1);
  std::printf("  sequential DES : %10lu events, mean FCT %.3f ms, fingerprint %016lx\n",
              static_cast<unsigned long>(seq.event_count), seq.mean_fct_ms,
              static_cast<unsigned long>(seq.flow_fingerprint));

  const unison::RunDigest uni = RunOnce(unison::KernelType::kUnison, 4);
  std::printf("  Unison (4 thr) : %10lu events, mean FCT %.3f ms, fingerprint %016lx\n",
              static_cast<unsigned long>(uni.event_count), uni.mean_fct_ms,
              static_cast<unsigned long>(uni.flow_fingerprint));

  if (seq == uni) {
    std::printf("\nIdentical results with zero model changes — kernel choice is\n"
                "just a SimConfig field (fine-grained partition, load-adaptive\n"
                "scheduling and deterministic tie-breaking are automatic).\n");
    return 0;
  }
  std::printf("\nERROR: kernels disagreed!\n");
  return 1;
}
