// Time-composition profiling (§3.2 of the paper).
//
// The total running time of an executor (an LP pinned to a rank for the
// baselines, a worker thread for Unison) is split into processing time P,
// synchronization time S, and messaging time M. Kernels accumulate these into
// per-executor slots; optional per-round and per-(round, LP) records feed the
// Fig. 5b/9b/13 benches, the parallel cost model, and the run-trace
// observability layer (src/stats/trace.h).
//
// All writes go to executor-private slots between barriers, so no locking is
// needed; readers only inspect the data after Run() returns. The per-round
// matrices are stored executor-major for exactly this reason: each executor
// appends to its own row vector with an explicit round index, so every
// accounted nanosecond — including waits at the end-of-round barrier, which
// overlap the coordinator's next prologue — can be attributed to its round
// without sharing a row across threads. The round-major views used by benches
// are built on demand after the run.
#ifndef UNISON_SRC_STATS_PROFILER_H_
#define UNISON_SRC_STATS_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/core/event.h"

namespace unison {

struct ExecutorPhaseStats {
  uint64_t processing_ns = 0;      // P: executing events.
  uint64_t synchronization_ns = 0; // S: waiting for other executors.
  uint64_t messaging_ns = 0;       // M: receiving events / updating windows.
  uint64_t events = 0;             // Events executed by this executor.
};

// Per-(round, LP) record for heatmaps and the cost model.
struct LpRoundCost {
  uint32_t round = 0;
  LpId lp = 0;
  uint32_t events = 0;   // Events actually executed in the round.
  uint32_t pending = 0;  // FEL events below the window at round start — what
                         // the ByPendingEventCount metric can observe.
  uint64_t cpu_ns = 0;
};

class Profiler {
 public:
  // Profiling is opt-in: timing calls are skipped entirely when disabled so
  // that production runs pay nothing.
  bool enabled = false;
  bool per_round = false;  // Record per-round P/S/M for each executor.
  bool per_lp = false;     // Record per-(round, LP) costs.

  void BeginRun(uint32_t num_executors);

  ExecutorPhaseStats& executor(uint32_t i) { return executors_[i]; }
  const std::vector<ExecutorPhaseStats>& executors() const { return executors_; }

  // Per-round records. `round` is the kernel's zero-based round index;
  // executors track it locally so their writes stay private (see file
  // comment). BeginRound is called by the coordinating thread once per round
  // and only maintains the round count.
  void BeginRound();
  void AddRoundProcessing(uint32_t executor, uint32_t round, uint64_t ns);
  void AddRoundSync(uint32_t executor, uint32_t round, uint64_t ns);
  void AddRoundMessaging(uint32_t executor, uint32_t round, uint64_t ns);

  // Round-major [round][executor] views, built on demand; rows are padded
  // with zeros up to rounds(). Intended for post-run consumers only.
  std::vector<std::vector<uint64_t>> round_processing_ns() const;
  std::vector<std::vector<uint64_t>> round_sync_ns() const;
  std::vector<std::vector<uint64_t>> round_messaging_ns() const;
  uint32_t rounds() const;

  // Per-(round, LP) cost records; each executor owns a private buffer.
  void AddLpRound(uint32_t executor, LpRoundCost cost);
  std::vector<LpRoundCost> MergedLpRounds() const;

  // Aggregates across executors.
  uint64_t TotalProcessingNs() const;
  uint64_t TotalSyncNs() const;
  uint64_t TotalMessagingNs() const;

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::vector<std::vector<uint64_t>> Transposed(
      const std::vector<std::vector<uint64_t>>& exec_major) const;

  std::vector<ExecutorPhaseStats> executors_;
  // [executor][round]; each inner vector is written only by its executor.
  std::vector<std::vector<uint64_t>> exec_round_p_;
  std::vector<std::vector<uint64_t>> exec_round_s_;
  std::vector<std::vector<uint64_t>> exec_round_m_;
  std::vector<std::vector<LpRoundCost>> lp_rounds_;
  uint32_t num_executors_ = 0;
  uint32_t rounds_begun_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_STATS_PROFILER_H_
