// Time-composition profiling (§3.2 of the paper).
//
// The total running time of an executor (an LP pinned to a rank for the
// baselines, a worker thread for Unison) is split into processing time P,
// synchronization time S, and messaging time M. Kernels accumulate these into
// per-executor slots; optional per-round and per-(round, LP) records feed the
// Fig. 5b/9b/13 benches and the parallel cost model.
//
// All writes go to executor-private slots between barriers, so no locking is
// needed; readers only inspect the data after Run() returns.
#ifndef UNISON_SRC_STATS_PROFILER_H_
#define UNISON_SRC_STATS_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/core/event.h"

namespace unison {

struct ExecutorPhaseStats {
  uint64_t processing_ns = 0;      // P: executing events.
  uint64_t synchronization_ns = 0; // S: waiting for other executors.
  uint64_t messaging_ns = 0;       // M: receiving events / updating windows.
  uint64_t events = 0;             // Events executed by this executor.
};

// Per-(round, LP) record for heatmaps and the cost model.
struct LpRoundCost {
  uint32_t round = 0;
  LpId lp = 0;
  uint32_t events = 0;   // Events actually executed in the round.
  uint32_t pending = 0;  // FEL events below the window at round start — what
                         // the ByPendingEventCount metric can observe.
  uint64_t cpu_ns = 0;
};

class Profiler {
 public:
  // Profiling is opt-in: timing calls are skipped entirely when disabled so
  // that production runs pay nothing.
  bool enabled = false;
  bool per_round = false;  // Record per-round P and S for each executor.
  bool per_lp = false;     // Record per-(round, LP) costs.

  void BeginRun(uint32_t num_executors);

  ExecutorPhaseStats& executor(uint32_t i) { return executors_[i]; }
  const std::vector<ExecutorPhaseStats>& executors() const { return executors_; }

  // Per-round matrices, indexed [round][executor]. Rows are appended by the
  // coordinating thread at round boundaries (all workers parked).
  void BeginRound();
  void AddRoundProcessing(uint32_t executor, uint64_t ns);
  void AddRoundSync(uint32_t executor, uint64_t ns);
  const std::vector<std::vector<uint64_t>>& round_processing_ns() const {
    return round_p_;
  }
  const std::vector<std::vector<uint64_t>>& round_sync_ns() const { return round_s_; }
  uint32_t rounds() const { return static_cast<uint32_t>(round_p_.size()); }

  // Per-(round, LP) cost records; each executor owns a private buffer.
  void AddLpRound(uint32_t executor, LpRoundCost cost);
  std::vector<LpRoundCost> MergedLpRounds() const;

  // Aggregates across executors.
  uint64_t TotalProcessingNs() const;
  uint64_t TotalSyncNs() const;
  uint64_t TotalMessagingNs() const;

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::vector<ExecutorPhaseStats> executors_;
  std::vector<std::vector<uint64_t>> round_p_;
  std::vector<std::vector<uint64_t>> round_s_;
  std::vector<std::vector<LpRoundCost>> lp_rounds_;
  uint32_t num_executors_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_STATS_PROFILER_H_
