#include "src/stats/profiler.h"

#include <algorithm>

namespace unison {

void Profiler::BeginRun(uint32_t num_executors) {
  num_executors_ = num_executors;
  executors_.assign(num_executors, ExecutorPhaseStats{});
  round_p_.clear();
  round_s_.clear();
  lp_rounds_.assign(num_executors, {});
}

void Profiler::BeginRound() {
  if (!per_round) {
    return;
  }
  round_p_.emplace_back(num_executors_, 0);
  round_s_.emplace_back(num_executors_, 0);
}

void Profiler::AddRoundProcessing(uint32_t executor, uint64_t ns) {
  if (per_round && !round_p_.empty()) {
    round_p_.back()[executor] += ns;
  }
}

void Profiler::AddRoundSync(uint32_t executor, uint64_t ns) {
  if (per_round && !round_s_.empty()) {
    round_s_.back()[executor] += ns;
  }
}

void Profiler::AddLpRound(uint32_t executor, LpRoundCost cost) {
  if (per_lp) {
    lp_rounds_[executor].push_back(cost);
  }
}

std::vector<LpRoundCost> Profiler::MergedLpRounds() const {
  std::vector<LpRoundCost> merged;
  size_t total = 0;
  for (const auto& buf : lp_rounds_) {
    total += buf.size();
  }
  merged.reserve(total);
  for (const auto& buf : lp_rounds_) {
    merged.insert(merged.end(), buf.begin(), buf.end());
  }
  std::sort(merged.begin(), merged.end(), [](const LpRoundCost& a, const LpRoundCost& b) {
    return a.round != b.round ? a.round < b.round : a.lp < b.lp;
  });
  return merged;
}

uint64_t Profiler::TotalProcessingNs() const {
  uint64_t sum = 0;
  for (const auto& e : executors_) {
    sum += e.processing_ns;
  }
  return sum;
}

uint64_t Profiler::TotalSyncNs() const {
  uint64_t sum = 0;
  for (const auto& e : executors_) {
    sum += e.synchronization_ns;
  }
  return sum;
}

uint64_t Profiler::TotalMessagingNs() const {
  uint64_t sum = 0;
  for (const auto& e : executors_) {
    sum += e.messaging_ns;
  }
  return sum;
}

}  // namespace unison
