#include "src/stats/profiler.h"

#include <algorithm>

namespace unison {

void Profiler::BeginRun(uint32_t num_executors) {
  num_executors_ = num_executors;
  executors_.assign(num_executors, ExecutorPhaseStats{});
  exec_round_p_.assign(num_executors, {});
  exec_round_s_.assign(num_executors, {});
  exec_round_m_.assign(num_executors, {});
  lp_rounds_.assign(num_executors, {});
  rounds_begun_ = 0;
}

void Profiler::BeginRound() {
  if (per_round) {
    ++rounds_begun_;
  }
}

void Profiler::AddRoundProcessing(uint32_t executor, uint32_t round, uint64_t ns) {
  if (!per_round) {
    return;
  }
  auto& row = exec_round_p_[executor];
  if (row.size() <= round) {
    row.resize(round + 1, 0);
  }
  row[round] += ns;
}

void Profiler::AddRoundSync(uint32_t executor, uint32_t round, uint64_t ns) {
  if (!per_round) {
    return;
  }
  auto& row = exec_round_s_[executor];
  if (row.size() <= round) {
    row.resize(round + 1, 0);
  }
  row[round] += ns;
}

void Profiler::AddRoundMessaging(uint32_t executor, uint32_t round, uint64_t ns) {
  if (!per_round) {
    return;
  }
  auto& row = exec_round_m_[executor];
  if (row.size() <= round) {
    row.resize(round + 1, 0);
  }
  row[round] += ns;
}

uint32_t Profiler::rounds() const {
  size_t rounds = rounds_begun_;
  for (const auto& row : exec_round_p_) {
    rounds = std::max(rounds, row.size());
  }
  for (const auto& row : exec_round_s_) {
    rounds = std::max(rounds, row.size());
  }
  for (const auto& row : exec_round_m_) {
    rounds = std::max(rounds, row.size());
  }
  return static_cast<uint32_t>(rounds);
}

std::vector<std::vector<uint64_t>> Profiler::Transposed(
    const std::vector<std::vector<uint64_t>>& exec_major) const {
  std::vector<std::vector<uint64_t>> out(
      rounds(), std::vector<uint64_t>(num_executors_, 0));
  for (uint32_t e = 0; e < exec_major.size(); ++e) {
    const auto& row = exec_major[e];
    for (size_t r = 0; r < row.size(); ++r) {
      out[r][e] = row[r];
    }
  }
  return out;
}

std::vector<std::vector<uint64_t>> Profiler::round_processing_ns() const {
  return Transposed(exec_round_p_);
}

std::vector<std::vector<uint64_t>> Profiler::round_sync_ns() const {
  return Transposed(exec_round_s_);
}

std::vector<std::vector<uint64_t>> Profiler::round_messaging_ns() const {
  return Transposed(exec_round_m_);
}

void Profiler::AddLpRound(uint32_t executor, LpRoundCost cost) {
  if (per_lp) {
    lp_rounds_[executor].push_back(cost);
  }
}

std::vector<LpRoundCost> Profiler::MergedLpRounds() const {
  std::vector<LpRoundCost> merged;
  size_t total = 0;
  for (const auto& buf : lp_rounds_) {
    total += buf.size();
  }
  merged.reserve(total);
  for (const auto& buf : lp_rounds_) {
    merged.insert(merged.end(), buf.begin(), buf.end());
  }
  std::sort(merged.begin(), merged.end(), [](const LpRoundCost& a, const LpRoundCost& b) {
    return a.round != b.round ? a.round < b.round : a.lp < b.lp;
  });
  return merged;
}

uint64_t Profiler::TotalProcessingNs() const {
  uint64_t sum = 0;
  for (const auto& e : executors_) {
    sum += e.processing_ns;
  }
  return sum;
}

uint64_t Profiler::TotalSyncNs() const {
  uint64_t sum = 0;
  for (const auto& e : executors_) {
    sum += e.synchronization_ns;
  }
  return sum;
}

uint64_t Profiler::TotalMessagingNs() const {
  uint64_t sum = 0;
  for (const auto& e : executors_) {
    sum += e.messaging_ns;
  }
  return sum;
}

}  // namespace unison
