// Run digests: compact, comparable fingerprints of a completed simulation,
// used by the determinism experiments (Fig. 11) and the cross-kernel
// equivalence tests.
#ifndef UNISON_SRC_STATS_DIGEST_H_
#define UNISON_SRC_STATS_DIGEST_H_

#include <cstdint>

#include "src/stats/flow_monitor.h"

namespace unison {

class Network;

struct RunDigest {
  uint64_t event_count = 0;
  uint64_t flow_fingerprint = 0;
  double mean_fct_ms = 0;
  double mean_delay_us = 0;  // Mean end-to-end queueing delay.

  friend bool operator==(const RunDigest& a, const RunDigest& b) {
    return a.event_count == b.event_count && a.flow_fingerprint == b.flow_fingerprint;
  }
};

// Collects the digest of a finished run.
RunDigest DigestOf(Network& net);

}  // namespace unison

#endif  // UNISON_SRC_STATS_DIGEST_H_
