#include "src/stats/trace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace unison {

namespace {

void AppendU64(std::string* out, uint64_t v) { *out += std::to_string(v); }

void AppendI64(std::string* out, int64_t v) { *out += std::to_string(v); }

void AppendF64(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  *out += buf;
}

void AppendU64Array(std::string* out, const std::vector<uint64_t>& values) {
  *out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      *out += ',';
    }
    AppendU64(out, values[i]);
  }
  *out += ']';
}

void AppendU32Array(std::string* out, const std::vector<uint32_t>& values) {
  *out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      *out += ',';
    }
    AppendU64(out, values[i]);
  }
  *out += ']';
}

uint64_t RowSum(const std::vector<std::vector<uint64_t>>& matrix, size_t row) {
  if (row >= matrix.size()) {
    return 0;
  }
  uint64_t sum = 0;
  for (uint64_t v : matrix[row]) {
    sum += v;
  }
  return sum;
}

bool WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written != content.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace

std::string RunSummary::ToJson() const {
  std::string out;
  out.reserve(256);
  out += "{\"kernel\":\"";
  out += kernel;  // Kernel names are fixed identifiers; no escaping needed.
  out += "\",\"executors\":";
  AppendU64(&out, executors);
  out += ",\"lps\":";
  AppendU64(&out, lps);
  out += ",\"rounds\":";
  AppendU64(&out, rounds);
  out += ",\"events\":";
  AppendU64(&out, events);
  out += ",\"wall_ns\":";
  AppendU64(&out, wall_ns);
  out += ",\"processing_ns\":";
  AppendU64(&out, processing_ns);
  out += ",\"synchronization_ns\":";
  AppendU64(&out, synchronization_ns);
  out += ",\"messaging_ns\":";
  AppendU64(&out, messaging_ns);
  out += ",\"window_index\":";
  AppendU64(&out, window_index);
  out += ",\"window_start_ps\":";
  AppendI64(&out, window_start_ps);
  out += ",\"window_stop_ps\":";
  AppendI64(&out, window_stop_ps);
  out += ",\"reason\":\"";
  out += reason;  // One of the fixed RunReasonName strings; no escaping needed.
  out += "\",\"forked_from\":\"";
  out += forked_from;  // "snap-<hex>@w<n>" or empty; no escapable characters.
  out += "\",\"tuning_epoch\":";
  AppendU64(&out, tuning_epoch);
  out += ",\"sched_period\":";
  AppendU64(&out, sched_period);
  out += ",\"parties\":";
  AppendU64(&out, parties);
  out += ",\"migrations\":";
  AppendU64(&out, migrations);
  out += ",\"ownership_epoch\":";
  AppendU64(&out, ownership_epoch);
  out += ",\"imbalance\":";
  AppendF64(&out, imbalance);
  out += ",\"spec_rounds\":";
  AppendU64(&out, spec_rounds);
  out += ",\"spec_hits\":";
  AppendU64(&out, spec_hits);
  out += ",\"spec_misses\":";
  AppendU64(&out, spec_misses);
  out += ",\"rollback_ns\":";
  AppendU64(&out, rollback_ns);
  out += '}';
  return out;
}

void RunTrace::BeginSession() { segments_.clear(); }

void RunTrace::BeginRun(std::string kernel, uint32_t executors, uint32_t lps) {
  summary_ = RunSummary{};
  summary_.kernel = std::move(kernel);
  summary_.executors = executors;
  summary_.lps = lps;
  records_.clear();
  executors_.clear();
  round_p_.clear();
  round_s_.clear();
  round_m_.clear();
}

void RunTrace::BeginRound(uint32_t round, Time lbts, Time window,
                          uint64_t events_before) {
  RoundTraceRecord rec;
  rec.round = round;
  rec.lbts_ps = lbts.ps();
  rec.window_ps = window.ps();
  rec.events_before = events_before;
  records_.push_back(std::move(rec));
}

void RunTrace::RecordClaimOrder(const std::vector<uint32_t>& order) {
  if (records_.empty()) {
    return;
  }
  records_.back().resorted = true;
  if (record_claim_order) {
    records_.back().claim_order = order;
  }
}

void RunTrace::RecordBarrier(uint64_t barrier_ns, uint64_t parked) {
  if (records_.empty()) {
    return;
  }
  records_.back().barrier_ns = barrier_ns;
  records_.back().parked = parked;
}

void RunTrace::EndRun(const RunSummary& summary, const Profiler* profiler) {
  // Keep the kernel identity from BeginRun if the caller left it empty.
  const std::string kernel =
      summary.kernel.empty() ? summary_.kernel : summary.kernel;
  summary_ = summary;
  summary_.kernel = kernel;
  if (profiler != nullptr && profiler->enabled) {
    executors_ = profiler->executors();
    if (profiler->per_round) {
      round_p_ = profiler->round_processing_ns();
      round_s_ = profiler->round_sync_ns();
      round_m_ = profiler->round_messaging_ns();
    }
  }
  // Mean per-round processing imbalance (busiest executor's share over the
  // ideal 1/W share, minus one) — the observability half of the rebalance
  // rule: a post-move window should show this dropping.
  {
    double total = 0.0;
    uint32_t usable = 0;
    for (const std::vector<uint64_t>& row : round_p_) {
      if (row.size() < 2) {
        continue;
      }
      uint64_t sum = 0;
      uint64_t max = 0;
      for (uint64_t v : row) {
        sum += v;
        max = std::max(max, v);
      }
      if (sum == 0) {
        continue;
      }
      total += static_cast<double>(max) * static_cast<double>(row.size()) /
                   static_cast<double>(sum) -
               1.0;
      ++usable;
    }
    summary_.imbalance = usable == 0 ? 0.0 : total / usable;
  }
  // Archive this window so a later Run() on the same session cannot erase it.
  WindowTraceSegment seg;
  seg.summary = summary_;
  seg.records = records_;
  seg.executors = executors_;
  seg.round_p = round_p_;
  seg.round_s = round_s_;
  seg.round_m = round_m_;
  segments_.push_back(std::move(seg));
}

RunSummary RunTrace::Cumulative() const {
  if (segments_.empty()) {
    return summary_;
  }
  RunSummary total = segments_.back().summary;
  total.rounds = 0;
  total.events = 0;
  total.wall_ns = 0;
  total.processing_ns = 0;
  total.synchronization_ns = 0;
  total.messaging_ns = 0;
  total.spec_rounds = 0;
  total.spec_hits = 0;
  total.spec_misses = 0;
  total.rollback_ns = 0;
  for (const WindowTraceSegment& seg : segments_) {
    total.rounds += seg.summary.rounds;
    total.events += seg.summary.events;
    total.wall_ns += seg.summary.wall_ns;
    total.processing_ns += seg.summary.processing_ns;
    total.synchronization_ns += seg.summary.synchronization_ns;
    total.messaging_ns += seg.summary.messaging_ns;
    total.spec_rounds += seg.summary.spec_rounds;
    total.spec_hits += seg.summary.spec_hits;
    total.spec_misses += seg.summary.spec_misses;
    total.rollback_ns += seg.summary.rollback_ns;
  }
  total.window_start_ps = segments_.front().summary.window_start_ps;
  return total;
}

namespace {

// Serializes one window's body — "summary", "per_executor", "rounds" — shared
// by the top-level (latest-window) view and each archived segment.
void AppendTraceBody(std::string* out, const RunSummary& summary,
                     const std::vector<RoundTraceRecord>& records,
                     const std::vector<ExecutorPhaseStats>& executors,
                     const std::vector<std::vector<uint64_t>>& round_p,
                     const std::vector<std::vector<uint64_t>>& round_s,
                     const std::vector<std::vector<uint64_t>>& round_m) {
  *out += "\"summary\":";
  *out += summary.ToJson();
  *out += ",\"per_executor\":[";
  for (size_t i = 0; i < executors.size(); ++i) {
    if (i > 0) {
      *out += ',';
    }
    *out += "{\"processing_ns\":";
    AppendU64(out, executors[i].processing_ns);
    *out += ",\"synchronization_ns\":";
    AppendU64(out, executors[i].synchronization_ns);
    *out += ",\"messaging_ns\":";
    AppendU64(out, executors[i].messaging_ns);
    *out += ",\"events\":";
    AppendU64(out, executors[i].events);
    *out += '}';
  }
  *out += "],\"rounds\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    const RoundTraceRecord& r = records[i];
    if (i > 0) {
      *out += ',';
    }
    *out += "{\"round\":";
    AppendU64(out, r.round);
    *out += ",\"lbts_ps\":";
    AppendI64(out, r.lbts_ps);
    *out += ",\"window_ps\":";
    AppendI64(out, r.window_ps);
    *out += ",\"events_before\":";
    AppendU64(out, r.events_before);
    *out += ",\"barrier_ns\":";
    AppendU64(out, r.barrier_ns);
    *out += ",\"parked\":";
    AppendU64(out, r.parked);
    *out += ",\"resorted\":";
    *out += r.resorted ? "true" : "false";
    if (!r.claim_order.empty()) {
      *out += ",\"claim_order\":";
      AppendU32Array(out, r.claim_order);
    }
    if (r.round < round_p.size()) {
      *out += ",\"p_ns\":";
      AppendU64Array(out, round_p[r.round]);
    }
    if (r.round < round_s.size()) {
      *out += ",\"s_ns\":";
      AppendU64Array(out, round_s[r.round]);
    }
    if (r.round < round_m.size()) {
      *out += ",\"m_ns\":";
      AppendU64Array(out, round_m[r.round]);
    }
    *out += '}';
  }
  *out += ']';
}

void AppendCsvRows(std::string* out, uint32_t window, const RunSummary& summary,
                   const std::vector<RoundTraceRecord>& records,
                   const std::vector<std::vector<uint64_t>>& round_p,
                   const std::vector<std::vector<uint64_t>>& round_s,
                   const std::vector<std::vector<uint64_t>>& round_m) {
  for (const RoundTraceRecord& r : records) {
    AppendU64(out, window);
    *out += ',';
    AppendU64(out, r.round);
    *out += ',';
    AppendI64(out, r.lbts_ps);
    *out += ',';
    AppendI64(out, r.window_ps);
    *out += ',';
    AppendU64(out, r.events_before);
    *out += ',';
    *out += r.resorted ? '1' : '0';
    *out += ',';
    AppendU64(out, RowSum(round_p, r.round));
    *out += ',';
    AppendU64(out, RowSum(round_s, r.round));
    *out += ',';
    AppendU64(out, RowSum(round_m, r.round));
    *out += ',';
    AppendU64(out, r.barrier_ns);
    *out += ',';
    AppendU64(out, r.parked);
    *out += ',';
    AppendU64(out, summary.tuning_epoch);
    *out += ',';
    AppendU64(out, summary.migrations);
    *out += ',';
    // Window-level speculation stats, repeated on each of the window's rows
    // (the flat table has no window-level rows to hang them on).
    AppendU64(out, summary.spec_rounds);
    *out += ',';
    AppendU64(out, summary.spec_hits);
    *out += ',';
    AppendU64(out, summary.spec_misses);
    *out += ',';
    AppendU64(out, summary.rollback_ns);
    *out += '\n';
  }
}

}  // namespace

std::string RunTrace::ToJson() const {
  std::string out;
  out.reserve(4096 + records_.size() * 96);
  out += '{';
  AppendTraceBody(&out, summary_, records_, executors_, round_p_, round_s_,
                  round_m_);
  out += ",\"windows\":";
  AppendU64(&out, segments_.size());
  out += ",\"cumulative\":";
  out += Cumulative().ToJson();
  out += ",\"segments\":[";
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    const WindowTraceSegment& seg = segments_[i];
    out += '{';
    AppendTraceBody(&out, seg.summary, seg.records, seg.executors, seg.round_p,
                    seg.round_s, seg.round_m);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string RunTrace::ToCsv() const {
  std::string out;
  out.reserve(64 + records_.size() * 64);
  out += "window,round,lbts_ps,window_ps,events_before,resorted,p_total_ns,"
         "s_total_ns,m_total_ns,barrier_ns,parked,tuning_epoch,migrations,"
         "spec_rounds,spec_hits,spec_misses,rollback_ns\n";
  if (segments_.empty()) {
    // Export mid-window (EndRun not yet reached): show the live records.
    AppendCsvRows(&out, 0, summary_, records_, round_p_, round_s_, round_m_);
    return out;
  }
  for (const WindowTraceSegment& seg : segments_) {
    AppendCsvRows(&out, seg.summary.window_index, seg.summary, seg.records,
                  seg.round_p, seg.round_s, seg.round_m);
  }
  return out;
}

bool RunTrace::WriteJsonFile(const std::string& path) const {
  return WriteFile(path, ToJson());
}

bool RunTrace::WriteCsvFile(const std::string& path) const {
  return WriteFile(path, ToCsv());
}

}  // namespace unison
