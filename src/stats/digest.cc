#include "src/stats/digest.h"

#include "src/net/network.h"

namespace unison {

RunDigest DigestOf(Network& net) {
  RunDigest d;
  // Session total, not last-window count: a digest describes the whole
  // simulation whether it ran as one window or many.
  d.event_count = net.kernel().session_events();
  d.flow_fingerprint = net.flow_monitor().Fingerprint();
  d.mean_fct_ms = net.flow_monitor().Summarize().mean_fct_ms;
  d.mean_delay_us = net.AggregateQueueStats().mean_delay_us();
  return d;
}

}  // namespace unison
