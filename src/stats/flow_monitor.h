// Global flow statistics, the FlowMonitor analogue (§5.1).
//
// Because Unison shares memory across LPs, a single monitor sees every flow
// end to end — the capability the paper contrasts with MPI-based PDES, where
// per-LP tracing must be stitched together by hand. Thread safety comes from
// ownership discipline rather than locks: each record is registered during
// single-threaded setup, sender-side fields are written only by the source
// node's LP and receiver-side fields only by the destination node's LP.
#ifndef UNISON_SRC_STATS_FLOW_MONITOR_H_
#define UNISON_SRC_STATS_FLOW_MONITOR_H_

#include <cstdint>
#include <vector>

#include "src/core/event.h"
#include "src/core/time.h"

namespace unison {

struct FlowRecord {
  uint32_t id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  uint64_t bytes = 0;
  Time start;

  // Sender-side results.
  bool completed = false;
  Time fct;  // Completion - start; valid when completed.
  uint64_t retransmits = 0;
  uint64_t rtt_samples = 0;
  Time rtt_sum;

  // Receiver-side results.
  uint64_t rx_bytes = 0;
  Time last_rx;
};

struct FlowSummary {
  uint64_t flows = 0;
  uint64_t completed = 0;
  double mean_fct_ms = 0;
  double p99_fct_ms = 0;
  double mean_rtt_ms = 0;
  double mean_throughput_mbps = 0;  // Per completed flow: bytes*8 / fct.
  uint64_t total_rx_bytes = 0;
  uint64_t total_retransmits = 0;
};

class FlowMonitor {
 public:
  // Registers a flow; must be called during setup (single-threaded).
  uint32_t Register(NodeId src, NodeId dst, uint64_t bytes, Time start);

  FlowRecord& flow(uint32_t id) { return flows_[id]; }
  const FlowRecord& flow(uint32_t id) const { return flows_[id]; }
  const std::vector<FlowRecord>& flows() const { return flows_; }
  size_t size() const { return flows_.size(); }

  // Sender-side hooks.
  void Complete(uint32_t id, Time now);
  void AddRtt(uint32_t id, Time sample);
  void AddRetransmit(uint32_t id) { ++flows_[id].retransmits; }

  // Receiver-side hooks.
  void AddRxBytes(uint32_t id, uint64_t n, Time now);

  FlowSummary Summarize() const;

  // Order-independent fingerprint of all flow outcomes; equal fingerprints
  // across runs demonstrate deterministic simulation (Fig. 11).
  uint64_t Fingerprint() const;

 private:
  std::vector<FlowRecord> flows_;
};

}  // namespace unison

#endif  // UNISON_SRC_STATS_FLOW_MONITOR_H_
