// Global flow statistics, the FlowMonitor analogue (§5.1), sharded per
// executor.
//
// Because Unison shares memory across LPs, a single monitor sees every flow
// end to end — the capability the paper contrasts with MPI-based PDES, where
// per-LP tracing must be stitched together by hand. The monitor is a set of
// cache-line-padded shards, one per pool executor plus shard 0 for every
// non-executor context (setup, the sequential kernel, between-window
// injection). Registration is no longer confined to setup: a streaming
// FlowSource registers flows from inside events, and the registering
// executor's shard absorbs the record without touching any other shard.
//
// Thread safety still comes from ownership discipline rather than locks:
//  - A shard's record storage and its window-delta counters are written only
//    by the owning executor. Shards are alignas(64) so neighbours never
//    share a cache line.
//  - Records live in never-moving segmented slabs (doubling segments off a
//    fixed pointer table), so the receiver-side hooks — which run on the
//    destination node's executor and may land in a *different* shard's
//    record — dereference storage that no concurrent registration can
//    relocate. Per-field ownership within a record is unchanged:
//    sender-side fields are written only by the source node's LP,
//    receiver-side fields only by the destination node's LP, and a flow id
//    only reaches another executor through a simulated packet, which the
//    kernel's synchronization orders after the registration.
//  - Window-delta counters are merged into the session totals by
//    MergeWindow(), which the kernels invoke at the end of every Run()
//    window — after the combining tree's final reduction has quiesced all
//    executors, so the merge needs no atomics.
#ifndef UNISON_SRC_STATS_FLOW_MONITOR_H_
#define UNISON_SRC_STATS_FLOW_MONITOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/event.h"
#include "src/core/time.h"

namespace unison {

struct FlowRecord {
  uint32_t id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  uint64_t bytes = 0;
  Time start;

  // Sender-side results.
  bool completed = false;
  Time fct;  // Completion - start; valid when completed.
  uint64_t retransmits = 0;
  uint64_t rtt_samples = 0;
  Time rtt_sum;

  // Receiver-side results.
  uint64_t rx_bytes = 0;
  Time last_rx;
};

struct FlowSummary {
  uint64_t flows = 0;
  uint64_t completed = 0;
  double mean_fct_ms = 0;
  double p99_fct_ms = 0;
  double mean_rtt_ms = 0;
  double mean_throughput_mbps = 0;  // Per completed flow: bytes*8 / fct.
  uint64_t total_rx_bytes = 0;
  uint64_t total_retransmits = 0;
};

// Integer aggregate of flow activity; per-shard window deltas fold into the
// monitor-wide total at MergeWindow(). Integer-only on purpose: merging is
// exactly associative, so the merged view is identical however the windows
// (or shards) were grouped.
struct FlowCounters {
  uint64_t flows = 0;
  uint64_t completed = 0;
  uint64_t rx_bytes = 0;
  uint64_t retransmits = 0;
  int64_t fct_ps_sum = 0;  // Sum of completed flows' FCTs.

  void Merge(const FlowCounters& o) {
    flows += o.flows;
    completed += o.completed;
    rx_bytes += o.rx_bytes;
    retransmits += o.retransmits;
    fct_ps_sum += o.fct_ps_sum;
  }
  friend bool operator==(const FlowCounters& a, const FlowCounters& b) {
    return a.flows == b.flows && a.completed == b.completed &&
           a.rx_bytes == b.rx_bytes && a.retransmits == b.retransmits &&
           a.fct_ps_sum == b.fct_ps_sum;
  }
};

class FlowMonitor {
 public:
  FlowMonitor();
  ~FlowMonitor();

  FlowMonitor(const FlowMonitor&) = delete;
  FlowMonitor& operator=(const FlowMonitor&) = delete;

  // Sizes the shard set: shard 0 for non-executor contexts plus one shard
  // per pool executor. Network::Finalize calls this with the kernel's
  // executor count before any flow can be registered; must not be called
  // after the first Register (flow ids encode the shard/slot split, which
  // this fixes). Calling again with the same count is a no-op.
  void ConfigureShards(uint32_t shards);
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }

  // Registers a flow into the calling executor's shard (shard 0 outside a
  // pool body). Safe concurrently across executors; the returned id is
  // stable for the monitor's lifetime.
  uint32_t Register(NodeId src, NodeId dst, uint64_t bytes, Time start);

  FlowRecord& flow(uint32_t id) { return Locate(id); }
  const FlowRecord& flow(uint32_t id) const {
    return const_cast<FlowMonitor*>(this)->Locate(id);
  }

  // Total records across all shards. Call from a quiescent context (between
  // windows or after Run); not synchronized against in-flight registration.
  size_t size() const;

  // Visits every record, shard-major (shard 0's records first, in
  // registration order). Same quiescence requirement as size().
  template <typename Fn>
  void ForEachFlow(Fn&& fn) const {
    for (const auto& shard : shards_) {
      for (uint32_t slot = 0; slot < shard->count; ++slot) {
        fn(const_cast<FlowMonitor*>(this)->LocateSlot(*shard, slot));
      }
    }
  }

  // Flattened copy of every record (ForEachFlow order) for consumers that
  // want a vector; the records themselves never live contiguously.
  std::vector<FlowRecord> CollectFlows() const;

  // Sender-side hooks.
  void Complete(uint32_t id, Time now);
  void AddRtt(uint32_t id, Time sample);
  void AddRetransmit(uint32_t id);

  // Receiver-side hooks.
  void AddRxBytes(uint32_t id, uint64_t n, Time now);

  FlowSummary Summarize() const;

  // Order-independent fingerprint of all flow outcomes; equal fingerprints
  // across runs demonstrate deterministic simulation (Fig. 11). Hashes each
  // flow's stable identity (src, dst, bytes, start) rather than its id —
  // ids encode the registering shard, which legitimately differs between
  // thread counts and between streaming and materialized installation — and
  // sums the per-flow hashes, so the value is independent of shard layout
  // and registration order.
  uint64_t Fingerprint() const;

  // Folds every shard's window-delta counters into the merged session view.
  // The kernels call this at the end of each Run() window from the
  // coordinator, once the final barrier reduction has quiesced the pool.
  void MergeWindow();

  // Session totals as of the last MergeWindow().
  const FlowCounters& merged() const { return merged_; }
  uint32_t windows_merged() const { return windows_merged_; }

  // Window-delta counters currently pending in shard `s` (test hook).
  const FlowCounters& shard_delta(uint32_t s) const { return shards_[s]->delta; }
  // Records registered in shard `s` so far.
  uint32_t shard_flows(uint32_t s) const { return shards_[s]->count; }

  // Full monitor state for session snapshots: per-shard records (in slot
  // order) and pending window deltas, plus the merged session totals. Save
  // from a quiescent context; Restore only into a monitor whose shards are
  // configured to the same count and still empty (fatal otherwise — flow ids
  // embed the shard/slot split, so a mismatched restore would corrupt every
  // outstanding id).
  struct Image {
    uint32_t shards = 0;
    std::vector<std::vector<FlowRecord>> records;  // [shard][slot].
    std::vector<FlowCounters> deltas;              // [shard].
    FlowCounters merged;
    uint32_t windows_merged = 0;
  };
  Image SaveImage() const;
  void RestoreImage(const Image& image);
  // Speculation-rollback variant: restores into a monitor that already holds
  // flows, overwriting slots and truncating each shard's count back to the
  // image's. Valid only when the live state is a superset of the image —
  // which a rollback guarantees: speculative rounds can only have *appended*
  // records (slots are never reused), so rewinding count + overwriting the
  // surviving slots reproduces the captured monitor exactly.
  void RestoreImageInPlace(const Image& image);

 private:
  // Records are stored in doubling segments: segment k holds kSegBase << k
  // records, so a fixed table of kMaxSegments pointers covers the whole slot
  // space and no registration ever relocates an existing record.
  static constexpr uint32_t kSegBase = 1024;
  static constexpr uint32_t kMaxSegments = 23;  // kSegBase << 22 > 2^32 slots.

  struct alignas(64) Shard {
    std::array<std::unique_ptr<FlowRecord[]>, kMaxSegments> segments;
    uint32_t count = 0;        // Slots in use; owner-written only.
    FlowCounters delta;        // Window-local; folded by MergeWindow.
  };

  static uint32_t SegmentOf(uint32_t slot);
  static uint32_t SegmentFirstSlot(uint32_t seg) {
    return ((1u << seg) - 1) * kSegBase;
  }
  static uint32_t SegmentSize(uint32_t seg) { return kSegBase << seg; }

  // Shard of the calling context: executor id + 1, or 0 outside a pool body.
  uint32_t CurrentShardIndex() const;
  Shard& CurrentShard();

  FlowRecord& Locate(uint32_t id) {
    return LocateSlot(*shards_[id >> slot_bits_], id & slot_mask_);
  }
  FlowRecord& LocateSlot(Shard& shard, uint32_t slot) const {
    const uint32_t seg = SegmentOf(slot);
    return shard.segments[seg][slot - SegmentFirstSlot(seg)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  uint32_t slot_bits_ = 32;  // Flow id = shard << slot_bits_ | slot.
  uint32_t slot_mask_ = 0xffffffffu;
  FlowCounters merged_;
  uint32_t windows_merged_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_STATS_FLOW_MONITOR_H_
