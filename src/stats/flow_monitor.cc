#include "src/stats/flow_monitor.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "src/core/executor_id.h"

namespace unison {

namespace {

[[noreturn]] void MonitorFatal(const char* message) {
  std::fprintf(stderr, "unison: FlowMonitor: %s\n", message);
  std::abort();
}

}  // namespace

FlowMonitor::FlowMonitor() { ConfigureShards(1); }

FlowMonitor::~FlowMonitor() = default;

uint32_t FlowMonitor::SegmentOf(uint32_t slot) {
  return static_cast<uint32_t>(std::bit_width((slot / kSegBase) + 1)) - 1;
}

void FlowMonitor::ConfigureShards(uint32_t shards) {
  if (shards == shards_.size()) {
    return;
  }
  for (const auto& shard : shards_) {
    if (shard->count != 0) {
      MonitorFatal(
          "ConfigureShards after flows were registered would re-split the "
          "flow-id space under live ids; configure shards before installing "
          "any flow");
    }
  }
  if (shards == 0 || shards > (1u << 16)) {
    MonitorFatal("shard count must be in [1, 65536]");
  }
  const uint32_t shard_bits =
      std::max(1u, static_cast<uint32_t>(std::bit_width(shards - 1)));
  slot_bits_ = 32 - shard_bits;  // shard_bits in [1, 16] -> slot_bits in [16, 31].
  slot_mask_ = (1u << slot_bits_) - 1;
  shards_.clear();
  shards_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint32_t FlowMonitor::CurrentShardIndex() const {
  const int ex = CurrentExecutorId();
  const uint32_t s = ex < 0 ? 0u : static_cast<uint32_t>(ex) + 1;
  if (s >= shards_.size()) {
    MonitorFatal(
        "hook called from an executor the monitor has no shard for; "
        "Network::Finalize must configure one shard per pool executor");
  }
  return s;
}

FlowMonitor::Shard& FlowMonitor::CurrentShard() {
  return *shards_[CurrentShardIndex()];
}

uint32_t FlowMonitor::Register(NodeId src, NodeId dst, uint64_t bytes, Time start) {
  const uint32_t s = CurrentShardIndex();
  Shard& shard = *shards_[s];
  const uint32_t slot = shard.count;
  if (slot > slot_mask_) {
    MonitorFatal("per-shard flow capacity exhausted (flow-id slot space)");
  }
  const uint32_t seg = SegmentOf(slot);
  if (shard.segments[seg] == nullptr) {
    // Amortized: one slab per kSegBase<<seg registrations, by the owning
    // executor only. Existing records never move (receiver-side hooks may be
    // dereferencing them from other executors right now).
    shard.segments[seg] = std::make_unique<FlowRecord[]>(SegmentSize(seg));
  }
  FlowRecord& rec = shard.segments[seg][slot - SegmentFirstSlot(seg)];
  rec = FlowRecord{};
  rec.id = (s << slot_bits_) | slot;
  rec.src = src;
  rec.dst = dst;
  rec.bytes = bytes;
  rec.start = start;
  ++shard.count;
  ++shard.delta.flows;
  return rec.id;
}

void FlowMonitor::Complete(uint32_t id, Time now) {
  FlowRecord& rec = Locate(id);
  rec.completed = true;
  rec.fct = now - rec.start;
  FlowCounters& delta = CurrentShard().delta;
  ++delta.completed;
  delta.fct_ps_sum += rec.fct.ps();
}

void FlowMonitor::AddRtt(uint32_t id, Time sample) {
  FlowRecord& rec = Locate(id);
  ++rec.rtt_samples;
  rec.rtt_sum += sample;
}

void FlowMonitor::AddRetransmit(uint32_t id) {
  ++Locate(id).retransmits;
  ++CurrentShard().delta.retransmits;
}

void FlowMonitor::AddRxBytes(uint32_t id, uint64_t n, Time now) {
  FlowRecord& rec = Locate(id);
  rec.rx_bytes += n;
  rec.last_rx = now;
  CurrentShard().delta.rx_bytes += n;
}

size_t FlowMonitor::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->count;
  }
  return total;
}

std::vector<FlowRecord> FlowMonitor::CollectFlows() const {
  std::vector<FlowRecord> out;
  out.reserve(size());
  ForEachFlow([&out](const FlowRecord& rec) { out.push_back(rec); });
  return out;
}

void FlowMonitor::MergeWindow() {
  for (const auto& shard : shards_) {
    merged_.Merge(shard->delta);
    shard->delta = FlowCounters{};
  }
  ++windows_merged_;
}

FlowSummary FlowMonitor::Summarize() const {
  FlowSummary s;
  s.flows = size();
  double fct_ms_sum = 0;
  double thr_sum = 0;
  double rtt_ms_sum = 0;
  uint64_t rtt_count = 0;
  std::vector<double> fcts;
  ForEachFlow([&](const FlowRecord& rec) {
    s.total_rx_bytes += rec.rx_bytes;
    s.total_retransmits += rec.retransmits;
    if (rec.rtt_samples > 0) {
      rtt_ms_sum += rec.rtt_sum.ToMilliseconds();
      rtt_count += rec.rtt_samples;
    }
    if (!rec.completed) {
      return;
    }
    ++s.completed;
    const double fct_ms = rec.fct.ToMilliseconds();
    fct_ms_sum += fct_ms;
    fcts.push_back(fct_ms);
    if (rec.fct.ps() > 0) {
      thr_sum += static_cast<double>(rec.bytes) * 8.0 / rec.fct.ToSeconds() / 1e6;
    }
  });
  if (s.completed > 0 && !fcts.empty()) {
    s.mean_fct_ms = fct_ms_sum / static_cast<double>(s.completed);
    s.mean_throughput_mbps = thr_sum / static_cast<double>(s.completed);
    // p99 by selection, not a full sort: summaries stay O(n) at millions of
    // flows. nth_element places the same element a sort would. The index is
    // clamped so the single-flow case (idx computes to 0) and any future
    // drift between `completed` and fcts.size() stay in bounds; with zero
    // completions every percentile/mean field keeps its zero default.
    size_t idx = static_cast<size_t>(0.99 * static_cast<double>(fcts.size() - 1));
    idx = std::min(idx, fcts.size() - 1);
    std::nth_element(fcts.begin(), fcts.begin() + static_cast<ptrdiff_t>(idx), fcts.end());
    s.p99_fct_ms = fcts[idx];
  }
  if (rtt_count > 0) {
    s.mean_rtt_ms = rtt_ms_sum / static_cast<double>(rtt_count);
  }
  return s;
}

FlowMonitor::Image FlowMonitor::SaveImage() const {
  Image image;
  image.shards = num_shards();
  image.records.resize(shards_.size());
  image.deltas.resize(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    image.records[s].reserve(shard.count);
    for (uint32_t slot = 0; slot < shard.count; ++slot) {
      image.records[s].push_back(
          const_cast<FlowMonitor*>(this)->LocateSlot(const_cast<Shard&>(shard), slot));
    }
    image.deltas[s] = shard.delta;
  }
  image.merged = merged_;
  image.windows_merged = windows_merged_;
  return image;
}

void FlowMonitor::RestoreImage(const Image& image) {
  if (image.shards != shards_.size()) {
    MonitorFatal(
        "RestoreImage shard-count mismatch; the restored network must be "
        "finalized with the same executor count as the snapshot source");
  }
  for (const auto& shard : shards_) {
    if (shard->count != 0) {
      MonitorFatal("RestoreImage into a monitor that already has flows");
    }
  }
  RestoreImageInPlace(image);
}

void FlowMonitor::RestoreImageInPlace(const Image& image) {
  if (image.shards != shards_.size()) {
    MonitorFatal(
        "RestoreImageInPlace shard-count mismatch; the image must come from "
        "this monitor's own configuration");
  }
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    // Slots past the image's count were registered by the rounds being
    // rolled back; truncating count abandons them (slabs stay allocated —
    // the re-run re-registers into the same slots).
    const std::vector<FlowRecord>& records = image.records[s];
    for (uint32_t slot = 0; slot < records.size(); ++slot) {
      const uint32_t seg = SegmentOf(slot);
      if (shard.segments[seg] == nullptr) {
        shard.segments[seg] = std::make_unique<FlowRecord[]>(SegmentSize(seg));
      }
      shard.segments[seg][slot - SegmentFirstSlot(seg)] = records[slot];
    }
    shard.count = static_cast<uint32_t>(records.size());
    shard.delta = image.deltas[s];
  }
  merged_ = image.merged;
  windows_merged_ = image.windows_merged;
}

uint64_t FlowMonitor::Fingerprint() const {
  // FNV-1a over per-flow outcomes keyed by the flow's stable identity;
  // summation keeps the result independent of shard layout and registration
  // order, so streaming and materialized installation — and every thread
  // count — agree bit for bit.
  uint64_t h = 0;
  ForEachFlow([&h](const FlowRecord& rec) {
    uint64_t x = 0xcbf29ce484222325ULL;
    auto mix = [&x](uint64_t v) {
      x ^= v;
      x *= 0x100000001b3ULL;
    };
    mix(rec.src);
    mix(rec.dst);
    mix(rec.bytes);
    mix(static_cast<uint64_t>(rec.start.ps()));
    mix(rec.completed ? static_cast<uint64_t>(rec.fct.ps()) : 0);
    mix(rec.rx_bytes);
    mix(rec.retransmits);
    mix(static_cast<uint64_t>(rec.rtt_sum.ps()));
    h += x;
  });
  return h;
}

}  // namespace unison
