#include "src/stats/flow_monitor.h"

#include <algorithm>

namespace unison {

uint32_t FlowMonitor::Register(NodeId src, NodeId dst, uint64_t bytes, Time start) {
  FlowRecord rec;
  rec.id = static_cast<uint32_t>(flows_.size());
  rec.src = src;
  rec.dst = dst;
  rec.bytes = bytes;
  rec.start = start;
  flows_.push_back(rec);
  return rec.id;
}

void FlowMonitor::Complete(uint32_t id, Time now) {
  FlowRecord& rec = flows_[id];
  rec.completed = true;
  rec.fct = now - rec.start;
}

void FlowMonitor::AddRtt(uint32_t id, Time sample) {
  FlowRecord& rec = flows_[id];
  ++rec.rtt_samples;
  rec.rtt_sum += sample;
}

void FlowMonitor::AddRxBytes(uint32_t id, uint64_t n, Time now) {
  FlowRecord& rec = flows_[id];
  rec.rx_bytes += n;
  rec.last_rx = now;
}

FlowSummary FlowMonitor::Summarize() const {
  FlowSummary s;
  s.flows = flows_.size();
  double fct_ms_sum = 0;
  double thr_sum = 0;
  double rtt_ms_sum = 0;
  uint64_t rtt_count = 0;
  std::vector<double> fcts;
  for (const FlowRecord& rec : flows_) {
    s.total_rx_bytes += rec.rx_bytes;
    s.total_retransmits += rec.retransmits;
    if (rec.rtt_samples > 0) {
      rtt_ms_sum += rec.rtt_sum.ToMilliseconds();
      rtt_count += rec.rtt_samples;
    }
    if (!rec.completed) {
      continue;
    }
    ++s.completed;
    const double fct_ms = rec.fct.ToMilliseconds();
    fct_ms_sum += fct_ms;
    fcts.push_back(fct_ms);
    if (rec.fct.ps() > 0) {
      thr_sum += static_cast<double>(rec.bytes) * 8.0 / rec.fct.ToSeconds() / 1e6;
    }
  }
  if (s.completed > 0) {
    s.mean_fct_ms = fct_ms_sum / static_cast<double>(s.completed);
    s.mean_throughput_mbps = thr_sum / static_cast<double>(s.completed);
    std::sort(fcts.begin(), fcts.end());
    s.p99_fct_ms = fcts[static_cast<size_t>(0.99 * static_cast<double>(fcts.size() - 1))];
  }
  if (rtt_count > 0) {
    s.mean_rtt_ms = rtt_ms_sum / static_cast<double>(rtt_count);
  }
  return s;
}

uint64_t FlowMonitor::Fingerprint() const {
  // FNV-1a over per-flow outcomes; addition keeps it order-independent with
  // respect to flow id (ids are stable anyway, but cheap insurance).
  uint64_t h = 0;
  for (const FlowRecord& rec : flows_) {
    uint64_t x = 0xcbf29ce484222325ULL;
    auto mix = [&x](uint64_t v) {
      x ^= v;
      x *= 0x100000001b3ULL;
    };
    mix(rec.id);
    mix(rec.completed ? static_cast<uint64_t>(rec.fct.ps()) : 0);
    mix(rec.rx_bytes);
    mix(rec.retransmits);
    mix(static_cast<uint64_t>(rec.rtt_sum.ps()));
    h += x;
  }
  return h;
}

}  // namespace unison
