// Log-bucketed histogram for latency-style metrics (HdrHistogram-flavored).
//
// Values are bucketed at ~4.2% relative resolution (16 linear sub-buckets
// per power of two), which keeps percentile queries accurate to a few
// percent across nine decades while the whole structure stays a few KB —
// cheap enough to keep one per metric per run.
#ifndef UNISON_SRC_STATS_HISTOGRAM_H_
#define UNISON_SRC_STATS_HISTOGRAM_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace unison {

class Histogram {
 public:
  Histogram() : counts_(kBuckets, 0) {}

  void Add(uint64_t value) {
    ++counts_[BucketOf(value)];
    ++total_;
    sum_ += value;
    if (value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
  }

  uint64_t count() const { return total_; }
  uint64_t min() const { return total_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(total_);
  }

  // Value at quantile q in [0, 1]; returns a representative value of the
  // containing bucket (its upper edge), so Quantile(1.0) >= max is possible
  // only within bucket resolution.
  uint64_t Quantile(double q) const {
    if (total_ == 0) {
      return 0;
    }
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total_ - 1));
    for (size_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] > rank) {
        return UpperEdge(b);
      }
      rank -= counts_[b];
    }
    return max_;
  }

  void Merge(const Histogram& other) {
    for (size_t b = 0; b < counts_.size(); ++b) {
      counts_[b] += other.counts_[b];
    }
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.total_ > 0) {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }

 private:
  static constexpr uint32_t kSubBits = 4;  // 16 sub-buckets per octave.
  static constexpr uint32_t kOctaves = 60;
  static constexpr uint32_t kBuckets = (kOctaves + 1) << kSubBits;

  static uint32_t BucketOf(uint64_t v) {
    if (v < (1u << kSubBits)) {
      return static_cast<uint32_t>(v);  // Exact for tiny values.
    }
    const uint32_t octave = std::bit_width(v) - 1;  // >= kSubBits.
    const uint32_t sub =
        static_cast<uint32_t>((v >> (octave - kSubBits)) & ((1u << kSubBits) - 1));
    return ((octave - kSubBits + 1) << kSubBits) + sub;
  }

  static uint64_t UpperEdge(size_t bucket) {
    if (bucket < (1u << kSubBits)) {
      return bucket;
    }
    const uint64_t octave = (bucket >> kSubBits) + kSubBits - 1;
    const uint64_t sub = bucket & ((1u << kSubBits) - 1);
    return (1ULL << octave) + ((sub + 1) << (octave - kSubBits)) - 1;
  }

  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_STATS_HISTOGRAM_H_
