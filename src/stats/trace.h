// Run-trace observability layer: structured per-round records of a kernel
// run, plus a RunSummary aggregate emitted by every kernel.
//
// The paper's entire evaluation rests on the P/S/M time composition
// (Figs. 5b, 9b, 13); this layer makes that measurement a first-class,
// machine-readable artifact instead of numbers scraped from bench stdout.
// The coordinating thread records one RoundTraceRecord per synchronization
// round (round index, LBTS, window, cumulative events, and — on re-sort
// rounds — the scheduler's claimed LP order); after the run, the per-round
// P/S matrices are folded in from the Profiler and the whole trace can be
// exported as JSON or CSV.
//
// Cost discipline mirrors the profiler: everything here is gated on
// `enabled`, kernels check a cached `tracing_` flag next to the existing
// `profiling_` gate, and a disabled trace costs nothing on the hot path.
// Recording itself is coordinator-only (worker 0 / rank 0 between barriers),
// so no locking is needed.
#ifndef UNISON_SRC_STATS_TRACE_H_
#define UNISON_SRC_STATS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/time.h"
#include "src/stats/profiler.h"

namespace unison {

// End-of-run aggregate; every kernel fills one via Kernel::FinishRun, whether
// or not tracing/profiling is enabled (the P/S/M fields are zero unless a
// profiler was attached).
struct RunSummary {
  std::string kernel;             // "sequential", "barrier", "nullmsg", ...
  uint32_t executors = 0;         // Worker threads / ranks.
  uint32_t lps = 0;
  uint64_t rounds = 0;
  uint64_t events = 0;
  uint64_t wall_ns = 0;           // Wall time of Run() itself.
  uint64_t processing_ns = 0;     // Sums over executors (profiler-provided).
  uint64_t synchronization_ns = 0;
  uint64_t messaging_ns = 0;
  // Windowed-session placement: which Run() window of the session this
  // summary covers, its [start, stop) bounds in simulated time, and why the
  // window ended ("window" | "exhausted" | "stop", see RunReasonName).
  uint32_t window_index = 0;
  int64_t window_start_ps = 0;
  int64_t window_stop_ps = 0;
  std::string reason;
  // Snapshot lineage: "snap-<digest>@w<windows>" when this run belongs to a
  // forked branch (Session::Fork), empty for monolithic sessions.
  std::string forked_from;
  // Live-tuning provenance: the TunableStore epoch this window sampled (0 =
  // config defaults, never tuned) and the resolved values it ran with —
  // sched_period after the ceil(log2 n) fallback, parties in the kernel's
  // knob units.
  uint64_t tuning_epoch = 0;
  uint32_t sched_period = 0;
  uint32_t parties = 0;
  // Movable-ownership provenance: how many LPs changed executor at this
  // window's boundary, and the partition-map epoch the window ran under
  // (0 = the setup-time placement, never migrated).
  uint32_t migrations = 0;
  uint64_t ownership_epoch = 0;
  // Mean per-round processing imbalance of the window (busiest executor's
  // share over the ideal 1/W share, minus one); 0 when the profiler recorded
  // no usable per-round matrices. Filled by RunTrace::EndRun — the post-move
  // balance observability for the rebalance rule.
  double imbalance = 0.0;
  // Speculative window execution (DESIGN.md §3k): rounds this window ran
  // past the conservative Eq. 2 bound, how many of those committed (hits) or
  // were discarded by a rollback (misses — at most 1 per window, since a
  // miss aborts the attempt), and the wall time spent restoring the window
  // checkpoint. All zero when speculation is off or never extended a round.
  uint32_t spec_rounds = 0;
  uint32_t spec_hits = 0;
  uint32_t spec_misses = 0;
  uint64_t rollback_ns = 0;

  std::string ToJson() const;
};

// One synchronization round as seen by the coordinator.
struct RoundTraceRecord {
  uint32_t round = 0;
  int64_t lbts_ps = 0;
  int64_t window_ps = 0;
  uint64_t events_before = 0;  // Cumulative events at round start (best effort:
                               // kernels without live counters report 0).
  uint64_t barrier_ns = 0;     // Coordinator-observed arrive-to-release latency
                               // of the round's reduction barrier.
  uint64_t parked = 0;         // Futex parks across all workers at that barrier
                               // (delta of the barrier's cumulative counter).
  bool resorted = false;       // The scheduler re-sorted the claim order.
  std::vector<uint32_t> claim_order;  // LP ids, priority order; re-sort rounds
                                      // only (it is unchanged in between).
};

// One completed Run() window of a session, archived verbatim by EndRun so a
// multi-window session exports every window, not just the last one.
struct WindowTraceSegment {
  RunSummary summary;
  std::vector<RoundTraceRecord> records;
  std::vector<ExecutorPhaseStats> executors;
  std::vector<std::vector<uint64_t>> round_p;
  std::vector<std::vector<uint64_t>> round_s;
  std::vector<std::vector<uint64_t>> round_m;
};

class RunTrace {
 public:
  // Opt-in, like Profiler::enabled. Kernels skip every Record* call when off.
  bool enabled = false;
  // Claim orders cost O(#LP) per re-sort round; disable to bound trace memory
  // on very large runs while keeping the scalar per-round fields.
  bool record_claim_order = true;

  // --- Recording API (coordinating thread only) ---

  // Discards all archived window segments. Called by Kernel::Setup so a fresh
  // session starts with an empty trace; Run()-level BeginRun only clears the
  // *current* window's state and leaves prior segments intact.
  void BeginSession();
  void BeginRun(std::string kernel, uint32_t executors, uint32_t lps);
  void BeginRound(uint32_t round, Time lbts, Time window, uint64_t events_before);
  // Attaches the scheduler order to the most recent round record.
  void RecordClaimOrder(const std::vector<uint32_t>& order);
  // Attaches the reduction-barrier latency and park count to the most recent
  // round record (the coordinator measures them at the round's end barrier).
  void RecordBarrier(uint64_t barrier_ns, uint64_t parked);
  // Folds in the final summary and, when the profiler recorded per-round
  // matrices, copies them so the exported trace is self-contained.
  void EndRun(const RunSummary& summary, const Profiler* profiler);

  // --- Post-run inspection ---

  // Latest window's summary/rounds (the pre-session accessors; a single-window
  // run sees exactly the old behaviour).
  const RunSummary& summary() const { return summary_; }
  const std::vector<RoundTraceRecord>& records() const { return records_; }
  // Completed windows of the session, in Run() order.
  const std::vector<WindowTraceSegment>& segments() const { return segments_; }
  // Session-wide aggregate: rounds/events/wall/P/S/M summed over all archived
  // segments, bounds spanning first window start to last window stop.
  RunSummary Cumulative() const;
  // [round][executor]; empty unless the profiler ran with per_round.
  const std::vector<std::vector<uint64_t>>& round_processing_ns() const {
    return round_p_;
  }
  const std::vector<std::vector<uint64_t>>& round_sync_ns() const { return round_s_; }
  const std::vector<std::vector<uint64_t>>& round_messaging_ns() const {
    return round_m_;
  }

  // --- Exporters ---

  // Full structured trace: latest-window summary, per-executor P/S/M, one
  // object per round — plus session keys: "windows" (count), "cumulative"
  // (session aggregate), and "segments" (one full trace object per window).
  std::string ToJson() const;
  // Flat per-round table across every window of the session:
  // window,round,lbts_ps,window_ps,events_before,resorted,
  // p_total_ns,s_total_ns,m_total_ns,barrier_ns,parked,tuning_epoch,
  // migrations,spec_rounds,spec_hits,spec_misses,rollback_ns (the last five
  // are window-level, repeated per row).
  std::string ToCsv() const;
  bool WriteJsonFile(const std::string& path) const;
  bool WriteCsvFile(const std::string& path) const;

 private:
  RunSummary summary_;
  std::vector<RoundTraceRecord> records_;
  std::vector<ExecutorPhaseStats> executors_;
  std::vector<std::vector<uint64_t>> round_p_;
  std::vector<std::vector<uint64_t>> round_s_;
  std::vector<std::vector<uint64_t>> round_m_;
  std::vector<WindowTraceSegment> segments_;
};

}  // namespace unison

#endif  // UNISON_SRC_STATS_TRACE_H_
