// Surrogates for the ML-based data-driven simulators the paper compares
// against (§2.2, §6.1, §6.2). The real artifacts need A100 GPUs and hours of
// training; these surrogates model exactly the properties the paper relies
// on for its comparison:
//
//  - DeepQueueNet's runtime is proportional to the number of injected packets
//    (per-packet DNN inference), divided by its device parallelism; it also
//    has a fixed per-run setup cost and a long training time that full-
//    fidelity simulation does not pay.
//
//  - MimicNet trains on ONE cluster and predicts the rest by reuse, so its
//    predictions inherit the trained cluster's conditions and miss traffic
//    that "does not scale proportionally" (incast into one cluster). The
//    surrogate builds an empirical flow-level model (FCT by flow-size
//    bucket, RTT, per-flow throughput) from a training run and predicts a
//    target workload by sampling it — accurate when the target looks like
//    the training cluster, wrong under skew.
#ifndef UNISON_SRC_MLSIM_SURROGATES_H_
#define UNISON_SRC_MLSIM_SURROGATES_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/stats/flow_monitor.h"

namespace unison {

struct DqnConfig {
  double per_packet_inference_us = 120.0;  // Single-device per-packet cost.
  uint32_t devices = 2;                    // GPUs; near-linear inference scaling.
  double setup_s = 30.0;                   // Model load / graph build per run.
  double training_hours_per_device_model = 12.0;  // Reported by the paper.
};

class DeepQueueNetSurrogate {
 public:
  explicit DeepQueueNetSurrogate(const DqnConfig& config) : cfg_(config) {}

  // Predicted wall time to simulate a workload of `packets` packets.
  double InferenceSeconds(uint64_t packets) const {
    return cfg_.setup_s + static_cast<double>(packets) * cfg_.per_packet_inference_us /
                              1e6 / cfg_.devices;
  }

  double TrainingSeconds(uint32_t device_types) const {
    return cfg_.training_hours_per_device_model * 3600.0 * device_types;
  }

 private:
  DqnConfig cfg_;
};

struct MimicPrediction {
  double mean_fct_ms = 0;
  double mean_rtt_ms = 0;
  double mean_throughput_mbps = 0;
};

class MimicNetSurrogate {
 public:
  // "Trains" on the flows of a full-fidelity run restricted to one cluster's
  // sources (hosts [cluster_begin, cluster_end) by node id filter given by
  // the caller through the flow list).
  void Train(const std::vector<FlowRecord>& training_flows);

  bool trained() const { return !fct_buckets_.empty(); }

  // Predicts flow-level metrics for a target workload (sizes + count only —
  // the mimic never sees the target's congestion state, which is exactly its
  // failure mode under skew).
  MimicPrediction Predict(const std::vector<FlowRecord>& target_flows, Rng& rng) const;

 private:
  static uint32_t BucketOf(uint64_t bytes);

  // Per flow-size bucket: observed FCTs (ms) and throughputs (Mbps).
  std::vector<std::vector<double>> fct_buckets_;
  std::vector<std::vector<double>> thr_buckets_;
  std::vector<double> rtt_samples_ms_;
};

}  // namespace unison

#endif  // UNISON_SRC_MLSIM_SURROGATES_H_
