#include "src/mlsim/surrogates.h"

#include <algorithm>
#include <bit>

namespace unison {

uint32_t MimicNetSurrogate::BucketOf(uint64_t bytes) {
  // Log2 size buckets, clamped to 32.
  return std::min<uint32_t>(31, std::bit_width(std::max<uint64_t>(1, bytes)) - 1);
}

void MimicNetSurrogate::Train(const std::vector<FlowRecord>& training_flows) {
  fct_buckets_.assign(32, {});
  thr_buckets_.assign(32, {});
  rtt_samples_ms_.clear();
  for (const FlowRecord& f : training_flows) {
    if (!f.completed) {
      continue;
    }
    const uint32_t b = BucketOf(f.bytes);
    const double fct_ms = f.fct.ToMilliseconds();
    fct_buckets_[b].push_back(fct_ms);
    if (f.fct.ps() > 0) {
      thr_buckets_[b].push_back(static_cast<double>(f.bytes) * 8.0 / f.fct.ToSeconds() /
                                1e6);
    }
    if (f.rtt_samples > 0) {
      rtt_samples_ms_.push_back(f.rtt_sum.ToMilliseconds() /
                                static_cast<double>(f.rtt_samples));
    }
  }
}

MimicPrediction MimicNetSurrogate::Predict(const std::vector<FlowRecord>& target_flows,
                                           Rng& rng) const {
  MimicPrediction out;
  uint64_t n = 0;
  double fct_sum = 0;
  double thr_sum = 0;
  for (const FlowRecord& f : target_flows) {
    // Find the nearest trained bucket with data.
    uint32_t b = BucketOf(f.bytes);
    uint32_t best = UINT32_MAX;
    for (uint32_t delta = 0; delta < 32; ++delta) {
      if (b >= delta && !fct_buckets_[b - delta].empty()) {
        best = b - delta;
        break;
      }
      if (b + delta < 32 && !fct_buckets_[b + delta].empty()) {
        best = b + delta;
        break;
      }
    }
    if (best == UINT32_MAX) {
      continue;
    }
    const auto& fcts = fct_buckets_[best];
    fct_sum += fcts[rng.NextU64Below(fcts.size())];
    const auto& thrs = thr_buckets_[best];
    if (!thrs.empty()) {
      thr_sum += thrs[rng.NextU64Below(thrs.size())];
    }
    ++n;
  }
  if (n > 0) {
    out.mean_fct_ms = fct_sum / static_cast<double>(n);
    out.mean_throughput_mbps = thr_sum / static_cast<double>(n);
  }
  if (!rtt_samples_ms_.empty()) {
    double s = 0;
    for (double r : rtt_samples_ms_) {
      s += r;
    }
    out.mean_rtt_ms = s / static_cast<double>(rtt_samples_ms_.size());
  }
  return out;
}

}  // namespace unison
