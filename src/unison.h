// Umbrella header: everything a downstream user of the Unison reproduction
// needs. Examples and benches include only this.
#ifndef UNISON_SRC_UNISON_H_
#define UNISON_SRC_UNISON_H_

#include "src/cachesim/cache_sim.h"
#include "src/core/event.h"
#include "src/core/rng.h"
#include "src/core/time.h"
#include "src/costmodel/cost_model.h"
#include "src/flowsim/flow_level.h"
#include "src/kernel/kernel.h"
#include "src/kernel/simulator.h"
#include "src/mlsim/surrogates.h"
#include "src/net/app.h"
#include "src/net/network.h"
#include "src/net/udp.h"
#include "src/partition/fine_grained.h"
#include "src/partition/manual.h"
#include "src/sched/lpt.h"
#include "src/stats/digest.h"
#include "src/stats/flow_monitor.h"
#include "src/stats/histogram.h"
#include "src/stats/profiler.h"
#include "src/stats/trace.h"
#include "src/topo/bcube.h"
#include "src/topo/fat_tree.h"
#include "src/topo/spine_leaf.h"
#include "src/topo/torus.h"
#include "src/topo/dragonfly.h"
#include "src/topo/lan.h"
#include "src/topo/wan.h"
#include "src/traffic/cdf.h"
#include "src/traffic/generator.h"
#include "src/traffic/trace.h"

#endif  // UNISON_SRC_UNISON_H_
