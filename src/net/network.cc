#include "src/net/network.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/net/model_events.h"
#include "src/net/session.h"
#include "src/partition/fine_grained.h"
#include "src/partition/manual.h"
#include "src/traffic/flow_source.h"

namespace unison {

Network::Network(SimConfig config) : config_(std::move(config)) {
  // Tracing rides on the profiler gate: a trace without the per-round P/S
  // matrices would be hollow, so cfg.trace implies profile + per-round. The
  // controller consumes trace segments, so kAuto implies the same machinery —
  // minus claim-order rows (O(#LP) each), which only a user trace keeps.
  const bool auto_tuning = config_.tuning == TuningMode::kAuto;
  profiler_.enabled = config_.profile || config_.trace || auto_tuning;
  profiler_.per_round = config_.profile_per_round || config_.trace || auto_tuning;
  profiler_.per_lp = config_.profile_per_lp;
  run_trace_.enabled = config_.trace || auto_tuning;
  run_trace_.record_claim_order = config_.trace && config_.trace_claim_order;
}

Network::~Network() = default;

NodeId Network::AddNode() {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(this, id));
  return id;
}

void Network::AddNodes(uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    AddNode();
  }
}

std::unique_ptr<Queue> Network::MakeQueue(const QueueConfig& config, uint64_t stream) const {
  switch (config.kind) {
    case QueueConfig::Kind::kDropTail:
      return std::make_unique<DropTailQueue>(config.capacity_bytes);
    case QueueConfig::Kind::kRed: {
      RedConfig red;
      red.capacity_bytes = config.capacity_bytes;
      red.min_th = config.red_min_th;
      red.max_th = config.red_max_th;
      red.max_p = config.red_max_p;
      red.weight = config.red_weight;
      red.ecn = config_.tcp.ecn || config_.tcp.dctcp;
      red.seed = config_.seed * 0x9e3779b97f4a7c15ULL + stream;
      return std::make_unique<RedQueue>(red);
    }
    case QueueConfig::Kind::kDctcp:
      return RedQueue::MakeDctcp(static_cast<uint32_t>(config.red_min_th),
                                 config.capacity_bytes);
  }
  return nullptr;
}

uint32_t Network::AddLink(NodeId a, NodeId b, uint64_t bps, Time delay) {
  return AddLink(a, b, bps, delay, config_.queue);
}

uint32_t Network::AddLink(NodeId a, NodeId b, uint64_t bps, Time delay,
                          const QueueConfig& queue, bool stateless) {
  if (finalized()) {
    FatalConfigError(
        "Network: AddLink after Finalize is not supported; use SetLinkUp "
        "from a global event for dynamics");
  }
  const uint32_t id = static_cast<uint32_t>(links_.size());
  Device* da = nodes_[a]->AddDevice(b, bps, delay, MakeQueue(queue, 2 * id));
  Device* db = nodes_[b]->AddDevice(a, bps, delay, MakeQueue(queue, 2 * id + 1));
  links_.push_back(
      LinkInfo{a, b, da->port(), db->port(), bps, delay, true, stateless, queue});
  return id;
}

void Network::SetManualPartition(uint32_t num_lps, std::vector<LpId> lp_of_node) {
  manual_partition_.num_lps = num_lps;
  manual_partition_.lp_of_node = std::move(lp_of_node);
  has_manual_partition_ = true;
}

void Network::EnableDistanceVector(Time period) {
  use_dv_ = true;
  dv_period_ = period;
}

void Network::EnableProgressReport(Time interval,
                                   std::function<void(Time, uint64_t)> callback) {
  Finalize();
  if (!callback) {
    callback = [](Time now, uint64_t events) {
      std::fprintf(stderr, "[unison] t=%.6fs, %llu events so far\n", now.ToSeconds(),
                   static_cast<unsigned long long>(events));
    };
  }
  // Self-rescheduling global event; the chain ends when the next occurrence
  // falls beyond the stop time. The closure is owned by the network (not by
  // itself — a self-capturing shared_ptr would be a reference cycle) and
  // events capture a raw pointer into that stable storage.
  struct Ticker {
    Network* self;
    Time interval;
    std::function<void(Time, uint64_t)> cb;
    void Fire() {
      const Time now = self->sim().Now();
      cb(now, self->kernel().LiveEvents());
      self->sim().ScheduleGlobal(now + interval, [t = this] { t->Fire(); });
    }
  };
  auto ticker = std::make_shared<Ticker>(Ticker{this, interval, std::move(callback)});
  sim().ScheduleGlobal(interval, [t = ticker.get()] { t->Fire(); });
  Keep(std::move(ticker));
}

void Network::BuildGraph() {
  graph_.num_nodes = num_nodes();
  graph_.edges.clear();
  graph_.edges.reserve(links_.size());
  for (const LinkInfo& link : links_) {
    graph_.edges.push_back(TopoEdge{link.a, link.b, link.delay, link.stateless});
  }
}

void Network::Finalize() {
  if (finalized()) {
    return;
  }
  BuildGraph();

  Partition partition;
  PartitionMode mode = config_.partition;
  if (config_.kernel.type == KernelType::kSequential) {
    mode = PartitionMode::kSingle;  // One FEL; anything else is pure overhead.
  }
  switch (mode) {
    case PartitionMode::kAuto:
      partition = FineGrainedPartition(graph_);
      break;
    case PartitionMode::kManual:
      if (!has_manual_partition_) {
        FatalConfigError("Network: manual partition requested but none set");
      }
      partition = manual_partition_;
      FinalizePartition(graph_, &partition);
      break;
    case PartitionMode::kSingle:
      partition = SingleLpPartition(graph_);
      break;
  }

  kernel_ = MakeKernel(config_.kernel);
  kernel_->set_profiler(&profiler_);
  kernel_->set_trace(&run_trace_);
  // Two-tier config split: the mutable knobs move into the tunable store,
  // seeded from the KernelConfig. Every kernel samples the store per window,
  // tuning on or off — a store that only ever holds its seed (epoch 0) is
  // exactly the static configuration.
  Tunables seed;
  seed.sched_period = config_.kernel.sched_period;
  seed.parties = config_.kernel.threads;
  seed.affinity = config_.kernel.affinity;
  if (config_.tuning == TuningMode::kAuto) {
    // Bound the first windows so the controller gets observations before the
    // caller's stop time, not only at it (slicing is results-neutral).
    seed.max_window_ps = config_.tuning_config.initial_window_ps;
  }
  if (config_.speculation == SpeculationMode::kAuto) {
    // Live the horizon from the start; under tuning=kAuto the controller's
    // spec-horizon rule revises it between windows. A zero horizon is how
    // every other session stays on the conservative path — the kernels never
    // even capture a checkpoint then.
    seed.spec_horizon_ps = config_.tuning_config.spec_horizon_initial_ps;
  }
  tunable_store_.Seed(seed);
  kernel_->set_tunables(&tunable_store_);
  if (config_.tuning == TuningMode::kAuto) {
    controller_ =
        std::make_unique<Controller>(config_.tuning_config, &tunable_store_);
  }
  if (pending_external_pool_ != nullptr) {
    kernel_->set_external_pool(pending_external_pool_);
  }
  kernel_->Setup(graph_, partition);
  sim_.set_kernel(kernel_.get());

  // Per-executor flow-stat shards: shard 0 for non-executor contexts (setup,
  // injection between windows, the sequential kernel) plus one per pool
  // executor, merged at every window boundary once the kernel's final
  // barrier reduction has quiesced the pool.
  flow_monitor_.ConfigureShards(1 + kernel_->MaxExecutors());
  kernel_->set_window_end_hook([this] { flow_monitor_.MergeWindow(); });

  if (config_.speculation == SpeculationMode::kAuto) {
    // Checkpoint hooks for speculative window execution. The kernel owns
    // the policy (when to capture, when to roll back); the session layer
    // owns the representation. Capture may decline (lambda events, DV
    // routing) — the kernel then runs that window conservatively.
    kernel_->set_checkpoint_hooks(
        [this](std::vector<uint8_t>* out) {
          return CaptureWindowCheckpoint(*this, out);
        },
        [this](const std::vector<uint8_t>& buf) {
          RestoreWindowCheckpoint(*this, buf);
        });
  }

  if (use_dv_) {
    dv_routing_ = std::make_unique<DistanceVectorRouting>(this, dv_period_);
    dv_routing_->Install();
  } else {
    routing_.Compute(*this);
  }
}

void Network::MaybeAutoCheckpoint() {
  if (config_.kernel.auto_checkpoint_every == 0 ||
      config_.auto_checkpoint_path.empty()) {
    return;
  }
  if (++windows_since_checkpoint_ < config_.kernel.auto_checkpoint_every) {
    return;
  }
  if (!SessionSerializable(*this)) {
    // A non-serializable boundary (e.g. a progress ticker pending): leave
    // the counter saturated so every subsequent boundary retries until one
    // is clean, instead of silently sliding the whole cadence.
    --windows_since_checkpoint_;
    return;
  }
  windows_since_checkpoint_ = 0;
  Session(this).Snapshot().SaveTo(config_.auto_checkpoint_path);
}

RunResult Network::Run(Time stop) {
  Finalize();
  if (controller_ == nullptr) {
    const RunResult r = kernel_->Run(stop);
    MaybeAutoCheckpoint();
    return r;
  }
  // Closed loop: slice the caller's horizon by the live window bound, feed
  // each completed window's trace segment to the controller, and continue
  // until the caller's stop is reached (or the run ends for another reason).
  // Window slicing is results-neutral (K windowed runs are bit-identical to
  // one monolithic run), so this loop changes wall time only.
  RunResult total;
  for (;;) {
    const int64_t horizon = tunable_store_.Get().max_window_ps;
    Time next = stop;
    if (horizon > 0 && !stop.IsMax()) {
      next = std::min(stop, kernel_->session_now() + Time::Picoseconds(horizon));
    } else if (horizon > 0) {
      next = kernel_->session_now() + Time::Picoseconds(horizon);
    }
    const RunResult r = kernel_->Run(next);
    total.reason = r.reason;
    total.end = r.end;
    total.events += r.events;
    total.rounds += r.rounds;
    if (!run_trace_.segments().empty()) {
      controller_->OnWindowEnd(run_trace_.segments().back(),
                               kernel_->ownership_view());
    }
    MaybeAutoCheckpoint();
    if (r.reason != RunReason::kWindowReached || r.end >= stop) {
      return total;
    }
  }
}

void Network::FailLink(uint32_t link, Time t) {
  Finalize();
  if (link >= links_.size()) {
    FatalConfigError("Network: FailLink on a link index that does not exist");
  }
  sim_.ScheduleGlobal(t, LinkUpDownEvent{this, link, /*up=*/false});
}

uint32_t Network::RegisterFlowSourceSet(std::shared_ptr<FlowSourceSet> set) {
  const uint32_t index = static_cast<uint32_t>(flow_source_sets_.size());
  set->AssignIndex(index);
  flow_source_sets_.push_back(std::move(set));
  return index;
}

FlowSourceSet* Network::flow_source_set(uint32_t index) {
  return flow_source_sets_[index].get();
}

void Network::SetLinkUp(uint32_t link, bool up) {
  LinkInfo& info = links_[link];
  info.up = up;
  nodes_[info.a]->device(info.port_a)->set_up(up);
  nodes_[info.b]->device(info.port_b)->set_up(up);
  if (dv_routing_ != nullptr) {
    dv_routing_->OnLinkChange(info.a, info.b);
  }
  OnTopologyChanged();
}

void Network::SetLinkDelay(uint32_t link, Time delay) {
  LinkInfo& info = links_[link];
  info.delay = delay;
  nodes_[info.a]->device(info.port_a)->set_delay(delay);
  nodes_[info.b]->device(info.port_b)->set_delay(delay);
  graph_.edges[link].delay = delay;
  OnTopologyChanged();
}

void Network::OnTopologyChanged() {
  if (dv_routing_ == nullptr) {
    routing_.Compute(*this);
  }
  sim_.NotifyTopologyChanged();
}

Network::QueueTotals Network::AggregateQueueStats() const {
  QueueTotals totals;
  for (const auto& node : nodes_) {
    for (uint32_t p = 0; p < node->num_ports(); ++p) {
      // AggregateQueueStats is const but device() is not; nodes are owned.
      const QueueStats& qs =
          const_cast<Node&>(*node).device(p)->queue().stats();
      totals.dropped += qs.dropped;
      totals.ecn_marked += qs.ecn_marked;
      totals.dequeued += qs.dequeued;
      totals.total_delay += qs.total_delay;
    }
  }
  return totals;
}

}  // namespace unison
