#include "src/net/tcp.h"

#include <algorithm>

#include "src/net/model_events.h"
#include "src/net/network.h"
#include "src/net/node.h"

namespace unison {

TcpSender::TcpSender(Network* net, Node* node, uint32_t flow_id, NodeId dst, uint64_t bytes,
                     const TcpConfig& config)
    : net_(net),
      node_(node),
      flow_id_(flow_id),
      dst_(dst),
      size_(bytes),
      cfg_(config),
      rto_(config.initial_rto) {
  cwnd_ = static_cast<uint64_t>(cfg_.init_cwnd_segments) * cfg_.mss;
  // Constructed from inside the flow's start event in both installation
  // modes, so Now() is the flow's start time. The tag deliberately ignores
  // the monitor-assigned flow id, whose value encodes registration order and
  // shard — which differ between streaming and materialized installation —
  // while a flow's path must not.
  path_tag_ = EcmpPathTag(node->id(), dst, bytes, net->sim().Now().ps());
}

void TcpSender::Start() {
  if (size_ == 0) {
    Complete();  // Empty flow: nothing to transfer.
    return;
  }
  dctcp_window_end_ = 0;
  TrySend();
  ArmRto();
}

void TcpSender::TrySend() {
  // Send while the window has room; the final segment may be short. A
  // segment below the transmit high-water mark is a retransmission (the
  // go-back-N resend after an RTO reaches here with snd_nxt_ rewound).
  while (snd_nxt_ < size_ && InFlight() < cwnd_) {
    const uint32_t len = static_cast<uint32_t>(std::min<uint64_t>(cfg_.mss, size_ - snd_nxt_));
    SendSegment(snd_nxt_, len, /*retransmission=*/snd_nxt_ < high_tx_);
    snd_nxt_ += len;
  }
}

void TcpSender::SendSegment(uint64_t seq, uint32_t len, bool retransmission) {
  Packet pkt;
  pkt.kind = PacketKind::kTcpData;
  pkt.flow_id = flow_id_;
  pkt.src = node_->id();
  pkt.dst = dst_;
  pkt.seq = seq;
  pkt.payload = len;
  pkt.size_bytes = len + kHeaderBytes;
  pkt.fin = seq + len >= size_;
  pkt.ecn_capable = cfg_.ecn || cfg_.dctcp;
  pkt.path_tag = path_tag_;
  pkt.ts = net_->sim().Now();
  high_tx_ = std::max(high_tx_, seq + len);
  if (retransmission) {
    ++retransmits_;
    net_->flow_monitor().AddRetransmit(flow_id_);
  }
  node_->SendFromLocal(std::move(pkt));
}

void TcpSender::UpdateRtt(Time sample) {
  net_->flow_monitor().AddRtt(flow_id_, sample);
  if (!rtt_valid_) {
    srtt_ = sample;
    rttvar_ = Time::Picoseconds(sample.ps() / 2);
    rtt_valid_ = true;
  } else {
    // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - sample|;
    //           srtt = 7/8 srtt + 1/8 sample.
    const int64_t err = std::abs(srtt_.ps() - sample.ps());
    rttvar_ = Time::Picoseconds((3 * rttvar_.ps() + err) / 4);
    srtt_ = Time::Picoseconds((7 * srtt_.ps() + sample.ps()) / 8);
  }
  rto_ = std::max(cfg_.min_rto, srtt_ + Time::Picoseconds(4 * rttvar_.ps()));
}

void TcpSender::ArmRto() {
  // Lazy timer: remember the desired deadline; keep at most one event in the
  // FEL. A stale firing re-arms itself instead of timing out.
  const Time timeout = Time::Picoseconds(rto_.ps() << rto_backoff_);
  rto_deadline_ = net_->sim().Now() + timeout;
  if (!rto_pending_) {
    rto_pending_ = true;
    net_->sim().ScheduleOnNode(node_->id(), timeout,
                               TcpRtoEvent{net_, node_->id(), flow_id_});
  }
}

void TcpSender::OnRto(uint64_t /*generation*/) {
  rto_pending_ = false;
  if (completed_ || snd_una_ >= size_) {
    return;  // Flow finished; nothing outstanding.
  }
  const Time now = net_->sim().Now();
  if (now < rto_deadline_) {
    // The deadline moved forward since this timer was armed: re-arm.
    rto_pending_ = true;
    net_->sim().Schedule(rto_deadline_ - now,
                         TcpRtoEvent{net_, node_->id(), flow_id_});
    return;
  }
  // Timeout: collapse to one segment, go back to slow start, resend from the
  // ack point.
  ssthresh_ = std::max<uint64_t>(InFlight() / 2, 2 * cfg_.mss);
  cwnd_ = cfg_.mss;
  snd_nxt_ = snd_una_;
  dup_acks_ = 0;
  state_ = State::kSlowStart;
  rto_backoff_ = std::min(rto_backoff_ + 1, 8u);
  TrySend();
  ArmRto();
}

void TcpSender::OnEcnEcho(uint64_t newly_acked, bool ece) {
  if (cfg_.dctcp) {
    dctcp_bytes_acked_ += newly_acked;
    if (ece) {
      dctcp_bytes_marked_ += newly_acked;
    }
    if (snd_una_ >= dctcp_window_end_) {
      // One observation window (~RTT) elapsed: fold the marked fraction into
      // alpha and apply the DCTCP reduction if anything was marked.
      const double frac = dctcp_bytes_acked_ == 0
                              ? 0.0
                              : static_cast<double>(dctcp_bytes_marked_) /
                                    static_cast<double>(dctcp_bytes_acked_);
      alpha_ = (1.0 - cfg_.dctcp_g) * alpha_ + cfg_.dctcp_g * frac;
      if (dctcp_bytes_marked_ > 0) {
        cwnd_ = std::max<uint64_t>(
            static_cast<uint64_t>(static_cast<double>(cwnd_) * (1.0 - alpha_ / 2.0)),
            cfg_.mss);
        ssthresh_ = cwnd_;
        state_ = State::kCongestionAvoidance;
      }
      dctcp_bytes_acked_ = 0;
      dctcp_bytes_marked_ = 0;
      dctcp_window_end_ = snd_nxt_;
    }
  } else if (cfg_.ecn && ece && snd_una_ >= cwr_end_) {
    // Classic ECN: at most one halving per window of data.
    ssthresh_ = std::max<uint64_t>(cwnd_ / 2, 2 * cfg_.mss);
    cwnd_ = ssthresh_;
    state_ = State::kCongestionAvoidance;
    cwr_end_ = snd_nxt_;
  }
}

void TcpSender::OnAck(const Packet& ack) {
  if (completed_) {
    return;
  }
  if (ack.ts_echo.ps() > 0) {
    UpdateRtt(net_->sim().Now() - ack.ts_echo);
  }

  if (ack.ack > snd_una_) {
    const uint64_t newly = ack.ack - snd_una_;
    snd_una_ = ack.ack;
    rto_backoff_ = 0;
    OnEcnEcho(newly, ack.ece);

    if (state_ == State::kFastRecovery) {
      if (snd_una_ >= recover_) {
        // Full ack: leave recovery.
        cwnd_ = ssthresh_;
        state_ = State::kCongestionAvoidance;
        dup_acks_ = 0;
      } else {
        // NewReno partial ack: retransmit the next hole, deflate the window
        // by the acked amount and inflate by one segment.
        SendSegment(snd_una_,
                    static_cast<uint32_t>(
                        std::min<uint64_t>(cfg_.mss, size_ - snd_una_)),
                    true);
        cwnd_ = cwnd_ > newly ? cwnd_ - newly + cfg_.mss : cfg_.mss;
      }
    } else {
      dup_acks_ = 0;
      if (state_ == State::kSlowStart) {
        cwnd_ += std::min<uint64_t>(newly, cfg_.mss);
        if (cwnd_ >= ssthresh_) {
          state_ = State::kCongestionAvoidance;
        }
      } else {
        // Congestion avoidance: ~one MSS per RTT.
        cwnd_ += std::max<uint64_t>(1, static_cast<uint64_t>(cfg_.mss) * cfg_.mss / cwnd_);
      }
    }

    if (snd_una_ >= size_) {
      Complete();
      return;
    }
    ArmRto();
  } else if (snd_nxt_ > snd_una_) {
    // Duplicate ack while data is outstanding.
    ++dup_acks_;
    if (state_ == State::kFastRecovery) {
      cwnd_ += cfg_.mss;  // Inflation per additional dup ack.
    } else if (dup_acks_ == 3) {
      // Fast retransmit.
      ssthresh_ = std::max<uint64_t>(InFlight() / 2, 2 * cfg_.mss);
      recover_ = snd_nxt_;
      state_ = State::kFastRecovery;
      cwnd_ = ssthresh_ + 3 * cfg_.mss;
      SendSegment(snd_una_,
                  static_cast<uint32_t>(std::min<uint64_t>(cfg_.mss, size_ - snd_una_)),
                  true);
    }
    OnEcnEcho(0, ack.ece);
  }
  TrySend();
}

TcpSender::Image TcpSender::Save() const {
  Image im;
  im.path_tag = path_tag_;
  im.state = static_cast<uint8_t>(state_);
  im.snd_una = snd_una_;
  im.snd_nxt = snd_nxt_;
  im.high_tx = high_tx_;
  im.cwnd = cwnd_;
  im.ssthresh = ssthresh_;
  im.recover = recover_;
  im.dup_acks = dup_acks_;
  im.completed = completed_;
  im.retransmits = retransmits_;
  im.srtt_ps = srtt_.ps();
  im.rttvar_ps = rttvar_.ps();
  im.rto_ps = rto_.ps();
  im.rtt_valid = rtt_valid_;
  im.rto_pending = rto_pending_;
  im.rto_deadline_ps = rto_deadline_.ps();
  im.rto_backoff = rto_backoff_;
  im.cwr_end = cwr_end_;
  im.alpha = alpha_;
  im.dctcp_bytes_acked = dctcp_bytes_acked_;
  im.dctcp_bytes_marked = dctcp_bytes_marked_;
  im.dctcp_window_end = dctcp_window_end_;
  return im;
}

void TcpSender::Restore(const Image& im) {
  path_tag_ = im.path_tag;
  state_ = static_cast<State>(im.state);
  snd_una_ = im.snd_una;
  snd_nxt_ = im.snd_nxt;
  high_tx_ = im.high_tx;
  cwnd_ = im.cwnd;
  ssthresh_ = im.ssthresh;
  recover_ = im.recover;
  dup_acks_ = im.dup_acks;
  completed_ = im.completed;
  retransmits_ = im.retransmits;
  srtt_ = Time::Picoseconds(im.srtt_ps);
  rttvar_ = Time::Picoseconds(im.rttvar_ps);
  rto_ = Time::Picoseconds(im.rto_ps);
  rtt_valid_ = im.rtt_valid;
  rto_pending_ = im.rto_pending;
  rto_deadline_ = Time::Picoseconds(im.rto_deadline_ps);
  rto_backoff_ = im.rto_backoff;
  cwr_end_ = im.cwr_end;
  alpha_ = im.alpha;
  dctcp_bytes_acked_ = im.dctcp_bytes_acked;
  dctcp_bytes_marked_ = im.dctcp_bytes_marked;
  dctcp_window_end_ = im.dctcp_window_end;
}

void TcpSender::Complete() {
  completed_ = true;
  // Any pending RTO event sees completed_ and becomes a no-op.
  net_->flow_monitor().Complete(flow_id_, net_->sim().Now());
}

TcpReceiver::TcpReceiver(Network* net, Node* node, uint32_t flow_id, NodeId src)
    : net_(net), node_(node), flow_id_(flow_id), src_(src) {}

void TcpReceiver::OnData(const Packet& pkt) {
  const uint64_t seg_start = pkt.seq;
  const uint64_t seg_end = pkt.seq + pkt.payload;
  uint64_t advanced = 0;

  if (seg_end > rcv_nxt_) {
    if (seg_start <= rcv_nxt_) {
      const uint64_t before = rcv_nxt_;
      rcv_nxt_ = seg_end;
      // Pull any buffered out-of-order data that is now contiguous.
      auto it = out_of_order_.begin();
      while (it != out_of_order_.end() && it->first <= rcv_nxt_) {
        rcv_nxt_ = std::max(rcv_nxt_, it->second);
        it = out_of_order_.erase(it);
      }
      advanced = rcv_nxt_ - before;
    } else {
      // Hole: buffer the segment, merging overlaps.
      uint64_t s = seg_start;
      uint64_t e = seg_end;
      auto it = out_of_order_.lower_bound(s);
      if (it != out_of_order_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= s) {
          s = prev->first;
          e = std::max(e, prev->second);
          it = out_of_order_.erase(prev);
        }
      }
      while (it != out_of_order_.end() && it->first <= e) {
        e = std::max(e, it->second);
        it = out_of_order_.erase(it);
      }
      out_of_order_[s] = e;
    }
  }
  if (advanced > 0) {
    net_->flow_monitor().AddRxBytes(flow_id_, advanced, net_->sim().Now());
  }

  // Immediate ack, echoing the CE mark (per-packet, DCTCP-style) and the
  // sender timestamp for RTT sampling. Acks are not ECN-capable.
  Packet ack;
  ack.kind = PacketKind::kTcpAck;
  ack.flow_id = flow_id_;
  ack.src = node_->id();
  ack.dst = src_;
  ack.size_bytes = kAckBytes;
  ack.ack = rcv_nxt_;
  ack.ece = pkt.ecn_ce;
  ack.path_tag = pkt.path_tag;  // Acks follow the data packets' path choice.
  ack.ts_echo = pkt.ts;
  node_->SendFromLocal(std::move(ack));
}

}  // namespace unison
