// UDP datagram traffic: the On-Off (CBR burst) application and its sink.
//
// Exercises the non-TCP forwarding path: no acknowledgements, no congestion
// control — datagrams are paced at a constant bit rate during ON periods and
// silently dropped by full queues. The receiver side is just flow-monitor
// accounting; losses show up as the gap between offered and received bytes.
#ifndef UNISON_SRC_NET_UDP_H_
#define UNISON_SRC_NET_UDP_H_

#include <cstdint>

#include "src/core/time.h"
#include "src/net/packet.h"

namespace unison {

class Network;

struct OnOffSpec {
  NodeId src = 0;
  NodeId dst = 0;
  uint64_t rate_bps = 0;      // Sending rate during ON periods.
  uint32_t packet_bytes = 1000;  // UDP payload per datagram.
  Time on;                    // ON period length (constant).
  Time off;                   // OFF period length (constant; zero = CBR).
  Time start;
  Time stop;
};

// Installs an On-Off UDP application; returns its flow id (rx bytes and
// packet counts accumulate in the FlowMonitor record). The network must be
// finalized.
uint32_t InstallOnOffFlow(Network& net, const OnOffSpec& spec);

}  // namespace unison

#endif  // UNISON_SRC_NET_UDP_H_
