// Application layer: flow installation.
//
// A flow is registered with the FlowMonitor at setup time and started by an
// event on its source node's LP, which instantiates the TCP sender there.
// All randomness (arrival times, sizes, destinations) is drawn from named
// RNG streams, so the whole workload is identical for every kernel and
// thread count. The streaming path (src/traffic/flow_source.h) instead
// registers and starts each flow from inside its arrival event at run time.
#ifndef UNISON_SRC_NET_APP_H_
#define UNISON_SRC_NET_APP_H_

#include <cstdint>
#include <optional>

#include "src/core/time.h"
#include "src/net/tcp.h"

namespace unison {

class Network;

struct FlowSpec {
  NodeId src = 0;
  NodeId dst = 0;
  uint64_t bytes = 0;
  Time start;
  // Per-flow TCP override; the network default applies when unset.
  std::optional<TcpConfig> tcp;
};

// Registers the flow and schedules its start. Returns the flow id.
// The network must be finalized (Run finalizes implicitly, so typical setup
// order is: topology → Finalize → InstallFlow* → Run).
uint32_t InstallFlow(Network& net, const FlowSpec& spec);

}  // namespace unison

#endif  // UNISON_SRC_NET_APP_H_
