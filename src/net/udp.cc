#include "src/net/udp.h"

#include <memory>

#include "src/net/network.h"
#include "src/net/node.h"

namespace unison {
namespace {

// Self-scheduling sender; owned by the shared_ptr captured in its own
// events, so it dies with its last scheduled event.
struct OnOffSender : std::enable_shared_from_this<OnOffSender> {
  Network* net = nullptr;
  OnOffSpec spec;
  uint32_t flow_id = 0;
  Time gap;  // Inter-packet gap at rate_bps (wire size).
  Time phase_end;
  uint64_t tx_packets = 0;

  void StartOnPhase() {
    phase_end = net->sim().Now() + spec.on;
    Tick();
  }

  void Tick() {
    const Time now = net->sim().Now();
    if (now >= spec.stop) {
      return;
    }
    if (now >= phase_end) {
      if (spec.off.IsZero()) {
        phase_end = now + spec.on;  // Pure CBR: back-to-back ON phases.
      } else {
        auto self = shared_from_this();
        net->sim().Schedule(spec.off, [self] { self->StartOnPhase(); });
        return;
      }
    }
    Packet pkt;
    pkt.kind = PacketKind::kUdp;
    pkt.flow_id = flow_id;
    pkt.path_tag = flow_id;  // UDP flows are setup-installed; id is stable.
    pkt.src = spec.src;
    pkt.dst = spec.dst;
    pkt.payload = spec.packet_bytes;
    pkt.size_bytes = spec.packet_bytes + kHeaderBytes;
    ++tx_packets;
    net->node(spec.src).SendFromLocal(std::move(pkt));
    auto self = shared_from_this();
    net->sim().Schedule(gap, [self] { self->Tick(); });
  }
};

}  // namespace

uint32_t InstallOnOffFlow(Network& net, const OnOffSpec& spec) {
  net.Finalize();
  const uint32_t flow_id = net.flow_monitor().Register(spec.src, spec.dst,
                                                       /*bytes=*/0, spec.start);
  auto sender = std::make_shared<OnOffSender>();
  sender->net = &net;
  sender->spec = spec;
  sender->flow_id = flow_id;
  const uint64_t wire_bits = (spec.packet_bytes + kHeaderBytes) * 8ULL;
  sender->gap = Time::Picoseconds(static_cast<int64_t>(
      static_cast<double>(wire_bits) * 1e12 / static_cast<double>(spec.rate_bps)));
  net.sim().ScheduleOnNode(spec.src, spec.start, [sender] { sender->StartOnPhase(); });
  return flow_id;
}

}  // namespace unison
