#include "src/net/model_events.h"

#include <memory>
#include <utility>

#include "src/net/link.h"
#include "src/net/network.h"
#include "src/net/node.h"
#include "src/traffic/flow_source.h"

namespace unison {

void PacketDeliverEvent::operator()() {
  net->node(peer).Receive(std::move(pkt));
}

void TransmitCompleteEvent::operator()() {
  net->node(node).device(port)->TransmitComplete();
}

void TcpRtoEvent::operator()() {
  // The sender exists whenever a timer is outstanding; a missing entry can
  // only mean the flow was never restored (impossible for a well-formed
  // snapshot) — treat it as the no-op a completed flow's stale timer is.
  TcpSender* const sender = net->node(node).FindSender(flow_id);
  if (sender != nullptr) {
    sender->OnRto(0);
  }
}

void FlowStartEvent::operator()() {
  Node& node = net->node(src);
  TcpSender* sender = node.AddSender(
      flow_id, std::make_unique<TcpSender>(net, &node, flow_id, dst, bytes, cfg));
  sender->Start();
}

void FlowArrivalEvent::operator()() {
  net->flow_source_set(set_index)->source(source_index).OnArrival();
}

void LinkUpDownEvent::operator()() {
  net->SetLinkUp(link, up);
}

}  // namespace unison
