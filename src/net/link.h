// Network devices (ports) and the point-to-point links between them.
//
// A link is full duplex: each direction is an independent transmitter owned
// by the sending node's device, so two LPs never share link state — the
// property that makes point-to-point links "stateless" and safe to cut in
// the partition (§4.2).
#ifndef UNISON_SRC_NET_LINK_H_
#define UNISON_SRC_NET_LINK_H_

#include <cstdint>
#include <memory>

#include "src/core/time.h"
#include "src/net/packet.h"
#include "src/net/queue.h"

namespace unison {

class Network;
class Node;

struct DeviceStats {
  uint64_t tx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t dropped_down = 0;  // Sent while the link was administratively down.
};

class Device {
 public:
  Device(Network* net, NodeId self, uint32_t port, NodeId peer, uint64_t bps, Time delay,
         std::unique_ptr<Queue> queue)
      : net_(net),
        self_(self),
        port_(port),
        peer_(peer),
        bps_(bps),
        delay_(delay),
        queue_(std::move(queue)) {}

  // Queues or transmits `pkt` toward the peer.
  void Send(Packet pkt);

  NodeId peer() const { return peer_; }
  uint32_t port() const { return port_; }
  uint64_t bps() const { return bps_; }
  Time delay() const { return delay_; }
  bool up() const { return up_; }

  void set_delay(Time delay) { delay_ = delay; }
  void set_up(bool up) { up_ = up; }

  Queue& queue() { return *queue_; }
  const DeviceStats& stats() const { return stats_; }

  // --- Snapshot support ---
  bool transmitting() const { return transmitting_; }
  void set_transmitting(bool transmitting) { transmitting_ = transmitting; }
  void set_stats(const DeviceStats& stats) { stats_ = stats; }

 private:
  friend struct TransmitCompleteEvent;  // Invokes TransmitComplete().

  void StartTransmit(Packet pkt);
  void TransmitComplete();

  Network* const net_;
  const NodeId self_;
  const uint32_t port_;
  const NodeId peer_;
  uint64_t bps_;
  Time delay_;
  bool up_ = true;
  bool transmitting_ = false;
  std::unique_ptr<Queue> queue_;
  DeviceStats stats_;
};

}  // namespace unison

#endif  // UNISON_SRC_NET_LINK_H_
