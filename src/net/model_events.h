// Named event functors for every event type the network model schedules.
//
// The model layers used to schedule ad-hoc lambdas. A snapshot cannot look
// inside a type-erased closure, so each scheduling site now constructs one
// of the named functor types below instead. EventFn::TryAs<F>() identifies
// them inside a captured FEL by ops-table pointer identity — zero cost on
// the dispatch path — and session.cc serializes their fields and rebinds
// them to the forked Network on restore. Behaviour is unchanged: each
// operator() body is exactly the lambda body it replaced, and the functors
// carry the same captures, so event keys and processing order are identical
// to the pre-refactor code.
#ifndef UNISON_SRC_NET_MODEL_EVENTS_H_
#define UNISON_SRC_NET_MODEL_EVENTS_H_

#include <cstdint>

#include "src/core/event.h"
#include "src/net/packet.h"
#include "src/net/tcp.h"

namespace unison {

class Network;

// Serialization tags; stable identifiers in the USNP snapshot format (see
// session.cc). Tag 0 is reserved so a zeroed byte never aliases a real type.
enum class ModelEventTag : uint8_t {
  kPacketDeliver = 1,
  kTransmitComplete = 2,
  kTcpRto = 3,
  kFlowStart = 4,
  kFlowArrival = 5,
  kLinkUpDown = 6,
};

// Packet arrival at the receiving device's node (link.cc StartTransmit).
struct PacketDeliverEvent {
  Network* net;
  NodeId peer;
  Packet pkt;
  void operator()();
};

// Serialization finished on a device: start on the next queued packet.
struct TransmitCompleteEvent {
  Network* net;
  NodeId node;
  uint32_t port;
  void operator()();
};

// TCP retransmission-timeout firing; resolves the sender by flow id so a
// restored event finds the fork's own endpoint object.
struct TcpRtoEvent {
  Network* net;
  NodeId node;
  uint32_t flow_id;
  void operator()();
};

// Materialized flow start (app.cc InstallFlow): instantiates the TCP sender
// on the source node's LP. The flow id was assigned at registration time.
struct FlowStartEvent {
  Network* net;
  uint32_t flow_id;
  NodeId src;
  NodeId dst;
  uint64_t bytes;
  TcpConfig cfg;
  void operator()();
};

// Streaming arrival (flow_source.cc): installs the pending flow and draws
// the next. Indexed through the network's FlowSourceSet registry rather
// than a raw FlowSource pointer so the event survives a fork.
struct FlowArrivalEvent {
  Network* net;
  uint32_t set_index;
  uint32_t source_index;
  void operator()();
};

// Administrative link state change, scheduled by Network::FailLink as a
// global event (topology changes must run on the public LP).
struct LinkUpDownEvent {
  Network* net;
  uint32_t link;
  bool up;
  void operator()();
};

}  // namespace unison

#endif  // UNISON_SRC_NET_MODEL_EVENTS_H_
