// Egress queue disciplines: DropTail FIFO, RED (with ECN marking), and the
// DCTCP step-marking threshold queue (RED with min == max == K and mark-only
// behaviour). Queues are owned by a device and touched only by the owning
// node's LP, so they keep plain counters.
#ifndef UNISON_SRC_NET_QUEUE_H_
#define UNISON_SRC_NET_QUEUE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/core/time.h"
#include "src/net/packet.h"

namespace unison {

struct QueueStats {
  uint64_t enqueued = 0;
  uint64_t dropped = 0;
  uint64_t ecn_marked = 0;
  uint64_t max_bytes = 0;
  // Accumulated queueing delay (time between enqueue and dequeue).
  Time total_delay;
  uint64_t dequeued = 0;
};

// One queued packet with its enqueue timestamp, in FIFO order; the snapshot
// representation of a queue's contents.
struct QueueEntry {
  Packet pkt;
  Time enqueue_time;
};

class Queue {
 public:
  virtual ~Queue() = default;

  // Attempts to accept `pkt` at time `now`; may set its CE mark. Returns
  // false when the packet is dropped.
  virtual bool Enqueue(Packet pkt, Time now) = 0;

  // Pops the head packet; returns false when empty.
  virtual bool Dequeue(Packet* out, Time now) = 0;

  virtual uint32_t bytes() const = 0;
  virtual uint32_t packets() const = 0;
  bool Empty() const { return packets() == 0; }

  const QueueStats& stats() const { return stats_; }

  // --- Snapshot support ---

  // Copies the occupancy, head first.
  virtual std::vector<QueueEntry> Entries() const = 0;
  // Replaces the occupancy (byte counters are recomputed from the entries).
  // Bypasses admission — these packets were already accepted by the captured
  // queue; stats are restored separately via set_stats.
  virtual void RestoreEntries(std::vector<QueueEntry> entries) = 0;
  void set_stats(const QueueStats& stats) { stats_ = stats; }

 protected:
  QueueStats stats_;
};

class DropTailQueue : public Queue {
 public:
  explicit DropTailQueue(uint32_t capacity_bytes) : capacity_(capacity_bytes) {}

  bool Enqueue(Packet pkt, Time now) override;
  bool Dequeue(Packet* out, Time now) override;
  uint32_t bytes() const override { return bytes_; }
  uint32_t packets() const override { return static_cast<uint32_t>(q_.size()); }

  std::vector<QueueEntry> Entries() const override;
  void RestoreEntries(std::vector<QueueEntry> entries) override;

 private:
  struct Entry {
    Packet pkt;
    Time enqueue_time;
  };
  const uint32_t capacity_;
  uint32_t bytes_ = 0;
  std::deque<Entry> q_;
};

struct RedConfig {
  uint32_t capacity_bytes = 400 * 1500;
  // Thresholds in bytes of *average* queue length.
  double min_th = 50 * 1500;
  double max_th = 150 * 1500;
  double max_p = 0.1;     // Marking probability at max_th.
  double weight = 0.002;  // EWMA weight for the average queue estimate.
  bool ecn = true;        // Mark instead of drop for ECN-capable packets.
  bool hard_mark = false;  // DCTCP step marking: mark all above min_th.
  uint64_t seed = 1;       // Stream for the marking coin flips.
};

class RedQueue : public Queue {
 public:
  explicit RedQueue(const RedConfig& config);

  bool Enqueue(Packet pkt, Time now) override;
  bool Dequeue(Packet* out, Time now) override;
  uint32_t bytes() const override { return bytes_; }
  uint32_t packets() const override { return static_cast<uint32_t>(q_.size()); }

  double average_bytes() const { return avg_; }

  // DCTCP threshold queue: step-mark every packet once the instantaneous
  // queue exceeds K bytes.
  static std::unique_ptr<RedQueue> MakeDctcp(uint32_t k_bytes, uint32_t capacity_bytes);

  std::vector<QueueEntry> Entries() const override;
  void RestoreEntries(std::vector<QueueEntry> entries) override;

  // RED marking state beyond the FIFO contents: the EWMA average, the
  // gentle-spacing counter, and the marking RNG. All three feed future
  // mark decisions, so forks must resume them exactly.
  struct MarkerState {
    double avg = 0;
    uint64_t count_since_mark = 0;
    uint64_t rng_state = 0;
  };
  MarkerState marker_state() const {
    return MarkerState{avg_, count_since_mark_, rng_state_};
  }
  void set_marker_state(const MarkerState& m) {
    avg_ = m.avg;
    count_since_mark_ = m.count_since_mark;
    rng_state_ = m.rng_state;
  }

 private:
  struct Entry {
    Packet pkt;
    Time enqueue_time;
  };
  RedConfig cfg_;
  uint32_t bytes_ = 0;
  double avg_ = 0;
  uint64_t count_since_mark_ = 0;
  uint64_t rng_state_;
  std::deque<Entry> q_;

  double NextUniform();
};

}  // namespace unison

#endif  // UNISON_SRC_NET_QUEUE_H_
