#include "src/net/routing.h"

#include <algorithm>
#include <queue>

#include "src/net/network.h"
#include "src/net/node.h"

namespace unison {

void GlobalRouting::Compute(Network& net) {
  n_ = net.num_nodes();
  table_.assign(static_cast<size_t>(n_) * n_, Entry{});

  // Adjacency from the up devices: (neighbor, local port).
  std::vector<std::vector<std::pair<NodeId, uint8_t>>> adj(n_);
  for (NodeId u = 0; u < n_; ++u) {
    Node& node = net.node(u);
    for (uint32_t p = 0; p < node.num_ports(); ++p) {
      const Device* dev = node.device(p);
      if (dev->up()) {
        adj[u].emplace_back(dev->peer(), static_cast<uint8_t>(p));
      }
    }
  }

  std::vector<uint32_t> dist(n_);
  constexpr uint32_t kUnreached = 0xffffffffu;
  for (NodeId dst = 0; dst < n_; ++dst) {
    // BFS from the destination; links are symmetric (full duplex).
    std::fill(dist.begin(), dist.end(), kUnreached);
    dist[dst] = 0;
    std::queue<NodeId> q;
    q.push(dst);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (const auto& [v, port] : adj[u]) {
        (void)port;
        if (dist[v] == kUnreached) {
          dist[v] = dist[u] + 1;
          q.push(v);
        }
      }
    }
    // Every up port leading one hop closer to dst is an ECMP candidate.
    for (NodeId u = 0; u < n_; ++u) {
      if (u == dst || dist[u] == kUnreached) {
        continue;
      }
      Entry& e = table_[static_cast<size_t>(u) * n_ + dst];
      for (const auto& [v, port] : adj[u]) {
        if (dist[v] + 1 == dist[u] && e.count < kMaxEcmp) {
          e.ports[e.count++] = port;
        }
      }
    }
  }
}

int GlobalRouting::Port(NodeId node, NodeId dst, uint32_t flow_hash) const {
  const Entry& e = table_[static_cast<size_t>(node) * n_ + dst];
  if (e.count == 0) {
    return -1;
  }
  return e.ports[flow_hash % e.count];
}

uint32_t GlobalRouting::EcmpWidth(NodeId node, NodeId dst) const {
  return table_[static_cast<size_t>(node) * n_ + dst].count;
}

// --- Distance vector ---

void DistanceVectorRouting::Install() {
  const uint32_t n = net_->num_nodes();
  for (NodeId id = 0; id < n; ++id) {
    auto dv = std::make_unique<DvState>();
    dv->dist.assign(n, DvState::kInfinity);
    dv->port.assign(n, -1);
    dv->dist[id] = 0;
    net_->node(id).set_dv(std::move(dv));
  }
  // Stagger the periodic advertisements so the control plane does not fire
  // in one synchronized burst.
  for (NodeId id = 0; id < n; ++id) {
    const Time jitter = Time::Picoseconds((period_.ps() / std::max(1u, n)) * id);
    net_->sim().ScheduleOnNode(id, jitter, [this, id] { Periodic(id); });
  }
}

void DistanceVectorRouting::Periodic(NodeId id) {
  Node& node = net_->node(id);
  SendUpdates(&node);
  net_->sim().Schedule(period_, [this, id] { Periodic(id); });
}

void DistanceVectorRouting::TriggerUpdate(Node* node) {
  if (node->dv()->triggered_pending) {
    return;
  }
  node->dv()->triggered_pending = true;
  // Small delay coalesces bursts of changes into one advertisement.
  // ScheduleOnNode rather than Schedule: link-change notifications arrive
  // from a global event, whose LP must not run node work.
  const NodeId id = node->id();
  net_->sim().ScheduleOnNode(id, Time::Microseconds(100), [this, id] {
    Node& n = net_->node(id);
    n.dv()->triggered_pending = false;
    SendUpdates(&n);
  });
}

void DistanceVectorRouting::SendUpdates(Node* node) {
  DvState* const dv = node->dv();
  const uint32_t n = net_->num_nodes();
  for (uint32_t p = 0; p < node->num_ports(); ++p) {
    Device* const dev = node->device(p);
    if (!dev->up()) {
      continue;
    }
    // Split horizon with poisoned reverse: routes learned through this port
    // are advertised back as unreachable.
    auto adv = std::make_shared<Advertisement>();
    adv->origin = node->id();
    adv->dist = dv->dist;
    for (NodeId d = 0; d < n; ++d) {
      if (dv->port[d] == static_cast<int32_t>(p)) {
        adv->dist[d] = DvState::kInfinity;
      }
    }
    Packet pkt;
    pkt.kind = PacketKind::kControl;
    pkt.src = node->id();
    pkt.dst = dev->peer();
    pkt.size_bytes = 8 + 4 * n;  // Header + one 32-bit metric per node.
    pkt.control_data = adv;
    dev->Send(std::move(pkt));
    ++dv->updates_sent;
  }
}

void DistanceVectorRouting::OnControl(Node* node, const Packet& pkt) {
  const auto* adv = static_cast<const Advertisement*>(pkt.control_data.get());
  DvState* const dv = node->dv();
  const int port = node->FindPortTo(adv->origin);
  if (port < 0) {
    return;  // Link went down while the update was in flight.
  }
  bool changed = false;
  const uint32_t n = static_cast<uint32_t>(adv->dist.size());
  for (NodeId d = 0; d < n; ++d) {
    if (d == node->id()) {
      continue;
    }
    const uint32_t cand =
        std::min<uint32_t>(adv->dist[d] + 1, DvState::kInfinity);
    if (dv->port[d] == port) {
      // Current route goes through the sender: accept its metric, better or
      // worse (this is what lets bad news propagate).
      if (dv->dist[d] != cand) {
        dv->dist[d] = cand;
        if (cand == DvState::kInfinity) {
          dv->port[d] = -1;
        }
        changed = true;
      }
    } else if (cand < dv->dist[d]) {
      dv->dist[d] = cand;
      dv->port[d] = port;
      changed = true;
    }
  }
  if (changed) {
    TriggerUpdate(node);
  }
}

void DistanceVectorRouting::OnLinkChange(NodeId a, NodeId b) {
  for (const auto& [self, peer] : {std::pair{a, b}, std::pair{b, a}}) {
    Node& node = net_->node(self);
    DvState* const dv = node.dv();
    if (dv == nullptr) {
      continue;
    }
    const int port_up = node.FindPortTo(peer);
    if (port_up >= 0) {
      // Link came (back) up: the periodic advertisement will re-learn routes;
      // nudge convergence with a triggered update.
      TriggerUpdate(&node);
      continue;
    }
    // Link down: poison every route through any port to the peer.
    bool changed = false;
    for (uint32_t p = 0; p < node.num_ports(); ++p) {
      if (node.device(p)->peer() != peer) {
        continue;
      }
      for (NodeId d = 0; d < dv->dist.size(); ++d) {
        if (dv->port[d] == static_cast<int32_t>(p)) {
          dv->dist[d] = DvState::kInfinity;
          dv->port[d] = -1;
          changed = true;
        }
      }
    }
    if (changed) {
      TriggerUpdate(&node);
    }
  }
}

uint64_t DistanceVectorRouting::total_updates() const {
  uint64_t sum = 0;
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    const DvState* dv = net_->node(id).dv();
    if (dv != nullptr) {
      sum += dv->updates_sent;
    }
  }
  return sum;
}

}  // namespace unison
