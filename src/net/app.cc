#include "src/net/app.h"

#include <memory>

#include "src/net/model_events.h"
#include "src/net/network.h"
#include "src/net/node.h"

namespace unison {

uint32_t InstallFlow(Network& net, const FlowSpec& spec) {
  net.Finalize();
  const uint32_t flow_id = net.flow_monitor().Register(spec.src, spec.dst, spec.bytes, spec.start);
  const TcpConfig cfg = spec.tcp.value_or(net.config().tcp);
  net.sim().ScheduleOnNode(
      spec.src, spec.start,
      FlowStartEvent{&net, flow_id, spec.src, spec.dst, spec.bytes, cfg});
  return flow_id;
}

}  // namespace unison
