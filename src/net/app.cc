#include "src/net/app.h"

#include <memory>

#include "src/net/network.h"
#include "src/net/node.h"

namespace unison {

uint32_t InstallFlow(Network& net, const FlowSpec& spec) {
  net.Finalize();
  const uint32_t flow_id = net.flow_monitor().Register(spec.src, spec.dst, spec.bytes, spec.start);
  const TcpConfig cfg = spec.tcp.value_or(net.config().tcp);
  Network* const netp = &net;
  const NodeId src = spec.src;
  const NodeId dst = spec.dst;
  const uint64_t bytes = spec.bytes;
  net.sim().ScheduleOnNode(src, spec.start, [netp, flow_id, src, dst, bytes, cfg] {
    Node& node = netp->node(src);
    TcpSender* sender = node.AddSender(
        flow_id, std::make_unique<TcpSender>(netp, &node, flow_id, dst, bytes, cfg));
    sender->Start();
  });
  return flow_id;
}

}  // namespace unison
