// Packets. Modeled as small value types copied into event closures: at the
// simulation's packet rates, value semantics are cheaper than shared-pointer
// reference counting and are trivially thread-safe across LPs — the design
// the paper's lock-free workflow needs (ns-3 required atomic refcounts and
// disabled buffer recycling to get the same safety, §5.1).
#ifndef UNISON_SRC_NET_PACKET_H_
#define UNISON_SRC_NET_PACKET_H_

#include <cstdint>
#include <memory>

#include "src/core/event.h"
#include "src/core/time.h"

namespace unison {

// Wire framing constants. kMss is the TCP payload per full segment; a full
// data segment occupies kMss + kHeaderBytes on the wire.
inline constexpr uint32_t kMss = 1400;
inline constexpr uint32_t kHeaderBytes = 60;  // Eth + IPv4 + TCP + framing.
inline constexpr uint32_t kAckBytes = kHeaderBytes;

enum class PacketKind : uint8_t {
  kTcpData,
  kTcpAck,
  kUdp,      // Datagram traffic (On-Off application).
  kControl,  // Routing-protocol traffic (distance vector updates).
};

struct Packet {
  PacketKind kind = PacketKind::kTcpData;
  uint32_t flow_id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t size_bytes = 0;  // Total on-wire size.
  uint8_t ttl = 64;

  // ECN (RFC 3168 / DCTCP): capable transport, congestion-experienced mark.
  bool ecn_capable = false;
  bool ecn_ce = false;

  // TCP data fields.
  uint64_t seq = 0;       // Offset of the first payload byte.
  uint32_t payload = 0;   // Payload bytes carried.
  bool fin = false;       // Last segment of the flow.

  // TCP ack fields.
  uint64_t ack = 0;   // Cumulative ack: next byte expected.
  bool ece = false;   // Echo of a CE mark (per-packet echo, DCTCP style).

  // ECMP path selector. Derived from the flow's stable identity (src, dst,
  // bytes, start) rather than the monitor-assigned flow id: flow ids encode
  // the registering shard and registration order, which legitimately differ
  // between streaming and materialized installation and between thread
  // counts, while the path a flow takes must not. Slots into pre-existing
  // padding, so sizeof(Packet) is unchanged.
  uint32_t path_tag = 0;

  // Timestamp option: sender stamp, echoed by the receiver for RTT sampling.
  Time ts;
  Time ts_echo;

  // Control payload (type depends on the protocol; kind tells the handler).
  uint16_t control_kind = 0;
  std::shared_ptr<const void> control_data;
};

// ECMP path tag from a flow's stable identity (FNV-1a). Shared between the
// packet-level TCP sender and the fluid flow-level model so both pick the
// same paths for the same flows.
inline uint32_t EcmpPathTag(NodeId src, NodeId dst, uint64_t bytes, int64_t start_ps) {
  uint64_t x = 0xcbf29ce484222325ULL;
  for (uint64_t v : {static_cast<uint64_t>(src), static_cast<uint64_t>(dst),
                     bytes, static_cast<uint64_t>(start_ps)}) {
    x ^= v;
    x *= 0x100000001b3ULL;
  }
  x ^= x >> 32;
  return static_cast<uint32_t>(x);
}

}  // namespace unison

#endif  // UNISON_SRC_NET_PACKET_H_
