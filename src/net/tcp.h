// TCP endpoints: NewReno congestion control with optional ECN and DCTCP.
//
// The implementation is byte-sequence based and stateful — slow start,
// congestion avoidance, fast retransmit/recovery with NewReno partial acks,
// RTO with exponential backoff, RTT estimation from echoed timestamps, and
// the DCTCP fraction-of-marked-bytes window reduction. This is the stateful
// protocol behaviour the data-driven surrogates cannot model (§2.2), which
// is why Table 2 compares against it.
//
// Endpoints live inside their node and are touched only by that node's LP.
#ifndef UNISON_SRC_NET_TCP_H_
#define UNISON_SRC_NET_TCP_H_

#include <cstdint>
#include <map>

#include "src/core/time.h"
#include "src/net/packet.h"

namespace unison {

class Network;
class Node;

struct TcpConfig {
  uint32_t mss = kMss;
  uint32_t init_cwnd_segments = 10;
  Time min_rto = Time::Milliseconds(10);
  Time initial_rto = Time::Milliseconds(10);
  bool ecn = false;    // ECN-capable; classic halve-once-per-window reaction.
  bool dctcp = false;  // DCTCP alpha reaction (implies ecn behaviourally).
  double dctcp_g = 1.0 / 16.0;
};

class TcpSender {
 public:
  TcpSender(Network* net, Node* node, uint32_t flow_id, NodeId dst, uint64_t bytes,
            const TcpConfig& config);

  // Sends the initial window. Call once, from the source node's LP.
  void Start();

  // Handles a cumulative ACK (possibly with an ECN echo).
  void OnAck(const Packet& ack);

  bool completed() const { return completed_; }
  uint64_t cwnd() const { return cwnd_; }
  uint64_t retransmits() const { return retransmits_; }
  double dctcp_alpha() const { return alpha_; }

  // Construction parameters, re-read when a fork reconstructs the endpoint.
  NodeId dst() const { return dst_; }
  uint64_t size() const { return size_; }
  const TcpConfig& config() const { return cfg_; }

  // Every mutable field of the connection, for snapshot/restore. Restore
  // overwrites the constructor-derived path_tag_ too: the constructor keys
  // it off Now(), which is zero when a fork rebuilds endpoints at setup
  // time, not the flow's original start.
  struct Image {
    uint32_t path_tag = 0;
    uint8_t state = 0;
    uint64_t snd_una = 0;
    uint64_t snd_nxt = 0;
    uint64_t high_tx = 0;
    uint64_t cwnd = 0;
    uint64_t ssthresh = 0;
    uint64_t recover = 0;
    uint32_t dup_acks = 0;
    bool completed = false;
    uint64_t retransmits = 0;
    int64_t srtt_ps = 0;
    int64_t rttvar_ps = 0;
    int64_t rto_ps = 0;
    bool rtt_valid = false;
    bool rto_pending = false;
    int64_t rto_deadline_ps = 0;
    uint32_t rto_backoff = 0;
    uint64_t cwr_end = 0;
    double alpha = 0;
    uint64_t dctcp_bytes_acked = 0;
    uint64_t dctcp_bytes_marked = 0;
    uint64_t dctcp_window_end = 0;
  };
  Image Save() const;
  void Restore(const Image& image);

 private:
  friend struct TcpRtoEvent;  // Invokes OnRto() when the timer fires.

  enum class State { kSlowStart, kCongestionAvoidance, kFastRecovery };

  uint64_t InFlight() const { return snd_nxt_ - snd_una_; }
  void TrySend();
  void SendSegment(uint64_t seq, uint32_t len, bool retransmission);
  void UpdateRtt(Time sample);
  void ArmRto();
  void OnRto(uint64_t generation);
  void OnEcnEcho(uint64_t newly_acked, bool ece);
  void Complete();

  Network* const net_;
  Node* const node_;
  const uint32_t flow_id_;
  const NodeId dst_;
  const uint64_t size_;
  const TcpConfig cfg_;
  uint32_t path_tag_ = 0;  // ECMP selector from stable flow identity.

  State state_ = State::kSlowStart;
  uint64_t snd_una_ = 0;  // Lowest unacknowledged byte.
  uint64_t snd_nxt_ = 0;  // Next byte to send (rewound by RTO recovery).
  uint64_t high_tx_ = 0;  // Transmit high-water mark (end of highest send).
  uint64_t cwnd_ = 0;
  uint64_t ssthresh_ = UINT64_MAX;
  uint64_t recover_ = 0;  // NewReno recovery point.
  uint32_t dup_acks_ = 0;
  bool completed_ = false;
  uint64_t retransmits_ = 0;

  // RTT estimation (RFC 6298).
  Time srtt_;
  Time rttvar_;
  Time rto_;
  bool rtt_valid_ = false;
  bool rto_pending_ = false;
  Time rto_deadline_;
  uint32_t rto_backoff_ = 0;

  // Classic ECN: one reduction per window.
  uint64_t cwr_end_ = 0;

  // DCTCP state.
  double alpha_ = 0.0;
  uint64_t dctcp_bytes_acked_ = 0;
  uint64_t dctcp_bytes_marked_ = 0;
  uint64_t dctcp_window_end_ = 0;
};

class TcpReceiver {
 public:
  TcpReceiver(Network* net, Node* node, uint32_t flow_id, NodeId src);

  // Handles a data segment: advances the cumulative ack point, stores
  // out-of-order data, emits an immediate ACK echoing CE marks and the
  // sender timestamp.
  void OnData(const Packet& pkt);

  uint64_t rcv_nxt() const { return rcv_nxt_; }
  NodeId src() const { return src_; }

  struct Image {
    uint64_t rcv_nxt = 0;
    std::map<uint64_t, uint64_t> out_of_order;
  };
  Image Save() const { return Image{rcv_nxt_, out_of_order_}; }
  void Restore(const Image& image) {
    rcv_nxt_ = image.rcv_nxt;
    out_of_order_ = image.out_of_order;
  }

 private:
  Network* const net_;
  Node* const node_;
  const uint32_t flow_id_;
  const NodeId src_;
  uint64_t rcv_nxt_ = 0;
  std::map<uint64_t, uint64_t> out_of_order_;  // start -> end, disjoint.
};

}  // namespace unison

#endif  // UNISON_SRC_NET_TCP_H_
