// The public entry point of the library.
//
// A Network owns the topology (nodes, links, queues), the kernel, routing,
// traffic bookkeeping and statistics. The user builds a topology, installs
// flows, and calls Run — which kernel executes the model, and with how many
// threads, is purely a SimConfig choice. No model code changes between the
// sequential kernel and any parallel kernel: that is the paper's
// user-transparency property.
//
//   unison::SimConfig cfg;
//   cfg.kernel.type = unison::KernelType::kUnison;
//   cfg.kernel.threads = 8;
//   unison::Network net(cfg);
//   auto ft = unison::BuildFatTree(net, /*k=*/4, ...);
//   unison::InstallFlow(net, {.src = ft.hosts[0], .dst = ft.hosts[8],
//                             .bytes = 1 << 20, .start = unison::Time::Zero()});
//   net.Run(unison::Time::Seconds(0.1));
//   auto summary = net.flow_monitor().Summarize();
#ifndef UNISON_SRC_NET_NETWORK_H_
#define UNISON_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/control/controller.h"
#include "src/control/tunables.h"
#include "src/core/rng.h"
#include "src/core/time.h"
#include "src/kernel/kernel.h"
#include "src/kernel/simulator.h"
#include "src/net/node.h"
#include "src/net/routing.h"
#include "src/net/tcp.h"
#include "src/partition/graph.h"
#include "src/stats/flow_monitor.h"
#include "src/stats/profiler.h"
#include "src/stats/trace.h"

namespace unison {

class ExecutorPool;
class FlowSourceSet;

enum class PartitionMode {
  kAuto,    // Fine-grained partition (Algorithm 1). Unison's default.
  kManual,  // User-provided node→LP map (the baselines' required workflow).
  kSingle,  // Everything in one LP (forced for the sequential kernel).
};

struct QueueConfig {
  enum class Kind { kDropTail, kRed, kDctcp } kind = Kind::kDropTail;
  uint32_t capacity_bytes = 1000 * 1500;
  // RED parameters (bytes); also reused as the DCTCP K threshold (min_th).
  double red_min_th = 50 * 1500;
  double red_max_th = 150 * 1500;
  double red_max_p = 0.1;
  double red_weight = 0.002;
};

// Live tuning plane switch. kOff freezes every knob at its KernelConfig
// value (the historical behaviour); kAuto attaches a Controller that revises
// the live tunables (re-sort cadence, active parties, placement, window
// horizon) between Run() windows from the trace segments. Results are
// bit-identical either way — the controller only ever acts at window
// boundaries, and every knob it touches is results-neutral.
enum class TuningMode : uint8_t {
  kOff = 0,
  kAuto = 1,
};

// Speculative window execution (DESIGN.md §3k). kOff runs every window at the
// conservative Eq. 2 bound. kAuto captures a cheap in-memory checkpoint at
// each window boundary and lets rounds extend up to the live spec-horizon
// tunable past the bound; a causality miss rolls the session back and re-runs
// the window conservatively. Results are bit-identical either way — that is
// the feature's contract, enforced by the transparency matrix in
// tests/session_test.cc. Opt-in kernels: barrier, unison, hybrid (the
// sequential kernel has nothing to speculate past; null-message's channel
// protocol pins its bounds).
enum class SpeculationMode : uint8_t {
  kOff = 0,
  kAuto = 1,
};

struct SimConfig {
  KernelConfig kernel;
  PartitionMode partition = PartitionMode::kAuto;
  uint64_t seed = 1;
  bool profile = false;
  bool profile_per_round = false;
  bool profile_per_lp = false;
  // Structured run trace (src/stats/trace.h). Implies profile + per-round so
  // the exported trace carries the P/S matrices.
  bool trace = false;
  bool trace_claim_order = true;  // Record claim orders on re-sort rounds.
  // Closed-loop tuning (src/control/). kAuto implies the trace machinery
  // (profile + per-round + segment archiving) since that is the controller's
  // input — but not claim-order recording, whose O(#LP) rows are only kept
  // when the user asked for a trace themselves.
  TuningMode tuning = TuningMode::kOff;
  ControllerConfig tuning_config;
  // Speculative window execution; kAuto seeds the live spec-horizon tunable
  // from tuning_config.spec_horizon_initial_ps and installs the checkpoint
  // hooks at Finalize. Requires kernel.deterministic (the default).
  SpeculationMode speculation = SpeculationMode::kOff;
  // Automatic resume checkpoints: every `kernel.auto_checkpoint_every`
  // completed windows, Run() saves a full USNP snapshot to this path
  // (overwritten in place). Empty disables. Boundaries where the session is
  // not snapshot-serializable (e.g. a progress ticker pending) are skipped.
  std::string auto_checkpoint_path;
  TcpConfig tcp;
  QueueConfig queue;
};

class Network {
 public:
  explicit Network(SimConfig config);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- Topology construction (before Finalize) ---

  NodeId AddNode();
  void AddNodes(uint32_t count);

  struct LinkInfo {
    NodeId a = 0;
    NodeId b = 0;
    uint32_t port_a = 0;
    uint32_t port_b = 0;
    uint64_t bps = 0;
    Time delay;
    bool up = true;
    // Stateless links (plain point-to-point) may be cut by the partitioner;
    // stateful links (shared-medium segments) never are (§4.2).
    bool stateless = true;
    // The queue discipline this link's devices were built with; recorded so
    // a snapshot can rebuild (or a fork deliberately mutate) the queues.
    QueueConfig queue;
  };

  // Adds a full-duplex link; returns its index. Uses the default QueueConfig
  // unless an override is given.
  uint32_t AddLink(NodeId a, NodeId b, uint64_t bps, Time delay);
  uint32_t AddLink(NodeId a, NodeId b, uint64_t bps, Time delay, const QueueConfig& queue,
                   bool stateless = true);

  void SetManualPartition(uint32_t num_lps, std::vector<LpId> lp_of_node);

  // Enables RIP-like distance-vector routing (otherwise: global ECMP).
  void EnableDistanceVector(Time period);

  // Periodic progress report via a self-rescheduling global event (§4.2's
  // "printing the simulation progress"). The callback runs on the public LP
  // every `interval` of simulated time; the default prints to stderr. Call
  // after Finalize, before Run.
  void EnableProgressReport(Time interval,
                            std::function<void(Time now, uint64_t events)> callback = {});

  // Builds the partition, kernel and routing tables, producing a warm
  // session: executor threads spawn here and stay parked between windows.
  // Implicit in Run; after this point flows may be installed and events
  // scheduled.
  void Finalize();
  bool finalized() const { return kernel_ != nullptr; }

  // Runs one window of the session: events with ts < `stop` execute, then
  // the kernel parks. Call repeatedly with increasing stop times to advance
  // the same simulation in windows — model and event state carries across
  // calls, more flows may be installed in between (see InjectTraffic), and K
  // windowed runs are bit-identical to one monolithic run to the same stop
  // time. The result says whether the window boundary was reached, the
  // workload ran dry, or an early stop fired.
  RunResult Run(Time stop);

  // Simulated time up to which the session has run (last completed window's
  // stop); zero before the first Run. Fatal before Finalize: callers that
  // rebase times against the session clock (InjectTraffic and friends) would
  // silently anchor at t=0 on an unopened session otherwise.
  Time session_time() const {
    if (kernel_ == nullptr) {
      FatalConfigError(
          "Network: session_time() before Finalize(); the session clock "
          "exists only once the session is open — call Finalize() (or Run) "
          "first");
    }
    return kernel_->session_now();
  }

  // Schedules an administrative failure of `link` at absolute session time
  // `t`, as a global event (topology changes run on the public LP). The
  // canonical fork-divergence knob: snapshot a warm session, fork, and fail
  // a different link in each branch. Note the null-message kernel does not
  // support runtime global events; use it with the other kernels.
  void FailLink(uint32_t link, Time t);

  // --- Runtime topology operations (call from global events only) ---

  void SetLinkUp(uint32_t link, bool up);
  void SetLinkDelay(uint32_t link, Time delay);
  // Recomputes ECMP routes and the kernel's lookahead; called automatically
  // by SetLinkUp/SetLinkDelay.
  void OnTopologyChanged();

  // --- Accessors ---

  Node& node(NodeId id) { return *nodes_[id]; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  const std::vector<LinkInfo>& links() const { return links_; }

  Simulator& sim() { return sim_; }
  Kernel& kernel() { return *kernel_; }
  // The session's live-tunable store. Always present (seeded from the
  // KernelConfig at Finalize); written by the controller under kAuto, by
  // Session restore, or by tests driving tuning by hand between windows.
  TunableStore& tunable_store() { return tunable_store_; }
  const TunableStore& tunable_store() const { return tunable_store_; }
  // The attached controller, or nullptr when tuning is kOff.
  Controller* controller() { return controller_.get(); }
  FlowMonitor& flow_monitor() { return flow_monitor_; }
  Profiler& profiler() { return profiler_; }
  RunTrace& run_trace() { return run_trace_; }
  GlobalRouting& routing() { return routing_; }
  DistanceVectorRouting* dv_routing() { return dv_routing_.get(); }
  const SimConfig& config() const { return config_; }
  const TopoGraph& graph() const { return graph_; }
  const Partition& partition() const { return kernel_->partition(); }

  // Independent RNG stream derived from the config seed.
  Rng MakeRng(uint64_t stream) const { return Rng(config_.seed, stream); }

  // Derives a distinct stream id from `base` for each traffic injection into
  // this session: the first injection uses `base` verbatim (so a single
  // injection matches an up-front install on the same stream), later ones
  // jump by a large odd constant. InjectTraffic/InjectFlowSources call this
  // so repeated injections never silently replay the previous batch's draws.
  uint64_t ClaimInjectionStream(uint64_t base) {
    return base + injection_epoch_++ * 0x9e3779b97f4a7c15ULL;
  }

  // The injection counter is session state: snapshots capture it so sibling
  // forks claim the same next stream (identical injections draw identical
  // flows) while the parent's post-snapshot injections stay independent.
  uint64_t injection_epoch() const { return injection_epoch_; }
  void set_injection_epoch(uint64_t epoch) { injection_epoch_ = epoch; }

  // --- Streaming flow-source registry (snapshot support) ---

  // Retains `set` for the network's lifetime and assigns it a dense index;
  // scheduled arrival events reference sources as (set index, source index)
  // so they can be serialized and rebound to a forked network. Called by
  // InstallFlowSources for every set, in installation order — which is why
  // indices line up between a parent and its forks.
  uint32_t RegisterFlowSourceSet(std::shared_ptr<FlowSourceSet> set);
  FlowSourceSet* flow_source_set(uint32_t index);
  uint32_t num_flow_source_sets() const {
    return static_cast<uint32_t>(flow_source_sets_.size());
  }

  // Lends the executor pool of another (live, quiescent) kernel to this
  // network's kernel. Must be called before Finalize; Session::Fork uses it
  // so branch runs reuse the parent's warm workers — zero thread respawns.
  void set_external_pool(ExecutorPool* pool) { pending_external_pool_ = pool; }

  // Retains `obj` for the network's lifetime. For closures scheduled into
  // the kernel that capture raw pointers into long-lived helper objects
  // (progress tickers, streaming flow sources).
  void Keep(std::shared_ptr<void> obj) { keepalive_.push_back(std::move(obj)); }

  std::unique_ptr<Queue> MakeQueue(const QueueConfig& config, uint64_t stream) const;

  // Aggregate queue statistics over every device (paper-style queue-delay
  // reporting for the DCTCP reproduction).
  struct QueueTotals {
    uint64_t dropped = 0;
    uint64_t ecn_marked = 0;
    uint64_t dequeued = 0;
    Time total_delay;
    double mean_delay_us() const {
      return dequeued == 0 ? 0.0 : total_delay.ToMicroseconds() / static_cast<double>(dequeued);
    }
  };
  QueueTotals AggregateQueueStats() const;

 private:
  void BuildGraph();
  // Saves a full USNP resume snapshot to config_.auto_checkpoint_path every
  // auto_checkpoint_every completed windows (skipping non-serializable
  // boundaries). Called by Run() after each window.
  void MaybeAutoCheckpoint();

  SimConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<LinkInfo> links_;
  TopoGraph graph_;
  Partition manual_partition_;
  bool has_manual_partition_ = false;

  std::unique_ptr<Kernel> kernel_;
  TunableStore tunable_store_;
  std::unique_ptr<Controller> controller_;  // Present only under kAuto.
  Simulator sim_;
  FlowMonitor flow_monitor_;
  Profiler profiler_;
  RunTrace run_trace_;
  GlobalRouting routing_;
  std::unique_ptr<DistanceVectorRouting> dv_routing_;
  Time dv_period_;
  bool use_dv_ = false;
  uint64_t injection_epoch_ = 0;
  uint32_t windows_since_checkpoint_ = 0;  // MaybeAutoCheckpoint cadence.
  ExecutorPool* pending_external_pool_ = nullptr;  // Applied at Finalize.
  std::vector<std::shared_ptr<FlowSourceSet>> flow_source_sets_;
  // Closures that must outlive the run (progress tickers etc.).
  std::vector<std::shared_ptr<void>> keepalive_;
};

}  // namespace unison

#endif  // UNISON_SRC_NET_NETWORK_H_
