#include "src/net/queue.h"

#include <algorithm>

namespace unison {

bool DropTailQueue::Enqueue(Packet pkt, Time now) {
  if (bytes_ + pkt.size_bytes > capacity_) {
    ++stats_.dropped;
    return false;
  }
  bytes_ += pkt.size_bytes;
  ++stats_.enqueued;
  stats_.max_bytes = std::max<uint64_t>(stats_.max_bytes, bytes_);
  q_.push_back(Entry{std::move(pkt), now});
  return true;
}

bool DropTailQueue::Dequeue(Packet* out, Time now) {
  if (q_.empty()) {
    return false;
  }
  Entry& e = q_.front();
  bytes_ -= e.pkt.size_bytes;
  stats_.total_delay += now - e.enqueue_time;
  ++stats_.dequeued;
  *out = std::move(e.pkt);
  q_.pop_front();
  return true;
}

std::vector<QueueEntry> DropTailQueue::Entries() const {
  std::vector<QueueEntry> out;
  out.reserve(q_.size());
  for (const Entry& e : q_) {
    out.push_back(QueueEntry{e.pkt, e.enqueue_time});
  }
  return out;
}

void DropTailQueue::RestoreEntries(std::vector<QueueEntry> entries) {
  q_.clear();
  bytes_ = 0;
  for (QueueEntry& e : entries) {
    bytes_ += e.pkt.size_bytes;
    q_.push_back(Entry{std::move(e.pkt), e.enqueue_time});
  }
}

RedQueue::RedQueue(const RedConfig& config) : cfg_(config), rng_state_(config.seed | 1) {}

std::vector<QueueEntry> RedQueue::Entries() const {
  std::vector<QueueEntry> out;
  out.reserve(q_.size());
  for (const Entry& e : q_) {
    out.push_back(QueueEntry{e.pkt, e.enqueue_time});
  }
  return out;
}

void RedQueue::RestoreEntries(std::vector<QueueEntry> entries) {
  q_.clear();
  bytes_ = 0;
  for (QueueEntry& e : entries) {
    bytes_ += e.pkt.size_bytes;
    q_.push_back(Entry{std::move(e.pkt), e.enqueue_time});
  }
}

std::unique_ptr<RedQueue> RedQueue::MakeDctcp(uint32_t k_bytes, uint32_t capacity_bytes) {
  RedConfig cfg;
  cfg.capacity_bytes = capacity_bytes;
  cfg.min_th = k_bytes;
  cfg.max_th = k_bytes;
  cfg.max_p = 1.0;
  cfg.weight = 1.0;  // Instantaneous queue, per the DCTCP marking rule.
  cfg.ecn = true;
  cfg.hard_mark = true;
  return std::make_unique<RedQueue>(cfg);
}

double RedQueue::NextUniform() {
  // SplitMix64 step; queues need only light-weight marking noise.
  uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool RedQueue::Enqueue(Packet pkt, Time now) {
  if (bytes_ + pkt.size_bytes > cfg_.capacity_bytes) {
    ++stats_.dropped;
    return false;
  }
  // EWMA average queue estimate (computed on the pre-enqueue occupancy).
  avg_ = (1.0 - cfg_.weight) * avg_ + cfg_.weight * bytes_;

  bool mark = false;
  if (cfg_.hard_mark) {
    mark = bytes_ + pkt.size_bytes > cfg_.min_th;
  } else if (avg_ >= cfg_.max_th) {
    mark = true;
  } else if (avg_ > cfg_.min_th) {
    const double p = cfg_.max_p * (avg_ - cfg_.min_th) / (cfg_.max_th - cfg_.min_th);
    // Gentle spacing: probability grows with packets since the last mark.
    const double pa = std::min(1.0, p / std::max(1e-9, 1.0 - count_since_mark_ * p));
    mark = NextUniform() < pa;
  }

  if (mark) {
    count_since_mark_ = 0;
    if (cfg_.ecn && pkt.ecn_capable) {
      pkt.ecn_ce = true;
      ++stats_.ecn_marked;
    } else {
      ++stats_.dropped;
      return false;  // Early drop for non-ECN traffic.
    }
  } else {
    ++count_since_mark_;
  }

  bytes_ += pkt.size_bytes;
  ++stats_.enqueued;
  stats_.max_bytes = std::max<uint64_t>(stats_.max_bytes, bytes_);
  q_.push_back(Entry{std::move(pkt), now});
  return true;
}

bool RedQueue::Dequeue(Packet* out, Time now) {
  if (q_.empty()) {
    return false;
  }
  Entry& e = q_.front();
  bytes_ -= e.pkt.size_bytes;
  stats_.total_delay += now - e.enqueue_time;
  ++stats_.dequeued;
  *out = std::move(e.pkt);
  q_.pop_front();
  return true;
}

}  // namespace unison
