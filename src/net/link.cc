#include "src/net/link.h"

#include <utility>

#include "src/net/model_events.h"
#include "src/net/network.h"
#include "src/net/node.h"

namespace unison {

void Device::Send(Packet pkt) {
  if (!up_) {
    ++stats_.dropped_down;
    return;
  }
  if (transmitting_) {
    queue_->Enqueue(std::move(pkt), net_->sim().Now());
    return;
  }
  StartTransmit(std::move(pkt));
}

void Device::StartTransmit(Packet pkt) {
  transmitting_ = true;
  ++stats_.tx_packets;
  stats_.tx_bytes += pkt.size_bytes;
  const Time serialization = SerializationDelay(pkt.size_bytes, bps_);

  // Arrival at the peer after serialization plus propagation. The peer may
  // live in another LP; the facade routes through a mailbox then. The total
  // delay is >= the link's propagation delay >= the partition lookahead, so
  // the event always lands beyond the receiver's current window.
  PacketDeliverEvent deliver{net_, peer_, std::move(pkt)};
  // The per-packet functor is the hot path the event inline buffer is sized
  // for; it must never take the heap-allocation fallback.
  static_assert(EventFn::FitsInline<PacketDeliverEvent>(),
                "packet delivery event must fit the event inline buffer");
  net_->sim().ScheduleOnNode(peer_, serialization + delay_, std::move(deliver));

  // Local completion: start on the next queued packet.
  net_->sim().Schedule(serialization, TransmitCompleteEvent{net_, self_, port_});
}

void Device::TransmitComplete() {
  transmitting_ = false;
  Packet next;
  if (queue_->Dequeue(&next, net_->sim().Now())) {
    StartTransmit(std::move(next));
  }
}

}  // namespace unison
