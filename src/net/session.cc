#include "src/net/session.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/kernel/kernel.h"
#include "src/net/link.h"
#include "src/net/model_events.h"
#include "src/net/node.h"
#include "src/net/queue.h"
#include "src/net/tcp.h"
#include "src/stats/flow_monitor.h"
#include "src/traffic/cdf.h"
#include "src/traffic/flow_source.h"

namespace unison {
namespace {

// USNP v4: little-endian, field-by-field, no alignment padding. The version
// gates the whole buffer — any layout change bumps it; there is no partial
// compatibility. v2 added the live-tuning plane: TuningMode + ControllerConfig
// in the SimConfig block, and the tunable epoch + values next to the session
// counters, so a fork resumes with its parent's learned settings. v3 adds the
// realized LP-ownership map (partition-map epoch, executor domain, owner
// array) after the tunables block, so a fork resumes with the parent's
// migrated placement instead of the setup default. v4 adds the speculation
// plane: SpeculationMode + auto-checkpoint settings + the rebalance EWMA and
// spec-horizon controller knobs in the SimConfig block, and the live
// spec-horizon tunable in the tunables block.
constexpr uint8_t kMagic[4] = {'U', 'S', 'N', 'P'};
constexpr uint32_t kVersion = 4;

[[noreturn]] void SnapshotFatal(const std::string& message) {
  FatalConfigError("Session: " + message);
}

class Writer {
 public:
  Writer() = default;
  // Pooled-buffer variant: adopts `reuse`'s allocation (cleared, capacity
  // kept) so a per-window capture into a recycled buffer never reallocates
  // once the pool has warmed up.
  explicit Writer(std::vector<uint8_t> reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void U8(uint8_t v) { buf_.push_back(v); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U16(uint16_t v) { Raw(&v, sizeof v); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I64(int64_t v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  void TimeVal(Time t) { I64(t.ps()); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), bytes, bytes + n);
  }
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  uint8_t U8() {
    Need(1);
    return buf_[pos_++];
  }
  bool Bool() { return U8() != 0; }
  uint16_t U16() { return Get<uint16_t>(); }
  uint32_t U32() { return Get<uint32_t>(); }
  uint64_t U64() { return Get<uint64_t>(); }
  int64_t I64() { return Get<int64_t>(); }
  double F64() { return Get<double>(); }
  Time TimeVal() { return Time::Picoseconds(I64()); }
  std::string Str() {
    const uint32_t n = U32();
    Need(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  size_t remaining() const { return buf_.size() - pos_; }

 private:
  template <typename T>
  T Get() {
    Need(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void Need(size_t n) {
    if (buf_.size() - pos_ < n) {
      SnapshotFatal("truncated snapshot buffer (corrupt file or version skew)");
    }
  }
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

// --- Config sections ---

void PutQueueConfig(Writer& w, const QueueConfig& q) {
  w.U8(static_cast<uint8_t>(q.kind));
  w.U32(q.capacity_bytes);
  w.F64(q.red_min_th);
  w.F64(q.red_max_th);
  w.F64(q.red_max_p);
  w.F64(q.red_weight);
}

QueueConfig GetQueueConfig(Reader& r) {
  QueueConfig q;
  q.kind = static_cast<QueueConfig::Kind>(r.U8());
  q.capacity_bytes = r.U32();
  q.red_min_th = r.F64();
  q.red_max_th = r.F64();
  q.red_max_p = r.F64();
  q.red_weight = r.F64();
  return q;
}

void PutTcpConfig(Writer& w, const TcpConfig& t) {
  w.U32(t.mss);
  w.U32(t.init_cwnd_segments);
  w.TimeVal(t.min_rto);
  w.TimeVal(t.initial_rto);
  w.Bool(t.ecn);
  w.Bool(t.dctcp);
  w.F64(t.dctcp_g);
}

TcpConfig GetTcpConfig(Reader& r) {
  TcpConfig t;
  t.mss = r.U32();
  t.init_cwnd_segments = r.U32();
  t.min_rto = r.TimeVal();
  t.initial_rto = r.TimeVal();
  t.ecn = r.Bool();
  t.dctcp = r.Bool();
  t.dctcp_g = r.F64();
  return t;
}

void PutSimConfig(Writer& w, const SimConfig& c) {
  w.U8(static_cast<uint8_t>(c.kernel.type));
  w.U32(c.kernel.threads);
  w.U8(static_cast<uint8_t>(c.kernel.metric));
  w.U32(c.kernel.sched_period);
  w.Bool(c.kernel.deterministic);
  w.U32(c.kernel.ranks);
  w.U8(static_cast<uint8_t>(c.kernel.affinity));
  w.U8(static_cast<uint8_t>(c.partition));
  w.U64(c.seed);
  w.Bool(c.profile);
  w.Bool(c.profile_per_round);
  w.Bool(c.profile_per_lp);
  w.Bool(c.trace);
  w.Bool(c.trace_claim_order);
  w.U8(static_cast<uint8_t>(c.tuning));
  w.F64(c.tuning_config.drift_shrink);
  w.F64(c.tuning_config.drift_grow);
  w.U32(c.tuning_config.min_period);
  w.U32(c.tuning_config.max_period);
  w.F64(c.tuning_config.ps_low);
  w.F64(c.tuning_config.ps_high);
  w.I64(c.tuning_config.min_window_ps);
  w.I64(c.tuning_config.max_window_ps);
  w.I64(c.tuning_config.initial_window_ps);
  w.F64(c.tuning_config.parks_per_round_high);
  w.U32(c.tuning_config.min_parties);
  w.U32(c.tuning_config.cpu_limit);
  w.U32(c.tuning_config.min_rounds);
  // v4: speculation + auto-checkpoint plane.
  w.F64(c.tuning_config.cost_ewma_alpha);
  w.I64(c.tuning_config.spec_horizon_initial_ps);
  w.I64(c.tuning_config.spec_horizon_min_ps);
  w.I64(c.tuning_config.spec_horizon_max_ps);
  w.U8(static_cast<uint8_t>(c.speculation));
  w.U32(c.kernel.auto_checkpoint_every);
  w.Str(c.auto_checkpoint_path);
  PutTcpConfig(w, c.tcp);
  PutQueueConfig(w, c.queue);
}

SimConfig GetSimConfig(Reader& r) {
  SimConfig c;
  c.kernel.type = static_cast<KernelType>(r.U8());
  c.kernel.threads = r.U32();
  c.kernel.metric = static_cast<SchedulingMetric>(r.U8());
  c.kernel.sched_period = r.U32();
  c.kernel.deterministic = r.Bool();
  c.kernel.ranks = r.U32();
  c.kernel.affinity = static_cast<AffinityPolicy>(r.U8());
  c.partition = static_cast<PartitionMode>(r.U8());
  c.seed = r.U64();
  c.profile = r.Bool();
  c.profile_per_round = r.Bool();
  c.profile_per_lp = r.Bool();
  c.trace = r.Bool();
  c.trace_claim_order = r.Bool();
  c.tuning = static_cast<TuningMode>(r.U8());
  c.tuning_config.drift_shrink = r.F64();
  c.tuning_config.drift_grow = r.F64();
  c.tuning_config.min_period = r.U32();
  c.tuning_config.max_period = r.U32();
  c.tuning_config.ps_low = r.F64();
  c.tuning_config.ps_high = r.F64();
  c.tuning_config.min_window_ps = r.I64();
  c.tuning_config.max_window_ps = r.I64();
  c.tuning_config.initial_window_ps = r.I64();
  c.tuning_config.parks_per_round_high = r.F64();
  c.tuning_config.min_parties = r.U32();
  c.tuning_config.cpu_limit = r.U32();
  c.tuning_config.min_rounds = r.U32();
  c.tuning_config.cost_ewma_alpha = r.F64();
  c.tuning_config.spec_horizon_initial_ps = r.I64();
  c.tuning_config.spec_horizon_min_ps = r.I64();
  c.tuning_config.spec_horizon_max_ps = r.I64();
  c.speculation = static_cast<SpeculationMode>(r.U8());
  c.kernel.auto_checkpoint_every = r.U32();
  c.auto_checkpoint_path = r.Str();
  c.tcp = GetTcpConfig(r);
  c.queue = GetQueueConfig(r);
  return c;
}

// --- Model state pieces ---

void PutPacket(Writer& w, const Packet& p) {
  if (p.control_data != nullptr) {
    SnapshotFatal(
        "a captured packet carries an opaque control payload (routing "
        "protocol traffic); control-plane state is not snapshot-serializable");
  }
  w.U8(static_cast<uint8_t>(p.kind));
  w.U32(p.flow_id);
  w.U32(p.src);
  w.U32(p.dst);
  w.U32(p.size_bytes);
  w.U8(p.ttl);
  w.Bool(p.ecn_capable);
  w.Bool(p.ecn_ce);
  w.U64(p.seq);
  w.U32(p.payload);
  w.Bool(p.fin);
  w.U64(p.ack);
  w.Bool(p.ece);
  w.U32(p.path_tag);
  w.TimeVal(p.ts);
  w.TimeVal(p.ts_echo);
  w.U16(p.control_kind);
}

Packet GetPacket(Reader& r) {
  Packet p;
  p.kind = static_cast<PacketKind>(r.U8());
  p.flow_id = r.U32();
  p.src = r.U32();
  p.dst = r.U32();
  p.size_bytes = r.U32();
  p.ttl = r.U8();
  p.ecn_capable = r.Bool();
  p.ecn_ce = r.Bool();
  p.seq = r.U64();
  p.payload = r.U32();
  p.fin = r.Bool();
  p.ack = r.U64();
  p.ece = r.Bool();
  p.path_tag = r.U32();
  p.ts = r.TimeVal();
  p.ts_echo = r.TimeVal();
  p.control_kind = r.U16();
  return p;
}

// The event payload dispatch: one arm per named functor in model_events.h.
// TryAs identifies the stored type by ops-table identity, so an ad-hoc
// lambda (progress ticker, user callback) falls through every arm — a
// deliberate fatal, since a closure cannot be serialized.
void PutEvent(Writer& w, Event& ev) {
  w.TimeVal(ev.key.ts);
  w.TimeVal(ev.key.sender_ts);
  w.U32(ev.key.sender_node);
  w.U64(ev.key.seq);
  w.U32(ev.node);
  if (auto* e = ev.fn.TryAs<PacketDeliverEvent>()) {
    w.U8(static_cast<uint8_t>(ModelEventTag::kPacketDeliver));
    w.U32(e->peer);
    PutPacket(w, e->pkt);
  } else if (auto* e = ev.fn.TryAs<TransmitCompleteEvent>()) {
    w.U8(static_cast<uint8_t>(ModelEventTag::kTransmitComplete));
    w.U32(e->node);
    w.U32(e->port);
  } else if (auto* e = ev.fn.TryAs<TcpRtoEvent>()) {
    w.U8(static_cast<uint8_t>(ModelEventTag::kTcpRto));
    w.U32(e->node);
    w.U32(e->flow_id);
  } else if (auto* e = ev.fn.TryAs<FlowStartEvent>()) {
    w.U8(static_cast<uint8_t>(ModelEventTag::kFlowStart));
    w.U32(e->flow_id);
    w.U32(e->src);
    w.U32(e->dst);
    w.U64(e->bytes);
    PutTcpConfig(w, e->cfg);
  } else if (auto* e = ev.fn.TryAs<FlowArrivalEvent>()) {
    w.U8(static_cast<uint8_t>(ModelEventTag::kFlowArrival));
    w.U32(e->set_index);
    w.U32(e->source_index);
  } else if (auto* e = ev.fn.TryAs<LinkUpDownEvent>()) {
    w.U8(static_cast<uint8_t>(ModelEventTag::kLinkUpDown));
    w.U32(e->link);
    w.Bool(e->up);
  } else {
    SnapshotFatal(
        "a pending event is not a named model event (see "
        "src/net/model_events.h); ad-hoc lambda events — progress tickers, "
        "user-scheduled callbacks — cannot be snapshot-serialized");
  }
}

Event GetEvent(Reader& r, Network* net) {
  Event ev;
  ev.key.ts = r.TimeVal();
  ev.key.sender_ts = r.TimeVal();
  ev.key.sender_node = r.U32();
  ev.key.seq = r.U64();
  ev.node = r.U32();
  const auto tag = static_cast<ModelEventTag>(r.U8());
  switch (tag) {
    case ModelEventTag::kPacketDeliver: {
      const NodeId peer = r.U32();
      ev.fn = PacketDeliverEvent{net, peer, GetPacket(r)};
      return ev;
    }
    case ModelEventTag::kTransmitComplete: {
      const NodeId node = r.U32();
      const uint32_t port = r.U32();
      ev.fn = TransmitCompleteEvent{net, node, port};
      return ev;
    }
    case ModelEventTag::kTcpRto: {
      const NodeId node = r.U32();
      const uint32_t flow = r.U32();
      ev.fn = TcpRtoEvent{net, node, flow};
      return ev;
    }
    case ModelEventTag::kFlowStart: {
      const uint32_t flow = r.U32();
      const NodeId src = r.U32();
      const NodeId dst = r.U32();
      const uint64_t bytes = r.U64();
      ev.fn = FlowStartEvent{net, flow, src, dst, bytes, GetTcpConfig(r)};
      return ev;
    }
    case ModelEventTag::kFlowArrival: {
      const uint32_t set = r.U32();
      const uint32_t source = r.U32();
      ev.fn = FlowArrivalEvent{net, set, source};
      return ev;
    }
    case ModelEventTag::kLinkUpDown: {
      const uint32_t link = r.U32();
      const bool up = r.Bool();
      ev.fn = LinkUpDownEvent{net, link, up};
      return ev;
    }
  }
  SnapshotFatal("unknown event tag in snapshot buffer");
}

// Non-fatal twin of PutEvent's dispatch: true iff the event is a named model
// event whose payload the snapshot format can represent. The window
// checkpoint must *decline*, not crash, when e.g. a progress ticker is
// pending — the kernel then simply runs the window conservatively — and the
// auto-checkpoint path uses the same predicate to skip such boundaries.
bool EventSerializable(Event& ev) {
  if (auto* e = ev.fn.TryAs<PacketDeliverEvent>()) {
    return e->pkt.control_data == nullptr;
  }
  return ev.fn.TryAs<TransmitCompleteEvent>() != nullptr ||
         ev.fn.TryAs<TcpRtoEvent>() != nullptr ||
         ev.fn.TryAs<FlowStartEvent>() != nullptr ||
         ev.fn.TryAs<FlowArrivalEvent>() != nullptr ||
         ev.fn.TryAs<LinkUpDownEvent>() != nullptr;
}

void PutLp(Writer& w, Lp* lp) {
  w.TimeVal(lp->now());
  w.U64(lp->seq());
  w.U64(lp->arrival_seq());
  w.U64(lp->fel().Size());
  lp->fel().ForEach([&w](Event& ev) { PutEvent(w, ev); });
}

void GetLp(Reader& r, Network* net, Lp* lp) {
  lp->set_now(r.TimeVal());
  const uint64_t seq = r.U64();
  const uint64_t arrival_seq = r.U64();
  lp->RestoreCounters(seq, arrival_seq);
  const uint64_t count = r.U64();
  std::vector<Event> events;
  events.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    events.push_back(GetEvent(r, net));
  }
  // Straight to the FEL, bypassing Lp::Insert: the captured keys (including
  // any non-deterministic arrival rewrite the parent already applied) must
  // survive verbatim. Deterministic keys are globally unique, so the rebuilt
  // heap dequeues identically whatever its internal layout.
  lp->fel().PushAll(events);
}

void PutQueueStats(Writer& w, const QueueStats& s) {
  w.U64(s.enqueued);
  w.U64(s.dropped);
  w.U64(s.ecn_marked);
  w.U64(s.max_bytes);
  w.TimeVal(s.total_delay);
  w.U64(s.dequeued);
}

QueueStats GetQueueStats(Reader& r) {
  QueueStats s;
  s.enqueued = r.U64();
  s.dropped = r.U64();
  s.ecn_marked = r.U64();
  s.max_bytes = r.U64();
  s.total_delay = r.TimeVal();
  s.dequeued = r.U64();
  return s;
}

void PutFlowCounters(Writer& w, const FlowCounters& c) {
  w.U64(c.flows);
  w.U64(c.completed);
  w.U64(c.rx_bytes);
  w.U64(c.retransmits);
  w.I64(c.fct_ps_sum);
}

FlowCounters GetFlowCounters(Reader& r) {
  FlowCounters c;
  c.flows = r.U64();
  c.completed = r.U64();
  c.rx_bytes = r.U64();
  c.retransmits = r.U64();
  c.fct_ps_sum = r.I64();
  return c;
}

void PutFlowRecord(Writer& w, const FlowRecord& f) {
  w.U32(f.id);
  w.U32(f.src);
  w.U32(f.dst);
  w.U64(f.bytes);
  w.TimeVal(f.start);
  w.Bool(f.completed);
  w.TimeVal(f.fct);
  w.U64(f.retransmits);
  w.U64(f.rtt_samples);
  w.TimeVal(f.rtt_sum);
  w.U64(f.rx_bytes);
  w.TimeVal(f.last_rx);
}

FlowRecord GetFlowRecord(Reader& r) {
  FlowRecord f;
  f.id = r.U32();
  f.src = r.U32();
  f.dst = r.U32();
  f.bytes = r.U64();
  f.start = r.TimeVal();
  f.completed = r.Bool();
  f.fct = r.TimeVal();
  f.retransmits = r.U64();
  f.rtt_samples = r.U64();
  f.rtt_sum = r.TimeVal();
  f.rx_bytes = r.U64();
  f.last_rx = r.TimeVal();
  return f;
}

void PutSenderImage(Writer& w, const TcpSender::Image& im) {
  w.U32(im.path_tag);
  w.U8(im.state);
  w.U64(im.snd_una);
  w.U64(im.snd_nxt);
  w.U64(im.high_tx);
  w.U64(im.cwnd);
  w.U64(im.ssthresh);
  w.U64(im.recover);
  w.U32(im.dup_acks);
  w.Bool(im.completed);
  w.U64(im.retransmits);
  w.I64(im.srtt_ps);
  w.I64(im.rttvar_ps);
  w.I64(im.rto_ps);
  w.Bool(im.rtt_valid);
  w.Bool(im.rto_pending);
  w.I64(im.rto_deadline_ps);
  w.U32(im.rto_backoff);
  w.U64(im.cwr_end);
  w.F64(im.alpha);
  w.U64(im.dctcp_bytes_acked);
  w.U64(im.dctcp_bytes_marked);
  w.U64(im.dctcp_window_end);
}

TcpSender::Image GetSenderImage(Reader& r) {
  TcpSender::Image im;
  im.path_tag = r.U32();
  im.state = r.U8();
  im.snd_una = r.U64();
  im.snd_nxt = r.U64();
  im.high_tx = r.U64();
  im.cwnd = r.U64();
  im.ssthresh = r.U64();
  im.recover = r.U64();
  im.dup_acks = r.U32();
  im.completed = r.Bool();
  im.retransmits = r.U64();
  im.srtt_ps = r.I64();
  im.rttvar_ps = r.I64();
  im.rto_ps = r.I64();
  im.rtt_valid = r.Bool();
  im.rto_pending = r.Bool();
  im.rto_deadline_ps = r.I64();
  im.rto_backoff = r.U32();
  im.cwr_end = r.U64();
  im.alpha = r.F64();
  im.dctcp_bytes_acked = r.U64();
  im.dctcp_bytes_marked = r.U64();
  im.dctcp_window_end = r.U64();
  return im;
}

// Per-node, per-port queue kinds derived from the recorded links — tells the
// restore side (and the save side) which devices carry RED marker state
// beyond the FIFO contents.
std::vector<std::vector<QueueConfig::Kind>> PortQueueKinds(
    uint32_t num_nodes, const std::vector<Network::LinkInfo>& links) {
  std::vector<std::vector<QueueConfig::Kind>> kinds(num_nodes);
  for (const Network::LinkInfo& link : links) {
    auto place = [&kinds](NodeId n, uint32_t port, QueueConfig::Kind kind) {
      if (kinds[n].size() <= port) {
        kinds[n].resize(port + 1, QueueConfig::Kind::kDropTail);
      }
      kinds[n][port] = kind;
    };
    place(link.a, link.port_a, link.queue.kind);
    place(link.b, link.port_b, link.queue.kind);
  }
  return kinds;
}

void CheckQuiescent(Lp* lp, const char* what) {
  for (const auto& outbox : lp->outboxes()) {
    if (!outbox->events.empty()) {
      SnapshotFatal(std::string("Snapshot outside a window boundary: ") + what +
                    " has undelivered mailbox events; snapshot only between "
                    "Run() windows");
    }
  }
  if (!lp->overflow().EmptyUnlocked()) {
    SnapshotFatal(std::string("Snapshot outside a window boundary: ") + what +
                  " has undelivered overflow events; snapshot only between "
                  "Run() windows");
  }
}

}  // namespace

// --- SessionSnapshot ---

uint64_t SessionSnapshot::Digest() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes_) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void SessionSnapshot::SaveTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    SnapshotFatal("SaveTo cannot open " + path);
  }
  const size_t written = bytes_.empty()
                             ? 0
                             : std::fwrite(bytes_.data(), 1, bytes_.size(), f);
  const bool ok = written == bytes_.size() && std::fclose(f) == 0;
  if (!ok) {
    SnapshotFatal("SaveTo failed writing " + path);
  }
}

SessionSnapshot SessionSnapshot::LoadFrom(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SnapshotFatal("LoadFrom cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(size < 0 ? 0 : static_cast<size_t>(size));
  const size_t got = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (size < 0 || got != bytes.size()) {
    SnapshotFatal("LoadFrom failed reading " + path);
  }
  return SessionSnapshot(std::move(bytes));
}

// --- Snapshot capture ---

SessionSnapshot Session::Snapshot() {
  Network& net = *net_;
  if (!net.finalized()) {
    SnapshotFatal("Snapshot before Finalize(); open the session first");
  }
  if (net.dv_routing() != nullptr) {
    SnapshotFatal(
        "distance-vector routing state (per-node tables, in-flight control "
        "packets) is not snapshot-serializable; use global ECMP routing");
  }
  Kernel& kernel = net.kernel();

  // Null-message channels may hold events for the next window; move them
  // into the owning FELs (identical to the next receive phase) so the FEL
  // walk below sees the complete event set. No-op for the other kernels.
  kernel.DrainTransportForSnapshot();

  for (uint32_t i = 0; i < kernel.num_lps(); ++i) {
    CheckQuiescent(kernel.lp(i), "an LP");
  }
  CheckQuiescent(kernel.public_lp(), "the public LP");

  Writer w;
  w.U8(kMagic[0]);
  w.U8(kMagic[1]);
  w.U8(kMagic[2]);
  w.U8(kMagic[3]);
  w.U32(kVersion);

  PutSimConfig(w, net.config());

  // Topology.
  w.U32(net.num_nodes());
  w.U32(static_cast<uint32_t>(net.links().size()));
  for (const Network::LinkInfo& link : net.links()) {
    w.U32(link.a);
    w.U32(link.b);
    w.U64(link.bps);
    w.TimeVal(link.delay);
    w.Bool(link.up);
    w.Bool(link.stateless);
    PutQueueConfig(w, link.queue);
  }

  // The realized partition: the fork restores it as a manual partition so LP
  // numbering — and therefore the per-LP FEL sections below — line up
  // exactly, independent of the original partition mode.
  const Partition& part = net.partition();
  w.U32(part.num_lps);
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    w.U32(part.lp_of_node[n]);
  }

  w.U64(net.injection_epoch());

  // Live-tuning state: the epoch is explicit so a fork resumes with the
  // parent's *learned* settings, not the knob values frozen at capture time.
  const Tunables& tun = net.tunable_store().Get();
  w.U64(net.tunable_store().epoch());
  w.U32(tun.sched_period);
  w.U32(tun.parties);
  w.U8(static_cast<uint8_t>(tun.affinity));
  w.I64(tun.max_window_ps);
  w.I64(tun.spec_horizon_ps);

  // v3: the realized LP-ownership map, in the capturing kernel's executor
  // domain; Restore folds the owners modulo the restored kernel's own domain,
  // so a snapshot taken under one kernel restores meaningfully under another.
  // The controller's pending move set (rebalance_seq/moves) is deliberately
  // NOT serialized: the realized map already reflects every applied move, and
  // a fork's kernel restarts its applied-generation counter at zero.
  const PartitionMap& pmap = kernel.partition_map();
  w.U64(pmap.epoch());
  w.U32(pmap.num_executors());
  w.U32(pmap.num_lps());
  for (uint32_t lp = 0; lp < pmap.num_lps(); ++lp) {
    w.U32(pmap.owner(lp));
  }

  const Kernel::SessionState session = kernel.session_state();
  w.TimeVal(session.session_now);
  w.TimeVal(session.resume_floor);
  w.U64(session.session_events);
  w.U64(session.session_rounds);
  w.U32(session.session_windows);

  // Per-LP clocks, tie-break counters, and FEL contents; the public LP last.
  for (uint32_t i = 0; i < kernel.num_lps(); ++i) {
    PutLp(w, kernel.lp(i));
  }
  PutLp(w, kernel.public_lp());

  // Node, device and queue state.
  const auto kinds = PortQueueKinds(net.num_nodes(), net.links());
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    Node& node = net.node(n);
    const NodeStats& ns = node.stats();
    w.U64(ns.forwarded);
    w.U64(ns.delivered);
    w.U64(ns.no_route);
    w.U64(ns.ttl_expired);
    w.U32(node.num_ports());
    for (uint32_t p = 0; p < node.num_ports(); ++p) {
      Device* dev = node.device(p);
      w.Bool(dev->transmitting());
      const DeviceStats& ds = dev->stats();
      w.U64(ds.tx_packets);
      w.U64(ds.tx_bytes);
      w.U64(ds.dropped_down);
      PutQueueStats(w, dev->queue().stats());
      const std::vector<QueueEntry> entries = dev->queue().Entries();
      w.U32(static_cast<uint32_t>(entries.size()));
      for (const QueueEntry& e : entries) {
        PutPacket(w, e.pkt);
        w.TimeVal(e.enqueue_time);
      }
      const bool red = kinds[n][p] != QueueConfig::Kind::kDropTail;
      w.Bool(red);
      if (red) {
        const RedQueue::MarkerState m =
            static_cast<RedQueue&>(dev->queue()).marker_state();
        w.F64(m.avg);
        w.U64(m.count_since_mark);
        w.U64(m.rng_state);
      }
    }
  }

  // TCP endpoints, sorted by flow id (the unordered_map iteration order is
  // not reproducible; the sort makes save→load→save byte-stable).
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    Node& node = net.node(n);
    std::vector<const TcpSender*> senders;
    std::vector<uint32_t> sender_ids;
    for (const auto& [id, sender] : node.senders()) {
      sender_ids.push_back(id);
    }
    std::sort(sender_ids.begin(), sender_ids.end());
    w.U32(static_cast<uint32_t>(sender_ids.size()));
    for (uint32_t id : sender_ids) {
      const TcpSender& s = *node.senders().at(id);
      w.U32(id);
      w.U32(s.dst());
      w.U64(s.size());
      PutTcpConfig(w, s.config());
      PutSenderImage(w, s.Save());
    }
    std::vector<uint32_t> receiver_ids;
    for (const auto& [id, receiver] : node.receivers()) {
      receiver_ids.push_back(id);
    }
    std::sort(receiver_ids.begin(), receiver_ids.end());
    w.U32(static_cast<uint32_t>(receiver_ids.size()));
    for (uint32_t id : receiver_ids) {
      const TcpReceiver& recv = *node.receivers().at(id);
      const TcpReceiver::Image im = recv.Save();
      w.U32(id);
      w.U32(recv.src());
      w.U64(im.rcv_nxt);
      w.U32(static_cast<uint32_t>(im.out_of_order.size()));
      for (const auto& [start, end] : im.out_of_order) {
        w.U64(start);
        w.U64(end);
      }
    }
  }

  // Flow statistics.
  const FlowMonitor::Image monitor = net.flow_monitor().SaveImage();
  w.U32(monitor.shards);
  for (uint32_t s = 0; s < monitor.shards; ++s) {
    w.U32(static_cast<uint32_t>(monitor.records[s].size()));
    for (const FlowRecord& rec : monitor.records[s]) {
      PutFlowRecord(w, rec);
    }
    PutFlowCounters(w, monitor.deltas[s]);
  }
  PutFlowCounters(w, monitor.merged);
  w.U32(monitor.windows_merged);

  // Streaming flow sources: spec (with the size CDF inlined) plus each
  // source's RNG/pending state. Registration order == serialization order,
  // so registry indices inside captured FlowArrivalEvents stay valid.
  w.U32(net.num_flow_source_sets());
  for (uint32_t i = 0; i < net.num_flow_source_sets(); ++i) {
    FlowSourceSet* set = net.flow_source_set(i);
    const TrafficSpec& spec = set->spec();
    w.U32(static_cast<uint32_t>(spec.hosts.size()));
    for (NodeId h : spec.hosts) {
      w.U32(h);
    }
    const auto& points = spec.sizes->points();
    w.U32(static_cast<uint32_t>(points.size()));
    for (const EmpiricalCdf::Point& pt : points) {
      w.F64(pt.bytes);
      w.F64(pt.cum_prob);
    }
    w.F64(spec.load);
    w.U64(spec.bisection_bps);
    w.TimeVal(spec.start);
    w.TimeVal(spec.duration);
    w.F64(spec.incast_ratio);
    w.U32(spec.victim_index);
    w.U64(spec.rng_stream);
    w.F64(spec.redirect_prob);
    w.U32(spec.redirect_begin);
    w.U32(set->num_sources());
    for (uint32_t src = 0; src < set->num_sources(); ++src) {
      const FlowSource::Image im = set->source(src).Save();
      for (uint64_t word : im.stream.rng) {
        w.U64(word);
      }
      w.F64(im.stream.t);
      w.U32(im.pending.src_index);
      w.U32(im.pending.dst_index);
      w.U64(im.pending.bytes);
      w.TimeVal(im.pending.start);
      w.Bool(im.pending.install);
      w.U64(im.installed_flows);
      w.U64(im.total_bytes);
    }
  }

  return SessionSnapshot(w.Take());
}

// --- Restore ---

namespace {

std::unique_ptr<Network> RestoreImpl(const SessionSnapshot& snap,
                                     ExecutorPool* pool, const ForkOptions& opts) {
  Reader r(snap.bytes());
  if (r.U8() != kMagic[0] || r.U8() != kMagic[1] || r.U8() != kMagic[2] ||
      r.U8() != kMagic[3]) {
    SnapshotFatal("not a USNP snapshot buffer");
  }
  const uint32_t version = r.U32();
  if (version != kVersion) {
    SnapshotFatal("unsupported snapshot version " + std::to_string(version) +
                  " (this build reads v" + std::to_string(kVersion) + ")");
  }

  SimConfig cfg = GetSimConfig(r);

  const uint32_t num_nodes = r.U32();
  const uint32_t num_links = r.U32();
  struct RestoredLink {
    NodeId a, b;
    uint64_t bps;
    Time delay;
    bool up, stateless;
    QueueConfig queue;
  };
  std::vector<RestoredLink> links(num_links);
  for (RestoredLink& link : links) {
    link.a = r.U32();
    link.b = r.U32();
    link.bps = r.U64();
    link.delay = r.TimeVal();
    link.up = r.Bool();
    link.stateless = r.Bool();
    link.queue = GetQueueConfig(r);
  }

  const uint32_t num_lps = r.U32();
  std::vector<LpId> lp_of_node(num_nodes);
  for (LpId& lp : lp_of_node) {
    lp = r.U32();
  }

  const uint64_t injection_epoch = r.U64();

  const uint64_t tuning_epoch = r.U64();
  Tunables tunables;
  tunables.sched_period = r.U32();
  tunables.parties = r.U32();
  tunables.affinity = static_cast<AffinityPolicy>(r.U8());
  tunables.max_window_ps = r.I64();
  tunables.spec_horizon_ps = r.I64();

  const uint64_t ownership_epoch = r.U64();
  const uint32_t ownership_executors = r.U32();
  (void)ownership_executors;  // Informational: the capturing kernel's domain.
  const uint32_t ownership_lps = r.U32();
  std::vector<uint32_t> owners(ownership_lps);
  for (uint32_t& o : owners) {
    o = r.U32();
  }

  Kernel::SessionState session;
  session.session_now = r.TimeVal();
  session.resume_floor = r.TimeVal();
  session.session_events = r.U64();
  session.session_rounds = r.U64();
  session.session_windows = r.U32();

  // Divergence knob: mutated queue disciplines apply to the rebuilt queues
  // from their first packet. The branch's own config records the mutation.
  if (opts.mutate_queue) {
    opts.mutate_queue(cfg.queue);
    for (RestoredLink& link : links) {
      opts.mutate_queue(link.queue);
    }
  }

  // Replay the realized partition as a manual one so LP numbering matches
  // the serialized per-LP sections (the sequential kernel forces kSingle
  // regardless, which is what it was captured with).
  if (cfg.kernel.type != KernelType::kSequential) {
    cfg.partition = PartitionMode::kManual;
  }

  auto net = std::make_unique<Network>(cfg);
  net->AddNodes(num_nodes);
  for (const RestoredLink& link : links) {
    net->AddLink(link.a, link.b, link.bps, link.delay, link.queue, link.stateless);
  }
  if (cfg.kernel.type != KernelType::kSequential) {
    net->SetManualPartition(num_lps, lp_of_node);
  }
  if (pool != nullptr) {
    net->set_external_pool(pool);
  }
  net->Finalize();

  // Administrative link state (routing recomputes per change, landing on the
  // same tables the captured session was using).
  for (uint32_t i = 0; i < num_links; ++i) {
    if (!links[i].up) {
      net->SetLinkUp(i, false);
    }
  }

  Kernel& kernel = net->kernel();
  if (kernel.num_lps() != num_lps) {
    SnapshotFatal("restored kernel produced a different LP count than the "
                  "snapshot recorded; partition replay failed");
  }
  kernel.RestoreSessionState(session);
  net->set_injection_epoch(injection_epoch);
  // After Finalize seeded the store from the config: reinstall the captured
  // live values and epoch so the fork's first window runs with the parent's
  // learned settings (its controller, if any, keeps tuning from there).
  net->tunable_store().Restore(tunables, tuning_epoch);
  // Reinstall the parent's realized LP placement (folded modulo this
  // kernel's own executor domain). Results-neutral either way in
  // deterministic mode; this preserves the parent's learned balance.
  if (ownership_lps == kernel.num_lps()) {
    kernel.RestoreOwnership(std::move(owners), ownership_epoch);
  }

  for (uint32_t i = 0; i < num_lps; ++i) {
    GetLp(r, net.get(), kernel.lp(i));
  }
  GetLp(r, net.get(), kernel.public_lp());

  const auto kinds = PortQueueKinds(num_nodes, net->links());
  for (NodeId n = 0; n < num_nodes; ++n) {
    Node& node = net->node(n);
    NodeStats ns;
    ns.forwarded = r.U64();
    ns.delivered = r.U64();
    ns.no_route = r.U64();
    ns.ttl_expired = r.U64();
    node.set_stats(ns);
    const uint32_t ports = r.U32();
    if (ports != node.num_ports()) {
      SnapshotFatal("restored node has a different port count than recorded");
    }
    for (uint32_t p = 0; p < ports; ++p) {
      Device* dev = node.device(p);
      dev->set_transmitting(r.Bool());
      DeviceStats ds;
      ds.tx_packets = r.U64();
      ds.tx_bytes = r.U64();
      ds.dropped_down = r.U64();
      dev->set_stats(ds);
      const QueueStats qs = GetQueueStats(r);
      const uint32_t entries = r.U32();
      std::vector<QueueEntry> q;
      q.reserve(entries);
      for (uint32_t e = 0; e < entries; ++e) {
        QueueEntry entry;
        entry.pkt = GetPacket(r);
        entry.enqueue_time = r.TimeVal();
        q.push_back(std::move(entry));
      }
      dev->queue().RestoreEntries(std::move(q));
      dev->queue().set_stats(qs);
      if (r.Bool()) {
        RedQueue::MarkerState m;
        m.avg = r.F64();
        m.count_since_mark = r.U64();
        m.rng_state = r.U64();
        if (kinds[n][p] == QueueConfig::Kind::kDropTail) {
          SnapshotFatal(
              "snapshot carries RED marker state for a drop-tail queue; "
              "mutate_queue may not change a queue's kind");
        }
        static_cast<RedQueue&>(dev->queue()).set_marker_state(m);
      } else if (kinds[n][p] != QueueConfig::Kind::kDropTail) {
        SnapshotFatal(
            "snapshot lacks RED marker state for a RED/DCTCP queue; "
            "mutate_queue may not change a queue's kind");
      }
    }
  }

  for (NodeId n = 0; n < num_nodes; ++n) {
    Node& node = net->node(n);
    const uint32_t senders = r.U32();
    for (uint32_t i = 0; i < senders; ++i) {
      const uint32_t flow_id = r.U32();
      const NodeId dst = r.U32();
      const uint64_t bytes = r.U64();
      const TcpConfig tcp = GetTcpConfig(r);
      TcpSender* sender = node.AddSender(
          flow_id,
          std::make_unique<TcpSender>(net.get(), &node, flow_id, dst, bytes, tcp));
      sender->Restore(GetSenderImage(r));
    }
    const uint32_t receivers = r.U32();
    for (uint32_t i = 0; i < receivers; ++i) {
      const uint32_t flow_id = r.U32();
      const NodeId src = r.U32();
      TcpReceiver::Image im;
      im.rcv_nxt = r.U64();
      const uint32_t ooo = r.U32();
      for (uint32_t o = 0; o < ooo; ++o) {
        const uint64_t start = r.U64();
        im.out_of_order[start] = r.U64();
      }
      TcpReceiver* receiver = node.AddReceiver(
          flow_id, std::make_unique<TcpReceiver>(net.get(), &node, flow_id, src));
      receiver->Restore(im);
    }
  }

  FlowMonitor::Image monitor;
  monitor.shards = r.U32();
  monitor.records.resize(monitor.shards);
  monitor.deltas.resize(monitor.shards);
  for (uint32_t s = 0; s < monitor.shards; ++s) {
    const uint32_t count = r.U32();
    monitor.records[s].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      monitor.records[s].push_back(GetFlowRecord(r));
    }
    monitor.deltas[s] = GetFlowCounters(r);
  }
  monitor.merged = GetFlowCounters(r);
  monitor.windows_merged = r.U32();
  net->flow_monitor().RestoreImage(monitor);

  const uint32_t num_sets = r.U32();
  for (uint32_t i = 0; i < num_sets; ++i) {
    TrafficSpec spec;
    const uint32_t hosts = r.U32();
    spec.hosts.resize(hosts);
    for (NodeId& h : spec.hosts) {
      h = r.U32();
    }
    const uint32_t num_points = r.U32();
    std::vector<EmpiricalCdf::Point> points(num_points);
    for (EmpiricalCdf::Point& pt : points) {
      pt.bytes = r.F64();
      pt.cum_prob = r.F64();
    }
    auto cdf = std::make_shared<EmpiricalCdf>(std::move(points));
    spec.sizes = cdf.get();
    net->Keep(cdf);  // The set's spec points at it for the network's lifetime.
    spec.load = r.F64();
    spec.bisection_bps = r.U64();
    spec.start = r.TimeVal();
    spec.duration = r.TimeVal();
    spec.incast_ratio = r.F64();
    spec.victim_index = r.U32();
    spec.rng_stream = r.U64();
    spec.redirect_prob = r.F64();
    spec.redirect_begin = r.U32();
    auto set = std::make_shared<FlowSourceSet>(net.get(), std::move(spec));
    const uint32_t num_sources = r.U32();
    if (net->RegisterFlowSourceSet(set) != i || set->num_sources() != num_sources) {
      SnapshotFatal("flow-source registry replay diverged from the snapshot");
    }
    // No Bootstrap: each source's pending arrival already sits in a restored
    // FEL as a FlowArrivalEvent; only the stream/counter state is rebuilt.
    for (uint32_t src = 0; src < num_sources; ++src) {
      FlowSource::Image im;
      for (uint64_t& word : im.stream.rng) {
        word = r.U64();
      }
      im.stream.t = r.F64();
      im.pending.src_index = r.U32();
      im.pending.dst_index = r.U32();
      im.pending.bytes = r.U64();
      im.pending.start = r.TimeVal();
      im.pending.install = r.Bool();
      im.installed_flows = r.U64();
      im.total_bytes = r.U64();
      set->source(src).Restore(im);
    }
  }

  if (r.remaining() != 0) {
    SnapshotFatal("trailing bytes after the snapshot payload (corrupt buffer)");
  }

  char lineage[48];
  std::snprintf(lineage, sizeof lineage, "snap-%016llx@w%u",
                static_cast<unsigned long long>(snap.Digest()),
                session.session_windows);
  kernel.set_lineage(lineage);
  return net;
}

}  // namespace

std::unique_ptr<Network> Session::Fork(const SessionSnapshot& snap,
                                       const ForkOptions& opts) {
  ExecutorPool* pool =
      opts.share_executors ? net_->kernel().executor_pool() : nullptr;
  return RestoreImpl(snap, pool, opts);
}

std::unique_ptr<Network> Session::Restore(const SessionSnapshot& snap) {
  return RestoreImpl(snap, nullptr, ForkOptions{});
}

// --- Window checkpoints for speculative execution (DESIGN.md §3k) ---
//
// The slim variant reuses the USNP field encoders verbatim but skips
// everything a single Run() window cannot mutate: magic/version, SimConfig,
// topology shape, partition, injection epoch, tunables, ownership, CDF
// specs, and the kernel's session accumulators (FinishRun never runs for an
// aborted attempt, so they are untouched by construction). What remains is
// exactly the state speculative rounds can dirty.

namespace {

bool AllFelsSerializable(Kernel& kernel) {
  bool ok = true;
  const auto scan = [&ok](Event& ev) { ok = ok && EventSerializable(ev); };
  for (uint32_t i = 0; i < kernel.num_lps(); ++i) {
    kernel.lp(i)->fel().ForEach(scan);
  }
  kernel.public_lp()->fel().ForEach(scan);
  return ok;
}

}  // namespace

bool SessionSerializable(Network& net) {
  if (!net.finalized() || net.dv_routing() != nullptr) {
    return false;
  }
  Kernel& kernel = net.kernel();
  // The same transport drain Snapshot() performs (execution-neutral), so the
  // FEL scan sees the complete event set under the null-message kernel too.
  kernel.DrainTransportForSnapshot();
  return AllFelsSerializable(kernel);
}

bool CaptureWindowCheckpoint(Network& net, std::vector<uint8_t>* out) {
  if (!net.finalized() || net.dv_routing() != nullptr) {
    return false;
  }
  Kernel& kernel = net.kernel();
  kernel.DrainTransportForSnapshot();
  if (!AllFelsSerializable(kernel)) {
    return false;
  }
  // Window-boundary quiescence is the capture's correctness premise (the
  // checkpoint has no mailbox section); a violation here is a kernel bug.
  for (uint32_t i = 0; i < kernel.num_lps(); ++i) {
    CheckQuiescent(kernel.lp(i), "an LP");
  }
  CheckQuiescent(kernel.public_lp(), "the public LP");

  Writer w(std::move(*out));

  // Per-link administrative state. A LinkUpDown global below the
  // conservative bound executes even in a speculative attempt; if a later
  // round then misses, the flip must be undone — restore re-applies any
  // changed link, which also recomputes routing and the lookahead.
  w.U32(static_cast<uint32_t>(net.links().size()));
  for (const Network::LinkInfo& link : net.links()) {
    w.Bool(link.up);
    w.TimeVal(link.delay);
  }

  // LP clocks, tie-break counters, and FEL contents; the public LP last.
  w.U32(kernel.num_lps());
  for (uint32_t i = 0; i < kernel.num_lps(); ++i) {
    PutLp(w, kernel.lp(i));
  }
  PutLp(w, kernel.public_lp());

  // Node, device and queue state — same layout as the full snapshot.
  const auto kinds = PortQueueKinds(net.num_nodes(), net.links());
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    Node& node = net.node(n);
    const NodeStats& ns = node.stats();
    w.U64(ns.forwarded);
    w.U64(ns.delivered);
    w.U64(ns.no_route);
    w.U64(ns.ttl_expired);
    w.U32(node.num_ports());
    for (uint32_t p = 0; p < node.num_ports(); ++p) {
      Device* dev = node.device(p);
      w.Bool(dev->transmitting());
      const DeviceStats& ds = dev->stats();
      w.U64(ds.tx_packets);
      w.U64(ds.tx_bytes);
      w.U64(ds.dropped_down);
      PutQueueStats(w, dev->queue().stats());
      const std::vector<QueueEntry> entries = dev->queue().Entries();
      w.U32(static_cast<uint32_t>(entries.size()));
      for (const QueueEntry& e : entries) {
        PutPacket(w, e.pkt);
        w.TimeVal(e.enqueue_time);
      }
      const bool red = kinds[n][p] != QueueConfig::Kind::kDropTail;
      w.Bool(red);
      if (red) {
        const RedQueue::MarkerState m =
            static_cast<RedQueue&>(dev->queue()).marker_state();
        w.F64(m.avg);
        w.U64(m.count_since_mark);
        w.U64(m.rng_state);
      }
    }
  }

  // TCP endpoints, sorted by flow id (same reason as the full snapshot: the
  // map iteration order is not reproducible).
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    Node& node = net.node(n);
    std::vector<uint32_t> sender_ids;
    for (const auto& [id, sender] : node.senders()) {
      sender_ids.push_back(id);
    }
    std::sort(sender_ids.begin(), sender_ids.end());
    w.U32(static_cast<uint32_t>(sender_ids.size()));
    for (uint32_t id : sender_ids) {
      const TcpSender& s = *node.senders().at(id);
      w.U32(id);
      w.U32(s.dst());
      w.U64(s.size());
      PutTcpConfig(w, s.config());
      PutSenderImage(w, s.Save());
    }
    std::vector<uint32_t> receiver_ids;
    for (const auto& [id, receiver] : node.receivers()) {
      receiver_ids.push_back(id);
    }
    std::sort(receiver_ids.begin(), receiver_ids.end());
    w.U32(static_cast<uint32_t>(receiver_ids.size()));
    for (uint32_t id : receiver_ids) {
      const TcpReceiver& recv = *node.receivers().at(id);
      const TcpReceiver::Image im = recv.Save();
      w.U32(id);
      w.U32(recv.src());
      w.U64(im.rcv_nxt);
      w.U32(static_cast<uint32_t>(im.out_of_order.size()));
      for (const auto& [start, end] : im.out_of_order) {
        w.U64(start);
        w.U64(end);
      }
    }
  }

  // Flow statistics.
  const FlowMonitor::Image monitor = net.flow_monitor().SaveImage();
  w.U32(monitor.shards);
  for (uint32_t s = 0; s < monitor.shards; ++s) {
    w.U32(static_cast<uint32_t>(monitor.records[s].size()));
    for (const FlowRecord& rec : monitor.records[s]) {
      PutFlowRecord(w, rec);
    }
    PutFlowCounters(w, monitor.deltas[s]);
  }
  PutFlowCounters(w, monitor.merged);
  w.U32(monitor.windows_merged);

  // Streaming flow sources: stream/pending state only (the specs and their
  // CDFs are immutable within a window — the registry itself only grows
  // between windows).
  w.U32(net.num_flow_source_sets());
  for (uint32_t i = 0; i < net.num_flow_source_sets(); ++i) {
    FlowSourceSet* set = net.flow_source_set(i);
    w.U32(set->num_sources());
    for (uint32_t src = 0; src < set->num_sources(); ++src) {
      const FlowSource::Image im = set->source(src).Save();
      for (uint64_t word : im.stream.rng) {
        w.U64(word);
      }
      w.F64(im.stream.t);
      w.U32(im.pending.src_index);
      w.U32(im.pending.dst_index);
      w.U64(im.pending.bytes);
      w.TimeVal(im.pending.start);
      w.Bool(im.pending.install);
      w.U64(im.installed_flows);
      w.U64(im.total_bytes);
    }
  }

  *out = w.Take();
  return true;
}

void RestoreWindowCheckpoint(Network& net, const std::vector<uint8_t>& buf) {
  Kernel& kernel = net.kernel();
  Reader r(buf);

  const uint32_t num_links = r.U32();
  if (num_links != net.links().size()) {
    SnapshotFatal(
        "window checkpoint link count diverged from the live topology");
  }
  for (uint32_t i = 0; i < num_links; ++i) {
    const bool up = r.Bool();
    const Time delay = r.TimeVal();
    // Re-apply only actual changes: each setter recomputes routing and the
    // kernel lookahead, which is wasted work for the (typical) no-op case.
    if (net.links()[i].up != up) {
      net.SetLinkUp(i, up);
    }
    if (net.links()[i].delay != delay) {
      net.SetLinkDelay(i, delay);
    }
  }

  const uint32_t num_lps = r.U32();
  if (num_lps != kernel.num_lps()) {
    SnapshotFatal("window checkpoint LP count diverged from the live kernel");
  }
  for (uint32_t i = 0; i < num_lps; ++i) {
    kernel.lp(i)->fel().Clear();
    GetLp(r, &net, kernel.lp(i));
  }
  kernel.public_lp()->fel().Clear();
  GetLp(r, &net, kernel.public_lp());

  const auto kinds = PortQueueKinds(net.num_nodes(), net.links());
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    Node& node = net.node(n);
    NodeStats ns;
    ns.forwarded = r.U64();
    ns.delivered = r.U64();
    ns.no_route = r.U64();
    ns.ttl_expired = r.U64();
    node.set_stats(ns);
    const uint32_t ports = r.U32();
    if (ports != node.num_ports()) {
      SnapshotFatal("window checkpoint port count diverged from the node");
    }
    for (uint32_t p = 0; p < ports; ++p) {
      Device* dev = node.device(p);
      dev->set_transmitting(r.Bool());
      DeviceStats ds;
      ds.tx_packets = r.U64();
      ds.tx_bytes = r.U64();
      ds.dropped_down = r.U64();
      dev->set_stats(ds);
      const QueueStats qs = GetQueueStats(r);
      const uint32_t entries = r.U32();
      std::vector<QueueEntry> q;
      q.reserve(entries);
      for (uint32_t e = 0; e < entries; ++e) {
        QueueEntry entry;
        entry.pkt = GetPacket(r);
        entry.enqueue_time = r.TimeVal();
        q.push_back(std::move(entry));
      }
      dev->queue().RestoreEntries(std::move(q));
      dev->queue().set_stats(qs);
      if (r.Bool()) {
        RedQueue::MarkerState m;
        m.avg = r.F64();
        m.count_since_mark = r.U64();
        m.rng_state = r.U64();
        static_cast<RedQueue&>(dev->queue()).set_marker_state(m);
      } else if (kinds[n][p] != QueueConfig::Kind::kDropTail) {
        SnapshotFatal("window checkpoint lacks RED state for a RED queue");
      }
    }
  }

  // TCP endpoints: drop the live set wholesale and re-create the captured
  // one (speculative rounds may have created endpoints, completed flows, or
  // advanced connection state — re-creation covers all three at once, and
  // endpoint counts per window are small).
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    Node& node = net.node(n);
    node.ClearTcpEndpoints();
    const uint32_t senders = r.U32();
    for (uint32_t i = 0; i < senders; ++i) {
      const uint32_t flow_id = r.U32();
      const NodeId dst = r.U32();
      const uint64_t bytes = r.U64();
      const TcpConfig tcp = GetTcpConfig(r);
      TcpSender* sender = node.AddSender(
          flow_id,
          std::make_unique<TcpSender>(&net, &node, flow_id, dst, bytes, tcp));
      sender->Restore(GetSenderImage(r));
    }
    const uint32_t receivers = r.U32();
    for (uint32_t i = 0; i < receivers; ++i) {
      const uint32_t flow_id = r.U32();
      const NodeId src = r.U32();
      TcpReceiver::Image im;
      im.rcv_nxt = r.U64();
      const uint32_t ooo = r.U32();
      for (uint32_t o = 0; o < ooo; ++o) {
        const uint64_t start = r.U64();
        im.out_of_order[start] = r.U64();
      }
      TcpReceiver* receiver = node.AddReceiver(
          flow_id, std::make_unique<TcpReceiver>(&net, &node, flow_id, src));
      receiver->Restore(im);
    }
  }

  FlowMonitor::Image monitor;
  monitor.shards = r.U32();
  monitor.records.resize(monitor.shards);
  monitor.deltas.resize(monitor.shards);
  for (uint32_t s = 0; s < monitor.shards; ++s) {
    const uint32_t count = r.U32();
    monitor.records[s].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      monitor.records[s].push_back(GetFlowRecord(r));
    }
    monitor.deltas[s] = GetFlowCounters(r);
  }
  monitor.merged = GetFlowCounters(r);
  monitor.windows_merged = r.U32();
  net.flow_monitor().RestoreImageInPlace(monitor);

  const uint32_t num_sets = r.U32();
  if (num_sets != net.num_flow_source_sets()) {
    SnapshotFatal(
        "window checkpoint flow-source registry diverged from the session");
  }
  for (uint32_t i = 0; i < num_sets; ++i) {
    FlowSourceSet* set = net.flow_source_set(i);
    const uint32_t num_sources = r.U32();
    if (num_sources != set->num_sources()) {
      SnapshotFatal("window checkpoint flow-source set size diverged");
    }
    for (uint32_t src = 0; src < num_sources; ++src) {
      FlowSource::Image im;
      for (uint64_t& word : im.stream.rng) {
        word = r.U64();
      }
      im.stream.t = r.F64();
      im.pending.src_index = r.U32();
      im.pending.dst_index = r.U32();
      im.pending.bytes = r.U64();
      im.pending.start = r.TimeVal();
      im.pending.install = r.Bool();
      im.installed_flows = r.U64();
      im.total_bytes = r.U64();
      set->source(src).Restore(im);
    }
  }

  if (r.remaining() != 0) {
    SnapshotFatal("trailing bytes after the window checkpoint payload");
  }
}

}  // namespace unison
