// Warm-prefix checkpointing: snapshot a windowed session at a window
// boundary and fork it into independent what-if branches.
//
// A scenario sweep that varies only post-t_k conditions (a failed link,
// different RED/ECN thresholds, extra injected load) used to pay the full
// [0, t_k) warm-up once per branch. Session::Snapshot captures the complete
// session state at a window boundary — every LP's future event list and
// tie-break counters, model state (TCP connections, queue occupancies and
// RED marker state, streaming flow-source RNGs), statistics, and the
// kernel's session accumulators — into a versioned in-memory buffer.
// Session::Fork materializes a fresh Network from it; each branch then
// diverges via the normal session API (InjectTraffic, Network::FailLink,
// ForkOptions::mutate_queue) and runs to its own horizon.
//
// Fork transparency is the contract: Snapshot at window k + Fork + Run to T
// produces bit-identical results (FlowMonitor fingerprint, event counts) to
// one monolithic session run to T — for every kernel and thread count. It
// holds because the snapshot is taken at a window boundary, the only point
// where the session is quiescent: no executor is mid-round, cross-LP
// mailboxes are empty (Snapshot verifies this and fatals otherwise), and the
// deterministic EventKey total order makes the restored FELs dequeue
// identically regardless of heap layout.
//
// Forked branches reuse the parent's warm executor pool by default
// (ForkOptions::share_executors): the child kernel borrows the pool at
// Setup, so forking and running N branches spawns zero new OS threads. Two
// constraints follow: the parent Network must outlive its forks, and only
// one of {parent, forks} may be inside Run() at a time (ExecutorPool::Run is
// not reentrant). Snapshots also serialize to disk (SaveTo/LoadFrom) as a
// resume format for long simulations; Session::Restore rebuilds a network
// cold, with its own pool.
//
// Not serializable (Snapshot fatals with a description): distance-vector
// routing state, packets carrying control payloads, and ad-hoc lambda events
// (every model event type is a named functor in src/net/model_events.h;
// user-scheduled lambdas — progress tickers, test callbacks — are not).
#ifndef UNISON_SRC_NET_SESSION_H_
#define UNISON_SRC_NET_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"

namespace unison {

// An immutable captured session: a versioned little-endian binary buffer
// (magic "USNP"). Value type — copy, store, ship to disk.
class SessionSnapshot {
 public:
  SessionSnapshot() = default;
  explicit SessionSnapshot(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size_bytes() const { return bytes_.size(); }

  // FNV-1a over the buffer; identifies the snapshot in lineage tags
  // (RunSummary::forked_from) and in equality checks between snapshots.
  uint64_t Digest() const;

  // On-disk resume format: the buffer, verbatim. Fatal on I/O failure.
  void SaveTo(const std::string& path) const;
  static SessionSnapshot LoadFrom(const std::string& path);

 private:
  std::vector<uint8_t> bytes_;
};

// Per-fork divergence applied while the branch network is being rebuilt —
// before any queue object exists, so mutated disciplines (e.g. a lower DCTCP
// K, different RED thresholds) govern the branch from its first restored
// packet.
struct ForkOptions {
  // Applied to the restored SimConfig's default QueueConfig and to every
  // recorded per-link QueueConfig.
  std::function<void(QueueConfig&)> mutate_queue;
  // Borrow the parent kernel's executor pool (zero thread respawns). The
  // parent must outlive the fork and the two must not Run concurrently.
  bool share_executors = true;
};

// Snapshot/fork facade over a finalized, window-quiescent Network.
class Session {
 public:
  // `net` must be finalized and outside Run() (between windows). Not owned.
  explicit Session(Network* net) : net_(net) {}

  // Captures the full session state. Execution-neutral for the parent: the
  // only mutation is draining kernel-private transport residue into the
  // owning FELs (null-message channels), which the next window's receive
  // phase would do identically.
  SessionSnapshot Snapshot();

  // Rebuilds an independent Network from `snap`, sharing the parent's warm
  // executor pool per `opts`. The fork's next Run() continues exactly where
  // the captured session paused; its RunSummary carries
  // forked_from = "snap-<digest>@w<windows>".
  std::unique_ptr<Network> Fork(const SessionSnapshot& snap,
                                const ForkOptions& opts = {});

  // Cold restore with no parent (e.g. resuming a long simulation from a
  // SaveTo file in a fresh process). The restored network owns its pool.
  static std::unique_ptr<Network> Restore(const SessionSnapshot& snap);

 private:
  Network* net_;
};

// --- Window checkpoints for speculative execution (DESIGN.md §3k) ---
//
// A slimmed, no-disk variant of the USNP snapshot, shared-serialization but
// different contract: it captures only what speculative rounds can mutate
// within one Run() window — LP clocks/counters/FELs, per-node device, queue,
// RED and TCP endpoint state, the sharded FlowMonitor, streaming flow-source
// RNG cursors, and per-link up/delay (a global may flip a link mid-window) —
// and restores *in place* on the same finalized Network. Everything a full
// snapshot re-encodes but a window cannot change (topology shape, SimConfig,
// CDF specs, tunables, ownership, session accumulators) is skipped, which is
// what makes capture cheap enough to run at every window boundary.

// Serializes the checkpoint into `out` (cleared, capacity kept — the pooled
// buffer lives in SpecCheckpoint). Returns false, leaving the session
// untouched, when the state is not representable (lambda events such as
// progress tickers, control-payload packets, DV routing) — the kernel then
// runs the window conservatively.
bool CaptureWindowCheckpoint(Network& net, std::vector<uint8_t>* out);

// Rolls the live session back to the captured state. Requires the same
// finalized Network the capture ran on, quiescent at a window boundary
// (which a speculation abort guarantees: misses latch between rounds, after
// all mailboxes drained).
void RestoreWindowCheckpoint(Network& net, const std::vector<uint8_t>& buf);

// True when the session's live state fits the USNP snapshot format — the
// same predicate Snapshot() enforces fatally, as a query. Used by the
// auto-checkpoint path to skip boundaries where a snapshot would abort
// (e.g. a progress-report ticker pending in the public FEL).
bool SessionSerializable(Network& net);

}  // namespace unison

#endif  // UNISON_SRC_NET_SESSION_H_
