// Routing.
//
// GlobalRouting is the static path oracle: equal-cost shortest paths computed
// once at finalize time (and recomputed by topology-change global events),
// with per-flow ECMP hashing so a flow never reorders. It plays the role of
// ns-3's NIx-vector routing — a shared, read-mostly cache of next hops that
// every LP consults (§5.1 made that cache thread-safe; here it is immutable
// during a round by construction).
//
// DistanceVectorRouting is a dynamic RIP-like protocol running as simulated
// control traffic: periodic advertisements, split horizon with poisoned
// reverse, and triggered updates. It exists so the WAN experiments exercise
// real protocol dynamics (Fig. 10c) and dynamic topologies reconverge.
#ifndef UNISON_SRC_NET_ROUTING_H_
#define UNISON_SRC_NET_ROUTING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/time.h"
#include "src/net/packet.h"

namespace unison {

class Network;
class Node;

class GlobalRouting {
 public:
  static constexpr uint32_t kMaxEcmp = 7;

  // Recomputes all-pairs equal-cost shortest paths over the up links.
  void Compute(Network& net);

  // Egress port on `node` toward `dst` for a flow with the given hash;
  // -1 when unreachable.
  int Port(NodeId node, NodeId dst, uint32_t flow_hash) const;

  // Number of equal-cost choices (tests).
  uint32_t EcmpWidth(NodeId node, NodeId dst) const;

 private:
  struct Entry {
    uint8_t count = 0;
    uint8_t ports[kMaxEcmp] = {};
  };
  std::vector<Entry> table_;
  uint32_t n_ = 0;
};

// Per-node distance-vector table.
class DvState {
 public:
  static constexpr uint32_t kInfinity = 1 << 20;

  std::vector<uint32_t> dist;
  std::vector<int32_t> port;  // -1 = unreachable.
  bool triggered_pending = false;
  uint64_t updates_sent = 0;
};

class DistanceVectorRouting {
 public:
  DistanceVectorRouting(Network* net, Time period) : net_(net), period_(period) {}

  // Creates DvState on every node and schedules the periodic advertisements.
  // Must be called after topology construction, before Run.
  void Install();

  // Handler for arriving DV control packets, invoked by Node::Deliver.
  void OnControl(Node* node, const Packet& pkt);

  // Link-state change notification (link down/up detection): poisons routes
  // through the port and triggers re-advertisement. Runs on the endpoint
  // nodes' behalf from a global event.
  void OnLinkChange(NodeId a, NodeId b);

  uint64_t total_updates() const;

 private:
  struct Advertisement {
    NodeId origin;
    std::vector<uint32_t> dist;
  };

  void SendUpdates(Node* node);
  void Periodic(NodeId id);
  void TriggerUpdate(Node* node);

  Network* const net_;
  const Time period_;
};

}  // namespace unison

#endif  // UNISON_SRC_NET_ROUTING_H_
