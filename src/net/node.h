// Simulated nodes. A node is a host, a switch, or both (torus nodes forward
// and run applications): it owns its devices, its TCP endpoints, and — when
// distance-vector routing is enabled — its routing table. All node state is
// confined to the node's LP.
#ifndef UNISON_SRC_NET_NODE_H_
#define UNISON_SRC_NET_NODE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/time.h"
#include "src/net/link.h"
#include "src/net/packet.h"

namespace unison {

class Network;
class TcpSender;
class TcpReceiver;
class DvState;

struct NodeStats {
  uint64_t forwarded = 0;
  uint64_t delivered = 0;
  uint64_t no_route = 0;
  uint64_t ttl_expired = 0;
};

class Node {
 public:
  Node(Network* net, NodeId id);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  Device* AddDevice(NodeId peer, uint64_t bps, Time delay, std::unique_ptr<Queue> queue);
  Device* device(uint32_t port) { return devices_[port].get(); }
  uint32_t num_ports() const { return static_cast<uint32_t>(devices_.size()); }

  // Port of the (first, up) device whose peer is `peer`, or -1.
  int FindPortTo(NodeId peer) const;

  // Entry point for packets arriving from a link.
  void Receive(Packet pkt);

  // Routes and transmits a locally originated packet.
  void SendFromLocal(Packet pkt);

  // --- TCP endpoints ---
  TcpSender* AddSender(uint32_t flow_id, std::unique_ptr<TcpSender> sender);
  TcpSender* FindSender(uint32_t flow_id);
  // Receivers normally instantiate lazily on the first data segment; a fork
  // pre-installs captured ones so their cumulative-ack state carries over.
  TcpReceiver* AddReceiver(uint32_t flow_id, std::unique_ptr<TcpReceiver> receiver);
  // Drops every TCP endpoint. Used by the speculation rollback, which
  // re-creates the captured endpoint set in place (endpoints hold no events —
  // their RTOs live in the FELs, which the rollback restores separately).
  void ClearTcpEndpoints() {
    senders_.clear();
    receivers_.clear();
  }

  // Endpoint maps for snapshot capture. Iteration order is unspecified
  // (unordered_map) — serialization sorts by flow id.
  const std::unordered_map<uint32_t, std::unique_ptr<TcpSender>>& senders() const {
    return senders_;
  }
  const std::unordered_map<uint32_t, std::unique_ptr<TcpReceiver>>& receivers() const {
    return receivers_;
  }

  // --- Distance-vector routing state (installed by DistanceVectorRouting) ---
  DvState* dv() { return dv_.get(); }
  void set_dv(std::unique_ptr<DvState> dv);

  const NodeStats& stats() const { return stats_; }
  void set_stats(const NodeStats& stats) { stats_ = stats; }

 private:
  // Chooses the egress port for `pkt`, or -1 when unroutable.
  int Route(const Packet& pkt) const;
  void Deliver(Packet pkt);

  Network* const net_;
  const NodeId id_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<uint32_t, std::unique_ptr<TcpSender>> senders_;
  std::unordered_map<uint32_t, std::unique_ptr<TcpReceiver>> receivers_;
  std::unique_ptr<DvState> dv_;
  NodeStats stats_;
};

}  // namespace unison

#endif  // UNISON_SRC_NET_NODE_H_
