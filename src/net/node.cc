#include "src/net/node.h"

#include <utility>

#include "src/net/network.h"
#include "src/net/routing.h"
#include "src/net/tcp.h"

namespace unison {
namespace {

// Per-flow ECMP hash: stable for a flow across a node, differing between
// nodes so parallel paths spread. Keyed by the packet's path tag (stable
// flow identity), never the monitor-assigned flow id — see packet.h.
uint32_t FlowHash(uint32_t path_tag, NodeId node) {
  uint64_t x = (static_cast<uint64_t>(path_tag) << 32) | (node * 0x9e3779b9u + 1);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<uint32_t>(x);
}

}  // namespace

Node::Node(Network* net, NodeId id) : net_(net), id_(id) {}
Node::~Node() = default;

Device* Node::AddDevice(NodeId peer, uint64_t bps, Time delay, std::unique_ptr<Queue> queue) {
  const uint32_t port = static_cast<uint32_t>(devices_.size());
  devices_.push_back(
      std::make_unique<Device>(net_, id_, port, peer, bps, delay, std::move(queue)));
  return devices_.back().get();
}

int Node::FindPortTo(NodeId peer) const {
  for (uint32_t p = 0; p < devices_.size(); ++p) {
    if (devices_[p]->peer() == peer && devices_[p]->up()) {
      return static_cast<int>(p);
    }
  }
  return -1;
}

int Node::Route(const Packet& pkt) const {
  if (dv_ != nullptr) {
    const int32_t port = dv_->port[pkt.dst];
    return port >= 0 && devices_[port]->up() ? port : -1;
  }
  return net_->routing().Port(id_, pkt.dst, FlowHash(pkt.path_tag, id_));
}

void Node::Receive(Packet pkt) {
  if (pkt.dst == id_) {
    Deliver(std::move(pkt));
    return;
  }
  if (pkt.ttl == 0) {
    ++stats_.ttl_expired;
    return;
  }
  --pkt.ttl;
  const int port = Route(pkt);
  if (port < 0) {
    ++stats_.no_route;
    return;
  }
  ++stats_.forwarded;
  devices_[port]->Send(std::move(pkt));
}

void Node::SendFromLocal(Packet pkt) {
  if (pkt.dst == id_) {
    Deliver(std::move(pkt));  // Loopback.
    return;
  }
  const int port = Route(pkt);
  if (port < 0) {
    ++stats_.no_route;
    return;
  }
  devices_[port]->Send(std::move(pkt));
}

void Node::Deliver(Packet pkt) {
  ++stats_.delivered;
  switch (pkt.kind) {
    case PacketKind::kControl:
      if (net_->dv_routing() != nullptr) {
        net_->dv_routing()->OnControl(this, pkt);
      }
      return;
    case PacketKind::kUdp:
      // Datagrams need no endpoint object: account and done.
      net_->flow_monitor().AddRxBytes(pkt.flow_id, pkt.payload, net_->sim().Now());
      return;
    case PacketKind::kTcpAck: {
      auto it = senders_.find(pkt.flow_id);
      if (it != senders_.end()) {
        it->second->OnAck(pkt);
      }
      return;
    }
    case PacketKind::kTcpData: {
      auto it = receivers_.find(pkt.flow_id);
      if (it == receivers_.end()) {
        // Receivers are instantiated on the first data segment; no handshake
        // is modeled (connections are pre-established, as in the paper's
        // workloads).
        it = receivers_
                 .emplace(pkt.flow_id,
                          std::make_unique<TcpReceiver>(net_, this, pkt.flow_id, pkt.src))
                 .first;
      }
      it->second->OnData(pkt);
      return;
    }
  }
}

TcpSender* Node::AddSender(uint32_t flow_id, std::unique_ptr<TcpSender> sender) {
  TcpSender* const raw = sender.get();
  senders_.emplace(flow_id, std::move(sender));
  return raw;
}

TcpSender* Node::FindSender(uint32_t flow_id) {
  auto it = senders_.find(flow_id);
  return it == senders_.end() ? nullptr : it->second.get();
}

TcpReceiver* Node::AddReceiver(uint32_t flow_id, std::unique_ptr<TcpReceiver> receiver) {
  TcpReceiver* const raw = receiver.get();
  receivers_.emplace(flow_id, std::move(receiver));
  return raw;
}

void Node::set_dv(std::unique_ptr<DvState> dv) { dv_ = std::move(dv); }

}  // namespace unison
