#include "src/sched/combining_barrier.h"

#include <algorithm>
#include <vector>

namespace unison {

CombiningBarrier::CombiningBarrier(uint32_t parties) : parties_(parties) {
  if (parties_ <= 1) {
    return;  // Single party: Arrive never touches the tree.
  }
  // Build the tree bottom-up: leaves first, then each level's parents, so a
  // node's children occupy a contiguous run of the previous level and
  // child -> parent indices are pure arithmetic.
  uint32_t level_size = (parties_ + kFanIn - 1) / kFanIn;
  std::vector<uint32_t> level_sizes{level_size};
  while (level_size > 1) {
    level_size = (level_size + kFanIn - 1) / kFanIn;
    level_sizes.push_back(level_size);
  }
  num_nodes_ = 0;
  for (uint32_t n : level_sizes) {
    num_nodes_ += n;
  }
  nodes_ = std::make_unique<Node[]>(num_nodes_);

  uint32_t level_base = 0;
  uint32_t below = parties_;  // Children feeding the current level.
  for (size_t level = 0; level < level_sizes.size(); ++level) {
    const uint32_t count = level_sizes[level];
    const uint32_t parent_base = level_base + count;
    for (uint32_t i = 0; i < count; ++i) {
      Node& node = nodes_[level_base + i];
      node.arity = std::min(kFanIn, below - i * kFanIn);
      node.remaining.store(node.arity, std::memory_order_relaxed);
      if (level + 1 < level_sizes.size()) {
        node.parent = static_cast<int32_t>(parent_base + i / kFanIn);
        node.parent_slot = i % kFanIn;
      }
    }
    level_base = parent_base;
    below = count;
  }
}

void CombiningBarrier::Arrive(uint32_t party, int64_t min_ps, uint64_t count,
                              uint32_t flags) {
  if (parties_ <= 1) {
    result_min_ = min_ps;
    result_count_ = count;
    result_flags_ = flags;
    generation_.fetch_add(1, std::memory_order_release);
    return;
  }
  // The generation must be read before the arrival is signalled: once the
  // fetch_sub lands, the root may complete and bump generation_ at any time,
  // and a stale read taken after that bump would wait for a generation that
  // already passed.
  const uint32_t gen = generation_.load(std::memory_order_acquire);
  Node* node = &nodes_[party / kFanIn];
  uint32_t slot = party % kFanIn;
  for (;;) {
    Slot& s = node->slots[slot];
    s.min_ps = min_ps;
    s.count = count;
    s.flags = flags;
    // acq_rel: the release half publishes the slot write above; the acquire
    // half (completed by the release sequence on `remaining`) gives the last
    // arriver visibility of every sibling's slot.
    if (node->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      Wait(gen);
      return;
    }
    // Last arriver at this node: combine the children and carry the partial
    // result one level up. Re-arming `remaining` here is safe — no party can
    // revisit this node before the root releases the generation, which
    // happens strictly after this climb.
    int64_t m = INT64_MAX;
    uint64_t c = 0;
    uint32_t f = 0;
    for (uint32_t i = 0; i < node->arity; ++i) {
      m = std::min(m, node->slots[i].min_ps);
      c += node->slots[i].count;
      f |= node->slots[i].flags;
    }
    node->remaining.store(node->arity, std::memory_order_relaxed);
    if (node->parent < 0) {
      // Root completed: publish the reduction, retune the spin budget, and
      // release everyone with one broadcast.
      result_min_ = m;
      result_count_ = c;
      result_flags_ = f;
      AdaptSpin();
      generation_.fetch_add(1, std::memory_order_release);
      generation_.notify_all();
      return;
    }
    min_ps = m;
    count = c;
    flags = f;
    slot = node->parent_slot;
    node = &nodes_[node->parent];
  }
}

void CombiningBarrier::Wait(uint32_t gen) {
  const uint32_t budget = spin_budget_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < budget; ++i) {
    if (generation_.load(std::memory_order_acquire) != gen) {
      return;
    }
  }
  if (generation_.load(std::memory_order_acquire) == gen) {
    parks_.fetch_add(1, std::memory_order_relaxed);
    do {
      generation_.wait(gen, std::memory_order_acquire);
    } while (generation_.load(std::memory_order_acquire) == gen);
  }
}

void CombiningBarrier::AdaptSpin() {
  const uint64_t total = parks_.load(std::memory_order_relaxed);
  const uint64_t delta = total - last_parks_;
  last_parks_ = total;
  uint32_t budget = spin_budget_.load(std::memory_order_relaxed);
  if (delta * 2 >= parties_) {
    // Most waiters parked anyway (oversubscribed host or heavy phase skew):
    // the spin is wasted burn before an inevitable futex wait.
    budget = std::max(kMinSpin, budget / 2);
  } else if (delta == 0 && budget < kMaxSpin) {
    // Everyone made it by spinning: a longer spin absorbs slightly larger
    // skew before anyone pays a syscall.
    budget = std::min(kMaxSpin, budget * 2);
  }
  spin_budget_.store(budget, std::memory_order_relaxed);
}

}  // namespace unison
