#include "src/sched/lpt.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace unison {

std::vector<uint32_t> SortByCostDescending(const std::vector<uint64_t>& cost) {
  std::vector<uint32_t> order(cost.size());
  std::iota(order.begin(), order.end(), 0);
  // Explicit (cost desc, id asc) key instead of a stable sort over the input
  // order: the tie-break is then a property of the values, not of the caller
  // passing id order or of any library's stable_sort implementation — the
  // claim order is bitwise-identical across platforms whenever costs tie.
  std::sort(order.begin(), order.end(), [&cost](uint32_t a, uint32_t b) {
    return cost[a] != cost[b] ? cost[a] > cost[b] : a < b;
  });
  return order;
}

uint64_t ListScheduleMakespan(const std::vector<uint64_t>& cost,
                              const std::vector<uint32_t>& order, uint32_t workers,
                              std::vector<uint32_t>* assignment) {
  if (assignment != nullptr) {
    assignment->assign(cost.size(), 0);
  }
  // Min-heap of (finish_time, worker).
  using Slot = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> idle;
  for (uint32_t w = 0; w < workers; ++w) {
    idle.emplace(0, w);
  }
  uint64_t makespan = 0;
  for (uint32_t job : order) {
    auto [t, w] = idle.top();
    idle.pop();
    t += cost[job];
    makespan = std::max(makespan, t);
    if (assignment != nullptr) {
      (*assignment)[job] = w;
    }
    idle.emplace(t, w);
  }
  return makespan;
}

namespace {

void Search(const std::vector<uint64_t>& cost, size_t i, std::vector<uint64_t>& load,
            uint64_t current, uint64_t& best) {
  if (current >= best) {
    return;  // Prune: this branch cannot improve.
  }
  if (i == cost.size()) {
    best = current;
    return;
  }
  for (size_t w = 0; w < load.size(); ++w) {
    load[w] += cost[i];
    Search(cost, i + 1, load, std::max(current, load[w]), best);
    load[w] -= cost[i];
    if (load[w] == 0) {
      break;  // Symmetry: first empty worker is equivalent to the rest.
    }
  }
}

}  // namespace

uint64_t OptimalMakespan(const std::vector<uint64_t>& cost, uint32_t workers) {
  // Start from the LPT solution as the upper bound.
  uint64_t best = ListScheduleMakespan(cost, SortByCostDescending(cost), workers);
  std::vector<uint64_t> load(workers, 0);
  // Branch on jobs in descending order for stronger pruning.
  std::vector<uint64_t> sorted = cost;
  std::sort(sorted.rbegin(), sorted.rend());
  Search(sorted, 0, load, 0, best);
  return best;
}

}  // namespace unison
