// A team of persistent workers that execute one body function in lockstep.
//
// The calling thread participates as worker 0, so a team of N uses N-1 OS
// threads. Kernels hand the team their whole round loop once; phase
// synchronization inside the loop is the kernel's job (SpinBarrier).
#ifndef UNISON_SRC_SCHED_THREAD_POOL_H_
#define UNISON_SRC_SCHED_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace unison {

class WorkerTeam {
 public:
  explicit WorkerTeam(uint32_t parties);
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  uint32_t parties() const { return parties_; }

  // Runs body(worker_id) on all workers, the caller included as id 0.
  // Returns when every worker has finished. Not reentrant.
  void Run(std::function<void(uint32_t)> body);

 private:
  void Loop(uint32_t id);

  const uint32_t parties_;
  std::function<void(uint32_t)> body_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> done_{0};
  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> threads_;
};

}  // namespace unison

#endif  // UNISON_SRC_SCHED_THREAD_POOL_H_
