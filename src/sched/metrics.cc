#include "src/sched/metrics.h"

namespace unison {

void EstimateByPendingEvents(const std::vector<std::unique_ptr<Lp>>& lps, Time window,
                             std::vector<uint64_t>* cost) {
  cost->resize(lps.size());
  for (size_t i = 0; i < lps.size(); ++i) {
    (*cost)[i] = lps[i]->fel().CountBefore(window, kPendingCountCap);
  }
}

}  // namespace unison
