// Flat (centralized) synchronization primitives, kept as the baseline the
// combining tree is measured against.
//
// The round kernels no longer use these on their phase path — they arrive at
// a CombiningBarrier (src/sched/combining_barrier.h), whose tree pass fuses
// the barrier with the window min-reduction. SpinBarrier survives as the flat
// contender in bench_round_sync and AtomicTimeMin as the reference
// implementation the CombiningBarrier equivalence tests fold against.
//
// SpinBarrier is a centralized sense-reversing spin barrier built on C++20
// atomic wait/notify: waiters block in the kernel futex after a short spin,
// which keeps it cheap when threads are balanced and polite when they are
// not, or when the host has fewer cores than parties.
#ifndef UNISON_SRC_SCHED_BARRIER_SYNC_H_
#define UNISON_SRC_SCHED_BARRIER_SYNC_H_

#include <atomic>
#include <cstdint>

namespace unison {

class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t parties) : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  // Blocks until all parties have arrived. The last arriver releases the
  // rest and resets the barrier for reuse.
  void Arrive() {
    const uint32_t gen = generation_.load(std::memory_order_acquire);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      generation_.notify_all();
      return;
    }
    // Brief spin before parking: phase imbalance is usually microseconds.
    for (int i = 0; i < 64; ++i) {
      if (generation_.load(std::memory_order_acquire) != gen) {
        return;
      }
    }
    while (generation_.load(std::memory_order_acquire) == gen) {
      generation_.wait(gen, std::memory_order_acquire);
    }
  }

 private:
  const uint32_t parties_;
  std::atomic<uint32_t> remaining_;
  std::atomic<uint32_t> generation_{0};
};

// Atomic min-reduction over Time values encoded as int64 picoseconds, used by
// the window-update phase to combine per-thread partial minima without locks.
class AtomicTimeMin {
 public:
  void Reset() { value_.store(INT64_MAX, std::memory_order_relaxed); }

  void Update(int64_t candidate) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (candidate < cur &&
           !value_.compare_exchange_weak(cur, candidate, std::memory_order_acq_rel)) {
    }
  }

  int64_t Get() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<int64_t> value_{INT64_MAX};
};

}  // namespace unison

#endif  // UNISON_SRC_SCHED_BARRIER_SYNC_H_
