// Combining-tree barrier with a fused reduction riding the arrival pass.
//
// The flat SpinBarrier funnels every arrival through one generation word and
// the window update through a second global CAS line (AtomicTimeMin), so each
// phase costs P round-trips on two contended cache lines. Here arrivals climb
// a fan-in-4 tree of cache-line-aligned nodes instead: each party writes its
// partial reduction — {min next-event timestamp, event count, stop flags} —
// into its own padded leaf slot, the last arriver at each node combines its
// children and carries the partial result upward, and the party that completes
// the root publishes the fully reduced values and releases everyone with a
// single generation broadcast. One tree traversal per phase replaces the
// three separate global atomics (barrier word, AtomicTimeMin, stop check) the
// round kernels used to hit, and contention per cache line is bounded by the
// fan-in instead of growing with P.
//
// All three reduction operators (min over int64, sum over uint64, bitwise or)
// are associative and commutative, so the tree combine is bit-identical to
// the flat CAS fold regardless of arrival order — the determinism tests hold
// with no caveats.
//
// The pre-park spin is adaptive: the root completer compares the number of
// futex parks in the finished generation against the party count and resizes
// a shared spin budget (halve when most waiters parked anyway, grow when
// everyone made it by spinning). Cumulative parks are exposed so the trace
// layer can report per-round park deltas.
#ifndef UNISON_SRC_SCHED_COMBINING_BARRIER_H_
#define UNISON_SRC_SCHED_COMBINING_BARRIER_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace unison {

class CombiningBarrier {
 public:
  static constexpr uint32_t kFanIn = 4;
  // Reduced-flags bits. kStopFlag ORs the parties' stop votes so the
  // coordinator's stop check needs no extra shared load. kSpecMissFlag rides
  // the same reduction: a worker that detected a causality violation while a
  // speculative window is active (an inbound arrival at or below an LP's
  // already-advanced clock) ORs it into its end-of-round arrival, and the
  // coordinator's next RoundSync::ComputeWindow latches the miss.
  static constexpr uint32_t kStopFlag = 1u << 0;
  static constexpr uint32_t kSpecMissFlag = 1u << 1;

  // Adaptive spin-budget bounds (iterations of the pre-park generation poll).
  static constexpr uint32_t kMinSpin = 16;
  static constexpr uint32_t kMaxSpin = 4096;
  static constexpr uint32_t kInitialSpin = 64;

  explicit CombiningBarrier(uint32_t parties);

  CombiningBarrier(const CombiningBarrier&) = delete;
  CombiningBarrier& operator=(const CombiningBarrier&) = delete;

  // Plain barrier crossing: contributes the identity of every reduction.
  void Arrive(uint32_t party) { Arrive(party, INT64_MAX, 0, 0); }

  // Barrier crossing that contributes {min_ps, count, flags} to this
  // generation's reduction. Blocks until all parties have arrived; on return
  // the reduced_*() accessors hold the generation's combined values, which
  // stay valid until this party arrives for the next generation (nobody can
  // complete a newer generation without this party's arrival).
  void Arrive(uint32_t party, int64_t min_ps, uint64_t count, uint32_t flags);

  // Reduction results of the last completed generation.
  int64_t reduced_min() const { return result_min_; }
  uint64_t reduced_count() const { return result_count_; }
  uint32_t reduced_flags() const { return result_flags_; }

  uint32_t parties() const { return parties_; }
  // Cumulative futex parks across all generations (trace/bench counter).
  uint64_t parks() const { return parks_.load(std::memory_order_relaxed); }
  // Current adaptive pre-park spin budget (bench/test visibility).
  uint32_t spin_budget() const {
    return spin_budget_.load(std::memory_order_relaxed);
  }

 private:
  // One tree node: the arrival counter and child-slot lines are padded so the
  // only line shared between sibling subtrees is the node's own control line,
  // and a party's partial-reduction store never false-shares with another
  // leaf's. Layout: one control line + kFanIn slot lines per node.
  struct alignas(64) Slot {
    int64_t min_ps;
    uint64_t count;
    uint32_t flags;
  };
  struct alignas(64) Node {
    std::atomic<uint32_t> remaining{0};
    uint32_t arity = 0;        // Children actually attached (<= kFanIn).
    int32_t parent = -1;       // Node index, -1 at the root.
    uint32_t parent_slot = 0;  // This node's slot index in the parent.
    Slot slots[kFanIn];
  };

  void Wait(uint32_t gen);
  void AdaptSpin();

  const uint32_t parties_;
  uint32_t num_nodes_ = 0;
  std::unique_ptr<Node[]> nodes_;

  // Reduced results of the last completed generation. Written only by the
  // root completer before it bumps generation_ (release); read by the other
  // parties after they observe the bump (acquire) — and by the completer
  // itself in program order — so plain fields suffice.
  int64_t result_min_ = INT64_MAX;
  uint64_t result_count_ = 0;
  uint32_t result_flags_ = 0;
  // Parks observed when the spin budget was last adapted. Root-completer
  // private: successive completers are ordered by the barrier itself.
  uint64_t last_parks_ = 0;

  // The broadcast word lives on its own line: every waiter polls it, and the
  // tree exists precisely so that polling traffic never lands on the lines
  // arrivals are writing.
  alignas(64) std::atomic<uint32_t> generation_{0};
  std::atomic<uint32_t> spin_budget_{kInitialSpin};
  std::atomic<uint64_t> parks_{0};
};

}  // namespace unison

#endif  // UNISON_SRC_SCHED_COMBINING_BARRIER_H_
