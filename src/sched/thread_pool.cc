#include "src/sched/thread_pool.h"

#include <utility>

namespace unison {

WorkerTeam::WorkerTeam(uint32_t parties) : parties_(parties) {
  threads_.reserve(parties_ - 1);
  for (uint32_t id = 1; id < parties_; ++id) {
    threads_.emplace_back([this, id] { Loop(id); });
  }
}

WorkerTeam::~WorkerTeam() {
  shutdown_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  epoch_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void WorkerTeam::Run(std::function<void(uint32_t)> body) {
  body_ = std::move(body);
  done_.store(0, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  epoch_.notify_all();
  body_(0);
  // Wait for the other workers.
  uint32_t done = done_.load(std::memory_order_acquire);
  while (done != parties_ - 1) {
    done_.wait(done, std::memory_order_acquire);
    done = done_.load(std::memory_order_acquire);
  }
}

void WorkerTeam::Loop(uint32_t id) {
  uint64_t seen = 0;
  for (;;) {
    uint64_t e = epoch_.load(std::memory_order_acquire);
    while (e == seen) {
      epoch_.wait(e, std::memory_order_acquire);
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    body_(id);
    done_.fetch_add(1, std::memory_order_acq_rel);
    done_.notify_all();
  }
}

}  // namespace unison
