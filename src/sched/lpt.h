// Longest-processing-time-first list scheduling (§4.3).
//
// Assigning LPs to identical cores to minimize the makespan is the multiway
// number partitioning problem (NP-hard). Unison uses Graham's LPT rule —
// sort jobs by descending size, each idle worker takes the next one — with a
// worst-case approximation ratio of 4/3 − 1/(3m). At runtime the "each idle
// worker takes the next" step is a single fetch_add on a shared cursor over
// the sorted order, which is why scheduling costs O(n log n) for the sort and
// nothing per claim.
//
// The offline helpers here are used by the parallel cost model and by the
// property tests that check the 4/3 bound against brute force.
#ifndef UNISON_SRC_SCHED_LPT_H_
#define UNISON_SRC_SCHED_LPT_H_

#include <cstdint>
#include <vector>

namespace unison {

// Produces job indices sorted by (cost descending, id ascending). The
// explicit id tie-break makes the schedule deterministic across platforms
// and standard-library versions whenever costs tie.
std::vector<uint32_t> SortByCostDescending(const std::vector<uint64_t>& cost);

// Simulates list scheduling of jobs (taken in `order`) on `workers` identical
// machines; returns the makespan and optionally the per-job worker
// assignment.
uint64_t ListScheduleMakespan(const std::vector<uint64_t>& cost,
                              const std::vector<uint32_t>& order, uint32_t workers,
                              std::vector<uint32_t>* assignment = nullptr);

// Exact optimal makespan by branch and bound; exponential, tests only.
uint64_t OptimalMakespan(const std::vector<uint64_t>& cost, uint32_t workers);

}  // namespace unison

#endif  // UNISON_SRC_SCHED_LPT_H_
