// Scheduling metrics (§4.3): cheap estimates of each LP's processing time in
// the upcoming round. The LPT policy only needs the partial order of job
// sizes, so both heuristics work despite being approximate:
//
//  - ByPendingEventCount: events already queued inside the next window. Most
//    packet events are scheduled exactly one lookahead ahead, so they land in
//    the next round. The count uses the FEL's heap-order-aware traversal and
//    saturates at kPendingCountCap — LPT only needs the partial order of LP
//    sizes, and any LP with >= the cap pending is simply "huge" — so a
//    resort no longer scans every queued event in the simulation.
//  - ByLastRoundTime: measured processing time of the previous round.
//    Constant time, and more accurate thanks to the temporal locality of
//    network simulation (Fig. 13a); the default when a high-resolution clock
//    is available.
#ifndef UNISON_SRC_SCHED_METRICS_H_
#define UNISON_SRC_SCHED_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/time.h"
#include "src/kernel/lp.h"

namespace unison {

// Saturation bound for per-LP pending-event counts (see file comment).
inline constexpr size_t kPendingCountCap = 1024;

// Fills `cost[i]` with the estimate for LP i.
//  - metric_is_pending: use FEL counts below `window`.
//  - otherwise: copy `last_round_ns`.
void EstimateByPendingEvents(const std::vector<std::unique_ptr<Lp>>& lps, Time window,
                             std::vector<uint64_t>* cost);

}  // namespace unison

#endif  // UNISON_SRC_SCHED_METRICS_H_
