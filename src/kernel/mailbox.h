// Mailboxes: lock-free inter-LP event transfer (§5.1).
//
// Before the simulation starts, each LP creates an outbox for every LP it has
// a cut link to. During the processing phase, only the thread currently
// executing the sender LP appends to an outbox; during the receiving phase,
// only the thread currently executing the target LP drains it. The phase
// barrier between the two provides the happens-before edge, so no atomics or
// locks are needed on the fast path.
//
// Cross-LP events between LPs with no pre-wired channel (possible only after
// dynamic topology changes) fall back to a mutex-protected overflow box; the
// slow path is exercised rarely and re-wired at the next topology change.
#ifndef UNISON_SRC_KERNEL_MAILBOX_H_
#define UNISON_SRC_KERNEL_MAILBOX_H_

#include <mutex>
#include <vector>

#include "src/core/event.h"

namespace unison {

struct Outbox {
  LpId target = 0;
  std::vector<Event> events;
};

// Overflow channel for un-wired sender→target pairs. One per target LP.
class OverflowBox {
 public:
  void Push(Event ev) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(ev));
  }

  // Moves all pending events into `out` (appending) and clears the box while
  // keeping its capacity, so a steady-state drain cycle allocates nothing
  // once both buffers have grown to their high-water mark. Called by the
  // target LP's thread in the receiving phase; the caller owns `out` (the
  // LP's reusable scratch buffer) so no vector is constructed per drain.
  void DrainInto(std::vector<Event>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    out->reserve(out->size() + events_.size());
    for (Event& ev : events_) {
      out->push_back(std::move(ev));
    }
    events_.clear();  // Keeps capacity for the next overflow burst.
  }

  bool EmptyUnlocked() const { return events_.empty(); }

 private:
  std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_MAILBOX_H_
