#include "src/kernel/sequential.h"

#include <algorithm>

namespace unison {

RunResult SequentialKernel::Run(Time stop_time) {
  // The sequential kernel is always set up with the single-LP partition; a
  // larger partition would still execute correctly but pay mailbox overhead
  // for nothing.
  Lp* const lp = lps_[0].get();
  // Nothing here is tunable (no rounds, no pool), but sampling stamps the
  // window's tuning epoch into the summary like every other kernel; the
  // migration apply is a no-op in the single-executor domain yet keeps the
  // provenance fields (migrations, ownership epoch) uniform across kernels.
  tuning_ = SampleTuning(1, /*parties_tunable=*/false);
  ApplyPendingMigrations();
  BeginWindow();
  const bool profiling = profiler_ != nullptr && profiler_->enabled;
  if (profiling) {
    profiler_->BeginRun(1);
  }
  if (trace_ != nullptr && trace_->enabled) {
    trace_->BeginRun("sequential", 1, num_lps());
  }
  const uint64_t t0 = Profiler::NowNs();

  processed_events_ = 0;
  RunReason reason = RunReason::kStopRequested;
  while (!stop_requested_) {
    const Time npub = public_lp_->fel().NextTimestamp();
    const Time nloc = lp->fel().NextTimestamp();
    const Time next = std::min(npub, nloc);
    if (next.IsMax()) {
      reason = RunReason::kExhausted;
      break;
    }
    if (next >= stop_time) {
      reason = RunReason::kWindowReached;
      break;
    }
    if (npub <= nloc) {
      // Global events run before node events with the same timestamp, the
      // same order the parallel kernels' phase structure produces.
      processed_events_ += RunGlobalEvents(npub, stop_time);
    } else {
      processed_events_ += lp->ProcessUntil(std::min(npub, stop_time));
    }
  }
  const uint64_t count = processed_events_;

  const uint64_t wall_ns = Profiler::NowNs() - t0;
  if (profiling) {
    auto& stats = profiler_->executor(0);
    stats.processing_ns = wall_ns;
    stats.events = count;
  }
  return FinishRun("sequential", 1, wall_ns, stop_time, reason);
}

}  // namespace unison
