#include "src/kernel/kernel.h"

#include <utility>

namespace unison {

void Kernel::Setup(const TopoGraph& graph, const Partition& partition) {
  graph_ = &graph;
  partition_ = partition;
  lps_.clear();
  lps_.reserve(partition_.num_lps);
  for (LpId i = 0; i < partition_.num_lps; ++i) {
    lps_.push_back(std::make_unique<Lp>(i, config_.deterministic));
  }
  public_lp_ = std::make_unique<Lp>(kPublicLp, config_.deterministic);
  processed_events_ = 0;
  rounds_ = 0;
  stop_requested_ = false;
  WireMailboxes();
}

void Kernel::ScheduleOnNode(NodeId node, Time abs, EventFn fn) {
  const LpId target_id = partition_.lp_of_node[node];
  Lp* const target = lps_[target_id].get();
  Lp* const cur = Lp::Current();
  if (cur == nullptr || cur == target) {
    // Setup time (single-threaded) or intra-LP: direct FEL insert.
    target->ScheduleLocal(abs, node, std::move(fn));
  } else if (cur == public_lp_.get()) {
    // Global-event phase: the main thread runs alone, so direct insertion
    // into any LP is safe ("global events have to be handled just once").
    target->Insert(Event{cur->MakeKey(abs), node, std::move(fn)});
  } else {
    ScheduleRemote(cur, target_id, Event{cur->MakeKey(abs), node, std::move(fn)});
  }
}

void Kernel::ScheduleGlobal(Time abs, EventFn fn) {
  Lp* const cur = Lp::Current();
  // Global events are normally scheduled before the run or from another
  // global event (§4.2), both single-threaded contexts. Scheduling from an
  // LP event is tolerated but serialized: the public FEL is shared.
  if (cur != nullptr && cur != public_lp_.get()) {
    std::lock_guard<std::mutex> lock(public_mu_);
    public_lp_->fel().Push(Event{cur->MakeKey(abs), kNoNode, std::move(fn)});
    return;
  }
  Lp* const sender = cur != nullptr ? cur : public_lp_.get();
  public_lp_->fel().Push(Event{sender->MakeKey(abs), kNoNode, std::move(fn)});
}

void Kernel::NotifyTopologyChanged() {
  FinalizePartition(*graph_, &partition_);
  WireMailboxes();
}

void Kernel::ScheduleRemote(Lp* from, LpId target, Event ev) {
  Outbox* const box = from->FindOutbox(target);
  if (box != nullptr) {
    box->events.push_back(std::move(ev));
  } else {
    // No wired channel (possible after a dynamic topology change until the
    // next rewire): fall back to the locked overflow box.
    lps_[target]->overflow().Push(std::move(ev));
  }
}

void Kernel::WireMailboxes() {
  for (const CutEdge& edge : partition_.cut_edges) {
    for (const auto& [src, dst] : {std::pair{edge.a, edge.b}, std::pair{edge.b, edge.a}}) {
      Lp* const from = lps_[src].get();
      if (from->FindOutbox(dst) == nullptr) {
        lps_[dst]->AddInbox(from->AddOutbox(dst));
      }
    }
  }
}

Time Kernel::ComputeLbts() const {
  Time min_next = Time::Max();
  for (const auto& lp : lps_) {
    min_next = std::min(min_next, lp->fel().NextTimestamp());
  }
  const Time npub = public_lp_->fel().NextTimestamp();
  if (min_next.IsMax() || partition_.lookahead.IsMax()) {
    return npub;
  }
  return std::min(npub, min_next + partition_.lookahead);
}

uint64_t Kernel::RunGlobalEvents(Time upto, Time stop) {
  if (upto.IsMax()) {
    return public_lp_->ProcessUntil(stop);
  }
  const Time bound = std::min(stop, upto + Time::Picoseconds(1));
  return public_lp_->ProcessUntil(bound);
}

void Kernel::FinishRun(const char* kernel_name, uint32_t executors,
                       uint64_t wall_ns) {
  run_summary_ = RunSummary{};
  run_summary_.kernel = kernel_name;
  run_summary_.executors = executors;
  run_summary_.lps = num_lps();
  run_summary_.rounds = rounds_;
  run_summary_.events = processed_events_;
  run_summary_.wall_ns = wall_ns;
  if (profiler_ != nullptr && profiler_->enabled) {
    run_summary_.processing_ns = profiler_->TotalProcessingNs();
    run_summary_.synchronization_ns = profiler_->TotalSyncNs();
    run_summary_.messaging_ns = profiler_->TotalMessagingNs();
  }
  if (trace_ != nullptr && trace_->enabled) {
    trace_->EndRun(run_summary_, profiler_);
  }
}

}  // namespace unison
