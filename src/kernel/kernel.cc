#include "src/kernel/kernel.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace unison {

const char* RunReasonName(RunReason reason) {
  switch (reason) {
    case RunReason::kWindowReached:
      return "window";
    case RunReason::kExhausted:
      return "exhausted";
    case RunReason::kStopRequested:
      return "stop";
  }
  return "unknown";
}

void FatalConfigError(const std::string& message) {
  std::fprintf(stderr, "unison: %s\n", message.c_str());
  std::abort();
}

std::string KernelConfig::Validate() const {
  if (threads == 0) {
    return "KernelConfig.threads must be >= 1 (0 workers cannot make "
           "progress; use threads=1 for a single-executor run)";
  }
  if (type == KernelType::kHybrid && ranks < 1) {
    return "KernelConfig.ranks must be >= 1 for the hybrid kernel (each "
           "rank models one simulated host)";
  }
  if (sched_period > kMaxSchedPeriod) {
    return "KernelConfig.sched_period is implausibly large (> 2^20 rounds "
           "between re-sorts); it counts rounds, not time — use 0 for the "
           "ceil(log2 n) default";
  }
  if (affinity != AffinityPolicy::kNone &&
      affinity != AffinityPolicy::kCompact &&
      affinity != AffinityPolicy::kScatter) {
    return "KernelConfig.affinity must be one of none|compact|scatter";
  }
  return {};
}

void Kernel::Setup(const TopoGraph& graph, const Partition& partition) {
  graph_ = &graph;
  partition_ = partition;
  lps_.clear();
  lps_.reserve(partition_.num_lps);
  for (LpId i = 0; i < partition_.num_lps; ++i) {
    lps_.push_back(std::make_unique<Lp>(i, config_.deterministic));
  }
  public_lp_ = std::make_unique<Lp>(kPublicLp, config_.deterministic);
  processed_events_ = 0;
  rounds_ = 0;
  session_now_ = Time::Zero();
  resume_floor_ = Time::Zero();
  session_events_ = 0;
  session_rounds_ = 0;
  session_windows_ = 0;
  stop_requested_ = false;
  // Trivial single-executor ownership; kernels with real executor domains
  // install theirs right after this base Setup returns.
  pmap_.ResetStrided(partition_.num_lps, 1);
  ownership_movable_ = false;
  applied_rebalance_seq_ = 0;
  window_migrations_ = 0;
  lp_window_cost_ns_.assign(partition_.num_lps, 0);
  if (trace_ != nullptr) {
    trace_->BeginSession();
  }
  WireMailboxes();
}

void Kernel::BeginWindow() {
  stop_requested_.store(false, std::memory_order_relaxed);
  lp_window_cost_ns_.assign(num_lps(), 0);
}

void Kernel::ApplyPendingMigrations() {
  if (tunables_ != nullptr) {
    const Tunables& live = tunables_->Get();
    if (live.rebalance_seq > applied_rebalance_seq_) {
      pmap_.Stage(live.moves);
      applied_rebalance_seq_ = live.rebalance_seq;
    }
  }
  window_migrations_ = 0;
  if (pmap_.has_staged()) {
    window_migrations_ = pmap_.ApplyStaged();
    if (window_migrations_ > 0) {
      OnOwnershipChanged();
    }
  }
}

void Kernel::ScheduleOnNode(NodeId node, Time abs, EventFn fn) {
  const LpId target_id = partition_.lp_of_node[node];
  Lp* const target = lps_[target_id].get();
  Lp* const cur = Lp::Current();
  if (cur == nullptr || cur == target) {
    // Setup time (single-threaded) or intra-LP: direct FEL insert.
    target->ScheduleLocal(abs, node, std::move(fn));
  } else if (cur == public_lp_.get()) {
    // Global-event phase: the main thread runs alone, so direct insertion
    // into any LP is safe ("global events have to be handled just once").
    target->Insert(Event{cur->MakeKey(abs), node, std::move(fn)});
  } else {
    ScheduleRemote(cur, target_id, Event{cur->MakeKey(abs), node, std::move(fn)});
  }
}

void Kernel::ScheduleGlobal(Time abs, EventFn fn) {
  Lp* const cur = Lp::Current();
  // Global events are normally scheduled before the run or from another
  // global event (§4.2), both single-threaded contexts. Scheduling from an
  // LP event is tolerated but serialized: the public FEL is shared.
  if (cur != nullptr && cur != public_lp_.get()) {
    std::lock_guard<std::mutex> lock(public_mu_);
    public_lp_->fel().Push(Event{cur->MakeKey(abs), kNoNode, std::move(fn)});
    return;
  }
  Lp* const sender = cur != nullptr ? cur : public_lp_.get();
  public_lp_->fel().Push(Event{sender->MakeKey(abs), kNoNode, std::move(fn)});
}

void Kernel::NotifyTopologyChanged() {
  FinalizePartition(*graph_, &partition_);
  WireMailboxes();
}

void Kernel::ScheduleRemote(Lp* from, LpId target, Event ev) {
  Outbox* const box = from->FindOutbox(target);
  if (box != nullptr) {
    box->events.push_back(std::move(ev));
  } else {
    // No wired channel (possible after a dynamic topology change until the
    // next rewire): fall back to the locked overflow box.
    lps_[target]->overflow().Push(std::move(ev));
  }
}

void Kernel::WireMailboxes() {
  for (const CutEdge& edge : partition_.cut_edges) {
    for (const auto& [src, dst] : {std::pair{edge.a, edge.b}, std::pair{edge.b, edge.a}}) {
      Lp* const from = lps_[src].get();
      if (from->FindOutbox(dst) == nullptr) {
        lps_[dst]->AddInbox(from->AddOutbox(dst));
      }
    }
  }
}

Time Kernel::ComputeLbts() const {
  Time min_next = Time::Max();
  for (const auto& lp : lps_) {
    min_next = std::min(min_next, lp->fel().NextTimestamp());
  }
  const Time npub = public_lp_->fel().NextTimestamp();
  if (min_next.IsMax() || partition_.lookahead.IsMax()) {
    return npub;
  }
  return std::min(npub, min_next + partition_.lookahead);
}

uint64_t Kernel::RunGlobalEvents(Time upto, Time stop) {
  if (upto.IsMax()) {
    return public_lp_->ProcessUntil(stop);
  }
  const Time bound = std::min(stop, upto + Time::Picoseconds(1));
  return public_lp_->ProcessUntil(bound);
}

Kernel::WindowTuning Kernel::SampleTuning(uint32_t default_parties,
                                          bool parties_tunable) const {
  WindowTuning t;
  uint32_t period = config_.sched_period;
  uint32_t parties = default_parties;
  AffinityPolicy affinity = config_.affinity;
  if (tunables_ != nullptr) {
    const Tunables& live = tunables_->Get();
    t.epoch = tunables_->epoch();
    if (live.sched_period > 0) {
      period = live.sched_period;
    }
    if (parties_tunable && live.parties > 0) {
      // The config default is also the ceiling: FlowMonitor shards and other
      // per-executor state were sized from it at Finalize.
      parties = std::min(live.parties, default_parties);
    }
    affinity = live.affinity;
  }
  if (period == 0) {
    const uint32_t n = std::max(2u, num_lps());
    period = static_cast<uint32_t>(std::bit_width(n - 1));  // ceil(log2 n)
  }
  t.sched_period = period;
  t.parties = std::max(1u, parties);
  t.affinity = affinity;
  if (tunables_ != nullptr) {
    // No config fallback: speculation is live-plane-only (Network::Finalize
    // seeds the horizon under speculation=auto; the controller revises it).
    t.spec_horizon_ps = tunables_->Get().spec_horizon_ps;
  }
  return t;
}

bool Kernel::BeginSpeculativeWindow() {
  spec_rounds_win_ = 0;
  spec_hits_win_ = 0;
  spec_misses_win_ = 0;
  rollback_ns_win_ = 0;
  if (tuning_.spec_horizon_ps <= 0 || !spec_ckpt_.installed()) {
    return false;
  }
  // Speculation re-executes a stretch after a rollback; without deterministic
  // tie-breaking the re-run could legally diverge, voiding the transparency
  // contract. Infinite lookahead means windows already extend to the global
  // horizon (nothing to speculate past); non-positive lookahead would make
  // the per-LP arrival check ambiguous at t=0 ties.
  if (!config_.deterministic) {
    return false;
  }
  const Time la = partition_.lookahead;
  if (la.IsMax() || la <= Time::Zero()) {
    return false;
  }
  return spec_ckpt_.Capture();
}

void Kernel::NoteSpecAttempt(uint32_t spec_rounds, bool miss) {
  spec_rounds_win_ += spec_rounds;
  if (miss) {
    ++spec_misses_win_;
    const uint64_t t0 = Profiler::NowNs();
    spec_ckpt_.Restore();
    rollback_ns_win_ += Profiler::NowNs() - t0;
  } else {
    spec_hits_win_ += spec_rounds;
  }
}

RunResult Kernel::FinishRun(const char* kernel_name, uint32_t executors,
                            uint64_t wall_ns, Time stop, RunReason reason) {
  // Every kernel reaches here with its executors quiesced (the pool's Run
  // has returned; for the engine kernels that means the combining tree's
  // final reduction released everyone) — the window boundary where sharded
  // per-executor state merges race-free.
  if (window_end_hook_) {
    window_end_hook_();
  }
  run_summary_ = RunSummary{};
  run_summary_.kernel = kernel_name;
  run_summary_.executors = executors;
  run_summary_.lps = num_lps();
  run_summary_.rounds = rounds_;
  run_summary_.events = processed_events_;
  run_summary_.wall_ns = wall_ns;
  run_summary_.window_index = session_windows_;
  run_summary_.window_start_ps = session_now_.ps();
  run_summary_.window_stop_ps = stop.ps();
  run_summary_.reason = RunReasonName(reason);
  run_summary_.forked_from = lineage_;
  run_summary_.tuning_epoch = tuning_.epoch;
  run_summary_.sched_period = tuning_.sched_period;
  run_summary_.parties = tuning_.parties;
  run_summary_.migrations = window_migrations_;
  run_summary_.ownership_epoch = pmap_.epoch();
  run_summary_.spec_rounds = spec_rounds_win_;
  run_summary_.spec_hits = spec_hits_win_;
  run_summary_.spec_misses = spec_misses_win_;
  run_summary_.rollback_ns = rollback_ns_win_;
  if (profiler_ != nullptr && profiler_->enabled) {
    run_summary_.processing_ns = profiler_->TotalProcessingNs();
    run_summary_.synchronization_ns = profiler_->TotalSyncNs();
    run_summary_.messaging_ns = profiler_->TotalMessagingNs();
  }

  // Roll the window into the session. An early stop leaves events below
  // `stop` unexecuted, so it advances neither the session clock nor the
  // resume floor (the floor additionally rewinds to zero: fully conservative
  // restart state for the null-message kernel's channel clocks).
  session_events_ += processed_events_;
  session_rounds_ += rounds_;
  ++session_windows_;
  if (reason == RunReason::kStopRequested) {
    resume_floor_ = Time::Zero();
  } else {
    session_now_ = std::max(session_now_, stop);
    resume_floor_ = session_now_;
  }

  if (trace_ != nullptr && trace_->enabled) {
    trace_->EndRun(run_summary_, profiler_);
  }
  return RunResult{reason, session_now_, processed_events_, rounds_};
}

}  // namespace unison
