// The scheduling facade network models see. It hides which kernel runs the
// simulation — the heart of Unison's user transparency: the same model code
// runs sequentially, under the PDES baselines, under Unison, or distributed,
// by switching only the SimConfig.
#ifndef UNISON_SRC_KERNEL_SIMULATOR_H_
#define UNISON_SRC_KERNEL_SIMULATOR_H_

#include <utility>

#include "src/kernel/kernel.h"

namespace unison {

class Simulator {
 public:
  Simulator() = default;
  explicit Simulator(Kernel* kernel) : kernel_(kernel) {}

  void set_kernel(Kernel* kernel) { kernel_ = kernel; }
  Kernel* kernel() { return kernel_; }

  // Current simulated time (zero during topology/application setup).
  Time Now() const { return kernel_->Now(); }

  // Schedules `fn` after `delay` on the calling LP. Only valid from inside
  // an event; setup code must name a node via ScheduleOnNode.
  void Schedule(Time delay, EventFn fn) {
    Lp* const cur = Lp::Current();
    cur->ScheduleLocal(cur->now() + delay, Lp::CurrentNode(), std::move(fn));
  }

  // Schedules `fn` after `delay` on the LP owning `node`. Routes through a
  // mailbox when the target lives in another LP.
  void ScheduleOnNode(NodeId node, Time delay, EventFn fn) {
    kernel_->ScheduleOnNode(node, Now() + delay, std::move(fn));
  }

  // Schedules a global event at absolute time `abs` on the public LP.
  void ScheduleGlobal(Time abs, EventFn fn) {
    kernel_->ScheduleGlobal(abs, std::move(fn));
  }

  // Tells the kernel the topology changed (link delays, links added or
  // removed); must be called from a global event.
  void NotifyTopologyChanged() { kernel_->NotifyTopologyChanged(); }

  // Requests an early stop at the next safe point.
  void Stop() { kernel_->RequestStop(); }

 private:
  Kernel* kernel_ = nullptr;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_SIMULATOR_H_
