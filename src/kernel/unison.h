// The Unison kernel (§4, §5): fine-grained partition consumed through
// load-adaptive scheduling, executed by a persistent executor pool in
// lock-free rounds.
//
// Each round has four phases separated by barriers (Fig. 7):
//   1. Process events  — workers claim LPs from the scheduler's sorted order
//                        via an atomic cursor (LPT list scheduling) and run
//                        each claimed LP up to the window bound.
//   2. Global events   — worker 0 alone runs public-LP events that fall on
//                        the window edge; topology changes recompute the
//                        lookahead here.
//   3. Receive events  — each worker drains the mailboxes of the LPs it
//                        owns (live partition map, folded onto the window's
//                        worker count) into their FELs.
//   4. Update window   — each worker computes a local min over its owned LP
//                        list and contributes it (with its event count and
//                        stop vote) to the end-of-round barrier's fused
//                        reduction; worker 0 absorbs the tree's result and
//                        derives the next LBTS from Eq. 2 (RoundSync).
//
// The only shared-state mutation on the fast path besides the barrier tree
// is the claim cursor — the min-reduction, event counting, and stop check
// all ride the combining barrier's arrival pass instead of separate global
// atomics. The prologue, P/S/M accounting, and worker threads all come from
// the shared engine (src/kernel/engine/).
#ifndef UNISON_SRC_KERNEL_UNISON_H_
#define UNISON_SRC_KERNEL_UNISON_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "src/kernel/engine/executor_pool.h"
#include "src/kernel/engine/round_sync.h"
#include "src/kernel/kernel.h"
#include "src/sched/combining_barrier.h"

namespace unison {

class UnisonKernel : public Kernel {
 public:
  using Kernel::Kernel;

  void Setup(const TopoGraph& graph, const Partition& partition) override;
  RunResult Run(Time stop_time) override;

  // The ceiling, not the live count: tuning may shrink num_workers_ between
  // windows, but per-executor state sized at Finalize must cover every window.
  uint32_t MaxExecutors() const override {
    return std::max(1u, config_.threads);
  }

  ExecutorPool* executor_pool() override { return active_pool_; }

  uint64_t LiveEvents() const override {
    uint64_t sum = 0;
    for (uint64_t n : worker_events_) {
      sum += n;
    }
    return sum;
  }

 private:
  // Worker 0's start-of-round bookkeeping: window computation, termination
  // check, periodic scheduler re-sort.
  void Prologue();
  void RoundLoop(uint32_t worker);

  uint32_t num_workers_ = 1;
  uint32_t period_ = 1;

  ExecutorPool pool_;    // Threads spawned once at Setup, reused across runs.
  // The pool Run() actually uses: the borrowed external pool when one was
  // lent (Session::Fork), else pool_. Set at Setup.
  ExecutorPool* active_pool_ = nullptr;
  RoundSync sync_{this};
  std::unique_ptr<CombiningBarrier> barrier_;
  std::atomic<uint32_t> claim_{0};

  // Per-worker LP lists for the receive and window-update phases, rebuilt at
  // each window start from the live partition map (owner slot folded modulo
  // the window's live worker count). Phase 1 keeps claiming dynamically —
  // ownership here fixes *responsibility* (drain, min), not the
  // load-adaptive processing order.
  std::vector<std::vector<uint32_t>> owned_lists_;
  std::vector<uint32_t> order_;          // LP ids, scheduler priority order.
  std::vector<uint64_t> last_round_ns_;  // Per-LP ByLastRoundTime estimates.
  std::vector<uint64_t> cost_buf_;
  std::vector<uint64_t> worker_events_;
  bool timing_ = false;  // Collect per-LP wall time this run.
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_UNISON_H_
