// The classic sequential DES kernel (§2.1): one logical process, one future
// event list, events popped in deterministic key order. This is both the
// usability baseline ("ns-3 default") and the correctness oracle every
// parallel kernel is tested against.
#ifndef UNISON_SRC_KERNEL_SEQUENTIAL_H_
#define UNISON_SRC_KERNEL_SEQUENTIAL_H_

#include "src/kernel/kernel.h"

namespace unison {

class SequentialKernel : public Kernel {
 public:
  using Kernel::Kernel;

  RunResult Run(Time stop_time) override;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_SEQUENTIAL_H_
