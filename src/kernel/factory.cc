#include <memory>
#include <string>

#include "src/kernel/barrier.h"
#include "src/kernel/hybrid.h"
#include "src/kernel/kernel.h"
#include "src/kernel/nullmsg.h"
#include "src/kernel/sequential.h"
#include "src/kernel/unison.h"

namespace unison {

std::unique_ptr<Kernel> MakeKernel(const KernelConfig& config) {
  if (std::string error = config.Validate(); !error.empty()) {
    FatalConfigError(error);
  }
  switch (config.type) {
    case KernelType::kSequential:
      return std::make_unique<SequentialKernel>(config);
    case KernelType::kBarrier:
      return std::make_unique<BarrierKernel>(config);
    case KernelType::kNullMessage:
      return std::make_unique<NullMessageKernel>(config);
    case KernelType::kUnison:
      return std::make_unique<UnisonKernel>(config);
    case KernelType::kHybrid:
      return std::make_unique<HybridKernel>(config);
  }
  return nullptr;
}

}  // namespace unison
