#include "src/kernel/barrier.h"

#include <algorithm>

#include "src/kernel/engine/phase_accountant.h"

namespace unison {

void BarrierKernel::Setup(const TopoGraph& graph, const Partition& partition) {
  Kernel::Setup(graph, partition);
  const uint32_t ranks = num_lps();
  // Rank r starts out owning LP r (the classic 1:1 pinning); the rank count
  // stays structural, but which LPs a rank serves is live — migrations
  // re-home LPs across the same rank set at window boundaries.
  pmap_.ResetStrided(ranks, ranks);
  ownership_movable_ = true;
  barrier_ = std::make_unique<CombiningBarrier>(ranks);
  rank_events_.assign(ranks, 0);
  // A borrowed pool keeps its owner's placement; only the kernel's own pool
  // takes this config's affinity.
  active_pool_ = external_pool_ != nullptr ? external_pool_ : &pool_;
  if (active_pool_ == &pool_) {
    pool_.SetPlacement(config_.affinity);
  }
  active_pool_->Ensure(ranks);
}

RunResult BarrierKernel::Run(Time stop_time) {
  const uint32_t ranks = num_lps();
  // The rank count is structural (one per LP), so only placement is live
  // here; re-Ensure covers a borrowed pool resized by its owner's tuning.
  tuning_ = SampleTuning(ranks, /*parties_tunable=*/false);
  ApplyPendingMigrations();
  if (active_pool_ == &pool_) {
    pool_.ApplyPlacement(tuning_.affinity);
  }
  active_pool_->Ensure(ranks);
  const uint64_t run_t0 = Profiler::NowNs();
  // Speculative window execution with checkpoint rollback; see unison.cc.
  bool speculate = BeginSpeculativeWindow();
  for (;;) {
    sync_.BeginRun("barrier", ranks, stop_time);
    if (speculate) {
      sync_.EnableSpeculation(tuning_.spec_horizon_ps);
    }
    sync_.SetParkBaseline(barrier_->parks());
    rank_events_.assign(ranks, 0);

    active_pool_->Run([this](uint32_t rank) { ExecLoop(rank); });

    if (!speculate) {
      break;
    }
    NoteSpecAttempt(sync_.spec_rounds(), sync_.spec_miss());
    if (!sync_.spec_miss()) {
      break;
    }
    speculate = false;
  }

  processed_events_ = 0;
  for (uint64_t n : rank_events_) {
    processed_events_ += n;
  }
  rounds_ = sync_.round_index();
  return FinishRun("barrier", ranks, Profiler::NowNs() - run_t0, stop_time,
                   sync_.reason());
}

void BarrierKernel::ExecLoop(uint32_t rank) {
  // The LP set this rank serves for the whole window; ownership only changes
  // between windows (ApplyPendingMigrations), so the reference stays valid
  // and no worker ever observes a mid-window move.
  const std::vector<uint32_t>& owned = pmap_.owned(rank);
  uint64_t events = 0;
  // Rank-local mirror of sync_.round_index(); keys the accountant's
  // executor-private per-round rows (see unison.cc for why that is safe).
  uint32_t round = 0;
  PhaseAccountant acct(rank, sync_.profiling(), profiler_);

  for (;;) {
    // All-reduce (MPI_Allreduce analogue): each rank contributes its next
    // event timestamp, event count, and stop vote to the barrier's fused
    // reduction — one tree pass instead of a CAS fold plus a separate
    // barrier word. A rank that owns no LPs (everything migrated away)
    // contributes Max and keeps arriving: the barrier is population-fixed.
    acct.OpenInterval();
    // When speculative rounds ran, this fold doubles as the miss check over
    // the previous round's drains: an inbound arrival at or below an LP's
    // already-advanced clock is a causality violation.
    uint32_t flags = stop_requested() ? CombiningBarrier::kStopFlag : 0;
    const bool check_spec = sync_.spec_active();
    Time min_next = Time::Max();
    for (uint32_t id : owned) {
      Lp* const lp = lps_[id].get();
      const Time next = lp->fel().NextTimestamp();
      min_next = std::min(min_next, next);
      if (check_spec && !next.IsMax() && next <= lp->now() &&
          lp->now() > Time::Zero()) {
        flags |= CombiningBarrier::kSpecMissFlag;
      }
    }
    const uint64_t barrier_t0 =
        rank == 0 && sync_.tracing() ? Profiler::NowNs() : 0;
    barrier_->Arrive(rank, min_next.ps(), events, flags);
    if (rank == 0) {
      sync_.Absorb(*barrier_);
      if (sync_.tracing()) {
        // Attributed to the round this reduction closes (a no-op before
        // round 0 exists).
        sync_.RecordBarrierWait(Profiler::NowNs() - barrier_t0,
                                barrier_->parks());
      }
      if (sync_.ComputeWindow()) {
        // The reduced count is the live cross-rank total as of this
        // barrier, so the trace's events_before stays live.
        sync_.CommitRound(sync_.reduced_events());
      }
    }
    barrier_->Arrive(rank);
    if (sync_.done()) {
      break;  // Termination waits stay unattributed: they have no round row.
    }
    acct.BeginRound(round);
    acct.CloseSync();

    // Process the owned LPs' events inside the window, in ascending LpId
    // order (the owned list's construction order — deterministic across any
    // migration history).
    for (uint32_t id : owned) {
      Lp* const lp = lps_[id].get();
      const uint64_t lp_t0 = acct.timing() ? Profiler::NowNs() : 0;
      const uint64_t n = lp->ProcessUntil(sync_.window());
      events += n;
      if (acct.timing()) {
        const uint64_t p_ns = Profiler::NowNs() - lp_t0;
        AddLpWindowCost(id, p_ns);
        if (profiler_->per_lp) {
          profiler_->AddLpRound(rank, LpRoundCost{round, lp->id(),
                                                  static_cast<uint32_t>(n),
                                                  static_cast<uint32_t>(n),
                                                  p_ns});
        }
      }
    }
    acct.CloseProcessing();
    rank_events_[rank] = events;  // Published by the barrier for LiveEvents.

    // Rank 0 additionally handles global events at the window edge so that
    // simulation stop and progress reports work; stock ns-3 duplicates these
    // per rank, with the same observable effect. The surrounding barriers
    // keep the other ranks' FELs quiescent while rank 0 inserts into them.
    barrier_->Arrive(rank);
    acct.CloseSync();
    if (rank == 0) {
      // The speculation guard skips stragglers that landed below the covered
      // bound; the next ComputeWindow latches the miss (see round_sync.h).
      if (sync_.SpecAllowsGlobals()) {
        events += RunGlobalEvents(sync_.lbts(), sync_.stop());
      }
      rank_events_[rank] = events;
      acct.CloseProcessing();
    }
    barrier_->Arrive(rank);
    acct.CloseSync();

    // Receive cross-LP events (M) for every owned LP.
    for (uint32_t id : owned) {
      lps_[id]->DrainInboxes();
    }
    acct.CloseMessaging();
    barrier_->Arrive(rank);
    acct.CloseSync();
    ++round;
  }

  rank_events_[rank] = events;
  acct.set_events(events);  // Destructor flushes the totals to the profiler.
}

}  // namespace unison
