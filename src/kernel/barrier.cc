#include "src/kernel/barrier.h"

#include <algorithm>

#include "src/kernel/engine/phase_accountant.h"

namespace unison {

void BarrierKernel::Setup(const TopoGraph& graph, const Partition& partition) {
  Kernel::Setup(graph, partition);
  const uint32_t ranks = num_lps();
  barrier_ = std::make_unique<SpinBarrier>(ranks);
  rank_events_.assign(ranks, 0);
  pool_.Ensure(ranks);
}

RunResult BarrierKernel::Run(Time stop_time) {
  const uint32_t ranks = num_lps();
  sync_.BeginRun("barrier", ranks, stop_time);
  const uint64_t run_t0 = Profiler::NowNs();
  rank_events_.assign(ranks, 0);

  pool_.Run([this](uint32_t rank) { RankLoop(rank); });

  processed_events_ = 0;
  for (uint64_t n : rank_events_) {
    processed_events_ += n;
  }
  rounds_ = sync_.round_index();
  return FinishRun("barrier", ranks, Profiler::NowNs() - run_t0, stop_time,
                   sync_.reason());
}

void BarrierKernel::RankLoop(uint32_t rank) {
  Lp* const lp = lps_[rank].get();
  uint64_t events = 0;
  // Rank-local mirror of sync_.round_index(); keys the accountant's
  // executor-private per-round rows (see unison.cc for why that is safe).
  uint32_t round = 0;
  PhaseAccountant acct(rank, sync_.profiling(), profiler_);

  for (;;) {
    // All-reduce the minimum next-event timestamp (MPI_Allreduce analogue).
    sync_.min().Update(lp->fel().NextTimestamp().ps());
    acct.OpenInterval();
    barrier_->Arrive();
    if (rank == 0 && sync_.ComputeWindow()) {
      sync_.ResetMin();
      // Counters were published by the barriers of the previous round, so
      // the trace's events_before is a live cross-rank count.
      sync_.CommitRound(LiveEvents());
    }
    barrier_->Arrive();
    if (sync_.done()) {
      break;  // Termination waits stay unattributed: they have no round row.
    }
    acct.BeginRound(round);
    acct.CloseSync();

    // Process this rank's events inside the window.
    const uint64_t n = lp->ProcessUntil(sync_.window());
    events += n;
    const uint64_t p_ns = acct.CloseProcessing();
    if (acct.timing() && profiler_->per_lp) {
      profiler_->AddLpRound(rank, LpRoundCost{round, lp->id(),
                                              static_cast<uint32_t>(n),
                                              static_cast<uint32_t>(n), p_ns});
    }
    rank_events_[rank] = events;  // Published by the barrier for LiveEvents.

    // Rank 0 additionally handles global events at the window edge so that
    // simulation stop and progress reports work; stock ns-3 duplicates these
    // per rank, with the same observable effect. The surrounding barriers
    // keep the other ranks' FELs quiescent while rank 0 inserts into them.
    barrier_->Arrive();
    acct.CloseSync();
    if (rank == 0) {
      events += RunGlobalEvents(sync_.lbts(), sync_.stop());
      rank_events_[rank] = events;
      acct.CloseProcessing();
    }
    barrier_->Arrive();
    acct.CloseSync();

    // Receive cross-LP events (M).
    lp->DrainInboxes();
    acct.CloseMessaging();
    barrier_->Arrive();
    acct.CloseSync();
    ++round;
  }

  rank_events_[rank] = events;
  acct.set_events(events);  // Destructor flushes the totals to the profiler.
}

}  // namespace unison
