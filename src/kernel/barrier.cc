#include "src/kernel/barrier.h"

#include <algorithm>

#include "src/sched/thread_pool.h"

namespace unison {

void BarrierKernel::Run(Time stop_time) {
  stop_ = stop_time;
  done_ = false;
  profiling_ = profiler_ != nullptr && profiler_->enabled;
  tracing_ = trace_ != nullptr && trace_->enabled;
  const uint32_t ranks = num_lps();
  if (profiling_) {
    profiler_->BeginRun(ranks);
  }
  if (tracing_) {
    trace_->BeginRun("barrier", ranks, num_lps());
  }
  const uint64_t run_t0 = Profiler::NowNs();
  barrier_ = std::make_unique<SpinBarrier>(ranks);
  rank_events_.assign(ranks, 0);
  next_min_.Reset();

  WorkerTeam team(ranks);
  team.Run([this](uint32_t rank) { RankLoop(rank); });

  processed_events_ = 0;
  for (uint64_t n : rank_events_) {
    processed_events_ += n;
  }
  FinishRun("barrier", ranks, Profiler::NowNs() - run_t0);
}

void BarrierKernel::RankLoop(uint32_t rank) {
  Lp* const lp = lps_[rank].get();
  uint64_t events = 0;
  uint64_t rounds = 0;
  ExecutorPhaseStats local{};
  const bool timing = profiling_;

  for (;;) {
    // All-reduce the minimum next-event timestamp (MPI_Allreduce analogue).
    next_min_.Update(lp->fel().NextTimestamp().ps());
    uint64_t t = timing ? Profiler::NowNs() : 0;
    // Prologue waits are buffered and attributed to the round only once the
    // done check passes: on the termination iteration there is no round row
    // to charge (they still land in the executor total).
    uint64_t prologue_sync_ns = 0;
    barrier_->Arrive();
    if (timing) {
      const uint64_t now = Profiler::NowNs();
      local.synchronization_ns += now - t;
      prologue_sync_ns += now - t;
      t = now;
    }
    if (rank == 0) {
      const int64_t raw = next_min_.Get();
      const Time min_next = raw == INT64_MAX ? Time::Max() : Time::Picoseconds(raw);
      const Time npub = public_lp_->fel().NextTimestamp();
      if (stop_requested_ || std::min(min_next, npub) >= stop_ ||
          (min_next.IsMax() && npub.IsMax())) {
        done_ = true;
      } else {
        if (min_next.IsMax() || partition_.lookahead.IsMax()) {
          lbts_ = npub;
        } else {
          lbts_ = std::min(npub, min_next + partition_.lookahead);
        }
        window_ = std::min(lbts_, stop_);
        next_min_.Reset();
        if (profiling_) {
          profiler_->BeginRound();
        }
        if (tracing_) {
          // No live cross-rank event counter in this baseline: LiveEvents()
          // reports the previous run's total, so events_before stays 0.
          trace_->BeginRound(static_cast<uint32_t>(rounds), lbts_, window_, 0);
        }
      }
    }
    barrier_->Arrive();
    if (timing) {
      const uint64_t now = Profiler::NowNs();
      local.synchronization_ns += now - t;
      prologue_sync_ns += now - t;
      t = now;
    }
    if (done_) {
      break;
    }
    const uint32_t round = static_cast<uint32_t>(rounds);
    ++rounds;
    if (profiling_) {
      profiler_->AddRoundSync(rank, round, prologue_sync_ns);
    }

    // Process this rank's events inside the window.
    const uint64_t n = lp->ProcessUntil(window_);
    events += n;
    if (timing) {
      const uint64_t now = Profiler::NowNs();
      local.processing_ns += now - t;
      if (profiling_) {
        profiler_->AddRoundProcessing(rank, round, now - t);
        if (profiler_->per_lp) {
          profiler_->AddLpRound(rank, LpRoundCost{round, lp->id(),
                                                  static_cast<uint32_t>(n),
                                                  static_cast<uint32_t>(n), now - t});
        }
      }
      t = now;
    }

    // Rank 0 additionally handles global events at the window edge so that
    // simulation stop and progress reports work; stock ns-3 duplicates these
    // per rank, with the same observable effect. The surrounding barriers
    // keep the other ranks' FELs quiescent while rank 0 inserts into them.
    barrier_->Arrive();
    if (timing) {
      const uint64_t now = Profiler::NowNs();
      local.synchronization_ns += now - t;
      if (profiling_) {
        profiler_->AddRoundSync(rank, round, now - t);
      }
      t = now;
    }
    if (rank == 0) {
      events += RunGlobalEvents(lbts_, stop_);
      if (timing) {
        const uint64_t now = Profiler::NowNs();
        // Global-event time is rank 0's processing; previously it fell into
        // an unmeasured gap between the two phase-2 barriers.
        local.processing_ns += now - t;
        if (profiling_) {
          profiler_->AddRoundProcessing(rank, round, now - t);
        }
        t = now;
      }
    }
    barrier_->Arrive();
    if (timing) {
      const uint64_t now = Profiler::NowNs();
      local.synchronization_ns += now - t;
      if (profiling_) {
        profiler_->AddRoundSync(rank, round, now - t);
      }
      t = now;
    }

    // Receive cross-LP events (M).
    lp->DrainInboxes();
    if (timing) {
      const uint64_t now = Profiler::NowNs();
      local.messaging_ns += now - t;
      t = now;
    }
    barrier_->Arrive();
    if (timing) {
      const uint64_t now = Profiler::NowNs();
      local.synchronization_ns += now - t;
      if (profiling_) {
        profiler_->AddRoundSync(rank, round, now - t);
      }
    }
  }

  rank_events_[rank] = events;
  if (rank == 0) {
    rounds_ = rounds;
  }
  if (profiling_) {
    auto& stats = profiler_->executor(rank);
    stats.processing_ns = local.processing_ns;
    stats.synchronization_ns = local.synchronization_ns;
    stats.messaging_ns = local.messaging_ns;
    stats.events = events;
  }
}

}  // namespace unison
