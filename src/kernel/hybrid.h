// Hybrid simulation kernel (§5.2): Unison scaled across multiple hosts.
//
// The topology is first divided into `ranks` coarse partitions — one per
// simulated host — exactly as the barrier-synchronization algorithm would
// map MPI ranks. Within each rank, Unison applies its fine-grained partition
// and load-adaptive scheduling; across ranks, the window update performs an
// all-reduce over every rank's minimum next-event timestamp, and inter-rank
// events travel through the same mailbox fabric (in-process here; the wire
// serialization of the real deployment does not change the synchronization
// structure).
//
// The semantic difference from plain Unison is that load balancing never
// crosses a rank boundary *within a window*: a rank's workers only ever
// claim that rank's LPs, so skew between hosts shows up as synchronization
// time — which is what the distributed experiments of the paper measure.
// Between windows, though, ownership is live (partition map): the
// controller's rebalance rule can re-home LPs across ranks, modeling a
// deployment that migrates LP state between hosts at a quiescent point. The
// prologue, P/S/M accounting, and worker threads come from the shared
// engine (src/kernel/engine/).
#ifndef UNISON_SRC_KERNEL_HYBRID_H_
#define UNISON_SRC_KERNEL_HYBRID_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "src/kernel/engine/executor_pool.h"
#include "src/kernel/engine/round_sync.h"
#include "src/kernel/kernel.h"
#include "src/sched/combining_barrier.h"

namespace unison {

class HybridKernel : public Kernel {
 public:
  using Kernel::Kernel;

  void Setup(const TopoGraph& graph, const Partition& partition) override;
  RunResult Run(Time stop_time) override;

  // Worker ids are rank-major: worker = rank * lanes + lane. This is the
  // ceiling (config lanes), not the live count — tuning may shrink lanes_
  // between windows, but per-executor state sized at Finalize must cover all.
  uint32_t MaxExecutors() const override {
    return ranks_ * std::max(1u, config_.threads);
  }

  ExecutorPool* executor_pool() override { return active_pool_; }

  uint32_t ranks() const { return ranks_; }
  const std::vector<uint32_t>& rank_of_lp() const { return rank_of_lp_; }

  uint64_t LiveEvents() const override {
    uint64_t sum = 0;
    for (uint64_t n : worker_events_) {
      sum += n;
    }
    return sum;
  }

  // Rebuilds the rank mirrors (rank_of_lp_/rank_lps_/rank_order_) from the
  // partition map after a migration batch or snapshot restore.
  void OnOwnershipChanged() override;

 private:
  void Prologue();
  void RoundLoop(uint32_t worker);

  uint32_t ranks_ = 2;
  uint32_t lanes_ = 1;  // Workers per rank.
  uint32_t period_ = 1;

  ExecutorPool pool_;    // Threads spawned once at Setup, reused across runs.
  // The pool Run() actually uses: the borrowed external pool when one was
  // lent (Session::Fork), else pool_. Set at Setup.
  ExecutorPool* active_pool_ = nullptr;
  RoundSync sync_{this};
  std::unique_ptr<CombiningBarrier> barrier_;

  std::vector<uint32_t> rank_of_lp_;
  std::vector<std::vector<uint32_t>> rank_lps_;    // LP ids per rank.
  std::vector<std::vector<uint32_t>> rank_order_;  // Scheduler order per rank.
  std::vector<std::unique_ptr<std::atomic<uint32_t>>> rank_claim_;
  std::vector<std::unique_ptr<std::atomic<uint32_t>>> rank_claim_recv_;
  std::vector<uint64_t> last_round_ns_;
  std::vector<uint64_t> worker_events_;
  std::vector<uint32_t> record_order_buf_;  // Trace scratch: flattened order.
  bool timing_ = false;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_HYBRID_H_
