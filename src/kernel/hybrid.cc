#include "src/kernel/hybrid.h"

#include <algorithm>
#include <numeric>

#include "src/kernel/engine/phase_accountant.h"
#include "src/sched/lpt.h"

namespace unison {

void HybridKernel::Setup(const TopoGraph& graph, const Partition& partition) {
  Kernel::Setup(graph, partition);
  ranks_ = std::max(1u, config_.ranks);
  lanes_ = std::max(1u, config_.threads);

  // Coarse host mapping: slice the node-id range into `ranks_` blocks (the
  // static partition the barrier algorithm would use), then place each LP on
  // the rank owning its first node. Fine-grained LPs never straddle hosts —
  // initially; the assignment lives in the partition map, so window-boundary
  // migrations can re-home an LP to another rank when the load says so.
  std::vector<uint32_t> assignment(num_lps(), 0);
  std::vector<NodeId> first_node(num_lps(), graph.num_nodes);
  for (NodeId n = 0; n < graph.num_nodes; ++n) {
    const LpId lp = partition_.lp_of_node[n];
    first_node[lp] = std::min(first_node[lp], n);
  }
  for (LpId lp = 0; lp < num_lps(); ++lp) {
    assignment[lp] = static_cast<uint32_t>(
        static_cast<uint64_t>(first_node[lp]) * ranks_ / std::max(1u, graph.num_nodes));
  }
  pmap_.Reset(std::move(assignment), ranks_);
  ownership_movable_ = true;
  OnOwnershipChanged();  // Populate the rank mirrors from the map.

  rank_claim_.clear();
  rank_claim_recv_.clear();
  for (uint32_t r = 0; r < ranks_; ++r) {
    rank_claim_.push_back(std::make_unique<std::atomic<uint32_t>>(0));
    rank_claim_recv_.push_back(std::make_unique<std::atomic<uint32_t>>(0));
  }
  last_round_ns_.assign(num_lps(), 0);
  const uint32_t workers = ranks_ * lanes_;
  barrier_ = std::make_unique<CombiningBarrier>(workers);
  // Worker ids are rank-major (worker = rank * lanes + lane), so compact
  // placement lays ranks out socket-major: a rank's lanes fill one package
  // before the next rank starts — intra-rank claim/mailbox traffic stays
  // on-socket, matching how the real deployment maps hosts.
  active_pool_ = external_pool_ != nullptr ? external_pool_ : &pool_;
  if (active_pool_ == &pool_) {
    pool_.SetPlacement(config_.affinity);
  }
  active_pool_->Ensure(workers);
}

RunResult HybridKernel::Run(Time stop_time) {
  // Per-window tunable sample. The knob is lanes-per-rank (the rank count is
  // simulation identity — it decides which host owns which LP — so it stays
  // immutable); shrinking lanes shrinks every rank uniformly.
  tuning_ = SampleTuning(std::max(1u, config_.threads));
  period_ = tuning_.sched_period;
  if (tuning_.parties != lanes_) {
    lanes_ = tuning_.parties;
    barrier_ = std::make_unique<CombiningBarrier>(ranks_ * lanes_);
  }
  if (active_pool_ == &pool_) {
    pool_.ApplyPlacement(tuning_.affinity);
  }
  const uint32_t workers = ranks_ * lanes_;
  active_pool_->Ensure(workers);

  // Window-boundary ownership moves (controller rebalance or staged by
  // tests); OnOwnershipChanged refreshes the rank mirrors when anything
  // actually moved.
  ApplyPendingMigrations();

  const uint64_t run_t0 = Profiler::NowNs();
  // Speculative window execution with checkpoint rollback; see unison.cc.
  bool speculate = BeginSpeculativeWindow();
  for (;;) {
    sync_.BeginRun("hybrid", workers, stop_time);
    if (speculate) {
      sync_.EnableSpeculation(tuning_.spec_horizon_ps);
    }
    sync_.SetParkBaseline(barrier_->parks());
    timing_ = sync_.profiling() ||
              config_.metric == SchedulingMetric::kByLastRoundTime;
    worker_events_.assign(workers, 0);

    sync_.SeedMinFromLps();

    active_pool_->Run([this](uint32_t worker) { RoundLoop(worker); });

    if (!speculate) {
      break;
    }
    NoteSpecAttempt(sync_.spec_rounds(), sync_.spec_miss());
    if (!sync_.spec_miss()) {
      break;
    }
    speculate = false;
  }

  processed_events_ = 0;
  for (uint64_t n : worker_events_) {
    processed_events_ += n;
  }
  rounds_ = sync_.round_index();
  return FinishRun("hybrid", workers, Profiler::NowNs() - run_t0, stop_time,
                   sync_.reason());
}

void HybridKernel::OnOwnershipChanged() {
  rank_of_lp_ = pmap_.owners();
  rank_lps_ = pmap_.owned();
  // Fresh id-ascending claim orders; the next prologue re-sorts them by cost.
  // Claim order only affects wall time (results-neutral), so resetting it on
  // a move costs nothing observable.
  rank_order_ = rank_lps_;
}

void HybridKernel::Prologue() {
  if (!sync_.ComputeWindow()) {
    return;
  }
  bool resorted = false;
  if (sync_.round_index() % period_ == 0 &&
      config_.metric != SchedulingMetric::kNone) {
    // Per-rank re-sort. ByPendingEventCount degrades to ByLastRoundTime here:
    // counting FEL events cross-rank from the coordinator would be a remote
    // operation on a real deployment.
    //
    // The tie-break on LpId matters: rank_order_ is sorted in place, so a
    // stable sort keyed on cost alone would keep ties in previous-round order
    // — a function of measured timings, i.e. nondeterministic across runs.
    for (uint32_t r = 0; r < ranks_; ++r) {
      auto& order = rank_order_[r];
      std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
        return last_round_ns_[a] != last_round_ns_[b]
                   ? last_round_ns_[a] > last_round_ns_[b]
                   : a < b;
      });
    }
    resorted = true;
  }
  // Live cross-worker total from the end-of-round barrier's fused count.
  sync_.CommitRound(sync_.reduced_events());
  if (resorted && sync_.tracing()) {
    // Flatten the per-rank orders (rank-major) into one claim order.
    record_order_buf_.clear();
    for (uint32_t r = 0; r < ranks_; ++r) {
      record_order_buf_.insert(record_order_buf_.end(), rank_order_[r].begin(),
                               rank_order_[r].end());
    }
    sync_.RecordClaimOrder(record_order_buf_);
  }
  for (uint32_t r = 0; r < ranks_; ++r) {
    rank_claim_[r]->store(0, std::memory_order_relaxed);
  }
}

void HybridKernel::RoundLoop(uint32_t worker) {
  const uint32_t rank = worker / lanes_;
  const uint32_t lane = worker % lanes_;
  const auto& my_lps = rank_lps_[rank];
  const auto& my_order = rank_order_[rank];
  std::atomic<uint32_t>& claim = *rank_claim_[rank];
  std::atomic<uint32_t>& claim_recv = *rank_claim_recv_[rank];
  uint64_t events = 0;
  // Worker-local mirror of sync_.round_index(); keys the accountant's
  // executor-private per-round rows (see unison.cc).
  uint32_t round = 0;
  PhaseAccountant acct(worker, timing_, profiler_);

  for (;;) {
    if (worker == 0) {
      Prologue();
    }
    acct.OpenInterval();
    barrier_->Arrive(worker);
    if (sync_.done()) {
      break;  // Termination wait stays unattributed: it has no round row.
    }
    acct.BeginRound(round);
    acct.CloseSync();

    // Phase 1: process this rank's LPs in scheduler order.
    const Time window = sync_.window();
    for (;;) {
      const uint32_t i = claim.fetch_add(1, std::memory_order_relaxed);
      if (i >= my_order.size()) {
        break;
      }
      const LpId lp_id = my_order[i];
      const uint64_t lp_t0 = acct.timing() ? Profiler::NowNs() : 0;
      const uint64_t n = lps_[lp_id]->ProcessUntil(window);
      events += n;
      if (acct.timing()) {
        const uint64_t lp_ns = Profiler::NowNs() - lp_t0;
        last_round_ns_[lp_id] = lp_ns;
        AddLpWindowCost(lp_id, lp_ns);
      }
    }
    acct.CloseProcessing();
    worker_events_[worker] = events;  // Published by the barrier for LiveEvents.
    barrier_->Arrive(worker);
    acct.CloseSync();

    // Phase 2: globals on the rank-0 main worker. The speculation guard
    // skips stragglers below the covered bound (see round_sync.h).
    if (worker == 0) {
      if (sync_.SpecAllowsGlobals()) {
        events += RunGlobalEvents(sync_.lbts(), sync_.stop());
      }
      for (uint32_t r = 0; r < ranks_; ++r) {
        rank_claim_recv_[r]->store(0, std::memory_order_relaxed);
      }
      acct.CloseProcessing();
    }
    barrier_->Arrive(worker);
    acct.CloseSync();

    // Phase 3: receive — intra-rank and inter-rank mailboxes alike.
    for (;;) {
      const uint32_t i = claim_recv.fetch_add(1, std::memory_order_relaxed);
      if (i >= my_lps.size()) {
        break;
      }
      lps_[my_lps[i]]->DrainInboxes();
    }
    acct.CloseMessaging();
    // Drains must complete (globally: inter-rank mailboxes too) before any
    // lane reads FELs for the all-reduce.
    barrier_->Arrive(worker);
    acct.CloseSync();

    // Phase 4: all-reduce — each lane folds a strided slice of its rank's
    // LPs into a local minimum and contributes it (plus its event count and
    // stop vote) to the end-of-round barrier's fused reduction. The strided
    // slices cover every LP, so the fold doubles as the speculation miss
    // check (arrival at or below an already-advanced LP clock).
    uint32_t flags = stop_requested() ? CombiningBarrier::kStopFlag : 0;
    const bool check_spec = sync_.spec_active();
    int64_t local_min_ps = INT64_MAX;
    for (uint32_t i = lane; i < my_lps.size(); i += lanes_) {
      Lp* const lp = lps_[my_lps[i]].get();
      const Time next = lp->fel().NextTimestamp();
      local_min_ps = std::min(local_min_ps, next.ps());
      if (check_spec && !next.IsMax() && next <= lp->now() &&
          lp->now() > Time::Zero()) {
        flags |= CombiningBarrier::kSpecMissFlag;
      }
    }
    acct.CloseMessaging();
    const uint64_t barrier_t0 =
        worker == 0 && sync_.tracing() ? Profiler::NowNs() : 0;
    barrier_->Arrive(worker, local_min_ps, events, flags);
    if (worker == 0) {
      sync_.Absorb(*barrier_);
      if (sync_.tracing()) {
        sync_.RecordBarrierWait(Profiler::NowNs() - barrier_t0,
                                barrier_->parks());
      }
    }
    acct.CloseSync();
    ++round;
  }

  worker_events_[worker] = events;
  acct.set_events(events);  // Destructor flushes the totals to the profiler.
}

}  // namespace unison
