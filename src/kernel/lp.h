// A logical process: one spatial partition of the simulated network, with its
// own future event list, clock, outboxes, and deterministic sequence counters.
//
// Exactly one thread executes a given LP at a time (each LP is processed once
// per round); the kernels guarantee this, which lets all LP state be plain
// non-atomic data.
#ifndef UNISON_SRC_KERNEL_LP_H_
#define UNISON_SRC_KERNEL_LP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/event.h"
#include "src/core/fel.h"
#include "src/core/time.h"
#include "src/kernel/mailbox.h"

namespace unison {

// Optional per-event trace hook, used by the cache simulator and the cost
// model during single-threaded instrumented runs. Not thread-safe by design.
using EventTraceFn = void (*)(void* ctx, LpId lp, NodeId node);

class Lp {
 public:
  Lp(LpId id, bool deterministic) : id_(id), deterministic_(deterministic) {}

  Lp(const Lp&) = delete;
  Lp& operator=(const Lp&) = delete;

  LpId id() const { return id_; }
  Time now() const { return now_; }
  void set_now(Time t) { now_ = t; }

  FutureEventList& fel() { return fel_; }
  const FutureEventList& fel() const { return fel_; }

  // Builds the ordering key for an event scheduled at absolute time `abs`
  // from this LP's execution context (deterministic tie-breaking rule,
  // §5.2, strengthened to partition-independent node identity). During
  // setup, when no event is executing, `fallback_node` names the sender.
  EventKey MakeKey(Time abs, NodeId fallback_node = kNoNode) {
    const NodeId ctx = CurrentNode();
    return EventKey{abs, now_, ctx != kNoNode ? ctx : fallback_node, seq_++};
  }

  // Inserts an event into this LP's FEL. In non-deterministic mode (stock
  // ns-3 behaviour, used by the baseline kernels for the Fig. 11 experiment)
  // the key is rewritten to insertion order, so cross-LP arrival races leak
  // into the processing order exactly as they do in ns-3's PDES kernels.
  void Insert(Event ev) {
    if (!deterministic_) {
      ev.key.sender_ts = Time::Zero();
      ev.key.sender_node = id_;
      ev.key.seq = arrival_seq_++;
    }
    fel_.Push(std::move(ev));
  }

  // Schedules a callback on this LP at absolute time `abs`, attributed to
  // `node`.
  void ScheduleLocal(Time abs, NodeId node, EventFn fn) {
    Insert(Event{MakeKey(abs, node), node, std::move(fn)});
  }

  // Pops and executes events with timestamp strictly below `bound`.
  // Returns the number of events executed. Updates the LP clock as it goes.
  uint64_t ProcessUntil(Time bound);

  // --- Mailbox wiring (set up by the kernels) ---

  // Returns the outbox from this LP to `target`, or nullptr if none wired.
  // O(1): a dense LpId-indexed table maintained at wiring time — this lookup
  // is on the path of every cross-LP send, where the old linear walk over
  // outboxes_ scaled with the LP's degree.
  Outbox* FindOutbox(LpId target) {
    return target < outbox_index_.size() ? outbox_index_[target] : nullptr;
  }
  // Heap-allocated so inbox registrations on the target stay valid when more
  // outboxes are wired later (dynamic topology changes add channels).
  Outbox* AddOutbox(LpId target) {
    outboxes_.push_back(std::make_unique<Outbox>(Outbox{target, {}}));
    if (outbox_index_.size() <= target) {
      outbox_index_.resize(target + 1, nullptr);
    }
    outbox_index_[target] = outboxes_.back().get();
    return outboxes_.back().get();
  }
  std::vector<std::unique_ptr<Outbox>>& outboxes() { return outboxes_; }

  // Inboxes: outboxes of other LPs that target this LP.
  void AddInbox(Outbox* box) { inboxes_.push_back(box); }
  void ClearInboxes() { inboxes_.clear(); }

  // Receiving phase: moves all mailbox events into the FEL via bulk PushAll
  // (one reserve + one sift pass per inbox instead of per-event pushes).
  // Returns the number of events received.
  uint64_t DrainInboxes();

  OverflowBox& overflow() { return overflow_; }

  // --- Snapshot support ---

  // Tie-break counters: seq_ feeds MakeKey, arrival_seq_ feeds the
  // non-deterministic insertion-order rewrite. Both are part of captured
  // session state — a fork that resumed with fresh counters would mint keys
  // that collide with (or order differently from) events already in flight.
  uint64_t seq() const { return seq_; }
  uint64_t arrival_seq() const { return arrival_seq_; }
  void RestoreCounters(uint64_t seq, uint64_t arrival_seq) {
    seq_ = seq;
    arrival_seq_ = arrival_seq;
  }

  // The LP currently executing on this thread (nullptr during setup and in
  // the global-event phase when attributed to the public LP).
  static Lp* Current() { return current_; }
  static void SetCurrent(Lp* lp) { current_ = lp; }

  // Node attribution of the event currently executing; inherited by events
  // scheduled with Simulator::Schedule so that cache traces stay accurate.
  static NodeId CurrentNode() { return current_node_; }
  static void SetCurrentNode(NodeId n) { current_node_ = n; }

  static void SetTraceHook(EventTraceFn fn, void* ctx) {
    trace_hook_ = fn;
    trace_ctx_ = ctx;
  }

 private:
  // Applies the non-deterministic (insertion-order) key rewrite of Insert to
  // a whole batch before it is bulk-pushed.
  void RewriteArrivalKeys(std::vector<Event>& events);

  const LpId id_;
  const bool deterministic_;
  Time now_;
  uint64_t seq_ = 0;
  uint64_t arrival_seq_ = 0;
  FutureEventList fel_;
  std::vector<std::unique_ptr<Outbox>> outboxes_;
  std::vector<Outbox*> outbox_index_;  // Dense LpId -> Outbox* lookup.
  std::vector<Outbox*> inboxes_;
  OverflowBox overflow_;
  std::vector<Event> overflow_scratch_;  // Reused across DrainInboxes calls.

  static thread_local Lp* current_;
  static thread_local NodeId current_node_;
  static EventTraceFn trace_hook_;
  static void* trace_ctx_;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_LP_H_
