// Barrier-synchronization PDES baseline (§2.3): the default parallel kernel
// of ns-3, reproduced over threads instead of MPI ranks.
//
// The topology is statically partitioned by the user; each LP starts on its
// own executor ("rank"), though ownership is live — window-boundary
// migrations may re-home LPs across the rank set. Every round, ranks
// all-reduce the minimum
// next-event timestamp to obtain the LBTS (Eq. 1), process events below it,
// and barrier. Cross-LP events go through a locked per-rank inbox, mimicking
// MPI message receipt — including its arrival-order indeterminism when the
// kernel runs with deterministic=false. The prologue, P/S/M accounting, and
// rank threads come from the shared engine (src/kernel/engine/).
#ifndef UNISON_SRC_KERNEL_BARRIER_H_
#define UNISON_SRC_KERNEL_BARRIER_H_

#include <memory>
#include <vector>

#include "src/kernel/engine/executor_pool.h"
#include "src/kernel/engine/round_sync.h"
#include "src/kernel/kernel.h"
#include "src/sched/combining_barrier.h"

namespace unison {

class BarrierKernel : public Kernel {
 public:
  using Kernel::Kernel;

  void Setup(const TopoGraph& graph, const Partition& partition) override;
  RunResult Run(Time stop_time) override;

  // One executor rank per LP. The *initial* assignment pins rank r to LP r,
  // but ownership is live (partition map): the rank count is the ceiling,
  // not the mapping.
  uint32_t MaxExecutors() const override { return num_lps(); }

  ExecutorPool* executor_pool() override { return active_pool_; }

  uint64_t LiveEvents() const override {
    uint64_t sum = 0;
    for (uint64_t n : rank_events_) {
      sum += n;
    }
    return sum;
  }

 protected:
  // Cross-LP transfer via the target's locked inbox: arrival order depends
  // on thread timing, exactly like MPI receive order.
  void ScheduleRemote(Lp* from, LpId target, Event ev) override {
    (void)from;
    lps_[target]->overflow().Push(std::move(ev));
  }

 private:
  // One executor rank's window loop over its owned LP set (pmap_.owned).
  void ExecLoop(uint32_t rank);

  ExecutorPool pool_;    // Threads spawned once at Setup, reused across runs.
  // The pool Run() actually uses: the borrowed external pool when one was
  // lent (Session::Fork), else pool_. Set at Setup.
  ExecutorPool* active_pool_ = nullptr;
  RoundSync sync_{this};
  std::unique_ptr<CombiningBarrier> barrier_;
  // Per-rank event counters, published at each round barrier so LiveEvents()
  // is live mid-run (global progress events see current counts).
  std::vector<uint64_t> rank_events_;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_BARRIER_H_
