// Barrier-synchronization PDES baseline (§2.3): the default parallel kernel
// of ns-3, reproduced over threads instead of MPI ranks.
//
// The topology is statically partitioned by the user; each LP is pinned to
// its own executor ("rank"). Every round, ranks all-reduce the minimum
// next-event timestamp to obtain the LBTS (Eq. 1), process events below it,
// and barrier. Cross-LP events go through a locked per-rank inbox, mimicking
// MPI message receipt — including its arrival-order indeterminism when the
// kernel runs with deterministic=false.
#ifndef UNISON_SRC_KERNEL_BARRIER_H_
#define UNISON_SRC_KERNEL_BARRIER_H_

#include <memory>

#include "src/kernel/kernel.h"
#include "src/sched/barrier_sync.h"

namespace unison {

class BarrierKernel : public Kernel {
 public:
  using Kernel::Kernel;

  void Run(Time stop_time) override;

 protected:
  // Cross-LP transfer via the target's locked inbox: arrival order depends
  // on thread timing, exactly like MPI receive order.
  void ScheduleRemote(Lp* from, LpId target, Event ev) override {
    (void)from;
    lps_[target]->overflow().Push(std::move(ev));
  }

 private:
  void RankLoop(uint32_t rank);

  Time stop_;
  Time window_;
  Time lbts_;
  bool done_ = false;
  std::unique_ptr<SpinBarrier> barrier_;
  AtomicTimeMin next_min_;
  std::vector<uint64_t> rank_events_;
  bool profiling_ = false;
  bool tracing_ = false;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_BARRIER_H_
