#include "src/kernel/nullmsg.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/kernel/engine/phase_accountant.h"

namespace unison {

void NullMessageKernel::Setup(const TopoGraph& graph, const Partition& partition) {
  Kernel::Setup(graph, partition);
  // Executor i starts out serving LP i; migrations re-home LPs across the
  // same executor set at window boundaries.
  pmap_.ResetStrided(num_lps(), num_lps());
  ownership_movable_ = true;
  channels_.clear();
  channel_of_pair_.clear();
  chans_.clear();
  chans_.resize(num_lps());
  ctl_.clear();
  for (uint32_t i = 0; i < num_lps(); ++i) {
    ctl_.push_back(std::make_unique<ExecCtl>());
  }
  // One channel per directed cut pair; its lookahead is the minimum delay of
  // the cut links between the pair. The pair map makes wiring O(E) instead of
  // O(E·C), and stays live for ScheduleRemote's channel lookups.
  channel_of_pair_.reserve(partition_.cut_edges.size() * 2);
  for (const CutEdge& edge : partition_.cut_edges) {
    for (const auto& [src, dst] : {std::pair{edge.a, edge.b}, std::pair{edge.b, edge.a}}) {
      auto [it, inserted] = channel_of_pair_.try_emplace(PairKey(src, dst), nullptr);
      if (inserted) {
        channels_.push_back(std::make_unique<Channel>());
        Channel* const c = channels_.back().get();
        c->from = src;
        c->to = dst;
        c->lookahead = edge.delay;
        chans_[src].out.push_back(c);
        chans_[dst].in.push_back(c);
        it->second = c;
      } else {
        it->second->lookahead = std::min(it->second->lookahead, edge.delay);
      }
    }
  }
  for (const auto& c : channels_) {
    if (c->lookahead.IsZero()) {
      std::fprintf(stderr,
                   "NullMessageKernel: zero-lookahead channel %u->%u; the "
                   "partition must not cut zero-delay links\n",
                   c->from, c->to);
      std::abort();
    }
  }
  active_pool_ = external_pool_ != nullptr ? external_pool_ : &pool_;
  if (active_pool_ == &pool_) {
    pool_.SetPlacement(config_.affinity);
  }
  active_pool_->Ensure(num_lps());
}

void NullMessageKernel::DrainTransportForSnapshot() {
  for (const auto& c : channels_) {
    std::lock_guard<std::mutex> lock(c->mu);
    for (Event& ev : c->events) {
      lps_[c->to]->Insert(std::move(ev));
    }
    c->events.clear();
  }
}

void NullMessageKernel::ScheduleRemote(Lp* from, LpId target, Event ev) {
  const auto it = channel_of_pair_.find(PairKey(from->id(), target));
  if (it == channel_of_pair_.end()) {
    std::fprintf(stderr, "NullMessageKernel: no channel %u->%u\n", from->id(), target);
    std::abort();
  }
  Channel* const chan = it->second;
  // Piggy-backed promise: sender send-times are nondecreasing, so no future
  // message on this channel can carry a timestamp below now + lookahead.
  // (The message's own ts is not a valid promise — with several links pooled
  // into one channel, arrival timestamps are not monotone.)
  const int64_t promise = (from->now() + chan->lookahead).ps();
  {
    std::lock_guard<std::mutex> lock(chan->mu);
    chan->events.push_back(std::move(ev));
    chan->clock_ps = std::max(chan->clock_ps, promise);
  }
  Signal(target);
}

void NullMessageKernel::Signal(LpId target) {
  // Route to whoever serves the target this window. Ownership only changes
  // between windows, so a mid-window lookup can never race a move.
  ExecCtl& ctl = *ctl_[pmap_.owner(target)];
  {
    std::lock_guard<std::mutex> lock(ctl.mu);
    ++ctl.signal;
  }
  ctl.cv.notify_one();
}

RunResult NullMessageKernel::Run(Time stop_time) {
  // Runtime global events are unsupported; drain globals up to the session
  // resume point (setup-time t = 0 initializers, and anything injected
  // between windows at or below the previous stop) so they still work.
  if (!public_lp_->fel().Empty()) {
    public_lp_->ProcessUntil(resume_floor() + Time::Picoseconds(1));
    if (!public_lp_->fel().Empty()) {
      std::fprintf(stderr,
                   "NullMessageKernel: global events beyond the session "
                   "resume point are not supported by this baseline\n");
      std::abort();
    }
  }
  // The party count is structural (one LP loop per LP), so only placement is
  // live; re-Ensure covers a borrowed pool resized by its owner's tuning.
  tuning_ = SampleTuning(num_lps(), /*parties_tunable=*/false);
  ApplyPendingMigrations();
  if (active_pool_ == &pool_) {
    pool_.ApplyPlacement(tuning_.affinity);
  }
  active_pool_->Ensure(num_lps());
  // No shared synchronization rounds in this algorithm: BeginRun covers the
  // run-level profiler/trace bookkeeping; the trace carries the summary and
  // per-executor P/S/M only.
  sync_.BeginRun("nullmsg", num_lps(), stop_time);
  const uint64_t run_t0 = Profiler::NowNs();
  exec_events_.assign(num_lps(), 0);
  // Reset channel promises so consecutive windows start conservative: the
  // previous window's final clocks (often latched at +inf once every FEL
  // drained) would let this window process events below messages still to be
  // sent. The baseline is the session's resume floor — after a clean window
  // every pending event sits at or past the previous stop, so no future send
  // can promise less — refined down to the earliest pending event anywhere in
  // case work was injected below the floor between windows. Undelivered
  // channel events are kept: they belong to this window.
  Time floor = resume_floor();
  for (const auto& lp : lps_) {
    floor = std::min(floor, lp->fel().NextTimestamp());
  }
  for (const auto& c : channels_) {
    std::lock_guard<std::mutex> lock(c->mu);
    for (const Event& ev : c->events) {
      floor = std::min(floor, ev.key.ts);
    }
  }
  const int64_t floor_ps = floor.IsMax() ? 0 : floor.ps();
  for (const auto& c : channels_) {
    std::lock_guard<std::mutex> lock(c->mu);
    c->clock_ps = floor_ps;
    c->nulls = 0;
  }

  active_pool_->Run([this](uint32_t ex) { ExecLoop(ex); });

  processed_events_ = 0;
  for (uint64_t n : exec_events_) {
    processed_events_ += n;
  }
  null_messages_ = 0;
  for (const auto& c : channels_) {
    null_messages_ += c->nulls;
  }

  // This kernel has no coordinator prologue to classify the exit, so decide
  // here: all events below the stop time were executed, hence anything left
  // pending marks a window boundary rather than exhaustion.
  RunReason reason = RunReason::kStopRequested;
  if (!stop_requested()) {
    bool pending = !public_lp_->fel().Empty();
    for (const auto& lp : lps_) {
      pending = pending || !lp->fel().Empty();
    }
    for (const auto& c : channels_) {
      std::lock_guard<std::mutex> lock(c->mu);
      pending = pending || !c->events.empty();
    }
    reason = pending ? RunReason::kWindowReached : RunReason::kExhausted;
  }
  return FinishRun("nullmsg", num_lps(), Profiler::NowNs() - run_t0, stop_time,
                   reason);
}

void NullMessageKernel::ExecLoop(uint32_t ex) {
  // The LP set this executor serves for the whole window; ownership only
  // changes between windows. An executor whose LPs all migrated away returns
  // immediately — nothing can ever signal it.
  const std::vector<uint32_t>& owned = pmap_.owned(ex);
  ExecCtl& ctl = *ctl_[ex];
  const Time stop = sync_.stop();
  uint64_t events = 0;
  uint64_t rounds = 0;
  // "Rounds" are executor-local sweeps here; they still key executor-private
  // per-round rows so the rows-sum-to-totals invariant holds for this kernel
  // too, even though iteration counts differ per executor.
  PhaseAccountant acct(ex, sync_.profiling(), profiler_);

  // An LP is done once everything below the stop time has been processed and
  // its final promises sent; the sweep skips it from then on.
  std::vector<bool> done(owned.size(), false);
  size_t remaining = owned.size();

  while (remaining > 0) {
    uint64_t sig;
    {
      std::lock_guard<std::mutex> lock(ctl.mu);
      sig = ctl.signal;
    }
    acct.BeginRound(static_cast<uint32_t>(rounds));
    acct.OpenInterval();

    // One sweep over the owned set, ascending LpId. Progress on one owned LP
    // can unblock another owned LP in the same sweep only via its promises;
    // those bump our own signal, so the wait below cannot miss it.
    for (size_t k = 0; k < owned.size(); ++k) {
      if (done[k]) {
        continue;
      }
      Lp* const lp = lps_[owned[k]].get();
      const LpChans& ch = chans_[owned[k]];

      // Receive: drain input channels, note their clocks.
      Time safe_in = Time::Max();
      for (Channel* c : ch.in) {
        std::vector<Event> got;
        {
          std::lock_guard<std::mutex> lock(c->mu);
          got.swap(c->events);
          safe_in = std::min(safe_in, Time::Picoseconds(c->clock_ps));
        }
        for (Event& ev : got) {
          lp->Insert(std::move(ev));
        }
      }
      acct.CloseMessaging();

      // Process below the conservative bound.
      const Time bound = std::min(safe_in, stop);
      const uint64_t lp_t0 = acct.timing() ? Profiler::NowNs() : 0;
      const uint64_t n = lp->ProcessUntil(bound);
      events += n;
      if (acct.timing()) {
        AddLpWindowCost(owned[k], Profiler::NowNs() - lp_t0);
      }
      acct.CloseProcessing();

      // Refresh output promises (eager null messages).
      const Time horizon = std::min(lp->fel().NextTimestamp(), safe_in);
      for (Channel* c : ch.out) {
        const int64_t promise =
            horizon.IsMax() ? INT64_MAX
                            : (horizon + c->lookahead).ps();
        bool raised = false;
        {
          std::lock_guard<std::mutex> lock(c->mu);
          if (promise > c->clock_ps) {
            c->clock_ps = promise;
            ++c->nulls;
            raised = true;
          }
        }
        if (raised) {
          Signal(c->to);
        }
      }
      acct.CloseMessaging();

      if (bound >= stop) {
        done[k] = true;  // Final promises already sent.
        --remaining;
      }
    }
    ++rounds;

    if (remaining == 0 || stop_requested()) {
      break;
    }

    // Block until some input channel of some owned LP changes.
    {
      std::unique_lock<std::mutex> lock(ctl.mu);
      ctl.cv.wait(lock, [&ctl, sig] { return ctl.signal != sig; });
    }
    acct.CloseSync();
  }

  exec_events_[ex] = events;
  if (ex == 0) {
    rounds_ = rounds;
  }
  acct.set_events(events);  // Destructor flushes the totals to the profiler.
}

}  // namespace unison
