#include "src/kernel/nullmsg.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/sched/thread_pool.h"

namespace unison {

void NullMessageKernel::Setup(const TopoGraph& graph, const Partition& partition) {
  Kernel::Setup(graph, partition);
  channels_.clear();
  ctl_.clear();
  for (uint32_t i = 0; i < num_lps(); ++i) {
    ctl_.push_back(std::make_unique<LpCtl>());
  }
  // One channel per directed cut pair; its lookahead is the minimum delay of
  // the cut links between the pair.
  auto find = [this](LpId from, LpId to) -> Channel* {
    for (auto& c : channels_) {
      if (c->from == from && c->to == to) {
        return c.get();
      }
    }
    return nullptr;
  };
  for (const CutEdge& edge : partition_.cut_edges) {
    for (const auto& [src, dst] : {std::pair{edge.a, edge.b}, std::pair{edge.b, edge.a}}) {
      Channel* c = find(src, dst);
      if (c == nullptr) {
        channels_.push_back(std::make_unique<Channel>());
        c = channels_.back().get();
        c->from = src;
        c->to = dst;
        c->lookahead = edge.delay;
        ctl_[src]->out.push_back(c);
        ctl_[dst]->in.push_back(c);
      } else {
        c->lookahead = std::min(c->lookahead, edge.delay);
      }
    }
  }
  for (const auto& c : channels_) {
    if (c->lookahead.IsZero()) {
      std::fprintf(stderr,
                   "NullMessageKernel: zero-lookahead channel %u->%u; the "
                   "partition must not cut zero-delay links\n",
                   c->from, c->to);
      std::abort();
    }
  }
}

void NullMessageKernel::ScheduleRemote(Lp* from, LpId target, Event ev) {
  Channel* chan = nullptr;
  for (Channel* c : ctl_[from->id()]->out) {
    if (c->to == target) {
      chan = c;
      break;
    }
  }
  if (chan == nullptr) {
    std::fprintf(stderr, "NullMessageKernel: no channel %u->%u\n", from->id(), target);
    std::abort();
  }
  // Piggy-backed promise: sender send-times are nondecreasing, so no future
  // message on this channel can carry a timestamp below now + lookahead.
  // (The message's own ts is not a valid promise — with several links pooled
  // into one channel, arrival timestamps are not monotone.)
  const int64_t promise = (from->now() + chan->lookahead).ps();
  {
    std::lock_guard<std::mutex> lock(chan->mu);
    chan->events.push_back(std::move(ev));
    chan->clock_ps = std::max(chan->clock_ps, promise);
  }
  Signal(target);
}

void NullMessageKernel::Signal(LpId target) {
  LpCtl& ctl = *ctl_[target];
  {
    std::lock_guard<std::mutex> lock(ctl.mu);
    ++ctl.signal;
  }
  ctl.cv.notify_one();
}

void NullMessageKernel::Run(Time stop_time) {
  stop_ = stop_time;
  // Runtime global events are unsupported; drain setup-time (t = 0) globals
  // up front so initializers still work.
  if (!public_lp_->fel().Empty()) {
    public_lp_->ProcessUntil(Time::Picoseconds(1));
    if (!public_lp_->fel().Empty()) {
      std::fprintf(stderr,
                   "NullMessageKernel: global events at t > 0 are not "
                   "supported by this baseline\n");
      std::abort();
    }
  }
  const bool profiling = profiler_ != nullptr && profiler_->enabled;
  if (profiling) {
    profiler_->BeginRun(num_lps());
  }
  if (trace_ != nullptr && trace_->enabled) {
    // No shared synchronization rounds in this algorithm: the trace carries
    // the summary and per-executor P/S/M only.
    trace_->BeginRun("nullmsg", num_lps(), num_lps());
  }
  const uint64_t run_t0 = Profiler::NowNs();
  lp_events_.assign(num_lps(), 0);

  WorkerTeam team(num_lps());
  team.Run([this](uint32_t id) { LpLoop(id); });

  processed_events_ = 0;
  for (uint64_t n : lp_events_) {
    processed_events_ += n;
  }
  null_messages_ = 0;
  for (const auto& c : channels_) {
    null_messages_ += c->nulls;
  }
  FinishRun("nullmsg", num_lps(), Profiler::NowNs() - run_t0);
}

void NullMessageKernel::LpLoop(LpId id) {
  Lp* const lp = lps_[id].get();
  LpCtl& ctl = *ctl_[id];
  const bool profiling = profiler_ != nullptr && profiler_->enabled;
  ExecutorPhaseStats local{};
  uint64_t events = 0;
  uint64_t rounds = 0;

  for (;;) {
    uint64_t sig;
    {
      std::lock_guard<std::mutex> lock(ctl.mu);
      sig = ctl.signal;
    }
    uint64_t t = profiling ? Profiler::NowNs() : 0;

    // Receive: drain input channels, note their clocks.
    Time safe_in = Time::Max();
    for (Channel* c : ctl.in) {
      std::vector<Event> got;
      {
        std::lock_guard<std::mutex> lock(c->mu);
        got.swap(c->events);
        safe_in = std::min(safe_in, Time::Picoseconds(c->clock_ps));
      }
      for (Event& ev : got) {
        lp->Insert(std::move(ev));
      }
    }
    if (profiling) {
      const uint64_t now = Profiler::NowNs();
      local.messaging_ns += now - t;
      t = now;
    }

    // Process below the conservative bound.
    const Time bound = std::min(safe_in, stop_);
    const uint64_t n = lp->ProcessUntil(bound);
    events += n;
    ++rounds;
    if (profiling) {
      const uint64_t now = Profiler::NowNs();
      local.processing_ns += now - t;
      t = now;
    }

    // Refresh output promises (eager null messages).
    const Time horizon = std::min(lp->fel().NextTimestamp(), safe_in);
    for (Channel* c : ctl.out) {
      const int64_t promise =
          horizon.IsMax() ? INT64_MAX
                          : (horizon + c->lookahead).ps();
      bool raised = false;
      {
        std::lock_guard<std::mutex> lock(c->mu);
        if (promise > c->clock_ps) {
          c->clock_ps = promise;
          ++c->nulls;
          raised = true;
        }
      }
      if (raised) {
        Signal(c->to);
      }
    }
    if (profiling) {
      const uint64_t now = Profiler::NowNs();
      local.messaging_ns += now - t;
      t = now;
    }

    if (stop_requested_.load(std::memory_order_relaxed) || bound >= stop_) {
      break;  // Everything below stop_ is done; final promises already sent.
    }

    // Block until some input channel changes.
    {
      std::unique_lock<std::mutex> lock(ctl.mu);
      ctl.cv.wait(lock, [&ctl, sig] { return ctl.signal != sig; });
    }
    if (profiling) {
      local.synchronization_ns += Profiler::NowNs() - t;
    }
  }

  lp_events_[id] = events;
  if (id == 0) {
    rounds_ = rounds;
  }
  if (profiling) {
    auto& stats = profiler_->executor(id);
    stats.processing_ns = local.processing_ns;
    stats.synchronization_ns = local.synchronization_ns;
    stats.messaging_ns = local.messaging_ns;
    stats.events = events;
  }
}

}  // namespace unison
