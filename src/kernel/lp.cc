#include "src/kernel/lp.h"

namespace unison {

thread_local Lp* Lp::current_ = nullptr;
thread_local NodeId Lp::current_node_ = kNoNode;
EventTraceFn Lp::trace_hook_ = nullptr;
void* Lp::trace_ctx_ = nullptr;

uint64_t Lp::ProcessUntil(Time bound) {
  uint64_t processed = 0;
  Lp* const prev = current_;
  current_ = this;
  while (!fel_.Empty() && fel_.PeekKey().ts < bound) {
    Event ev = fel_.Pop();
    now_ = ev.key.ts;
    current_node_ = ev.node;
    if (trace_hook_ != nullptr) {
      trace_hook_(trace_ctx_, id_, ev.node);
    }
    ev.fn();
    ++processed;
  }
  current_ = prev;
  current_node_ = kNoNode;
  return processed;
}

uint64_t Lp::DrainInboxes() {
  uint64_t received = 0;
  for (Outbox* box : inboxes_) {
    for (Event& ev : box->events) {
      Insert(std::move(ev));
      ++received;
    }
    box->events.clear();
  }
  if (!overflow_.EmptyUnlocked()) {
    for (Event& ev : overflow_.Drain()) {
      Insert(std::move(ev));
      ++received;
    }
  }
  return received;
}

}  // namespace unison
