#include "src/kernel/lp.h"

namespace unison {

thread_local Lp* Lp::current_ = nullptr;
thread_local NodeId Lp::current_node_ = kNoNode;
EventTraceFn Lp::trace_hook_ = nullptr;
void* Lp::trace_ctx_ = nullptr;

uint64_t Lp::ProcessUntil(Time bound) {
  uint64_t processed = 0;
  Lp* const prev = current_;
  current_ = this;
  while (!fel_.Empty() && fel_.PeekKey().ts < bound) {
    Event ev = fel_.Pop();
    now_ = ev.key.ts;
    current_node_ = ev.node;
    if (trace_hook_ != nullptr) {
      trace_hook_(trace_ctx_, id_, ev.node);
    }
    ev.fn();
    ++processed;
  }
  current_ = prev;
  current_node_ = kNoNode;
  return processed;
}

uint64_t Lp::DrainInboxes() {
  uint64_t received = 0;
  for (Outbox* box : inboxes_) {
    if (box->events.empty()) {
      continue;
    }
    received += box->events.size();
    if (!deterministic_) {
      RewriteArrivalKeys(box->events);
    }
    fel_.PushAll(box->events);  // Clears the inbox, keeping its capacity.
  }
  if (!overflow_.EmptyUnlocked()) {
    // Reusable scratch: DrainInto appends and PushAll clears keeping
    // capacity, so the slow path stops allocating once warm.
    overflow_scratch_.clear();
    overflow_.DrainInto(&overflow_scratch_);
    received += overflow_scratch_.size();
    if (!deterministic_) {
      RewriteArrivalKeys(overflow_scratch_);
    }
    fel_.PushAll(overflow_scratch_);
  }
  return received;
}

void Lp::RewriteArrivalKeys(std::vector<Event>& events) {
  for (Event& ev : events) {
    ev.key.sender_ts = Time::Zero();
    ev.key.sender_node = id_;
    ev.key.seq = arrival_seq_++;
  }
}

}  // namespace unison
