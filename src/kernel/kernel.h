// Kernel interface shared by the sequential DES kernel, the two PDES
// baselines (barrier synchronization, null message), Unison, and the hybrid
// distributed kernel.
//
// A kernel owns the logical processes produced by a partition, the public LP
// for global events (§4.2), and the run loop. Network models never talk to a
// kernel directly; they go through the Simulator facade, which is what makes
// kernel choice transparent to model code.
#ifndef UNISON_SRC_KERNEL_KERNEL_H_
#define UNISON_SRC_KERNEL_KERNEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/control/tunables.h"
#include "src/core/event.h"
#include "src/core/time.h"
#include "src/kernel/engine/cpu_topology.h"
#include "src/kernel/engine/spec_checkpoint.h"
#include "src/kernel/lp.h"
#include "src/partition/graph.h"
#include "src/partition/partition_map.h"
#include "src/stats/profiler.h"
#include "src/stats/trace.h"

namespace unison {

enum class KernelType {
  kSequential,
  kBarrier,
  kNullMessage,
  kUnison,
  kHybrid,
};

enum class SchedulingMetric {
  kNone,                 // No scheduling: LPs claimed in id order.
  kByPendingEventCount,  // Estimate = events already scheduled in the window.
  kByLastRoundTime,      // Estimate = measured processing time of last round.
};

// Why a Run() window ended. The distinction matters for sessions: a window
// boundary is a pause (events remain, the next Run continues the same
// simulation), exhaustion and stop requests are terminal for the workload
// installed so far — though more work may still be injected and run.
enum class RunReason {
  kWindowReached,  // The stop time was hit with events still pending.
  kExhausted,      // Every FEL drained: nothing left to execute anywhere.
  kStopRequested,  // Early stop via RequestStop/Simulator::Stop.
};

// Returns a stable identifier ("window", "exhausted", "stop") for traces.
const char* RunReasonName(RunReason reason);

// Outcome of one Run() window on a session.
struct RunResult {
  RunReason reason = RunReason::kExhausted;
  Time end;            // Session time after this window.
  uint64_t events = 0; // Events executed in this window alone.
  uint64_t rounds = 0; // Synchronization rounds in this window alone.
};

struct KernelConfig {
  KernelType type = KernelType::kSequential;
  uint32_t threads = 1;
  SchedulingMetric metric = SchedulingMetric::kByLastRoundTime;
  // Rounds between scheduler re-sorts; 0 selects ceil(log2(#LP)) (§4.3).
  uint32_t sched_period = 0;
  // When false, event tie-breaking degrades to insertion order, replicating
  // the indeterminism of stock ns-3 PDES kernels (used by Fig. 11).
  bool deterministic = true;
  // Hybrid kernel only: number of simulated hosts ("ranks").
  uint32_t ranks = 2;
  // Automatic crash/preempt resume: every N completed Run() windows,
  // Network::Run snapshots the session to SimConfig::auto_checkpoint_path
  // (USNP SaveTo format), so a killed long sim resumes from the last
  // boundary via LoadFrom + Session::Restore instead of t=0. 0 = off.
  uint32_t auto_checkpoint_every = 0;
  // Executor placement: pin pool workers to cores per this policy (compact =
  // fill a socket before the next, hybrid ranks socket-major; scatter =
  // round-robin across sockets). kNone leaves placement to the OS. When the
  // party count exceeds the machine, placement wraps around the core list.
  AffinityPolicy affinity = AffinityPolicy::kNone;

  // Largest accepted sched_period: ceil(log2 n) tops out near 32 for any
  // representable topology, so a period beyond this is a unit error (e.g.
  // nanoseconds pasted into a round count), not a tuning choice.
  static constexpr uint32_t kMaxSchedPeriod = 1u << 20;

  // Returns an empty string when the config is usable, otherwise a
  // human-readable description of the first problem found. MakeKernel calls
  // this and treats a non-empty result as fatal.
  std::string Validate() const;
};

// Prints "unison: <message>" to stderr and aborts. The single error path for
// unusable configurations and API misuse (bad KernelConfig, AddLink after
// Finalize, ...), so every such failure looks the same to the user.
[[noreturn]] void FatalConfigError(const std::string& message);

class ExecutorPool;

class Kernel {
 public:
  explicit Kernel(const KernelConfig& config) : config_(config) {}
  virtual ~Kernel() = default;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // Builds LPs and mailbox wiring. `graph` must outlive the kernel; it is
  // re-read when a global event reports a topology change. Starts a fresh
  // session: session counters reset and session time rewinds to zero.
  virtual void Setup(const TopoGraph& graph, const Partition& partition);

  // Runs one window of the session: executes events with ts < `stop_time`,
  // then parks. May be called repeatedly with increasing stop times; model
  // and event state (LP clocks, FELs, tie-break sequence counters, pending
  // cross-LP messages) carries across windows, and the executor-pool threads
  // stay parked in between — no respawn per window. K windowed runs are
  // bit-identical to one monolithic run to the same stop time.
  virtual RunResult Run(Time stop_time) = 0;

  // --- Scheduling API used by the Simulator facade ---

  // Simulated time of the executing context: the current LP's clock, or zero
  // during setup.
  Time Now() const {
    const Lp* cur = Lp::Current();
    return cur != nullptr ? cur->now() : Time::Zero();
  }

  // Schedules `fn` at absolute time `abs` on the LP owning `node`.
  void ScheduleOnNode(NodeId node, Time abs, EventFn fn);

  // Schedules a global event on the public LP (topology change, stop, ...).
  void ScheduleGlobal(Time abs, EventFn fn);

  // Called from a global event after the topology changed: recomputes
  // lookahead values and adds mailbox wiring for new cut edges.
  void NotifyTopologyChanged();

  // Requests an early stop; takes effect at the next safe point of the
  // current window. A stop request ends one Run() — it does not poison the
  // session; the next Run() clears it and continues.
  void RequestStop() { stop_requested_ = true; }
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  // --- Introspection ---

  // Number of pool executors this kernel's Run() stamps with dense ids
  // (worker 0 = the calling thread). Valid after Setup. Network::Finalize
  // uses it to size per-executor state such as the FlowMonitor's shards; the
  // sequential kernel runs on the caller outside any pool, so its events see
  // no executor id at all — 1 is a safe upper bound.
  virtual uint32_t MaxExecutors() const { return 1; }

  // Invoked at the end of every Run() window, after the final barrier
  // reduction has quiesced all executors — the single point where
  // per-executor state can be merged without synchronization. Installed by
  // Network::Finalize to fold the FlowMonitor's shard deltas.
  void set_window_end_hook(std::function<void()> hook) {
    window_end_hook_ = std::move(hook);
  }

  uint32_t num_lps() const { return static_cast<uint32_t>(lps_.size()); }
  Lp* lp(LpId id) { return lps_[id].get(); }
  Lp* public_lp() { return public_lp_.get(); }
  LpId LpOfNode(NodeId node) const { return partition_.lp_of_node[node]; }
  const Partition& partition() const { return partition_; }
  const KernelConfig& config() const { return config_; }

  // Per-window counters: what the most recent Run() executed.
  uint64_t processed_events() const { return processed_events_; }
  uint64_t rounds() const { return rounds_; }

  // --- Snapshot/fork support ---

  // Cumulative session accumulators as one value, for snapshot capture and
  // fork restore. Restoring makes the next Run() continue exactly where the
  // captured session's next window would have started.
  struct SessionState {
    Time session_now;
    Time resume_floor;
    uint64_t session_events = 0;
    uint64_t session_rounds = 0;
    uint32_t session_windows = 0;
  };
  SessionState session_state() const {
    return SessionState{session_now_, resume_floor_, session_events_,
                        session_rounds_, session_windows_};
  }
  void RestoreSessionState(const SessionState& s) {
    session_now_ = s.session_now;
    resume_floor_ = s.resume_floor;
    session_events_ = s.session_events;
    session_rounds_ = s.session_rounds;
    session_windows_ = s.session_windows;
  }

  // The executor pool this kernel's Run() drives, or nullptr for kernels
  // that run on the caller alone (sequential). A fork hands this pool to the
  // child kernel so branch runs reuse the parent's warm, already-spawned
  // workers instead of spawning their own.
  virtual ExecutorPool* executor_pool() { return nullptr; }

  // Borrow another kernel's pool. Must be called before Setup(); the pooled
  // kernels resolve it there. The lender must outlive this kernel, and the
  // two must not Run() concurrently (ExecutorPool::Run is not reentrant) —
  // Session::Fork documents both constraints.
  void set_external_pool(ExecutorPool* pool) { external_pool_ = pool; }

  // Lineage tag stamped into every subsequent RunSummary.forked_from;
  // Session::Fork sets it to "snap-<digest>@w<windows>" so traces record
  // which snapshot a branch grew from.
  void set_lineage(std::string lineage) { lineage_ = std::move(lineage); }
  const std::string& lineage() const { return lineage_; }

  // Moves any events parked in kernel-private transport into the owning
  // LPs' FELs so a snapshot sees the complete event set. At a window
  // boundary only the null-message kernel has such residue (channel events
  // belonging to the next window); the move is execution-neutral — the next
  // window's receive phase would have performed the identical inserts.
  virtual void DrainTransportForSnapshot() {}

  // --- Session introspection (cumulative across Run() windows) ---

  // Simulated time up to which the session has been run: the stop time of
  // the last completed window (unchanged by an early stop, whose precise
  // progress point is kernel-internal).
  Time session_now() const { return session_now_; }
  uint64_t session_events() const { return session_events_; }
  uint64_t session_rounds() const { return session_rounds_; }
  uint32_t session_windows() const { return session_windows_; }

  // Events executed so far; safe to call from a global event mid-run (the
  // worker counters are quiescent during the global-event phase).
  virtual uint64_t LiveEvents() const { return processed_events_; }

  // --- Live tuning (two-tier config split) ---

  // Attaches the session's tunable store. The kernel samples it once per
  // Run() window, before any worker is released; absent a store, every
  // window runs on the KernelConfig values — the two paths are equivalent
  // when the store only ever holds its config-derived seed.
  void set_tunables(const TunableStore* store) { tunables_ = store; }

  // The tunable values one Run() window actually executed with, resolved
  // from store + config defaults. Refreshed at the start of each window;
  // FinishRun stamps it into the RunSummary.
  struct WindowTuning {
    uint64_t epoch = 0;
    uint32_t sched_period = 0;
    uint32_t parties = 0;  // Kernel-native knob units (see Tunables).
    AffinityPolicy affinity = AffinityPolicy::kNone;
    int64_t spec_horizon_ps = 0;  // 0 = speculation off this window.
  };
  const WindowTuning& window_tuning() const { return tuning_; }

  // --- Speculative window execution (DESIGN.md §3k) ---

  // Installs the session-level capture/restore hooks the window checkpoint
  // serializes through. Done by Network::Finalize under speculation=auto;
  // kernels without hooks never speculate.
  void set_checkpoint_hooks(SpecCheckpoint::CaptureFn capture,
                            SpecCheckpoint::RestoreFn restore) {
    spec_ckpt_.InstallHooks(std::move(capture), std::move(restore));
  }

  // Pool/counter introspection for tests and benches: how many checkpoints
  // were captured/restored and whether the pooled buffer is being reused.
  const SpecCheckpoint& spec_checkpoint() const { return spec_ckpt_; }

  // --- Live LP ownership (PR 9) ---

  // The live lp → executor assignment this kernel resolves through. Each
  // kernel installs its own domain in Setup (barrier/nullmsg: one executor
  // per LP; unison: worker slots; hybrid: ranks; sequential: the trivial
  // single-executor map).
  const PartitionMap& partition_map() const { return pmap_; }

  // Queues ownership moves to be applied at the next window boundary, before
  // any worker is released into the window (test/tooling hook; the
  // controller's move sets travel through the TunableStore instead).
  // Executor targets are folded modulo the kernel's domain on apply.
  void StageMigrations(const std::vector<LpMove>& moves) { pmap_.Stage(moves); }

  // Ownership state handed to the controller at each window boundary: the
  // live owner array plus the per-LP processing cost of the window that just
  // completed. `movable` is false for kernels that cannot benefit from moves
  // (sequential) — the rebalance rule then stays off.
  OwnershipView ownership_view() const {
    OwnershipView v;
    v.num_executors = pmap_.num_executors();
    v.movable = ownership_movable_;
    v.owner_of_lp = &pmap_.owners();
    v.lp_cost_ns = &lp_window_cost_ns_;
    return v;
  }

  // Snapshot restore: reinstalls a captured owner array and map epoch, then
  // rebuilds the kernel's executor-local structures. The owner values are
  // folded modulo this kernel's domain, so a snapshot taken under one kernel
  // restores meaningfully under another.
  void RestoreOwnership(std::vector<uint32_t> owners, uint64_t epoch) {
    pmap_.Restore(std::move(owners), epoch);
    OnOwnershipChanged();
  }

  void set_profiler(Profiler* profiler) { profiler_ = profiler; }
  Profiler* profiler() { return profiler_; }

  void set_trace(RunTrace* trace) { trace_ = trace; }
  RunTrace* trace() { return trace_; }

  // End-of-run aggregate, refreshed by every kernel at the end of Run()
  // whether or not profiling/tracing is enabled.
  const RunSummary& run_summary() const { return run_summary_; }

 protected:
  // Routes an event from `from` to a different LP. The base implementation
  // uses the wired outbox, falling back to the target's overflow box.
  // Overridden by kernels with their own transport (barrier ranks, null
  // message channels).
  virtual void ScheduleRemote(Lp* from, LpId target, Event ev);

  // Creates outboxes/inboxes for every cut edge of the partition.
  void WireMailboxes();

  // LBTS per Eq. 2: min(N_pub, min_i N_i + lookahead). Returns Time::Max()
  // when no events remain anywhere.
  Time ComputeLbts() const;

  // Executes public-LP events with ts <= `upto` (but < `stop`). Returns the
  // number of global events run.
  uint64_t RunGlobalEvents(Time upto, Time stop);

  // Start-of-window bookkeeping shared by every kernel: clears a stale stop
  // request (a stop ends one window, not the session) and records the window
  // start for the summary. RoundSync::BeginRun calls it for the engine
  // kernels; the sequential kernel calls it directly.
  void BeginWindow();

  // Window-boundary migration point, called once per Run() after the window's
  // tunables are sampled and before any worker is released: merges the
  // controller's move set (when the sampled rebalance_seq advances past the
  // last generation applied), applies everything staged, and — if ownership
  // actually changed — invokes OnOwnershipChanged() so the kernel can rebuild
  // its executor-local structures. Records the window's migration count for
  // FinishRun.
  void ApplyPendingMigrations();

  // Hook for kernels that mirror the partition map into their own structures
  // (hybrid's rank arrays). Called with the pool quiescent, after the map has
  // changed (migration apply or snapshot restore). Default: nothing — kernels
  // that read pmap_.owned() directly need no mirror.
  virtual void OnOwnershipChanged() {}

  // Adds to an LP's processing cost for the current window. Safe from
  // concurrent workers: an LP is processed by exactly one executor at a time,
  // and rounds are barrier-separated, so writes to one index never race.
  void AddLpWindowCost(LpId lp, uint64_t ns) { lp_window_cost_ns_[lp] += ns; }

  // Fills run_summary_ from processed_events_/rounds_ and the profiler's
  // totals (when attached and enabled), rolls the window into the session
  // aggregates, and hands the completed window to the trace recorder. Every
  // kernel calls this at the end of Run(); the return value is Run()'s.
  RunResult FinishRun(const char* kernel_name, uint32_t executors,
                      uint64_t wall_ns, Time stop, RunReason reason);

  // Conservative lower bound for resuming conservative-synchronization state
  // (null-message channel clocks): no event pending anywhere in the session
  // lies below it. Zero for a fresh session or after an early stop.
  Time resume_floor() const { return resume_floor_; }

  // Start-of-window speculation gate, called once per Run() by the opt-in
  // round kernels after tunables are sampled, migrations are applied, and the
  // session is quiescent. Resets the window's speculation stats, then decides
  // eligibility (hooks installed, deterministic mode, finite positive
  // lookahead, sampled spec_horizon_ps > 0) and captures the checkpoint.
  // Returns true when this window may run speculative rounds.
  bool BeginSpeculativeWindow();

  // Accounts one speculation attempt: `spec_rounds` optimistic rounds ran; on
  // a miss, rolls the session back to the window checkpoint (timed into
  // rollback_ns); on a hit, the rounds commit. FinishRun stamps the window's
  // totals into the RunSummary.
  void NoteSpecAttempt(uint32_t spec_rounds, bool miss);

  // Resolves this window's tunables: live store values where published,
  // config defaults otherwise, ceil(log2 n) when the period is still 0
  // (§4.3). `default_parties` is the config-derived knob value and also the
  // ceiling — per-executor state sized at Finalize is never exceeded;
  // kernels whose party count is structural pass parties_tunable=false.
  // Every kernel calls this at the start of Run(), before workers release.
  WindowTuning SampleTuning(uint32_t default_parties,
                            bool parties_tunable = true) const;

  friend class Simulator;
  friend class RoundSync;

  KernelConfig config_;
  const TopoGraph* graph_ = nullptr;
  Partition partition_;
  std::vector<std::unique_ptr<Lp>> lps_;
  std::unique_ptr<Lp> public_lp_;
  Profiler* profiler_ = nullptr;
  RunTrace* trace_ = nullptr;
  RunSummary run_summary_;
  uint64_t processed_events_ = 0;
  uint64_t rounds_ = 0;
  // Session aggregates across Run() windows; reset by Setup.
  Time session_now_;
  Time resume_floor_;
  uint64_t session_events_ = 0;
  uint64_t session_rounds_ = 0;
  uint32_t session_windows_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::mutex public_mu_;
  std::function<void()> window_end_hook_;
  ExecutorPool* external_pool_ = nullptr;  // Borrowed; see set_external_pool.
  std::string lineage_;                    // Empty unless forked.
  const TunableStore* tunables_ = nullptr;  // Borrowed; see set_tunables.
  WindowTuning tuning_;  // What the current/last window ran with.
  // Live lp → executor assignment; each kernel installs its domain in Setup.
  PartitionMap pmap_;
  bool ownership_movable_ = false;
  // Last controller move-set generation applied (Tunables::rebalance_seq).
  uint64_t applied_rebalance_seq_ = 0;
  // LPs that changed owner at this window's boundary (for the summary).
  uint32_t window_migrations_ = 0;
  // Per-LP processing cost of the current window, reset by BeginWindow; the
  // rebalance rule's LPT input.
  std::vector<uint64_t> lp_window_cost_ns_;
  // Speculation: the pooled window checkpoint and the current window's
  // speculation stats (reset by BeginSpeculativeWindow, stamped by
  // FinishRun). Kernels without checkpoint hooks leave them all zero.
  SpecCheckpoint spec_ckpt_;
  uint32_t spec_rounds_win_ = 0;
  uint32_t spec_hits_win_ = 0;
  uint32_t spec_misses_win_ = 0;
  uint64_t rollback_ns_win_ = 0;
};

// Constructs the kernel named by `config.type`.
std::unique_ptr<Kernel> MakeKernel(const KernelConfig& config);

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_KERNEL_H_
