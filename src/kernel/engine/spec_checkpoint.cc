#include "src/kernel/engine/spec_checkpoint.h"

namespace unison {

bool SpecCheckpoint::Capture() {
  valid_ = false;
  if (!installed()) return false;
  buf_.clear();  // Keeps capacity: the pool.
  if (!capture_(&buf_)) return false;
  ++captures_;
  valid_ = true;
  return true;
}

void SpecCheckpoint::Restore() {
  if (!valid_) return;
  restore_(buf_);
  ++restores_;
}

}  // namespace unison
