// Pooled in-memory window checkpoint for speculative execution.
//
// Speculation (DESIGN.md §3k) lets the round kernels run past the Eq. 2 LBTS
// bound and roll back on a causality miss. The rollback target is a slimmed,
// no-disk variant of the USNP session snapshot captured at the window
// boundary: mutable model state only (LP clocks + FELs, device/queue/TCP
// state, monitor counters, link up/delay), skipping everything immutable
// within one Run() window (topology encode, SimConfig, CDF specs, session
// accumulators). The byte buffer is pooled — capture clears it but keeps its
// capacity, so steady-state windows re-serialize into already-owned storage
// with no allocation once the high-water mark is reached.
//
// The serialization itself lives in src/net/session.cc (it reuses the
// snapshot writer/reader helpers); the kernel layer sees only the two hooks
// installed by Network::Finalize. Capture may refuse (return false) when the
// session holds state the format cannot represent (lambda events such as
// progress tickers); the kernel then falls back to conservative execution for
// that window — speculation is an optimization, never a requirement.
#ifndef UNISON_SRC_KERNEL_ENGINE_SPEC_CHECKPOINT_H_
#define UNISON_SRC_KERNEL_ENGINE_SPEC_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace unison {

class SpecCheckpoint {
 public:
  // Serializes the session's mutable window state into the pooled buffer;
  // false = state not representable, caller must not speculate this window.
  using CaptureFn = std::function<bool(std::vector<uint8_t>*)>;
  // Restores the session, in place, to the captured state.
  using RestoreFn = std::function<void(const std::vector<uint8_t>&)>;

  void InstallHooks(CaptureFn capture, RestoreFn restore) {
    capture_ = std::move(capture);
    restore_ = std::move(restore);
  }
  bool installed() const { return static_cast<bool>(capture_); }

  // Captures a checkpoint at the current window boundary. Returns false (and
  // invalidates any prior checkpoint) when no hooks are installed or the
  // capture hook refuses.
  bool Capture();

  // Rolls the session back to the last captured checkpoint. The checkpoint
  // stays valid — a window may in principle be re-rolled, though the kernels'
  // retry loop only ever restores once per window.
  void Restore();

  bool valid() const { return valid_; }
  uint64_t captures() const { return captures_; }
  uint64_t restores() const { return restores_; }
  size_t buffer_size() const { return buf_.size(); }
  size_t buffer_capacity() const { return buf_.capacity(); }

 private:
  CaptureFn capture_;
  RestoreFn restore_;
  std::vector<uint8_t> buf_;
  bool valid_ = false;
  uint64_t captures_ = 0;
  uint64_t restores_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_ENGINE_SPEC_CHECKPOINT_H_
