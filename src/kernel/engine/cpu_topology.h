// CPU topology detection and executor placement policies.
//
// PDES scaling past one socket is mostly a placement problem: a worker that
// migrates between cores drags the barrier and claim-cursor lines with it,
// and hybrid-kernel ranks that straddle sockets turn every all-reduce into
// cross-socket traffic. This module reads the machine's package/core layout
// (the CPUs this process may use, via sched_getaffinity, and their
// physical_package_id/core_id from sysfs) and turns a KernelConfig affinity
// policy into a concrete CPU order the ExecutorPool pins workers to.
//
// On non-Linux hosts — or when sysfs is unavailable — detection falls back to
// hardware_concurrency() with every CPU in one package, and pinning becomes a
// no-op; the policies stay accepted so configs are portable.
#ifndef UNISON_SRC_KERNEL_ENGINE_CPU_TOPOLOGY_H_
#define UNISON_SRC_KERNEL_ENGINE_CPU_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace unison {

// Worker-to-core placement policy, selected by KernelConfig::affinity.
enum class AffinityPolicy : uint8_t {
  kNone = 0,  // No pinning; the OS scheduler places workers.
  kCompact,   // Fill one package before the next; distinct physical cores
              // before SMT siblings. Ranks land socket-major (hybrid).
  kScatter,   // Round-robin across packages: maximizes aggregate cache and
              // memory bandwidth per worker.
};

// Stable identifier ("none" | "compact" | "scatter") for configs and traces.
const char* AffinityPolicyName(AffinityPolicy policy);

// Parses the identifier back; returns false (out untouched) on unknown names.
bool AffinityPolicyFromName(const std::string& name, AffinityPolicy* out);

struct CpuTopology {
  struct Cpu {
    uint32_t id = 0;       // OS CPU number.
    uint32_t package = 0;  // Socket (physical_package_id).
    uint32_t core = 0;     // Physical core within the package.
  };
  std::vector<Cpu> cpus;  // CPUs this process is allowed to run on.

  // Reads the live topology (sched_getaffinity + sysfs); portable fallback
  // is hardware_concurrency() CPUs in one package. Never returns empty.
  static CpuTopology Detect();

  // The CPU ids workers should be pinned to, in worker-id order, under
  // `policy`. Worker w uses order[w % order.size()] — when the party count
  // exceeds the machine, placement wraps instead of failing. Empty (no
  // pinning) for kNone.
  std::vector<uint32_t> PlacementOrder(AffinityPolicy policy) const;
};

// Pins the calling thread to `cpu`. Returns false where unsupported (the
// portable no-op) or when the kernel rejects the mask.
bool PinCurrentThreadToCpu(uint32_t cpu);

// Widens the calling thread's mask to all of `cpus` — the inverse of a pin,
// used when a live placement policy is dropped back to kNone. Returns false
// where unsupported or when `cpus` is empty.
bool PinCurrentThreadToCpus(const std::vector<uint32_t>& cpus);

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_ENGINE_CPU_TOPOLOGY_H_
