// A persistent team of workers that execute one body function in lockstep.
//
// The calling thread participates as worker 0, so a pool of N parties uses
// N-1 OS threads. Unlike the per-run WorkerTeam it replaces, the pool is
// created once (at Kernel::Setup) and its threads park in a futex wait
// between Run() invocations, so back-to-back runs on one kernel instance —
// and multi-run benches like bench_fig08b_speedup, which execute dozens of
// short simulations per process — never pay thread spawn/join more than once.
//
// Kernels hand the pool their whole round loop once per run; phase
// synchronization inside the loop is the kernel's job (SpinBarrier).
#ifndef UNISON_SRC_KERNEL_ENGINE_EXECUTOR_POOL_H_
#define UNISON_SRC_KERNEL_ENGINE_EXECUTOR_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace unison {

class ExecutorPool {
 public:
  ExecutorPool() = default;
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  // Ensures the pool has exactly `parties` workers, the caller counting as
  // worker 0. A no-op when the size already matches (the running threads are
  // reused); otherwise the old set is retired and a fresh one spawned.
  void Ensure(uint32_t parties);

  uint32_t parties() const { return parties_; }

  // Runs body(worker_id) on all workers, the caller included as id 0.
  // Returns when every worker has finished. Not reentrant.
  void Run(std::function<void(uint32_t)> body);

  // Cumulative OS threads spawned by this pool. Test hook: a second Run() on
  // the same pool must not move it.
  uint64_t threads_spawned() const { return threads_spawned_; }

  // Process-wide spawn counter across all pools, for tests that only hold a
  // Kernel and cannot reach its pool.
  static uint64_t TotalThreadsSpawned();

 private:
  void Shutdown();
  void Loop(uint32_t id, uint64_t seen);

  uint32_t parties_ = 0;
  std::function<void(uint32_t)> body_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> done_{0};
  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> threads_;
  uint64_t threads_spawned_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_ENGINE_EXECUTOR_POOL_H_
