// A persistent team of workers that execute one body function in lockstep.
//
// The calling thread participates as worker 0, so a pool of N parties uses
// N-1 OS threads. Unlike the per-run WorkerTeam it replaces, the pool is
// created once (at Kernel::Setup) and its threads park in a futex wait
// between Run() invocations, so back-to-back runs on one kernel instance —
// and multi-run benches like bench_fig08b_speedup, which execute dozens of
// short simulations per process — never pay thread spawn/join more than once.
//
// The thread set is a high-water mark: Ensure() grows it by spawning only the
// missing workers and shrinks it in place by parking the excess (they skip
// run epochs until a later Ensure re-enlists them), so alternating kernel
// configurations in one process never churn OS threads.
//
// With a placement policy set (SetPlacement, before the first Ensure), the
// caller and every spawned worker are pinned to cores per the policy's CPU
// order (see cpu_topology.h); worker w gets order[w % order.size()].
//
// Kernels hand the pool their whole round loop once per run; phase
// synchronization inside the loop is the kernel's job (CombiningBarrier).
#ifndef UNISON_SRC_KERNEL_ENGINE_EXECUTOR_POOL_H_
#define UNISON_SRC_KERNEL_ENGINE_EXECUTOR_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/kernel/engine/cpu_topology.h"

namespace unison {

class ExecutorPool {
 public:
  ExecutorPool() = default;
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  // Selects the worker placement policy. Takes effect at the next Ensure()
  // that spawns or (for the caller pin) first activates placement; call it
  // before the first Ensure — kernels do so in Setup.
  void SetPlacement(AffinityPolicy policy) { placement_ = policy; }

  // Live placement change between runs: re-pins the caller now and each
  // worker lazily at its next run epoch (no thread is retired or spawned).
  // Dropping back to kNone widens every thread to the pre-pin CPU set. Call
  // only with no Run() in flight — kernels do so when sampling tunables.
  void ApplyPlacement(AffinityPolicy policy);

  // Ensures the pool runs `parties` workers, the caller counting as worker 0.
  // Growth beyond the high-water mark spawns only the missing threads;
  // shrinking parks the excess in place (no retire/respawn).
  void Ensure(uint32_t parties);

  uint32_t parties() const { return parties_; }

  // Runs body(worker_id) on all workers, the caller included as id 0.
  // Returns when every worker has finished. Not reentrant.
  void Run(std::function<void(uint32_t)> body);

  // Cumulative OS threads spawned by this pool. Test hook: a second Run() on
  // the same pool — or an Ensure() at or below the high-water mark — must not
  // move it.
  uint64_t threads_spawned() const { return threads_spawned_; }

  // Process-wide spawn counter across all pools, for tests that only hold a
  // Kernel and cannot reach its pool.
  static uint64_t TotalThreadsSpawned();

 private:
  void Shutdown();
  void Loop(uint32_t id, uint64_t seen, uint64_t pin_gen);
  // Caches the machine topology (and the full allowed-CPU set, for un-pin)
  // once, before any pin narrows the mask Detect() reads.
  void EnsureTopology();

  // Active party count for the current/next Run. Plain field: workers read it
  // only after acquiring the run epoch, which the caller bumps (release)
  // strictly after any Ensure() write.
  uint32_t parties_ = 0;
  std::function<void(uint32_t)> body_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> done_{0};
  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> threads_;  // High-water set; ids 1..size().
  uint64_t threads_spawned_ = 0;
  AffinityPolicy placement_ = AffinityPolicy::kNone;
  std::vector<uint32_t> cpu_order_;  // Pin targets; empty = no pinning.
  // Bumped on every placement change; workers re-pin when their last-seen
  // generation lags. Plain field under the same epoch release/acquire edge
  // as parties_.
  uint64_t placement_gen_ = 0;
  bool caller_pinned_ = false;
  bool topology_cached_ = false;
  CpuTopology topology_;
  std::vector<uint32_t> all_cpus_;  // Allowed set before any pin; for un-pin.
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_ENGINE_EXECUTOR_POOL_H_
