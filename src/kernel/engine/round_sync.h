// The shared coordinator prologue of the barrier-phase kernels.
//
// Barrier, Unison, and hybrid each used to carry a private copy of the same
// start-of-round logic: fold the workers' min-reduction into the Eq. 2 LBTS,
// run the stop/termination check, and open the profiler/trace round. Copies
// drift — the cross-kernel time-composition comparisons (Figs. 5b/9b/13) are
// only trustworthy when every kernel runs identically-audited machinery — so
// RoundSync is the single implementation, parameterized by kernel name. The
// null-message kernel keeps its channel-local windows (it has no global
// rounds) but uses BeginRun for the same run-level bookkeeping.
//
// All methods are coordinator-only (worker 0 / rank 0, between barriers),
// except min(): that is the atomic the workers' partial minima fold into
// during the window-update phase.
#ifndef UNISON_SRC_KERNEL_ENGINE_ROUND_SYNC_H_
#define UNISON_SRC_KERNEL_ENGINE_ROUND_SYNC_H_

#include <cstdint>
#include <vector>

#include "src/core/time.h"
#include "src/kernel/kernel.h"
#include "src/sched/barrier_sync.h"

namespace unison {

class RoundSync {
 public:
  explicit RoundSync(Kernel* kernel) : kernel_(kernel) {}

  RoundSync(const RoundSync&) = delete;
  RoundSync& operator=(const RoundSync&) = delete;

  // Once per Run window: caches the profiling/tracing flags, begins the
  // profiler and trace runs under `kernel_name`, clears any stale stop
  // request (Kernel::BeginWindow), and resets the round/termination state.
  // Session state — LP clocks, FELs, mailboxes — is deliberately untouched:
  // a window continues the session, it does not restart it.
  void BeginRun(const char* kernel_name, uint32_t executors, Time stop);

  // Seeds the min-reduction with every LP's next event timestamp. Kernels
  // whose workers fold partial minima at the *end* of each round need this
  // before the first prologue.
  void SeedMinFromLps();

  // Folds the min-reduction into the Eq. 2 LBTS and runs the stop/termination
  // check. Returns false — and latches done() with a reason() — when the
  // window is over. "Window boundary reached" (events remain past the stop
  // time; the session can continue) is distinguished from genuine
  // termination (every FEL empty, or an early stop request).
  bool ComputeWindow();

  // Opens round round_index(): begins the profiler and trace rounds, then
  // advances the index. `events_before` is the kernel's live event count.
  void CommitRound(uint64_t events_before);

  // Attaches a re-sorted scheduler claim order to the round just committed.
  void RecordClaimOrder(const std::vector<uint32_t>& order);

  bool profiling() const { return profiling_; }
  bool tracing() const { return tracing_; }
  bool done() const { return done_; }
  // Why done() latched; meaningful only once it has.
  RunReason reason() const { return reason_; }
  Time stop() const { return stop_; }
  Time lbts() const { return lbts_; }
  Time window() const { return window_; }
  uint32_t round_index() const { return round_index_; }

  AtomicTimeMin& min() { return next_min_; }
  void ResetMin() { next_min_.Reset(); }

 private:
  Kernel* const kernel_;
  Time stop_;
  Time lbts_;
  Time window_;
  // Written by the coordinator between barriers, read by every worker after
  // the next barrier; the barrier's acquire/release ordering publishes it.
  bool done_ = false;
  RunReason reason_ = RunReason::kExhausted;
  bool profiling_ = false;
  bool tracing_ = false;
  uint32_t round_index_ = 0;
  AtomicTimeMin next_min_;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_ENGINE_ROUND_SYNC_H_
