// The shared coordinator prologue of the barrier-phase kernels.
//
// Barrier, Unison, and hybrid each used to carry a private copy of the same
// start-of-round logic: fold the workers' min-reduction into the Eq. 2 LBTS,
// run the stop/termination check, and open the profiler/trace round. Copies
// drift — the cross-kernel time-composition comparisons (Figs. 5b/9b/13) are
// only trustworthy when every kernel runs identically-audited machinery — so
// RoundSync is the single implementation, parameterized by kernel name. The
// null-message kernel keeps its channel-local windows (it has no global
// rounds) but uses BeginRun for the same run-level bookkeeping.
//
// The reduction inputs no longer arrive through a shared CAS line: workers
// contribute their partial {min, event count, stop flag} to the
// CombiningBarrier's fused arrival pass, and the coordinator Absorb()s the
// tree's published result between barriers. Every method here is
// coordinator-only (worker 0 / rank 0, between barriers).
#ifndef UNISON_SRC_KERNEL_ENGINE_ROUND_SYNC_H_
#define UNISON_SRC_KERNEL_ENGINE_ROUND_SYNC_H_

#include <cstdint>
#include <vector>

#include "src/core/time.h"
#include "src/kernel/kernel.h"
#include "src/sched/combining_barrier.h"

namespace unison {

class RoundSync {
 public:
  explicit RoundSync(Kernel* kernel) : kernel_(kernel) {}

  RoundSync(const RoundSync&) = delete;
  RoundSync& operator=(const RoundSync&) = delete;

  // Once per Run window: caches the profiling/tracing flags, begins the
  // profiler and trace runs under `kernel_name`, clears any stale stop
  // request (Kernel::BeginWindow), and resets the round/termination state.
  // Session state — LP clocks, FELs, mailboxes — is deliberately untouched:
  // a window continues the session, it does not restart it.
  void BeginRun(const char* kernel_name, uint32_t executors, Time stop);

  // Seeds the reduced minimum with every LP's next event timestamp. Kernels
  // whose workers contribute partial minima at the *end* of each round need
  // this before the first prologue.
  void SeedMinFromLps();

  // Copies the fused reduction the barrier published on its last release —
  // min next-event timestamp, summed event count, OR'd stop flags — into the
  // coordinator's window state. Call after the reduction barrier, before
  // ComputeWindow.
  void Absorb(const CombiningBarrier& barrier);

  // Folds the reduced minimum into the Eq. 2 LBTS and runs the
  // stop/termination check. Returns false — and latches done() with a
  // reason() — when the window is over. "Window boundary reached" (events
  // remain past the stop time; the session can continue) is distinguished
  // from genuine termination (every FEL empty, or an early stop request).
  bool ComputeWindow();

  // Opens round round_index(): begins the profiler and trace rounds, then
  // advances the index. `events_before` is the kernel's live event count.
  void CommitRound(uint64_t events_before);

  // Attaches a re-sorted scheduler claim order to the round just committed.
  void RecordClaimOrder(const std::vector<uint32_t>& order);

  // Trace hook for the reduction barrier: the coordinator's observed
  // arrive-to-release latency plus the barrier's cumulative park counter
  // (converted to a per-round delta here). Attaches to the round most
  // recently committed; gated on tracing().
  void RecordBarrierWait(uint64_t barrier_ns, uint64_t parks_cumulative);
  // Baselines the park-delta accounting; call once after BeginRun with the
  // barrier's current cumulative count.
  void SetParkBaseline(uint64_t parks_cumulative) {
    parks_baseline_ = parks_cumulative;
  }

  bool profiling() const { return profiling_; }
  bool tracing() const { return tracing_; }
  bool done() const { return done_; }
  // Why done() latched; meaningful only once it has.
  RunReason reason() const { return reason_; }
  Time stop() const { return stop_; }
  Time lbts() const { return lbts_; }
  Time window() const { return window_; }
  uint32_t round_index() const { return round_index_; }
  // Event count from the last Absorb(): the cross-worker total as of the
  // reduction barrier — the live events_before input to CommitRound.
  uint64_t reduced_events() const { return reduced_events_; }

 private:
  Kernel* const kernel_;
  Time stop_;
  Time lbts_;
  Time window_;
  // Written by the coordinator between barriers, read by every worker after
  // the next barrier; the barrier's acquire/release ordering publishes it.
  bool done_ = false;
  RunReason reason_ = RunReason::kExhausted;
  bool profiling_ = false;
  bool tracing_ = false;
  uint32_t round_index_ = 0;
  // Last absorbed reduction (coordinator-only).
  int64_t reduced_min_ps_ = INT64_MAX;
  uint64_t reduced_events_ = 0;
  bool reduced_stop_ = false;
  uint64_t parks_baseline_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_ENGINE_ROUND_SYNC_H_
