// The shared coordinator prologue of the barrier-phase kernels.
//
// Barrier, Unison, and hybrid each used to carry a private copy of the same
// start-of-round logic: fold the workers' min-reduction into the Eq. 2 LBTS,
// run the stop/termination check, and open the profiler/trace round. Copies
// drift — the cross-kernel time-composition comparisons (Figs. 5b/9b/13) are
// only trustworthy when every kernel runs identically-audited machinery — so
// RoundSync is the single implementation, parameterized by kernel name. The
// null-message kernel keeps its channel-local windows (it has no global
// rounds) but uses BeginRun for the same run-level bookkeeping.
//
// The reduction inputs no longer arrive through a shared CAS line: workers
// contribute their partial {min, event count, stop flag} to the
// CombiningBarrier's fused arrival pass, and the coordinator Absorb()s the
// tree's published result between barriers. Every method here is
// coordinator-only (worker 0 / rank 0, between barriers).
#ifndef UNISON_SRC_KERNEL_ENGINE_ROUND_SYNC_H_
#define UNISON_SRC_KERNEL_ENGINE_ROUND_SYNC_H_

#include <cstdint>
#include <vector>

#include "src/core/time.h"
#include "src/kernel/kernel.h"
#include "src/sched/combining_barrier.h"

namespace unison {

class RoundSync {
 public:
  explicit RoundSync(Kernel* kernel) : kernel_(kernel) {}

  RoundSync(const RoundSync&) = delete;
  RoundSync& operator=(const RoundSync&) = delete;

  // Once per Run window: caches the profiling/tracing flags, begins the
  // profiler and trace runs under `kernel_name`, clears any stale stop
  // request (Kernel::BeginWindow), and resets the round/termination state.
  // Session state — LP clocks, FELs, mailboxes — is deliberately untouched:
  // a window continues the session, it does not restart it.
  void BeginRun(const char* kernel_name, uint32_t executors, Time stop);

  // Seeds the reduced minimum with every LP's next event timestamp. Kernels
  // whose workers contribute partial minima at the *end* of each round need
  // this before the first prologue.
  void SeedMinFromLps();

  // Copies the fused reduction the barrier published on its last release —
  // min next-event timestamp, summed event count, OR'd stop flags — into the
  // coordinator's window state. Call after the reduction barrier, before
  // ComputeWindow.
  void Absorb(const CombiningBarrier& barrier);

  // Folds the reduced minimum into the Eq. 2 LBTS and runs the
  // stop/termination check. Returns false — and latches done() with a
  // reason() — when the window is over. "Window boundary reached" (events
  // remain past the stop time; the session can continue) is distinguished
  // from genuine termination (every FEL empty, or an early stop request).
  //
  // Under speculation (EnableSpeculation after BeginRun) the round bound may
  // additionally extend up to spec_horizon_ps past the conservative LBTS —
  // capped at the public LP's next event, so a pending global never executes
  // with LP state it could not have seen conservatively. lbts() itself stays
  // the conservative Eq. 2 value. ComputeWindow also runs the miss checks: a
  // worker-flagged causality violation (kSpecMissFlag), a straggler global
  // that landed below the already-covered bound, or a stop request arriving
  // after optimistic rounds ran, each latch spec_miss() and end the attempt
  // without a valid reason() — the kernel then rolls back and re-runs the
  // window conservatively.
  bool ComputeWindow();

  // Arms speculation for this attempt; call right after BeginRun, only when
  // the window checkpoint was captured (Kernel::BeginSpeculativeWindow).
  void EnableSpeculation(int64_t horizon_ps) {
    spec_enabled_ = horizon_ps > 0;
    spec_horizon_ps_ = horizon_ps;
  }

  // True once at least one round of this attempt extended past the LBTS:
  // workers gate the per-LP arrival check on it (in conservative rounds the
  // check is vacuous — arrivals always land at or above the round's LBTS).
  // Coordinator-written between barriers, worker-read after them.
  bool spec_active() const { return spec_enabled_ && spec_rounds_ > 0; }

  // Phase-2 guard, coordinator-only, before RunGlobalEvents: false when a
  // straggler global (scheduled mid-round from an LP event) landed below the
  // covered bound — executing it would observe speculative state, and its
  // side effects (topology mutations) are not all in the checkpoint. The
  // caller skips the global phase; the next ComputeWindow latches the miss.
  bool SpecAllowsGlobals() const;

  // Whether this attempt ended in a causality miss; the kernel's retry loop
  // restores the checkpoint and re-runs conservatively when set.
  bool spec_miss() const { return spec_miss_; }
  // Rounds of this attempt whose bound extended past the conservative LBTS.
  uint32_t spec_rounds() const { return spec_rounds_; }

  // Opens round round_index(): begins the profiler and trace rounds, then
  // advances the index. `events_before` is the kernel's live event count.
  void CommitRound(uint64_t events_before);

  // Attaches a re-sorted scheduler claim order to the round just committed.
  void RecordClaimOrder(const std::vector<uint32_t>& order);

  // Trace hook for the reduction barrier: the coordinator's observed
  // arrive-to-release latency plus the barrier's cumulative park counter
  // (converted to a per-round delta here). Attaches to the round most
  // recently committed; gated on tracing().
  void RecordBarrierWait(uint64_t barrier_ns, uint64_t parks_cumulative);
  // Baselines the park-delta accounting; call once after BeginRun with the
  // barrier's current cumulative count.
  void SetParkBaseline(uint64_t parks_cumulative) {
    parks_baseline_ = parks_cumulative;
  }

  bool profiling() const { return profiling_; }
  bool tracing() const { return tracing_; }
  bool done() const { return done_; }
  // Why done() latched; meaningful only once it has.
  RunReason reason() const { return reason_; }
  Time stop() const { return stop_; }
  Time lbts() const { return lbts_; }
  Time window() const { return window_; }
  uint32_t round_index() const { return round_index_; }
  // Event count from the last Absorb(): the cross-worker total as of the
  // reduction barrier — the live events_before input to CommitRound.
  uint64_t reduced_events() const { return reduced_events_; }

 private:
  Kernel* const kernel_;
  Time stop_;
  Time lbts_;
  Time window_;
  // Written by the coordinator between barriers, read by every worker after
  // the next barrier; the barrier's acquire/release ordering publishes it.
  bool done_ = false;
  RunReason reason_ = RunReason::kExhausted;
  bool profiling_ = false;
  bool tracing_ = false;
  uint32_t round_index_ = 0;
  // Last absorbed reduction (coordinator-only).
  int64_t reduced_min_ps_ = INT64_MAX;
  uint64_t reduced_events_ = 0;
  bool reduced_stop_ = false;
  uint64_t parks_baseline_ = 0;
  // Speculation state (reset by BeginRun, armed by EnableSpeculation).
  // covered_ is the maximum round bound issued this attempt — the watermark
  // the straggler and global-phase guards compare the public FEL against.
  bool spec_enabled_ = false;
  bool spec_miss_ = false;
  bool reduced_spec_miss_ = false;
  int64_t spec_horizon_ps_ = 0;
  uint32_t spec_rounds_ = 0;
  Time covered_;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_ENGINE_ROUND_SYNC_H_
