#include "src/kernel/engine/round_sync.h"

#include <algorithm>
#include <cstdint>

#include "src/kernel/kernel.h"

namespace unison {

void RoundSync::BeginRun(const char* kernel_name, uint32_t executors, Time stop) {
  kernel_->BeginWindow();
  stop_ = stop;
  lbts_ = Time::Zero();
  window_ = Time::Zero();
  done_ = false;
  reason_ = RunReason::kExhausted;
  round_index_ = 0;
  next_min_.Reset();
  Profiler* const profiler = kernel_->profiler();
  RunTrace* const trace = kernel_->trace();
  profiling_ = profiler != nullptr && profiler->enabled;
  tracing_ = trace != nullptr && trace->enabled;
  if (profiling_) {
    profiler->BeginRun(executors);
  }
  if (tracing_) {
    trace->BeginRun(kernel_name, executors, kernel_->num_lps());
  }
}

void RoundSync::SeedMinFromLps() {
  for (uint32_t i = 0; i < kernel_->num_lps(); ++i) {
    next_min_.Update(kernel_->lp(i)->fel().NextTimestamp().ps());
  }
}

bool RoundSync::ComputeWindow() {
  const int64_t raw_min = next_min_.Get();
  const Time min_next =
      raw_min == INT64_MAX ? Time::Max() : Time::Picoseconds(raw_min);
  const Time npub = kernel_->public_lp()->fel().NextTimestamp();
  if (kernel_->stop_requested()) {
    done_ = true;
    reason_ = RunReason::kStopRequested;
    return false;
  }
  if (min_next.IsMax() && npub.IsMax()) {
    done_ = true;
    reason_ = RunReason::kExhausted;
    return false;
  }
  if (std::min(min_next, npub) >= stop_) {
    // Events remain at or past the stop time: a window boundary, not
    // termination — the next Run() on this session picks them up.
    done_ = true;
    reason_ = RunReason::kWindowReached;
    return false;
  }
  const Time lookahead = kernel_->partition().lookahead;
  if (min_next.IsMax() || lookahead.IsMax()) {
    lbts_ = npub;
  } else {
    lbts_ = std::min(npub, min_next + lookahead);
  }
  window_ = std::min(lbts_, stop_);
  return true;
}

void RoundSync::CommitRound(uint64_t events_before) {
  if (profiling_) {
    kernel_->profiler()->BeginRound();
  }
  if (tracing_) {
    kernel_->trace()->BeginRound(round_index_, lbts_, window_, events_before);
  }
  ++round_index_;
}

void RoundSync::RecordClaimOrder(const std::vector<uint32_t>& order) {
  if (tracing_) {
    kernel_->trace()->RecordClaimOrder(order);
  }
}

}  // namespace unison
