#include "src/kernel/engine/round_sync.h"

#include <algorithm>
#include <cstdint>

#include "src/kernel/kernel.h"

namespace unison {

void RoundSync::BeginRun(const char* kernel_name, uint32_t executors, Time stop) {
  kernel_->BeginWindow();
  stop_ = stop;
  lbts_ = Time::Zero();
  window_ = Time::Zero();
  done_ = false;
  reason_ = RunReason::kExhausted;
  round_index_ = 0;
  reduced_min_ps_ = INT64_MAX;
  reduced_events_ = 0;
  reduced_stop_ = false;
  parks_baseline_ = 0;
  spec_enabled_ = false;
  spec_miss_ = false;
  reduced_spec_miss_ = false;
  spec_horizon_ps_ = 0;
  spec_rounds_ = 0;
  covered_ = Time::Zero();
  Profiler* const profiler = kernel_->profiler();
  RunTrace* const trace = kernel_->trace();
  profiling_ = profiler != nullptr && profiler->enabled;
  tracing_ = trace != nullptr && trace->enabled;
  if (profiling_) {
    profiler->BeginRun(executors);
  }
  if (tracing_) {
    trace->BeginRun(kernel_name, executors, kernel_->num_lps());
  }
}

void RoundSync::SeedMinFromLps() {
  for (uint32_t i = 0; i < kernel_->num_lps(); ++i) {
    reduced_min_ps_ =
        std::min(reduced_min_ps_, kernel_->lp(i)->fel().NextTimestamp().ps());
  }
}

void RoundSync::Absorb(const CombiningBarrier& barrier) {
  reduced_min_ps_ = barrier.reduced_min();
  reduced_events_ = barrier.reduced_count();
  reduced_stop_ = (barrier.reduced_flags() & CombiningBarrier::kStopFlag) != 0;
  reduced_spec_miss_ =
      (barrier.reduced_flags() & CombiningBarrier::kSpecMissFlag) != 0;
}

bool RoundSync::ComputeWindow() {
  const Time min_next = reduced_min_ps_ == INT64_MAX
                            ? Time::Max()
                            : Time::Picoseconds(reduced_min_ps_);
  const Time npub = kernel_->public_lp()->fel().NextTimestamp();
  if (spec_enabled_ && spec_rounds_ > 0) {
    // Miss checks, ahead of every termination check so an attempt that
    // speculated never commits through a hazard. (1) a worker's per-LP
    // arrival check flagged a violation; (2) a straggler global — scheduled
    // mid-round from an LP event — landed below the covered bound, where it
    // would observe speculative state; (3) a stop request: model-driven
    // stops must fire from a conservative execution to stop at the exact
    // conservative point, so the rollback re-runs and re-observes them.
    if (reduced_spec_miss_ || npub < covered_ || reduced_stop_ ||
        kernel_->stop_requested()) {
      done_ = true;
      spec_miss_ = true;
      return false;
    }
  }
  if (reduced_stop_ || kernel_->stop_requested()) {
    done_ = true;
    reason_ = RunReason::kStopRequested;
    return false;
  }
  if (min_next.IsMax() && npub.IsMax()) {
    done_ = true;
    reason_ = RunReason::kExhausted;
    return false;
  }
  if (std::min(min_next, npub) >= stop_) {
    // Events remain at or past the stop time: a window boundary, not
    // termination — the next Run() on this session picks them up.
    done_ = true;
    reason_ = RunReason::kWindowReached;
    return false;
  }
  const Time lookahead = kernel_->partition().lookahead;
  if (min_next.IsMax() || lookahead.IsMax()) {
    lbts_ = npub;
  } else {
    lbts_ = std::min(npub, min_next + lookahead);
  }
  window_ = std::min(lbts_, stop_);
  if (spec_enabled_) {
    if (!min_next.IsMax() && !lookahead.IsMax()) {
      // Optimistic extension: up to spec_horizon_ps past the Eq. 2 bound,
      // but never past the next global (all LP events below a global's
      // timestamp are processed before it executes, conservatively or not —
      // capping here keeps the global's observed state bit-identical) and
      // never past the caller's stop time.
      const Time bound = std::min(
          npub, min_next + lookahead + Time::Picoseconds(spec_horizon_ps_));
      const Time spec_window = std::min(bound, stop_);
      if (spec_window > window_) {
        window_ = spec_window;
        ++spec_rounds_;
      }
    }
    covered_ = std::max(covered_, window_);
  }
  return true;
}

bool RoundSync::SpecAllowsGlobals() const {
  if (!spec_enabled_ || spec_rounds_ == 0) {
    return true;
  }
  // Re-read the public FEL: phase 1 of this round may have scheduled a
  // global (Kernel::ScheduleGlobal from an LP event, mutex path) below the
  // covered bound. Such a straggler must not execute against speculative
  // state; skipping the phase leaves it pending, and the next ComputeWindow's
  // straggler check latches the miss.
  return kernel_->public_lp()->fel().NextTimestamp() >= covered_;
}

void RoundSync::CommitRound(uint64_t events_before) {
  if (profiling_) {
    kernel_->profiler()->BeginRound();
  }
  if (tracing_) {
    kernel_->trace()->BeginRound(round_index_, lbts_, window_, events_before);
  }
  ++round_index_;
}

void RoundSync::RecordClaimOrder(const std::vector<uint32_t>& order) {
  if (tracing_) {
    kernel_->trace()->RecordClaimOrder(order);
  }
}

void RoundSync::RecordBarrierWait(uint64_t barrier_ns, uint64_t parks_cumulative) {
  if (!tracing_) {
    return;
  }
  const uint64_t parked = parks_cumulative - parks_baseline_;
  parks_baseline_ = parks_cumulative;
  kernel_->trace()->RecordBarrier(barrier_ns, parked);
}

}  // namespace unison
