#include "src/kernel/engine/cpu_topology.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace unison {

const char* AffinityPolicyName(AffinityPolicy policy) {
  switch (policy) {
    case AffinityPolicy::kNone:
      return "none";
    case AffinityPolicy::kCompact:
      return "compact";
    case AffinityPolicy::kScatter:
      return "scatter";
  }
  return "unknown";
}

bool AffinityPolicyFromName(const std::string& name, AffinityPolicy* out) {
  if (name == "none") {
    *out = AffinityPolicy::kNone;
  } else if (name == "compact") {
    *out = AffinityPolicy::kCompact;
  } else if (name == "scatter") {
    *out = AffinityPolicy::kScatter;
  } else {
    return false;
  }
  return true;
}

namespace {

#if defined(__linux__)
// Reads a small non-negative integer from a sysfs file; `fallback` when the
// file is missing (containers often mask sysfs) or unparsable.
int ReadSysfsInt(const char* path, int fallback) {
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    return fallback;
  }
  int value = fallback;
  if (std::fscanf(f, "%d", &value) != 1 || value < 0) {
    value = fallback;
  }
  std::fclose(f);
  return value;
}
#endif

}  // namespace

CpuTopology CpuTopology::Detect() {
  CpuTopology topo;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (uint32_t cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (!CPU_ISSET(cpu, &mask)) {
        continue;
      }
      char path[128];
      std::snprintf(path, sizeof(path),
                    "/sys/devices/system/cpu/cpu%u/topology/physical_package_id",
                    cpu);
      const int package = ReadSysfsInt(path, 0);
      std::snprintf(path, sizeof(path),
                    "/sys/devices/system/cpu/cpu%u/topology/core_id", cpu);
      // Missing core_id degrades to "every CPU its own core", which keeps
      // compact placement sane (no false SMT siblings).
      const int core = ReadSysfsInt(path, static_cast<int>(cpu));
      topo.cpus.push_back(Cpu{cpu, static_cast<uint32_t>(package),
                              static_cast<uint32_t>(core)});
    }
  }
#endif
  if (topo.cpus.empty()) {
    uint32_t n = std::thread::hardware_concurrency();
    if (n == 0) {
      n = 1;
    }
    for (uint32_t cpu = 0; cpu < n; ++cpu) {
      topo.cpus.push_back(Cpu{cpu, 0, cpu});
    }
  }
  return topo;
}

std::vector<uint32_t> CpuTopology::PlacementOrder(AffinityPolicy policy) const {
  if (policy == AffinityPolicy::kNone || cpus.empty()) {
    return {};
  }
  // Per-package CPU orders: distinct physical cores first (one CPU per core,
  // lowest id), then the SMT siblings — a worker should own a core before any
  // core is double-booked.
  std::map<uint32_t, std::vector<Cpu>> by_package;
  for (const Cpu& c : cpus) {
    by_package[c.package].push_back(c);
  }
  std::vector<std::vector<uint32_t>> package_orders;
  for (auto& [package, list] : by_package) {
    (void)package;
    std::sort(list.begin(), list.end(), [](const Cpu& a, const Cpu& b) {
      return a.core != b.core ? a.core < b.core : a.id < b.id;
    });
    std::vector<uint32_t> firsts;
    std::vector<uint32_t> siblings;
    std::set<uint32_t> seen_cores;
    for (const Cpu& c : list) {
      (seen_cores.insert(c.core).second ? firsts : siblings).push_back(c.id);
    }
    firsts.insert(firsts.end(), siblings.begin(), siblings.end());
    package_orders.push_back(std::move(firsts));
  }

  std::vector<uint32_t> order;
  order.reserve(cpus.size());
  if (policy == AffinityPolicy::kCompact) {
    for (const auto& pkg : package_orders) {
      order.insert(order.end(), pkg.begin(), pkg.end());
    }
  } else {  // kScatter: round-robin across packages.
    size_t depth = 0;
    bool more = true;
    while (more) {
      more = false;
      for (const auto& pkg : package_orders) {
        if (depth < pkg.size()) {
          order.push_back(pkg[depth]);
          more = true;
        }
      }
      ++depth;
    }
  }
  return order;
}

bool PinCurrentThreadToCpu(uint32_t cpu) {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(cpu, &mask);
  return sched_setaffinity(0, sizeof(mask), &mask) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool PinCurrentThreadToCpus(const std::vector<uint32_t>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) {
    return false;
  }
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (uint32_t cpu : cpus) {
    if (cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &mask);
    }
  }
  return sched_setaffinity(0, sizeof(mask), &mask) == 0;
#else
  (void)cpus;
  return false;
#endif
}

}  // namespace unison
