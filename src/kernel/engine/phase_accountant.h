// Executor-local phase accounting for the parallel kernels' round loops.
//
// PhaseAccountant owns the wall-clock cursor each kernel used to hand-roll
// around every phase boundary: an interval is opened at the cursor, and each
// Close* call routes the elapsed time into exactly one of the P/S/M buckets —
// the executor-local total and the per-round profiler row are written in the
// same call, with the same delta. The accounting invariant the profiler tests
// rely on ("per-round rows sum exactly to executor totals") therefore holds
// by construction: there is no code path that adds time to a total without
// the matching row, or vice versa. Both accounting bugs fixed in earlier PRs
// (the worker-0 P undercount and the unmeasured phase-2 gap) were instances
// of exactly that divergence, hand-duplicated per kernel.
//
// The destructor publishes the totals into the profiler's executor slot
// (RAII), so a kernel cannot forget the end-of-run flush either. All state is
// executor-private: the profiler's executor-major matrices are only ever
// written on this executor's own rows, keyed by the worker-local round index
// the kernel mirrors via BeginRound (see profiler.h on why that is safe).
#ifndef UNISON_SRC_KERNEL_ENGINE_PHASE_ACCOUNTANT_H_
#define UNISON_SRC_KERNEL_ENGINE_PHASE_ACCOUNTANT_H_

#include <cstdint>

#include "src/stats/profiler.h"

namespace unison {

class PhaseAccountant {
 public:
  // `timing` enables the clock reads: profiling, or a scheduling metric that
  // needs per-round measurements. `profiler` routes per-round rows and the
  // final totals; it is ignored unless attached and enabled (timing can be on
  // purely for scheduling). When `timing` is false every call is a no-op.
  PhaseAccountant(uint32_t executor, bool timing, Profiler* profiler)
      : executor_(executor),
        timing_(timing),
        profiler_(profiler != nullptr && profiler->enabled ? profiler : nullptr) {}

  ~PhaseAccountant() { Flush(); }

  PhaseAccountant(const PhaseAccountant&) = delete;
  PhaseAccountant& operator=(const PhaseAccountant&) = delete;

  bool timing() const { return timing_; }

  // (Re)opens the interval at "now", discarding any time since the last
  // close. Call at the top of each round iteration — and after any work that
  // must stay unattributed, such as the termination iteration's barrier wait,
  // which has no round row to land in (rows must keep summing to totals).
  void OpenInterval() {
    if (timing_) {
      cursor_ = Profiler::NowNs();
    }
  }

  // Keys subsequent per-round rows. Executors mirror the coordinator's round
  // index locally so their profiler writes stay private between barriers.
  void BeginRound(uint32_t round) { round_ = round; }

  // Close the open interval into one bucket and re-open it at "now".
  // Returns the interval length in nanoseconds (0 when not timing).
  uint64_t CloseProcessing() {
    return Close(&local_.processing_ns, &Profiler::AddRoundProcessing);
  }
  uint64_t CloseSync() {
    return Close(&local_.synchronization_ns, &Profiler::AddRoundSync);
  }
  uint64_t CloseMessaging() {
    return Close(&local_.messaging_ns, &Profiler::AddRoundMessaging);
  }

  void set_events(uint64_t events) { local_.events = events; }
  const ExecutorPhaseStats& local() const { return local_; }

  // Publishes the totals into the profiler's executor slot; idempotent, and
  // invoked by the destructor so the flush cannot be forgotten.
  void Flush() {
    if (profiler_ != nullptr) {
      profiler_->executor(executor_) = local_;
    }
  }

 private:
  uint64_t Close(uint64_t* bucket,
                 void (Profiler::*add_row)(uint32_t, uint32_t, uint64_t)) {
    if (!timing_) {
      return 0;
    }
    const uint64_t now = Profiler::NowNs();
    const uint64_t ns = now - cursor_;
    cursor_ = now;
    *bucket += ns;
    if (profiler_ != nullptr) {
      (profiler_->*add_row)(executor_, round_, ns);
    }
    return ns;
  }

  const uint32_t executor_;
  const bool timing_;
  Profiler* const profiler_;
  ExecutorPhaseStats local_{};
  uint64_t cursor_ = 0;
  uint32_t round_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_ENGINE_PHASE_ACCOUNTANT_H_
