#include "src/kernel/engine/executor_pool.h"

#include <utility>

#include "src/core/executor_id.h"

namespace unison {

namespace {
std::atomic<uint64_t> g_total_threads_spawned{0};
}  // namespace

uint64_t ExecutorPool::TotalThreadsSpawned() {
  return g_total_threads_spawned.load(std::memory_order_relaxed);
}

ExecutorPool::~ExecutorPool() { Shutdown(); }

void ExecutorPool::Shutdown() {
  if (!threads_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    epoch_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
    threads_.clear();
    shutdown_.store(false, std::memory_order_relaxed);
  }
  parties_ = 0;
}

void ExecutorPool::Ensure(uint32_t parties) {
  if (parties == parties_) {
    return;
  }
  parties_ = parties;
  if (!caller_pinned_ && placement_ != AffinityPolicy::kNone) {
    // Detect once per pool; the order is a pure function of the machine and
    // the policy, and re-detection mid-session would tear running pins.
    cpu_order_ = CpuTopology::Detect().PlacementOrder(placement_);
    if (!cpu_order_.empty()) {
      PinCurrentThreadToCpu(cpu_order_[0]);  // The caller is worker 0.
    }
    caller_pinned_ = true;
  }
  const uint32_t want_threads = parties == 0 ? 0 : parties - 1;
  if (want_threads <= threads_.size()) {
    // Shrink (or re-grow within the high-water set): the excess threads stay
    // parked — Loop gates on parties_ — and nothing is retired or spawned.
    return;
  }
  threads_.reserve(want_threads);
  // New threads must baseline on the epoch as of spawn time: a thread that
  // read the counter only after a later Run() bumped it would mistake that
  // run's epoch for "already seen" and sleep through it.
  const uint64_t seen = epoch_.load(std::memory_order_relaxed);
  for (uint32_t id = static_cast<uint32_t>(threads_.size()) + 1;
       id <= want_threads; ++id) {
    threads_.emplace_back([this, id, seen] {
      if (!cpu_order_.empty()) {
        PinCurrentThreadToCpu(cpu_order_[id % cpu_order_.size()]);
      }
      Loop(id, seen);
    });
    ++threads_spawned_;
    g_total_threads_spawned.fetch_add(1, std::memory_order_relaxed);
  }
}

void ExecutorPool::Run(std::function<void(uint32_t)> body) {
  body_ = std::move(body);
  done_.store(0, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  epoch_.notify_all();
  // The caller is worker 0 for the duration of the window body; everything
  // it runs between windows (injection, summaries) is back to kNoExecutor.
  SetCurrentExecutorId(0);
  body_(0);
  SetCurrentExecutorId(kNoExecutor);
  // Wait for the other active workers (parked excess threads don't report).
  const uint32_t expected = parties_ - 1;
  uint32_t done = done_.load(std::memory_order_acquire);
  while (done != expected) {
    done_.wait(done, std::memory_order_acquire);
    done = done_.load(std::memory_order_acquire);
  }
}

void ExecutorPool::Loop(uint32_t id, uint64_t seen) {
  for (;;) {
    uint64_t e = epoch_.load(std::memory_order_acquire);
    while (e == seen) {
      epoch_.wait(e, std::memory_order_acquire);
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    if (id < parties_) {  // Excess (parked) workers sit this epoch out.
      SetCurrentExecutorId(static_cast<int>(id));
      body_(id);
      SetCurrentExecutorId(kNoExecutor);
      done_.fetch_add(1, std::memory_order_acq_rel);
      done_.notify_all();
    }
  }
}

}  // namespace unison
