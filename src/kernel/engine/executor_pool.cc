#include "src/kernel/engine/executor_pool.h"

#include <utility>

namespace unison {

namespace {
std::atomic<uint64_t> g_total_threads_spawned{0};
}  // namespace

uint64_t ExecutorPool::TotalThreadsSpawned() {
  return g_total_threads_spawned.load(std::memory_order_relaxed);
}

ExecutorPool::~ExecutorPool() { Shutdown(); }

void ExecutorPool::Shutdown() {
  if (!threads_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    epoch_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
    threads_.clear();
    shutdown_.store(false, std::memory_order_relaxed);
  }
  parties_ = 0;
}

void ExecutorPool::Ensure(uint32_t parties) {
  if (parties == parties_) {
    return;
  }
  Shutdown();
  parties_ = parties;
  threads_.reserve(parties - 1);
  // New threads must baseline on the epoch as of spawn time: a thread that
  // read the counter only after a later Run() bumped it would mistake that
  // run's epoch for "already seen" and sleep through it.
  const uint64_t seen = epoch_.load(std::memory_order_relaxed);
  for (uint32_t id = 1; id < parties; ++id) {
    threads_.emplace_back([this, id, seen] { Loop(id, seen); });
    ++threads_spawned_;
    g_total_threads_spawned.fetch_add(1, std::memory_order_relaxed);
  }
}

void ExecutorPool::Run(std::function<void(uint32_t)> body) {
  body_ = std::move(body);
  done_.store(0, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  epoch_.notify_all();
  body_(0);
  // Wait for the other workers.
  uint32_t done = done_.load(std::memory_order_acquire);
  while (done != parties_ - 1) {
    done_.wait(done, std::memory_order_acquire);
    done = done_.load(std::memory_order_acquire);
  }
}

void ExecutorPool::Loop(uint32_t id, uint64_t seen) {
  for (;;) {
    uint64_t e = epoch_.load(std::memory_order_acquire);
    while (e == seen) {
      epoch_.wait(e, std::memory_order_acquire);
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    body_(id);
    done_.fetch_add(1, std::memory_order_acq_rel);
    done_.notify_all();
  }
}

}  // namespace unison
