#include "src/kernel/engine/executor_pool.h"

#include <utility>

#include "src/core/executor_id.h"

namespace unison {

namespace {
std::atomic<uint64_t> g_total_threads_spawned{0};
}  // namespace

uint64_t ExecutorPool::TotalThreadsSpawned() {
  return g_total_threads_spawned.load(std::memory_order_relaxed);
}

ExecutorPool::~ExecutorPool() { Shutdown(); }

void ExecutorPool::Shutdown() {
  if (!threads_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    epoch_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
    threads_.clear();
    shutdown_.store(false, std::memory_order_relaxed);
  }
  parties_ = 0;
}

void ExecutorPool::EnsureTopology() {
  if (topology_cached_) {
    return;
  }
  // Detect once per pool, and strictly before the first pin: Detect() reads
  // the calling thread's allowed-CPU mask, which pinning narrows to one CPU.
  // The cached full set is also what un-pinning restores.
  topology_ = CpuTopology::Detect();
  all_cpus_.clear();
  all_cpus_.reserve(topology_.cpus.size());
  for (const CpuTopology::Cpu& c : topology_.cpus) {
    all_cpus_.push_back(c.id);
  }
  topology_cached_ = true;
}

void ExecutorPool::ApplyPlacement(AffinityPolicy policy) {
  if (policy == placement_) {
    return;
  }
  if (policy == AffinityPolicy::kNone) {
    placement_ = policy;
    if (!caller_pinned_) {
      return;  // Nothing was ever pinned; nothing to undo.
    }
    cpu_order_.clear();
    ++placement_gen_;
    PinCurrentThreadToCpus(all_cpus_);
    return;
  }
  placement_ = policy;
  EnsureTopology();
  cpu_order_ = topology_.PlacementOrder(policy);
  if (cpu_order_.empty()) {
    return;  // Portable fallback: pinning unsupported here.
  }
  ++placement_gen_;
  PinCurrentThreadToCpu(cpu_order_[0]);  // The caller is worker 0.
  caller_pinned_ = true;
}

void ExecutorPool::Ensure(uint32_t parties) {
  if (parties == parties_) {
    return;
  }
  parties_ = parties;
  if (!caller_pinned_ && placement_ != AffinityPolicy::kNone) {
    EnsureTopology();
    cpu_order_ = topology_.PlacementOrder(placement_);
    if (!cpu_order_.empty()) {
      PinCurrentThreadToCpu(cpu_order_[0]);  // The caller is worker 0.
    }
    caller_pinned_ = true;
  }
  const uint32_t want_threads = parties == 0 ? 0 : parties - 1;
  if (want_threads <= threads_.size()) {
    // Shrink (or re-grow within the high-water set): the excess threads stay
    // parked — Loop gates on parties_ — and nothing is retired or spawned.
    return;
  }
  threads_.reserve(want_threads);
  // New threads must baseline on the epoch as of spawn time: a thread that
  // read the counter only after a later Run() bumped it would mistake that
  // run's epoch for "already seen" and sleep through it.
  const uint64_t seen = epoch_.load(std::memory_order_relaxed);
  const uint64_t pin_gen = placement_gen_;
  for (uint32_t id = static_cast<uint32_t>(threads_.size()) + 1;
       id <= want_threads; ++id) {
    threads_.emplace_back([this, id, seen, pin_gen] {
      if (!cpu_order_.empty()) {
        PinCurrentThreadToCpu(cpu_order_[id % cpu_order_.size()]);
      }
      Loop(id, seen, pin_gen);
    });
    ++threads_spawned_;
    g_total_threads_spawned.fetch_add(1, std::memory_order_relaxed);
  }
}

void ExecutorPool::Run(std::function<void(uint32_t)> body) {
  body_ = std::move(body);
  done_.store(0, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  epoch_.notify_all();
  // The caller is worker 0 for the duration of the window body; everything
  // it runs between windows (injection, summaries) is back to kNoExecutor.
  SetCurrentExecutorId(0);
  body_(0);
  SetCurrentExecutorId(kNoExecutor);
  // Wait for the other active workers (parked excess threads don't report).
  const uint32_t expected = parties_ - 1;
  uint32_t done = done_.load(std::memory_order_acquire);
  while (done != expected) {
    done_.wait(done, std::memory_order_acquire);
    done = done_.load(std::memory_order_acquire);
  }
}

void ExecutorPool::Loop(uint32_t id, uint64_t seen, uint64_t pin_gen) {
  for (;;) {
    uint64_t e = epoch_.load(std::memory_order_acquire);
    while (e == seen) {
      epoch_.wait(e, std::memory_order_acquire);
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    if (id < parties_) {  // Excess (parked) workers sit this epoch out.
      if (pin_gen != placement_gen_) {
        // Placement changed since this worker last ran: chase it lazily.
        // Safe to read here — ApplyPlacement writes strictly before the
        // epoch bump this iteration just acquired.
        pin_gen = placement_gen_;
        if (!cpu_order_.empty()) {
          PinCurrentThreadToCpu(cpu_order_[id % cpu_order_.size()]);
        } else {
          PinCurrentThreadToCpus(all_cpus_);
        }
      }
      SetCurrentExecutorId(static_cast<int>(id));
      body_(id);
      SetCurrentExecutorId(kNoExecutor);
      done_.fetch_add(1, std::memory_order_acq_rel);
      done_.notify_all();
    }
  }
}

}  // namespace unison
