#include "src/kernel/unison.h"

#include <algorithm>
#include <numeric>

#include "src/kernel/engine/phase_accountant.h"
#include "src/sched/lpt.h"
#include "src/sched/metrics.h"

namespace unison {

void UnisonKernel::Setup(const TopoGraph& graph, const Partition& partition) {
  Kernel::Setup(graph, partition);
  num_workers_ = std::max(1u, config_.threads);
  // Ownership domain = the config thread ceiling (MaxExecutors), not the
  // live worker count: tuning may shrink workers between windows, and a move
  // set computed in ceiling units stays meaningful — owner slots fold modulo
  // the live count when the per-window lists are built.
  pmap_.ResetStrided(num_lps(), num_workers_);
  ownership_movable_ = true;
  order_.resize(num_lps());
  std::iota(order_.begin(), order_.end(), 0);
  last_round_ns_.assign(num_lps(), 0);
  worker_events_.assign(num_workers_, 0);
  barrier_ = std::make_unique<CombiningBarrier>(num_workers_);
  active_pool_ = external_pool_ != nullptr ? external_pool_ : &pool_;
  if (active_pool_ == &pool_) {
    pool_.SetPlacement(config_.affinity);
  }
  active_pool_->Ensure(num_workers_);
}

RunResult UnisonKernel::Run(Time stop_time) {
  // Sample the live tunables once per window, before any worker releases:
  // re-sort cadence, active worker count (≤ the config thread count, so
  // Finalize-sized per-executor state still fits), and placement. A window is
  // the only safe boundary — the barrier tree and the claim stride both key
  // off num_workers_.
  tuning_ = SampleTuning(std::max(1u, config_.threads));
  period_ = tuning_.sched_period;
  if (tuning_.parties != num_workers_) {
    num_workers_ = tuning_.parties;
    barrier_ = std::make_unique<CombiningBarrier>(num_workers_);
  }
  if (active_pool_ == &pool_) {
    pool_.ApplyPlacement(tuning_.affinity);
  }
  // Re-Ensure every window (no-op when unchanged): a borrowed pool may have
  // been resized by its owner, and tuning resizes ours.
  active_pool_->Ensure(num_workers_);

  // Apply any window-boundary ownership moves, then fold the live map onto
  // this window's worker count: the map's domain is the config thread
  // ceiling, so owner slots wrap modulo the (possibly smaller) live count.
  ApplyPendingMigrations();
  owned_lists_.assign(num_workers_, {});
  for (uint32_t lp = 0; lp < num_lps(); ++lp) {
    owned_lists_[pmap_.owner(lp) % num_workers_].push_back(lp);
  }

  const uint64_t run_t0 = Profiler::NowNs();
  // Speculation (DESIGN.md §3k): capture the window checkpoint while the
  // session is quiescent; rounds may then extend past the LBTS bound. A
  // causality miss aborts the attempt without touching the session
  // accumulators (FinishRun is skipped), rolls back to the checkpoint, and
  // the loop re-runs the window conservatively — at most one retry, and the
  // conservative attempt cannot miss.
  bool speculate = BeginSpeculativeWindow();
  for (;;) {
    sync_.BeginRun("unison", num_workers_, stop_time);
    if (speculate) {
      sync_.EnableSpeculation(tuning_.spec_horizon_ps);
    }
    sync_.SetParkBaseline(barrier_->parks());
    timing_ = sync_.profiling() ||
              config_.metric == SchedulingMetric::kByLastRoundTime;
    worker_events_.assign(num_workers_, 0);

    // Seed the min-reduction for the first prologue.
    sync_.SeedMinFromLps();

    active_pool_->Run([this](uint32_t worker) { RoundLoop(worker); });

    if (!speculate) {
      break;
    }
    NoteSpecAttempt(sync_.spec_rounds(), sync_.spec_miss());
    if (!sync_.spec_miss()) {
      break;
    }
    speculate = false;
  }

  processed_events_ = 0;
  for (uint64_t n : worker_events_) {
    processed_events_ += n;
  }
  rounds_ = sync_.round_index();
  return FinishRun("unison", num_workers_, Profiler::NowNs() - run_t0,
                   stop_time, sync_.reason());
}

void UnisonKernel::Prologue() {
  if (!sync_.ComputeWindow()) {
    return;
  }
  // Load-adaptive scheduling: re-sort the claim order every `period_` rounds.
  bool resorted = false;
  if (sync_.round_index() % period_ == 0) {
    switch (config_.metric) {
      case SchedulingMetric::kNone:
        break;  // Keep id order: no scheduling.
      case SchedulingMetric::kByPendingEventCount:
        EstimateByPendingEvents(lps_, sync_.window(), &cost_buf_);
        order_ = SortByCostDescending(cost_buf_);
        resorted = true;
        break;
      case SchedulingMetric::kByLastRoundTime:
        order_ = SortByCostDescending(last_round_ns_);
        resorted = true;
        break;
    }
  }
  // events_before comes from the end-of-round barrier's fused count — the
  // live cross-worker total as of the last reduction (0 for round 0).
  sync_.CommitRound(sync_.reduced_events());
  if (resorted) {
    sync_.RecordClaimOrder(order_);
  }
  claim_.store(0, std::memory_order_relaxed);
}

void UnisonKernel::RoundLoop(uint32_t worker) {
  const uint32_t num = num_lps();
  uint64_t events = 0;
  // Worker-local round index: every worker executes the same loop iterations,
  // so this mirrors sync_.round_index() without reading shared state. It keys
  // the accountant's executor-private per-round rows, which lets every sync
  // wait — including the end-of-round barrier, which overlaps worker 0's next
  // prologue — be attributed to its round without data races.
  uint32_t round = 0;
  PhaseAccountant acct(worker, timing_, profiler_);

  for (;;) {
    if (worker == 0) {
      Prologue();
    }
    acct.OpenInterval();
    barrier_->Arrive(worker);
    if (sync_.done()) {
      break;  // Termination wait stays unattributed: it has no round row.
    }
    acct.BeginRound(round);
    acct.CloseSync();

    // Phase 1: process events. Claim LPs in scheduler priority order. The
    // whole phase closes into P, so claim-cursor and bookkeeping overhead is
    // attributed alongside the per-LP work it exists to distribute.
    const Time window = sync_.window();
    for (;;) {
      const uint32_t i = claim_.fetch_add(1, std::memory_order_relaxed);
      if (i >= num) {
        break;
      }
      const LpId lp_id = order_[i];
      const bool record = profiler_ != nullptr && profiler_->enabled &&
                          profiler_->per_lp;
      // Capped like EstimateByPendingEvents: an uncapped CountBefore is a
      // full recursive heap walk per LP per round, and the heatmap/cost-model
      // consumers only need "how busy", never exact counts past the cap.
      const uint32_t pending =
          record ? static_cast<uint32_t>(
                       lps_[lp_id]->fel().CountBefore(window, kPendingCountCap))
                 : 0;
      const uint64_t lp_t0 = acct.timing() ? Profiler::NowNs() : 0;
      const uint64_t n = lps_[lp_id]->ProcessUntil(window);
      events += n;
      if (acct.timing()) {
        const uint64_t lp_ns = Profiler::NowNs() - lp_t0;
        last_round_ns_[lp_id] = lp_ns;
        AddLpWindowCost(lp_id, lp_ns);
        if (record) {
          profiler_->AddLpRound(worker,
                                LpRoundCost{round, lp_id,
                                            static_cast<uint32_t>(n), pending, lp_ns});
        }
      }
    }
    acct.CloseProcessing();
    worker_events_[worker] = events;  // Published by the barrier for LiveEvents.
    barrier_->Arrive(worker);
    acct.CloseSync();

    // Phase 2: global events, worker 0 only; everyone else is parked at the
    // next barrier, so direct cross-LP insertion is safe. Under speculation
    // the guard skips the phase when a straggler global landed below the
    // covered bound — the next prologue latches the miss.
    if (worker == 0) {
      if (sync_.SpecAllowsGlobals()) {
        events += RunGlobalEvents(sync_.lbts(), sync_.stop());
      }
      acct.CloseProcessing();
    }
    barrier_->Arrive(worker);
    acct.CloseSync();

    // Phase 3: receive events from mailboxes — each worker drains the LPs it
    // owns this window (no shared cursor; the lists partition all LPs, so
    // every inbox is drained exactly once per round).
    for (uint32_t id : owned_lists_[worker]) {
      lps_[id]->DrainInboxes();
    }
    acct.CloseMessaging();
    // Every drain must land before anyone reads FELs for the window update:
    // a min computed on a half-drained FEL could overshoot the next LBTS.
    barrier_->Arrive(worker);
    acct.CloseSync();

    // Phase 4: update the window — each worker folds its owned LP list into
    // a local minimum and contributes it, with its event count and stop
    // vote, to the end-of-round barrier's fused reduction. No shared CAS
    // line: the tree combine IS the all-reduce. The lists partition all LPs,
    // so the reduced min equals the strided slicing this replaces. When
    // speculative rounds ran, the same fold doubles as the miss check: an
    // inbound arrival at or below an LP's already-advanced clock is a
    // causality violation, flagged into the fused reduction.
    uint32_t flags = stop_requested() ? CombiningBarrier::kStopFlag : 0;
    const bool check_spec = sync_.spec_active();
    int64_t local_min_ps = INT64_MAX;
    for (uint32_t id : owned_lists_[worker]) {
      Lp* const lp = lps_[id].get();
      const Time next = lp->fel().NextTimestamp();
      local_min_ps = std::min(local_min_ps, next.ps());
      if (check_spec && !next.IsMax() && next <= lp->now() &&
          lp->now() > Time::Zero()) {
        flags |= CombiningBarrier::kSpecMissFlag;
      }
    }
    acct.CloseMessaging();
    // End-of-round barrier: releases with the reduced {min, count, flags}
    // already published, which worker 0 absorbs for the next prologue.
    const uint64_t barrier_t0 =
        worker == 0 && sync_.tracing() ? Profiler::NowNs() : 0;
    barrier_->Arrive(worker, local_min_ps, events, flags);
    if (worker == 0) {
      sync_.Absorb(*barrier_);
      if (sync_.tracing()) {
        sync_.RecordBarrierWait(Profiler::NowNs() - barrier_t0,
                                barrier_->parks());
      }
    }
    acct.CloseSync();
    ++round;
  }

  worker_events_[worker] = events;
  acct.set_events(events);  // Destructor flushes the totals to the profiler.
}

}  // namespace unison
