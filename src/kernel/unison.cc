#include "src/kernel/unison.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "src/sched/lpt.h"
#include "src/sched/metrics.h"

namespace unison {

void UnisonKernel::Setup(const TopoGraph& graph, const Partition& partition) {
  Kernel::Setup(graph, partition);
  num_workers_ = std::max(1u, config_.threads);
  // Schedule period: ceil(log2(n)) rounds between re-sorts (§4.3), unless
  // the user pinned a period explicitly.
  if (config_.sched_period > 0) {
    period_ = config_.sched_period;
  } else {
    const uint32_t n = std::max(2u, num_lps());
    period_ = std::bit_width(n - 1);  // == ceil(log2(n))
  }
  order_.resize(num_lps());
  std::iota(order_.begin(), order_.end(), 0);
  last_round_ns_.assign(num_lps(), 0);
  worker_events_.assign(num_workers_, 0);
  round_index_ = 0;
}

void UnisonKernel::Run(Time stop_time) {
  stop_ = stop_time;
  done_ = false;
  profiling_ = profiler_ != nullptr && profiler_->enabled;
  tracing_ = trace_ != nullptr && trace_->enabled;
  timing_ = profiling_ || config_.metric == SchedulingMetric::kByLastRoundTime;
  if (profiling_) {
    profiler_->BeginRun(num_workers_);
  }
  if (tracing_) {
    trace_->BeginRun("unison", num_workers_, num_lps());
  }
  const uint64_t run_t0 = Profiler::NowNs();
  barrier_ = std::make_unique<SpinBarrier>(num_workers_);

  // Seed the min-reduction for the first prologue.
  next_min_.Reset();
  for (const auto& lp : lps_) {
    next_min_.Update(lp->fel().NextTimestamp().ps());
  }

  WorkerTeam team(num_workers_);
  team.Run([this](uint32_t worker) { RoundLoop(worker); });

  processed_events_ = 0;
  for (uint64_t n : worker_events_) {
    processed_events_ += n;
  }
  rounds_ = round_index_;
  FinishRun("unison", num_workers_, Profiler::NowNs() - run_t0);
}

void UnisonKernel::Prologue() {
  const int64_t raw_min = next_min_.Get();
  const Time min_next =
      raw_min == INT64_MAX ? Time::Max() : Time::Picoseconds(raw_min);
  const Time npub = public_lp_->fel().NextTimestamp();
  if (stop_requested_ || std::min(min_next, npub) >= stop_ ||
      (min_next.IsMax() && npub.IsMax())) {
    done_ = true;
    return;
  }
  if (min_next.IsMax() || partition_.lookahead.IsMax()) {
    lbts_ = npub;
  } else {
    lbts_ = std::min(npub, min_next + partition_.lookahead);
  }
  window_ = std::min(lbts_, stop_);

  // Load-adaptive scheduling: re-sort the claim order every `period_` rounds.
  bool resorted = false;
  if (round_index_ % period_ == 0) {
    switch (config_.metric) {
      case SchedulingMetric::kNone:
        break;  // Keep id order: no scheduling.
      case SchedulingMetric::kByPendingEventCount:
        EstimateByPendingEvents(lps_, window_, &cost_buf_);
        order_ = SortByCostDescending(cost_buf_);
        resorted = true;
        break;
      case SchedulingMetric::kByLastRoundTime:
        order_ = SortByCostDescending(last_round_ns_);
        resorted = true;
        break;
    }
  }
  if (tracing_) {
    trace_->BeginRound(round_index_, lbts_, window_, LiveEvents());
    if (resorted) {
      trace_->RecordClaimOrder(order_);
    }
  }
  ++round_index_;
  claim_.store(0, std::memory_order_relaxed);
  if (profiling_) {
    profiler_->BeginRound();
  }
}

void UnisonKernel::RoundLoop(uint32_t worker) {
  const uint32_t num = num_lps();
  uint64_t events = 0;
  // Worker-local round index: every worker executes the same loop iterations,
  // so this mirrors round_index_ without reading shared state. It keys the
  // profiler's executor-private per-round rows, which lets every sync wait —
  // including the end-of-round barrier, which overlaps worker 0's next
  // prologue — be attributed to its round without data races.
  uint32_t round = 0;
  ExecutorPhaseStats local{};

  for (;;) {
    if (worker == 0) {
      Prologue();
    }
    uint64_t t = timing_ ? Profiler::NowNs() : 0;
    barrier_->Arrive();
    if (done_) {
      break;
    }
    if (timing_) {
      const uint64_t now = Profiler::NowNs();
      local.synchronization_ns += now - t;
      if (profiling_) {
        profiler_->AddRoundSync(worker, round, now - t);
      }
      t = now;
    }

    // Phase 1: process events. Claim LPs in scheduler priority order.
    uint64_t phase_p_ns = 0;
    for (;;) {
      const uint32_t i = claim_.fetch_add(1, std::memory_order_relaxed);
      if (i >= num) {
        break;
      }
      const LpId lp_id = order_[i];
      const bool record = profiling_ && profiler_->per_lp;
      // Capped like EstimateByPendingEvents: an uncapped CountBefore is a
      // full recursive heap walk per LP per round, and the heatmap/cost-model
      // consumers only need "how busy", never exact counts past the cap.
      const uint32_t pending =
          record ? static_cast<uint32_t>(
                       lps_[lp_id]->fel().CountBefore(window_, kPendingCountCap))
                 : 0;
      const uint64_t lp_t0 = timing_ ? Profiler::NowNs() : 0;
      const uint64_t n = lps_[lp_id]->ProcessUntil(window_);
      events += n;
      if (timing_) {
        const uint64_t lp_ns = Profiler::NowNs() - lp_t0;
        last_round_ns_[lp_id] = lp_ns;
        phase_p_ns += lp_ns;
        if (record) {
          profiler_->AddLpRound(worker,
                                LpRoundCost{round, lp_id,
                                            static_cast<uint32_t>(n), pending, lp_ns});
        }
      }
    }
    if (timing_) {
      local.processing_ns += phase_p_ns;
      if (profiling_) {
        profiler_->AddRoundProcessing(worker, round, phase_p_ns);
      }
      t = Profiler::NowNs();
    }
    worker_events_[worker] = events;  // Published by the barrier for LiveEvents.
    barrier_->Arrive();
    if (timing_) {
      const uint64_t now = Profiler::NowNs();
      local.synchronization_ns += now - t;
      if (profiling_) {
        profiler_->AddRoundSync(worker, round, now - t);
      }
      t = now;
    }

    // Phase 2: global events, worker 0 only; everyone else is parked at the
    // next barrier, so direct cross-LP insertion is safe.
    if (worker == 0) {
      events += RunGlobalEvents(lbts_, stop_);
      claim_recv_.store(0, std::memory_order_relaxed);
      next_min_.Reset();
      if (timing_) {
        const uint64_t now = Profiler::NowNs();
        local.processing_ns += now - t;
        if (profiling_) {
          // Global-event time is processing; without this the per-round P
          // matrix undercounts worker 0 relative to its executor total.
          profiler_->AddRoundProcessing(worker, round, now - t);
        }
        t = now;
      }
    }
    barrier_->Arrive();
    if (timing_) {
      const uint64_t now = Profiler::NowNs();
      local.synchronization_ns += now - t;
      if (profiling_) {
        profiler_->AddRoundSync(worker, round, now - t);
      }
      t = now;
    }

    // Phase 3: receive events from mailboxes.
    for (;;) {
      const uint32_t i = claim_recv_.fetch_add(1, std::memory_order_relaxed);
      if (i >= num) {
        break;
      }
      lps_[i]->DrainInboxes();
    }
    if (timing_) {
      const uint64_t now = Profiler::NowNs();
      local.messaging_ns += now - t;
      t = now;
    }
    // Every drain must land before anyone reads FELs for the window update:
    // a min computed on a half-drained FEL could overshoot the next LBTS.
    barrier_->Arrive();
    if (timing_) {
      const uint64_t now = Profiler::NowNs();
      local.synchronization_ns += now - t;
      if (profiling_) {
        profiler_->AddRoundSync(worker, round, now - t);
      }
      t = now;
    }

    // Phase 4: update the window — per-worker partial min over a strided
    // slice of LPs, folded into one atomic.
    for (uint32_t i = worker; i < num; i += num_workers_) {
      next_min_.Update(lps_[i]->fel().NextTimestamp().ps());
    }
    if (timing_) {
      const uint64_t now = Profiler::NowNs();
      local.messaging_ns += now - t;
      t = now;
    }
    // End-of-round barrier: all phase 4 min-updates must be visible before
    // worker 0 reads next_min_ in the prologue.
    barrier_->Arrive();
    if (timing_) {
      const uint64_t now = Profiler::NowNs();
      local.synchronization_ns += now - t;
      if (profiling_) {
        profiler_->AddRoundSync(worker, round, now - t);
      }
    }
    ++round;
  }

  worker_events_[worker] = events;
  if (profiling_) {
    auto& stats = profiler_->executor(worker);
    stats.processing_ns = local.processing_ns;
    stats.synchronization_ns = local.synchronization_ns;
    stats.messaging_ns = local.messaging_ns;
    stats.events = events;
  }
}

}  // namespace unison
