// Null-message PDES baseline (Chandy–Misra–Bryant, §2.3).
//
// LPs synchronize pairwise instead of via global barriers: each directed
// cut-edge pair (i → j) is a channel carrying real events and null messages.
// A channel clock is a promise that no future message on it will carry a
// smaller timestamp; an LP may safely process events below the minimum of
// its input channel clocks. After every processing attempt an LP refreshes
// its output promises to min(N_i, safe_in) + channel lookahead — the eager
// null-message rule that guarantees deadlock freedom for positive lookahead.
//
// One executor per LP initially, as with the MPI-based implementations the
// paper profiles — but ownership is live (partition map): window-boundary
// migrations may hand several LPs to one executor, whose loop then serves
// its whole owned set per wake-up. Runtime global events are not supported
// (the paper's §4.2 makes the same observation about existing PDES). There
// are no shared rounds, so only the engine's ExecutorPool and
// PhaseAccountant apply; RoundSync is used for its run-level profiler/trace
// bookkeeping.
#ifndef UNISON_SRC_KERNEL_NULLMSG_H_
#define UNISON_SRC_KERNEL_NULLMSG_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/kernel/engine/executor_pool.h"
#include "src/kernel/engine/round_sync.h"
#include "src/kernel/kernel.h"

namespace unison {

class NullMessageKernel : public Kernel {
 public:
  using Kernel::Kernel;

  void Setup(const TopoGraph& graph, const Partition& partition) override;
  RunResult Run(Time stop_time) override;

  // One executor per LP initially, as in the barrier baseline; the executor
  // count is the ceiling of the live ownership domain, not the mapping.
  uint32_t MaxExecutors() const override { return num_lps(); }

  ExecutorPool* executor_pool() override { return active_pool_; }

  // Moves every undelivered channel event into its target LP's FEL — the
  // receive path an LpLoop iteration would take — leaving the transport
  // empty. Channel clocks are untouched: Run() recomputes them from the
  // resume floor anyway. The only kernel with cross-window transport
  // residue; see Session::Snapshot.
  void DrainTransportForSnapshot() override;

  // Total null messages exchanged during the last run; exposed for the
  // overhead benches.
  uint64_t null_messages() const { return null_messages_; }

 protected:
  void ScheduleRemote(Lp* from, LpId target, Event ev) override;

 private:
  struct Channel {
    LpId from = 0;
    LpId to = 0;
    Time lookahead;  // Minimum link delay between the pair in this direction.
    std::mutex mu;
    std::vector<Event> events;
    int64_t clock_ps = 0;  // Promise: no future message with ts below this.
    uint64_t nulls = 0;
  };

  // Per-LP channel endpoints: fixed wiring, independent of which executor
  // serves the LP.
  struct LpChans {
    std::vector<Channel*> in;
    std::vector<Channel*> out;
  };

  // Per-executor wake-up control: signalled whenever an in-channel of any LP
  // the executor owns changes. Signals route through the live partition map,
  // which only changes between windows — no mid-window re-route.
  struct ExecCtl {
    std::mutex mu;
    std::condition_variable cv;
    uint64_t signal = 0;  // Bumped under mu on every channel change.
  };

  static uint64_t PairKey(LpId from, LpId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  void Signal(LpId target);
  void ExecLoop(uint32_t ex);

  ExecutorPool pool_;    // Threads spawned once at Setup, reused across runs.
  // The pool Run() actually uses: the borrowed external pool when one was
  // lent (Session::Fork), else pool_. Set at Setup.
  ExecutorPool* active_pool_ = nullptr;
  RoundSync sync_{this};
  std::vector<std::unique_ptr<Channel>> channels_;
  // Directed pair → channel; built at Setup, reused by ScheduleRemote so the
  // send path is one hash probe instead of a scan over the sender's fan-out.
  std::unordered_map<uint64_t, Channel*> channel_of_pair_;
  std::vector<LpChans> chans_;              // Indexed by LpId.
  std::vector<std::unique_ptr<ExecCtl>> ctl_;  // Indexed by executor.
  std::vector<uint64_t> exec_events_;
  uint64_t null_messages_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_KERNEL_NULLMSG_H_
