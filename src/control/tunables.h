// Epoch-versioned live tunables: the mutable half of the two-tier config
// split.
//
// KernelConfig keeps only simulation identity — kernel kind, seed, partition,
// determinism — which must be frozen at MakeKernel because changing any of
// them mid-session would change *what* is simulated. Everything that merely
// changes *how fast* it is simulated (scheduler re-sort cadence, active party
// count, executor placement, and the Run() window horizon) lives here, in a
// TunableStore seeded from the KernelConfig at Finalize and re-published by
// the Controller (src/control/controller.h) between windows.
//
// Concurrency contract: the store is single-writer, window-boundary-only.
// Kernels sample it once per Run() window (Kernel::SampleTuning), before any
// worker is released; the controller publishes only after the pool has
// quiesced. Both sides run on the session thread, so plain fields suffice —
// the epoch exists for provenance (traces and snapshots), not for locking.
#ifndef UNISON_SRC_CONTROL_TUNABLES_H_
#define UNISON_SRC_CONTROL_TUNABLES_H_

#include <cstdint>
#include <vector>

#include "src/kernel/engine/cpu_topology.h"
#include "src/partition/partition_map.h"

namespace unison {

struct Tunables {
  // Rounds between scheduler re-sorts; 0 keeps the kernel's own default
  // (config value, else ceil(log2 n), §4.3).
  uint32_t sched_period = 0;
  // Active party knob in the kernel's own units: workers for unison, lanes
  // per rank for hybrid. 0 keeps the config default; kernels whose party
  // count is structural (barrier/nullmsg: one per LP) ignore it. Values are
  // clamped to the config default so per-executor state sized at Finalize
  // (FlowMonitor shards) is never exceeded.
  uint32_t parties = 0;
  // Executor placement for the kernel's own pool; borrowed pools keep their
  // owner's placement.
  AffinityPolicy affinity = AffinityPolicy::kNone;
  // Upper bound on how much simulated time one Run() window may cover, in
  // picoseconds; 0 = unbounded (the caller's stop time is the horizon).
  // Network::Run slices its stop time by this when a controller is attached.
  int64_t max_window_ps = 0;
  // Speculative execution horizon: how far past the Eq. 2 LBTS bound a round
  // may optimistically extend, in picoseconds. 0 disables speculation (the
  // default; Network::Finalize seeds it only under speculation=auto). The
  // controller's spec rule widens/narrows it from the observed miss rate.
  // Results-neutral: a causality miss rolls back to the window checkpoint and
  // re-runs conservatively, so fingerprints and digests never change.
  int64_t spec_horizon_ps = 0;
  // LP-ownership move set published by the controller's rebalance rule.
  // `rebalance_seq` is a monotone generation counter: a kernel applies
  // `moves` (folded modulo its executor domain) exactly once, at the first
  // window boundary where the sampled seq exceeds the last generation it
  // applied — re-sampling the same set across later windows is a no-op.
  // Results-neutral in deterministic mode, like every other knob here.
  uint64_t rebalance_seq = 0;
  std::vector<LpMove> moves;
};

class TunableStore {
 public:
  // Installs the config-derived defaults without consuming an epoch: a store
  // that was only ever seeded is indistinguishable (epoch 0) from "tuning
  // never acted", which is what makes static and tuned runs comparable.
  void Seed(const Tunables& t) { current_ = t; }

  // Publishes a new tunable set; each publish is one epoch. Call only at a
  // window boundary (no kernel Run() in flight).
  void Publish(const Tunables& t) {
    current_ = t;
    ++epoch_;
  }

  // Snapshot restore: reinstalls captured values *and* the captured epoch so
  // a fork resumes with the parent's learned settings, not the config
  // defaults frozen at capture time.
  void Restore(const Tunables& t, uint64_t epoch) {
    current_ = t;
    epoch_ = epoch;
  }

  const Tunables& Get() const { return current_; }
  uint64_t epoch() const { return epoch_; }

 private:
  Tunables current_;
  uint64_t epoch_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_CONTROL_TUNABLES_H_
