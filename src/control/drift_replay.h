// Claim-order drift replay: the offline counterpart of the controller's
// online re-sort rule.
//
// The kernel re-sorts its LPT claim order every sched_period rounds; between
// re-sorts workers claim by a stale order. This module quantifies what that
// staleness costs: replay a recorded per-(round, LP) cost matrix through LPT
// list scheduling twice — once with a clairvoyant order re-sorted every round
// on the true costs, once with the kernel's actual policy (re-sort every k
// rounds on the *previous* round's costs, cost-descending with the id-ascending
// tie-break) — and report the makespan inflation as a function of k. The
// resulting payoff curve seeds ControllerConfig's drift thresholds and lets
// bench_claim_drift check the paper's ceil(log2 n) default against measured
// data.
//
// Costs are abstract units; the traced bench feeds per-round event counts
// (deterministic across runs), tests feed synthetic matrices.
#ifndef UNISON_SRC_CONTROL_DRIFT_REPLAY_H_
#define UNISON_SRC_CONTROL_DRIFT_REPLAY_H_

#include <cstdint>
#include <vector>

namespace unison {

struct DriftReplayPoint {
  uint32_t staleness = 1;       // Rounds between re-sorts (k).
  double makespan_ratio = 1.0;  // Mean per-round stale/oracle makespan.
};

// Replays `costs` ([round][lp] nonnegative units) on `workers` parallel
// executors for each staleness in `stalenesses`. Rounds whose total cost is
// zero are skipped (no work to schedule). Returns one point per requested
// staleness, in input order. Deterministic: pure function of its inputs.
std::vector<DriftReplayPoint> ReplayClaimOrderDrift(
    const std::vector<std::vector<uint64_t>>& costs, uint32_t workers,
    const std::vector<uint32_t>& stalenesses);

// Largest staleness whose makespan ratio stays within `tolerance` of the
// curve's staleness-1 baseline (the freshest order the kernel can actually
// have: one round old). Falls back to the smallest staleness when even the
// baseline is the only point within tolerance.
uint32_t RecommendPeriod(const std::vector<DriftReplayPoint>& curve,
                         double tolerance);

}  // namespace unison

#endif  // UNISON_SRC_CONTROL_DRIFT_REPLAY_H_
