// Trace-driven closed-loop controller: turns WindowTraceSegments into
// tunable updates.
//
// The kernel already measures everything a tuner needs — per-round P/S/M,
// barrier latency, futex parks, re-sort markers — but until this module every
// knob was frozen at MakeKernel. The controller closes the loop: it consumes
// each completed window's trace segment (never anything mid-round, so
// simulation results are bit-identical with tuning on or off — scheduling
// order, party count, and window slicing are all results-neutral by the
// session invariants established in PRs 4–6) and publishes at most one
// tunable epoch per window:
//
//   rule              | signal (from the segment)        | action
//   ------------------+----------------------------------+----------------------
//   oversubscribed    | parked/round > threshold         | parties -> fit the
//                     |                                  | machine; at the floor,
//                     |                                  | drop affinity to none
//   re-sort cadence   | per-round P imbalance drift      | halve/double
//                     | across re-sort stretches         | sched_period
//   window horizon    | P/(P+S) ratio of the window      | halve/double the
//                     |                                  | Run() slice bound
//   rebalance         | mean per-round imbalance stays   | publish an LPT
//                     | high for K windows despite       | move set; kernels
//                     | re-sorts                         | migrate LPs at the
//                     |                                  | next boundary
//   spec horizon      | speculation miss / clean-commit  | halve/double the
//                     | streaks (RunSummary spec stats)  | speculative horizon
//
// The re-sort and window rules carry hysteresis: each direction must be
// observed for `rule_patience` consecutive eligible windows before its epoch
// publishes, so a single noisy window cannot flip a knob and the rebalance
// rule (which watches the same imbalance signal over a longer horizon) does
// not oscillate against them.
//
// PARSIR's observation (PAPERS.md) is that exploiting the *actual*
// multiprocessor — not the nominal one — is the whole game; the
// oversubscription rule is exactly that, applied unattended.
#ifndef UNISON_SRC_CONTROL_CONTROLLER_H_
#define UNISON_SRC_CONTROL_CONTROLLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/control/tunables.h"
#include "src/stats/trace.h"

namespace unison {

struct ControllerConfig {
  // Re-sort cadence rule: mean per-stretch growth of the processing-time
  // imbalance (max-executor share over the ideal share, minus one). Above
  // `drift_shrink` the claim order goes stale too fast between re-sorts —
  // halve the period; below `drift_grow` re-sorting buys nothing — double it.
  // The defaults come from the claim-order drift replay (bench_claim_drift):
  // the offline payoff curve stays within ~5% of the every-round oracle for
  // small staleness and inflects past ~30%.
  double drift_shrink = 0.30;
  double drift_grow = 0.05;
  uint32_t min_period = 1;
  uint32_t max_period = 4096;

  // Window-horizon rule on the P/(P+S) ratio. Below `ps_low` the windows are
  // sync-bound — halve the Run() slice so the controller gets to react more
  // often and short LBTS windows stop being amortized over a long horizon;
  // above `ps_high` the slicing itself is overhead — double it, reverting to
  // unbounded past the cap.
  double ps_low = 0.35;
  double ps_high = 0.70;
  int64_t min_window_ps = 50'000'000;  // 50 us of simulated time.
  // Horizon cap past which the bound reverts to 0 (unbounded); 0 selects the
  // built-in 1 s (1e12 ps) default.
  int64_t max_window_ps = 0;
  // Seed horizon installed when tuning is enabled (0 = leave unbounded). A
  // controller can only act at window boundaries; without an initial bound,
  // a single long Run() would give it exactly one observation, at the end.
  // Window slicing is results-neutral, so the seed only affects wall time.
  int64_t initial_window_ps = 1'000'000'000;  // 1 ms of simulated time.

  // Oversubscription rule: mean futex parks per round across the window's
  // reduction barriers. Parks mean workers waiting on descheduled peers —
  // the signature of more parties than the machine can run.
  double parks_per_round_high = 4.0;
  uint32_t min_parties = 1;
  // Machine size used to fit the party count; 0 = detect at construction.
  uint32_t cpu_limit = 0;

  // Windows with fewer rounds than this carry too little signal to act on
  // (and sequential/null-message windows have no round records at all).
  uint32_t min_rounds = 8;

  // Hysteresis for the re-sort cadence and window-horizon rules: how many
  // consecutive eligible windows must show the same out-of-band signal
  // before that direction publishes. 1 = act on the first window (the PR 8
  // behaviour). Thin windows (below min_rounds) neither extend nor reset a
  // streak.
  uint32_t rule_patience = 2;

  // Rebalance rule: when the mean per-round processing imbalance (busiest
  // executor's share over the ideal 1/W share, minus one) stays above
  // `rebalance_imbalance_high` for `rebalance_patience` consecutive windows
  // *with re-sorts active* — i.e. reordering the claims could not fix it, so
  // the assignment itself is skewed — publish an LPT move set computed from
  // the kernel's per-LP window costs. `rebalance_cooldown` windows must pass
  // after a publish before the streak may begin again, giving the moved
  // placement time to show up in the signal.
  double rebalance_imbalance_high = 0.25;
  uint32_t rebalance_patience = 3;
  uint32_t rebalance_cooldown = 4;

  // Cost smoothing for the rebalance rule: the per-LP window costs feeding
  // LPT are an exponential moving average across windows rather than the
  // last window's raw measurement, so one noisy window cannot trigger a
  // placement computed from an unrepresentative cost vector. `alpha` is the
  // weight of the newest window; 1.0 reproduces the raw (PR 9) behaviour.
  double cost_ewma_alpha = 0.5;

  // Rule 5 — speculation horizon (active only when the live spec_horizon_ps
  // tunable is nonzero, i.e. SimConfig::speculation == kAuto). A missed
  // speculative window costs roughly the window twice plus the rollback, so
  // a miss streak halves the horizon toward the floor; a streak of windows
  // that speculated cleanly doubles it toward the cap. Both directions carry
  // the same `rule_patience` hysteresis as rules 2/3. The horizon is
  // results-neutral by the speculation contract (misses roll back), so this
  // rule only ever trades wall time.
  int64_t spec_horizon_initial_ps = 2'000'000;      // Seed: 2 us.
  int64_t spec_horizon_min_ps = 250'000;            // Floor: 0.25 us.
  int64_t spec_horizon_max_ps = 1'000'000'000;      // Cap: 1 ms.
};

class Controller {
 public:
  Controller(const ControllerConfig& config, TunableStore* store);

  // Consumes one completed window's segment; publishes at most one tunable
  // epoch. Returns true when something was published. Call only between
  // Run() windows. `view` is the kernel's ownership state for the rebalance
  // rule; the default (empty) view disables that rule, which keeps synthetic
  // single-segment callers meaningful.
  bool OnWindowEnd(const WindowTraceSegment& segment,
                   const OwnershipView& view = {});

  // Audit log: one entry per published epoch.
  struct Decision {
    uint64_t epoch = 0;
    uint32_t window = 0;
    std::string rule;  // "oversubscribed" | "affinity-fallback" |
                       // "resort-shrink" | "resort-grow" |
                       // "window-shrink" | "window-grow" | "rebalance"
                       // (comma-joined when several rules fire in one
                       // window).
    Tunables tunables;
    // Rebalance decisions only: the observed mean round imbalance that
    // triggered the move set, and the imbalance the LPT assignment predicts
    // for the post-move placement (makespan * W / total - 1).
    double observed_imbalance = 0.0;
    double predicted_imbalance = 0.0;
  };
  const std::vector<Decision>& decisions() const { return decisions_; }

  const ControllerConfig& config() const { return config_; }

  // The smoothed per-LP cost vector the rebalance rule schedules from
  // (empty until a window with ownership costs has been observed). Exposed
  // for tests asserting the EWMA behaviour.
  const std::vector<double>& smoothed_costs() const { return ewma_cost_; }

  // Mean growth of the per-round processing imbalance across the window's
  // re-sort stretches; exposed for tests and the trace tooling.
  static double ResortDrift(const WindowTraceSegment& segment);

  // Mean per-round processing imbalance (max share over the ideal share,
  // minus one) over the window's usable rounds; the rebalance rule's signal.
  static double MeanRoundImbalance(const WindowTraceSegment& segment);

 private:
  ControllerConfig config_;
  TunableStore* const store_;
  std::vector<Decision> decisions_;
  // Hysteresis streaks: consecutive eligible windows showing each signal.
  uint32_t resort_shrink_streak_ = 0;
  uint32_t resort_grow_streak_ = 0;
  uint32_t window_shrink_streak_ = 0;
  uint32_t window_grow_streak_ = 0;
  uint32_t rebalance_streak_ = 0;
  uint32_t rebalance_cooldown_left_ = 0;
  uint32_t spec_narrow_streak_ = 0;
  uint32_t spec_widen_streak_ = 0;
  // EWMA state for the rebalance cost vector, indexed by LP.
  std::vector<double> ewma_cost_;
};

}  // namespace unison

#endif  // UNISON_SRC_CONTROL_CONTROLLER_H_
