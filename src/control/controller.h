// Trace-driven closed-loop controller: turns WindowTraceSegments into
// tunable updates.
//
// The kernel already measures everything a tuner needs — per-round P/S/M,
// barrier latency, futex parks, re-sort markers — but until this module every
// knob was frozen at MakeKernel. The controller closes the loop: it consumes
// each completed window's trace segment (never anything mid-round, so
// simulation results are bit-identical with tuning on or off — scheduling
// order, party count, and window slicing are all results-neutral by the
// session invariants established in PRs 4–6) and publishes at most one
// tunable epoch per window:
//
//   rule              | signal (from the segment)        | action
//   ------------------+----------------------------------+----------------------
//   oversubscribed    | parked/round > threshold         | parties -> fit the
//                     |                                  | machine; at the floor,
//                     |                                  | drop affinity to none
//   re-sort cadence   | per-round P imbalance drift      | halve/double
//                     | across re-sort stretches         | sched_period
//   window horizon    | P/(P+S) ratio of the window      | halve/double the
//                     |                                  | Run() slice bound
//
// PARSIR's observation (PAPERS.md) is that exploiting the *actual*
// multiprocessor — not the nominal one — is the whole game; the
// oversubscription rule is exactly that, applied unattended.
#ifndef UNISON_SRC_CONTROL_CONTROLLER_H_
#define UNISON_SRC_CONTROL_CONTROLLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/control/tunables.h"
#include "src/stats/trace.h"

namespace unison {

struct ControllerConfig {
  // Re-sort cadence rule: mean per-stretch growth of the processing-time
  // imbalance (max-executor share over the ideal share, minus one). Above
  // `drift_shrink` the claim order goes stale too fast between re-sorts —
  // halve the period; below `drift_grow` re-sorting buys nothing — double it.
  // The defaults come from the claim-order drift replay (bench_claim_drift):
  // the offline payoff curve stays within ~5% of the every-round oracle for
  // small staleness and inflects past ~30%.
  double drift_shrink = 0.30;
  double drift_grow = 0.05;
  uint32_t min_period = 1;
  uint32_t max_period = 4096;

  // Window-horizon rule on the P/(P+S) ratio. Below `ps_low` the windows are
  // sync-bound — halve the Run() slice so the controller gets to react more
  // often and short LBTS windows stop being amortized over a long horizon;
  // above `ps_high` the slicing itself is overhead — double it, reverting to
  // unbounded past the cap.
  double ps_low = 0.35;
  double ps_high = 0.70;
  int64_t min_window_ps = 50'000'000;  // 50 us of simulated time.
  // Horizon cap past which the bound reverts to 0 (unbounded); 0 selects the
  // built-in 1 s (1e12 ps) default.
  int64_t max_window_ps = 0;
  // Seed horizon installed when tuning is enabled (0 = leave unbounded). A
  // controller can only act at window boundaries; without an initial bound,
  // a single long Run() would give it exactly one observation, at the end.
  // Window slicing is results-neutral, so the seed only affects wall time.
  int64_t initial_window_ps = 1'000'000'000;  // 1 ms of simulated time.

  // Oversubscription rule: mean futex parks per round across the window's
  // reduction barriers. Parks mean workers waiting on descheduled peers —
  // the signature of more parties than the machine can run.
  double parks_per_round_high = 4.0;
  uint32_t min_parties = 1;
  // Machine size used to fit the party count; 0 = detect at construction.
  uint32_t cpu_limit = 0;

  // Windows with fewer rounds than this carry too little signal to act on
  // (and sequential/null-message windows have no round records at all).
  uint32_t min_rounds = 8;
};

class Controller {
 public:
  Controller(const ControllerConfig& config, TunableStore* store);

  // Consumes one completed window's segment; publishes at most one tunable
  // epoch. Returns true when something was published. Call only between
  // Run() windows.
  bool OnWindowEnd(const WindowTraceSegment& segment);

  // Audit log: one entry per published epoch.
  struct Decision {
    uint64_t epoch = 0;
    uint32_t window = 0;
    std::string rule;  // "oversubscribed" | "affinity-fallback" |
                       // "resort-shrink" | "resort-grow" |
                       // "window-shrink" | "window-grow" (comma-joined when
                       // several rules fire in one window).
    Tunables tunables;
  };
  const std::vector<Decision>& decisions() const { return decisions_; }

  const ControllerConfig& config() const { return config_; }

  // Mean growth of the per-round processing imbalance across the window's
  // re-sort stretches; exposed for tests and the trace tooling.
  static double ResortDrift(const WindowTraceSegment& segment);

 private:
  ControllerConfig config_;
  TunableStore* const store_;
  std::vector<Decision> decisions_;
};

}  // namespace unison

#endif  // UNISON_SRC_CONTROL_CONTROLLER_H_
