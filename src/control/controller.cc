#include "src/control/controller.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "src/sched/lpt.h"

namespace unison {

namespace {
// Horizon cap past which the window bound reverts to unbounded when the
// config leaves max_window_ps at 0: one second of simulated time.
constexpr int64_t kDefaultHorizonCapPs = 1'000'000'000'000LL;

// Imbalance of one round's per-executor processing times: the busiest
// executor's share over the ideal 1/W share, minus one (0 = perfectly
// balanced). Undefined (false) for rounds without usable rows.
bool RoundImbalance(const std::vector<std::vector<uint64_t>>& round_p,
                    uint32_t round, double* out) {
  if (round >= round_p.size()) {
    return false;
  }
  const std::vector<uint64_t>& row = round_p[round];
  if (row.size() < 2) {
    return false;
  }
  uint64_t sum = 0;
  uint64_t max = 0;
  for (uint64_t v : row) {
    sum += v;
    max = std::max(max, v);
  }
  if (sum == 0) {
    return false;
  }
  *out = static_cast<double>(max) * static_cast<double>(row.size()) /
             static_cast<double>(sum) -
         1.0;
  return true;
}

// Hysteresis helper: `signal` observed this window extends the streak (and
// resets the opposite direction's); returns true — and restarts the streak —
// once it has held for `patience` consecutive eligible windows.
bool StreakFire(bool signal, uint32_t patience, uint32_t* streak,
                uint32_t* opposite) {
  if (!signal) {
    *streak = 0;
    return false;
  }
  *opposite = 0;
  if (++*streak < std::max(1u, patience)) {
    return false;
  }
  *streak = 0;
  return true;
}
}  // namespace

Controller::Controller(const ControllerConfig& config, TunableStore* store)
    : config_(config), store_(store) {
  if (config_.cpu_limit == 0) {
    // Detect once, before any controller-driven pinning can narrow the
    // process affinity mask this reads.
    config_.cpu_limit =
        static_cast<uint32_t>(CpuTopology::Detect().cpus.size());
  }
  config_.cpu_limit = std::max(1u, config_.cpu_limit);
}

double Controller::ResortDrift(const WindowTraceSegment& segment) {
  // A stretch is a maximal run of rounds sharing one claim order (from one
  // re-sort to just before the next). Its drift is how much the imbalance
  // grew while the order went stale.
  const auto& records = segment.records;
  double total = 0.0;
  uint32_t stretches = 0;
  size_t i = 0;
  while (i < records.size()) {
    size_t j = i + 1;
    while (j < records.size() && !records[j].resorted) {
      ++j;
    }
    if (j - i >= 2) {
      double first = 0.0;
      double last = 0.0;
      if (RoundImbalance(segment.round_p, records[i].round, &first) &&
          RoundImbalance(segment.round_p, records[j - 1].round, &last)) {
        total += last - first;
        ++stretches;
      }
    }
    i = j;
  }
  return stretches == 0 ? 0.0 : total / stretches;
}

double Controller::MeanRoundImbalance(const WindowTraceSegment& segment) {
  double total = 0.0;
  uint32_t usable = 0;
  for (const RoundTraceRecord& rec : segment.records) {
    double imb = 0.0;
    if (RoundImbalance(segment.round_p, rec.round, &imb)) {
      total += imb;
      ++usable;
    }
  }
  return usable == 0 ? 0.0 : total / usable;
}

bool Controller::OnWindowEnd(const WindowTraceSegment& segment,
                             const OwnershipView& view) {
  const RunSummary& sum = segment.summary;
  const uint64_t rounds = segment.records.size();
  if (rounds < std::max(1u, config_.min_rounds)) {
    // Too little signal — and the sequential/null-message kernels, which
    // have no synchronization rounds at all, land here every window. Thin
    // windows neither extend nor reset the hysteresis streaks.
    return false;
  }

  // Cost smoothing for the rebalance rule: fold this window's per-LP costs
  // into the EWMA whether or not the rule fires, so the vector it eventually
  // schedules from reflects the whole high-imbalance stretch, not just the
  // window that tipped the streak.
  if (view.lp_cost_ns != nullptr) {
    const std::vector<uint64_t>& raw = *view.lp_cost_ns;
    const double alpha = std::clamp(config_.cost_ewma_alpha, 0.0, 1.0);
    if (ewma_cost_.size() != raw.size()) {
      // First observation (or the LP domain changed): adopt the raw costs.
      ewma_cost_.assign(raw.begin(), raw.end());
    } else {
      for (size_t i = 0; i < raw.size(); ++i) {
        ewma_cost_[i] = alpha * static_cast<double>(raw[i]) +
                        (1.0 - alpha) * ewma_cost_[i];
      }
    }
  }

  Tunables next = store_->Get();
  std::string rule;
  const auto fire = [&rule](const char* name) {
    if (!rule.empty()) {
      rule += ',';
    }
    rule += name;
  };

  const uint32_t knob = std::max(1u, sum.parties);
  const uint32_t executors = std::max(1u, sum.executors);

  // Rule 1 — oversubscription: futex parks at the reduction barrier mean
  // workers waiting on descheduled peers. Fit the party knob to the machine
  // first; at the floor, release the pins instead (a pinned worker sharing
  // its core with an unpinned stranger parks forever).
  uint64_t parked = 0;
  for (const RoundTraceRecord& rec : segment.records) {
    parked += rec.parked;
  }
  if (static_cast<double>(parked) / static_cast<double>(rounds) >
      config_.parks_per_round_high) {
    uint32_t want = knob;
    if (executors > config_.cpu_limit) {
      // Scale the knob so the *total* executor count fits the machine (the
      // knob is lanes-per-rank for hybrid, so knob != executors there).
      want = static_cast<uint32_t>(static_cast<uint64_t>(knob) *
                                   config_.cpu_limit / executors);
    } else {
      want = knob / 2;
    }
    want = std::max(config_.min_parties, want);
    if (want < knob) {
      next.parties = want;
      fire("oversubscribed");
    } else if (next.affinity != AffinityPolicy::kNone) {
      next.affinity = AffinityPolicy::kNone;
      fire("affinity-fallback");
    }
  }

  // Rule 2 — re-sort cadence: replace the static ceil(log2 n) of §4.3 with
  // the observed payoff. Fast-growing imbalance between re-sorts means the
  // order goes stale too quickly (shrink the period); flat imbalance means
  // re-sorting buys nothing (grow it). Each direction must hold for
  // `rule_patience` consecutive windows before it publishes.
  bool any_resort = false;
  for (const RoundTraceRecord& rec : segment.records) {
    any_resort = any_resort || rec.resorted;
  }
  if (any_resort && executors > 1 && !segment.round_p.empty()) {
    const double drift = ResortDrift(segment);
    const uint32_t period = std::max(1u, sum.sched_period);
    if (StreakFire(drift > config_.drift_shrink && period > config_.min_period,
                   config_.rule_patience, &resort_shrink_streak_,
                   &resort_grow_streak_)) {
      next.sched_period = std::max(config_.min_period, period / 2);
      fire("resort-shrink");
    }
    if (StreakFire(drift < config_.drift_grow && period < config_.max_period,
                   config_.rule_patience, &resort_grow_streak_,
                   &resort_shrink_streak_)) {
      next.sched_period = std::min(config_.max_period, period * 2);
      fire("resort-grow");
    }
  }

  // Rule 3 — window horizon: a sync-bound window (low P/(P+S)) gets a
  // shorter Run() slice so tuning reacts more often; a processing-bound one
  // sheds the slicing overhead again, reverting to unbounded past the cap.
  // Same hysteresis as rule 2.
  const uint64_t p_ns = sum.processing_ns;
  const uint64_t s_ns = sum.synchronization_ns;
  if (executors > 1 && p_ns + s_ns > 0) {
    const double ps_ratio =
        static_cast<double>(p_ns) / static_cast<double>(p_ns + s_ns);
    const int64_t cap = config_.max_window_ps > 0 ? config_.max_window_ps
                                                  : kDefaultHorizonCapPs;
    if (StreakFire(ps_ratio < config_.ps_low, config_.rule_patience,
                   &window_shrink_streak_, &window_grow_streak_)) {
      const int64_t span = sum.window_stop_ps - sum.window_start_ps;
      const int64_t current =
          next.max_window_ps > 0
              ? next.max_window_ps
              : std::max<int64_t>(span, 2 * config_.min_window_ps);
      const int64_t want = std::max(config_.min_window_ps, current / 2);
      if (want != next.max_window_ps) {
        next.max_window_ps = want;
        fire("window-shrink");
      }
    }
    if (StreakFire(ps_ratio > config_.ps_high && next.max_window_ps > 0,
                   config_.rule_patience, &window_grow_streak_,
                   &window_shrink_streak_)) {
      const int64_t want = next.max_window_ps * 2;
      next.max_window_ps = want > cap ? 0 : want;
      fire("window-grow");
    }
  }

  // Rule 4 — rebalance: imbalance that re-sorting keeps failing to fix
  // means the *assignment* is skewed, not the claim order — no ordering of
  // the same per-executor LP sets can shed load across the boundary. After
  // `rebalance_patience` consecutive high-imbalance windows, recompute the
  // placement outright: LPT over the recorded per-LP window costs, published
  // as a move set the kernel applies at its next window boundary.
  double observed_imbalance = 0.0;
  double predicted_imbalance = 0.0;
  bool rebalanced = false;
  const bool rebalance_eligible =
      view.movable && view.num_executors > 1 && view.owner_of_lp != nullptr &&
      view.lp_cost_ns != nullptr && any_resort && executors > 1 &&
      !segment.round_p.empty();
  if (rebalance_cooldown_left_ > 0) {
    --rebalance_cooldown_left_;
    rebalance_streak_ = 0;
  } else if (rebalance_eligible) {
    const double imb = MeanRoundImbalance(segment);
    if (imb > config_.rebalance_imbalance_high) {
      ++rebalance_streak_;
    } else {
      rebalance_streak_ = 0;
    }
    if (rebalance_streak_ >= std::max(1u, config_.rebalance_patience)) {
      // Schedule from the smoothed costs, rounded back to the LPT input
      // units (ns; well below any value where rounding could flip a
      // decision).
      std::vector<uint64_t> cost(ewma_cost_.size());
      for (size_t i = 0; i < ewma_cost_.size(); ++i) {
        cost[i] = static_cast<uint64_t>(ewma_cost_[i] + 0.5);
      }
      const std::vector<uint32_t>& owner = *view.owner_of_lp;
      uint64_t total_cost = 0;
      for (uint64_t c : cost) {
        total_cost += c;
      }
      if (cost.size() == owner.size() && total_cost > 0) {
        std::vector<uint32_t> assign;
        const uint64_t makespan = ListScheduleMakespan(
            cost, SortByCostDescending(cost), view.num_executors, &assign);
        std::vector<LpMove> moves;
        for (uint32_t lp = 0; lp < owner.size(); ++lp) {
          if (assign[lp] != owner[lp]) {
            moves.push_back(LpMove{lp, assign[lp]});
          }
        }
        if (!moves.empty()) {
          observed_imbalance = imb;
          predicted_imbalance = static_cast<double>(makespan) *
                                    static_cast<double>(view.num_executors) /
                                    static_cast<double>(total_cost) -
                                1.0;
          next.moves = std::move(moves);
          next.rebalance_seq = store_->Get().rebalance_seq + 1;
          fire("rebalance");
          rebalanced = true;
        }
      }
      rebalance_streak_ = 0;
      rebalance_cooldown_left_ = config_.rebalance_cooldown;
    }
  }

  // Rule 5 — speculation horizon: a miss means the whole window ran twice
  // plus a rollback (pure waste), so a miss streak halves the horizon toward
  // the floor; a streak of windows that speculated and committed cleanly
  // means the horizon is leaving free wall-clock on the table — double it
  // toward the cap. Gated on the knob being live: Finalize seeds it only
  // under SimConfig::speculation == kAuto, so for every other session the
  // rule is inert. Results-neutral by the speculation contract.
  const int64_t horizon = store_->Get().spec_horizon_ps;
  if (horizon > 0) {
    if (StreakFire(sum.spec_misses > 0, config_.rule_patience,
                   &spec_narrow_streak_, &spec_widen_streak_)) {
      const int64_t want = std::max(config_.spec_horizon_min_ps, horizon / 2);
      if (want != next.spec_horizon_ps) {
        next.spec_horizon_ps = want;
        fire("spec-narrow");
      }
    }
    if (StreakFire(sum.spec_rounds > 0 && sum.spec_misses == 0,
                   config_.rule_patience, &spec_widen_streak_,
                   &spec_narrow_streak_)) {
      const int64_t want = std::min(config_.spec_horizon_max_ps, horizon * 2);
      if (want != next.spec_horizon_ps) {
        next.spec_horizon_ps = want;
        fire("spec-widen");
      }
    }
  }

  if (rule.empty()) {
    return false;
  }
  store_->Publish(next);
  Decision d{store_->epoch(), sum.window_index, std::move(rule), next};
  if (rebalanced) {
    d.observed_imbalance = observed_imbalance;
    d.predicted_imbalance = predicted_imbalance;
  }
  decisions_.push_back(std::move(d));
  return true;
}

}  // namespace unison
