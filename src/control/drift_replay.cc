#include "src/control/drift_replay.h"

#include <algorithm>
#include <numeric>

namespace unison {

namespace {

// LPT list scheduling: assign LPs in `order` to the least-loaded of
// `workers` executors; the makespan is the heaviest executor's total. This
// mirrors the kernel's claim cursor, where the next free worker takes the
// next LP in claim order.
uint64_t Makespan(const std::vector<uint32_t>& order,
                  const std::vector<uint64_t>& costs, uint32_t workers,
                  std::vector<uint64_t>* load) {
  load->assign(workers, 0);
  for (uint32_t lp : order) {
    uint64_t* slot = &(*load)[0];
    for (uint32_t w = 1; w < workers; ++w) {
      if ((*load)[w] < *slot) {
        slot = &(*load)[w];
      }
    }
    *slot += costs[lp];
  }
  return *std::max_element(load->begin(), load->end());
}

// The kernel's deterministic re-sort: cost descending, LP id ascending.
void SortByCost(std::vector<uint32_t>* order,
                const std::vector<uint64_t>& costs) {
  std::sort(order->begin(), order->end(), [&costs](uint32_t a, uint32_t b) {
    return costs[a] != costs[b] ? costs[a] > costs[b] : a < b;
  });
}

}  // namespace

std::vector<DriftReplayPoint> ReplayClaimOrderDrift(
    const std::vector<std::vector<uint64_t>>& costs, uint32_t workers,
    const std::vector<uint32_t>& stalenesses) {
  workers = std::max(1u, workers);
  std::vector<DriftReplayPoint> curve;
  curve.reserve(stalenesses.size());
  const uint32_t rounds = static_cast<uint32_t>(costs.size());
  const uint32_t lps = rounds == 0 ? 0 : static_cast<uint32_t>(costs[0].size());

  std::vector<uint64_t> load;
  std::vector<uint32_t> oracle_order(lps);
  std::vector<uint32_t> stale_order(lps);

  for (uint32_t k : stalenesses) {
    k = std::max(1u, k);
    // Round 0 starts from id order on both sides of the kernel's policy: the
    // scheduler has no cost history yet, and all-equal costs tie-break to id
    // order.
    std::iota(stale_order.begin(), stale_order.end(), 0);
    double ratio_sum = 0.0;
    uint32_t counted = 0;
    for (uint32_t r = 0; r < rounds; ++r) {
      if (r > 0 && r % k == 0) {
        // The kernel's information set at a re-sort: the previous round's
        // measured costs (SchedulingMetric::kByLastRoundTime).
        SortByCost(&stale_order, costs[r - 1]);
      }
      // Clairvoyant reference: re-sorted every round on the true costs.
      std::iota(oracle_order.begin(), oracle_order.end(), 0);
      SortByCost(&oracle_order, costs[r]);
      const uint64_t oracle = Makespan(oracle_order, costs[r], workers, &load);
      if (oracle == 0) {
        continue;  // Nothing to schedule this round.
      }
      const uint64_t stale = Makespan(stale_order, costs[r], workers, &load);
      ratio_sum += static_cast<double>(stale) / static_cast<double>(oracle);
      ++counted;
    }
    DriftReplayPoint pt;
    pt.staleness = k;
    pt.makespan_ratio = counted == 0 ? 1.0 : ratio_sum / counted;
    curve.push_back(pt);
  }
  return curve;
}

uint32_t RecommendPeriod(const std::vector<DriftReplayPoint>& curve,
                         double tolerance) {
  if (curve.empty()) {
    return 1;
  }
  // Baseline: the freshest order the kernel can actually run with (smallest
  // staleness in the curve, normally 1).
  const DriftReplayPoint* base = &curve[0];
  for (const DriftReplayPoint& pt : curve) {
    if (pt.staleness < base->staleness) {
      base = &pt;
    }
  }
  uint32_t best = base->staleness;
  for (const DriftReplayPoint& pt : curve) {
    if (pt.makespan_ratio <= base->makespan_ratio + tolerance &&
        pt.staleness > best) {
      best = pt.staleness;
    }
  }
  return best;
}

}  // namespace unison
