#include "src/partition/graph.h"

#include <algorithm>
#include <queue>

namespace unison {

void FinalizePartition(const TopoGraph& graph, Partition* partition) {
  partition->cut_edges.clear();
  partition->lookahead = Time::Max();
  partition->lp_lookahead.assign(partition->num_lps, Time::Max());
  for (const TopoEdge& e : graph.edges) {
    const LpId a = partition->lp_of_node[e.u];
    const LpId b = partition->lp_of_node[e.v];
    if (a == b) {
      continue;
    }
    partition->cut_edges.push_back(CutEdge{a, b, e.delay});
    partition->lookahead = std::min(partition->lookahead, e.delay);
    partition->lp_lookahead[a] = std::min(partition->lp_lookahead[a], e.delay);
    partition->lp_lookahead[b] = std::min(partition->lp_lookahead[b], e.delay);
  }
}

bool ValidatePartition(const TopoGraph& graph, const Partition& partition) {
  if (partition.lp_of_node.size() != graph.num_nodes) {
    return false;
  }
  for (LpId lp : partition.lp_of_node) {
    if (lp >= partition.num_lps) {
      return false;
    }
  }
  // Check intra-LP connectivity: within each LP, nodes must form one
  // connected component over the un-cut edges. Build adjacency restricted to
  // same-LP edges and BFS from the first node of each LP.
  std::vector<std::vector<NodeId>> adj(graph.num_nodes);
  for (const TopoEdge& e : graph.edges) {
    if (partition.lp_of_node[e.u] == partition.lp_of_node[e.v]) {
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
    }
  }
  std::vector<NodeId> first(partition.num_lps, graph.num_nodes);
  std::vector<uint32_t> lp_size(partition.num_lps, 0);
  for (NodeId n = 0; n < graph.num_nodes; ++n) {
    const LpId lp = partition.lp_of_node[n];
    ++lp_size[lp];
    first[lp] = std::min(first[lp], n);
  }
  std::vector<bool> visited(graph.num_nodes, false);
  for (LpId lp = 0; lp < partition.num_lps; ++lp) {
    if (lp_size[lp] == 0) {
      continue;  // Empty LPs are legal (they simply never have events).
    }
    uint32_t reached = 0;
    std::queue<NodeId> q;
    q.push(first[lp]);
    visited[first[lp]] = true;
    while (!q.empty()) {
      const NodeId n = q.front();
      q.pop();
      ++reached;
      for (NodeId m : adj[n]) {
        if (!visited[m] && partition.lp_of_node[m] == lp) {
          visited[m] = true;
          q.push(m);
        }
      }
    }
    if (reached != lp_size[lp]) {
      return false;
    }
  }
  return true;
}

}  // namespace unison
