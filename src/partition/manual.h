// Static manual partitioners used by the PDES baselines (§2.3, Figure 3).
//
// These reproduce the configuration work a user must do by hand for the
// barrier-synchronization and null-message kernels: choose a number of LPs,
// assign every node, and hope the workload stays balanced. The Table 1 bench
// counts the per-topology configuration statements these imply.
#ifndef UNISON_SRC_PARTITION_MANUAL_H_
#define UNISON_SRC_PARTITION_MANUAL_H_

#include <vector>

#include "src/partition/graph.h"

namespace unison {

// One LP for everything — the degenerate partition used by the sequential
// kernel.
Partition SingleLpPartition(const TopoGraph& graph);

// Partition from an explicit node→LP assignment (the "manual" path).
Partition ManualPartition(const TopoGraph& graph, uint32_t num_lps,
                          std::vector<LpId> lp_of_node);

// Evenly slices the node-id range [0, num_nodes) into num_lps contiguous
// blocks — the scheme the paper uses for the 2D-torus baseline, and the
// generic fallback when no symmetric division exists.
Partition RangePartition(const TopoGraph& graph, uint32_t num_lps);

}  // namespace unison

#endif  // UNISON_SRC_PARTITION_MANUAL_H_
