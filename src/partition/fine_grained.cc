#include "src/partition/fine_grained.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace unison {

Time MedianDelay(const TopoGraph& graph) {
  std::vector<Time> delays;
  delays.reserve(graph.edges.size());
  for (const TopoEdge& e : graph.edges) {
    if (e.stateless) {
      delays.push_back(e.delay);
    }
  }
  if (delays.empty()) {
    return Time::Zero();
  }
  // Lower median: with an even count this picks the smaller middle element,
  // ensuring "at least half of the links will be cut off".
  const size_t mid = (delays.size() - 1) / 2;
  std::nth_element(delays.begin(), delays.begin() + mid, delays.end());
  return delays[mid];
}

Partition FineGrainedPartition(const TopoGraph& graph) {
  const Time lookahead_lowerbound = MedianDelay(graph);

  // Adjacency over edges that must NOT be cut: stateful edges, stateless
  // edges with delay below the lower bound, and zero-delay links — cutting a
  // zero-delay link would force the lookahead (and thus every window) to
  // zero, so such links always merge their endpoints into one LP.
  std::vector<std::vector<NodeId>> adj(graph.num_nodes);
  for (const TopoEdge& e : graph.edges) {
    if (!e.stateless || e.delay < lookahead_lowerbound || e.delay.IsZero()) {
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
    }
  }

  Partition partition;
  partition.lp_of_node.assign(graph.num_nodes, 0);
  std::vector<bool> visited(graph.num_nodes, false);
  uint32_t lp_count = 0;
  std::queue<NodeId> q;
  for (NodeId v = 0; v < graph.num_nodes; ++v) {
    if (visited[v]) {
      continue;
    }
    const LpId lp = lp_count++;
    visited[v] = true;
    q.push(v);
    while (!q.empty()) {
      const NodeId n = q.front();
      q.pop();
      partition.lp_of_node[n] = lp;
      for (NodeId m : adj[n]) {
        if (!visited[m]) {
          visited[m] = true;
          q.push(m);
        }
      }
    }
  }
  partition.num_lps = lp_count;
  FinalizePartition(graph, &partition);
  return partition;
}

}  // namespace unison
