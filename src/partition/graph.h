// Topology view consumed by the partitioners, and the partition result shared
// by every kernel.
//
// A partition assigns each node a logical-process id, records which edges
// were logically cut (these become inter-LP channels backed by mailboxes),
// and carries the lookahead values derived from the cut-edge delays.
#ifndef UNISON_SRC_PARTITION_GRAPH_H_
#define UNISON_SRC_PARTITION_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/core/event.h"
#include "src/core/time.h"

namespace unison {

struct TopoEdge {
  NodeId u = 0;
  NodeId v = 0;
  Time delay;
  // Stateless links (point-to-point, full-duplex Ethernet) may be cut;
  // stateful links (e.g. shared wireless channels) may not (§4.2).
  bool stateless = true;
};

struct TopoGraph {
  uint32_t num_nodes = 0;
  std::vector<TopoEdge> edges;
};

struct CutEdge {
  LpId a = 0;
  LpId b = 0;
  Time delay;
};

struct Partition {
  uint32_t num_lps = 0;
  std::vector<LpId> lp_of_node;

  // Edges whose endpoints landed in different LPs.
  std::vector<CutEdge> cut_edges;

  // min over cut edges of their delay; Time::Max() when there are no cut
  // edges (single LP). This is the scalar lookahead used in the LBTS window
  // (Eq. 1 / Eq. 2).
  Time lookahead = Time::Max();

  // Per-LP lookahead: the shortest delay among this LP's own cut edges; used
  // by the null-message kernel's per-channel guarantees.
  std::vector<Time> lp_lookahead;
};

// Recomputes cut_edges / lookahead / lp_lookahead from lp_of_node and the
// graph. Used after manual assignment and after dynamic topology changes.
void FinalizePartition(const TopoGraph& graph, Partition* partition);

// True when every LP is internally connected and every node has an LP id in
// range; used by tests and by the kernels' setup assertions.
bool ValidatePartition(const TopoGraph& graph, const Partition& partition);

}  // namespace unison

#endif  // UNISON_SRC_PARTITION_GRAPH_H_
