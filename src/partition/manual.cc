#include "src/partition/manual.h"

#include <utility>

namespace unison {

Partition SingleLpPartition(const TopoGraph& graph) {
  Partition partition;
  partition.num_lps = 1;
  partition.lp_of_node.assign(graph.num_nodes, 0);
  FinalizePartition(graph, &partition);
  return partition;
}

Partition ManualPartition(const TopoGraph& graph, uint32_t num_lps,
                          std::vector<LpId> lp_of_node) {
  Partition partition;
  partition.num_lps = num_lps;
  partition.lp_of_node = std::move(lp_of_node);
  FinalizePartition(graph, &partition);
  return partition;
}

Partition RangePartition(const TopoGraph& graph, uint32_t num_lps) {
  Partition partition;
  partition.num_lps = num_lps;
  partition.lp_of_node.resize(graph.num_nodes);
  const uint32_t per_lp = (graph.num_nodes + num_lps - 1) / num_lps;
  for (NodeId n = 0; n < graph.num_nodes; ++n) {
    partition.lp_of_node[n] = std::min(n / per_lp, num_lps - 1);
  }
  FinalizePartition(graph, &partition);
  return partition;
}

}  // namespace unison
