// Live, epoch-versioned LP-ownership map: which executor owns which LP.
//
// The fine-grained partition (graph.h) decides *what* the LPs are; this map
// decides *who runs them*. Until PR 9 that assignment was frozen into
// per-kernel arrays at Setup (barrier/nullmsg: rank r runs LP r; hybrid:
// rank_of_lp_ sliced by node range), so persistent per-executor imbalance —
// hot racks, skewed traffic injected mid-session, fail-link reroutes in
// forks — was unfixable at runtime. Kernels now resolve lp → executor
// through this map and rebuild their per-executor LP lists only at window
// boundaries, which makes ownership a live tunable: the controller's
// rebalance rule publishes an LPT move set, and the kernel applies it with
// MigrateLp/ApplyStaged before releasing any worker into the next window.
//
// Why window boundaries make migration safe: an Lp object (FEL slab,
// mailboxes, tie-break counters) is LpId-indexed in the kernel and never
// physically moves — only the executor→LP-set mapping changes, and it only
// changes while the pool is quiescent between windows. Event keys
// (EventKey{ts, sender_ts, sender_node, seq}) are partition- and
// thread-independent, so in deterministic mode *which* executor processes an
// LP is unobservable in the results: fingerprints and digests are
// bit-identical across any migration schedule.
//
// Concurrency contract: mutations (Stage/ApplyStaged/MigrateLp/Reset/
// Restore) happen on the session thread at window boundaries only; workers
// read owners()/owned() freely during a window. Same single-writer,
// window-boundary-only discipline as the TunableStore.
#ifndef UNISON_SRC_PARTITION_PARTITION_MAP_H_
#define UNISON_SRC_PARTITION_PARTITION_MAP_H_

#include <cstdint>
#include <vector>

namespace unison {

// One requested ownership change: LP `lp` moves to executor `to`. Executor
// values are interpreted in the owning kernel's domain units (barrier/null
// message: executor rank; unison: worker slot; hybrid: rank) and folded
// modulo the domain size on apply, so a move set computed for one domain
// width degrades gracefully instead of faulting on another.
struct LpMove {
  uint32_t lp = 0;
  uint32_t to = 0;
};

// Read-only view of a kernel's ownership state handed to the controller at
// each window boundary: the domain width, the live owner array, and the
// per-LP processing cost of the window that just completed. `movable` is
// false for kernels whose domain cannot benefit from moves (sequential).
struct OwnershipView {
  uint32_t num_executors = 0;
  bool movable = false;
  const std::vector<uint32_t>* owner_of_lp = nullptr;
  const std::vector<uint64_t>* lp_cost_ns = nullptr;
};

class PartitionMap {
 public:
  // Installs a fresh assignment without consuming an epoch: a map that was
  // only ever Reset is epoch 0, "never migrated" — the comparable baseline,
  // exactly like TunableStore::Seed. Owners are folded modulo
  // `num_executors`; staged moves are discarded.
  void Reset(std::vector<uint32_t> owner_of_lp, uint32_t num_executors);

  // Convenience: the identity-ish default owner(lp) = lp % num_executors.
  void ResetStrided(uint32_t num_lps, uint32_t num_executors);

  // Queues moves for the next ApplyStaged. Later moves for the same LP win.
  // Callable any time (the stage set is session-thread-private); nothing
  // changes until ApplyStaged runs at a window boundary.
  void Stage(const std::vector<LpMove>& moves);
  bool has_staged() const { return !staged_.empty(); }

  // Applies the staged set: relocates each LP whose folded target differs
  // from its current owner, rebuilds the per-executor owned lists, and bumps
  // the epoch once if anything moved. Returns the number of LPs that
  // actually changed owner. Window boundaries only.
  uint32_t ApplyStaged();

  // Immediate single-LP migration (window boundaries only): the staged path
  // in one call. Returns true when the owner actually changed.
  bool MigrateLp(uint32_t lp, uint32_t to);

  // Snapshot restore: reinstalls a captured owner array *and* its epoch so a
  // fork resumes with the parent's learned placement, not the setup default.
  void Restore(std::vector<uint32_t> owner_of_lp, uint64_t epoch);

  uint32_t owner(uint32_t lp) const { return owner_of_lp_[lp]; }
  const std::vector<uint32_t>& owners() const { return owner_of_lp_; }
  // Per-executor owned LP lists, each ascending by LpId (deterministic
  // iteration order for the kernels' process/drain/min loops).
  const std::vector<std::vector<uint32_t>>& owned() const { return owned_; }
  const std::vector<uint32_t>& owned(uint32_t executor) const {
    return owned_[executor];
  }
  uint32_t num_lps() const { return static_cast<uint32_t>(owner_of_lp_.size()); }
  uint32_t num_executors() const { return num_executors_; }
  // 0 = the setup-time assignment; each applied migration batch is one epoch.
  uint64_t epoch() const { return epoch_; }

 private:
  void RebuildOwned();

  std::vector<uint32_t> owner_of_lp_;
  std::vector<std::vector<uint32_t>> owned_;
  std::vector<LpMove> staged_;
  uint32_t num_executors_ = 1;
  uint64_t epoch_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_PARTITION_PARTITION_MAP_H_
