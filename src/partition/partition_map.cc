#include "src/partition/partition_map.h"

#include <algorithm>

namespace unison {

void PartitionMap::Reset(std::vector<uint32_t> owner_of_lp,
                         uint32_t num_executors) {
  num_executors_ = std::max(1u, num_executors);
  owner_of_lp_ = std::move(owner_of_lp);
  for (uint32_t& o : owner_of_lp_) {
    o %= num_executors_;
  }
  staged_.clear();
  epoch_ = 0;
  RebuildOwned();
}

void PartitionMap::ResetStrided(uint32_t num_lps, uint32_t num_executors) {
  num_executors_ = std::max(1u, num_executors);
  owner_of_lp_.resize(num_lps);
  for (uint32_t lp = 0; lp < num_lps; ++lp) {
    owner_of_lp_[lp] = lp % num_executors_;
  }
  staged_.clear();
  epoch_ = 0;
  RebuildOwned();
}

void PartitionMap::Stage(const std::vector<LpMove>& moves) {
  staged_.insert(staged_.end(), moves.begin(), moves.end());
}

uint32_t PartitionMap::ApplyStaged() {
  // Later stages for the same LP win, so resolve the final target per LP
  // before touching the owner array: an LP staged A→B→A must count (and
  // cost) zero changes, not two.
  uint32_t changed = 0;
  std::vector<bool> seen(owner_of_lp_.size(), false);
  for (auto it = staged_.rbegin(); it != staged_.rend(); ++it) {
    if (it->lp >= owner_of_lp_.size() || seen[it->lp]) {
      continue;  // Out-of-range: a move set from a different topology.
    }
    seen[it->lp] = true;
    const uint32_t to = it->to % num_executors_;
    if (owner_of_lp_[it->lp] != to) {
      owner_of_lp_[it->lp] = to;
      ++changed;
    }
  }
  staged_.clear();
  if (changed > 0) {
    ++epoch_;
    RebuildOwned();
  }
  return changed;
}

bool PartitionMap::MigrateLp(uint32_t lp, uint32_t to) {
  Stage({LpMove{lp, to}});
  return ApplyStaged() > 0;
}

void PartitionMap::Restore(std::vector<uint32_t> owner_of_lp, uint64_t epoch) {
  owner_of_lp_ = std::move(owner_of_lp);
  for (uint32_t& o : owner_of_lp_) {
    o %= num_executors_;
  }
  staged_.clear();
  epoch_ = epoch;
  RebuildOwned();
}

void PartitionMap::RebuildOwned() {
  owned_.assign(num_executors_, {});
  // Ascending LpId within each executor by construction: the loops that
  // consume these lists (process, drain, min-reduce) iterate in a
  // partition-independent deterministic order.
  for (uint32_t lp = 0; lp < owner_of_lp_.size(); ++lp) {
    owned_[owner_of_lp_[lp]].push_back(lp);
  }
}

}  // namespace unison
