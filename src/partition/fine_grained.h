// Algorithm 1 of the paper: automatic fine-grained spatial partition.
//
// The lookahead lower bound is the median of all stateless link delays; every
// stateless link whose delay is >= the bound is logically cut, and each
// connected component of the remaining graph becomes one LP. Cutting at the
// median (rather than the mean) guarantees at least half of the links are cut,
// which yields the fine granularity the scheduler depends on, while refusing
// to cut very short links that would collapse the window size.
#ifndef UNISON_SRC_PARTITION_FINE_GRAINED_H_
#define UNISON_SRC_PARTITION_FINE_GRAINED_H_

#include "src/partition/graph.h"

namespace unison {

// Computes the median-delay cut threshold used by FineGrainedPartition;
// exposed for tests and for the Table 1 configuration-complexity bench.
Time MedianDelay(const TopoGraph& graph);

Partition FineGrainedPartition(const TopoGraph& graph);

}  // namespace unison

#endif  // UNISON_SRC_PARTITION_FINE_GRAINED_H_
