// Set-associative LRU cache simulator.
//
// Hardware cache counters are unavailable in this environment, so the cache
// claims of fine-grained partition (Fig. 12a/12b, §4.1's cache-affinity
// argument) are reproduced by replaying each executed event's node-state
// footprint through this model: an event touches its node's state block, so
// an execution order that groups events of few nodes together (many small
// LPs) reuses lines, while a global time-ordered interleaving (one big LP)
// thrashes.
#ifndef UNISON_SRC_CACHESIM_CACHE_SIM_H_
#define UNISON_SRC_CACHESIM_CACHE_SIM_H_

#include <cstdint>
#include <vector>

#include "src/core/event.h"

namespace unison {

struct CacheConfig {
  uint64_t size_bytes = 1 << 20;  // L2-sized by default.
  uint32_t line_bytes = 64;
  uint32_t ways = 8;
  // Modeled per-event footprint: bytes of node state touched per event.
  uint32_t node_state_bytes = 2048;
};

class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& config);

  // One cache access to `addr`.
  void Access(uint64_t addr);

  // Touches the byte range [base, base + bytes).
  void Touch(uint64_t base, uint32_t bytes);

  // Models one simulation event on `node`: touches that node's state block.
  void OnEvent(NodeId node) {
    Touch(static_cast<uint64_t>(node) * kNodeStride, cfg_.node_state_bytes);
  }

  uint64_t accesses() const { return accesses_; }
  uint64_t misses() const { return misses_; }
  double MissRatio() const {
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(misses_) / static_cast<double>(accesses_);
  }

  // Installs this simulator as the global per-event trace hook. Only valid
  // for single-threaded runs (the hook is process-global); remove with
  // Uninstall before the simulator dies.
  void Install();
  static void Uninstall();

 private:
  static constexpr uint64_t kNodeStride = 1 << 16;  // Node address spacing.

  const CacheConfig cfg_;
  uint32_t num_sets_ = 0;
  // lines_[set * ways + way] = tag (0 = empty); lru_ holds per-line ages.
  std::vector<uint64_t> lines_;
  std::vector<uint32_t> lru_;
  uint32_t tick_ = 0;
  uint64_t accesses_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_CACHESIM_CACHE_SIM_H_
