#include "src/cachesim/cache_sim.h"

#include "src/kernel/lp.h"

namespace unison {

CacheSim::CacheSim(const CacheConfig& config) : cfg_(config) {
  num_sets_ = static_cast<uint32_t>(cfg_.size_bytes / cfg_.line_bytes / cfg_.ways);
  lines_.assign(static_cast<size_t>(num_sets_) * cfg_.ways, 0);
  lru_.assign(lines_.size(), 0);
}

void CacheSim::Access(uint64_t addr) {
  ++accesses_;
  ++tick_;
  const uint64_t line = addr / cfg_.line_bytes;
  const uint32_t set = static_cast<uint32_t>(line % num_sets_);
  const uint64_t tag = line / num_sets_ + 1;  // +1 keeps 0 as "empty".
  const size_t base = static_cast<size_t>(set) * cfg_.ways;

  uint32_t victim = 0;
  uint32_t oldest = UINT32_MAX;
  for (uint32_t w = 0; w < cfg_.ways; ++w) {
    if (lines_[base + w] == tag) {
      lru_[base + w] = tick_;
      return;  // Hit.
    }
    // Track the LRU (or first empty) way as the victim.
    const uint32_t age = lines_[base + w] == 0 ? 0 : lru_[base + w];
    if (age < oldest) {
      oldest = age;
      victim = w;
    }
  }
  ++misses_;
  lines_[base + victim] = tag;
  lru_[base + victim] = tick_;
}

void CacheSim::Touch(uint64_t base, uint32_t bytes) {
  for (uint64_t a = base; a < base + bytes; a += cfg_.line_bytes) {
    Access(a);
  }
}

namespace {

void TraceHook(void* ctx, LpId /*lp*/, NodeId node) {
  if (node != kNoNode) {
    static_cast<CacheSim*>(ctx)->OnEvent(node);
  }
}

}  // namespace

void CacheSim::Install() { Lp::SetTraceHook(&TraceHook, this); }
void CacheSim::Uninstall() { Lp::SetTraceHook(nullptr, nullptr); }

}  // namespace unison
