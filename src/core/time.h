// Simulated time. Unison models time as a signed 64-bit count of picoseconds,
// which provides sub-nanosecond resolution for serialization delays on
// 100Gbps+ links (one byte at 100Gbps is 80ps) while still covering ~106 days
// of simulated time, far beyond any network simulation horizon.
#ifndef UNISON_SRC_CORE_TIME_H_
#define UNISON_SRC_CORE_TIME_H_

#include <cstdint>
#include <limits>
#include <ostream>

namespace unison {

class Time {
 public:
  constexpr Time() : ps_(0) {}

  static constexpr Time Picoseconds(int64_t ps) { return Time(ps); }
  static constexpr Time Nanoseconds(int64_t ns) { return Time(ns * 1000); }
  static constexpr Time Microseconds(int64_t us) { return Time(us * 1000000); }
  static constexpr Time Milliseconds(int64_t ms) { return Time(ms * 1000000000); }
  static constexpr Time Seconds(double s) {
    return Time(static_cast<int64_t>(s * 1e12));
  }
  // The largest representable time; used as the "no event" sentinel and as
  // the initial value of min-reductions over next-event timestamps.
  static constexpr Time Max() { return Time(std::numeric_limits<int64_t>::max()); }
  static constexpr Time Zero() { return Time(0); }

  constexpr int64_t ps() const { return ps_; }
  constexpr double ToSeconds() const { return static_cast<double>(ps_) * 1e-12; }
  constexpr double ToMicroseconds() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double ToMilliseconds() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double ToNanoseconds() const { return static_cast<double>(ps_) * 1e-3; }

  constexpr bool IsZero() const { return ps_ == 0; }
  constexpr bool IsMax() const { return ps_ == std::numeric_limits<int64_t>::max(); }

  constexpr Time operator+(Time other) const { return Time(ps_ + other.ps_); }
  constexpr Time operator-(Time other) const { return Time(ps_ - other.ps_); }
  constexpr Time operator*(int64_t k) const { return Time(ps_ * k); }
  Time& operator+=(Time other) {
    ps_ += other.ps_;
    return *this;
  }
  Time& operator-=(Time other) {
    ps_ -= other.ps_;
    return *this;
  }

  constexpr auto operator<=>(const Time&) const = default;

 private:
  explicit constexpr Time(int64_t ps) : ps_(ps) {}

  int64_t ps_;
};

inline std::ostream& operator<<(std::ostream& os, Time t) {
  return os << t.ps() << "ps";
}

// Transmission time of `bytes` at `bits_per_second`, rounded up to a whole
// picosecond so that back-to-back packets never overlap.
inline Time SerializationDelay(uint64_t bytes, uint64_t bits_per_second) {
  // ps = bits * 1e12 / bps. Compute in __int128 to avoid overflow for jumbo
  // bursts on slow links.
  __int128 ps = static_cast<__int128>(bytes) * 8 * 1000000000000LL;
  ps = (ps + bits_per_second - 1) / bits_per_second;
  return Time::Picoseconds(static_cast<int64_t>(ps));
}

}  // namespace unison

#endif  // UNISON_SRC_CORE_TIME_H_
