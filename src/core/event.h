// Discrete events and the deterministic total order over them.
//
// A discrete event is "when, where, what" (§2.1 of the paper): a timestamp,
// the logical process it executes in, and a callback. To make parallel runs
// reproducible, Unison extends the ordering key with the tie-breaking rule of
// §5.2: events with equal timestamps are ordered by the sender's clock at
// schedule time, then by the sender's identity, then by a per-sender
// sequence number. The resulting key is a strict total order, so every
// kernel — with any thread count — pops events in the same order.
//
// One strengthening over the paper: the sender identity here is the sending
// *node*, not the sending LP. LP ids depend on the partition, so the paper's
// rule makes simultaneous-event order differ between partitions (their
// Table 2 notes the resulting "slight difference" against sequential DES).
// Node ids are partition-independent, so with this key the sequential
// kernel, both PDES baselines, Unison and the hybrid kernel produce
// bit-identical results for the same seed.
#ifndef UNISON_SRC_CORE_EVENT_H_
#define UNISON_SRC_CORE_EVENT_H_

#include <cstddef>
#include <cstdint>
#include <tuple>

#include "src/core/inline_function.h"
#include "src/core/time.h"

namespace unison {

// Event callbacks live inline in the Event itself (no per-event heap
// allocation). 128 bytes holds the largest hot-path closure — packet delivery
// captures a ~96-byte Packet plus a Network pointer and a NodeId (the
// construction site static-asserts this) — while small closures still move
// cheaply because InlineFunction relocation only touches the callable's real
// size. Oversized captures fall back to one heap allocation, counted by
// InlineFunctionStats::alloc_fallbacks().
inline constexpr size_t kEventFnInlineBytes = 128;
using EventFn = InlineFunction<kEventFnInlineBytes>;

// Identifies a logical process. kPublicLp is the designated LP for global
// events (§4.2): topology changes, simulation stop, progress reporting.
using LpId = uint32_t;
inline constexpr LpId kPublicLp = 0xffffffffu;

// Identifies a simulated node (host or switch). kNoNode marks events with no
// node attribution (global events).
using NodeId = uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;

struct EventKey {
  Time ts;            // When the event executes.
  Time sender_ts;     // Sender's clock when the event was scheduled.
  NodeId sender_node; // Which node's event scheduled it (kNoNode: global).
  uint64_t seq;       // Per-sender-LP schedule counter; within one sender
                      // node it preserves that node's schedule order in
                      // every partition.

  friend bool operator<(const EventKey& a, const EventKey& b) {
    return std::tie(a.ts, a.sender_ts, a.sender_node, a.seq) <
           std::tie(b.ts, b.sender_ts, b.sender_node, b.seq);
  }
  friend bool operator==(const EventKey& a, const EventKey& b) {
    return std::tie(a.ts, a.sender_ts, a.sender_node, a.seq) ==
           std::tie(b.ts, b.sender_ts, b.sender_node, b.seq);
  }
};

struct Event {
  EventKey key;
  // Node whose state this event touches; drives cache traces and lets events
  // scheduled from inside a callback inherit attribution.
  NodeId node = kNoNode;
  EventFn fn;
};

}  // namespace unison

#endif  // UNISON_SRC_CORE_EVENT_H_
