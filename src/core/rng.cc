#include "src/core/rng.h"

#include <cmath>

namespace unison {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed, uint64_t stream) {
  // Mix the stream id into the SplitMix64 state so that streams of the same
  // seed do not overlap.
  uint64_t state = seed ^ (stream * 0xda3e39cb94b95bdbULL + 0x853c49e6748fea9bULL);
  for (auto& s : s_) {
    s = SplitMix64(state);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextU64Below(uint64_t n) {
  if (n == 0) {
    return 0;
  }
  // Rejection sampling over the largest multiple of n that fits in 64 bits.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::NextExponential(double mean) {
  // Inverse transform; guard against log(0).
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return -mean * std::log(u);
}

}  // namespace unison
