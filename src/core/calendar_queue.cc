#include "src/core/calendar_queue.h"

#include <algorithm>

namespace unison {

CalendarQueue::CalendarQueue() : buckets_(16) {}

size_t CalendarQueue::BucketIndex(int64_t ts_ps) const {
  const int64_t day = ts_ps / day_width_ps_;
  return static_cast<size_t>(day) % buckets_.size();
}

void CalendarQueue::InsertIntoBucket(Event event) {
  Bucket& bucket = buckets_[BucketIndex(event.key.ts.ps())];
  // Descending order: find insertion point from the back (new events are
  // usually near the end of the timeline, i.e. the front of the vector).
  auto it = std::upper_bound(
      bucket.events.begin(), bucket.events.end(), event,
      [](const Event& a, const Event& b) { return b.key < a.key; });
  bucket.events.insert(it, std::move(event));
}

void CalendarQueue::Push(Event event) {
  const int64_t ts = event.key.ts.ps();
  InsertIntoBucket(std::move(event));
  ++size_;
  if (ts < current_day_start_) {
    // An insert behind the read pointer (legal for arbitrary use, even
    // though DES pushes are monotone): rewind so Pop still sees it first.
    current_day_start_ = ts - ts % day_width_ps_;
    current_bucket_ = BucketIndex(ts);
  }
  if (size_ > buckets_.size() * 4) {
    Resize(buckets_.size() * 2);
  }
}

void CalendarQueue::Resize(size_t new_buckets) {
  // Re-estimate the day width from the current population's timestamp
  // spread, then rehash everything.
  std::vector<Event> all;
  all.reserve(size_);
  for (Bucket& b : buckets_) {
    for (Event& e : b.events) {
      all.push_back(std::move(e));
    }
    b.events.clear();
  }
  int64_t lo = INT64_MAX;
  int64_t hi = INT64_MIN;
  for (const Event& e : all) {
    lo = std::min(lo, e.key.ts.ps());
    hi = std::max(hi, e.key.ts.ps());
  }
  if (!all.empty() && hi > lo) {
    // Aim for ~3 events per bucket over the occupied span.
    day_width_ps_ = std::max<int64_t>(
        1, (hi - lo) / static_cast<int64_t>(std::max<size_t>(1, all.size() / 3)));
  }
  // clear+resize rather than assign(n, Bucket{}): Events are move-only, so
  // Bucket cannot be copy-filled.
  buckets_.clear();
  buckets_.resize(new_buckets);
  for (Event& e : all) {
    InsertIntoBucket(std::move(e));
  }
  if (!all.empty()) {
    current_day_start_ = lo - lo % day_width_ps_;
    current_bucket_ = BucketIndex(lo);
  }
}

Time CalendarQueue::NextTimestamp() const {
  if (size_ == 0) {
    return Time::Max();
  }
  // Scan days from the current one; fall back to a full minimum scan after a
  // whole year (one lap over the buckets).
  int64_t day_start = current_day_start_;
  size_t bucket = current_bucket_;
  for (size_t lap = 0; lap < buckets_.size(); ++lap) {
    const Bucket& b = buckets_[bucket];
    if (!b.events.empty()) {
      const int64_t ts = b.events.back().key.ts.ps();
      if (ts < day_start + day_width_ps_ * static_cast<int64_t>(lap + 1)) {
        return b.events.back().key.ts;
      }
    }
    bucket = (bucket + 1) % buckets_.size();
  }
  Time best = Time::Max();
  for (const Bucket& b : buckets_) {
    if (!b.events.empty()) {
      best = std::min(best, b.events.back().key.ts);
    }
  }
  return best;
}

Event CalendarQueue::Pop() {
  // Advance day by day until a bucket holds an event within its day.
  for (size_t lap = 0; lap <= buckets_.size(); ++lap) {
    Bucket& b = buckets_[current_bucket_];
    if (!b.events.empty() &&
        b.events.back().key.ts.ps() < current_day_start_ + day_width_ps_) {
      Event out = std::move(b.events.back());
      b.events.pop_back();
      --size_;
      return out;
    }
    current_day_start_ += day_width_ps_;
    current_bucket_ = (current_bucket_ + 1) % buckets_.size();
  }
  // Sparse population: jump straight to the global minimum.
  size_t best_bucket = 0;
  const Event* best = nullptr;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[i];
    if (!b.events.empty() && (best == nullptr || b.events.back().key < best->key)) {
      best = &b.events.back();
      best_bucket = i;
    }
  }
  Bucket& b = buckets_[best_bucket];
  Event out = std::move(b.events.back());
  b.events.pop_back();
  --size_;
  const int64_t ts = out.key.ts.ps();
  current_day_start_ = ts - ts % day_width_ps_;
  current_bucket_ = BucketIndex(ts);
  return out;
}

}  // namespace unison
