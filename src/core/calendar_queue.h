// Calendar queue (Brown 1988): the classic O(1)-amortized alternative to a
// binary-heap future event list. Events hash into day buckets by timestamp;
// dequeue scans the current day for the minimum. The structure resizes and
// re-widths itself as the event population changes.
//
// Unison's kernels use the binary heap (fine-grained LPs hold few events
// each, where the heap's constant factors win); the calendar queue is kept
// as a drop-in comparison structure for the FEL ablation bench and as the
// better choice for huge single-FEL sequential runs.
#ifndef UNISON_SRC_CORE_CALENDAR_QUEUE_H_
#define UNISON_SRC_CORE_CALENDAR_QUEUE_H_

#include <cstddef>
#include <vector>

#include "src/core/event.h"

namespace unison {

class CalendarQueue {
 public:
  CalendarQueue();

  void Push(Event event);

  // Precondition: !Empty(). Pops the event with the smallest key.
  Event Pop();

  Time NextTimestamp() const;

  bool Empty() const { return size_ == 0; }
  size_t Size() const { return size_; }

 private:
  struct Bucket {
    std::vector<Event> events;  // Kept sorted descending so back() is min.
  };

  size_t BucketIndex(int64_t ts_ps) const;
  void Resize(size_t new_buckets);
  void InsertIntoBucket(Event event);

  std::vector<Bucket> buckets_;
  size_t size_ = 0;
  int64_t day_width_ps_ = 1000;  // Width of one bucket in picoseconds.
  int64_t current_day_start_ = 0;
  size_t current_bucket_ = 0;
};

}  // namespace unison

#endif  // UNISON_SRC_CORE_CALENDAR_QUEUE_H_
