#include "src/core/fel.h"

namespace unison {

void FutureEventList::Push(Event event) {
  heap_.push_back(std::move(event));
  SiftUp(heap_.size() - 1);
}

Event FutureEventList::Pop() {
  Event top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
  return top;
}

Time FutureEventList::NextTimestamp() const {
  return heap_.empty() ? Time::Max() : heap_.front().key.ts;
}

size_t FutureEventList::CountBefore(Time bound) const {
  size_t n = 0;
  for (const Event& e : heap_) {
    if (e.key.ts < bound) {
      ++n;
    }
  }
  return n;
}

void FutureEventList::SiftUp(size_t i) {
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!(heap_[i].key < heap_[parent].key)) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void FutureEventList::SiftDown(size_t i) {
  const size_t n = heap_.size();
  for (;;) {
    size_t smallest = i;
    const size_t l = 2 * i + 1;
    const size_t r = 2 * i + 2;
    if (l < n && heap_[l].key < heap_[smallest].key) {
      smallest = l;
    }
    if (r < n && heap_[r].key < heap_[smallest].key) {
      smallest = r;
    }
    if (smallest == i) {
      return;
    }
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace unison
